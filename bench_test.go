// Benchmarks regenerating the paper's evaluation: one benchmark per figure
// (Figures 9-16) and Table 1, each measuring the cost of one replication of
// the figure's headline data point (n = 100 unless stated) and reporting the
// observed forward-node count as a custom metric, plus micro-benchmarks for
// the coverage conditions (the O(D^2) strong vs O(D^3) generic discussion of
// Section 6), local-view construction, and workload generation.
//
// Run with:
//
//	go test -bench=. -benchmem
package adhocbcast_test

import (
	"fmt"
	"math/rand"
	"syscall"
	"testing"

	"adhocbcast/internal/cds"
	"adhocbcast/internal/cluster"
	"adhocbcast/internal/core"
	"adhocbcast/internal/experiments"
	"adhocbcast/internal/geo"
	"adhocbcast/internal/hello"
	"adhocbcast/internal/obsv"
	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
	"adhocbcast/internal/stats"
	"adhocbcast/internal/view"
)

// benchNetwork memoizes generated workloads across benchmark iterations.
var benchNetworks = map[string]*geo.Network{}

func benchNetwork(b *testing.B, n int, d float64, seed int64) *geo.Network {
	b.Helper()
	key := fmt.Sprintf("%d|%g|%d", n, d, seed)
	if net, ok := benchNetworks[key]; ok {
		return net
	}
	net, err := geo.Generate(geo.Config{N: n, AvgDegree: d}, rand.New(rand.NewSource(seed)))
	if err != nil {
		b.Fatal(err)
	}
	benchNetworks[key] = net
	return net
}

// benchBroadcast runs one protocol repeatedly on the standard workload and
// reports forward nodes per broadcast.
func benchBroadcast(b *testing.B, mk func() sim.Protocol, cfg sim.Config, n int, d float64) {
	b.Helper()
	net := benchNetwork(b, n, d, 1)
	totalForward := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := sim.Run(net.G, i%n, mk(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.FullDelivery() {
			b.Fatalf("delivery %d/%d", res.Delivered, res.N)
		}
		totalForward += res.ForwardCount()
	}
	b.ReportMetric(float64(totalForward)/float64(b.N), "forward/op")
}

// BenchmarkFigure9SampleNetwork regenerates the Figure 9 sample scenario:
// one 100-node network, six broadcasts (three timings x two view depths).
func BenchmarkFigure9SampleNetwork(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NewSample(100, 6, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure10Timing measures the four timing policies of Figure 10.
func BenchmarkFigure10Timing(b *testing.B) {
	for _, t := range []protocol.Timing{
		protocol.TimingStatic,
		protocol.TimingFirstReceipt,
		protocol.TimingBackoffRandom,
		protocol.TimingBackoffDegree,
	} {
		t := t
		b.Run(t.String(), func(b *testing.B) {
			benchBroadcast(b, func() sim.Protocol { return protocol.Generic(t) },
				sim.Config{Hops: 2, Metric: view.MetricID}, 100, 6)
		})
	}
}

// BenchmarkFigure11Selection measures the four selection policies of
// Figure 11.
func BenchmarkFigure11Selection(b *testing.B) {
	variants := []struct {
		name string
		mk   func() sim.Protocol
	}{
		{name: "SP", mk: protocol.SelfPruningFR},
		{name: "ND", mk: protocol.NeighborDesignatingFR},
		{name: "MaxDeg", mk: protocol.HybridMaxDeg},
		{name: "MinPri", mk: protocol.HybridMinPri},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			benchBroadcast(b, v.mk, sim.Config{Hops: 2, Metric: view.MetricID}, 100, 6)
		})
	}
}

// BenchmarkFigure12Space measures the generic FR algorithm across view
// depths (Figure 12).
func BenchmarkFigure12Space(b *testing.B) {
	for _, hops := range []int{2, 3, 4, 5, 0} {
		hops := hops
		name := fmt.Sprintf("%dhop", hops)
		if hops == 0 {
			name = "global"
		}
		b.Run(name, func(b *testing.B) {
			benchBroadcast(b, func() sim.Protocol { return protocol.Generic(protocol.TimingFirstReceipt) },
				sim.Config{Hops: hops, Metric: view.MetricID}, 100, 6)
		})
	}
}

// BenchmarkFigure13Priority measures the generic FR algorithm across
// priority metrics (Figure 13).
func BenchmarkFigure13Priority(b *testing.B) {
	for _, m := range []view.Metric{view.MetricID, view.MetricDegree, view.MetricNCR} {
		m := m
		b.Run(m.String(), func(b *testing.B) {
			benchBroadcast(b, func() sim.Protocol { return protocol.Generic(protocol.TimingFirstReceipt) },
				sim.Config{Hops: 2, Metric: m}, 100, 6)
		})
	}
}

// BenchmarkFigure14Static measures the static special cases (Figure 14).
func BenchmarkFigure14Static(b *testing.B) {
	variants := []struct {
		name string
		mk   func() sim.Protocol
	}{
		{name: "MPR", mk: protocol.MPR},
		{name: "Span", mk: protocol.Span},
		{name: "RuleK", mk: protocol.RuleK},
		{name: "Generic", mk: func() sim.Protocol { return protocol.Generic(protocol.TimingStatic) }},
		{name: "WuLi", mk: protocol.WuLi},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			benchBroadcast(b, v.mk, sim.Config{Hops: 2, Metric: view.MetricNCR}, 100, 6)
		})
	}
}

// BenchmarkFigure15FirstReceipt measures the first-receipt special cases
// (Figure 15).
func BenchmarkFigure15FirstReceipt(b *testing.B) {
	variants := []struct {
		name string
		mk   func() sim.Protocol
	}{
		{name: "DP", mk: protocol.DP},
		{name: "PDP", mk: protocol.PDP},
		{name: "TDP", mk: protocol.TDP},
		{name: "LENWB", mk: protocol.LENWB},
		{name: "Generic", mk: func() sim.Protocol { return protocol.Generic(protocol.TimingFirstReceipt) }},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			benchBroadcast(b, v.mk, sim.Config{Hops: 2, Metric: view.MetricDegree}, 100, 6)
		})
	}
}

// BenchmarkFigure16Backoff measures the first-receipt-with-backoff special
// cases (Figure 16).
func BenchmarkFigure16Backoff(b *testing.B) {
	variants := []struct {
		name string
		mk   func() sim.Protocol
	}{
		{name: "SBA", mk: protocol.SBA},
		{name: "Generic", mk: func() sim.Protocol { return protocol.Generic(protocol.TimingBackoffRandom) }},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			benchBroadcast(b, v.mk, sim.Config{Hops: 2, Metric: view.MetricID}, 100, 6)
		})
	}
}

// BenchmarkTable1Classification measures one broadcast of each Table 1
// algorithm on the shared dense workload, grouped by category.
func BenchmarkTable1Classification(b *testing.B) {
	variants := []struct {
		name string
		mk   func() sim.Protocol
	}{
		{name: "Static/RuleK", mk: protocol.RuleK},
		{name: "Static/Span", mk: protocol.Span},
		{name: "Static/MPR", mk: protocol.MPR},
		{name: "FR/LENWB", mk: protocol.LENWB},
		{name: "FR/DP", mk: protocol.DP},
		{name: "FR/PDP", mk: protocol.PDP},
		{name: "FRB/SBA", mk: protocol.SBA},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			benchBroadcast(b, v.mk, sim.Config{Hops: 2, Metric: view.MetricID}, 100, 18)
		})
	}
}

// BenchmarkReplicationPoint measures one full Figure 10 data point — four
// variants, a fixed 16-replication budget — through the replication engine,
// serial and parallel. This is the replication-bound shape of a figure sweep:
// the four variants share workloads through the cache, and raising the worker
// count must leave the output bit-identical (asserted by the experiments
// package tests; here only the cost is measured).
func BenchmarkReplicationPoint(b *testing.B) {
	base := experiments.RunConfig{
		Sizes:       []int{60},
		Degrees:     []int{6},
		Replicate:   stats.ReplicateOptions{MinRuns: 16, MaxRuns: 16, RelTol: 1e-9},
		Seed:        12,
		Parallelism: 1,
	}
	for _, workers := range []int{1, 2, 4} {
		rc := base
		rc.ReplicateParallelism = workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var counters obsv.LiveCounters
			rc.Progress = func(point string, u stats.ProgressUpdate) {
				if !u.Exhausted {
					counters.AddReplicate()
				}
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Figure10(rc); err != nil {
					b.Fatal(err)
				}
			}
			// Runs-to-converge metadata: benchjson carries free-form units
			// into BENCH_results.json's metrics map.
			b.ReportMetric(float64(counters.Replicates())/float64(b.N), "replicates/op")
		})
	}
}

// BenchmarkMetricsOverhead measures the cost a live RunRecord adds to one
// broadcast: the Metrics hook sits on the per-receipt hot path, so the
// instrumented run should stay within noise of the plain one and add zero
// allocations beyond the record itself.
func BenchmarkMetricsOverhead(b *testing.B) {
	mk := func() sim.Protocol { return protocol.Generic(protocol.TimingFirstReceipt) }
	b.Run("plain", func(b *testing.B) {
		benchBroadcast(b, mk, sim.Config{Hops: 2, LossRate: 0.1}, 100, 18)
	})
	b.Run("instrumented", func(b *testing.B) {
		benchBroadcast(b, mk, sim.Config{Hops: 2, LossRate: 0.1, Metrics: obsv.NewRunRecord()}, 100, 18)
	})
}

// BenchmarkCoverageConditions contrasts the evaluation cost of the generic
// (O(D^3)) and strong (O(D^2)) conditions as density grows (the complexity
// discussion of Section 6).
func BenchmarkCoverageConditions(b *testing.B) {
	for _, d := range []float64{6, 12, 18, 30} {
		net := benchNetwork(b, 100, d, 2)
		base := view.BasePriorities(net.G, view.MetricID)
		views := make([]*view.Local, net.G.N())
		for v := range views {
			views[v] = view.NewLocal(net.G, v, 2, base)
		}
		conditions := []struct {
			name string
			eval func(lv *view.Local) bool
		}{
			{name: "generic", eval: core.Covered},
			{name: "strong", eval: core.StrongCovered},
			{name: "span", eval: core.SpanCovered},
		}
		for _, c := range conditions {
			c := c
			b.Run(fmt.Sprintf("%s/d=%g", c.name, d), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					c.eval(views[i%len(views)])
				}
			})
		}
	}
}

// BenchmarkLocalViewConstruction measures Gk(v) extraction per view depth.
func BenchmarkLocalViewConstruction(b *testing.B) {
	net := benchNetwork(b, 100, 6, 3)
	base := view.BasePriorities(net.G, view.MetricID)
	for _, k := range []int{1, 2, 3, 5, 0} {
		k := k
		name := fmt.Sprintf("k=%d", k)
		if k == 0 {
			name = "global"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				view.NewLocal(net.G, i%100, k, base)
			}
		})
	}
}

// BenchmarkWorkloadGeneration measures the exact-link-count unit disk graph
// generator.
func BenchmarkWorkloadGeneration(b *testing.B) {
	for _, n := range []int{20, 50, 100} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			rng := rand.New(rand.NewSource(4))
			for i := 0; i < b.N; i++ {
				if _, err := geo.Generate(geo.Config{N: n, AvgDegree: 6}, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTopologyBuild contrasts the reference full-sort generator
// (O(n^2 log n): every candidate link materialized and sorted) against the
// grid-indexed one (cell size = candidate range, 8-neighbor scan,
// guess-and-verify range selection) at large n. Both produce bit-identical
// networks (pinned by the geo golden and equivalence tests); only the cost
// may differ. The naive side stops at n=5000, where one build already takes
// seconds and hundreds of MB of candidate pairs.
func BenchmarkTopologyBuild(b *testing.B) {
	cases := []struct {
		n     int
		naive bool
	}{
		{n: 500, naive: true}, {n: 500},
		{n: 2000, naive: true}, {n: 2000},
		{n: 5000, naive: true}, {n: 5000},
		{n: 10000}, {n: 25000},
	}
	for _, c := range cases {
		c := c
		path := "grid"
		if c.naive {
			path = "naive"
		}
		b.Run(fmt.Sprintf("%s/n=%d", path, c.n), func(b *testing.B) {
			b.ReportAllocs()
			rng := rand.New(rand.NewSource(21))
			links := 0
			for i := 0; i < b.N; i++ {
				net, err := geo.Generate(geo.Config{N: c.n, AvgDegree: 18, Naive: c.naive}, rng)
				if err != nil {
					b.Fatal(err)
				}
				links = net.G.M()
			}
			b.ReportMetric(float64(links), "links/op")
		})
	}
}

// BenchmarkScalePoint measures one replicate of a large-n scale-sweep point:
// topology generation plus one broadcast of each scale variant (flooding and
// the generic Static/FR/FRB corners) on a 1000-node, d=18 network. This is
// the unit of work `cmd/experiments -scale` repeats, so BENCH_results.json
// tracks the scale trajectory alongside the paper-sized figures.
func BenchmarkScalePoint(b *testing.B) {
	cfg := experiments.ScaleConfig{
		Sizes:       []int{1000},
		Degree:      18,
		Replicates:  1,
		Seed:        5,
		Parallelism: 1,
	}
	b.ReportAllocs()
	forward := 0.0
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Scale(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Variant == "Generic-FR" {
				forward = r.Forward
			}
			if r.Delivery != 100 {
				b.Fatalf("%s delivered %v%%", r.Variant, r.Delivery)
			}
		}
	}
	b.ReportMetric(forward, "fwdpct/op")
}

// BenchmarkLoadPoint measures one replicate of a saturation-sweep point at
// the knee load (0.1 sessions/slot, n=100, d=6): workload generation plus a
// multi-session contention-MAC run of each load variant, including the NACK
// one. This is the unit of work `cmd/experiments -ext load` repeats, so
// BENCH_results.json tracks the heavy-traffic trajectory alongside the
// single-broadcast figures.
func BenchmarkLoadPoint(b *testing.B) {
	cfg := experiments.LoadConfig{
		Rates:       []float64{0.1},
		Replicates:  1,
		Seed:        5,
		Parallelism: 1,
	}
	b.ReportAllocs()
	delivery := 0.0
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Load(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Variant == "Generic-FRB+NACK" {
				delivery = r.Delivery
			}
		}
	}
	b.ReportMetric(delivery, "delivpct/op")
}

// peakRSSMB reports the process's peak resident set in MB (getrusage Maxrss,
// which Linux reports in KB). It only ever grows, so in a multi-benchmark run
// the number belongs to the largest workload measured so far — which is why
// only the scale benchmarks report it.
func peakRSSMB() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return float64(ru.Maxrss) / 1024
}

// BenchmarkScaleEngine measures one broadcast at the scale-sweep extremes —
// n=100,000 and n=1,000,000 at d=18 — through the fast engine with a reused
// arena, reporting the process's peak resident set alongside ns/op. One
// iteration is a complete Generic-FR broadcast reaching every node; topology
// generation is memoized outside the timer, and the arena's view cache makes
// iterations after the first measure the steady-state engine cost, which is
// exactly the regime the million-node sweep runs in. The n=1M case is skipped
// in -short runs (CI benchmark smoke).
func BenchmarkScaleEngine(b *testing.B) {
	for _, n := range []int{100000, 1000000} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			if n > 100000 && testing.Short() {
				b.Skip("skipping n=1M in -short mode")
			}
			net := benchNetwork(b, n, 18, 13)
			arena := sim.NewArena()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := sim.RunWith(arena, net.G, i%n,
					protocol.Generic(protocol.TimingFirstReceipt),
					sim.Config{Hops: 2, Seed: int64(i + 1)})
				if err != nil {
					b.Fatal(err)
				}
				if !res.FullDelivery() {
					b.Fatalf("delivery %d/%d", res.Delivered, res.N)
				}
			}
			b.StopTimer()
			b.ReportMetric(peakRSSMB(), "peakRSS-MB")
		})
	}
}

// BenchmarkMaxMinPath measures the MAX_MIN maximal-replacement-path
// construction.
func BenchmarkMaxMinPath(b *testing.B) {
	net := benchNetwork(b, 100, 6, 5)
	base := view.BasePriorities(net.G, view.MetricID)
	type job struct {
		lv   *view.Local
		u, w int
	}
	var jobs []job
	for v := 0; v < net.G.N(); v++ {
		lv := view.NewLocal(net.G, v, 3, base)
		nbrs := lv.Neighbors()
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				jobs = append(jobs, job{lv: lv, u: nbrs[i], w: nbrs[j]})
			}
		}
	}
	if len(jobs) == 0 {
		b.Skip("no neighbor pairs")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := jobs[i%len(jobs)]
		core.MaxMinPath(j.lv, j.u, j.w)
	}
}

// BenchmarkGraphPrimitives covers the substrate hot paths.
func BenchmarkGraphPrimitives(b *testing.B) {
	net := benchNetwork(b, 100, 18, 6)
	b.Run("HasEdge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			net.G.HasEdge(i%100, (i*7)%100)
		}
	})
	b.Run("BFSDistances", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			net.G.BFSDistances(i % 100)
		}
	})
	b.Run("NCR", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			view.NCR(net.G, i%100)
		}
	})
}

// BenchmarkHelloRounds measures the hello-message discovery layer: the cost
// of assembling k-hop information for the whole network.
func BenchmarkHelloRounds(b *testing.B) {
	net := benchNetwork(b, 100, 6, 8)
	for _, k := range []int{1, 2, 3} {
		k := k
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := hello.New(net.G)
				p.RunRounds(k)
			}
		})
	}
}

// BenchmarkCDS measures the backbone constructions: Wu-Li marking, the
// Guha-Khuller greedy, and the coverage-condition reduction.
func BenchmarkCDS(b *testing.B) {
	net := benchNetwork(b, 100, 6, 9)
	b.Run("MarkingProcess", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cds.MarkingProcess(net.G)
		}
	})
	b.Run("GuhaKhuller", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cds.GuhaKhuller(net.G); err != nil {
				b.Fatal(err)
			}
		}
	})
	marked := cds.MarkingProcess(net.G)
	b.Run("Reduce", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cds.Reduce(net.G, marked)
		}
	})
}

// BenchmarkClustering measures lowest-id clustering and its backbone
// extraction on a dense network.
func BenchmarkClustering(b *testing.B) {
	net := benchNetwork(b, 100, 18, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cluster.LowestID(net.G)
		c.Backbone(net.G)
	}
}

// BenchmarkUnreliableMAC contrasts the simulator's fast path against the
// collision-batched loop.
func BenchmarkUnreliableMAC(b *testing.B) {
	configs := []struct {
		name string
		cfg  sim.Config
	}{
		{name: "clean", cfg: sim.Config{Hops: 2}},
		{name: "loss", cfg: sim.Config{Hops: 2, LossRate: 0.1}},
		{name: "collisions+jitter", cfg: sim.Config{Hops: 2, Collisions: true, TxJitter: 1}},
	}
	net := benchNetwork(b, 100, 6, 11)
	for _, c := range configs {
		c := c
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := c.cfg
				cfg.Seed = int64(i + 1)
				if _, err := sim.Run(net.G, i%100, protocol.Flooding(), cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGreedyCover measures the DP/MPR greedy set-cover heuristic.
func BenchmarkGreedyCover(b *testing.B) {
	net := benchNetwork(b, 100, 18, 7)
	base := view.BasePriorities(net.G, view.MetricID)
	views := make([]*view.Local, net.G.N())
	for v := range views {
		views[v] = view.NewLocal(net.G, v, 2, base)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lv := views[i%len(views)]
		protocol.GreedyCover(lv, lv.Neighbors(), lv.TwoHopTargets())
	}
}
