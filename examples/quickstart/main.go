// Quickstart: generate a random ad hoc network, broadcast a packet with the
// generic first-receipt algorithm, and compare the forward-node count
// against blind flooding.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"adhocbcast/internal/geo"
	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
	"adhocbcast/internal/view"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Generate a connected unit disk graph: 100 nodes uniformly placed
	// in a 100x100 area, transmitter range tuned for average degree 6.
	rng := rand.New(rand.NewSource(2003))
	net, err := geo.Generate(geo.Config{N: 100, AvgDegree: 6}, rng)
	if err != nil {
		return err
	}
	fmt.Printf("network: %d nodes, %d links, range %.2f\n",
		net.G.N(), net.G.M(), net.Range)

	// 2. Broadcast from node 0 with the generic self-pruning algorithm:
	// each node decides right after its first packet receipt, using 2-hop
	// neighborhood information and node degree as the priority.
	cfg := sim.Config{
		Hops:   2,
		Metric: view.MetricDegree,
		Seed:   1,
	}
	res, err := sim.Run(net.G, 0, protocol.Generic(protocol.TimingFirstReceipt), cfg)
	if err != nil {
		return err
	}
	fmt.Printf("generic FR: %d of %d nodes forwarded, delivery %d/%d, finished at t=%.1f\n",
		res.ForwardCount(), res.N, res.Delivered, res.N, res.Finish)

	// 3. Compare against blind flooding (every node forwards once).
	flood, err := sim.Run(net.G, 0, protocol.Flooding(), cfg)
	if err != nil {
		return err
	}
	fmt.Printf("flooding:   %d of %d nodes forwarded\n", flood.ForwardCount(), flood.N)
	saved := 100 * float64(flood.ForwardCount()-res.ForwardCount()) / float64(flood.ForwardCount())
	fmt.Printf("the coverage condition pruned %.0f%% of all transmissions\n", saved)
	return nil
}
