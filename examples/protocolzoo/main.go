// Protocolzoo: run every implemented broadcast algorithm — the nine
// published special cases, the new generic/hybrid algorithms, and blind
// flooding — on the same network and broadcast, and print a comparison table
// grouped by the paper's Table 1 categories.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"adhocbcast/internal/geo"
	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
	"adhocbcast/internal/view"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

type entry struct {
	group string
	make  func() sim.Protocol
}

func run() error {
	rng := rand.New(rand.NewSource(2003))
	net, err := geo.Generate(geo.Config{N: 100, AvgDegree: 6}, rng)
	if err != nil {
		return err
	}
	source := rng.Intn(net.G.N())
	fmt.Printf("network: %d nodes, %d links, source %d, 2-hop views, degree priority\n\n",
		net.G.N(), net.G.M(), source)

	entries := []entry{
		{group: "baseline", make: protocol.Flooding},
		{group: "static", make: protocol.WuLi},
		{group: "static", make: protocol.RuleK},
		{group: "static", make: protocol.Span},
		{group: "static", make: protocol.MPR},
		{group: "static", make: func() sim.Protocol { return protocol.Generic(protocol.TimingStatic) }},
		{group: "first-receipt", make: protocol.LimKimSelfPruning},
		{group: "first-receipt", make: protocol.AHBP},
		{group: "first-receipt", make: protocol.DP},
		{group: "first-receipt", make: protocol.PDP},
		{group: "first-receipt", make: protocol.TDP},
		{group: "first-receipt", make: protocol.LENWB},
		{group: "first-receipt", make: protocol.NeighborDesignatingFR},
		{group: "first-receipt", make: protocol.HybridMaxDeg},
		{group: "first-receipt", make: protocol.HybridMinPri},
		{group: "first-receipt", make: func() sim.Protocol { return protocol.Generic(protocol.TimingFirstReceipt) }},
		{group: "with-backoff", make: protocol.SBA},
		{group: "with-backoff", make: protocol.Stojmenovic},
		{group: "with-backoff", make: func() sim.Protocol { return protocol.Generic(protocol.TimingBackoffRandom) }},
		{group: "with-backoff", make: func() sim.Protocol { return protocol.Generic(protocol.TimingBackoffDegree) }},
	}

	lastGroup := ""
	for _, e := range entries {
		p := e.make()
		res, err := sim.Run(net.G, source, p, sim.Config{
			Hops:   2,
			Metric: view.MetricDegree,
			Seed:   99,
		})
		if err != nil {
			return err
		}
		if !res.FullDelivery() {
			return fmt.Errorf("%s: delivered %d/%d", p.Name(), res.Delivered, res.N)
		}
		if e.group != lastGroup {
			fmt.Printf("[%s]\n", e.group)
			lastGroup = e.group
		}
		fmt.Printf("  %-16s %3d forward nodes   finish t=%6.2f\n",
			p.Name(), res.ForwardCount(), res.Finish)
	}
	return nil
}
