// OLSR-style link-state flooding with multipoint relays: every node selects
// a minimal relay set among its neighbors covering its 2-hop neighborhood
// (the MPR selection of Section 6.3, used by OLSR to flood link-state
// advertisements), then each node floods one message and only relays
// retransmit. The example reports relay statistics against blind flooding.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"adhocbcast/internal/geo"
	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
	"adhocbcast/internal/view"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(11))
	net, err := geo.Generate(geo.Config{N: 60, AvgDegree: 10}, rng)
	if err != nil {
		return err
	}
	fmt.Printf("network: %d nodes, %d links\n", net.G.N(), net.G.M())

	// Inspect the MPR sets themselves: the relay set each node would
	// install for OLSR TC flooding.
	base := view.BasePriorities(net.G, view.MetricID)
	totalRelays := 0
	for v := 0; v < net.G.N(); v++ {
		lv := view.NewLocal(net.G, v, 2, base)
		mprs := protocol.GreedyCover(lv, lv.Neighbors(), lv.TwoHopTargets())
		totalRelays += len(mprs)
		if v < 3 {
			fmt.Printf("node %2d: degree %2d, MPR set %v\n", v, net.G.Degree(v), mprs)
		}
	}
	fmt.Printf("average MPR set size: %.2f (average degree %.2f)\n",
		float64(totalRelays)/float64(net.G.N()), net.G.AverageDegree())

	// Flood one link-state message from every node and compare the number
	// of transmissions against blind flooding (which always costs n).
	totalForwards := 0
	for src := 0; src < net.G.N(); src++ {
		res, err := sim.Run(net.G, src, protocol.MPR(), sim.Config{Hops: 2, Seed: int64(src)})
		if err != nil {
			return err
		}
		if !res.FullDelivery() {
			return fmt.Errorf("source %d: delivered %d/%d", src, res.Delivered, res.N)
		}
		totalForwards += res.ForwardCount()
	}
	n := net.G.N()
	avg := float64(totalForwards) / float64(n)
	fmt.Printf("MPR flooding: %.2f transmissions per broadcast (flooding: %d)\n", avg, n)
	fmt.Printf("relay savings: %.0f%%\n", 100*(1-avg/float64(n)))
	return nil
}
