package main

import "testing"

// TestRun executes the example end to end; examples are part of the tested
// surface, not just documentation.
func TestRun(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
