// Backbone: build a static virtual backbone (connected dominating set) with
// the static coverage condition, verify the CDS property, and compare the
// backbone sizes produced by Rule k, enhanced Span and the generic
// condition. A static backbone is broadcast-independent: the same forward
// node set serves every source (Section 4.1).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"adhocbcast/internal/cds"
	"adhocbcast/internal/core"
	"adhocbcast/internal/geo"
	"adhocbcast/internal/graph"
	"adhocbcast/internal/view"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(7))
	net, err := geo.Generate(geo.Config{N: 80, AvgDegree: 8}, rng)
	if err != nil {
		return err
	}
	fmt.Printf("network: %d nodes, %d links\n", net.G.N(), net.G.M())

	conditions := []struct {
		name    string
		covered func(lv *view.Local) bool
	}{
		{name: "Span (<=3-hop paths)", covered: core.SpanCovered},
		{name: "Rule k (strong)", covered: core.StrongCovered},
		{name: "Generic (full)", covered: core.Covered},
	}
	base := view.BasePriorities(net.G, view.MetricNCR)
	for _, cond := range conditions {
		backbone := buildBackbone(net.G, base, cond.covered)
		ok := isCDS(net.G, backbone)
		fmt.Printf("%-26s backbone size %2d  (connected dominating set: %v)\n",
			cond.name, len(backbone), ok)
		if !ok {
			return fmt.Errorf("%s produced an invalid backbone", cond.name)
		}
	}

	// Compare against the raw Wu-Li marking process, the centralized
	// Guha-Khuller greedy, and the Section 1 post-processing idea: apply
	// the coverage condition on top of an existing CDS to shrink it.
	marking := cds.MarkingProcess(net.G)
	fmt.Printf("%-26s backbone size %2d  (connected dominating set: %v)\n",
		"Marking process (no rules)", len(marking), cds.IsCDS(net.G, marking))
	reduced := cds.Reduce(net.G, marking)
	fmt.Printf("%-26s backbone size %2d  (connected dominating set: %v)\n",
		"Marking + coverage-reduce", len(reduced), cds.IsCDS(net.G, reduced))
	greedy, err := cds.GuhaKhuller(net.G)
	if err != nil {
		return err
	}
	fmt.Printf("%-26s backbone size %2d  (connected dominating set: %v)\n",
		"Guha-Khuller (centralized)", len(greedy), cds.IsCDS(net.G, greedy))
	return nil
}

// buildBackbone evaluates the static coverage condition at every node over
// its 3-hop local view; nodes that are not covered form the backbone.
func buildBackbone(g *graph.Graph, base []view.Priority, covered func(*view.Local) bool) []int {
	var backbone []int
	for v := 0; v < g.N(); v++ {
		lv := view.NewLocal(g, v, 3, base)
		if !covered(lv) {
			backbone = append(backbone, v)
		}
	}
	return backbone
}

// isCDS verifies the connected-dominating-set property of Theorem 1: every
// node is in the backbone or adjacent to it, and the backbone induces a
// connected subgraph. Complete graphs need no backbone at all.
func isCDS(g *graph.Graph, backbone []int) bool {
	if g.IsComplete() {
		return true
	}
	if len(backbone) == 0 {
		return false
	}
	inSet := make([]bool, g.N())
	for _, v := range backbone {
		inSet[v] = true
	}
	for v := 0; v < g.N(); v++ {
		if inSet[v] {
			continue
		}
		dominated := false
		g.ForEachNeighbor(v, func(u int) {
			if inSet[u] {
				dominated = true
			}
		})
		if !dominated {
			return false
		}
	}
	induced := graph.New(g.N())
	for _, v := range backbone {
		g.ForEachNeighbor(v, func(u int) {
			if inSet[u] && u > v {
				// Both endpoints are backbone members of g.
				_ = induced.AddEdge(v, u)
			}
		})
	}
	seen := induced.BFSDistances(backbone[0])
	for _, v := range backbone {
		if seen[v] < 0 {
			return false
		}
	}
	return true
}
