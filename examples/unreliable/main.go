// Unreliable: broadcast under real-world conditions — a collision MAC where
// synchronized retransmissions destroy each other, forwarding jitter to
// de-synchronize them, and node mobility that leaves every view stale. It
// demonstrates the two prose claims of the paper's introduction: jitter
// relieves the broadcast storm, and moderate mobility is absorbed by
// broadcast redundancy.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"adhocbcast/internal/geo"
	"adhocbcast/internal/mobility"
	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(42))
	net, err := geo.Generate(geo.Config{N: 100, AvgDegree: 6}, rng)
	if err != nil {
		return err
	}
	fmt.Printf("network: %d nodes, %d links\n\n", net.G.N(), net.G.M())

	// Part 1: the broadcast storm. Under a collision MAC, flooding's
	// synchronized wave collides with itself; one slot of jitter fixes it.
	fmt.Println("collision MAC (averaged over 25 broadcasts):")
	for _, tc := range []struct {
		label  string
		mk     func() sim.Protocol
		jitter float64
	}{
		{label: "flooding, no jitter", mk: protocol.Flooding},
		{label: "flooding, 1-slot jitter", mk: protocol.Flooding, jitter: 1},
		{label: "generic FR, no jitter", mk: func() sim.Protocol {
			return protocol.Generic(protocol.TimingFirstReceipt)
		}},
	} {
		delivery, collided := 0.0, 0
		const runs = 25
		for i := 0; i < runs; i++ {
			res, err := sim.Run(net.G, i%100, tc.mk(), sim.Config{
				Hops:       2,
				Collisions: true,
				TxJitter:   tc.jitter,
				Seed:       int64(i + 1),
			})
			if err != nil {
				return err
			}
			delivery += res.DeliveryRatio()
			collided += res.Collided
		}
		fmt.Printf("  %-26s delivery %5.1f%%   collided copies/run %5.1f\n",
			tc.label, 100*delivery/runs, float64(collided)/runs)
	}

	// Part 2: mobility. Views come from a pre-movement snapshot; packets
	// propagate over the moved topology.
	fmt.Println("\nstale views under mobility (max step 5 units, 25 broadcasts):")
	for _, tc := range []struct {
		label string
		mk    func() sim.Protocol
	}{
		{label: "flooding", mk: protocol.Flooding},
		{label: "SBA (redundant)", mk: protocol.SBA},
		{label: "generic FR (aggressive)", mk: func() sim.Protocol {
			return protocol.Generic(protocol.TimingFirstReceipt)
		}},
	} {
		delivery := 0.0
		const runs = 25
		for i := 0; i < runs; i++ {
			moved := mobility.Perturbed(net, 100, 5, int64(100+i))
			res, err := sim.Run(moved.G, i%100, tc.mk(), sim.Config{
				Hops:         2,
				ViewTopology: net.G,
				Seed:         int64(i + 1),
			})
			if err != nil {
				return err
			}
			delivery += res.DeliveryRatio()
		}
		fmt.Printf("  %-26s delivery %5.1f%%\n", tc.label, 100*delivery/runs)
	}
	fmt.Println("\nmore redundancy -> more mobility tolerance; jitter -> fewer collisions")
	return nil
}
