package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUnionFindSingletons(t *testing.T) {
	uf := NewUnionFind(4)
	for i := 0; i < 4; i++ {
		if uf.Find(i) != i {
			t.Fatalf("Find(%d) = %d in fresh structure", i, uf.Find(i))
		}
	}
	if uf.Same(0, 1) {
		t.Fatal("fresh singletons reported same")
	}
}

func TestUnionFindMerge(t *testing.T) {
	uf := NewUnionFind(6)
	if !uf.Union(0, 1) {
		t.Fatal("Union(0,1) reported already merged")
	}
	if uf.Union(1, 0) {
		t.Fatal("Union(1,0) reported a new merge")
	}
	uf.Union(2, 3)
	uf.Union(0, 3)
	if !uf.Same(1, 2) {
		t.Fatal("transitive union failed")
	}
	if uf.Same(1, 4) {
		t.Fatal("unrelated elements reported same")
	}
}

// TestUnionFindQuick models union-find against component labels computed by
// graph BFS: the two must agree on every pair.
func TestUnionFindQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := randomGraph(rng, n, 0.08)
		uf := NewUnionFind(n)
		for _, e := range g.Edges() {
			uf.Union(e[0], e[1])
		}
		labels, _ := g.Components()
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if uf.Same(u, v) != (labels[u] == labels[v]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickConfig(80)); err != nil {
		t.Fatal(err)
	}
}
