package graph

// UnionFind is a disjoint-set forest with union by rank and path compression.
// It is used to contract higher-priority components during coverage-condition
// evaluation.
type UnionFind struct {
	parent []int
	rank   []int
}

// NewUnionFind returns a union-find structure over n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]int, n),
		rank:   make([]int, n),
	}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Find returns the canonical representative of x's set.
func (uf *UnionFind) Find(x int) int {
	root := x
	for uf.parent[root] != root {
		root = uf.parent[root]
	}
	for uf.parent[x] != root {
		uf.parent[x], x = root, uf.parent[x]
	}
	return root
}

// Union merges the sets containing x and y and reports whether they were
// previously distinct.
func (uf *UnionFind) Union(x, y int) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	return true
}

// Reset returns every element to its own singleton set, allowing the
// structure to be reused without reallocating.
func (uf *UnionFind) Reset() {
	for i := range uf.parent {
		uf.parent[i] = i
		uf.rank[i] = 0
	}
}

// ResetSubset returns each listed element to its own singleton set. Callers
// that only ever union elements of a known subset can reset just that subset
// between uses instead of paying the full O(n) Reset.
func (uf *UnionFind) ResetSubset(xs []int) {
	for _, x := range xs {
		uf.parent[x] = x
		uf.rank[x] = 0
	}
}

// Same reports whether x and y are in the same set.
func (uf *UnionFind) Same(x, y int) bool {
	return uf.Find(x) == uf.Find(y)
}
