package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// path builds the path graph 0-1-2-...-(n-1).
func path(t *testing.T, n int) *Graph {
	t.Helper()
	g := New(n)
	for i := 0; i+1 < n; i++ {
		mustEdge(t, g, i, i+1)
	}
	return g
}

func TestBFSDistancesPath(t *testing.T) {
	g := path(t, 5)
	dist := g.BFSDistances(0)
	if !equalInts(dist, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("dist = %v", dist)
	}
	dist = g.BFSDistances(2)
	if !equalInts(dist, []int{2, 1, 0, 1, 2}) {
		t.Fatalf("dist from middle = %v", dist)
	}
}

func TestBFSDistancesDisconnected(t *testing.T) {
	g := New(4)
	mustEdge(t, g, 0, 1)
	dist := g.BFSDistances(0)
	if !equalInts(dist, []int{0, 1, -1, -1}) {
		t.Fatalf("dist = %v", dist)
	}
}

func TestBFSDistancesBadSource(t *testing.T) {
	g := New(3)
	dist := g.BFSDistances(7)
	if !equalInts(dist, []int{-1, -1, -1}) {
		t.Fatalf("dist = %v", dist)
	}
}

func TestConnected(t *testing.T) {
	tests := []struct {
		name  string
		build func(t *testing.T) *Graph
		want  bool
	}{
		{name: "empty", build: func(t *testing.T) *Graph { return New(0) }, want: true},
		{name: "single", build: func(t *testing.T) *Graph { return New(1) }, want: true},
		{name: "path", build: func(t *testing.T) *Graph { return path(t, 6) }, want: true},
		{name: "two components", build: func(t *testing.T) *Graph {
			g := New(4)
			mustEdge(t, g, 0, 1)
			mustEdge(t, g, 2, 3)
			return g
		}, want: false},
		{name: "isolated vertex", build: func(t *testing.T) *Graph {
			g := New(3)
			mustEdge(t, g, 0, 1)
			return g
		}, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.build(t).Connected(); got != tt.want {
				t.Fatalf("Connected() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 4, 5)
	labels, count := g.Components()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if !equalInts(labels, []int{0, 0, 0, 1, 2, 2}) {
		t.Fatalf("labels = %v", labels)
	}
}

func TestKHopNeighbors(t *testing.T) {
	g := path(t, 6)
	tests := []struct {
		v, k int
		want []int
	}{
		{v: 0, k: 0, want: []int{0}},
		{v: 0, k: 1, want: []int{0, 1}},
		{v: 2, k: 2, want: []int{0, 1, 2, 3, 4}},
		{v: 2, k: 10, want: []int{0, 1, 2, 3, 4, 5}},
	}
	for _, tt := range tests {
		got := g.KHopNeighbors(tt.v, tt.k)
		if !equalInts(got, tt.want) {
			t.Fatalf("KHopNeighbors(%d,%d) = %v, want %v", tt.v, tt.k, got, tt.want)
		}
	}
}

// TestLocalViewDefinition2 checks the exact edge membership rule of
// Definition 2 on a graph where two vertices exactly k hops away share an
// edge: that edge must be invisible.
func TestLocalViewDefinition2(t *testing.T) {
	// 0-1, 0-2, 1-3, 2-4, 3-4: vertices 3 and 4 are both 2 hops from 0, so
	// the edge {3,4} is not in E2(0), while {1,3} and {2,4} are.
	g := New(5)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 2)
	mustEdge(t, g, 1, 3)
	mustEdge(t, g, 2, 4)
	mustEdge(t, g, 3, 4)

	sub, visible := g.LocalView(0, 2)
	for v := 0; v < 5; v++ {
		if !visible[v] {
			t.Fatalf("vertex %d invisible in 2-hop view", v)
		}
	}
	wantEdges := map[[2]int]bool{{0, 1}: true, {0, 2}: true, {1, 3}: true, {2, 4}: true}
	for _, e := range sub.Edges() {
		if !wantEdges[e] {
			t.Fatalf("unexpected edge %v in E2(0)", e)
		}
		delete(wantEdges, e)
	}
	if len(wantEdges) != 0 {
		t.Fatalf("missing edges in E2(0): %v", wantEdges)
	}

	// With 3-hop information the {3,4} link becomes visible.
	sub3, _ := g.LocalView(0, 3)
	if !sub3.HasEdge(3, 4) {
		t.Fatal("edge {3,4} missing from 3-hop view")
	}
}

func TestLocalViewOneHop(t *testing.T) {
	// G1(v) contains only the star around v: links between two neighbors
	// are invisible (the paper's example following Definition 2).
	g := New(3)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 2)
	mustEdge(t, g, 1, 2)
	sub, visible := g.LocalView(0, 1)
	if !visible[0] || !visible[1] || !visible[2] {
		t.Fatalf("visible = %v", visible)
	}
	if sub.HasEdge(1, 2) {
		t.Fatal("link between two 1-hop neighbors must be invisible in G1")
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(0, 2) {
		t.Fatal("star edges missing from G1")
	}
}

func TestLocalViewGlobal(t *testing.T) {
	g := path(t, 4)
	for _, k := range []int{0, -1, 4, 99} {
		sub, visible := g.LocalView(1, k)
		if sub.M() != g.M() {
			t.Fatalf("k=%d: M = %d, want %d", k, sub.M(), g.M())
		}
		for v, ok := range visible {
			if !ok {
				t.Fatalf("k=%d: vertex %d invisible in global view", k, v)
			}
		}
	}
}

func TestLocalViewInvisibleBeyondK(t *testing.T) {
	g := path(t, 6)
	_, visible := g.LocalView(0, 2)
	want := []bool{true, true, true, false, false, false}
	for v := range want {
		if visible[v] != want[v] {
			t.Fatalf("visible[%d] = %v, want %v", v, visible[v], want[v])
		}
	}
}

// TestLocalViewQuick property-checks the view invariants on random graphs:
// (1) visibility equals BFS distance <= k, (2) every view edge exists in the
// original graph, (3) every view edge has an endpoint within k-1 hops, and
// (4) every original edge with an endpoint within k-1 hops (other endpoint
// within k) appears.
func TestLocalViewQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		g := randomGraph(rng, n, 0.2)
		v := rng.Intn(n)
		k := 1 + rng.Intn(4)
		sub, visible := g.LocalView(v, k)
		dist := g.BFSDistances(v)
		for u := 0; u < n; u++ {
			wantVis := dist[u] >= 0 && dist[u] <= k
			if visible[u] != wantVis {
				return false
			}
		}
		for _, e := range sub.Edges() {
			if !g.HasEdge(e[0], e[1]) {
				return false
			}
			du, dw := dist[e[0]], dist[e[1]]
			if du > k-1 && dw > k-1 {
				return false
			}
		}
		for _, e := range g.Edges() {
			du, dw := dist[e[0]], dist[e[1]]
			if du < 0 || dw < 0 || du > k || dw > k {
				continue
			}
			inView := du <= k-1 || dw <= k-1
			if inView != sub.HasEdge(e[0], e[1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickConfig(100)); err != nil {
		t.Fatal(err)
	}
}
