package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewGraphEmpty(t *testing.T) {
	g := New(5)
	if got := g.N(); got != 5 {
		t.Fatalf("N() = %d, want 5", got)
	}
	if got := g.M(); got != 0 {
		t.Fatalf("M() = %d, want 0", got)
	}
	for v := 0; v < 5; v++ {
		if got := g.Degree(v); got != 0 {
			t.Fatalf("Degree(%d) = %d, want 0", v, got)
		}
	}
}

func TestNewGraphNegative(t *testing.T) {
	g := New(-3)
	if got := g.N(); got != 0 {
		t.Fatalf("N() = %d, want 0", got)
	}
}

func TestAddEdge(t *testing.T) {
	g := New(4)
	if err := g.AddEdge(0, 2); err != nil {
		t.Fatalf("AddEdge(0,2): %v", err)
	}
	if !g.HasEdge(0, 2) || !g.HasEdge(2, 0) {
		t.Fatal("edge {0,2} not symmetric")
	}
	if g.HasEdge(0, 1) {
		t.Fatal("unexpected edge {0,1}")
	}
	if got := g.M(); got != 1 {
		t.Fatalf("M() = %d, want 1", got)
	}
}

func TestAddEdgeIdempotent(t *testing.T) {
	g := New(3)
	for i := 0; i < 3; i++ {
		if err := g.AddEdge(1, 2); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	if got := g.M(); got != 1 {
		t.Fatalf("M() = %d after duplicate adds, want 1", got)
	}
	if got := g.Degree(1); got != 1 {
		t.Fatalf("Degree(1) = %d, want 1", got)
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	tests := []struct {
		name string
		u, v int
	}{
		{name: "self-loop", u: 1, v: 1},
		{name: "negative", u: -1, v: 0},
		{name: "out of range", u: 0, v: 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := g.AddEdge(tt.u, tt.v); err == nil {
				t.Fatalf("AddEdge(%d,%d) succeeded, want error", tt.u, tt.v)
			}
		})
	}
	if g.M() != 0 {
		t.Fatalf("M() = %d after failed adds, want 0", g.M())
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New(4)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	g.RemoveEdge(0, 1)
	if g.HasEdge(0, 1) {
		t.Fatal("edge {0,1} still present after removal")
	}
	if !g.HasEdge(1, 2) {
		t.Fatal("edge {1,2} removed by mistake")
	}
	if got := g.M(); got != 1 {
		t.Fatalf("M() = %d, want 1", got)
	}
	g.RemoveEdge(0, 1) // removing a missing edge is a no-op
	if got := g.M(); got != 1 {
		t.Fatalf("M() = %d after double removal, want 1", got)
	}
}

func TestNeighborsSortedAndCopied(t *testing.T) {
	g := New(5)
	mustEdge(t, g, 3, 1)
	mustEdge(t, g, 3, 4)
	mustEdge(t, g, 3, 0)
	nbrs := g.Neighbors(3)
	want := []int{0, 1, 4}
	if !equalInts(nbrs, want) {
		t.Fatalf("Neighbors(3) = %v, want %v", nbrs, want)
	}
	nbrs[0] = 99 // mutating the copy must not corrupt the graph
	if !equalInts(g.Neighbors(3), want) {
		t.Fatal("Neighbors returned internal storage")
	}
}

func TestForEachNeighborOrder(t *testing.T) {
	g := New(6)
	for _, v := range []int{5, 2, 4, 1} {
		mustEdge(t, g, 0, v)
	}
	var got []int
	g.ForEachNeighbor(0, func(u int) { got = append(got, u) })
	if !equalInts(got, []int{1, 2, 4, 5}) {
		t.Fatalf("ForEachNeighbor order = %v", got)
	}
}

func TestEdges(t *testing.T) {
	g := New(4)
	mustEdge(t, g, 2, 1)
	mustEdge(t, g, 0, 3)
	edges := g.Edges()
	want := [][2]int{{0, 3}, {1, 2}}
	if len(edges) != len(want) {
		t.Fatalf("Edges() = %v, want %v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("Edges() = %v, want %v", edges, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(3)
	mustEdge(t, g, 0, 1)
	c := g.Clone()
	mustEdge(t, c, 1, 2)
	if g.HasEdge(1, 2) {
		t.Fatal("mutating the clone changed the original")
	}
	if !c.HasEdge(0, 1) {
		t.Fatal("clone lost an edge")
	}
	if g.M() != 1 || c.M() != 2 {
		t.Fatalf("edge counts: g=%d c=%d, want 1 and 2", g.M(), c.M())
	}
}

func TestAverageDegree(t *testing.T) {
	g := New(4)
	if got := g.AverageDegree(); got != 0 {
		t.Fatalf("AverageDegree() = %v, want 0", got)
	}
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 2, 3)
	if got := g.AverageDegree(); got != 1 {
		t.Fatalf("AverageDegree() = %v, want 1", got)
	}
	if New(0).AverageDegree() != 0 {
		t.Fatal("AverageDegree of empty graph should be 0")
	}
}

func TestIsComplete(t *testing.T) {
	g := New(3)
	if g.IsComplete() {
		t.Fatal("empty 3-graph reported complete")
	}
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 2)
	mustEdge(t, g, 1, 2)
	if !g.IsComplete() {
		t.Fatal("triangle not reported complete")
	}
	if !New(1).IsComplete() {
		t.Fatal("single vertex should be complete")
	}
}

// TestHasEdgeQuick property-checks HasEdge symmetry and consistency with the
// edge list on random graphs.
func TestHasEdgeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := randomGraph(rng, n, 0.3)
		present := make(map[[2]int]bool)
		for _, e := range g.Edges() {
			present[e] = true
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				want := present[[2]int{min(u, v), max(u, v)}] && u != v
				if g.HasEdge(u, v) != want {
					return false
				}
				if g.HasEdge(u, v) != g.HasEdge(v, u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickConfig(50)); err != nil {
		t.Fatal(err)
	}
}

// TestDegreeSumQuick property-checks the handshake lemma: degrees sum to 2M.
func TestDegreeSumQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		g := randomGraph(rng, n, 0.25)
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, quickConfig(100)); err != nil {
		t.Fatal(err)
	}
}

// --- shared test helpers ---

func mustEdge(t *testing.T, g *Graph, u, v int) {
	t.Helper()
	if err := g.AddEdge(u, v); err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// randomGraph builds an Erdős–Rényi style graph with edge probability p.
func randomGraph(rng *rand.Rand, n int, p float64) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				if err := g.AddEdge(u, v); err != nil {
					panic(err)
				}
			}
		}
	}
	return g
}

func quickConfig(iters int) *quick.Config {
	return &quick.Config{
		MaxCount: iters,
		Rand:     rand.New(rand.NewSource(1)),
	}
}
