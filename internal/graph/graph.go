// Package graph provides the undirected-graph substrate used throughout the
// broadcast framework: adjacency-set graphs, traversal, connectivity,
// connected components, k-hop neighborhoods and the k-hop local-view
// subgraphs of Definition 2 in the paper.
package graph

import (
	"fmt"
	"sort"
)

// Graph is a simple undirected graph on vertices 0..N()-1.
//
// Neighbor lists are kept sorted in ascending vertex order, which makes all
// traversal deterministic. The zero value is not usable; construct with New.
type Graph struct {
	n   int
	adj [][]int
	m   int // number of edges
}

// New returns an empty graph with n vertices and no edges.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{
		n:   n,
		adj: make([][]int, n),
	}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		n:   g.n,
		adj: make([][]int, g.n),
		m:   g.m,
	}
	for v, nbrs := range g.adj {
		c.adj[v] = append([]int(nil), nbrs...)
	}
	return c
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns a copy of v's neighbor list in ascending order.
func (g *Graph) Neighbors(v int) []int {
	return append([]int(nil), g.adj[v]...)
}

// ForEachNeighbor calls fn for every neighbor of v in ascending order. It
// avoids the copy made by Neighbors and is intended for hot paths.
func (g *Graph) ForEachNeighbor(v int, fn func(u int)) {
	for _, u := range g.adj[v] {
		fn(u)
	}
}

// HasEdge reports whether the edge {u, v} is present.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= g.n || v >= g.n || u == v {
		return false
	}
	if len(g.adj[v]) < len(g.adj[u]) {
		u, v = v, u
	}
	a := g.adj[u]
	i := sort.SearchInts(a, v)
	return i < len(a) && a[i] == v
}

// AddEdge inserts the undirected edge {u, v}. Self-loops and out-of-range
// vertices are rejected; adding an existing edge is a no-op.
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || v < 0 || u >= g.n || v >= g.n {
		return fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if g.hasEdgeFast(u, v) {
		return nil
	}
	g.adj[u] = insertSorted(g.adj[u], v)
	g.adj[v] = insertSorted(g.adj[v], u)
	g.m++
	return nil
}

// FromEdges builds a graph on n vertices from a complete edge list in one
// pass: degrees are counted, one backing array is carved into per-vertex
// adjacency slices, and each slice is sorted. This is O(n + m log deg)
// versus the O(m * deg) of repeated AddEdge calls, which is what the
// large-scale topology generator needs when m reaches hundreds of thousands
// of links. Self-loops, out-of-range endpoints, and duplicate edges are
// rejected. The resulting graph is fully mutable afterwards.
func FromEdges(n int, edges [][2]int) (*Graph, error) {
	g := New(n)
	deg := make([]int, n)
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || v < 0 || u >= n || v >= n {
			return nil, fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, n)
		}
		if u == v {
			return nil, fmt.Errorf("graph: self-loop at %d", u)
		}
		deg[u]++
		deg[v]++
	}
	off := make([]int, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + deg[v]
	}
	backing := make([]int, off[n])
	fill := append([]int(nil), off[:n]...)
	for _, e := range edges {
		u, v := e[0], e[1]
		backing[fill[u]] = v
		fill[u]++
		backing[fill[v]] = u
		fill[v]++
	}
	for v := 0; v < n; v++ {
		// The three-index slice caps each adjacency list at its segment, so a
		// later AddEdge reallocates instead of clobbering the next vertex's
		// neighbors in the shared backing array.
		a := backing[off[v]:off[v+1]:off[v+1]]
		sort.Ints(a)
		for i := 1; i < len(a); i++ {
			if a[i] == a[i-1] {
				return nil, fmt.Errorf("graph: duplicate edge {%d,%d}", v, a[i])
			}
		}
		g.adj[v] = a
	}
	g.m = len(edges)
	return g, nil
}

// RemoveEdge deletes the undirected edge {u, v} if present.
func (g *Graph) RemoveEdge(u, v int) {
	if !g.HasEdge(u, v) {
		return
	}
	g.adj[u] = removeSorted(g.adj[u], v)
	g.adj[v] = removeSorted(g.adj[v], u)
	g.m--
}

// Edges returns every edge {u, v} with u < v, ordered lexicographically.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	return out
}

// AverageDegree returns 2*M/N, or 0 for the empty graph.
func (g *Graph) AverageDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(g.n)
}

// IsComplete reports whether every pair of vertices is adjacent.
func (g *Graph) IsComplete() bool {
	return g.m == g.n*(g.n-1)/2
}

func (g *Graph) hasEdgeFast(u, v int) bool {
	a := g.adj[u]
	i := sort.SearchInts(a, v)
	return i < len(a) && a[i] == v
}

func insertSorted(a []int, x int) []int {
	i := sort.SearchInts(a, x)
	a = append(a, 0)
	copy(a[i+1:], a[i:])
	a[i] = x
	return a
}

func removeSorted(a []int, x int) []int {
	i := sort.SearchInts(a, x)
	if i < len(a) && a[i] == x {
		return append(a[:i], a[i+1:]...)
	}
	return a
}
