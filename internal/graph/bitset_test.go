package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if b.Cap() != 130 {
		t.Fatalf("Cap() = %d, want 130", b.Cap())
	}
	for _, x := range []int{0, 63, 64, 129} {
		b.Set(x)
		if !b.Has(x) {
			t.Fatalf("Has(%d) = false after Set", x)
		}
	}
	if b.Count() != 4 {
		t.Fatalf("Count() = %d, want 4", b.Count())
	}
	b.Clear(64)
	if b.Has(64) {
		t.Fatal("Has(64) after Clear")
	}
	if got := b.Elements(nil); !equalInts(got, []int{0, 63, 129}) {
		t.Fatalf("Elements() = %v", got)
	}
	b.Reset()
	if b.Count() != 0 {
		t.Fatalf("Count() = %d after Reset", b.Count())
	}
}

func TestBitsetOutOfRange(t *testing.T) {
	b := NewBitset(10)
	b.Set(-1)
	b.Set(10)
	b.Set(1000)
	if b.Count() != 0 {
		t.Fatalf("out-of-range Set changed the set: %v", b.Elements(nil))
	}
	if b.Has(-1) || b.Has(10) {
		t.Fatal("Has out of range returned true")
	}
	b.Clear(99) // must not panic
}

func TestBitsetUnionIntersects(t *testing.T) {
	a := NewBitset(100)
	b := NewBitset(100)
	a.Set(5)
	a.Set(70)
	b.Set(71)
	if a.Intersects(b) {
		t.Fatal("disjoint sets reported intersecting")
	}
	b.Set(70)
	if !a.Intersects(b) {
		t.Fatal("intersecting sets reported disjoint")
	}
	a.Union(b)
	if got := a.Elements(nil); !equalInts(got, []int{5, 70, 71}) {
		t.Fatalf("union elements = %v", got)
	}
}

func TestBitsetZeroCapacity(t *testing.T) {
	b := NewBitset(0)
	b.Set(0)
	if b.Count() != 0 {
		t.Fatal("zero-capacity bitset accepted an element")
	}
	if NewBitset(-5).Cap() != 0 {
		t.Fatal("negative capacity not clamped")
	}
}

// TestBitsetQuick property-checks the bitset against a map-based model.
func TestBitsetQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		b := NewBitset(n)
		model := make(map[int]bool)
		for op := 0; op < 300; op++ {
			x := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				b.Set(x)
				model[x] = true
			case 1:
				b.Clear(x)
				delete(model, x)
			default:
				if b.Has(x) != model[x] {
					return false
				}
			}
		}
		if b.Count() != len(model) {
			return false
		}
		for _, x := range b.Elements(nil) {
			if !model[x] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickConfig(50)); err != nil {
		t.Fatal(err)
	}
}

// TestBitsetElementsSortedQuick checks Elements always returns ascending
// order and honors the dst-append contract.
func TestBitsetElementsSortedQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBitset(500)
		for i := 0; i < 80; i++ {
			b.Set(rng.Intn(500))
		}
		prefix := []int{-7}
		out := b.Elements(prefix)
		if out[0] != -7 {
			return false
		}
		for i := 2; i < len(out); i++ {
			if out[i] <= out[i-1] {
				return false
			}
		}
		return len(out) == 1+b.Count()
	}
	if err := quick.Check(f, quickConfig(50)); err != nil {
		t.Fatal(err)
	}
}
