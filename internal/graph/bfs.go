package graph

// BFSDistances returns the hop distance from src to every vertex, or -1 for
// vertices unreachable from src.
func (g *Graph) BFSDistances(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= g.n {
		return dist
	}
	dist[src] = 0
	queue := make([]int, 0, g.n)
	queue = append(queue, src)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.adj[v] {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// Connected reports whether the graph is connected. The empty graph and the
// single-vertex graph are connected.
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	dist := g.BFSDistances(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// Components returns a label per vertex such that two vertices share a label
// iff they are in the same connected component, together with the number of
// components. Labels are assigned in increasing order of the smallest vertex
// in each component.
func (g *Graph) Components() (labels []int, count int) {
	labels = make([]int, g.n)
	for i := range labels {
		labels[i] = -1
	}
	var queue []int
	for v := 0; v < g.n; v++ {
		if labels[v] >= 0 {
			continue
		}
		labels[v] = count
		queue = append(queue[:0], v)
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, u := range g.adj[x] {
				if labels[u] < 0 {
					labels[u] = count
					queue = append(queue, u)
				}
			}
		}
		count++
	}
	return labels, count
}

// KHopNeighbors returns Nk(v): every vertex within k hops of v, including v
// itself, in ascending order. k <= 0 yields {v}.
func (g *Graph) KHopNeighbors(v, k int) []int {
	dist := g.boundedDistances(v, k)
	out := make([]int, 0, g.n)
	for u, d := range dist {
		if d >= 0 {
			out = append(out, u)
		}
	}
	return out
}

// LocalView returns the k-hop local view Gk(v) of Definition 2: the vertex
// set is Nk(v) and the edge set is E ∩ (Nk-1(v) × Nk(v)); links between two
// vertices both exactly k hops from v are excluded. The result is a graph on
// the same vertex numbering with only the view's edges, plus a visibility
// mask marking the members of Nk(v).
//
// k <= 0 yields the global view (the whole graph, all vertices visible even
// if unreachable); any positive k is a BFS-bounded view that only ever
// contains reachable vertices.
func (g *Graph) LocalView(v, k int) (sub *Graph, visible []bool) {
	visible = make([]bool, g.n)
	if k <= 0 {
		for i := range visible {
			visible[i] = true
		}
		return g.Clone(), visible
	}
	dist := g.boundedDistances(v, k)
	sub = New(g.n)
	for u, du := range dist {
		if du < 0 {
			continue
		}
		visible[u] = true
		for _, w := range g.adj[u] {
			if w <= u {
				continue
			}
			dw := dist[w]
			if dw < 0 {
				continue
			}
			// Edge {u,w} is in Ek(v) iff at least one endpoint is within
			// k-1 hops.
			if du <= k-1 || dw <= k-1 {
				// Both endpoints checked in range; ignore the impossible error.
				_ = sub.AddEdge(u, w)
			}
		}
	}
	return sub, visible
}

// boundedDistances is BFS from src cut off beyond k hops; unreachable or
// too-far vertices get -1.
func (g *Graph) boundedDistances(src, k int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= g.n {
		return dist
	}
	dist[src] = 0
	queue := make([]int, 0, g.n)
	queue = append(queue, src)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if dist[v] >= k {
			continue
		}
		for _, u := range g.adj[v] {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}
