package graph

import "math/bits"

// Bitset is a fixed-capacity set of small non-negative integers. It backs the
// hot set operations in the coverage-condition evaluators.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns an empty bitset able to hold values in [0, n).
func NewBitset(n int) *Bitset {
	if n < 0 {
		n = 0
	}
	return &Bitset{
		words: make([]uint64, (n+63)/64),
		n:     n,
	}
}

// Cap returns the capacity n the bitset was created with.
func (b *Bitset) Cap() int { return b.n }

// Set adds x to the set. Out-of-range values are ignored.
func (b *Bitset) Set(x int) {
	if x < 0 || x >= b.n {
		return
	}
	b.words[x>>6] |= 1 << uint(x&63)
}

// Clear removes x from the set.
func (b *Bitset) Clear(x int) {
	if x < 0 || x >= b.n {
		return
	}
	b.words[x>>6] &^= 1 << uint(x&63)
}

// Has reports whether x is in the set.
func (b *Bitset) Has(x int) bool {
	if x < 0 || x >= b.n {
		return false
	}
	return b.words[x>>6]&(1<<uint(x&63)) != 0
}

// Reset removes every element.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Union sets b to b ∪ other. Both bitsets must have the same capacity.
func (b *Bitset) Union(other *Bitset) {
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// Intersects reports whether b ∩ other is non-empty.
func (b *Bitset) Intersects(other *Bitset) bool {
	for i, w := range other.words {
		if b.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of elements in the set.
func (b *Bitset) Count() int {
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Elements appends the members of the set to dst in ascending order and
// returns the extended slice.
func (b *Bitset) Elements(dst []int) []int {
	for i, w := range b.words {
		base := i << 6
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			dst = append(dst, base+bit)
			w &= w - 1
		}
	}
	return dst
}
