package graph

import (
	"math/rand"
	"testing"
)

func TestFromEdgesMatchesAddEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(60)
		seen := map[[2]int]bool{}
		var edges [][2]int
		for len(edges) < rng.Intn(3*n) {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if seen[[2]int{u, v}] {
				continue
			}
			seen[[2]int{u, v}] = true
			edges = append(edges, [2]int{u, v})
		}
		// Shuffle so FromEdges sees edges in arbitrary order and orientation.
		rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
		for i := range edges {
			if rng.Intn(2) == 0 {
				edges[i][0], edges[i][1] = edges[i][1], edges[i][0]
			}
		}

		want := New(n)
		for _, e := range edges {
			if err := want.AddEdge(e[0], e[1]); err != nil {
				t.Fatal(err)
			}
		}
		got, err := FromEdges(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		if got.N() != want.N() || got.M() != want.M() {
			t.Fatalf("trial %d: size (%d,%d), want (%d,%d)",
				trial, got.N(), got.M(), want.N(), want.M())
		}
		for v := 0; v < n; v++ {
			gn, wn := got.Neighbors(v), want.Neighbors(v)
			if len(gn) != len(wn) {
				t.Fatalf("trial %d: degree of %d: %d, want %d", trial, v, len(gn), len(wn))
			}
			for i := range gn {
				if gn[i] != wn[i] {
					t.Fatalf("trial %d: neighbors of %d differ: %v vs %v", trial, v, gn, wn)
				}
			}
		}
	}
}

func TestFromEdgesErrors(t *testing.T) {
	if _, err := FromEdges(3, [][2]int{{0, 3}}); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if _, err := FromEdges(3, [][2]int{{-1, 0}}); err == nil {
		t.Error("negative endpoint accepted")
	}
	if _, err := FromEdges(3, [][2]int{{1, 1}}); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := FromEdges(3, [][2]int{{0, 1}, {1, 0}}); err == nil {
		t.Error("duplicate edge accepted")
	}
	g, err := FromEdges(0, nil)
	if err != nil || g.N() != 0 || g.M() != 0 {
		t.Errorf("empty graph: %v %v", g, err)
	}
}

// TestFromEdgesMutableAfterBuild guards the shared-backing-array hazard: the
// per-vertex adjacency slices are carved from one array, so growing one via
// AddEdge must reallocate instead of overwriting its neighbor's segment.
func TestFromEdgesMutableAfterBuild(t *testing.T) {
	g, err := FromEdges(4, [][2]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(2, 3) || !g.HasEdge(0, 1) || !g.HasEdge(0, 2) {
		t.Fatal("AddEdge after FromEdges corrupted existing adjacency")
	}
	g.RemoveEdge(0, 1)
	if g.HasEdge(0, 1) || !g.HasEdge(2, 3) || g.M() != 2 {
		t.Fatal("RemoveEdge after FromEdges misbehaved")
	}
}
