package fault

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"adhocbcast/internal/graph"
)

// Params describes a randomized fault workload. All fields default to zero
// (no faults); fractions are of the node or link population.
type Params struct {
	// CrashFraction is the fraction of nodes that fail-stop at a uniform
	// random time in (0, CrashWindow]. Crash times are strictly positive so
	// the source always gets its time-0 transmission out.
	CrashFraction float64
	// CrashWindow bounds the crash times (default 10 transmission slots,
	// i.e. crashes land mid-broadcast rather than after it).
	CrashWindow float64
	// ChurnFraction is the fraction of nodes that suffer one transient down
	// interval (a reboot) starting uniformly in [0, ChurnWindow).
	ChurnFraction float64
	// ChurnWindow bounds the churn start times (default 10).
	ChurnWindow float64
	// ChurnDuration is the length of each transient node outage (default 5).
	ChurnDuration float64
	// LinkFraction is the fraction of links that suffer one transient outage
	// starting uniformly in [0, LinkWindow).
	LinkFraction float64
	// LinkWindow bounds the link outage start times (default 10).
	LinkWindow float64
	// LinkDuration is the length of each link outage (default 5).
	LinkDuration float64
	// Protect lists node ids exempt from crashes and churn (typically the
	// broadcast source).
	Protect []int
}

func (p Params) withDefaults() Params {
	if p.CrashWindow <= 0 {
		p.CrashWindow = 10
	}
	if p.ChurnWindow <= 0 {
		p.ChurnWindow = 10
	}
	if p.ChurnDuration <= 0 {
		p.ChurnDuration = 5
	}
	if p.LinkWindow <= 0 {
		p.LinkWindow = 10
	}
	if p.LinkDuration <= 0 {
		p.LinkDuration = 5
	}
	return p
}

func (p Params) validate(n int) error {
	for _, f := range []struct {
		name string
		val  float64
	}{
		{"CrashFraction", p.CrashFraction},
		{"ChurnFraction", p.ChurnFraction},
		{"LinkFraction", p.LinkFraction},
	} {
		if f.val < 0 || f.val > 1 || math.IsNaN(f.val) {
			return fmt.Errorf("fault: %s %v outside [0,1]", f.name, f.val)
		}
	}
	for _, v := range p.Protect {
		if v < 0 || v >= n {
			return fmt.Errorf("fault: protected node %d out of range [0,%d)", v, n)
		}
	}
	return nil
}

// NewPlan draws a fault plan for graph g from Params. It is a pure function
// of (g, p, seed): the same inputs always yield an identical plan. The rng
// stream is private to the plan, so generating a plan never perturbs any
// other random draw in an experiment.
func NewPlan(g *graph.Graph, p Params, seed int64) (*Plan, error) {
	n := g.N()
	if err := p.validate(n); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(deriveSeed(seed, "fault.plan")))
	plan := NewEmptyPlan(n)

	protected := make([]bool, n)
	for _, v := range p.Protect {
		protected[v] = true
	}
	eligible := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if !protected[v] {
			eligible = append(eligible, v)
		}
	}

	// Crashes: a random subset of the eligible nodes, crash times in
	// (0, CrashWindow]. The count is rounded from the fraction of the full
	// population so CrashFraction means the same thing at every size.
	crashes := pick(rng, eligible, p.CrashFraction, n)
	for _, v := range crashes {
		at := p.CrashWindow * (1 - rng.Float64()) // (0, CrashWindow]
		plan.AddNodeDown(v, Interval{From: at, To: Forever})
	}

	// Churn: transient outages on eligible nodes that do not also crash
	// (a crashed node's schedule stays a single clean interval).
	crashed := make(map[int]bool, len(crashes))
	for _, v := range crashes {
		crashed[v] = true
	}
	churnPool := make([]int, 0, len(eligible))
	for _, v := range eligible {
		if !crashed[v] {
			churnPool = append(churnPool, v)
		}
	}
	for _, v := range pick(rng, churnPool, p.ChurnFraction, n) {
		from := rng.Float64() * p.ChurnWindow
		plan.AddNodeDown(v, Interval{From: from, To: from + p.ChurnDuration})
	}

	// Link outages over the edge list (Edges returns a deterministic order).
	if p.LinkFraction > 0 {
		edges := g.Edges()
		for _, e := range pickEdges(rng, edges, p.LinkFraction) {
			from := rng.Float64() * p.LinkWindow
			plan.AddLinkDown(e[0], e[1], Interval{From: from, To: from + p.LinkDuration})
		}
	}
	return plan, nil
}

// pick selects round(frac*total) members of pool (capped at len(pool)) via a
// deterministic partial shuffle.
func pick(rng *rand.Rand, pool []int, frac float64, total int) []int {
	k := int(math.Round(frac * float64(total)))
	if k > len(pool) {
		k = len(pool)
	}
	if k <= 0 {
		return nil
	}
	perm := rng.Perm(len(pool))
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = pool[perm[i]]
	}
	return out
}

func pickEdges(rng *rand.Rand, edges [][2]int, frac float64) [][2]int {
	k := int(math.Round(frac * float64(len(edges))))
	if k > len(edges) {
		k = len(edges)
	}
	if k <= 0 {
		return nil
	}
	perm := rng.Perm(len(edges))
	out := make([][2]int, k)
	for i := 0; i < k; i++ {
		out[i] = edges[perm[i]]
	}
	return out
}

// deriveSeed maps (seed, purpose) to an independent stream seed, so distinct
// consumers of one base seed never share a generator.
func deriveSeed(seed int64, purpose string) int64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(seed))
	h.Write(buf[:])
	h.Write([]byte(purpose))
	return int64(h.Sum64() & (1<<62 - 1))
}
