// Package fault models deterministic failures for the broadcast simulator:
// fail-stop node crashes, transient node outages (churn), and per-link
// outages. A Plan is a pure function of its generation inputs (graph, Params,
// seed), so the same inputs always produce byte-identical fault schedules —
// the property the degradation experiments rely on for common random numbers
// and reproducibility across parallelism settings.
//
// The simulator (internal/sim) consumes a Plan through Config.Faults: a
// receipt scheduled to arrive at a down node or over a down link is dropped
// and accounted by cause, and timers of down nodes are cancelled. The plan
// itself is passive — it never mutates during a run and may be shared by
// concurrent simulations.
package fault

import (
	"fmt"
	"math"

	"adhocbcast/internal/graph"
)

// Forever is the To endpoint of a fail-stop crash interval.
var Forever = math.Inf(1)

// Interval is a half-open down interval [From, To). A crash is an interval
// with To = Forever.
type Interval struct {
	// From is the time the outage starts.
	From float64
	// To is the time the outage ends (exclusive); Forever for a crash.
	To float64
}

// Contains reports whether time t falls inside the interval.
func (iv Interval) Contains(t float64) bool { return t >= iv.From && t < iv.To }

// Link identifies an undirected link with U < V.
type Link struct {
	U, V int
}

// MakeLink normalizes an endpoint pair into a Link key.
func MakeLink(u, v int) Link {
	if u > v {
		u, v = v, u
	}
	return Link{U: u, V: v}
}

// Plan is one deterministic fault schedule over an n-node network.
type Plan struct {
	// N is the network size the plan was built for.
	N int
	// NodeDown holds each node's down intervals, sorted by From and
	// non-overlapping. A crash is a final interval reaching Forever.
	NodeDown [][]Interval
	// LinkDown holds per-link down intervals, keyed by normalized Link.
	LinkDown map[Link][]Interval
}

// NewEmptyPlan returns a fault-free plan for n nodes, useful as a base for
// hand-built schedules in tests.
func NewEmptyPlan(n int) *Plan {
	return &Plan{N: n, NodeDown: make([][]Interval, n)}
}

// AddNodeDown appends a down interval for node v. Intervals must be added in
// chronological, non-overlapping order (Validate checks).
func (p *Plan) AddNodeDown(v int, iv Interval) {
	p.NodeDown[v] = append(p.NodeDown[v], iv)
}

// AddLinkDown appends a down interval for the link u-v.
func (p *Plan) AddLinkDown(u, v int, iv Interval) {
	if p.LinkDown == nil {
		p.LinkDown = make(map[Link][]Interval)
	}
	k := MakeLink(u, v)
	p.LinkDown[k] = append(p.LinkDown[k], iv)
}

// NodeDownAt reports whether node v is down at time t.
func (p *Plan) NodeDownAt(v int, t float64) bool {
	return downAt(p.NodeDown[v], t)
}

// LinkDownAt reports whether the link u-v is down at time t.
func (p *Plan) LinkDownAt(u, v int, t float64) bool {
	if p.LinkDown == nil {
		return false
	}
	return downAt(p.LinkDown[MakeLink(u, v)], t)
}

// Crashed reports whether node v fail-stops at some point (an interval
// reaching Forever).
func (p *Plan) Crashed(v int) bool {
	_, ok := p.CrashTime(v)
	return ok
}

// CrashTime returns the fail-stop time of node v, if it crashes.
func (p *Plan) CrashTime(v int) (float64, bool) {
	for _, iv := range p.NodeDown[v] {
		if math.IsInf(iv.To, 1) {
			return iv.From, true
		}
	}
	return 0, false
}

// CrashedCount returns the number of nodes that fail-stop under the plan.
func (p *Plan) CrashedCount() int {
	c := 0
	for v := 0; v < p.N; v++ {
		if p.Crashed(v) {
			c++
		}
	}
	return c
}

func downAt(ivs []Interval, t float64) bool {
	for _, iv := range ivs {
		if iv.Contains(t) {
			return true
		}
		if t < iv.From {
			return false // sorted: later intervals start even later
		}
	}
	return false
}

// Validate checks the plan against a network of n nodes: interval endpoints
// must be finite-ordered (From >= 0, From < To), per-node and per-link lists
// sorted and non-overlapping, and every node id in range.
func (p *Plan) Validate(n int) error {
	if p.N != n {
		return fmt.Errorf("fault: plan built for %d nodes, network has %d", p.N, n)
	}
	if len(p.NodeDown) != n {
		return fmt.Errorf("fault: plan has %d node schedules, want %d", len(p.NodeDown), n)
	}
	for v, ivs := range p.NodeDown {
		if err := validateIntervals(ivs); err != nil {
			return fmt.Errorf("fault: node %d: %w", v, err)
		}
	}
	for l, ivs := range p.LinkDown {
		if l.U < 0 || l.V >= n || l.U >= l.V {
			return fmt.Errorf("fault: bad link %d-%d for %d nodes", l.U, l.V, n)
		}
		if err := validateIntervals(ivs); err != nil {
			return fmt.Errorf("fault: link %d-%d: %w", l.U, l.V, err)
		}
	}
	return nil
}

func validateIntervals(ivs []Interval) error {
	prevTo := 0.0
	for i, iv := range ivs {
		if iv.From < 0 || math.IsNaN(iv.From) || math.IsNaN(iv.To) {
			return fmt.Errorf("interval %d has bad start %v", i, iv.From)
		}
		if iv.To <= iv.From {
			return fmt.Errorf("interval %d is empty or inverted [%v,%v)", i, iv.From, iv.To)
		}
		if iv.From < prevTo {
			return fmt.Errorf("interval %d overlaps or precedes its predecessor", i)
		}
		prevTo = iv.To
	}
	return nil
}

// ReachableFrom returns, per node, whether it is reachable from source in g
// once the plan's crashed nodes are removed. The source itself is always
// reachable (it originates the broadcast before any crash can silence it);
// crashed nodes are excluded both as targets and as relays. A nil plan leaves
// the graph intact, so the result is the source's connected component.
func (p *Plan) ReachableFrom(g *graph.Graph, source int) []bool {
	n := g.N()
	reach := make([]bool, n)
	crashed := func(v int) bool { return p != nil && p.Crashed(v) }
	reach[source] = true
	queue := []int{source}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		g.ForEachNeighbor(x, func(y int) {
			if !reach[y] && !crashed(y) {
				reach[y] = true
				queue = append(queue, y)
			}
		})
	}
	return reach
}
