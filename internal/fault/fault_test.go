package fault

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"adhocbcast/internal/graph"
)

func line(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		if err := g.AddEdge(v, v+1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestIntervalQueries(t *testing.T) {
	p := NewEmptyPlan(3)
	p.AddNodeDown(1, Interval{From: 2, To: 5})
	p.AddNodeDown(1, Interval{From: 7, To: Forever})
	p.AddLinkDown(2, 0, Interval{From: 1, To: 3})

	cases := []struct {
		t    float64
		down bool
	}{{0, false}, {2, true}, {4.9, true}, {5, false}, {6, false}, {7, true}, {1e9, true}}
	for _, c := range cases {
		if got := p.NodeDownAt(1, c.t); got != c.down {
			t.Errorf("NodeDownAt(1, %v) = %v, want %v", c.t, got, c.down)
		}
	}
	if p.NodeDownAt(0, 3) {
		t.Error("node 0 reported down")
	}
	if !p.LinkDownAt(0, 2, 2) || !p.LinkDownAt(2, 0, 2) {
		t.Error("link down query not symmetric")
	}
	if p.LinkDownAt(0, 2, 3) {
		t.Error("link down after interval end")
	}
	if !p.Crashed(1) || p.Crashed(0) {
		t.Error("crash detection wrong")
	}
	if at, ok := p.CrashTime(1); !ok || at != 7 {
		t.Errorf("CrashTime = %v, %v", at, ok)
	}
	if p.CrashedCount() != 1 {
		t.Errorf("CrashedCount = %d", p.CrashedCount())
	}
}

func TestValidate(t *testing.T) {
	ok := NewEmptyPlan(4)
	ok.AddNodeDown(0, Interval{From: 1, To: 2})
	ok.AddNodeDown(0, Interval{From: 2, To: Forever})
	ok.AddLinkDown(1, 3, Interval{From: 0, To: 1})
	if err := ok.Validate(4); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}

	for name, build := range map[string]func() *Plan{
		"wrong size": func() *Plan { return NewEmptyPlan(3) },
		"negative start": func() *Plan {
			p := NewEmptyPlan(4)
			p.AddNodeDown(1, Interval{From: -1, To: 2})
			return p
		},
		"inverted": func() *Plan {
			p := NewEmptyPlan(4)
			p.AddNodeDown(1, Interval{From: 3, To: 2})
			return p
		},
		"overlap": func() *Plan {
			p := NewEmptyPlan(4)
			p.AddNodeDown(1, Interval{From: 0, To: 3})
			p.AddNodeDown(1, Interval{From: 2, To: 4})
			return p
		},
		"bad link": func() *Plan {
			p := NewEmptyPlan(4)
			p.LinkDown = map[Link][]Interval{{U: 2, V: 9}: {{From: 0, To: 1}}}
			return p
		},
	} {
		if err := build().Validate(4); err == nil {
			t.Errorf("%s: invalid plan accepted", name)
		}
	}
}

func TestNewPlanDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.New(40)
	for i := 0; i < 120; i++ {
		u, v := rng.Intn(40), rng.Intn(40)
		if u != v && !g.HasEdge(u, v) {
			if err := g.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	p := Params{CrashFraction: 0.2, ChurnFraction: 0.1, LinkFraction: 0.15, Protect: []int{0}}
	a, err := NewPlan(g, p, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlan(g, p, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same inputs produced different plans")
	}
	c, err := NewPlan(g, p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
	if err := a.Validate(g.N()); err != nil {
		t.Fatalf("generated plan invalid: %v", err)
	}
	if got, want := a.CrashedCount(), 8; got != want {
		t.Fatalf("CrashedCount = %d, want %d", got, want)
	}
	if a.Crashed(0) || a.NodeDownAt(0, 1) {
		t.Fatal("protected node faulted")
	}
}

func TestNewPlanRejectsBadParams(t *testing.T) {
	g := line(t, 5)
	for name, p := range map[string]Params{
		"crash>1":        {CrashFraction: 1.5},
		"negative churn": {ChurnFraction: -0.1},
		"NaN link":       {LinkFraction: math.NaN()},
		"protect range":  {Protect: []int{5}},
	} {
		if _, err := NewPlan(g, p, 1); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReachableFrom(t *testing.T) {
	// 0-1-2-3-4: crashing node 2 cuts off 3 and 4.
	g := line(t, 5)
	p := NewEmptyPlan(5)
	p.AddNodeDown(2, Interval{From: 1, To: Forever})
	reach := p.ReachableFrom(g, 0)
	want := []bool{true, true, false, false, false}
	if !reflect.DeepEqual(reach, want) {
		t.Fatalf("reach = %v, want %v", reach, want)
	}

	// Transient churn does not affect reachability.
	q := NewEmptyPlan(5)
	q.AddNodeDown(2, Interval{From: 1, To: 4})
	for v, r := range q.ReachableFrom(g, 0) {
		if !r {
			t.Fatalf("node %d unreachable under churn-only plan", v)
		}
	}

	// A nil plan is the source component.
	var nilPlan *Plan
	for v, r := range nilPlan.ReachableFrom(g, 2) {
		if !r {
			t.Fatalf("node %d unreachable under nil plan", v)
		}
	}
}

func TestReachableSourceAlwaysCounted(t *testing.T) {
	g := line(t, 3)
	p := NewEmptyPlan(3)
	p.AddNodeDown(0, Interval{From: 0.5, To: Forever})
	reach := p.ReachableFrom(g, 0)
	if !reach[0] {
		t.Fatal("crashed source not counted reachable")
	}
}
