package mobility

import (
	"math/rand"
	"testing"

	"adhocbcast/internal/geo"
)

func genNet(t *testing.T, seed int64) *geo.Network {
	t.Helper()
	net, err := geo.Generate(geo.Config{N: 50, AvgDegree: 8}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestPerturbedZeroStepKeepsTopology(t *testing.T) {
	net := genNet(t, 1)
	moved := Perturbed(net, 100, 0, 2)
	if moved.G.M() != net.G.M() {
		t.Fatalf("zero-step perturbation changed links: %d vs %d", moved.G.M(), net.G.M())
	}
	for _, e := range net.G.Edges() {
		if !moved.G.HasEdge(e[0], e[1]) {
			t.Fatalf("edge %v lost under zero movement", e)
		}
	}
	for i := range net.Pos {
		if net.Pos[i] != moved.Pos[i] {
			t.Fatalf("position %d moved", i)
		}
	}
}

func TestPerturbedStaysInArea(t *testing.T) {
	net := genNet(t, 3)
	moved := Perturbed(net, 100, 500, 4)
	for i, p := range moved.Pos {
		if p.X < 0 || p.X > 100 || p.Y < 0 || p.Y > 100 {
			t.Fatalf("node %d escaped the area: %v", i, p)
		}
	}
}

func TestPerturbedMovesNodesAndChangesLinks(t *testing.T) {
	net := genNet(t, 5)
	moved := Perturbed(net, 100, 10, 6)
	movedCount := 0
	for i := range net.Pos {
		if net.Pos[i].Distance(moved.Pos[i]) > 1e-9 {
			movedCount++
		}
		if net.Pos[i].Distance(moved.Pos[i]) > 10+1e-9 {
			t.Fatalf("node %d moved %v > maxStep", i, net.Pos[i].Distance(moved.Pos[i]))
		}
	}
	if movedCount < 45 {
		t.Fatalf("only %d of 50 nodes moved", movedCount)
	}
	// The link structure should differ with high probability at step 10.
	same := true
	if net.G.M() != moved.G.M() {
		same = false
	} else {
		for _, e := range net.G.Edges() {
			if !moved.G.HasEdge(e[0], e[1]) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("topology unchanged after significant movement")
	}
	if moved.Range != net.Range {
		t.Fatal("radio range changed")
	}
}

func TestPerturbedLinkGeometry(t *testing.T) {
	net := genNet(t, 7)
	moved := Perturbed(net, 100, 5, 8)
	for u := 0; u < len(moved.Pos); u++ {
		for v := u + 1; v < len(moved.Pos); v++ {
			d := moved.Pos[u].Distance(moved.Pos[v])
			if moved.G.HasEdge(u, v) != (d <= moved.Range) {
				t.Fatalf("link {%d,%d} inconsistent with distance %v vs range %v",
					u, v, d, moved.Range)
			}
		}
	}
}

// TestPerturbedStreamDecoupled pins the per-purpose stream discipline:
// perturbation draws come from Perturbed's own seed-derived stream, so a
// perturbation between two draws of a caller-owned rng (topology generation,
// source selection, protocol seeding) must not shift those draws, and the
// perturbation itself must be a pure function of its seed.
func TestPerturbedStreamDecoupled(t *testing.T) {
	draws := func(perturb bool) []int64 {
		rng := rand.New(rand.NewSource(17))
		net, err := geo.Generate(geo.Config{N: 50, AvgDegree: 8}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if perturb {
			Perturbed(net, 100, 5, 18)
		}
		out := make([]int64, 4)
		for i := range out {
			out[i] = rng.Int63()
		}
		return out
	}
	with, without := draws(true), draws(false)
	for i := range with {
		if with[i] != without[i] {
			t.Fatalf("draw %d shifted by an interleaved perturbation: %d vs %d",
				i, with[i], without[i])
		}
	}

	net := genNet(t, 19)
	a := Perturbed(net, 100, 5, 20)
	b := Perturbed(net, 100, 5, 20)
	for i := range a.Pos {
		if a.Pos[i] != b.Pos[i] {
			t.Fatalf("same seed gave different positions at node %d", i)
		}
	}
	c := Perturbed(net, 100, 5, 21)
	same := true
	for i := range a.Pos {
		if a.Pos[i] != c.Pos[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical perturbations")
	}
}

func TestWalkerStepAndBounce(t *testing.T) {
	net := genNet(t, 9)
	w := NewWalker(net, 100, 5, rand.New(rand.NewSource(10)))
	for step := 0; step < 200; step++ {
		w.Step(1)
		snap := w.Snapshot()
		for i, p := range snap.Pos {
			if p.X < -1e-9 || p.X > 100+1e-9 || p.Y < -1e-9 || p.Y > 100+1e-9 {
				t.Fatalf("step %d: node %d out of area at %v", step, i, p)
			}
		}
	}
}

func TestWalkerMovesAtSpeed(t *testing.T) {
	net := genNet(t, 11)
	w := NewWalker(net, 100, 3, rand.New(rand.NewSource(12)))
	before := w.Snapshot().Pos
	w.Step(1)
	after := w.Snapshot().Pos
	for i := range before {
		d := before[i].Distance(after[i])
		// Reflections can shorten the net displacement but never lengthen
		// it beyond speed*dt.
		if d > 3+1e-9 {
			t.Fatalf("node %d moved %v in one step at speed 3", i, d)
		}
	}
}

func TestWalkerSnapshotIsolated(t *testing.T) {
	net := genNet(t, 13)
	w := NewWalker(net, 100, 2, rand.New(rand.NewSource(14)))
	snap := w.Snapshot()
	w.Step(1)
	snap2 := w.Snapshot()
	moved := false
	for i := range snap.Pos {
		if snap.Pos[i] != snap2.Pos[i] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("snapshots share storage or walker did not move")
	}
}
