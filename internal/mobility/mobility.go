// Package mobility models node movement for the paper's mobility discussion
// (Section 1 and the authors' companion work): the hello exchange captures a
// topology snapshot, nodes move before or during the broadcast, and the
// protocols then operate on *stale* local views while packets propagate over
// the *actual* connectivity. The paper claims full coverage is impossible
// under topology change but that moderate mobility is balanced by a slight
// increase in broadcast redundancy; the experiments built on this package
// quantify both statements.
package mobility

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"math/rand"

	"adhocbcast/internal/geo"
	"adhocbcast/internal/graph"
)

// Perturbed returns a copy of net in which every node moved a uniform
// random distance in [0, maxStep] in a uniform random direction (clamped to
// the deployment area), with links recomputed for the same radio range.
// The returned network represents the actual connectivity after movement;
// the original represents the stale topology the hello exchange captured.
//
// The movement draws come from a private stream derived from seed (the same
// per-purpose discipline as the simulator's rng split): perturbing a network
// consumes nothing from any caller-owned stream, so adding or removing a
// perturbation can never shift topology generation, source selection, or
// protocol randomness seeded elsewhere.
func Perturbed(net *geo.Network, side, maxStep float64, seed int64) *geo.Network {
	rng := rand.New(rand.NewSource(subSeed(seed, "mobility/perturb")))
	pos := make([]geo.Point, len(net.Pos))
	for i, p := range net.Pos {
		angle := rng.Float64() * 2 * math.Pi
		dist := rng.Float64() * maxStep
		pos[i] = clamp(geo.Point{
			X: p.X + dist*math.Cos(angle),
			Y: p.Y + dist*math.Sin(angle),
		}, side)
	}
	return &geo.Network{
		G:     linkByRange(pos, net.Range),
		Pos:   pos,
		Range: net.Range,
	}
}

// Walker is a random-direction mobility model: every node moves with a
// constant speed along its own heading and reflects off the area borders.
// Step advances all nodes; Snapshot materializes the current connectivity.
type Walker struct {
	side  float64
	r     float64
	speed float64
	pos   []geo.Point
	dir   []float64 // heading in radians
}

// NewWalker starts a random-direction walk from the positions of net, with
// the given node speed (distance per Step time unit) over a side x side
// area.
func NewWalker(net *geo.Network, side, speed float64, rng *rand.Rand) *Walker {
	w := &Walker{
		side:  side,
		r:     net.Range,
		speed: speed,
		pos:   append([]geo.Point(nil), net.Pos...),
		dir:   make([]float64, len(net.Pos)),
	}
	for i := range w.dir {
		w.dir[i] = rng.Float64() * 2 * math.Pi
	}
	return w
}

// Step advances every node by speed*dt along its heading, reflecting at the
// area borders.
func (w *Walker) Step(dt float64) {
	for i, p := range w.pos {
		x := p.X + w.speed*dt*math.Cos(w.dir[i])
		y := p.Y + w.speed*dt*math.Sin(w.dir[i])
		if x < 0 {
			x = -x
			w.dir[i] = math.Pi - w.dir[i]
		}
		if x > w.side {
			x = 2*w.side - x
			w.dir[i] = math.Pi - w.dir[i]
		}
		if y < 0 {
			y = -y
			w.dir[i] = -w.dir[i]
		}
		if y > w.side {
			y = 2*w.side - y
			w.dir[i] = -w.dir[i]
		}
		w.pos[i] = geo.Point{X: x, Y: y}
	}
}

// Snapshot returns the current connectivity as a network.
func (w *Walker) Snapshot() *geo.Network {
	pos := append([]geo.Point(nil), w.pos...)
	return &geo.Network{
		G:     linkByRange(pos, w.r),
		Pos:   pos,
		Range: w.r,
	}
}

// subSeed maps (seed, purpose) to an independent stream seed, mirroring the
// simulator's derivation so every stochastic subsystem splits streams the
// same way.
func subSeed(seed int64, purpose string) int64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(seed))
	h.Write(buf[:])
	h.Write([]byte(purpose))
	return int64(h.Sum64() & (1<<62 - 1))
}

// linkByRange builds the unit disk graph of the positions under range r.
func linkByRange(pos []geo.Point, r float64) *graph.Graph {
	g := graph.New(len(pos))
	for u := range pos {
		for v := u + 1; v < len(pos); v++ {
			if pos[u].Distance(pos[v]) <= r {
				// Indices are valid vertices by construction.
				_ = g.AddEdge(u, v)
			}
		}
	}
	return g
}

func clamp(p geo.Point, side float64) geo.Point {
	if p.X < 0 {
		p.X = 0
	}
	if p.X > side {
		p.X = side
	}
	if p.Y < 0 {
		p.Y = 0
	}
	if p.Y > side {
		p.Y = side
	}
	return p
}
