package grid

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"adhocbcast/internal/experiments"
)

// Spec is a declarative experiment grid: a list of output tables, each
// composed of experiment sections whose data points expand into grid points.
// The committed grid.json at the repository root is the parsed form of
// DefaultSpec and regenerates every committed results_*.txt table.
type Spec struct {
	// Tables lists the result files to generate, in order.
	Tables []TableSpec `json:"tables"`
}

// TableSpec is one generated results file.
type TableSpec struct {
	// Output is the file name the table is written to (inside the runner's
	// output directory), e.g. "results_all.txt".
	Output string `json:"output"`
	// Experiments lists the sections of the table, rendered in order.
	Experiments []ExperimentSpec `json:"experiments"`
}

// ExperimentSpec is one section of a table: a single experiment driver run
// with fully-resolved parameters. Zero-valued fields take the drivers'
// defaults, and the resolved values — not the zeroes — are what each grid
// point's PointConfig records, so a default change recomputes the affected
// points instead of silently reusing stale ones.
type ExperimentSpec struct {
	// ID names the driver: "fig10".."fig16", "ext:<name>" (see
	// experiments.AllExtensionIDs), "scale", or "load".
	ID string `json:"id"`
	// Header, when non-empty, is printed verbatim on its own line above the
	// section (results_ext.txt uses "==== -ext <id> ====" headers).
	Header string `json:"header,omitempty"`
	// Paper selects the paper's ±1% CI replication criterion
	// (experiments.Paper), overriding MinRuns/MaxRuns/RelTol.
	Paper bool `json:"paper,omitempty"`
	// Seed is the base workload seed (default 42).
	Seed int64 `json:"seed,omitempty"`
	// Sizes and Degrees override the figure/extension sweep axes.
	Sizes   []int `json:"sizes,omitempty"`
	Degrees []int `json:"degrees,omitempty"`
	// MinRuns, MaxRuns, and RelTol override the moderate replication
	// criterion (defaults 30, 200, 0.03); ignored when Paper is set.
	MinRuns int     `json:"min_runs,omitempty"`
	MaxRuns int     `json:"max_runs,omitempty"`
	RelTol  float64 `json:"rel_tol,omitempty"`
	// CrashFractions, LossRates, HelloLossRates, and RestartRates override
	// the degradation, imperfect-view, and crash-recovery sweep values.
	CrashFractions []float64 `json:"crash_fractions,omitempty"`
	LossRates      []float64 `json:"loss_rates,omitempty"`
	HelloLossRates []float64 `json:"hello_loss_rates,omitempty"`
	RestartRates   []float64 `json:"restart_rates,omitempty"`
	// ScaleSizes, ScaleDegree, and ScaleReps configure the "scale" driver.
	ScaleSizes  []int `json:"scale_sizes,omitempty"`
	ScaleDegree int   `json:"scale_degree,omitempty"`
	ScaleReps   int   `json:"scale_reps,omitempty"`
	// LoadRates and LoadReps configure the "load" (saturation sweep) driver.
	LoadRates []float64 `json:"load_rates,omitempty"`
	LoadReps  int       `json:"load_reps,omitempty"`
}

// ParseSpec decodes and validates a spec document. Unknown fields are
// errors, so a typoed key fails loudly instead of silently reverting a
// parameter to its default.
func ParseSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var spec Spec
	if err := dec.Decode(&spec); err != nil {
		return Spec{}, fmt.Errorf("grid: parse spec: %w", err)
	}
	if err := spec.validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// LoadSpec reads and parses a spec file.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, err
	}
	spec, err := ParseSpec(data)
	if err != nil {
		return Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	return spec, nil
}

func (s Spec) validate() error {
	if len(s.Tables) == 0 {
		return fmt.Errorf("grid: spec has no tables")
	}
	seen := map[string]bool{}
	for _, t := range s.Tables {
		if t.Output == "" {
			return fmt.Errorf("grid: table without output name")
		}
		if strings.ContainsAny(t.Output, "/\\") || strings.HasPrefix(t.Output, ".") {
			return fmt.Errorf("grid: table output %q must be a plain file name", t.Output)
		}
		if seen[t.Output] {
			return fmt.Errorf("grid: duplicate table output %q", t.Output)
		}
		seen[t.Output] = true
		if len(t.Experiments) == 0 {
			return fmt.Errorf("grid: table %q has no experiments", t.Output)
		}
		for _, e := range t.Experiments {
			if err := validateID(e.ID); err != nil {
				return fmt.Errorf("grid: table %q: %w", t.Output, err)
			}
		}
	}
	return nil
}

func validateID(id string) error {
	switch {
	case id == "scale", id == "load":
		return nil
	case strings.HasPrefix(id, "fig"):
		for _, fid := range experiments.AllFigureIDs() {
			if id == "fig"+fid {
				return nil
			}
		}
	case strings.HasPrefix(id, "ext:"):
		for _, eid := range experiments.AllExtensionIDs() {
			if id == "ext:"+eid {
				return nil
			}
		}
	}
	return fmt.Errorf("unknown experiment id %q (valid: fig10..fig16, ext:<name>, scale, load)", id)
}

// DefaultSpec is the grid behind the six committed results tables:
// results_all.txt (every figure, moderate replication), results_paper.txt
// (every figure, the paper's ±1% criterion), results_ext.txt (every
// pre-existing extension experiment with its section header),
// results_scale.txt (the large-n sweep), results_load.txt (the
// heavy-traffic saturation sweep), and results_restart.txt (the
// crash-recovery restart sweeps, in their own table so the older tables
// stay byte-identical). The committed grid.json must stay equal to it
// (pinned by TestCommittedSpecMatchesDefault).
func DefaultSpec() Spec {
	figs := func(paper bool) []ExperimentSpec {
		var out []ExperimentSpec
		for _, id := range experiments.AllFigureIDs() {
			out = append(out, ExperimentSpec{ID: "fig" + id, Paper: paper})
		}
		return out
	}
	// The restart sweeps live in their own table: appending them to
	// results_ext.txt would change committed bytes.
	restartIDs := map[string]bool{"restart": true, "restartlatency": true}
	var exts, restarts []ExperimentSpec
	for _, id := range experiments.AllExtensionIDs() {
		e := ExperimentSpec{
			ID:     "ext:" + id,
			Header: fmt.Sprintf("==== -ext %s ====", id),
		}
		if restartIDs[id] {
			restarts = append(restarts, e)
		} else {
			exts = append(exts, e)
		}
	}
	return Spec{Tables: []TableSpec{
		{Output: "results_all.txt", Experiments: figs(false)},
		{Output: "results_paper.txt", Experiments: figs(true)},
		{Output: "results_ext.txt", Experiments: exts},
		{Output: "results_scale.txt", Experiments: []ExperimentSpec{{ID: "scale"}}},
		{Output: "results_load.txt", Experiments: []ExperimentSpec{{ID: "load"}}},
		{Output: "results_restart.txt", Experiments: restarts},
	}}
}
