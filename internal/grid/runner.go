package grid

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"adhocbcast/internal/experiments"
	"adhocbcast/internal/obsv"
	"adhocbcast/internal/stats"
)

// Options configures a grid execution (Run, List, Verify).
type Options struct {
	// Spec is the grid to execute.
	Spec Spec
	// Cache holds the content-addressed point results and table manifests.
	Cache *Cache
	// OutDir is where generated tables are written (and where Verify looks
	// for them); default ".".
	OutDir string
	// Tables, when non-empty, restricts execution to the named outputs.
	Tables []string
	// RequireCached makes any cache miss an error instead of computing the
	// point — the mode grid-smoke uses to prove a rerun is all hits.
	RequireCached bool
	// ReplicateParallelism bounds concurrently evaluated replicates within a
	// data point (results are identical for any value); default 1.
	ReplicateParallelism int
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

func (o Options) outDir() string {
	if o.OutDir == "" {
		return "."
	}
	return o.OutDir
}

// selected reports whether output is in the Tables filter (empty = all).
func (o Options) selected(output string) bool {
	if len(o.Tables) == 0 {
		return true
	}
	for _, t := range o.Tables {
		if t == output {
			return true
		}
	}
	return false
}

// Stats counts the points a Run touched.
type Stats struct {
	// Points is the total number of grid points executed or served.
	Points int
	// Hits and Misses split Points by cache outcome.
	Hits, Misses int
}

// summaryPayload is the cached form of a CI-replicated point's result.
// float64 values survive the JSON round-trip exactly (Go encodes them in
// shortest round-tripping form), so a cached summary formats byte-identically
// to a freshly computed one.
type summaryPayload struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	CI90   float64 `json:"ci90"`
}

func payloadFrom(s stats.Summary) summaryPayload {
	return summaryPayload{N: s.N, Mean: s.Mean, StdDev: s.StdDev, CI90: s.HalfWidth90}
}

func (p summaryPayload) summary() stats.Summary {
	return stats.Summary{N: p.N, Mean: p.Mean, StdDev: p.StdDev, HalfWidth90: p.CI90}
}

// collector gathers per-point outcomes from Runner hooks, which the drivers
// invoke concurrently.
type collector struct {
	opts Options
	mu   sync.Mutex
	st   *Stats
	ents []manifestEntry
}

func (c *collector) record(cfg PointConfig, hit bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.st.Points++
	if hit {
		c.st.Hits++
	} else {
		c.st.Misses++
	}
	c.ents = append(c.ents, manifestEntry{Experiment: cfg.Experiment, Point: cfg.Point, Hash: cfg.Hash()})
}

// resolve returns the experiment's effective seed and replication criterion —
// the values the driver will actually use, with every default filled in, so
// the PointConfig hash keys on real parameters rather than zeroes.
func (e ExperimentSpec) resolve() (int64, stats.ReplicateOptions) {
	seed := e.Seed
	if seed == 0 {
		seed = 42
	}
	if e.Paper {
		return seed, experiments.Paper()
	}
	rep := stats.ReplicateOptions{MinRuns: e.MinRuns, MaxRuns: e.MaxRuns, RelTol: e.RelTol}
	if rep.MinRuns == 0 {
		rep.MinRuns = 30
	}
	if rep.MaxRuns == 0 {
		rep.MaxRuns = 200
	}
	if rep.RelTol == 0 {
		rep.RelTol = 0.03
	}
	return seed, rep
}

// Run executes every selected table of the spec: each grid point is served
// from the cache when its content-addressed file verifies, computed and
// stored otherwise, and each completed table is written atomically to OutDir
// alongside a sealed provenance manifest in the cache.
func Run(opts Options) (Stats, error) {
	var st Stats
	for _, t := range opts.Spec.Tables {
		if !opts.selected(t.Output) {
			continue
		}
		col := &collector{opts: opts, st: &st}
		var buf strings.Builder
		for _, e := range t.Experiments {
			section, err := runExperiment(opts, e, col)
			if err != nil {
				return st, fmt.Errorf("grid: %s: %s: %w", t.Output, e.ID, err)
			}
			if e.Header != "" {
				buf.WriteString(e.Header + "\n")
			}
			buf.WriteString(section)
		}
		data := []byte(buf.String())
		sum := sha256.Sum256(data)
		if err := opts.Cache.WriteManifest(t.Output, col.ents, hex.EncodeToString(sum[:])); err != nil {
			return st, fmt.Errorf("grid: %s: manifest: %w", t.Output, err)
		}
		if err := obsv.WriteFileAtomic(filepath.Join(opts.outDir(), t.Output), data); err != nil {
			return st, fmt.Errorf("grid: %s: %w", t.Output, err)
		}
		opts.logf("%s: %d point(s)", t.Output, len(col.ents))
	}
	return st, nil
}

// runExperiment executes one section of a table and returns its rendered
// bytes (excluding the optional header). The output is byte-identical to what
// cmd/experiments prints for the same parameters: Format(figure) plus the
// trailing blank line for figure and extension sections, FormatScale for the
// scale sweep, FormatLoad for the saturation sweep.
func runExperiment(opts Options, e ExperimentSpec, col *collector) (string, error) {
	seed, rep := e.resolve()
	if e.ID == "load" {
		lc := experiments.LoadConfig{
			Rates:      e.LoadRates,
			Replicates: e.LoadReps,
			Seed:       seed,
			Runner:     loadRunner(opts, e, seed, col),
		}
		rows, err := experiments.Load(lc)
		if err != nil {
			return "", err
		}
		return experiments.FormatLoad(rows), nil
	}
	if e.ID == "scale" {
		sc := experiments.ScaleConfig{
			Sizes:      e.ScaleSizes,
			Degree:     e.ScaleDegree,
			Replicates: e.ScaleReps,
			Seed:       seed,
			Runner:     scaleRunner(opts, e, seed, col),
		}
		rows, err := experiments.Scale(sc)
		if err != nil {
			return "", err
		}
		return experiments.FormatScale(rows), nil
	}
	rc := experiments.RunConfig{
		Sizes:                e.Sizes,
		Degrees:              e.Degrees,
		Replicate:            rep,
		Seed:                 seed,
		ReplicateParallelism: opts.ReplicateParallelism,
		CrashFractions:       e.CrashFractions,
		LossRates:            e.LossRates,
		HelloLossRates:       e.HelloLossRates,
		RestartRates:         e.RestartRates,
		Runner:               ciRunner(opts, e, seed, rep, col),
	}
	f, err := figureFor(e.ID, rc)
	if err != nil {
		return "", err
	}
	return experiments.Format(f) + "\n", nil
}

// figureFor dispatches a fig/ext experiment id to its driver.
func figureFor(id string, rc experiments.RunConfig) (experiments.Figure, error) {
	if ext, ok := strings.CutPrefix(id, "ext:"); ok {
		return experiments.ExtensionByID(ext, rc)
	}
	return experiments.FigureByID(strings.TrimPrefix(id, "fig"), rc)
}

// ciRunner is the caching hook for CI-replicated (figure and extension)
// points.
func ciRunner(opts Options, e ExperimentSpec, seed int64, rep stats.ReplicateOptions, col *collector) func(string, func() (stats.Summary, error)) (stats.Summary, error) {
	return func(point string, compute func() (stats.Summary, error)) (stats.Summary, error) {
		cfg := PointConfig{
			Schema:     PointSchema,
			Experiment: e.ID,
			Point:      point,
			Seed:       seed,
			MinRuns:    rep.MinRuns,
			MaxRuns:    rep.MaxRuns,
			RelTol:     rep.RelTol,
		}
		var payload summaryPayload
		hit, err := opts.Cache.Get(cfg, &payload)
		if err != nil {
			return stats.Summary{}, err
		}
		if hit {
			col.record(cfg, true)
			return payload.summary(), nil
		}
		if opts.RequireCached {
			return stats.Summary{}, fmt.Errorf("grid: point %q (%.12s…) not cached", point, cfg.Hash())
		}
		sum, err := compute()
		if err != nil {
			return stats.Summary{}, err
		}
		if err := opts.Cache.Put(cfg, payloadFrom(sum)); err != nil {
			return stats.Summary{}, err
		}
		col.record(cfg, false)
		return sum, nil
	}
}

// scaleRunner is the caching hook for fixed-replication scale points.
func scaleRunner(opts Options, e ExperimentSpec, seed int64, col *collector) func(string, func() ([]experiments.ScaleRow, error)) ([]experiments.ScaleRow, error) {
	return func(point string, compute func() ([]experiments.ScaleRow, error)) ([]experiments.ScaleRow, error) {
		cfg, err := scalePointConfig(e.ID, point, seed)
		if err != nil {
			return nil, err
		}
		var rows []experiments.ScaleRow
		hit, err := opts.Cache.Get(cfg, &rows)
		if err != nil {
			return nil, err
		}
		if hit {
			col.record(cfg, true)
			return rows, nil
		}
		if opts.RequireCached {
			return nil, fmt.Errorf("grid: point %q (%.12s…) not cached", point, cfg.Hash())
		}
		rows, err = compute()
		if err != nil {
			return nil, err
		}
		if err := opts.Cache.Put(cfg, rows); err != nil {
			return nil, err
		}
		col.record(cfg, false)
		return rows, nil
	}
}

// loadRunner is the caching hook for fixed-replication saturation points.
func loadRunner(opts Options, e ExperimentSpec, seed int64, col *collector) func(string, func() ([]experiments.LoadRow, error)) ([]experiments.LoadRow, error) {
	return func(point string, compute func() ([]experiments.LoadRow, error)) ([]experiments.LoadRow, error) {
		cfg, err := loadPointConfig(e.ID, point, seed)
		if err != nil {
			return nil, err
		}
		var rows []experiments.LoadRow
		hit, err := opts.Cache.Get(cfg, &rows)
		if err != nil {
			return nil, err
		}
		if hit {
			col.record(cfg, true)
			return rows, nil
		}
		if opts.RequireCached {
			return nil, fmt.Errorf("grid: point %q (%.12s…) not cached", point, cfg.Hash())
		}
		rows, err = compute()
		if err != nil {
			return nil, err
		}
		if err := opts.Cache.Put(cfg, rows); err != nil {
			return nil, err
		}
		col.record(cfg, false)
		return rows, nil
	}
}

// loadPointConfig builds the canonical config of one saturation point from
// its label (the offered load is encoded as integer permille, so no floats
// enter the content address).
func loadPointConfig(experiment, point string, seed int64) (PointConfig, error) {
	var rpm, n, d, reps int
	if _, err := fmt.Sscanf(point, "load/rpm=%d/n=%d/d=%d/reps=%d", &rpm, &n, &d, &reps); err != nil {
		return PointConfig{}, fmt.Errorf("grid: unparseable load point label %q: %w", point, err)
	}
	return PointConfig{
		Schema:     PointSchema,
		Experiment: experiment,
		Point:      point,
		Seed:       seed,
		Replicates: reps,
		Degree:     d,
	}, nil
}

// scalePointConfig builds the canonical config of one scale point from its
// label, which pins the actual replicate count (the driver caps it for the
// largest sizes) and degree.
func scalePointConfig(experiment, point string, seed int64) (PointConfig, error) {
	var n, d, reps int
	if _, err := fmt.Sscanf(point, "scale/n=%d/d=%d/reps=%d", &n, &d, &reps); err != nil {
		return PointConfig{}, fmt.Errorf("grid: unparseable scale point label %q: %w", point, err)
	}
	return PointConfig{
		Schema:     PointSchema,
		Experiment: experiment,
		Point:      point,
		Seed:       seed,
		Replicates: reps,
		Degree:     d,
	}, nil
}

// PointStatus is one grid point's cache state, as reported by List.
type PointStatus struct {
	// Experiment and Point identify the grid point; Hash is its content
	// address.
	Experiment, Point, Hash string
	// Cached reports whether the point's cache file exists (List does not
	// verify it; see Verify).
	Cached bool
}

// List enumerates every selected grid point and whether it is cached,
// without computing anything: the drivers run with a hook that records each
// point and substitutes zero results.
func List(opts Options) ([]PointStatus, error) {
	var mu sync.Mutex
	var out []PointStatus
	record := func(cfg PointConfig) {
		_, err := os.Stat(opts.Cache.pointPath(cfg.Hash()))
		mu.Lock()
		defer mu.Unlock()
		out = append(out, PointStatus{
			Experiment: cfg.Experiment,
			Point:      cfg.Point,
			Hash:       cfg.Hash(),
			Cached:     err == nil,
		})
	}
	for _, t := range opts.Spec.Tables {
		if !opts.selected(t.Output) {
			continue
		}
		for _, e := range t.Experiments {
			seed, rep := e.resolve()
			var err error
			if e.ID == "load" {
				lc := experiments.LoadConfig{
					Rates:      e.LoadRates,
					Replicates: e.LoadReps,
					Seed:       seed,
					Runner: func(point string, _ func() ([]experiments.LoadRow, error)) ([]experiments.LoadRow, error) {
						cfg, err := loadPointConfig(e.ID, point, seed)
						if err != nil {
							return nil, err
						}
						record(cfg)
						return nil, nil
					},
				}
				_, err = experiments.Load(lc)
			} else if e.ID == "scale" {
				sc := experiments.ScaleConfig{
					Sizes:      e.ScaleSizes,
					Degree:     e.ScaleDegree,
					Replicates: e.ScaleReps,
					Seed:       seed,
					Runner: func(point string, _ func() ([]experiments.ScaleRow, error)) ([]experiments.ScaleRow, error) {
						cfg, err := scalePointConfig(e.ID, point, seed)
						if err != nil {
							return nil, err
						}
						record(cfg)
						return nil, nil
					},
				}
				_, err = experiments.Scale(sc)
			} else {
				rc := experiments.RunConfig{
					Sizes:          e.Sizes,
					Degrees:        e.Degrees,
					Replicate:      rep,
					Seed:           seed,
					CrashFractions: e.CrashFractions,
					LossRates:      e.LossRates,
					HelloLossRates: e.HelloLossRates,
					RestartRates:   e.RestartRates,
					Runner: func(point string, _ func() (stats.Summary, error)) (stats.Summary, error) {
						record(PointConfig{
							Schema:     PointSchema,
							Experiment: e.ID,
							Point:      point,
							Seed:       seed,
							MinRuns:    rep.MinRuns,
							MaxRuns:    rep.MaxRuns,
							RelTol:     rep.RelTol,
						})
						return stats.Summary{}, nil
					},
				}
				_, err = figureFor(e.ID, rc)
			}
			if err != nil {
				return nil, fmt.Errorf("grid: list %s: %w", e.ID, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Experiment != out[j].Experiment {
			return out[i].Experiment < out[j].Experiment
		}
		return out[i].Point < out[j].Point
	})
	return out, nil
}

// Verify checks the whole store: every cached point file's chain seal and
// content address, every manifest's chain seal, every manifest entry's point
// file, and every manifest's recorded table hash against the table file in
// OutDir. It returns the number of verified point files; all failures are
// reported together.
func Verify(opts Options) (int, error) {
	points, err := opts.Cache.VerifyAll()
	var errs []error
	if err != nil {
		errs = append(errs, err)
	}
	outputs, err := opts.Cache.Manifests()
	if err != nil {
		return points, errors.Join(append(errs, err)...)
	}
	for _, output := range outputs {
		entries, table, err := opts.Cache.readManifest(output)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		for _, e := range entries {
			if _, err := os.Stat(opts.Cache.pointPath(e.Hash)); err != nil {
				errs = append(errs, fmt.Errorf("grid: manifest %s: point %q (%.12s…) has no cache file", output, e.Point, e.Hash))
			}
		}
		path := filepath.Join(opts.outDir(), table.Output)
		data, err := os.ReadFile(path)
		if err != nil {
			errs = append(errs, fmt.Errorf("grid: manifest %s: %w", output, err))
			continue
		}
		sum := sha256.Sum256(data)
		if got := hex.EncodeToString(sum[:]); got != table.SHA256 {
			errs = append(errs, fmt.Errorf("grid: %s does not match its manifest hash (regenerated without `make grid`, or tampered)", path))
			continue
		}
		opts.logf("%s: %d point(s), table hash ok", output, len(entries))
	}
	return points, errors.Join(errs...)
}
