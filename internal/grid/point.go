// Package grid executes declarative experiment grids with content-addressed
// result caching: a grid spec (grid.json or a Go-side Spec) expands into the
// fully-resolved data points of the repository's figure, extension, and
// scale sweeps, each point's result is stored in a file keyed by the SHA-256
// of its canonical configuration, and reruns skip every point whose file
// already verifies — an interrupted sweep resumes where it died instead of
// starting over. All files are written atomically (temp file + rename, see
// obsv.AtomicFile) and carry obsv/v1 hash-chain seals, so a kill leaves no
// partial file and a flipped byte in any cached point or manifest is
// detected by Verify rather than silently poisoning a regenerated table.
//
// The package drives the experiment drivers through their Runner hooks
// (experiments.RunConfig.Runner, experiments.ScaleConfig.Runner), so a grid
// point is exactly one driver data point and cold-run results are
// byte-identical to cmd/experiments output.
package grid

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// PointSchema versions the canonical point-configuration layout. Any change
// to PointConfig's fields or their JSON encoding changes every hash, so it
// doubles as the cache-invalidation epoch: bump it and the whole cache
// recomputes.
const PointSchema = "grid/point/v1"

// PointConfig is the canonical, fully-resolved configuration of one grid
// point — everything that determines the point's result and nothing that
// does not (parallelism, output paths, and progress plumbing never change
// measured values, so they are excluded). Its canonical JSON encoding is
// hashed to content-address the point's cache file.
//
// Exactly one of the two trailing field groups is used: CI-replicated points
// (figures and extensions) carry MinRuns/MaxRuns/RelTol and zero
// Replicates/Degree; fixed-replication scale points carry Replicates/Degree
// and zero MinRuns/MaxRuns/RelTol. No field is omitempty: zeroes are
// encoded, so the hash input has a fixed shape.
type PointConfig struct {
	// Schema is PointSchema.
	Schema string `json:"schema"`
	// Experiment is the driver that owns the point: "fig10".."fig16",
	// "ext:<name>", or "scale".
	Experiment string `json:"experiment"`
	// Point is the driver's data-point label, e.g. "10/d=6, 2-hop/FR/n=60/d=6"
	// or "scale/n=1000/d=18/reps=5". Labels encode the panel, variant, and
	// sweep coordinates, so together with the fields below they pin the
	// point completely.
	Point string `json:"point"`
	// Seed is the base workload seed the driver derives every per-replicate
	// seed from (see experiments deriveSeed).
	Seed int64 `json:"seed"`
	// MinRuns, MaxRuns, and RelTol are the CI replication criterion of
	// figure and extension points.
	MinRuns int     `json:"min_runs"`
	MaxRuns int     `json:"max_runs"`
	RelTol  float64 `json:"rel_tol"`
	// Replicates and Degree are the fixed replication count and target
	// average degree of scale points.
	Replicates int `json:"replicates"`
	Degree     int `json:"degree"`
}

// Hash returns the content address of the point: the hex SHA-256 of the
// canonical JSON encoding. Go encodes struct fields in declaration order
// and float64s in their shortest round-tripping form, so the encoding — and
// therefore the hash — is deterministic across runs and machines.
func (c PointConfig) Hash() string {
	data, err := json.Marshal(c)
	if err != nil {
		// A struct of scalars cannot fail to marshal; any error here is a
		// future field breaking the canonical-encoding contract.
		panic(fmt.Sprintf("grid: PointConfig not canonically encodable: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
