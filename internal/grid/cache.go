package grid

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"adhocbcast/internal/obsv"
)

// RecordSchema versions the grid's own JSONL record lines (cached points and
// manifest entries). The obsv chain records interleaved with them keep their
// own obsv/v1 schema.
const RecordSchema = "grid/v1"

// Record kinds of RecordSchema lines.
const (
	// KindPoint lines carry one cached point: its config and result.
	KindPoint = "point"
	// KindEntry manifest lines reference one point of a generated table.
	KindEntry = "entry"
	// KindTable manifest lines carry the generated table's content hash.
	KindTable = "table"
)

// Cache is a content-addressed store of computed grid points plus the
// per-table manifests tracing each generated results file to the exact
// point set that produced it. Layout under the root directory:
//
//	points/<hash>.jsonl      one cached point, <hash> = PointConfig.Hash()
//	manifests/<output>.jsonl one manifest per generated table
//
// Every file is two-plus lines of JSONL sealed with an obsv chain record and
// written atomically, so interrupted writers leave no partial files and
// tampering is detectable (Verify, VerifyAll).
type Cache struct {
	dir string
}

// OpenCache opens (creating if needed) a cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	for _, sub := range []string{"points", "manifests"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, err
		}
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// pointRecord is the first line of a cached point file.
type pointRecord struct {
	Schema string          `json:"schema"`
	Kind   string          `json:"kind"`
	Config PointConfig     `json:"config"`
	Result json.RawMessage `json:"result"`
}

func (c *Cache) pointPath(hash string) string {
	return filepath.Join(c.dir, "points", hash+".jsonl")
}

// Get looks the point's config up by content address. On a hit the cached
// result is decoded into out and Get returns true. A present-but-corrupt
// file — failed chain verification, config mismatch, undecodable result —
// is an error, never a silent miss: a tampered cache must not quietly
// recompute (hiding the tampering) or serve bad data.
func (c *Cache) Get(cfg PointConfig, out any) (bool, error) {
	path := c.pointPath(cfg.Hash())
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	rec, err := parsePointFile(path, data)
	if err != nil {
		return false, err
	}
	if rec.Config != cfg {
		return false, fmt.Errorf("grid: %s: cached config does not match its content address (cache tampered?)", path)
	}
	if err := json.Unmarshal(rec.Result, out); err != nil {
		return false, fmt.Errorf("grid: %s: cached result: %w", path, err)
	}
	return true, nil
}

// Put stores one computed point, atomically: the file appears under its
// content address only complete and sealed.
func (c *Cache) Put(cfg PointConfig, result any) error {
	raw, err := json.Marshal(result)
	if err != nil {
		return fmt.Errorf("grid: encode result for %s: %w", cfg.Point, err)
	}
	line, err := json.Marshal(pointRecord{Schema: RecordSchema, Kind: KindPoint, Config: cfg, Result: raw})
	if err != nil {
		return err
	}
	return obsv.WriteFileAtomic(c.pointPath(cfg.Hash()), sealLines(append(line, '\n')))
}

// sealLines appends the obsv chain record covering lines (newline-terminated
// JSONL bytes), producing a stream that passes obsv.VerifyChain.
func sealLines(lines []byte) []byte {
	ch := obsv.NewChainHasher()
	for _, line := range bytes.SplitAfter(lines, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		ch.Add(line)
	}
	link := ch.Link()
	sealed, err := json.Marshal(obsv.Record{Schema: obsv.SchemaVersion, Kind: obsv.KindChain, Chain: &link})
	if err != nil {
		panic(fmt.Sprintf("grid: chain record not encodable: %v", err))
	}
	return append(append(lines, sealed...), '\n')
}

// parsePointFile verifies one cached point file (chain seal, schema, content
// address) and returns its point record.
func parsePointFile(path string, data []byte) (pointRecord, error) {
	if _, err := obsv.VerifyChain(bytes.NewReader(data)); err != nil {
		return pointRecord{}, fmt.Errorf("grid: %s: %w", path, err)
	}
	first, _, ok := bytes.Cut(data, []byte("\n"))
	if !ok {
		return pointRecord{}, fmt.Errorf("grid: %s: empty point file", path)
	}
	var rec pointRecord
	if err := json.Unmarshal(first, &rec); err != nil {
		return pointRecord{}, fmt.Errorf("grid: %s: %w", path, err)
	}
	if rec.Schema != RecordSchema || rec.Kind != KindPoint {
		return pointRecord{}, fmt.Errorf("grid: %s: not a %s %s record (schema %q kind %q)",
			path, RecordSchema, KindPoint, rec.Schema, rec.Kind)
	}
	want := strings.TrimSuffix(filepath.Base(path), ".jsonl")
	if got := rec.Config.Hash(); got != want {
		return pointRecord{}, fmt.Errorf("grid: %s: config hashes to %.12s…, file claims %.12s… (cache tampered?)", path, got, want)
	}
	return rec, nil
}

// VerifyAll checks every cached point file: chain seal intact, config
// matching its content address. It returns the number of verified points;
// all corrupt files are reported together.
func (c *Cache) VerifyAll() (int, error) {
	entries, err := os.ReadDir(filepath.Join(c.dir, "points"))
	if err != nil {
		return 0, err
	}
	verified := 0
	var errs []error
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".jsonl") {
			continue
		}
		path := filepath.Join(c.dir, "points", e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if _, err := parsePointFile(path, data); err != nil {
			errs = append(errs, err)
			continue
		}
		verified++
	}
	return verified, errors.Join(errs...)
}

// manifestEntry is one point reference of a table manifest.
type manifestEntry struct {
	Schema     string `json:"schema"`
	Kind       string `json:"kind"`
	Experiment string `json:"experiment"`
	Point      string `json:"point"`
	Hash       string `json:"hash"`
}

// manifestTable is the closing line of a table manifest: the generated
// file's name and content hash.
type manifestTable struct {
	Schema string `json:"schema"`
	Kind   string `json:"kind"`
	Output string `json:"output"`
	SHA256 string `json:"sha256"`
}

func (c *Cache) manifestPath(output string) string {
	return filepath.Join(c.dir, "manifests", output+".jsonl")
}

// WriteManifest records the provenance of one generated table: the sorted
// point set that produced it and the table's content hash, sealed and
// written atomically.
func (c *Cache) WriteManifest(output string, entries []manifestEntry, tableSHA string) error {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Experiment != entries[j].Experiment {
			return entries[i].Experiment < entries[j].Experiment
		}
		return entries[i].Point < entries[j].Point
	})
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range entries {
		entries[i].Schema = RecordSchema
		entries[i].Kind = KindEntry
		if err := enc.Encode(entries[i]); err != nil {
			return err
		}
	}
	if err := enc.Encode(manifestTable{Schema: RecordSchema, Kind: KindTable, Output: output, SHA256: tableSHA}); err != nil {
		return err
	}
	return obsv.WriteFileAtomic(c.manifestPath(output), sealLines(buf.Bytes()))
}

// readManifest parses and chain-verifies one table manifest.
func (c *Cache) readManifest(output string) ([]manifestEntry, manifestTable, error) {
	path := c.manifestPath(output)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, manifestTable{}, err
	}
	if _, err := obsv.VerifyChain(bytes.NewReader(data)); err != nil {
		return nil, manifestTable{}, fmt.Errorf("grid: %s: %w", path, err)
	}
	var entries []manifestEntry
	var table manifestTable
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var probe struct {
			Schema string `json:"schema"`
			Kind   string `json:"kind"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, manifestTable{}, fmt.Errorf("grid: %s: %w", path, err)
		}
		switch {
		case probe.Schema == RecordSchema && probe.Kind == KindEntry:
			var e manifestEntry
			if err := json.Unmarshal(line, &e); err != nil {
				return nil, manifestTable{}, fmt.Errorf("grid: %s: %w", path, err)
			}
			entries = append(entries, e)
		case probe.Schema == RecordSchema && probe.Kind == KindTable:
			if err := json.Unmarshal(line, &table); err != nil {
				return nil, manifestTable{}, fmt.Errorf("grid: %s: %w", path, err)
			}
		}
	}
	if table.Output == "" {
		return nil, manifestTable{}, fmt.Errorf("grid: %s: manifest has no table record", path)
	}
	return entries, table, nil
}

// Manifests lists the outputs that have a recorded manifest.
func (c *Cache) Manifests() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(c.dir, "manifests"))
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".jsonl") {
			out = append(out, strings.TrimSuffix(e.Name(), ".jsonl"))
		}
	}
	sort.Strings(out)
	return out, nil
}
