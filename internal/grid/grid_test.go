package grid

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestPointConfigHashSensitivity walks PointConfig's fields by reflection and
// perturbs each one, proving the content address depends on every field: a
// future field added to the struct is covered automatically, and a field
// accidentally dropped from the JSON encoding (e.g. a json:"-" tag) fails
// here instead of silently aliasing distinct configurations.
func TestPointConfigHashSensitivity(t *testing.T) {
	base := PointConfig{
		Schema:     PointSchema,
		Experiment: "fig10",
		Point:      "10/d=6, 2-hop/FR/n=60/d=6",
		Seed:       42,
		MinRuns:    30,
		MaxRuns:    200,
		RelTol:     0.03,
		Replicates: 5,
		Degree:     18,
	}
	want := base.Hash()
	if want != base.Hash() {
		t.Fatal("hash not deterministic")
	}
	rt := reflect.TypeOf(base)
	for i := 0; i < rt.NumField(); i++ {
		field := rt.Field(i)
		mut := base
		fv := reflect.ValueOf(&mut).Elem().Field(i)
		switch fv.Kind() {
		case reflect.String:
			fv.SetString(fv.String() + "x")
		case reflect.Int, reflect.Int64:
			fv.SetInt(fv.Int() + 1)
		case reflect.Float64:
			fv.SetFloat(fv.Float() + 0.5)
		default:
			t.Fatalf("field %s has kind %s: teach this test to perturb it", field.Name, fv.Kind())
		}
		if mut.Hash() == want {
			t.Errorf("perturbing field %s did not change the hash: configs would alias in the cache", field.Name)
		}
	}
}

func TestCacheRoundTrip(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := PointConfig{Schema: PointSchema, Experiment: "fig10", Point: "p", Seed: 42, MinRuns: 5, MaxRuns: 8, RelTol: 0.5}

	var out summaryPayload
	if hit, err := c.Get(cfg, &out); err != nil || hit {
		t.Fatalf("empty cache: hit=%v err=%v", hit, err)
	}
	in := summaryPayload{N: 7, Mean: 12.3456789012345, StdDev: 0.1, CI90: 0.0123456789}
	if err := c.Put(cfg, in); err != nil {
		t.Fatal(err)
	}
	hit, err := c.Get(cfg, &out)
	if err != nil || !hit {
		t.Fatalf("after Put: hit=%v err=%v", hit, err)
	}
	if out != in {
		t.Fatalf("round trip lost precision: got %+v want %+v", out, in)
	}
	if n, err := c.VerifyAll(); err != nil || n != 1 {
		t.Fatalf("VerifyAll = %d, %v", n, err)
	}
}

// TestCacheDetectsEveryFlippedByte flips each byte of a cached point file in
// turn and requires Get to fail loudly — never a silent miss that would
// quietly recompute over tampered provenance, and never a hit serving
// corrupted data.
func TestCacheDetectsEveryFlippedByte(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := PointConfig{Schema: PointSchema, Experiment: "fig10", Point: "p", Seed: 42, MinRuns: 5, MaxRuns: 8, RelTol: 0.5}
	if err := c.Put(cfg, summaryPayload{N: 7, Mean: 1.5, StdDev: 0.1, CI90: 0.01}); err != nil {
		t.Fatal(err)
	}
	path := c.pointPath(cfg.Hash())
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range orig {
		if b == '\n' {
			continue
		}
		mut := bytes.Clone(orig)
		mut[i] ^= 0x20
		if mut[i] == '\n' || mut[i] == b {
			mut[i] = b ^ 0x01
		}
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		var out summaryPayload
		if hit, err := c.Get(cfg, &out); err == nil {
			t.Fatalf("flipped byte %d (%q -> %q): Get returned hit=%v with no error", i, b, mut[i], hit)
		}
		if _, err := c.VerifyAll(); err == nil {
			t.Fatalf("flipped byte %d: VerifyAll passed", i)
		}
	}
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	var out summaryPayload
	if hit, err := c.Get(cfg, &out); err != nil || !hit {
		t.Fatalf("restored file: hit=%v err=%v", hit, err)
	}
}

// TestCommittedSpecMatchesDefault pins the committed grid.json to DefaultSpec:
// editing one without the other fails here, so `make grid` and the Go-side
// default can never drift apart.
func TestCommittedSpecMatchesDefault(t *testing.T) {
	spec, err := LoadSpec(filepath.Join("..", "..", "grid.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, DefaultSpec()) {
		t.Fatal("committed grid.json differs from DefaultSpec(); regenerate one to match the other")
	}
}

func TestParseSpecRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"unknown field":    `{"tables":[{"output":"a.txt","experiments":[{"id":"fig10","seeed":1}]}]}`,
		"unknown id":       `{"tables":[{"output":"a.txt","experiments":[{"id":"fig99"}]}]}`,
		"unknown ext":      `{"tables":[{"output":"a.txt","experiments":[{"id":"ext:nope"}]}]}`,
		"duplicate output": `{"tables":[{"output":"a.txt","experiments":[{"id":"fig10"}]},{"output":"a.txt","experiments":[{"id":"fig11"}]}]}`,
		"empty output":     `{"tables":[{"output":"","experiments":[{"id":"fig10"}]}]}`,
		"path output":      `{"tables":[{"output":"../a.txt","experiments":[{"id":"fig10"}]}]}`,
		"no experiments":   `{"tables":[{"output":"a.txt","experiments":[]}]}`,
		"no tables":        `{"tables":[]}`,
	}
	for name, doc := range cases {
		if _, err := ParseSpec([]byte(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := ParseSpec([]byte(`{"tables":[{"output":"a.txt","experiments":[{"id":"ext:mobility"},{"id":"scale"}]}]}`)); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

// tinySpec is a fast two-table grid for runner tests: one figure section with
// a single (n, d) sweep cell and loose replication.
func tinySpec() Spec {
	return Spec{Tables: []TableSpec{{
		Output: "tiny.txt",
		Experiments: []ExperimentSpec{{
			ID:      "fig10",
			Seed:    7,
			Sizes:   []int{20},
			Degrees: []int{6},
			MinRuns: 5,
			MaxRuns: 8,
			RelTol:  0.5,
		}},
	}}}
}

func TestRunCachesAndResumes(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	out := t.TempDir()
	opts := Options{Spec: tinySpec(), Cache: cache, OutDir: out}

	cold, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Points == 0 || cold.Hits != 0 || cold.Misses != cold.Points {
		t.Fatalf("cold run: %+v", cold)
	}
	table1, err := os.ReadFile(filepath.Join(out, "tiny.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(table1) == 0 || !strings.Contains(string(table1), "Figure 10") {
		t.Fatalf("table content: %q", table1)
	}

	// Warm rerun: every point must be a hit (enforced by RequireCached) and
	// the table byte-identical.
	opts.RequireCached = true
	warm, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Points != cold.Points || warm.Hits != warm.Points || warm.Misses != 0 {
		t.Fatalf("warm run: %+v (cold %+v)", warm, cold)
	}
	table2, err := os.ReadFile(filepath.Join(out, "tiny.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(table1, table2) {
		t.Fatalf("warm table differs from cold table:\ncold: %q\nwarm: %q", table1, table2)
	}

	if n, err := Verify(opts); err != nil || n != cold.Points {
		t.Fatalf("Verify = %d, %v (want %d points)", n, err, cold.Points)
	}
}

func TestRunRequireCachedFailsCold(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Spec: tinySpec(), Cache: cache, OutDir: t.TempDir(), RequireCached: true}
	if _, err := Run(opts); err == nil || !strings.Contains(err.Error(), "not cached") {
		t.Fatalf("cold run with RequireCached: %v", err)
	}
}

func TestListReportsCacheState(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Spec: tinySpec(), Cache: cache, OutDir: t.TempDir()}

	before, err := List(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) == 0 {
		t.Fatal("List found no points")
	}
	for _, p := range before {
		if p.Cached {
			t.Fatalf("cold cache reports %q cached", p.Point)
		}
	}
	st, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	after, err := List(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != st.Points {
		t.Fatalf("List found %d points, Run executed %d", len(after), st.Points)
	}
	for _, p := range after {
		if !p.Cached {
			t.Fatalf("after Run, %q not cached", p.Point)
		}
	}
}

func TestVerifyDetectsTamperedTableAndPoint(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	out := t.TempDir()
	opts := Options{Spec: tinySpec(), Cache: cache, OutDir: out}
	if _, err := Run(opts); err != nil {
		t.Fatal(err)
	}

	// A regenerated-by-hand table no longer matches its manifest hash.
	table := filepath.Join(out, "tiny.txt")
	data, err := os.ReadFile(table)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(table, append(data, '#'), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(opts); err == nil || !strings.Contains(err.Error(), "manifest hash") {
		t.Fatalf("tampered table passed Verify: %v", err)
	}
	if err := os.WriteFile(table, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// A deleted point file breaks the manifest's provenance.
	points, err := os.ReadDir(filepath.Join(cache.Dir(), "points"))
	if err != nil || len(points) == 0 {
		t.Fatalf("points dir: %v (%d entries)", err, len(points))
	}
	victim := filepath.Join(cache.Dir(), "points", points[0].Name())
	if err := os.Remove(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(opts); err == nil || !strings.Contains(err.Error(), "no cache file") {
		t.Fatalf("missing point file passed Verify: %v", err)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	entries := []manifestEntry{
		{Experiment: "fig11", Point: "b", Hash: "22"},
		{Experiment: "fig10", Point: "a", Hash: "11"},
	}
	if err := c.WriteManifest("x.txt", entries, "deadbeef"); err != nil {
		t.Fatal(err)
	}
	got, table, err := c.readManifest("x.txt")
	if err != nil {
		t.Fatal(err)
	}
	if table.Output != "x.txt" || table.SHA256 != "deadbeef" {
		t.Fatalf("table record: %+v", table)
	}
	if len(got) != 2 || got[0].Experiment != "fig10" || got[1].Experiment != "fig11" {
		t.Fatalf("entries not sorted: %+v", got)
	}
	outs, err := c.Manifests()
	if err != nil || len(outs) != 1 || outs[0] != "x.txt" {
		t.Fatalf("Manifests = %v, %v", outs, err)
	}
}

// TestLoadRunnerCaches exercises the saturation-sweep path end to end on a
// tiny sweep: cold run computes and stores one point per rate, warm run is
// all hits with identical bytes.
func TestLoadRunnerCaches(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	out := t.TempDir()
	spec := Spec{Tables: []TableSpec{{
		Output: "load.txt",
		Experiments: []ExperimentSpec{{
			ID:        "load",
			Seed:      7,
			LoadRates: []float64{0.05, 0.2},
			LoadReps:  2,
		}},
	}}}
	opts := Options{Spec: spec, Cache: cache, OutDir: out}
	cold, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Points != 2 || cold.Misses != 2 {
		t.Fatalf("cold load run: %+v", cold)
	}
	table1, err := os.ReadFile(filepath.Join(out, "load.txt"))
	if err != nil {
		t.Fatal(err)
	}
	opts.RequireCached = true
	warm, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Hits != 2 || warm.Misses != 0 {
		t.Fatalf("warm load run: %+v", warm)
	}
	table2, err := os.ReadFile(filepath.Join(out, "load.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(table1, table2) {
		t.Fatalf("load table not byte-identical:\ncold: %q\nwarm: %q", table1, table2)
	}
	if !strings.Contains(string(table1), "offered load 0.050 sessions/slot (2 replicates)") {
		t.Fatalf("load table content: %q", table1)
	}
}

// TestScaleRunnerCaches exercises the scale path end to end on a tiny sweep:
// cold run computes and stores, warm run is all hits with identical bytes.
func TestScaleRunnerCaches(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	out := t.TempDir()
	spec := Spec{Tables: []TableSpec{{
		Output: "scale.txt",
		Experiments: []ExperimentSpec{{
			ID:         "scale",
			Seed:       7,
			ScaleSizes: []int{40, 60},
			ScaleReps:  2,
		}},
	}}}
	opts := Options{Spec: spec, Cache: cache, OutDir: out}
	cold, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Points != 2 || cold.Misses != 2 {
		t.Fatalf("cold scale run: %+v", cold)
	}
	table1, err := os.ReadFile(filepath.Join(out, "scale.txt"))
	if err != nil {
		t.Fatal(err)
	}
	opts.RequireCached = true
	warm, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Hits != 2 || warm.Misses != 0 {
		t.Fatalf("warm scale run: %+v", warm)
	}
	table2, err := os.ReadFile(filepath.Join(out, "scale.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(table1, table2) {
		t.Fatalf("scale table not byte-identical:\ncold: %q\nwarm: %q", table1, table2)
	}
	if !strings.Contains(string(table1), "n=40 (2 replicates)") {
		t.Fatalf("scale table content: %q", table1)
	}
}
