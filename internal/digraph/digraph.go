// Package digraph models ad hoc networks with unidirectional links — nodes
// with heterogeneous transmitter ranges hear some neighbors they cannot
// reach — and provides the bidirectional abstraction sublayer the paper
// assumes on top of them (Section 2, assumption 3: "a sublayer can be added
// to provide a bidirectional abstraction for unidirectional ad hoc
// networks"). The broadcast framework then runs unchanged on the extracted
// bidirectional core.
package digraph

import (
	"fmt"
	"sort"

	"adhocbcast/internal/geo"
	"adhocbcast/internal/graph"
)

// Digraph is a simple directed graph on vertices 0..N()-1; an arc (u, v)
// means v hears u's transmissions.
type Digraph struct {
	n   int
	out [][]int
	m   int
}

// New returns an empty digraph with n vertices.
func New(n int) *Digraph {
	if n < 0 {
		n = 0
	}
	return &Digraph{
		n:   n,
		out: make([][]int, n),
	}
}

// N returns the number of vertices.
func (d *Digraph) N() int { return d.n }

// M returns the number of arcs.
func (d *Digraph) M() int { return d.m }

// AddArc inserts the arc (u, v). Self-loops and out-of-range vertices are
// rejected; duplicates are no-ops.
func (d *Digraph) AddArc(u, v int) error {
	if u < 0 || v < 0 || u >= d.n || v >= d.n {
		return fmt.Errorf("digraph: arc (%d,%d) out of range [0,%d)", u, v, d.n)
	}
	if u == v {
		return fmt.Errorf("digraph: self-loop at %d", u)
	}
	i := sort.SearchInts(d.out[u], v)
	if i < len(d.out[u]) && d.out[u][i] == v {
		return nil
	}
	d.out[u] = append(d.out[u], 0)
	copy(d.out[u][i+1:], d.out[u][i:])
	d.out[u][i] = v
	d.m++
	return nil
}

// HasArc reports whether the arc (u, v) is present.
func (d *Digraph) HasArc(u, v int) bool {
	if u < 0 || v < 0 || u >= d.n || v >= d.n {
		return false
	}
	i := sort.SearchInts(d.out[u], v)
	return i < len(d.out[u]) && d.out[u][i] == v
}

// OutNeighbors returns a copy of u's out-neighbor list in ascending order.
func (d *Digraph) OutNeighbors(u int) []int {
	return append([]int(nil), d.out[u]...)
}

// FromRanges builds the directed connectivity induced by per-node
// transmitter ranges: arc (u, v) exists iff v lies within u's range.
// Positions and ranges must have the same length.
func FromRanges(pos []geo.Point, ranges []float64) (*Digraph, error) {
	if len(pos) != len(ranges) {
		return nil, fmt.Errorf("digraph: %d positions but %d ranges", len(pos), len(ranges))
	}
	d := New(len(pos))
	for u := range pos {
		for v := range pos {
			if u == v {
				continue
			}
			if pos[u].Distance(pos[v]) <= ranges[u] {
				// Arguments are valid by construction.
				_ = d.AddArc(u, v)
			}
		}
	}
	return d, nil
}

// BidirectionalCore extracts the bidirectional abstraction: the undirected
// graph containing exactly the links that exist in both directions. The
// broadcast framework (which assumes no unidirectional links) runs on this
// core unchanged.
func BidirectionalCore(d *Digraph) *graph.Graph {
	g := graph.New(d.n)
	for u := 0; u < d.n; u++ {
		for _, v := range d.out[u] {
			if v > u && d.HasArc(v, u) {
				// Both endpoints are valid vertices.
				_ = g.AddEdge(u, v)
			}
		}
	}
	return g
}

// UnidirectionalArcs returns the arcs that have no reverse counterpart —
// the links the abstraction sublayer hides from the upper layers.
func UnidirectionalArcs(d *Digraph) [][2]int {
	var out [][2]int
	for u := 0; u < d.n; u++ {
		for _, v := range d.out[u] {
			if !d.HasArc(v, u) {
				out = append(out, [2]int{u, v})
			}
		}
	}
	return out
}
