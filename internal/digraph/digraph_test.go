package digraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adhocbcast/internal/geo"
	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
)

func TestAddArcBasics(t *testing.T) {
	d := New(3)
	if err := d.AddArc(0, 1); err != nil {
		t.Fatal(err)
	}
	if !d.HasArc(0, 1) {
		t.Fatal("arc missing")
	}
	if d.HasArc(1, 0) {
		t.Fatal("reverse arc appeared")
	}
	if err := d.AddArc(0, 1); err != nil {
		t.Fatal(err)
	}
	if d.M() != 1 {
		t.Fatalf("M = %d after duplicate", d.M())
	}
	if err := d.AddArc(1, 1); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := d.AddArc(0, 5); err == nil {
		t.Fatal("out-of-range accepted")
	}
	out := d.OutNeighbors(0)
	out[0] = 99
	if d.OutNeighbors(0)[0] != 1 {
		t.Fatal("OutNeighbors exposed internal storage")
	}
}

func TestFromRanges(t *testing.T) {
	// Three collinear nodes at x = 0, 1, 2. Node 0 has range 2.5 (hears
	// nobody... reaches both), node 1 range 1.1, node 2 range 0.5.
	pos := []geo.Point{{X: 0}, {X: 1}, {X: 2}}
	ranges := []float64{2.5, 1.1, 0.5}
	d, err := FromRanges(pos, ranges)
	if err != nil {
		t.Fatal(err)
	}
	wantArcs := map[[2]int]bool{
		{0, 1}: true, {0, 2}: true, // node 0 reaches everyone
		{1, 0}: true, {1, 2}: true, // node 1 reaches both at distance 1
	}
	for u := 0; u < 3; u++ {
		for v := 0; v < 3; v++ {
			if u == v {
				continue
			}
			if d.HasArc(u, v) != wantArcs[[2]int{u, v}] {
				t.Fatalf("arc (%d,%d) = %v", u, v, d.HasArc(u, v))
			}
		}
	}

	if _, err := FromRanges(pos, []float64{1}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestBidirectionalCore(t *testing.T) {
	pos := []geo.Point{{X: 0}, {X: 1}, {X: 2}}
	ranges := []float64{2.5, 1.1, 0.5}
	d, err := FromRanges(pos, ranges)
	if err != nil {
		t.Fatal(err)
	}
	core := BidirectionalCore(d)
	if !core.HasEdge(0, 1) {
		t.Fatal("bidirectional link {0,1} missing")
	}
	if core.HasEdge(0, 2) || core.HasEdge(1, 2) {
		t.Fatal("unidirectional link leaked into the core")
	}
	uni := UnidirectionalArcs(d)
	want := map[[2]int]bool{{0, 2}: true, {1, 2}: true}
	if len(uni) != 2 {
		t.Fatalf("unidirectional arcs = %v", uni)
	}
	for _, a := range uni {
		if !want[a] {
			t.Fatalf("unexpected unidirectional arc %v", a)
		}
	}
}

// TestCorePropertiesQuick: the bidirectional core is symmetric by
// construction, contained in the digraph both ways, and together with the
// unidirectional arcs accounts for every arc.
func TestCorePropertiesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20
		pos := make([]geo.Point, n)
		ranges := make([]float64, n)
		for i := range pos {
			pos[i] = geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
			ranges[i] = 20 + rng.Float64()*40
		}
		d, err := FromRanges(pos, ranges)
		if err != nil {
			return false
		}
		core := BidirectionalCore(d)
		for _, e := range core.Edges() {
			if !d.HasArc(e[0], e[1]) || !d.HasArc(e[1], e[0]) {
				return false
			}
		}
		uni := len(UnidirectionalArcs(d))
		return 2*core.M()+uni == d.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

// TestBroadcastOnBidirectionalCore runs the framework end to end on the
// abstraction: generate heterogeneous ranges, extract the core, and (when
// connected) broadcast with the generic algorithm.
func TestBroadcastOnBidirectionalCore(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		n := 40
		pos := make([]geo.Point, n)
		ranges := make([]float64, n)
		for i := range pos {
			pos[i] = geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
			ranges[i] = 30 + rng.Float64()*20
		}
		d, err := FromRanges(pos, ranges)
		if err != nil {
			t.Fatal(err)
		}
		core := BidirectionalCore(d)
		if !core.Connected() {
			continue
		}
		res, err := sim.Run(core, 0, protocol.Generic(protocol.TimingFirstReceipt),
			sim.Config{Hops: 2, Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if !res.FullDelivery() {
			t.Fatalf("trial %d: delivered %d/%d on bidirectional core", trial, res.Delivered, res.N)
		}
	}
}
