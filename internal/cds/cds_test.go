package cds

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adhocbcast/internal/geo"
	"adhocbcast/internal/graph"
)

func build(t *testing.T, n int, edges [][2]int) *graph.Graph {
	t.Helper()
	g := graph.New(n)
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func randomNet(t *testing.T, seed int64, n int, d float64) *graph.Graph {
	t.Helper()
	net, err := geo.Generate(geo.Config{N: n, AvgDegree: d}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return net.G
}

func TestIsCDS(t *testing.T) {
	// Path 0-1-2-3: interior nodes form the unique minimum CDS.
	g := build(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	tests := []struct {
		name string
		set  []int
		want bool
	}{
		{name: "interior", set: []int{1, 2}, want: true},
		{name: "whole graph", set: []int{0, 1, 2, 3}, want: true},
		{name: "not dominating", set: []int{1}, want: false},
		{name: "not connected", set: []int{0, 3}, want: false},
		{name: "empty", set: nil, want: false},
		{name: "out of range", set: []int{1, 9}, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := IsCDS(g, tt.set); got != tt.want {
				t.Fatalf("IsCDS(%v) = %v, want %v", tt.set, got, tt.want)
			}
		})
	}
	if !IsCDS(graph.New(1), nil) {
		t.Fatal("single-vertex graph should accept the empty set")
	}
}

func TestMarkingProcess(t *testing.T) {
	// Path: interior nodes are marked, leaves are not.
	g := build(t, 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	got := MarkingProcess(g)
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("marked = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("marked = %v, want %v", got, want)
		}
	}
	// Complete graph: nobody marked.
	k := build(t, 3, [][2]int{{0, 1}, {0, 2}, {1, 2}})
	if marked := MarkingProcess(k); len(marked) != 0 {
		t.Fatalf("complete graph marked %v", marked)
	}
}

func TestMarkingProcessIsCDSQuick(t *testing.T) {
	f := func(seed int64) bool {
		g := randomNet(t, seed, 30, 6)
		if g.IsComplete() {
			return true
		}
		return IsCDS(g, MarkingProcess(g))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestGuhaKhullerSmall(t *testing.T) {
	// Star: the hub alone is the CDS.
	star := build(t, 5, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	set, err := GuhaKhuller(star)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 || set[0] != 0 {
		t.Fatalf("star CDS = %v, want [0]", set)
	}
	// Path: greedy needs the interior.
	path := build(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	set, err = GuhaKhuller(path)
	if err != nil {
		t.Fatal(err)
	}
	if !IsCDS(path, set) {
		t.Fatalf("path CDS %v invalid", set)
	}
}

func TestGuhaKhullerEdgeCases(t *testing.T) {
	if set, err := GuhaKhuller(graph.New(0)); err != nil || set != nil {
		t.Fatalf("empty graph: %v, %v", set, err)
	}
	if set, err := GuhaKhuller(graph.New(1)); err != nil || len(set) != 1 {
		t.Fatalf("single vertex: %v, %v", set, err)
	}
	disconnected := build(t, 4, [][2]int{{0, 1}, {2, 3}})
	if _, err := GuhaKhuller(disconnected); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestGuhaKhullerIsCDSQuick(t *testing.T) {
	f := func(seed int64) bool {
		g := randomNet(t, seed, 40, 6)
		set, err := GuhaKhuller(g)
		if err != nil {
			return false
		}
		return IsCDS(g, set)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func TestGuhaKhullerBeatsMarking(t *testing.T) {
	// The centralized greedy should produce substantially smaller sets than
	// the raw marking process on random networks (the paper's point about
	// the greedy's practical quality).
	var greedy, marking int
	for seed := int64(1); seed <= 20; seed++ {
		g := randomNet(t, seed, 60, 8)
		set, err := GuhaKhuller(g)
		if err != nil {
			t.Fatal(err)
		}
		greedy += len(set)
		marking += len(MarkingProcess(g))
	}
	if greedy >= marking {
		t.Fatalf("greedy total %d not smaller than marking total %d", greedy, marking)
	}
}

func TestReduceSubsetAndValid(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		g := randomNet(t, seed, 50, 6)
		if g.IsComplete() {
			continue
		}
		set := MarkingProcess(g)
		reduced := Reduce(g, set)
		if len(reduced) > len(set) {
			t.Fatalf("seed %d: reduction grew the set: %d -> %d", seed, len(set), len(reduced))
		}
		inSet := map[int]bool{}
		for _, v := range set {
			inSet[v] = true
		}
		for _, v := range reduced {
			if !inSet[v] {
				t.Fatalf("seed %d: reduced set contains non-member %d", seed, v)
			}
		}
		if !IsCDS(g, reduced) {
			t.Fatalf("seed %d: reduced set %v is not a CDS", seed, reduced)
		}
	}
}

func TestReduceShrinksMarkingProcess(t *testing.T) {
	// Across seeds the coverage-condition reduction must remove nodes from
	// the (pruning-free) marking set.
	var before, after int
	for seed := int64(1); seed <= 15; seed++ {
		g := randomNet(t, seed, 60, 8)
		set := MarkingProcess(g)
		before += len(set)
		after += len(Reduce(g, set))
	}
	if after >= before {
		t.Fatalf("reduction had no effect: %d -> %d", before, after)
	}
}

func TestReduceCompleteGraph(t *testing.T) {
	k := build(t, 4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	if reduced := Reduce(k, []int{0, 1}); len(reduced) != 0 {
		t.Fatalf("complete graph reduced to %v, want empty", reduced)
	}
}

func TestReduceGuhaKhullerRarelyShrinks(t *testing.T) {
	// The greedy set is already near-minimal; the reduction must at least
	// not break it.
	g := randomNet(t, 7, 60, 8)
	set, err := GuhaKhuller(g)
	if err != nil {
		t.Fatal(err)
	}
	reduced := Reduce(g, set)
	if !IsCDS(g, reduced) {
		t.Fatalf("reduced greedy set %v invalid", reduced)
	}
}

func TestRouteSimple(t *testing.T) {
	// Path 0-1-2-3 with backbone {1,2}.
	g := build(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	got := Route(g, []int{1, 2}, 0, 3)
	want := []int{0, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Route = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Route = %v, want %v", got, want)
		}
	}
}

func TestRouteEdgeCases(t *testing.T) {
	g := build(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if got := Route(g, []int{1, 2}, 2, 2); len(got) != 1 || got[0] != 2 {
		t.Fatalf("self route = %v", got)
	}
	if Route(g, []int{1, 2}, -1, 3) != nil || Route(g, []int{1, 2}, 0, 9) != nil {
		t.Fatal("out-of-range endpoints accepted")
	}
	// An empty backbone can only serve adjacent endpoints.
	if got := Route(g, nil, 0, 1); len(got) != 2 {
		t.Fatalf("adjacent route = %v", got)
	}
	if Route(g, nil, 0, 3) != nil {
		t.Fatal("route found without a backbone")
	}
}

// TestRoutePropertyQuick: over random networks and the marking-process CDS,
// every node pair is routable through the backbone, the path is simple, and
// all intermediates are backbone members.
func TestRoutePropertyQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		g := randomNet(t, int64(trial+1), 40, 6)
		if g.IsComplete() {
			continue
		}
		set := Reduce(g, MarkingProcess(g))
		inSet := map[int]bool{}
		for _, v := range set {
			inSet[v] = true
		}
		for pair := 0; pair < 15; pair++ {
			s, tt := rng.Intn(40), rng.Intn(40)
			path := Route(g, set, s, tt)
			if path == nil {
				t.Fatalf("trial %d: no route %d->%d via CDS", trial, s, tt)
			}
			if path[0] != s || path[len(path)-1] != tt {
				t.Fatalf("route endpoints wrong: %v", path)
			}
			seen := map[int]bool{}
			for i, v := range path {
				if seen[v] {
					t.Fatalf("route revisits %d: %v", v, path)
				}
				seen[v] = true
				if i > 0 && !g.HasEdge(path[i-1], v) {
					t.Fatalf("route hop %d-%d not a link", path[i-1], v)
				}
				if i > 0 && i < len(path)-1 && !inSet[v] {
					t.Fatalf("intermediate %d not in backbone: %v", v, path)
				}
			}
		}
	}
}
