package cds_test

import (
	"fmt"

	"adhocbcast/internal/cds"
	"adhocbcast/internal/graph"
)

// Build a backbone with the marking process, then shrink it with the
// coverage-condition reduction of Section 1.
func ExampleReduce() {
	// A 6-cycle: every node is marked (its two neighbors are not directly
	// connected), but half of them suffice as a CDS.
	g := graph.New(6)
	for i := 0; i < 6; i++ {
		if err := g.AddEdge(i, (i+1)%6); err != nil {
			panic(err)
		}
	}
	marked := cds.MarkingProcess(g)
	reduced := cds.Reduce(g, marked)
	fmt.Println("marked: ", marked)
	fmt.Println("reduced:", reduced, "is CDS:", cds.IsCDS(g, reduced))
	// Output:
	// marked:  [0 1 2 3 4 5]
	// reduced: [2 3 4 5] is CDS: true
}
