package stats

import (
	"math"
	"reflect"
	"testing"
)

// TestZeroMeanConverges is the regression test for the zero-mean CI bug:
// an all-zero sample (zero mean, zero stddev) has a zero-width interval and
// must converge at MinRuns. Before the fix RelativeCI returned +Inf for any
// zero mean, so such a metric could never satisfy RelTol and every data
// point burned MaxRuns replicates.
func TestZeroMeanConverges(t *testing.T) {
	opts := ReplicateOptions{MinRuns: 10, MaxRuns: 500, RelTol: 0.01}
	zero := func(i int) (float64, error) { return 0, nil }

	calls := 0
	s, err := RunUntilCI(opts, func(i int) (float64, error) { calls++; return zero(i) })
	if err != nil {
		t.Fatal(err)
	}
	if s.N != opts.MinRuns || calls != opts.MinRuns {
		t.Fatalf("serial: converged after %d samples (%d calls), want MinRuns=%d",
			s.N, calls, opts.MinRuns)
	}
	if s.Mean != 0 || s.RelativeCI() != 0 {
		t.Fatalf("serial: summary %+v, want zero mean with rel-CI 0", s)
	}

	ps, err := RunUntilCIParallel(opts, 4, zero)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, ps) {
		t.Fatalf("parallel summary %+v differs from serial %+v", ps, s)
	}
}

// TestZeroMeanWithSpreadStillRunsOut: a zero mean with nonzero spread has no
// meaningful relative tolerance, so the loop still runs to MaxRuns.
func TestZeroMeanWithSpreadStillRunsOut(t *testing.T) {
	opts := ReplicateOptions{MinRuns: 4, MaxRuns: 20, RelTol: 0.01}
	alternate := func(i int) (float64, error) {
		if i%2 == 0 {
			return 1, nil
		}
		return -1, nil
	}
	s, err := RunUntilCI(opts, alternate)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != opts.MaxRuns {
		t.Fatalf("converged after %d samples, want MaxRuns=%d", s.N, opts.MaxRuns)
	}
	// The running mean is zero up to Welford rounding, so the relative CI is
	// unbounded (or astronomically large) — far above any sane tolerance.
	if s.RelativeCI() < 1 {
		t.Fatalf("rel-CI = %v, want an unbounded value for zero mean with spread", s.RelativeCI())
	}
}

// TestRelativeCIZeroMeanCases pins the Summary-level rule directly.
func TestRelativeCIZeroMeanCases(t *testing.T) {
	if got := (Summary{N: 30, Mean: 0, StdDev: 0}).RelativeCI(); got != 0 {
		t.Fatalf("all-zero sample rel-CI = %v, want 0", got)
	}
	if got := (Summary{N: 30, Mean: 0, StdDev: 1, HalfWidth90: 0.3}).RelativeCI(); !math.IsInf(got, 1) {
		t.Fatalf("zero-mean spread rel-CI = %v, want +Inf", got)
	}
	if got := (Summary{N: 1, Mean: 0}).RelativeCI(); !math.IsInf(got, 1) {
		t.Fatalf("single zero sample rel-CI = %v, want +Inf", got)
	}
}

// sampleFromSlice replays a fixed sample sequence.
func sampleFromSlice(xs []float64) func(i int) (float64, error) {
	return func(i int) (float64, error) { return xs[i%len(xs)], nil }
}

// TestProgressSequenceSerial checks the callback contract: one update per
// accepted sample, Done counting up, and the final update marked Converged.
func TestProgressSequenceSerial(t *testing.T) {
	var updates []ProgressUpdate
	opts := ReplicateOptions{
		MinRuns: 5, MaxRuns: 100, RelTol: 0.5,
		Progress: func(u ProgressUpdate) { updates = append(updates, u) },
	}
	s, err := RunUntilCI(opts, sampleFromSlice([]float64{10, 10.1, 9.9, 10, 10.05}))
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) != s.N {
		t.Fatalf("%d updates for %d samples", len(updates), s.N)
	}
	for i, u := range updates {
		if u.Done != i+1 {
			t.Fatalf("update %d has Done=%d", i, u.Done)
		}
		if u.EstTotal < u.Done || u.EstTotal > opts.MaxRuns {
			t.Fatalf("update %d EstTotal=%d outside [Done=%d, MaxRuns=%d]",
				i, u.EstTotal, u.Done, opts.MaxRuns)
		}
		if u.Converged != (i == len(updates)-1) {
			t.Fatalf("update %d Converged=%v", i, u.Converged)
		}
		if u.Exhausted {
			t.Fatalf("update %d marked Exhausted on a converged loop", i)
		}
	}
	last := updates[len(updates)-1]
	if last.Mean != s.Mean || last.RelCI != s.RelativeCI() {
		t.Fatalf("final update %+v does not match summary %+v", last, s)
	}
}

// TestProgressIdenticalSerialParallel: the engines fold samples in the same
// order, so for the same workload they must emit the same update sequence.
func TestProgressIdenticalSerialParallel(t *testing.T) {
	xs := []float64{5, 7, 6, 5.5, 6.5, 6.1, 5.9, 6, 6.2, 5.8}
	run := func(parallel int) ([]ProgressUpdate, Summary) {
		var updates []ProgressUpdate
		opts := ReplicateOptions{
			MinRuns: 8, MaxRuns: 64, RelTol: 0.05,
			Progress: func(u ProgressUpdate) { updates = append(updates, u) },
		}
		var s Summary
		var err error
		if parallel > 1 {
			s, err = RunUntilCIParallel(opts, parallel, sampleFromSlice(xs))
		} else {
			s, err = RunUntilCI(opts, sampleFromSlice(xs))
		}
		if err != nil {
			t.Fatal(err)
		}
		return updates, s
	}
	serialU, serialS := run(1)
	for _, workers := range []int{2, 4, 7} {
		parU, parS := run(workers)
		if !reflect.DeepEqual(serialS, parS) {
			t.Fatalf("workers=%d: summary diverged", workers)
		}
		if !reflect.DeepEqual(serialU, parU) {
			t.Fatalf("workers=%d: progress sequence diverged:\nserial   %+v\nparallel %+v",
				workers, serialU, parU)
		}
	}
}

// TestProgressExhausted: a loop that hits MaxRuns emits one extra final
// update marked Exhausted.
func TestProgressExhausted(t *testing.T) {
	var updates []ProgressUpdate
	opts := ReplicateOptions{
		MinRuns: 4, MaxRuns: 10, RelTol: 1e-12,
		Progress: func(u ProgressUpdate) { updates = append(updates, u) },
	}
	s, err := RunUntilCI(opts, sampleFromSlice([]float64{1, 2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	if s.N != opts.MaxRuns {
		t.Fatalf("N=%d, want MaxRuns=%d", s.N, opts.MaxRuns)
	}
	if len(updates) != opts.MaxRuns+1 {
		t.Fatalf("%d updates, want MaxRuns+1=%d", len(updates), opts.MaxRuns+1)
	}
	last := updates[len(updates)-1]
	if !last.Exhausted || last.Converged || last.Done != opts.MaxRuns {
		t.Fatalf("final update %+v, want Exhausted with Done=MaxRuns", last)
	}
	for _, u := range updates[:len(updates)-1] {
		if u.Exhausted || u.Converged {
			t.Fatalf("non-final update %+v marked terminal", u)
		}
	}
}

// TestEstimateTotalMatchesWaveMath: the wave sizing of the parallel engine
// derives from the same estimate surfaced in progress updates.
func TestEstimateTotalMatchesWaveMath(t *testing.T) {
	var acc Accumulator
	for _, x := range []float64{10, 11, 9, 10.5, 9.5, 10.2} {
		acc.Add(x)
	}
	opts := ReplicateOptions{MinRuns: 4, MaxRuns: 1000, RelTol: 0.01}
	total := estimateTotal(&acc, opts)
	if total <= acc.N() {
		t.Fatalf("estimate %d not beyond current N=%d for a loose sample", total, acc.N())
	}
	if got, want := estimateRemaining(&acc, opts), total-acc.N(); got != want {
		t.Fatalf("estimateRemaining=%d, want estimateTotal-N=%d", got, want)
	}
}
