package stats

import (
	"sync"
	"sync/atomic"
)

// RunUntilCIParallel is RunUntilCI with the replicates evaluated concurrently
// on a bounded worker pool. It proceeds in waves: the first wave issues
// MinRuns replicates, every later wave issues the replicate count the CI
// formula estimates is still missing, and the loop stops when the tolerance
// or MaxRuns is reached.
//
// The result is bit-identical to RunUntilCI for any worker count: sample(i)
// must depend only on i (the experiment drivers key every workload by its
// replication index), completed waves are folded into the accumulator in
// strict index order, and the serial stopping rule is applied after each
// accepted sample, so both engines stop at the same replication index with
// the same accumulator state. Samples computed beyond the stopping index are
// discarded. The only cost of parallelism is that a wave may compute a few
// replicates the serial loop would never have issued.
func RunUntilCIParallel(opts ReplicateOptions, workers int, sample func(i int) (float64, error)) (Summary, error) {
	opts = opts.withDefaults()
	if workers <= 1 {
		return RunUntilCI(opts, sample)
	}
	var acc Accumulator
	var lastErr error
	next := 0 // next replication index to issue
	for next < opts.MaxRuns {
		wave := waveSize(&acc, opts, workers)
		if wave > opts.MaxRuns-next {
			wave = opts.MaxRuns - next
		}
		xs := make([]float64, wave)
		errs := make([]error, wave)
		var cursor int64
		var wg sync.WaitGroup
		nw := workers
		if nw > wave {
			nw = wave
		}
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					k := int(atomic.AddInt64(&cursor, 1)) - 1
					if k >= wave {
						return
					}
					xs[k], errs[k] = sample(next + k)
				}
			}()
		}
		wg.Wait()
		for k := 0; k < wave; k++ {
			if errs[k] != nil {
				lastErr = errs[k]
				continue
			}
			if s, done := fold(&acc, xs[k], opts); done {
				return s, nil
			}
		}
		next += wave
	}
	return finish(&acc, opts, lastErr)
}

// waveSize picks the next wave's replicate count. Before MinRuns samples are
// in, it issues what is missing to reach MinRuns; afterwards it estimates the
// remaining replicates from the CI half-width formula
//
//	t * sd / sqrt(N) <= tol * |mean|  =>  N >= (t * sd / (tol * |mean|))^2
//
// evaluated at the current running moments. The estimate only affects how
// much speculative work a wave issues, never the result. At least one full
// round of workers is issued so the pool stays busy.
func waveSize(acc *Accumulator, opts ReplicateOptions, workers int) int {
	wave := opts.MinRuns - acc.N()
	if acc.N() >= opts.MinRuns {
		wave = estimateRemaining(acc, opts)
	}
	if wave < workers {
		wave = workers
	}
	return wave
}

func estimateRemaining(acc *Accumulator, opts ReplicateOptions) int {
	remaining := estimateTotal(acc, opts) - acc.N()
	if remaining < 1 {
		remaining = 1
	}
	return remaining
}
