package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestAccumulatorMatchesSummarize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		samples := make([]float64, n)
		var acc Accumulator
		for i := range samples {
			samples[i] = 50 + rng.NormFloat64()*10
			acc.Add(samples[i])
		}
		want := Summarize(samples)
		got := acc.Summary()
		if got.N != want.N {
			t.Fatalf("N = %d, want %d", got.N, want.N)
		}
		if math.Abs(got.Mean-want.Mean) > 1e-9*math.Abs(want.Mean) {
			t.Fatalf("mean = %v, want %v", got.Mean, want.Mean)
		}
		if n > 1 && math.Abs(got.StdDev-want.StdDev) > 1e-9*(want.StdDev+1) {
			t.Fatalf("sd = %v, want %v", got.StdDev, want.StdDev)
		}
		if n == 1 && !math.IsInf(got.HalfWidth90, 1) {
			t.Fatal("single sample must have infinite CI")
		}
	}
	var empty Accumulator
	if s := empty.Summary(); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty accumulator: %+v", s)
	}
}

// deterministicSample returns a sample function whose value depends only on
// the replication index, like the experiment drivers' workload-seeded
// replicates.
func deterministicSample(seed int64, errEvery int) func(i int) (float64, error) {
	return func(i int) (float64, error) {
		if errEvery > 0 && i%errEvery == 0 {
			return 0, errors.New("degenerate workload")
		}
		rng := rand.New(rand.NewSource(seed + int64(i)))
		return 100 + rng.NormFloat64()*15, nil
	}
}

func TestRunUntilCIParallelMatchesSerial(t *testing.T) {
	cases := []struct {
		name     string
		opts     ReplicateOptions
		errEvery int
	}{
		{name: "converges", opts: ReplicateOptions{MinRuns: 10, MaxRuns: 2000, RelTol: 0.05}},
		{name: "tight", opts: ReplicateOptions{MinRuns: 5, MaxRuns: 500, RelTol: 0.01}},
		{name: "hits-cap", opts: ReplicateOptions{MinRuns: 5, MaxRuns: 40, RelTol: 1e-9}},
		{name: "with-errors", opts: ReplicateOptions{MinRuns: 8, MaxRuns: 300, RelTol: 0.05}, errEvery: 3},
		{name: "min-equals-max", opts: ReplicateOptions{MinRuns: 17, MaxRuns: 17, RelTol: 1e-9}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, wantErr := RunUntilCI(tc.opts, deterministicSample(7, tc.errEvery))
			if wantErr != nil {
				t.Fatal(wantErr)
			}
			for _, workers := range []int{2, 3, 8, 32} {
				got, err := RunUntilCIParallel(tc.opts, workers, deterministicSample(7, tc.errEvery))
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if got != want {
					t.Fatalf("workers=%d: summary %+v != serial %+v", workers, got, want)
				}
			}
		})
	}
}

func TestRunUntilCIParallelAllErrors(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := RunUntilCIParallel(ReplicateOptions{MinRuns: 2, MaxRuns: 9}, 4,
		func(i int) (float64, error) { return 0, sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the sample error", err)
	}
}

func TestRunUntilCIParallelSingleWorkerDelegates(t *testing.T) {
	opts := ReplicateOptions{MinRuns: 5, MaxRuns: 20, RelTol: 0.1}
	want, err := RunUntilCI(opts, deterministicSample(11, 0))
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunUntilCIParallel(opts, 1, deterministicSample(11, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("workers=1: %+v != %+v", got, want)
	}
}

func TestRunUntilCIParallelStopsEarly(t *testing.T) {
	// Constant samples converge at exactly MinRuns; the parallel engine may
	// compute speculative extras but must report the serial stopping state.
	s, err := RunUntilCIParallel(ReplicateOptions{MinRuns: 6, MaxRuns: 1000, RelTol: 0.01}, 4,
		func(i int) (float64, error) { return 10, nil })
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 6 || s.Mean != 10 {
		t.Fatalf("summary = %+v, want N=6 Mean=10", s)
	}
}
