package stats

import "math"

// Accumulator maintains a running mean and variance with Welford's online
// algorithm, so the replication loops can test the CI criterion after every
// sample in O(1) instead of re-summarizing the whole slice (O(R) per
// replicate, O(R^2) per data point). Both RunUntilCI and RunUntilCIParallel
// fold samples through this type in replication-index order, which is what
// makes their results bit-identical.
type Accumulator struct {
	n    int
	mean float64
	m2   float64 // sum of squared deviations from the running mean
}

// Add folds one sample into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of samples folded in so far.
func (a *Accumulator) N() int { return a.n }

// Summary materializes the current sample summary. It matches Summarize on
// the same samples up to floating-point rounding (Welford vs two-pass).
func (a *Accumulator) Summary() Summary {
	switch a.n {
	case 0:
		return Summary{}
	case 1:
		return Summary{N: 1, Mean: a.mean, HalfWidth90: math.Inf(1)}
	}
	sd := math.Sqrt(a.m2 / float64(a.n-1))
	hw := T90(a.n-1) * sd / math.Sqrt(float64(a.n))
	return Summary{N: a.n, Mean: a.mean, StdDev: sd, HalfWidth90: hw}
}
