// Package stats provides the replication machinery of the paper's
// evaluation: sample means, Student-t 90% confidence intervals, and the
// repeat-until-the-CI-is-within-±1% loop used for every data point.
package stats

import (
	"errors"
	"math"
)

// Summary describes a sample of replicated measurements.
type Summary struct {
	// N is the number of samples.
	N int
	// Mean is the sample mean.
	Mean float64
	// StdDev is the sample standard deviation (Bessel-corrected).
	StdDev float64
	// HalfWidth90 is the half-width of the 90% confidence interval of the
	// mean.
	HalfWidth90 float64
}

// RelativeCI returns HalfWidth90 / |Mean|. A degenerate all-zero sample
// (zero mean and zero standard deviation with at least two samples) has a
// zero-width interval around an exactly known mean, so its relative CI is 0
// — otherwise an identically-zero metric (a collided-copy count under the
// collision-free MAC, the delivery ratio when every node is crashed) could
// never satisfy any tolerance and a replication loop would always burn
// MaxRuns. A zero mean with nonzero spread stays +Inf: no finite tolerance
// describes it.
func (s Summary) RelativeCI() float64 {
	if s.Mean == 0 {
		if s.StdDev == 0 && s.N > 1 {
			return 0
		}
		return math.Inf(1)
	}
	return s.HalfWidth90 / math.Abs(s.Mean)
}

// Summarize computes the summary of the given samples.
func Summarize(samples []float64) Summary {
	n := len(samples)
	if n == 0 {
		return Summary{}
	}
	sum := 0.0
	for _, x := range samples {
		sum += x
	}
	mean := sum / float64(n)
	if n == 1 {
		return Summary{N: 1, Mean: mean, HalfWidth90: math.Inf(1)}
	}
	ss := 0.0
	for _, x := range samples {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	hw := T90(n-1) * sd / math.Sqrt(float64(n))
	return Summary{N: n, Mean: mean, StdDev: sd, HalfWidth90: hw}
}

// t90 holds two-sided 90% Student-t critical values for small degrees of
// freedom; beyond the table the normal quantile 1.645 is used.
var t90 = []float64{
	math.Inf(1), // df = 0 (unused)
	6.314, 2.920, 2.353, 2.132, 2.015,
	1.943, 1.895, 1.860, 1.833, 1.812,
	1.796, 1.782, 1.771, 1.761, 1.753,
	1.746, 1.740, 1.734, 1.729, 1.725,
	1.721, 1.717, 1.714, 1.711, 1.708,
	1.706, 1.703, 1.701, 1.699, 1.697,
}

// T90 returns the two-sided 90% Student-t critical value for df degrees of
// freedom.
func T90(df int) float64 {
	if df <= 0 {
		return math.Inf(1)
	}
	if df < len(t90) {
		return t90[df]
	}
	switch {
	case df < 40:
		return 1.690
	case df < 60:
		return 1.676
	case df < 120:
		return 1.664
	default:
		return 1.645
	}
}

// ErrNoSamples is returned when a replication produced no valid samples.
var ErrNoSamples = errors.New("stats: no samples")

// ProgressUpdate reports the state of a replication loop. The serial and
// parallel engines fold samples in the same replication-index order, so for
// a given workload both emit the identical update sequence.
type ProgressUpdate struct {
	// Done is the number of accepted replications so far.
	Done int
	// Mean is the running sample mean.
	Mean float64
	// RelCI is the current relative CI half-width (+Inf before the spread
	// is estimable).
	RelCI float64
	// EstTotal estimates the total replications the tolerance will need,
	// from the CI half-width formula at the current running moments; the
	// remaining work (the ETA, in replicates) is EstTotal - Done. Clamped
	// to [max(MinRuns, Done), MaxRuns].
	EstTotal int
	// Converged is set on the final update of a loop that met its
	// tolerance.
	Converged bool
	// Exhausted is set on one extra final update when the loop hit MaxRuns
	// without converging (its Done repeats the last sample's update).
	Exhausted bool
}

// ReplicateOptions controls RunUntilCI.
type ReplicateOptions struct {
	// MinRuns is the minimum number of replications (default 30).
	MinRuns int
	// MaxRuns caps the replication count (default 2000).
	MaxRuns int
	// RelTol is the target relative CI half-width (default 0.01, the ±1%
	// criterion of the paper).
	RelTol float64
	// Progress, when non-nil, is called after every accepted sample (and
	// once more on MaxRuns exhaustion). Calls happen on the goroutine
	// driving the replication loop; the callback must be fast and must not
	// panic. It never affects the measured result.
	Progress func(ProgressUpdate)
}

func (o ReplicateOptions) withDefaults() ReplicateOptions {
	if o.MinRuns <= 0 {
		o.MinRuns = 30
	}
	if o.MaxRuns <= 0 {
		o.MaxRuns = 2000
	}
	if o.MaxRuns < o.MinRuns {
		o.MaxRuns = o.MinRuns
	}
	if o.RelTol <= 0 {
		o.RelTol = 0.01
	}
	return o
}

// RunUntilCI repeats sample(i) for i = 0, 1, ... until the 90% confidence
// interval of the mean is within the relative tolerance (or MaxRuns is
// reached) and returns the summary. sample may return an error to skip a
// replication (e.g. a degenerate workload); if every replication fails,
// ErrNoSamples is returned.
func RunUntilCI(opts ReplicateOptions, sample func(i int) (float64, error)) (Summary, error) {
	opts = opts.withDefaults()
	var acc Accumulator
	var lastErr error
	for i := 0; i < opts.MaxRuns; i++ {
		x, err := sample(i)
		if err != nil {
			lastErr = err
			continue
		}
		if s, done := fold(&acc, x, opts); done {
			return s, nil
		}
	}
	return finish(&acc, opts, lastErr)
}

// fold adds one accepted sample and applies the stopping rule: once MinRuns
// samples are in, stop at the first sample whose running CI meets the
// tolerance. Shared by the serial and parallel engines so both stop at the
// same replication index with the same accumulator state (and emit the same
// progress updates).
func fold(acc *Accumulator, x float64, opts ReplicateOptions) (Summary, bool) {
	acc.Add(x)
	s := acc.Summary()
	done := acc.N() >= opts.MinRuns && s.RelativeCI() <= opts.RelTol
	if opts.Progress != nil {
		opts.Progress(ProgressUpdate{
			Done:      acc.N(),
			Mean:      s.Mean,
			RelCI:     s.RelativeCI(),
			EstTotal:  estimateTotal(acc, opts),
			Converged: done,
		})
	}
	if done {
		return s, true
	}
	return Summary{}, false
}

// finish terminates a replication loop that exhausted MaxRuns.
func finish(acc *Accumulator, opts ReplicateOptions, lastErr error) (Summary, error) {
	if acc.N() == 0 {
		if lastErr != nil {
			return Summary{}, lastErr
		}
		return Summary{}, ErrNoSamples
	}
	s := acc.Summary()
	if opts.Progress != nil {
		opts.Progress(ProgressUpdate{
			Done:      s.N,
			Mean:      s.Mean,
			RelCI:     s.RelativeCI(),
			EstTotal:  s.N,
			Exhausted: true,
		})
	}
	return s, nil
}

// estimateTotal estimates the total replication count the tolerance needs,
// evaluated at the current running moments:
//
//	t * sd / sqrt(N) <= tol * |mean|  =>  N >= (t * sd / (tol * |mean|))^2
//
// The estimate is clamped to [max(MinRuns, N), MaxRuns]. It only informs
// progress reporting and speculative wave sizing, never the result.
func estimateTotal(acc *Accumulator, opts ReplicateOptions) int {
	s := acc.Summary()
	total := s.N
	if total < opts.MinRuns {
		total = opts.MinRuns
	}
	if s.N >= 2 && s.Mean != 0 && s.StdDev != 0 {
		z := T90(s.N-1) * s.StdDev / (opts.RelTol * math.Abs(s.Mean))
		if needed := math.Ceil(z * z); needed > float64(total) {
			total = int(needed)
		}
	}
	if total > opts.MaxRuns {
		total = opts.MaxRuns
	}
	return total
}
