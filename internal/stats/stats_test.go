package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("Summarize(nil) = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3})
	if s.N != 1 || s.Mean != 3 {
		t.Fatalf("Summarize = %+v", s)
	}
	if !math.IsInf(s.HalfWidth90, 1) {
		t.Fatal("single sample must have infinite CI")
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	// Samples 2, 4, 6: mean 4, sd 2, half-width t(2)=2.920 * 2/sqrt(3).
	s := Summarize([]float64{2, 4, 6})
	if s.Mean != 4 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if math.Abs(s.StdDev-2) > 1e-12 {
		t.Fatalf("sd = %v", s.StdDev)
	}
	want := 2.920 * 2 / math.Sqrt(3)
	if math.Abs(s.HalfWidth90-want) > 1e-9 {
		t.Fatalf("half-width = %v, want %v", s.HalfWidth90, want)
	}
}

func TestSummarizeConstantSamples(t *testing.T) {
	s := Summarize([]float64{5, 5, 5, 5})
	if s.StdDev != 0 || s.HalfWidth90 != 0 {
		t.Fatalf("constant samples: %+v", s)
	}
	if s.RelativeCI() != 0 {
		t.Fatalf("RelativeCI = %v", s.RelativeCI())
	}
}

func TestRelativeCIZeroMean(t *testing.T) {
	s := Summary{Mean: 0, HalfWidth90: 1}
	if !math.IsInf(s.RelativeCI(), 1) {
		t.Fatal("zero mean must give infinite relative CI")
	}
}

func TestT90Monotone(t *testing.T) {
	if !math.IsInf(T90(0), 1) {
		t.Fatal("T90(0) must be infinite")
	}
	prev := T90(1)
	for df := 2; df <= 300; df++ {
		cur := T90(df)
		if cur > prev {
			t.Fatalf("T90 not non-increasing at df=%d: %v > %v", df, cur, prev)
		}
		prev = cur
	}
	if T90(1) != 6.314 || T90(10) != 1.812 || T90(1000) != 1.645 {
		t.Fatal("T90 table values wrong")
	}
}

func TestRunUntilCIStopsAtTolerance(t *testing.T) {
	// Constant samples converge immediately at MinRuns.
	calls := 0
	s, err := RunUntilCI(ReplicateOptions{MinRuns: 5, MaxRuns: 100, RelTol: 0.01},
		func(i int) (float64, error) {
			calls++
			return 10, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 5 {
		t.Fatalf("calls = %d, want exactly MinRuns", calls)
	}
	if s.N != 5 || s.Mean != 10 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestRunUntilCIKeepsGoing(t *testing.T) {
	// High-variance samples: with a tight tolerance the loop must use more
	// than MinRuns.
	rng := rand.New(rand.NewSource(1))
	s, err := RunUntilCI(ReplicateOptions{MinRuns: 5, MaxRuns: 5000, RelTol: 0.01},
		func(i int) (float64, error) {
			return 100 + rng.NormFloat64()*20, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if s.N <= 5 {
		t.Fatalf("stopped at %d runs despite high variance", s.N)
	}
	if s.RelativeCI() > 0.011 && s.N < 5000 {
		t.Fatalf("stopped early with CI %v after %d runs", s.RelativeCI(), s.N)
	}
}

func TestRunUntilCIHitsCap(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s, err := RunUntilCI(ReplicateOptions{MinRuns: 5, MaxRuns: 10, RelTol: 1e-9},
		func(i int) (float64, error) {
			return rng.Float64(), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 10 {
		t.Fatalf("N = %d, want MaxRuns 10", s.N)
	}
}

func TestRunUntilCISkipsErrors(t *testing.T) {
	s, err := RunUntilCI(ReplicateOptions{MinRuns: 3, MaxRuns: 20, RelTol: 0.5},
		func(i int) (float64, error) {
			if i%2 == 0 {
				return 0, errors.New("degenerate workload")
			}
			return 7, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean != 7 {
		t.Fatalf("mean = %v", s.Mean)
	}
}

func TestRunUntilCIAllErrors(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := RunUntilCI(ReplicateOptions{MinRuns: 2, MaxRuns: 5},
		func(i int) (float64, error) { return 0, sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the sample error", err)
	}
}

func TestReplicateOptionsDefaults(t *testing.T) {
	o := ReplicateOptions{}.withDefaults()
	if o.MinRuns != 30 || o.MaxRuns != 2000 || o.RelTol != 0.01 {
		t.Fatalf("defaults = %+v", o)
	}
	o = ReplicateOptions{MinRuns: 50, MaxRuns: 10}.withDefaults()
	if o.MaxRuns != 50 {
		t.Fatalf("MaxRuns not raised to MinRuns: %+v", o)
	}
}

// TestSummarizeQuick property-checks mean bounds and CI positivity.
func TestSummarizeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		samples := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range samples {
			samples[i] = rng.Float64() * 100
			lo = math.Min(lo, samples[i])
			hi = math.Max(hi, samples[i])
		}
		s := Summarize(samples)
		if s.Mean < lo-1e-9 || s.Mean > hi+1e-9 {
			return false
		}
		return s.StdDev >= 0 && s.HalfWidth90 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Fatal(err)
	}
}
