package obsv

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// SchemaVersion tags every exported JSONL line. Readers must reject lines
// whose schema they do not understand; any change to the record layouts or
// the default histogram buckets bumps this string.
const SchemaVersion = "obsv/v1"

// Record kinds.
const (
	// KindRun lines carry one RunRecord.
	KindRun = "run"
	// KindTrace lines carry one trace event.
	KindTrace = "trace"
	// KindChain lines carry one hash-chain link sealing the record lines
	// written since the previous link (see ChainLink and VerifyChain).
	// Chain records are additive: run and trace record layouts are
	// unchanged, so the schema version stays obsv/v1.
	KindChain = "chain"
)

// TraceEvent is the export form of one simulation trace event. It mirrors
// sim.TraceEvent without importing the simulator, keeping this package
// dependency-free.
type TraceEvent struct {
	// Kind is "transmit", "deliver", "non-forward", "session-start",
	// "enqueue", or "queue-drop".
	Kind string `json:"kind"`
	// At is the simulation time.
	At float64 `json:"at"`
	// Node is the acting node.
	Node int `json:"node"`
	// From is the sender for deliver events; -1 otherwise (and for the
	// source's own t=0 delivery, which no one transmitted).
	From int `json:"from"`
	// Session is the broadcast session id. Absent means session 0, which is
	// every event of a single-broadcast run; multi-session traffic runs tag
	// events with the session they belong to. Additive: the schema version
	// stays obsv/v1.
	Session int `json:"session,omitempty"`
	// Cause labels queue-drop events ("tail", "head", or "down"); absent for
	// every other kind. Additive, like Session.
	Cause string `json:"cause,omitempty"`
	// Designated carries the designated forward set of transmit events.
	Designated []int `json:"designated,omitempty"`
}

// Record is one JSONL line: a versioned envelope around either a run record
// or a trace event, keyed by the data point and replication that produced it.
// Lines from concurrent replicates may interleave in a shared file; (Point,
// Rep) recovers the grouping.
type Record struct {
	// Schema is SchemaVersion; Write fills it in, Read rejects mismatches.
	Schema string `json:"schema"`
	// Kind selects the payload: KindRun or KindTrace.
	Kind string `json:"kind"`
	// Point identifies the data point (e.g. "fig10/FR/n=60/d=6").
	Point string `json:"point,omitempty"`
	// Rep is the replication index within the point.
	Rep int `json:"rep"`
	// Run is the payload of KindRun lines.
	Run *RunRecord `json:"run,omitempty"`
	// Event is the payload of KindTrace lines.
	Event *TraceEvent `json:"event,omitempty"`
	// Chain is the payload of KindChain lines.
	Chain *ChainLink `json:"chain,omitempty"`
}

// Writer emits Records as JSON lines, accumulating a hash chain over the
// written bytes that Seal can emit as a chain record at any point.
type Writer struct {
	w     io.Writer
	buf   bytes.Buffer
	chain *ChainHasher
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w, chain: NewChainHasher()} }

// Write emits one record, stamping the schema version. Chain records cannot
// be written directly; use Seal, which computes the link.
func (w *Writer) Write(rec Record) error {
	rec.Schema = SchemaVersion
	if rec.Kind != KindRun && rec.Kind != KindTrace {
		return fmt.Errorf("obsv: unknown record kind %q", rec.Kind)
	}
	if err := w.emit(rec); err != nil {
		return err
	}
	w.chain.Add(w.buf.Bytes())
	return nil
}

// Seal emits one chain record covering every record written since the
// previous Seal (or the start of the stream), making the stream verifiable
// by VerifyChain. A sealed prefix stays valid as more records and seals
// follow.
func (w *Writer) Seal() error {
	link := w.chain.Link()
	return w.emit(Record{Schema: SchemaVersion, Kind: KindChain, Chain: &link})
}

// emit encodes and writes one record line, leaving its bytes in w.buf.
func (w *Writer) emit(rec Record) error {
	w.buf.Reset()
	enc := json.NewEncoder(&w.buf)
	if err := enc.Encode(rec); err != nil {
		return err
	}
	_, err := w.w.Write(w.buf.Bytes())
	return err
}

// Read parses a JSONL stream of Records, rejecting unknown schema versions
// and malformed lines. Blank lines are skipped.
func Read(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("obsv: line %d: %w", line, err)
		}
		if rec.Schema != SchemaVersion {
			return nil, fmt.Errorf("obsv: line %d: schema %q, want %q", line, rec.Schema, SchemaVersion)
		}
		switch rec.Kind {
		case KindRun:
			if rec.Run == nil {
				return nil, fmt.Errorf("obsv: line %d: run record without run payload", line)
			}
		case KindTrace:
			if rec.Event == nil {
				return nil, fmt.Errorf("obsv: line %d: trace record without event payload", line)
			}
		case KindChain:
			if rec.Chain == nil {
				return nil, fmt.Errorf("obsv: line %d: chain record without chain payload", line)
			}
		default:
			return nil, fmt.Errorf("obsv: line %d: unknown kind %q", line, rec.Kind)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
