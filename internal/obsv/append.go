package obsv

import (
	"bufio"
	"os"
)

// AppendFile is a durable append-only log: writes go through O_APPEND with a
// buffer in front, and Sync flushes the buffer and fsyncs in one step, so a
// writer can batch many small records per durability point. It complements
// AtomicFile: AtomicFile publishes whole files (never observed partial),
// AppendFile grows one file whose committed prefix survives a crash — the
// journal shape. A record is durable only after the Sync that follows it; a
// crash mid-batch loses at most the unsynced suffix, never corrupts the
// prefix (short of filesystem-level damage, which the reader must tolerate by
// ignoring a torn final record).
type AppendFile struct {
	f *os.File
	w *bufio.Writer
}

// OpenAppend opens path for durable appends, creating it if absent.
func OpenAppend(path string) (*AppendFile, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &AppendFile{f: f, w: bufio.NewWriter(f)}, nil
}

// Write buffers p for the next Sync (io.Writer).
func (a *AppendFile) Write(p []byte) (int, error) { return a.w.Write(p) }

// Sync flushes buffered writes and fsyncs the file: everything written so
// far is durable when it returns.
func (a *AppendFile) Sync() error {
	if err := a.w.Flush(); err != nil {
		return err
	}
	return a.f.Sync()
}

// Close syncs and closes the file.
func (a *AppendFile) Close() error {
	serr := a.Sync()
	cerr := a.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
