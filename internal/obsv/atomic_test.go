package obsv

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAtomicFileCommitPublishes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.jsonl")
	a, err := CreateAtomic(path)
	if err != nil {
		t.Fatal(err)
	}
	if a.Path() != path {
		t.Fatalf("Path() = %q, want %q", a.Path(), path)
	}
	if _, err := a.Write([]byte("hello\n")); err != nil {
		t.Fatal(err)
	}
	// Before Commit the final path must not exist — a reader racing the
	// writer (or surviving a kill) sees either nothing or the whole file.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("final path exists before Commit (err=%v)", err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello\n" {
		t.Fatalf("content = %q", data)
	}
	assertNoTempFiles(t, dir)
	// Commit is idempotent.
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	// Abort after Commit must not remove the published file.
	a.Abort()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("published file gone after post-Commit Abort: %v", err)
	}
}

func TestAtomicFileAbortLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.jsonl")
	if err := os.WriteFile(path, []byte("old\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := CreateAtomic(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write([]byte("new\n")); err != nil {
		t.Fatal(err)
	}
	a.Abort()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "old\n" {
		t.Fatalf("Abort replaced the existing file: %q", data)
	}
	assertNoTempFiles(t, dir)
	// Abort is idempotent and Commit after Abort is a no-op.
	a.Abort()
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if data, _ := os.ReadFile(path); string(data) != "old\n" {
		t.Fatalf("Commit after Abort changed the file: %q", data)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "table.txt")
	if err := WriteFileAtomic(path, []byte("v1\n")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("v2\n")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "v2\n" {
		t.Fatalf("content = %q", data)
	}
	assertNoTempFiles(t, dir)
}

// assertNoTempFiles fails if any ".tmp-*" file is left in dir: every code
// path (commit, abort, error) must clean its temp file up.
func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("stray temp file %q", e.Name())
		}
	}
}
