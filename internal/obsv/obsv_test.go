package obsv

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, x := range []float64{0, 1, 1.5, 2, 3, 4, 5, 100} {
		h.Observe(x)
	}
	// Bucket i counts Bounds[i-1] < x <= Bounds[i]; the last is overflow.
	want := []uint64{2, 2, 2, 2} // (-inf,1]: 0,1; (1,2]: 1.5,2; (2,4]: 3,4; >4: 5,100
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if h.Count != 8 || h.Min != 0 || h.Max != 100 {
		t.Fatalf("count/min/max = %d/%v/%v, want 8/0/100", h.Count, h.Min, h.Max)
	}
	if got, want := h.Mean(), (0+1+1.5+2+3+4+5+100)/8; got != want {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	h.Reset()
	if h.Count != 0 || h.Sum != 0 || h.Mean() != 0 {
		t.Fatalf("reset histogram not empty: %+v", h)
	}
	for _, c := range h.Counts {
		if c != 0 {
			t.Fatalf("reset histogram keeps counts: %v", h.Counts)
		}
	}
	if len(h.Bounds) != 3 || len(h.Counts) != 4 {
		t.Fatalf("reset histogram lost its layout: %+v", h)
	}
}

func TestHistogramMinTracksFirstObservation(t *testing.T) {
	h := NewHistogram([]float64{10})
	h.Observe(5)
	if h.Min != 5 || h.Max != 5 {
		t.Fatalf("min/max = %v/%v, want 5/5", h.Min, h.Max)
	}
	h.Observe(7)
	if h.Min != 5 || h.Max != 7 {
		t.Fatalf("min/max = %v/%v, want 5/7", h.Min, h.Max)
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds did not panic")
		}
	}()
	NewHistogram([]float64{1, 1})
}

func TestRunRecordResetInitializesZeroValue(t *testing.T) {
	var r RunRecord
	r.Reset()
	if len(r.Latency.Counts) == 0 || len(r.ForwardSet.Counts) == 0 {
		t.Fatalf("reset zero-value record has no histogram layout: %+v", r)
	}
	r.Latency.Observe(3)
	r.Copies = 7
	r.Reset()
	if r.Copies != 0 || r.Latency.Count != 0 {
		t.Fatalf("reset kept data: %+v", r)
	}
}

func TestRunRecordConserved(t *testing.T) {
	r := RunRecord{Copies: 10, Receipts: 4, Lost: 2, Collided: 1, DroppedNodeDown: 2, DroppedLinkDown: 1}
	if !r.Conserved() {
		t.Fatalf("balanced record reported unconserved: %+v", r)
	}
	if r.FaultDrops() != 3 {
		t.Fatalf("fault drops = %d, want 3", r.FaultDrops())
	}
	r.Lost++
	if r.Conserved() {
		t.Fatalf("unbalanced record reported conserved: %+v", r)
	}
}

// TestCrashRecoveryCounters pins the obsv/v1-additive crash-recovery
// counters: they sit outside the Conserved identity (a restarted node
// re-enters the run, it does not transmit unaccounted copies), they are
// omitted from JSON when zero (old records parse and re-encode unchanged),
// they survive a round-trip when set, and Reset clears them.
func TestCrashRecoveryCounters(t *testing.T) {
	r := RunRecord{Copies: 10, Receipts: 4, Lost: 2, Collided: 1, DroppedNodeDown: 2, DroppedLinkDown: 1,
		Restarts: 5, JournalReplays: 4, StaleViewHolds: 3}
	if !r.Conserved() {
		t.Fatalf("crash-recovery counters broke the conservation identity: %+v", r)
	}
	data, err := json.Marshal(&r)
	if err != nil {
		t.Fatal(err)
	}
	var back RunRecord
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Restarts != 5 || back.JournalReplays != 4 || back.StaleViewHolds != 3 {
		t.Fatalf("round-trip lost counters: %+v", back)
	}
	var zero RunRecord
	data, err = json.Marshal(&zero)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"restarts", "journal_replays", "stale_view_holds"} {
		if strings.Contains(string(data), key) {
			t.Errorf("zero record encodes %q; the counters must be omitempty additions", key)
		}
	}
	r.Reset()
	if r.Restarts != 0 || r.JournalReplays != 0 || r.StaleViewHolds != 0 {
		t.Fatalf("Reset kept crash-recovery counters: %+v", r)
	}
}

func TestLiveCounters(t *testing.T) {
	var c LiveCounters
	c.AddReplicate()
	c.AddReplicate()
	c.PointConverged()
	c.PointExhausted()
	if c.Replicates() != 2 {
		t.Fatalf("replicates = %d, want 2", c.Replicates())
	}
	s := c.String()
	for _, want := range []string{`"replicates": 2`, `"points_converged": 1`, `"points_exhausted": 1`} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %s, missing %s", s, want)
		}
	}
}

// TestObserveAllocFree pins the metric hot path: the simulator calls Observe
// from inside its event loop, so it must not allocate.
func TestObserveAllocFree(t *testing.T) {
	r := NewRunRecord()
	if allocs := testing.AllocsPerRun(1000, func() {
		r.Latency.Observe(3.5)
		r.ForwardSet.Observe(4)
	}); allocs != 0 {
		t.Fatalf("Observe allocates %v times per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, r.Reset); allocs != 0 {
		t.Fatalf("Reset allocates %v times per call, want 0", allocs)
	}
}
