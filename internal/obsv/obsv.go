// Package obsv is the run-record observability layer: per-run metric
// records (counters, a fixed-bucket latency histogram, a forward-set size
// distribution), a versioned JSONL export of records and traces with
// tamper-evident hash-chain sealing (ChainLink, Writer.Seal, VerifyChain),
// atomic file publication (AtomicFile), and lock-free live counters for
// debug endpoints. The package depends only on
// the standard library and allocates nothing on its observation hot paths,
// so the simulator can feed it from inside the event loop; everything is
// opt-in — a nil *RunRecord in sim.Config keeps the simulator byte-identical
// to the uninstrumented build.
package obsv

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram. Bucket i counts observations x with
// Bounds[i-1] < x <= Bounds[i]; the final bucket (Counts[len(Bounds)]) is the
// overflow bucket for x > Bounds[len(Bounds)-1]. Observe never allocates.
type Histogram struct {
	// Bounds holds the inclusive bucket upper bounds, ascending.
	Bounds []float64 `json:"bounds"`
	// Counts has len(Bounds)+1 entries; the last is the overflow bucket.
	Counts []uint64 `json:"counts"`
	// Count is the total number of observations.
	Count uint64 `json:"count"`
	// Sum is the sum of all observed values.
	Sum float64 `json:"sum"`
	// Min and Max track the observed range (0 when Count == 0).
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// NewHistogram returns a histogram over the given ascending bucket bounds.
func NewHistogram(bounds []float64) Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obsv: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	return Histogram{
		Bounds: append([]float64(nil), bounds...),
		Counts: make([]uint64, len(bounds)+1),
	}
}

// Observe folds one value into the histogram without allocating.
func (h *Histogram) Observe(x float64) {
	i := sort.SearchFloat64s(h.Bounds, x)
	h.Counts[i]++
	if h.Count == 0 || x < h.Min {
		h.Min = x
	}
	if h.Count == 0 || x > h.Max {
		h.Max = x
	}
	h.Count++
	h.Sum += x
}

// Mean returns the mean observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Reset zeroes the histogram counts, keeping the bucket layout.
func (h *Histogram) Reset() {
	for i := range h.Counts {
		h.Counts[i] = 0
	}
	h.Count = 0
	h.Sum = 0
	h.Min = 0
	h.Max = 0
}

// Default bucket layouts, in transmission slots (latency) and set sizes
// (forward sets). Both are part of the exported schema: changing them is a
// schema version bump.
var (
	defaultLatencyBounds    = []float64{0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}
	defaultForwardSetBounds = []float64{0, 1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 24, 32}
)

// RunRecord captures the metrics of one simulated broadcast: the copy and
// drop accounting, recovery activity, a first-delivery latency histogram,
// and the distribution of designated forward-set sizes. The simulator
// populates one behind sim.Config.Metrics; a record can be Reset and reused
// across runs so steady-state instrumented sweeps do not allocate per run.
type RunRecord struct {
	// N is the network size and Delivered the nodes reached.
	N         int `json:"n"`
	Delivered int `json:"delivered"`
	// Forward is the number of transmitting nodes (including the source).
	Forward int `json:"forward"`
	// Copies counts transmitted packet copies; every copy is delivered or
	// dropped: Receipts + Lost + Collided + DroppedNodeDown +
	// DroppedLinkDown == Copies (see Conserved).
	Copies          int `json:"copies"`
	Receipts        int `json:"receipts"`
	Lost            int `json:"lost"`
	Collided        int `json:"collided"`
	DroppedNodeDown int `json:"dropped_node_down"`
	DroppedLinkDown int `json:"dropped_link_down"`
	// TimersCancelled, NACKs, and Retransmits count fault and recovery
	// activity (zero without a fault plan / recovery layer).
	TimersCancelled int `json:"timers_cancelled"`
	NACKs           int `json:"nacks"`
	Retransmits     int `json:"retransmits"`
	// Sessions is the number of broadcast sessions the run injected; absent
	// (0 encodes as omitted) for single-broadcast runs, whose records stay
	// byte-identical. In multi-session runs Reachable counts Sessions*N
	// deliverable (session, node) pairs and Delivered/DeliveredReachable
	// count pairs reached. Additive: the schema version stays obsv/v1.
	Sessions int `json:"sessions,omitempty"`
	// QueueDrops and MACDeferrals count contention-MAC activity: packets
	// dropped from transmit queues and carrier-sense deferrals. Queued
	// packets never went on the air, so queue drops are outside the Conserved
	// identity. Absent (zero) without sim.Config.CarrierSense. Additive.
	QueueDrops   int `json:"queue_drops,omitempty"`
	MACDeferrals int `json:"mac_deferrals,omitempty"`
	// Reachable and DeliveredReachable score delivery against the nodes
	// still connected to the source under the fault plan.
	Reachable          int `json:"reachable"`
	DeliveredReachable int `json:"delivered_reachable"`
	// ViewIncompleteNodes counts nodes that could prove their own local
	// view incomplete before the broadcast started (missed hello receipts;
	// see hello.Views.Incomplete). Zero unless the run was configured with
	// per-node view incompleteness information.
	ViewIncompleteNodes int `json:"view_incomplete_nodes,omitempty"`
	// ViewMissingLinks and ViewPhantomLinks record the divergence of the
	// run's per-node views against the true topology, summed over nodes
	// (hello.Divergence aggregates). The simulator cannot compute these —
	// they need the ground truth — so the experiment driving the run fills
	// them in between sim.Run and trace export. Zero without per-node views.
	ViewMissingLinks int `json:"view_missing_links,omitempty"`
	ViewPhantomLinks int `json:"view_phantom_links,omitempty"`
	// Restarts, JournalReplays, and StaleViewHolds count crash-recovery
	// activity: process (or node) restarts observed during the run, journal
	// replays performed on restart, and nodes whose dynamic-hello view went
	// stale at some point during the run (so the conservative fallback held
	// their forwarding). Restarted nodes re-enter the run rather than
	// transmitting new copies by themselves, so — like QueueDrops — these sit
	// outside the Conserved identity. Absent (zero) without journaling or
	// dynamic hello maintenance. Additive: the schema version stays obsv/v1.
	Restarts       int `json:"restarts,omitempty"`
	JournalReplays int `json:"journal_replays,omitempty"`
	StaleViewHolds int `json:"stale_view_holds,omitempty"`
	// Finish is the time of the run's last event.
	Finish float64 `json:"finish"`
	// Latency is the first-delivery time histogram across reached nodes;
	// the source is observed at t=0 (it holds the packet from the start).
	Latency Histogram `json:"latency"`
	// ForwardSet is the distribution of designated forward-set sizes, one
	// observation per transmission.
	ForwardSet Histogram `json:"forward_set"`
}

// NewRunRecord returns a RunRecord with the default histogram layouts.
func NewRunRecord() *RunRecord {
	return &RunRecord{
		Latency:    NewHistogram(defaultLatencyBounds),
		ForwardSet: NewHistogram(defaultForwardSetBounds),
	}
}

// Reset clears the record for reuse, keeping histogram layouts. A zero-value
// RunRecord gets the default layouts, so &RunRecord{} works wherever
// NewRunRecord() does once Reset has run.
func (r *RunRecord) Reset() {
	lat, fwd := r.Latency, r.ForwardSet
	lat.Reset()
	fwd.Reset()
	*r = RunRecord{Latency: lat, ForwardSet: fwd}
	if r.Latency.Counts == nil {
		r.Latency = NewHistogram(defaultLatencyBounds)
	}
	if r.ForwardSet.Counts == nil {
		r.ForwardSet = NewHistogram(defaultForwardSetBounds)
	}
}

// FaultDrops returns the copies dropped by the fault plan, by any cause.
func (r *RunRecord) FaultDrops() int { return r.DroppedNodeDown + r.DroppedLinkDown }

// Conserved reports whether the drop accounting closes: every transmitted
// copy is either delivered or dropped by exactly one cause.
func (r *RunRecord) Conserved() bool {
	return r.Receipts+r.Lost+r.Collided+r.FaultDrops() == r.Copies
}

// LiveCounters aggregates progress across concurrently measured data points
// for a live debug endpoint. It implements expvar.Var via String without
// importing expvar, and all updates are lock-free.
type LiveCounters struct {
	replicates atomic.Int64
	converged  atomic.Int64
	exhausted  atomic.Int64
}

// AddReplicate records one completed replication.
func (c *LiveCounters) AddReplicate() { c.replicates.Add(1) }

// PointConverged records a data point whose CI met its tolerance.
func (c *LiveCounters) PointConverged() { c.converged.Add(1) }

// PointExhausted records a data point that hit its replication cap.
func (c *LiveCounters) PointExhausted() { c.exhausted.Add(1) }

// Replicates returns the replications recorded so far.
func (c *LiveCounters) Replicates() int64 { return c.replicates.Load() }

// String renders the counters as a JSON object (the expvar.Var contract).
func (c *LiveCounters) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, `{"replicates": %d, "points_converged": %d, "points_exhausted": %d}`,
		c.replicates.Load(), c.converged.Load(), c.exhausted.Load())
	return b.String()
}
