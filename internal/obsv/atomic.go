package obsv

import (
	"os"
	"path/filepath"
)

// AtomicFile writes a file through a hidden temp file in the destination's
// directory, renaming it into place only on Commit. Readers therefore never
// observe a partial file: an error, interrupt, or kill mid-write leaves at
// worst a ".tmp-*" file behind, never a truncated final file. The export and
// grid-cache writers share this so an interrupted sweep cannot strand
// corrupt JSONL that a later reader chokes on.
type AtomicFile struct {
	f    *os.File
	path string
	done bool
}

// CreateAtomic starts an atomic write of path. The temp file lives in
// path's directory (renames across filesystems are not atomic).
func CreateAtomic(path string) (*AtomicFile, error) {
	f, err := os.CreateTemp(filepath.Dir(path), ".tmp-"+filepath.Base(path)+"-*")
	if err != nil {
		return nil, err
	}
	// CreateTemp opens 0600; published files should have normal permissions.
	if err := f.Chmod(0o644); err != nil {
		f.Close()
		os.Remove(f.Name())
		return nil, err
	}
	return &AtomicFile{f: f, path: path}, nil
}

// Write appends to the pending temp file (io.Writer).
func (a *AtomicFile) Write(p []byte) (int, error) { return a.f.Write(p) }

// Path returns the final path the file will occupy after Commit.
func (a *AtomicFile) Path() string { return a.path }

// Commit closes the temp file and renames it into place. On any error the
// temp file is removed and the final path is left untouched.
func (a *AtomicFile) Commit() error {
	if a.done {
		return nil
	}
	a.done = true
	if err := a.f.Close(); err != nil {
		os.Remove(a.f.Name())
		return err
	}
	if err := os.Rename(a.f.Name(), a.path); err != nil {
		os.Remove(a.f.Name())
		return err
	}
	return nil
}

// Abort discards the pending write: the temp file is removed and the final
// path is never created (or, if it already existed, never replaced). Safe to
// call after Commit or a second time; those calls do nothing.
func (a *AtomicFile) Abort() {
	if a.done {
		return
	}
	a.done = true
	a.f.Close()
	os.Remove(a.f.Name())
}

// WriteFileAtomic writes data to path atomically: the bytes land under the
// final name only complete, via temp file and rename.
func WriteFileAtomic(path string, data []byte) error {
	a, err := CreateAtomic(path)
	if err != nil {
		return err
	}
	if _, err := a.Write(data); err != nil {
		a.Abort()
		return err
	}
	return a.Commit()
}
