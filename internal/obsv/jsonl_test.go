package obsv

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sampleRun() *RunRecord {
	r := NewRunRecord()
	r.N = 3
	r.Delivered = 3
	r.Forward = 2
	r.Copies = 3
	r.Receipts = 3
	r.Reachable = 3
	r.DeliveredReachable = 3
	r.Finish = 2
	r.Latency.Observe(0)
	r.Latency.Observe(1)
	r.Latency.Observe(2)
	r.ForwardSet.Observe(0)
	r.ForwardSet.Observe(0)
	return r
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	in := []Record{
		{Kind: KindRun, Point: "fig10/FR/n=20/d=6", Rep: 0, Run: sampleRun()},
		{Kind: KindTrace, Point: "fig10/FR/n=20/d=6", Rep: 0,
			Event: &TraceEvent{Kind: "deliver", At: 0, Node: 0, From: -1}},
		{Kind: KindTrace, Point: "fig10/FR/n=20/d=6", Rep: 0,
			Event: &TraceEvent{Kind: "transmit", At: 0, Node: 0, From: -1, Designated: []int{1, 2}}},
	}
	for _, rec := range in {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d records, wrote %d", len(out), len(in))
	}
	for i := range in {
		in[i].Schema = SchemaVersion
		if !reflect.DeepEqual(out[i], in[i]) {
			t.Fatalf("record %d round-trip mismatch:\n got %+v\nwant %+v", i, out[i], in[i])
		}
	}
	if !out[0].Run.Conserved() {
		t.Fatalf("round-tripped run record lost conservation: %+v", out[0].Run)
	}
}

func TestJSONLRejectsBadInput(t *testing.T) {
	tests := []struct {
		name, line string
	}{
		{name: "wrong schema", line: `{"schema":"obsv/v0","kind":"run","rep":0,"run":{}}`},
		{name: "missing schema", line: `{"kind":"run","rep":0,"run":{}}`},
		{name: "unknown kind", line: `{"schema":"obsv/v1","kind":"bogus","rep":0}`},
		{name: "run without payload", line: `{"schema":"obsv/v1","kind":"run","rep":0}`},
		{name: "trace without payload", line: `{"schema":"obsv/v1","kind":"trace","rep":0}`},
		{name: "malformed json", line: `{"schema":`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(tt.line + "\n")); err == nil {
				t.Fatalf("Read accepted %s", tt.line)
			}
		})
	}
}

func TestJSONLSkipsBlankLines(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Record{Kind: KindRun, Run: sampleRun()}); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("\n\n")
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("read %d records, want 1", len(out))
	}
}

func TestWriterRejectsUnknownKind(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	if err := w.Write(Record{Kind: "bogus"}); err == nil {
		t.Fatal("Write accepted an unknown kind")
	}
}

// TestJSONLGolden pins the exported schema: field names, bucket layouts, and
// the envelope are a versioned contract that offline tooling parses, so any
// change here must bump SchemaVersion.
func TestJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	run := NewRunRecord()
	run.N = 2
	run.Delivered = 2
	run.Forward = 1
	run.Copies = 1
	run.Receipts = 1
	run.Reachable = 2
	run.DeliveredReachable = 2
	run.Finish = 1
	run.Latency.Observe(0)
	run.Latency.Observe(1)
	run.ForwardSet.Observe(0)
	if err := w.Write(Record{Kind: KindRun, Point: "p", Rep: 0, Run: run}); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Record{Kind: KindTrace, Point: "p", Rep: 0,
		Event: &TraceEvent{Kind: "transmit", At: 0, Node: 0, From: -1}}); err != nil {
		t.Fatal(err)
	}
	want := `{"schema":"obsv/v1","kind":"run","point":"p","rep":0,"run":{"n":2,"delivered":2,"forward":1,"copies":1,"receipts":1,"lost":0,"collided":0,"dropped_node_down":0,"dropped_link_down":0,"timers_cancelled":0,"nacks":0,"retransmits":0,"reachable":2,"delivered_reachable":2,"finish":1,"latency":{"bounds":[0,1,2,3,4,6,8,12,16,24,32,48,64],"counts":[1,1,0,0,0,0,0,0,0,0,0,0,0,0],"count":2,"sum":1,"min":0,"max":1},"forward_set":{"bounds":[0,1,2,3,4,5,6,8,10,12,16,24,32],"counts":[1,0,0,0,0,0,0,0,0,0,0,0,0,0],"count":1,"sum":0,"min":0,"max":0}}}
{"schema":"obsv/v1","kind":"trace","point":"p","rep":0,"event":{"kind":"transmit","at":0,"node":0,"from":-1}}
`
	if got := buf.String(); got != want {
		t.Fatalf("golden mismatch:\n got: %s\nwant: %s", got, want)
	}
}
