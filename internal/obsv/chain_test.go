package obsv

import (
	"bytes"
	"strings"
	"testing"
)

// sealedStream writes a small run+trace stream with interior and final
// seals, returning the raw bytes.
func sealedStream(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	run := NewRunRecord()
	run.N = 3
	run.Delivered = 3
	if err := w.Write(Record{Kind: KindRun, Point: "p", Rep: 0, Run: run}); err != nil {
		t.Fatal(err)
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	for rep := 1; rep <= 2; rep++ {
		ev := TraceEvent{Kind: "transmit", At: float64(rep), Node: rep, From: -1}
		if err := w.Write(Record{Kind: KindTrace, Point: "p", Rep: rep, Event: &ev}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestVerifyChainAcceptsSealedStream(t *testing.T) {
	data := sealedStream(t)
	links, err := VerifyChain(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("sealed stream rejected: %v", err)
	}
	if links != 2 {
		t.Fatalf("links = %d, want 2", links)
	}
	// The sealed stream still round-trips through the strict reader.
	recs, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Read rejected sealed stream: %v", err)
	}
	chains := 0
	for _, rec := range recs {
		if rec.Kind == KindChain {
			chains++
		}
	}
	if chains != 2 {
		t.Fatalf("Read saw %d chain records, want 2", chains)
	}
}

// TestVerifyChainDetectsEveryFlippedByte flips each byte of a sealed stream
// in turn and requires verification to fail: the chain leaves no byte of the
// stream — payload, link hashes, or structure — uncovered.
func TestVerifyChainDetectsEveryFlippedByte(t *testing.T) {
	data := sealedStream(t)
	for i := range data {
		if data[i] == '\n' {
			// Flipping a newline merges or splits lines; several of those
			// mutations are structural JSON errors rather than chain
			// mismatches, but all must fail one way or the other.
			continue
		}
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x20 // stays printable for most bytes; any flip must be caught
		if mut[i] == '\n' || mut[i] == '"' || mut[i] == '\\' {
			mut[i] = data[i] ^ 0x01
		}
		if _, err := VerifyChain(bytes.NewReader(mut)); err == nil {
			t.Fatalf("flipped byte %d (%q -> %q) went undetected", i, data[i], mut[i])
		}
	}
}

func TestVerifyChainRejectsTruncationAndUnsealed(t *testing.T) {
	data := sealedStream(t)
	lines := bytes.SplitAfter(data, []byte("\n"))
	// Dropping the final seal leaves trailing uncovered records.
	truncated := bytes.Join(lines[:len(lines)-2], nil)
	if _, err := VerifyChain(bytes.NewReader(truncated)); err == nil {
		t.Fatal("stream missing its final seal verified")
	}
	// Dropping a covered payload line breaks the next link.
	dropped := append(append([]byte(nil), lines[0]...), bytes.Join(lines[2:], nil)...)
	if _, err := VerifyChain(bytes.NewReader(dropped)); err == nil {
		t.Fatal("stream missing a covered record verified")
	}
	// A never-sealed stream with payload must not verify.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	run := NewRunRecord()
	if err := w.Write(Record{Kind: KindRun, Run: run}); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyChain(&buf); err == nil {
		t.Fatal("unsealed stream verified")
	}
	// An empty stream is trivially valid with zero links.
	if links, err := VerifyChain(strings.NewReader("")); err != nil || links != 0 {
		t.Fatalf("empty stream: links=%d err=%v", links, err)
	}
}

// TestVerifyChainForeignPayloadLines pins the property the grid cache relies
// on: lines of any schema are covered payload, so a chain seal protects
// non-obsv records too.
func TestVerifyChainForeignPayloadLines(t *testing.T) {
	var buf bytes.Buffer
	ch := NewChainHasher()
	line := []byte(`{"schema":"grid/v1","kind":"point","config":{"x":1}}` + "\n")
	buf.Write(line)
	ch.Add(line)
	link := ch.Link()
	w := NewWriter(&buf)
	w.chain = ch // continue the same chain
	rec := Record{Schema: SchemaVersion, Kind: KindChain, Chain: &link}
	if err := w.emit(rec); err != nil {
		t.Fatal(err)
	}
	if links, err := VerifyChain(bytes.NewReader(buf.Bytes())); err != nil || links != 1 {
		t.Fatalf("foreign payload stream: links=%d err=%v", links, err)
	}
	mut := bytes.Replace(buf.Bytes(), []byte(`"x":1`), []byte(`"x":2`), 1)
	if _, err := VerifyChain(bytes.NewReader(mut)); err == nil {
		t.Fatal("tampered foreign payload verified")
	}
}
