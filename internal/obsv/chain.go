package obsv

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"io"
)

// ChainLink is the payload of a KindChain record: one link of a hash chain
// over the raw record lines of a JSONL stream. A link covers every line
// written since the previous link (chain lines themselves are excluded); its
// hash commits to both those bytes and the previous link, so flipping a
// single byte anywhere in a sealed stream — payload, earlier link, or the
// link itself — makes VerifyChain fail. Streams are sealed by Writer.Seal
// and verified by VerifyChain.
type ChainLink struct {
	// Prev is the hex-encoded hash of the previous link, or "" for the
	// first link of the stream.
	Prev string `json:"prev"`
	// Hash is hex(SHA-256(Prev || covered bytes)), where the covered bytes
	// are the raw record lines — trailing newlines included — written since
	// the previous link.
	Hash string `json:"hash"`
	// Lines is the number of record lines the link covers.
	Lines int `json:"lines"`
}

// ChainHasher accumulates the hash-chain state of a JSONL stream: feed it
// every record line (newline included) via Add, and Link returns the link
// covering the lines added since the previous Link and advances the chain.
// The zero value is not ready; use NewChainHasher.
type ChainHasher struct {
	prev  string
	h     hash.Hash
	lines int
}

// NewChainHasher returns a hasher at the head of a fresh chain.
func NewChainHasher() *ChainHasher {
	return &ChainHasher{h: sha256.New()}
}

// Add folds one raw record line into the pending link. The line must include
// its trailing newline so the covered bytes reconstruct the stream exactly.
func (c *ChainHasher) Add(line []byte) {
	c.h.Write(line)
	c.lines++
}

// Link seals the pending lines into a ChainLink and starts the next link.
func (c *ChainHasher) Link() ChainLink {
	link := ChainLink{
		Prev:  c.prev,
		Hash:  hex.EncodeToString(c.h.Sum(nil)),
		Lines: c.lines,
	}
	c.prev = link.Hash
	c.h = sha256.New()
	io.WriteString(c.h, c.prev)
	c.lines = 0
	return link
}

// chainProbe is the minimal parse VerifyChain needs per line: enough to
// recognize a chain record without committing to any payload schema.
type chainProbe struct {
	Schema string     `json:"schema"`
	Kind   string     `json:"kind"`
	Chain  *ChainLink `json:"chain"`
}

// VerifyChain checks the hash chain of a sealed JSONL stream. Every line
// must be valid JSON; lines that are obsv chain records are verified against
// the recomputed chain (previous link, covered bytes, covered line count),
// all other lines — whatever their schema — are the covered payload. The
// stream must end sealed: trailing payload lines not covered by a link are
// an error, as is a stream with payload but no links at all. It returns the
// number of verified links.
func VerifyChain(r io.Reader) (links int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	ch := NewChainHasher()
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(bytes.TrimSpace(raw)) == 0 {
			continue
		}
		var probe chainProbe
		if err := json.Unmarshal(raw, &probe); err != nil {
			return links, fmt.Errorf("obsv: chain: line %d: malformed JSON: %w", line, err)
		}
		if probe.Schema != SchemaVersion || probe.Kind != KindChain {
			// Payload line: covered by the next link. Scanner strips the
			// newline; restore it so the hash matches the written bytes.
			ch.Add(append(append([]byte(nil), raw...), '\n'))
			continue
		}
		if probe.Chain == nil {
			return links, fmt.Errorf("obsv: chain: line %d: chain record without chain payload", line)
		}
		want := ch.Link()
		got := *probe.Chain
		if got != want {
			return links, fmt.Errorf("obsv: chain: line %d: link mismatch (stream tampered or truncated): got {prev:%.8s hash:%.8s lines:%d}, want {prev:%.8s hash:%.8s lines:%d}",
				line, got.Prev, got.Hash, got.Lines, want.Prev, want.Hash, want.Lines)
		}
		// Chain lines are excluded from hash coverage, so pin their bytes
		// directly: the line must be the canonical encoding of the verified
		// link. Without this, mutations json.Unmarshal tolerates (key case
		// flips, reordering, padding) would go unnoticed.
		canonical, err := json.Marshal(Record{Schema: SchemaVersion, Kind: KindChain, Chain: &want})
		if err != nil {
			return links, err
		}
		if !bytes.Equal(raw, canonical) {
			return links, fmt.Errorf("obsv: chain: line %d: chain record not in canonical form", line)
		}
		links++
	}
	if err := sc.Err(); err != nil {
		return links, err
	}
	if ch.lines > 0 {
		return links, fmt.Errorf("obsv: chain: %d record line(s) after the last chain link are not covered (stream truncated or never sealed)", ch.lines)
	}
	return links, nil
}
