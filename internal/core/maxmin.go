package core

import (
	"sort"

	"adhocbcast/internal/graph"
	"adhocbcast/internal/view"
)

// MaxMinPath runs the MAX_MIN procedure of Definition 1 for the view's
// owner v, building a maximal replacement path that connects v's neighbors
// u and w. The returned slice holds the intermediate nodes in path order
// (empty when u and w are directly connected); ok is false when no
// replacement path exists at all.
//
// The procedure is purely graph-theoretic on the view: intermediates are
// drawn from the visible nodes with priority strictly higher than Pr(v), and
// no virtual visited-clique shortcut is applied.
func MaxMinPath(lv *view.Local, u, w int) (intermediates []int, ok bool) {
	h := newMaxMinSolver(lv)
	return h.path(u, w)
}

// ReplacementPathExists reports whether u and w (neighbors of the view's
// owner) are connected by at least one replacement path for the owner. It is
// the reference predicate the coverage-condition implementations are tested
// against.
func ReplacementPathExists(lv *view.Local, u, w int) bool {
	h := newMaxMinSolver(lv)
	return h.maxMinNode(u, w) != noPath
}

const (
	directEdge = -1 // endpoints directly connected, empty path
	noPath     = -2 // no replacement path exists
)

// maxMinSolver finds max-min (bottleneck-optimal) nodes by activating the
// higher-priority nodes in descending priority order and tracking
// connectivity with a union-find; the node whose activation first connects
// the two endpoints is the max-min node.
type maxMinSolver struct {
	lv *view.Local
	// byPriority lists the H members in descending priority order.
	byPriority []int
}

func newMaxMinSolver(lv *view.Local) *maxMinSolver {
	prv := lv.Pr(lv.Owner)
	var members []int
	for i, x32 := range lv.Members() {
		if x := int(x32); x != lv.Owner && lv.PrAt(i).Greater(prv) {
			members = append(members, x)
		}
	}
	sort.Slice(members, func(i, j int) bool {
		return lv.Pr(members[j]).Less(lv.Pr(members[i]))
	})
	return &maxMinSolver{lv: lv, byPriority: members}
}

// path implements MAX_MIN(u, w, v) recursively.
func (s *maxMinSolver) path(u, w int) ([]int, bool) {
	x := s.maxMinNode(u, w)
	switch x {
	case directEdge:
		return nil, true
	case noPath:
		return nil, false
	}
	if x == u || x == w {
		// Cannot happen per Lemma 1 (endpoints are never max-min nodes);
		// guard against infinite recursion all the same.
		return nil, false
	}
	left, ok := s.path(u, x)
	if !ok {
		return nil, false
	}
	right, ok := s.path(x, w)
	if !ok {
		return nil, false
	}
	out := make([]int, 0, len(left)+1+len(right))
	out = append(out, left...)
	out = append(out, x)
	out = append(out, right...)
	return out, true
}

// maxMinNode returns the max-min node for (u, w, owner), or directEdge when
// u and w are adjacent, or noPath when no replacement path connects them.
func (s *maxMinSolver) maxMinNode(u, w int) int {
	lv := s.lv
	if lv.HasEdge(u, w) {
		return directEdge
	}
	n := lv.N()
	active := make([]bool, n)
	uf := graph.NewUnionFind(n)
	connected := func() bool {
		ru := endpointRoots(lv, active, uf, u)
		rw := endpointRoots(lv, active, uf, w)
		return intersectSorted(ru, rw)
	}
	for _, x := range s.byPriority {
		active[x] = true
		lv.ForEachNeighbor(x, func(y int) {
			if active[y] {
				uf.Union(x, y)
			}
		})
		if connected() {
			return x
		}
	}
	return noPath
}

// endpointRoots returns the sorted component roots of the active nodes
// adjacent to (or equal to) endpoint e.
func endpointRoots(lv *view.Local, active []bool, uf *graph.UnionFind, e int) []int {
	var roots []int
	if active[e] {
		roots = append(roots, uf.Find(e))
	}
	lv.ForEachNeighbor(e, func(y int) {
		if active[y] {
			roots = append(roots, uf.Find(y))
		}
	})
	sortDedup(&roots)
	return roots
}
