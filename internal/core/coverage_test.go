package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adhocbcast/internal/core"
	"adhocbcast/internal/view"
)

func TestCoveredLeafAndIsolated(t *testing.T) {
	// A node with at most one neighbor satisfies the coverage condition
	// vacuously: there is no pair of neighbors to connect.
	g := buildGraph(t, 3, [][2]int{{0, 1}, {1, 2}})
	if !core.Covered(localView(t, g, 0, 2, view.MetricID)) {
		t.Fatal("leaf node not covered")
	}
	if core.Covered(localView(t, g, 1, 2, view.MetricID)) {
		t.Fatal("cut vertex reported covered")
	}
}

func TestCoveredCompleteGraph(t *testing.T) {
	// In a complete graph every pair of neighbors is directly connected:
	// everyone may stay silent (the paper notes one transmission from the
	// source reaches all nodes).
	g := buildGraph(t, 4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	for v := 0; v < 4; v++ {
		if !core.Covered(localView(t, g, v, 2, view.MetricID)) {
			t.Fatalf("node %d of complete graph not covered", v)
		}
	}
}

func TestCoveredTriangleFigure1(t *testing.T) {
	// The paper's Figure 1: v=0 broadcasts to u=1 and w=2 who are directly
	// connected; neither needs to forward. With ID priority, nodes 1 and 2
	// are also covered for node 0's pair (vacuous or direct link).
	g := buildGraph(t, 3, [][2]int{{0, 1}, {0, 2}, {1, 2}})
	for v := 0; v < 3; v++ {
		if !core.Covered(localView(t, g, v, 2, view.MetricID)) {
			t.Fatalf("triangle node %d not covered", v)
		}
	}
}

func TestCoveredReplacementPathThroughHigherPriority(t *testing.T) {
	// v=0's two neighbors 1 and 2 are connected only through 3 (higher id,
	// higher priority): v is covered. Mirror case: node 3's neighbors are
	// connected only through 0 (lower priority): not covered.
	g := buildGraph(t, 4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	if !core.Covered(localView(t, g, 0, 2, view.MetricID)) {
		t.Fatal("node 0 should be covered via higher-priority node 3")
	}
	if core.Covered(localView(t, g, 3, 2, view.MetricID)) {
		t.Fatal("node 3 must not be covered via lower-priority node 0")
	}
}

func TestCoveredLongerReplacementPath(t *testing.T) {
	// Neighbors 1 and 2 of node 0 connected via the 2-hop chain 3-4; all
	// intermediates have higher ids. Visible only with a 3-hop view.
	g := buildGraph(t, 5, [][2]int{{0, 1}, {0, 2}, {1, 3}, {3, 4}, {4, 2}})
	if !core.Covered(localView(t, g, 0, 3, view.MetricID)) {
		t.Fatal("node 0 should be covered through chain 3-4")
	}
	// With a 2-hop view the link {3,4} is invisible (both are... 3 is
	// 2 hops? 3 is at distance 2 via 1; 4 at distance 2 via 2; the link
	// {3,4} joins two distance-2 nodes and is excluded from E2(0)).
	if core.Covered(localView(t, g, 0, 2, view.MetricID)) {
		t.Fatal("node 0 covered under 2-hop view where the chain is invisible")
	}
}

func TestCoveredLowPriorityIntermediateRejected(t *testing.T) {
	// Node 5's neighbors 3 and 4 are connected via nodes 1-2, both with
	// lower ids: no replacement path for 5.
	g := buildGraph(t, 6, [][2]int{{5, 3}, {5, 4}, {3, 1}, {1, 2}, {2, 4}})
	if core.Covered(localView(t, g, 5, 0, view.MetricID)) {
		t.Fatal("node 5 covered through lower-priority intermediates")
	}
}

func TestCoveredVisitedNodesAssumedConnected(t *testing.T) {
	// Figure 6(b) style case: two visited nodes that look disconnected in
	// the local view are still treated as one connected component because
	// all visited nodes are connected through the source.
	//
	// v=0 has neighbors 1 and 2. Neighbor 1 is adjacent to visited node 5;
	// neighbor 2 is adjacent to visited node 6; 5 and 6 share no visible
	// link. Without the visited-connected assumption 0 is not covered;
	// with it, it is.
	g := buildGraph(t, 7, [][2]int{{0, 1}, {0, 2}, {1, 5}, {2, 6}, {5, 3}, {6, 4}})
	// Use low-priority ids for the connectors so that only visited status
	// can make them usable: here 5 and 6 already have higher ids, so first
	// check the baseline with a different owner... instead give the owner
	// the highest priority by raising its base key before building the view.
	base := view.BasePriorities(g, view.MetricID)
	base[0] = view.Priority{Status: view.Unvisited, Key1: 99, ID: 0}
	lv := view.NewLocal(g, 0, 2, base)
	if core.Covered(lv) {
		t.Fatal("node 0 covered before any visited marks")
	}
	lv.MarkVisited(5)
	if core.Covered(lv) {
		t.Fatal("one visited connector cannot join both neighbors")
	}
	lv.MarkVisited(6)
	if !core.Covered(lv) {
		t.Fatal("two visited connectors must count as connected")
	}
}

func TestCoveredVsStrongDifference(t *testing.T) {
	// The Figure 6(a) phenomenon: pairwise replacement paths exist through
	// different higher-priority components, so the generic condition holds,
	// but no single component dominates the whole neighborhood, so the
	// strong condition fails.
	//
	// Owner 5 with neighbors 1, 2, 3 (lower ids). H = {6, 7}: 6 joins 2-3,
	// 7 joins 1-3, and 1-2 are directly linked. Node 8 keeps the graph
	// connected elsewhere.
	g := buildGraph(t, 9, [][2]int{
		{5, 1}, {5, 2}, {5, 3},
		{1, 2},
		{2, 6}, {6, 3},
		{1, 7}, {7, 3},
		{1, 8},
	})
	lv := localView(t, g, 5, 0, view.MetricID)
	if !core.Covered(lv) {
		t.Fatal("generic coverage condition should hold")
	}
	if core.StrongCovered(lv) {
		t.Fatal("strong coverage condition should fail: no single dominating component")
	}
}

func TestStrongCoveredSingleComponent(t *testing.T) {
	// Node 0's neighbors 1 and 2 are both adjacent to node 3: the single
	// component {3} dominates N(0).
	g := buildGraph(t, 4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	if !core.StrongCovered(localView(t, g, 0, 2, view.MetricID)) {
		t.Fatal("single higher-priority neighbor component should cover node 0")
	}
}

func TestStrongCoveredRestrictedDistance(t *testing.T) {
	// The dominating component {3,4} sits partly two hops away from owner
	// 0: 3 is a neighbor's neighbor. With maxDist=1 (coverage nodes must be
	// neighbors) the condition fails; with maxDist=2 it holds.
	g := buildGraph(t, 5, [][2]int{{0, 1}, {0, 2}, {1, 3}, {3, 4}, {4, 2}})
	lv := localView(t, g, 0, 3, view.MetricID)
	if core.StrongCoveredRestricted(lv, 1) {
		t.Fatal("restricted(1) must not use 2-hop coverage nodes")
	}
	if !core.StrongCoveredRestricted(lv, 2) {
		t.Fatal("restricted(2) should find the 2-hop coverage chain")
	}
}

// TestImplicationsQuick property-checks the condition hierarchy on random
// views with random visited marks:
//
//	StrongCoveredRestricted(k) => StrongCovered => Covered
//	SpanCovered => Covered
//	SBACovered  => StrongCovered
func TestImplicationsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(t, rng, 4+rng.Intn(20), 0.25)
		metric := []view.Metric{view.MetricID, view.MetricDegree, view.MetricNCR}[rng.Intn(3)]
		base := view.BasePriorities(g, metric)
		hops := 2 + rng.Intn(2)
		visited := connectedVisitedSet(rng, g, rng.Intn(4))
		for v := 0; v < g.N(); v++ {
			lv := view.NewLocal(g, v, hops, base)
			isOwnerVisited := false
			for _, x := range visited {
				if x == v {
					isOwnerVisited = true
				}
				lv.MarkVisited(x)
			}
			if isOwnerVisited {
				continue
			}
			covered := core.Covered(lv)
			strong := core.StrongCovered(lv)
			restricted := core.StrongCoveredRestricted(lv, hops-1)
			span := core.SpanCovered(lv)
			sba := core.SBACovered(lv)
			if restricted && !strong {
				return false
			}
			if strong && !covered {
				return false
			}
			if span && !covered {
				return false
			}
			if sba && !strong {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestCoveredMatchesReplacementPathsQuick cross-validates the component-
// contraction implementation of the coverage condition against the MAX_MIN
// solver's reachability predicate: without visited marks they must agree
// exactly (Covered <=> every neighbor pair has a replacement path).
func TestCoveredMatchesReplacementPathsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(t, rng, 4+rng.Intn(16), 0.3)
		base := view.BasePriorities(g, view.MetricID)
		hops := 2 + rng.Intn(2)
		for v := 0; v < g.N(); v++ {
			lv := view.NewLocal(g, v, hops, base)
			nbrs := lv.Neighbors()
			allPairs := true
			for i := 0; i < len(nbrs) && allPairs; i++ {
				for j := i + 1; j < len(nbrs) && allPairs; j++ {
					if !core.ReplacementPathExists(lv, nbrs[i], nbrs[j]) {
						allPairs = false
					}
				}
			}
			if core.Covered(lv) != allPairs {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestCoveredMonotoneInViewQuick checks the Theorem 2 mechanism directly: a
// node non-forward under a smaller view stays non-forward under any larger
// view (more topology and state can only help).
func TestCoveredMonotoneInViewQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(t, rng, 4+rng.Intn(16), 0.25)
		base := view.BasePriorities(g, view.MetricDegree)
		for v := 0; v < g.N(); v++ {
			smaller := view.NewLocal(g, v, 2, base)
			larger := view.NewLocal(g, v, 3, base)
			if core.Covered(smaller) && !core.Covered(larger) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
