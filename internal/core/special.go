package core

import (
	"adhocbcast/internal/graph"
	"adhocbcast/internal/view"
)

// SpanCovered evaluates the enhanced-Span condition (Section 6.1): the
// owner may take non-coordinator (non-forward) status iff every pair of its
// neighbors is connected directly or through at most two intermediate
// higher-priority nodes. It is the generic coverage condition restricted to
// replacement paths of at most three hops.
func SpanCovered(lv *view.Local) bool {
	v := lv.Owner
	nbrs := lv.Neighbors()
	if len(nbrs) <= 1 {
		return true
	}
	prv := lv.Pr(v)
	n := lv.N()
	inH := make([]bool, n)
	for i, x32 := range lv.Members() {
		if x := int(x32); x != v && lv.PrAt(i).Greater(prv) {
			inH[x] = true
		}
	}
	// hn[x] = H-neighborhood of x restricted to H members.
	hn := make([]*graph.Bitset, n)
	hNbrs := func(x int) *graph.Bitset {
		if hn[x] == nil {
			bs := graph.NewBitset(n)
			lv.ForEachNeighbor(x, func(y int) {
				if inH[y] {
					bs.Set(y)
				}
			})
			hn[x] = bs
		}
		return hn[x]
	}
	// a[i] = H-nodes adjacent to neighbor i (first intermediate candidates);
	// b[i] = H-nodes reachable from neighbor i through one H intermediate.
	a := make([]*graph.Bitset, len(nbrs))
	b := make([]*graph.Bitset, len(nbrs))
	scratch := make([]int, 0, n)
	for i, u := range nbrs {
		a[i] = hNbrs(u)
		bs := graph.NewBitset(n)
		scratch = a[i].Elements(scratch[:0])
		for _, h := range scratch {
			bs.Union(hNbrs(h))
		}
		b[i] = bs
	}
	for i := 0; i < len(nbrs); i++ {
		for j := i + 1; j < len(nbrs); j++ {
			if lv.HasEdge(nbrs[i], nbrs[j]) {
				continue
			}
			if a[i].Intersects(a[j]) {
				continue // one intermediate
			}
			if a[i].Intersects(b[j]) {
				continue // two intermediates
			}
			return false
		}
	}
	return true
}

// WuLiMarked reports the marking-process gateway status (Section 6.1): the
// owner is marked iff it has two neighbors that are not directly connected.
func WuLiMarked(lv *view.Local) bool {
	nbrs := lv.Neighbors()
	for i := 0; i < len(nbrs); i++ {
		for j := i + 1; j < len(nbrs); j++ {
			if !lv.HasEdge(nbrs[i], nbrs[j]) {
				return true
			}
		}
	}
	return false
}

// WuLiRule1 reports whether pruning Rule 1 unmarks the owner: some single
// higher-priority coverage node u satisfies N(v) ⊆ N(u) ∪ {u}.
func WuLiRule1(lv *view.Local) bool {
	nbrs := lv.Neighbors()
	for _, u := range wuLiCandidates(lv) {
		if coversAll(lv, nbrs, u, -1) {
			return true
		}
	}
	return false
}

// WuLiRule2 reports whether pruning Rule 2 unmarks the owner: two directly
// connected higher-priority coverage nodes u, w jointly satisfy
// N(v) ⊆ N(u) ∪ N(w) ∪ {u, w}.
func WuLiRule2(lv *view.Local) bool {
	nbrs := lv.Neighbors()
	cands := wuLiCandidates(lv)
	for i := 0; i < len(cands); i++ {
		for j := i + 1; j < len(cands); j++ {
			if !lv.HasEdge(cands[i], cands[j]) {
				continue
			}
			if coversAll(lv, nbrs, cands[i], cands[j]) {
				return true
			}
		}
	}
	return false
}

// wuLiCandidates lists the possible coverage nodes: visible higher-priority
// nodes within two hops of the owner (a useful coverage node must be
// adjacent to at least one of the owner's neighbors).
func wuLiCandidates(lv *view.Local) []int {
	v := lv.Owner
	prv := lv.Pr(v)
	near := make([]bool, lv.N())
	lv.ForEachNeighbor(v, func(u int) {
		near[u] = true
		lv.ForEachNeighbor(u, func(w int) {
			near[w] = true
		})
	})
	var cands []int
	for i, x32 := range lv.Members() {
		if x := int(x32); x != v && near[x] && lv.PrAt(i).Greater(prv) {
			cands = append(cands, x)
		}
	}
	return cands
}

// coversAll reports whether every node in nbrs is in N(u) ∪ {u} (or in
// N(w) ∪ {w} when w >= 0).
func coversAll(lv *view.Local, nbrs []int, u, w int) bool {
	for _, x := range nbrs {
		if x == u || x == w {
			continue
		}
		if lv.HasEdge(u, x) {
			continue
		}
		if w >= 0 && lv.HasEdge(w, x) {
			continue
		}
		return false
	}
	return true
}

// SBACovered evaluates SBA's neighbor-elimination condition (Section 6.2):
// the owner may stay silent iff every neighbor is itself a visited neighbor
// or adjacent to one. Only visited nodes that are direct neighbors count —
// SBA learns broadcast state exclusively by hearing neighbors transmit.
func SBACovered(lv *view.Local) bool {
	nbrs := lv.Neighbors()
	done := make([]bool, lv.N())
	for _, u := range nbrs {
		if lv.IsVisited(u) {
			done[u] = true
			lv.ForEachNeighbor(u, func(w int) {
				done[w] = true
			})
		}
	}
	for _, u := range nbrs {
		if !done[u] {
			return false
		}
	}
	return true
}

// LENWBCovered evaluates LENWB's condition (Section 6.2) on first receipt
// from node `from`: compute the set C of nodes connected to `from` via nodes
// with priority higher than the owner's; the owner is non-forward iff
// N(owner) ⊆ C.
func LENWBCovered(lv *view.Local, from int) bool {
	v := lv.Owner
	prv := lv.Pr(v)
	n := lv.N()
	if from < 0 || from >= n {
		return false
	}
	// BFS from `from` expanding only through higher-priority nodes; every
	// reached node plus its neighbors belong to C.
	inC := make([]bool, n)
	reached := make([]bool, n)
	queue := []int{from}
	reached[from] = true
	inC[from] = true
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		lv.ForEachNeighbor(x, func(y int) {
			inC[y] = true
			if !reached[y] && y != v && lv.Pr(y).Greater(prv) {
				reached[y] = true
				queue = append(queue, y)
			}
		})
	}
	ok := true
	lv.ForEachNeighbor(v, func(u int) {
		if !inC[u] {
			ok = false
		}
	})
	return ok
}
