package core_test

import (
	"math/rand"
	"testing"

	"adhocbcast/internal/core"
	"adhocbcast/internal/view"
)

func TestSpanCoveredPathLengthCap(t *testing.T) {
	// Neighbors 1 and 2 of owner 0 joined through a chain of higher-
	// priority nodes. With two intermediates (3-4) Span accepts; with three
	// (3-4-5) the replacement path is four hops and Span must reject even
	// though the generic condition accepts.
	twoHop := buildGraph(t, 5, [][2]int{{0, 1}, {0, 2}, {1, 3}, {3, 4}, {4, 2}})
	lv := localView(t, twoHop, 0, 0, view.MetricID)
	if !core.SpanCovered(lv) {
		t.Fatal("two intermediates should satisfy Span")
	}

	threeHop := buildGraph(t, 6, [][2]int{{0, 1}, {0, 2}, {1, 3}, {3, 4}, {4, 5}, {5, 2}})
	lv = localView(t, threeHop, 0, 0, view.MetricID)
	if core.SpanCovered(lv) {
		t.Fatal("three intermediates must exceed Span's path cap")
	}
	if !core.Covered(lv) {
		t.Fatal("generic condition has no path cap and should accept")
	}
}

func TestSpanCoveredOneIntermediate(t *testing.T) {
	g := buildGraph(t, 4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	if !core.SpanCovered(localView(t, g, 0, 3, view.MetricID)) {
		t.Fatal("one higher-priority intermediate should satisfy Span")
	}
}

func TestSpanCoveredLowPriorityIntermediateRejected(t *testing.T) {
	// Same shape but the intermediate has the lowest priority.
	g := buildGraph(t, 4, [][2]int{{3, 1}, {3, 2}, {1, 0}, {2, 0}})
	if core.SpanCovered(localView(t, g, 3, 3, view.MetricID)) {
		t.Fatal("Span used a lower-priority intermediate")
	}
}

func TestWuLiMarked(t *testing.T) {
	// Full mesh neighborhood: unmarked. Broken pair: marked.
	mesh := buildGraph(t, 4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	if core.WuLiMarked(localView(t, mesh, 0, 2, view.MetricID)) {
		t.Fatal("node with fully meshed neighborhood marked as gateway")
	}
	broken := buildGraph(t, 4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}})
	if !core.WuLiMarked(localView(t, broken, 0, 2, view.MetricID)) {
		t.Fatal("node with unconnected neighbors not marked")
	}
}

func TestWuLiRule1(t *testing.T) {
	// N(0) = {1,2}; node 3 is adjacent to both 1 and 2 (and to 0? not
	// needed): a single higher-priority coverage node.
	g := buildGraph(t, 4, [][2]int{{0, 1}, {0, 2}, {3, 1}, {3, 2}})
	if !core.WuLiRule1(localView(t, g, 0, 3, view.MetricID)) {
		t.Fatal("Rule 1 should fire with coverage node 3")
	}
	// From node 3's perspective, node 0 covers N(3) = {1,2} too, but 0 has
	// a lower id: Rule 1 must not fire.
	if core.WuLiRule1(localView(t, g, 3, 3, view.MetricID)) {
		t.Fatal("Rule 1 fired with a lower-priority coverage node")
	}
}

func TestWuLiRule2(t *testing.T) {
	// N(0) = {1,2}; coverage pair {3,4}: 3 covers 1, 4 covers 2, and 3-4
	// are directly connected.
	g := buildGraph(t, 5, [][2]int{{0, 1}, {0, 2}, {3, 1}, {4, 2}, {3, 4}})
	lv := localView(t, g, 0, 3, view.MetricID)
	if core.WuLiRule1(lv) {
		t.Fatal("no single node covers N(0); Rule 1 must not fire")
	}
	if !core.WuLiRule2(lv) {
		t.Fatal("Rule 2 should fire with the connected pair {3,4}")
	}
	// Disconnect the pair: Rule 2 must fail.
	g2 := buildGraph(t, 5, [][2]int{{0, 1}, {0, 2}, {3, 1}, {4, 2}})
	if core.WuLiRule2(localView(t, g2, 0, 3, view.MetricID)) {
		t.Fatal("Rule 2 fired with a disconnected coverage pair")
	}
}

func TestSBACovered(t *testing.T) {
	// Star owner 0 with neighbors 1,2,3; 1 adjacent to 2.
	g := buildGraph(t, 5, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {3, 4}})
	lv := localView(t, g, 0, 2, view.MetricID)
	if core.SBACovered(lv) {
		t.Fatal("covered with no visited neighbors")
	}
	// Visited neighbor 1 covers itself and 2, but not 3.
	lv.MarkVisited(1)
	if core.SBACovered(lv) {
		t.Fatal("covered while neighbor 3 is uncovered")
	}
	// Visited neighbor 3 completes the elimination.
	lv.MarkVisited(3)
	if !core.SBACovered(lv) {
		t.Fatal("not covered after all neighbors eliminated")
	}
}

func TestSBACoveredIgnoresNonNeighborVisited(t *testing.T) {
	// A visited node two hops away does not help SBA even if it dominates
	// the neighborhood: SBA only counts overheard (neighbor) forwards.
	g := buildGraph(t, 4, [][2]int{{0, 1}, {0, 2}, {3, 1}, {3, 2}})
	lv := localView(t, g, 0, 2, view.MetricID)
	lv.MarkVisited(3)
	if core.SBACovered(lv) {
		t.Fatal("SBA used a non-neighbor visited node")
	}
}

func TestLENWBCovered(t *testing.T) {
	// Owner 0 receives from 3. C grows from 3 through higher-priority
	// nodes: 3's neighbors {0,1,4}, then 4 (higher than 0) adds {2}.
	// N(0) = {1,2,3} ⊆ C: covered.
	g := buildGraph(t, 5, [][2]int{{0, 1}, {0, 2}, {0, 3}, {3, 1}, {3, 4}, {4, 2}})
	lv := localView(t, g, 0, 3, view.MetricID)
	lv.MarkVisited(3)
	if !core.LENWBCovered(lv, 3) {
		t.Fatal("LENWB should cover node 0 via sender 3 and node 4")
	}

	// Same topology but the expansion node has the lowest priority: from
	// owner 4's perspective (neighbors 2,3), C from sender 3 cannot grow
	// through node 0 if 0 has lower priority than 4 — C = {3} ∪ N(3).
	lv = localView(t, g, 4, 3, view.MetricID)
	lv.MarkVisited(3)
	if core.LENWBCovered(lv, 3) {
		t.Fatal("LENWB grew C through a lower-priority node")
	}
}

func TestLENWBCoveredBadSender(t *testing.T) {
	g := buildGraph(t, 3, [][2]int{{0, 1}, {1, 2}})
	lv := localView(t, g, 1, 2, view.MetricID)
	if core.LENWBCovered(lv, -1) {
		t.Fatal("covered with no sender")
	}
	if core.LENWBCovered(lv, 99) {
		t.Fatal("covered with out-of-range sender")
	}
}

// TestSpanImpliesCoveredQuick is a focused version of the implication suite
// with visited marks present, since Span is also used dynamically in
// regression scenarios.
func TestSpanImpliesCoveredQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 60; trial++ {
		g := randomConnectedGraph(t, rng, 5+rng.Intn(15), 0.3)
		base := view.BasePriorities(g, view.MetricNCR)
		visited := connectedVisitedSet(rng, g, rng.Intn(3))
		for v := 0; v < g.N(); v++ {
			lv := view.NewLocal(g, v, 3, base)
			skip := false
			for _, x := range visited {
				if x == v {
					skip = true
				}
				lv.MarkVisited(x)
			}
			if skip {
				continue
			}
			if core.SpanCovered(lv) && !core.Covered(lv) {
				t.Fatalf("trial %d node %d: Span covered but generic not", trial, v)
			}
		}
	}
}
