// Package core implements the paper's primary contribution: the generic
// coverage condition of Section 3 deciding when a node may take non-forward
// status, the strong coverage condition of Section 6, the restricted
// conditions used by the special-case protocols (Span, Wu-Li, SBA, LENWB),
// and the MAX_MIN maximal-replacement-path procedure of Definition 1.
//
// All conditions are evaluated against a node's local view (topology plus
// known broadcast state); by Theorem 2 this is sound even when every node
// uses a different view.
package core

import (
	"sort"

	"adhocbcast/internal/view"
)

// Covered evaluates the generic coverage condition for the view's owner v:
// v may take non-forward status iff for every pair of its neighbors u, w a
// replacement path exists connecting u and w whose intermediate nodes (if
// any) all have priority higher than Pr(v).
//
// The evaluation contracts the subgraph H induced by higher-priority nodes
// into connected components (all known visited nodes count as one component,
// since visited nodes are connected through the source under any view) and
// then checks each neighbor pair for a direct link or a shared adjacent
// component. The pair relation is deliberately not transitively closed:
// a lower-priority neighbor may be a path endpoint but never an
// intermediate.
func Covered(lv *view.Local) bool {
	return withEvaluator(lv.N(), func(ev *Evaluator) bool { return ev.Covered(lv) })
}

// CoveredWithoutVisitedUnion is the generic coverage condition evaluated
// WITHOUT the assumption that all visited nodes are connected through the
// source: visited nodes only join a replacement path through links actually
// visible in the view. It exists for ablation — quantifying how much of the
// condition's pruning power comes from the visited-union assumption
// (Figure 6(b) in the paper) — and remains sound, merely more conservative.
func CoveredWithoutVisitedUnion(lv *view.Local) bool {
	return withEvaluator(lv.N(), func(ev *Evaluator) bool {
		return ev.CoveredWithoutVisitedUnion(lv)
	})
}

// StrongCovered evaluates the strong coverage condition: v may take
// non-forward status iff some single connected component of the
// higher-priority subgraph H dominates N(v) (every neighbor is in the
// component or adjacent to it). It implies the generic condition and is the
// cheaper O(D^2) check used by Rule-k and LENWB style protocols.
func StrongCovered(lv *view.Local) bool {
	return withEvaluator(lv.N(), func(ev *Evaluator) bool { return ev.StrongCovered(lv) })
}

// StrongCoveredRestricted is the strong coverage condition with the
// coverage set restricted to nodes within maxDist hops of the owner (in the
// view's topology). It models the paper's restricted Rule-k implementation:
// with 2-hop information the coverage nodes must be neighbors (maxDist 1),
// with 3-hop information they may be neighbors' neighbors (maxDist 2). The
// coverage nodes must be self-connected, i.e. connected using only nodes of
// the restricted set.
func StrongCoveredRestricted(lv *view.Local, maxDist int) bool {
	return withEvaluator(lv.N(), func(ev *Evaluator) bool {
		return ev.StrongCoveredRestricted(lv, maxDist)
	})
}

// sortDedup sorts a in place and removes duplicates.
func sortDedup(a *[]int) {
	s := *a
	sort.Ints(s)
	out := s[:0]
	for i, x := range s {
		if i == 0 || x != s[i-1] {
			out = append(out, x)
		}
	}
	*a = out
}

func intersectSorted(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}
