// Package core implements the paper's primary contribution: the generic
// coverage condition of Section 3 deciding when a node may take non-forward
// status, the strong coverage condition of Section 6, the restricted
// conditions used by the special-case protocols (Span, Wu-Li, SBA, LENWB),
// and the MAX_MIN maximal-replacement-path procedure of Definition 1.
//
// All conditions are evaluated against a node's local view (topology plus
// known broadcast state); by Theorem 2 this is sound even when every node
// uses a different view.
package core

import (
	"adhocbcast/internal/graph"
	"adhocbcast/internal/view"
)

// Covered evaluates the generic coverage condition for the view's owner v:
// v may take non-forward status iff for every pair of its neighbors u, w a
// replacement path exists connecting u and w whose intermediate nodes (if
// any) all have priority higher than Pr(v).
//
// The evaluation contracts the subgraph H induced by higher-priority nodes
// into connected components (all known visited nodes count as one component,
// since visited nodes are connected through the source under any view) and
// then checks each neighbor pair for a direct link or a shared adjacent
// component. The pair relation is deliberately not transitively closed:
// a lower-priority neighbor may be a path endpoint but never an
// intermediate.
func Covered(lv *view.Local) bool {
	return covered(lv, true)
}

// CoveredWithoutVisitedUnion is the generic coverage condition evaluated
// WITHOUT the assumption that all visited nodes are connected through the
// source: visited nodes only join a replacement path through links actually
// visible in the view. It exists for ablation — quantifying how much of the
// condition's pruning power comes from the visited-union assumption
// (Figure 6(b) in the paper) — and remains sound, merely more conservative.
func CoveredWithoutVisitedUnion(lv *view.Local) bool {
	return covered(lv, false)
}

func covered(lv *view.Local, mergeVisited bool) bool {
	v := lv.Owner
	nbrs := lv.G.Neighbors(v)
	if len(nbrs) <= 1 {
		return true
	}
	inH, uf := higherComponents(lv, mergeVisited)

	comps := make([][]int, len(nbrs))
	for i, u := range nbrs {
		comps[i] = componentSet(lv, inH, uf, u)
	}
	for i := 0; i < len(nbrs); i++ {
		for j := i + 1; j < len(nbrs); j++ {
			if lv.G.HasEdge(nbrs[i], nbrs[j]) {
				continue
			}
			if !intersectSorted(comps[i], comps[j]) {
				return false
			}
		}
	}
	return true
}

// StrongCovered evaluates the strong coverage condition: v may take
// non-forward status iff some single connected component of the
// higher-priority subgraph H dominates N(v) (every neighbor is in the
// component or adjacent to it). It implies the generic condition and is the
// cheaper O(D^2) check used by Rule-k and LENWB style protocols.
func StrongCovered(lv *view.Local) bool {
	nbrs := lv.G.Neighbors(lv.Owner)
	if len(nbrs) == 0 {
		return true
	}
	inH, uf := higherComponents(lv, true)
	return dominatingComponent(lv, nbrs, inH, uf)
}

// StrongCoveredRestricted is the strong coverage condition with the
// coverage set restricted to nodes within maxDist hops of the owner (in the
// view's topology). It models the paper's restricted Rule-k implementation:
// with 2-hop information the coverage nodes must be neighbors (maxDist 1),
// with 3-hop information they may be neighbors' neighbors (maxDist 2). The
// coverage nodes must be self-connected, i.e. connected using only nodes of
// the restricted set.
func StrongCoveredRestricted(lv *view.Local, maxDist int) bool {
	v := lv.Owner
	nbrs := lv.G.Neighbors(v)
	if len(nbrs) == 0 {
		return true
	}
	prv := lv.Pr[v]
	n := lv.G.N()
	dist := lv.G.BFSDistances(v)
	inH := make([]bool, n)
	for x := 0; x < n; x++ {
		if x != v && lv.Visible[x] && dist[x] >= 1 && dist[x] <= maxDist && lv.Pr[x].Greater(prv) {
			inH[x] = true
		}
	}
	uf := graph.NewUnionFind(n)
	firstVisited := -1
	for x := 0; x < n; x++ {
		if !inH[x] {
			continue
		}
		if lv.Pr[x].Status == view.Visited {
			if firstVisited < 0 {
				firstVisited = x
			} else {
				uf.Union(firstVisited, x)
			}
		}
		lv.G.ForEachNeighbor(x, func(y int) {
			if y > x && inH[y] {
				uf.Union(x, y)
			}
		})
	}
	return dominatingComponent(lv, nbrs, inH, uf)
}

// dominatingComponent reports whether some single component of the
// restricted set dominates nbrs.
func dominatingComponent(lv *view.Local, nbrs []int, inH []bool, uf *graph.UnionFind) bool {
	idx := make(map[int]int, len(nbrs))
	for i, u := range nbrs {
		idx[u] = i
	}
	covered := make(map[int]*graph.Bitset)
	mark := func(root, nbr int) {
		bs := covered[root]
		if bs == nil {
			bs = graph.NewBitset(len(nbrs))
			covered[root] = bs
		}
		bs.Set(nbr)
	}
	for x := 0; x < lv.G.N(); x++ {
		if !inH[x] {
			continue
		}
		root := uf.Find(x)
		if i, ok := idx[x]; ok {
			mark(root, i)
		}
		lv.G.ForEachNeighbor(x, func(y int) {
			if i, ok := idx[y]; ok {
				mark(root, i)
			}
		})
	}
	for _, bs := range covered {
		if bs.Count() == len(nbrs) {
			return true
		}
	}
	return false
}

// higherComponents computes membership of the higher-priority subgraph H
// (every visible node other than the owner with priority above the owner's)
// and a union-find contracting H's connected components. When mergeVisited
// is set, all visited nodes count as one component (they are connected
// through the source under any view).
func higherComponents(lv *view.Local, mergeVisited bool) ([]bool, *graph.UnionFind) {
	v := lv.Owner
	prv := lv.Pr[v]
	n := lv.G.N()
	inH := make([]bool, n)
	for x := 0; x < n; x++ {
		if x != v && lv.Visible[x] && lv.Pr[x].Greater(prv) {
			inH[x] = true
		}
	}
	uf := graph.NewUnionFind(n)
	firstVisited := -1
	for x := 0; x < n; x++ {
		if !inH[x] {
			continue
		}
		if mergeVisited && lv.Pr[x].Status == view.Visited {
			if firstVisited < 0 {
				firstVisited = x
			} else {
				uf.Union(firstVisited, x)
			}
		}
		lv.G.ForEachNeighbor(x, func(y int) {
			if y > x && inH[y] {
				uf.Union(x, y)
			}
		})
	}
	return inH, uf
}

// componentSet returns the sorted set of H-component roots through which
// node u can be reached: u's own component if u is in H, otherwise the
// components of u's H-neighbors.
func componentSet(lv *view.Local, inH []bool, uf *graph.UnionFind, u int) []int {
	var roots []int
	if inH[u] {
		roots = append(roots, uf.Find(u))
	} else {
		lv.G.ForEachNeighbor(u, func(y int) {
			if inH[y] {
				roots = append(roots, uf.Find(y))
			}
		})
	}
	sortDedup(&roots)
	return roots
}

func sortDedup(a *[]int) {
	s := *a
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	out := s[:0]
	for i, x := range s {
		if i == 0 || x != s[i-1] {
			out = append(out, x)
		}
	}
	*a = out
}

func intersectSorted(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}
