package core_test

import (
	"fmt"

	"adhocbcast/internal/core"
	"adhocbcast/internal/graph"
	"adhocbcast/internal/view"
)

// The coverage condition in one picture: node 0's two neighbors are joined
// through a higher-priority chain, so node 0 may stay silent during a
// broadcast; node 3 (the highest priority) may not.
func ExampleCovered() {
	g := graph.New(4)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			panic(err)
		}
	}
	base := view.BasePriorities(g, view.MetricID)
	for v := 0; v < 4; v++ {
		lv := view.NewLocal(g, v, 2, base)
		fmt.Printf("node %d covered: %v\n", v, core.Covered(lv))
	}
	// Node 2's neighbors {0,3} would need an intermediate above priority 2,
	// and only node 1 (priority 1) is available: not covered.
	//
	// Output:
	// node 0 covered: true
	// node 1 covered: true
	// node 2 covered: false
	// node 3 covered: false
}

// MAX_MIN builds the maximal replacement path of Definition 1: the
// bottleneck-optimal connection between two neighbors of the pruned node.
func ExampleMaxMinPath() {
	// Two candidate paths between node 0's neighbors 1 and 2: through 3, or
	// through the higher-priority chain 4-5. MAX_MIN prefers the latter.
	g := graph.New(6)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {3, 2}, {1, 4}, {4, 5}, {5, 2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			panic(err)
		}
	}
	lv := view.NewLocal(g, 0, 0, view.BasePriorities(g, view.MetricID))
	path, ok := core.MaxMinPath(lv, 1, 2)
	fmt.Println(ok, path)
	// Output:
	// true [4 5]
}
