package core_test

import (
	"testing"

	"adhocbcast/internal/core"
	"adhocbcast/internal/view"
)

// refCovered is a deliberately slow, independent reference for the generic
// coverage condition: label the higher-priority subgraph H by BFS, optionally
// merge every visited-containing component (the visited-union assumption),
// and check each neighbor pair for a direct link or a shared adjacent
// component. It shares no code with the Evaluator beyond the view types.
func refCovered(lv *view.Local, union bool) bool {
	v := lv.Owner
	nbrs := lv.Neighbors()
	if len(nbrs) <= 1 {
		return true
	}
	n := lv.N()
	inH := make([]bool, n)
	for x := 0; x < n; x++ {
		inH[x] = x != v && lv.IsVisible(x) && lv.Pr(x).Greater(lv.Pr(v))
	}
	label := make([]int, n)
	for i := range label {
		label[i] = -1
	}
	next := 0
	for x := 0; x < n; x++ {
		if !inH[x] || label[x] >= 0 {
			continue
		}
		label[x] = next
		queue := []int{x}
		for len(queue) > 0 {
			y := queue[0]
			queue = queue[1:]
			lv.ForEachNeighbor(y, func(z int) {
				if inH[z] && label[z] < 0 {
					label[z] = next
					queue = append(queue, z)
				}
			})
		}
		next++
	}
	if union {
		// All visited nodes count as one component (they are connected
		// through the source under any view): relabel every component
		// containing a visited member to a shared super-label.
		super := -1
		mergeable := make(map[int]bool)
		for x := 0; x < n; x++ {
			if inH[x] && lv.Pr(x).Status == view.Visited {
				mergeable[label[x]] = true
				if super < 0 {
					super = label[x]
				}
			}
		}
		if super >= 0 {
			for x := 0; x < n; x++ {
				if label[x] >= 0 && mergeable[label[x]] {
					label[x] = super
				}
			}
		}
	}
	compSet := func(u int) map[int]bool {
		set := make(map[int]bool)
		if inH[u] {
			set[label[u]] = true
			return set
		}
		lv.ForEachNeighbor(u, func(y int) {
			if inH[y] {
				set[label[y]] = true
			}
		})
		return set
	}
	for i := 0; i < len(nbrs); i++ {
		for j := i + 1; j < len(nbrs); j++ {
			if lv.HasEdge(nbrs[i], nbrs[j]) {
				continue
			}
			shared := false
			cj := compSet(nbrs[j])
			for c := range compSet(nbrs[i]) {
				if cj[c] {
					shared = true
					break
				}
			}
			if !shared {
				return false
			}
		}
	}
	return true
}

// FuzzEvaluatorMatchesReference cross-checks the allocation-free Evaluator —
// both a fresh instance and one reused dirty across every fuzz input, the
// way a simulation reuses it across node decisions — against the slow
// reference on randomized graphs, views, and broadcast states. It pins two
// properties at once: the dense scratch bookkeeping computes the same
// condition as the naive definition, and every evaluation leaves the scratch
// neutral.
func FuzzEvaluatorMatchesReference(f *testing.F) {
	f.Add([]byte{5, 0, 2, 0, 1, 1, 2, 2, 3, 0xff, 1})
	f.Add([]byte{14, 3, 1, 0, 1, 0, 2, 0, 3, 1, 2})
	f.Add([]byte{9, 2, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 0xff, 3, 5})
	f.Add([]byte{2, 1, 0})
	reused := core.NewEvaluator(1)
	f.Fuzz(func(t *testing.T, data []byte) {
		g, owner, hops, marks := decodeGraph(data)
		if g == nil {
			return
		}
		for _, metric := range []view.Metric{view.MetricID, view.MetricDegree} {
			lv := view.NewLocal(g, owner, hops, view.BasePriorities(g, metric))
			ownerMarked := false
			for i, x := range marks {
				if x == owner {
					ownerMarked = true
					break
				}
				// Mix visited and designated marks so the 1.5-status
				// priority level is exercised too.
				if i%3 == 2 {
					lv.MarkDesignated(x)
				} else {
					lv.MarkVisited(x)
				}
			}
			if ownerMarked {
				continue
			}
			fresh := core.NewEvaluator(g.N())
			for _, union := range []bool{true, false} {
				want := refCovered(lv, union)
				check := func(kind string, got bool) {
					if got != want {
						t.Fatalf("%s covered(union=%v) = %v, reference says %v (owner %d, hops %d, metric %v)",
							kind, union, got, want, owner, hops, metric)
					}
				}
				if union {
					check("fresh", fresh.Covered(lv))
					check("reused", reused.Covered(lv))
					check("stateless", core.Covered(lv))
				} else {
					check("fresh", fresh.CoveredWithoutVisitedUnion(lv))
					check("reused", reused.CoveredWithoutVisitedUnion(lv))
					check("stateless", core.CoveredWithoutVisitedUnion(lv))
				}
			}
			// The strong condition has no independent reference here, but
			// reused-vs-fresh equality still pins scratch neutrality.
			if fresh.StrongCovered(lv) != reused.StrongCovered(lv) {
				t.Fatalf("strong covered differs between fresh and reused evaluator (owner %d)", owner)
			}
		}
	})
}
