package core

import (
	"sync"

	"adhocbcast/internal/graph"
	"adhocbcast/internal/view"
)

// Evaluator evaluates the coverage conditions with reusable scratch state.
// The stateless entry points (Covered, StrongCovered, ...) allocate a fresh
// H-membership slice, union-find, component-root map and per-neighbor root
// slices on every call; inside a simulation those conditions run once per
// node decision per receipt, so the churn dominates the allocation profile.
// A simulation holds one Evaluator (see sim.Network.Evaluator) and reuses
// its buffers across all node decisions of the run.
//
// An Evaluator is NOT safe for concurrent use; concurrent simulations must
// each hold their own. Every evaluation leaves the scratch fully neutral, so
// results never depend on what the evaluator computed before — the
// equivalence with the stateless functions is asserted by tests.
type Evaluator struct {
	n     int
	inH   []bool
	uf    *graph.UnionFind
	comps [][]int // per-neighbor H-component root sets
	dist  []int   // BFS scratch for the restricted condition
	queue []int

	// Dense replacement for the root -> covered-neighbor map of the
	// dominating-component check: nbrIdx inverts the neighbor list, rowOf
	// maps a component root to an active coverage row, rows/rowCnt hold the
	// per-root coverage bitsets and their cardinalities, and touched lists
	// the roots to clean up afterwards.
	nbrIdx  []int
	rowOf   []int
	rows    []*graph.Bitset
	rowCnt  []int
	touched []int
}

// NewEvaluator returns an evaluator sized for graphs of up to n nodes. It
// grows automatically if handed a larger view.
func NewEvaluator(n int) *Evaluator {
	ev := &Evaluator{}
	ev.ensure(n)
	return ev
}

func (ev *Evaluator) ensure(n int) {
	if n <= ev.n {
		return
	}
	ev.n = n
	ev.inH = make([]bool, n)
	ev.uf = graph.NewUnionFind(n)
	ev.dist = make([]int, n)
	ev.queue = make([]int, 0, n)
	ev.nbrIdx = make([]int, n)
	ev.rowOf = make([]int, n)
	for i := 0; i < n; i++ {
		ev.nbrIdx[i] = -1
		ev.rowOf[i] = -1
	}
	ev.rows = nil
	ev.rowCnt = nil
	ev.touched = ev.touched[:0]
}

// Covered is the generic coverage condition of Section 3 (see the package
// function Covered) evaluated with this evaluator's scratch.
func (ev *Evaluator) Covered(lv *view.Local) bool {
	return ev.covered(lv, true)
}

// CoveredWithoutVisitedUnion is the ablation variant without the
// visited-nodes-are-connected assumption.
func (ev *Evaluator) CoveredWithoutVisitedUnion(lv *view.Local) bool {
	return ev.covered(lv, false)
}

func (ev *Evaluator) covered(lv *view.Local, mergeVisited bool) bool {
	v := lv.Owner
	nbrs := lv.G.Neighbors(v)
	if len(nbrs) <= 1 {
		return true
	}
	ev.ensure(lv.G.N())
	ev.higherComponents(lv, mergeVisited)

	for len(ev.comps) < len(nbrs) {
		ev.comps = append(ev.comps, nil)
	}
	for i, u := range nbrs {
		ev.comps[i] = ev.componentSet(lv, u, ev.comps[i][:0])
	}
	for i := 0; i < len(nbrs); i++ {
		for j := i + 1; j < len(nbrs); j++ {
			if lv.G.HasEdge(nbrs[i], nbrs[j]) {
				continue
			}
			if !intersectSorted(ev.comps[i], ev.comps[j]) {
				return false
			}
		}
	}
	return true
}

// StrongCovered is the strong coverage condition of Section 6 evaluated with
// this evaluator's scratch.
func (ev *Evaluator) StrongCovered(lv *view.Local) bool {
	nbrs := lv.G.Neighbors(lv.Owner)
	if len(nbrs) == 0 {
		return true
	}
	ev.ensure(lv.G.N())
	ev.higherComponents(lv, true)
	return ev.dominating(lv, nbrs)
}

// StrongCoveredRestricted is the strong coverage condition with coverage
// nodes restricted to maxDist hops of the owner, evaluated with this
// evaluator's scratch.
func (ev *Evaluator) StrongCoveredRestricted(lv *view.Local, maxDist int) bool {
	v := lv.Owner
	nbrs := lv.G.Neighbors(v)
	if len(nbrs) == 0 {
		return true
	}
	ev.ensure(lv.G.N())
	prv := lv.Pr[v]
	n := lv.G.N()
	ev.bfsDistances(lv.G, v, n)
	for x := 0; x < n; x++ {
		ev.inH[x] = x != v && lv.Visible[x] &&
			ev.dist[x] >= 1 && ev.dist[x] <= maxDist && lv.Pr[x].Greater(prv)
	}
	ev.contract(lv, n, true)
	return ev.dominating(lv, nbrs)
}

// higherComponents fills ev.inH with the membership of the higher-priority
// subgraph H and contracts H's connected components into ev.uf.
func (ev *Evaluator) higherComponents(lv *view.Local, mergeVisited bool) {
	v := lv.Owner
	prv := lv.Pr[v]
	n := lv.G.N()
	for x := 0; x < n; x++ {
		ev.inH[x] = x != v && lv.Visible[x] && lv.Pr[x].Greater(prv)
	}
	ev.contract(lv, n, mergeVisited)
}

// contract unions H members along view edges (and all visited members into
// one component when mergeVisited is set), resetting ev.uf first.
func (ev *Evaluator) contract(lv *view.Local, n int, mergeVisited bool) {
	ev.uf.Reset()
	firstVisited := -1
	for x := 0; x < n; x++ {
		if !ev.inH[x] {
			continue
		}
		if mergeVisited && lv.Pr[x].Status == view.Visited {
			if firstVisited < 0 {
				firstVisited = x
			} else {
				ev.uf.Union(firstVisited, x)
			}
		}
		lv.G.ForEachNeighbor(x, func(y int) {
			if y > x && ev.inH[y] {
				ev.uf.Union(x, y)
			}
		})
	}
}

// componentSet appends the sorted, deduplicated H-component roots through
// which node u can be reached to dst and returns it.
func (ev *Evaluator) componentSet(lv *view.Local, u int, dst []int) []int {
	if ev.inH[u] {
		dst = append(dst, ev.uf.Find(u))
	} else {
		lv.G.ForEachNeighbor(u, func(y int) {
			if ev.inH[y] {
				dst = append(dst, ev.uf.Find(y))
			}
		})
	}
	sortDedup(&dst)
	return dst
}

// dominating reports whether some single component of the set in ev.inH /
// ev.uf dominates nbrs (every neighbor in the component or adjacent to it).
// It replaces the map-based bookkeeping of the stateless path with dense
// rows indexed by component root, counting coverage incrementally so a full
// row short-circuits without a final counting pass.
func (ev *Evaluator) dominating(lv *view.Local, nbrs []int) bool {
	n := lv.G.N()
	for i, u := range nbrs {
		ev.nbrIdx[u] = i
	}
	full := false
	mark := func(root, i int) {
		r := ev.rowOf[root]
		if r < 0 {
			r = len(ev.touched)
			if r == len(ev.rows) {
				ev.rows = append(ev.rows, graph.NewBitset(ev.n))
				ev.rowCnt = append(ev.rowCnt, 0)
			}
			ev.rows[r].Reset()
			ev.rowCnt[r] = 0
			ev.rowOf[root] = r
			ev.touched = append(ev.touched, root)
		}
		if !ev.rows[r].Has(i) {
			ev.rows[r].Set(i)
			ev.rowCnt[r]++
			if ev.rowCnt[r] == len(nbrs) {
				full = true
			}
		}
	}
	for x := 0; x < n && !full; x++ {
		if !ev.inH[x] {
			continue
		}
		root := ev.uf.Find(x)
		if i := ev.nbrIdx[x]; i >= 0 {
			mark(root, i)
		}
		lv.G.ForEachNeighbor(x, func(y int) {
			if i := ev.nbrIdx[y]; i >= 0 {
				mark(root, i)
			}
		})
	}
	for _, u := range nbrs {
		ev.nbrIdx[u] = -1
	}
	for _, root := range ev.touched {
		ev.rowOf[root] = -1
	}
	ev.touched = ev.touched[:0]
	return full
}

// bfsDistances fills ev.dist[:n] with hop distances from src over g (-1 for
// unreachable nodes) without allocating.
func (ev *Evaluator) bfsDistances(g *graph.Graph, src, n int) {
	for i := 0; i < n; i++ {
		ev.dist[i] = -1
	}
	ev.dist[src] = 0
	queue := append(ev.queue[:0], src)
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		g.ForEachNeighbor(x, func(y int) {
			if ev.dist[y] < 0 {
				ev.dist[y] = ev.dist[x] + 1
				queue = append(queue, y)
			}
		})
	}
}

// evalPool backs the stateless package functions so one-shot callers also
// avoid rebuilding scratch per call.
var evalPool = sync.Pool{New: func() any { return &Evaluator{} }}

func withEvaluator(n int, f func(ev *Evaluator) bool) bool {
	ev := evalPool.Get().(*Evaluator)
	ev.ensure(n)
	ok := f(ev)
	evalPool.Put(ev)
	return ok
}
