package core

import (
	"sync"

	"adhocbcast/internal/graph"
	"adhocbcast/internal/view"
)

// Evaluator evaluates the coverage conditions with reusable scratch state.
// The stateless entry points (Covered, StrongCovered, ...) borrow a pooled
// evaluator per call; inside a simulation those conditions run once per node
// decision per receipt, so a simulation holds one Evaluator (see
// sim.Network.Evaluator) and reuses its buffers across all node decisions of
// the run.
//
// Evaluations are member-driven: all work is proportional to the size of the
// view's member set Nk(owner), not to the total node count n. The only
// n-sized structures are flat index arrays (member index, H membership, BFS
// distances, union-find) whose touched entries are restored after every
// evaluation, so an evaluator shared by a million-node run costs O(n) memory
// once and O(|Nk|·deg) time per decision.
//
// An Evaluator is NOT safe for concurrent use; concurrent simulations must
// each hold their own. Every evaluation restores its scratch before
// returning, so results never depend on what the evaluator computed before —
// the equivalence with the stateless functions is asserted by tests.
type Evaluator struct {
	n        int
	memIdx   []int32 // global id -> member index + 1; 0 = not a member
	inH      []bool  // H membership, global-indexed
	hMembers []int   // members of H in ascending global-id order
	uf       *graph.UnionFind
	comps    [][]int // per-neighbor H-component root sets
	dist     []int32 // BFS scratch for the restricted condition, -1 idle
	queue    []int
	nbrs     []int // owner neighbor scratch

	// Dense replacement for the root -> covered-neighbor map of the
	// dominating-component check: nbrIdx inverts the neighbor list, rowOf
	// maps a component root to an active coverage row, rows/rowCnt hold the
	// per-root coverage bitsets and their cardinalities, and touched lists
	// the roots to clean up afterwards.
	nbrIdx  []int
	rowOf   []int
	rows    []*graph.Bitset
	rowCnt  []int
	touched []int
}

// NewEvaluator returns an evaluator sized for graphs of up to n nodes. It
// grows automatically if handed a larger view.
func NewEvaluator(n int) *Evaluator {
	ev := &Evaluator{}
	ev.ensure(n)
	return ev
}

func (ev *Evaluator) ensure(n int) {
	if n <= ev.n {
		return
	}
	ev.n = n
	ev.memIdx = make([]int32, n)
	ev.inH = make([]bool, n)
	ev.uf = graph.NewUnionFind(n)
	ev.dist = make([]int32, n)
	for i := range ev.dist {
		ev.dist[i] = -1
	}
	ev.queue = make([]int, 0, 64)
	ev.nbrIdx = make([]int, n)
	ev.rowOf = make([]int, n)
	for i := 0; i < n; i++ {
		ev.nbrIdx[i] = -1
		ev.rowOf[i] = -1
	}
	ev.rows = nil
	ev.rowCnt = nil
	ev.touched = ev.touched[:0]
}

// begin indexes the view's members into the dense memIdx array so that
// membership tests and fringe lookups during the evaluation are O(1).
func (ev *Evaluator) begin(lv *view.Local) {
	ev.ensure(lv.N())
	for i, x := range lv.Members() {
		ev.memIdx[x] = int32(i + 1)
	}
	ev.hMembers = ev.hMembers[:0]
}

// end restores the scratch touched by begin and the H computation.
func (ev *Evaluator) end(lv *view.Local) {
	for _, x := range lv.Members() {
		ev.memIdx[x] = 0
	}
	for _, x := range ev.hMembers {
		ev.inH[x] = false
	}
	ev.hMembers = ev.hMembers[:0]
}

// fringeOf reports whether member x (which MUST be a member) is on the
// view's fringe.
func (ev *Evaluator) fringeOf(lv *view.Local, x int) bool {
	return lv.FringeAt(int(ev.memIdx[x]) - 1)
}

// ownerNeighbors fills ev.nbrs with the owner's view neighbors. The owner is
// at distance 0 and never on the fringe, so these are exactly its topology
// neighbors that are members.
func (ev *Evaluator) ownerNeighbors(lv *view.Local) []int {
	ev.nbrs = ev.nbrs[:0]
	lv.Topo().ForEachNeighbor(lv.Owner, func(y int) {
		if ev.memIdx[y] != 0 {
			ev.nbrs = append(ev.nbrs, y)
		}
	})
	return ev.nbrs
}

// Covered is the generic coverage condition of Section 3 (see the package
// function Covered) evaluated with this evaluator's scratch.
func (ev *Evaluator) Covered(lv *view.Local) bool {
	return ev.coveredOuter(lv, true)
}

// CoveredWithoutVisitedUnion is the ablation variant without the
// visited-nodes-are-connected assumption.
func (ev *Evaluator) CoveredWithoutVisitedUnion(lv *view.Local) bool {
	return ev.coveredOuter(lv, false)
}

func (ev *Evaluator) coveredOuter(lv *view.Local, mergeVisited bool) bool {
	ev.begin(lv)
	ok := ev.covered(lv, mergeVisited)
	ev.end(lv)
	return ok
}

func (ev *Evaluator) covered(lv *view.Local, mergeVisited bool) bool {
	nbrs := ev.ownerNeighbors(lv)
	if len(nbrs) <= 1 {
		return true
	}
	ev.higherComponents(lv, mergeVisited)

	for len(ev.comps) < len(nbrs) {
		ev.comps = append(ev.comps, nil)
	}
	for i, u := range nbrs {
		ev.comps[i] = ev.componentSet(lv, u, ev.comps[i][:0])
	}
	for i := 0; i < len(nbrs); i++ {
		for j := i + 1; j < len(nbrs); j++ {
			if lv.HasEdge(nbrs[i], nbrs[j]) {
				continue
			}
			if !intersectSorted(ev.comps[i], ev.comps[j]) {
				return false
			}
		}
	}
	return true
}

// StrongCovered is the strong coverage condition of Section 6 evaluated with
// this evaluator's scratch.
func (ev *Evaluator) StrongCovered(lv *view.Local) bool {
	ev.begin(lv)
	nbrs := ev.ownerNeighbors(lv)
	ok := true
	if len(nbrs) > 0 {
		ev.higherComponents(lv, true)
		ok = ev.dominating(lv, nbrs)
	}
	ev.end(lv)
	return ok
}

// StrongCoveredRestricted is the strong coverage condition with coverage
// nodes restricted to maxDist hops of the owner, evaluated with this
// evaluator's scratch.
func (ev *Evaluator) StrongCoveredRestricted(lv *view.Local, maxDist int) bool {
	ev.begin(lv)
	v := lv.Owner
	nbrs := ev.ownerNeighbors(lv)
	ok := true
	if len(nbrs) > 0 {
		prv := lv.Pr(v)
		// View-BFS bounded to maxDist: nodes farther than maxDist cannot
		// enter H, so distances beyond the bound are never needed.
		ev.viewDistances(lv, v, maxDist)
		for i, x32 := range lv.Members() {
			x := int(x32)
			if x != v && ev.dist[x] >= 1 && lv.PrAt(i).Greater(prv) {
				ev.inH[x] = true
				ev.hMembers = append(ev.hMembers, x)
			}
		}
		for _, x := range ev.queue {
			ev.dist[x] = -1
		}
		ev.contract(lv, true)
		ok = ev.dominating(lv, nbrs)
	}
	ev.end(lv)
	return ok
}

// higherComponents fills ev.inH/ev.hMembers with the membership of the
// higher-priority subgraph H and contracts H's connected components into
// ev.uf.
func (ev *Evaluator) higherComponents(lv *view.Local, mergeVisited bool) {
	v := lv.Owner
	prv := lv.Pr(v)
	for i, x32 := range lv.Members() {
		x := int(x32)
		if x != v && lv.PrAt(i).Greater(prv) {
			ev.inH[x] = true
			ev.hMembers = append(ev.hMembers, x)
		}
	}
	ev.contract(lv, mergeVisited)
}

// contract unions H members along view edges (and all visited members into
// one component when mergeVisited is set), resetting their union-find
// entries first.
func (ev *Evaluator) contract(lv *view.Local, mergeVisited bool) {
	ev.uf.ResetSubset(ev.hMembers)
	topo := lv.Topo()
	firstVisited := -1
	for _, x := range ev.hMembers {
		xi := int(ev.memIdx[x]) - 1
		if mergeVisited && lv.StatusAt(xi) == view.Visited {
			if firstVisited < 0 {
				firstVisited = x
			} else {
				ev.uf.Union(firstVisited, x)
			}
		}
		xf := lv.FringeAt(xi)
		topo.ForEachNeighbor(x, func(y int) {
			if y > x && ev.inH[y] && !(xf && ev.fringeOf(lv, y)) {
				ev.uf.Union(x, y)
			}
		})
	}
}

// componentSet appends the sorted, deduplicated H-component roots through
// which node u (a member) can be reached to dst and returns it.
func (ev *Evaluator) componentSet(lv *view.Local, u int, dst []int) []int {
	if ev.inH[u] {
		dst = append(dst, ev.uf.Find(u))
	} else {
		uf := ev.fringeOf(lv, u)
		lv.Topo().ForEachNeighbor(u, func(y int) {
			if ev.inH[y] && !(uf && ev.fringeOf(lv, y)) {
				dst = append(dst, ev.uf.Find(y))
			}
		})
	}
	sortDedup(&dst)
	return dst
}

// dominating reports whether some single component of the set in ev.inH /
// ev.uf dominates nbrs (every neighbor in the component or adjacent to it).
// It replaces the map-based bookkeeping of the stateless path with dense
// rows indexed by component root, counting coverage incrementally so a full
// row short-circuits without a final counting pass.
func (ev *Evaluator) dominating(lv *view.Local, nbrs []int) bool {
	for i, u := range nbrs {
		ev.nbrIdx[u] = i
	}
	full := false
	mark := func(root, i int) {
		r := ev.rowOf[root]
		if r < 0 {
			r = len(ev.touched)
			if r == len(ev.rows) {
				ev.rows = append(ev.rows, graph.NewBitset(len(nbrs)))
				ev.rowCnt = append(ev.rowCnt, 0)
			}
			if ev.rows[r].Cap() < len(nbrs) {
				ev.rows[r] = graph.NewBitset(len(nbrs))
			}
			ev.rows[r].Reset()
			ev.rowCnt[r] = 0
			ev.rowOf[root] = r
			ev.touched = append(ev.touched, root)
		}
		if !ev.rows[r].Has(i) {
			ev.rows[r].Set(i)
			ev.rowCnt[r]++
			if ev.rowCnt[r] == len(nbrs) {
				full = true
			}
		}
	}
	topo := lv.Topo()
	for _, x := range ev.hMembers {
		if full {
			break
		}
		root := ev.uf.Find(x)
		if i := ev.nbrIdx[x]; i >= 0 {
			mark(root, i)
		}
		xf := ev.fringeOf(lv, x)
		topo.ForEachNeighbor(x, func(y int) {
			if i := ev.nbrIdx[y]; i >= 0 && !(xf && ev.fringeOf(lv, y)) {
				mark(root, i)
			}
		})
	}
	for _, u := range nbrs {
		ev.nbrIdx[u] = -1
	}
	for _, root := range ev.touched {
		ev.rowOf[root] = -1
	}
	ev.touched = ev.touched[:0]
	return full
}

// viewDistances fills ev.dist with hop distances from src over the view's
// edges, bounded to maxDist hops; untouched entries stay -1. ev.queue lists
// the touched nodes for cleanup. Must run between begin and end (it relies
// on memIdx).
func (ev *Evaluator) viewDistances(lv *view.Local, src, maxDist int) {
	ev.queue = ev.queue[:0]
	ev.dist[src] = 0
	ev.queue = append(ev.queue, src)
	topo := lv.Topo()
	for head := 0; head < len(ev.queue); head++ {
		x := ev.queue[head]
		d := ev.dist[x]
		if int(d) >= maxDist {
			continue
		}
		xf := ev.fringeOf(lv, x)
		topo.ForEachNeighbor(x, func(y int) {
			if ev.memIdx[y] == 0 || (xf && ev.fringeOf(lv, y)) {
				return
			}
			if ev.dist[y] < 0 {
				ev.dist[y] = d + 1
				ev.queue = append(ev.queue, y)
			}
		})
	}
}

// evalPool backs the stateless package functions so one-shot callers also
// avoid rebuilding scratch per call.
var evalPool = sync.Pool{New: func() any { return &Evaluator{} }}

func withEvaluator(n int, f func(ev *Evaluator) bool) bool {
	ev := evalPool.Get().(*Evaluator)
	ev.ensure(n)
	ok := f(ev)
	evalPool.Put(ev)
	return ok
}
