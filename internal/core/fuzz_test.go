package core_test

import (
	"testing"

	"adhocbcast/internal/core"
	"adhocbcast/internal/graph"
	"adhocbcast/internal/view"
)

// decodeGraph turns a fuzzer byte stream into a small graph, an owner, a
// view depth and visited marks. Every byte stream decodes to something
// valid, so the fuzzer explores the condition evaluators freely.
func decodeGraph(data []byte) (g *graph.Graph, owner, hops int, visited []int) {
	if len(data) < 3 {
		return nil, 0, 0, nil
	}
	n := 2 + int(data[0]%14) // 2..15 vertices
	owner = int(data[1]) % n
	hops = int(data[2]) % 4 // 0..3 (0 = global)
	g = graph.New(n)
	i := 3
	for ; i+1 < len(data); i += 2 {
		if data[i] == 0xff {
			i++
			break
		}
		u, v := int(data[i])%n, int(data[i+1])%n
		if u != v {
			// Vertices are in range by construction.
			_ = g.AddEdge(u, v)
		}
	}
	for ; i < len(data); i++ {
		visited = append(visited, int(data[i])%n)
	}
	return g, owner, hops, visited
}

// FuzzCoverageConditions exercises every condition evaluator on arbitrary
// graphs and broadcast states, checking that none panics and that the
// implication hierarchy holds: strong => generic, Span => generic,
// SBA => strong, without-union => with-union.
func FuzzCoverageConditions(f *testing.F) {
	f.Add([]byte{5, 0, 2, 0, 1, 1, 2, 2, 3, 0xff, 1})
	f.Add([]byte{14, 3, 1, 0, 1, 0, 2, 0, 3, 1, 2})
	f.Add([]byte{2, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, owner, hops, visited := decodeGraph(data)
		if g == nil {
			return
		}
		for _, metric := range []view.Metric{view.MetricID, view.MetricDegree} {
			lv := view.NewLocal(g, owner, hops, view.BasePriorities(g, metric))
			ownerVisited := false
			for _, x := range visited {
				if x == owner {
					ownerVisited = true
				}
				lv.MarkVisited(x)
			}
			if ownerVisited {
				continue
			}
			covered := core.Covered(lv)
			strong := core.StrongCovered(lv)
			span := core.SpanCovered(lv)
			sba := core.SBACovered(lv)
			noUnion := core.CoveredWithoutVisitedUnion(lv)
			if strong && !covered {
				t.Fatalf("strong => generic violated (owner %d)", owner)
			}
			if span && !covered {
				t.Fatalf("span => generic violated (owner %d)", owner)
			}
			if sba && !strong {
				t.Fatalf("sba => strong violated (owner %d)", owner)
			}
			if noUnion && !covered {
				t.Fatalf("no-union => with-union violated (owner %d)", owner)
			}
			for k := 1; k <= 2; k++ {
				if core.StrongCoveredRestricted(lv, k) && !strong {
					t.Fatalf("restricted(%d) => strong violated (owner %d)", k, owner)
				}
			}
		}
	})
}

// FuzzMaxMinPath checks that MAX_MIN never panics, agrees with the
// reachability predicate, and always returns structurally valid paths.
func FuzzMaxMinPath(f *testing.F) {
	f.Add([]byte{6, 0, 0, 0, 1, 0, 2, 1, 3, 2, 3, 3, 4})
	f.Add([]byte{3, 2, 1, 0, 1, 1, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, owner, hops, _ := decodeGraph(data)
		if g == nil {
			return
		}
		lv := view.NewLocal(g, owner, hops, view.BasePriorities(g, view.MetricID))
		nbrs := lv.Neighbors()
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				u, w := nbrs[i], nbrs[j]
				path, ok := core.MaxMinPath(lv, u, w)
				if ok != core.ReplacementPathExists(lv, u, w) {
					t.Fatalf("MaxMinPath ok=%v disagrees with ReplacementPathExists", ok)
				}
				if !ok {
					continue
				}
				prv := lv.Pr(lv.Owner)
				prev := u
				seen := map[int]bool{u: true, w: true}
				for _, x := range path {
					if seen[x] {
						t.Fatalf("repeated node %d in path %v", x, path)
					}
					seen[x] = true
					if !lv.Pr(x).Greater(prv) {
						t.Fatalf("low-priority intermediate %d in path %v", x, path)
					}
					if !lv.HasEdge(prev, x) {
						t.Fatalf("non-adjacent hop %d-%d in path %v", prev, x, path)
					}
					prev = x
				}
				if !lv.HasEdge(prev, w) {
					t.Fatalf("path %v does not reach %d", path, w)
				}
			}
		}
	})
}
