package core_test

import (
	"math/rand"
	"testing"

	"adhocbcast/internal/graph"
	"adhocbcast/internal/view"
)

// buildGraph constructs a graph from an edge list.
func buildGraph(t *testing.T, n int, edges [][2]int) *graph.Graph {
	t.Helper()
	g := graph.New(n)
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatalf("AddEdge(%v): %v", e, err)
		}
	}
	return g
}

// localView builds owner's k-hop view with the given metric.
func localView(t *testing.T, g *graph.Graph, owner, k int, m view.Metric) *view.Local {
	t.Helper()
	return view.NewLocal(g, owner, k, view.BasePriorities(g, m))
}

// randomConnectedGraph samples connected Erdős–Rényi graphs by rejection.
func randomConnectedGraph(t *testing.T, rng *rand.Rand, n int, p float64) *graph.Graph {
	t.Helper()
	for attempt := 0; attempt < 1000; attempt++ {
		g := graph.New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < p {
					if err := g.AddEdge(u, v); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		if g.Connected() {
			return g
		}
	}
	t.Fatalf("no connected graph found (n=%d p=%g)", n, p)
	return nil
}

// connectedVisitedSet grows a random connected set of visited nodes from a
// random seed node, matching the paper's assumption that all visited nodes
// are connected (through the source).
func connectedVisitedSet(rng *rand.Rand, g *graph.Graph, size int) []int {
	if size <= 0 {
		return nil
	}
	start := rng.Intn(g.N())
	visited := []int{start}
	inSet := map[int]bool{start: true}
	frontier := g.Neighbors(start)
	for len(visited) < size && len(frontier) > 0 {
		i := rng.Intn(len(frontier))
		v := frontier[i]
		frontier = append(frontier[:i], frontier[i+1:]...)
		if inSet[v] {
			continue
		}
		inSet[v] = true
		visited = append(visited, v)
		frontier = append(frontier, g.Neighbors(v)...)
	}
	return visited
}

// isCDS reports whether set is a connected dominating set of g.
func isCDS(g *graph.Graph, set []int) bool {
	if len(set) == 0 {
		return false
	}
	inSet := make([]bool, g.N())
	for _, v := range set {
		inSet[v] = true
	}
	for v := 0; v < g.N(); v++ {
		if inSet[v] {
			continue
		}
		dominated := false
		g.ForEachNeighbor(v, func(u int) {
			if inSet[u] {
				dominated = true
			}
		})
		if !dominated {
			return false
		}
	}
	induced := graph.New(g.N())
	for _, v := range set {
		g.ForEachNeighbor(v, func(u int) {
			if u > v && inSet[u] {
				_ = induced.AddEdge(v, u)
			}
		})
	}
	dist := induced.BFSDistances(set[0])
	for _, v := range set {
		if dist[v] < 0 {
			return false
		}
	}
	return true
}
