package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adhocbcast/internal/core"
	"adhocbcast/internal/view"
)

// TestTheorem1CDSQuick property-checks Theorem 1: under one (global) view,
// the set of forward nodes (nodes failing the coverage condition) plus the
// visited nodes forms a connected dominating set of any connected,
// non-complete graph.
func TestTheorem1CDSQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(t, rng, 4+rng.Intn(24), 0.2)
		if g.IsComplete() {
			return true // Theorem 1 excludes complete graphs
		}
		metric := []view.Metric{view.MetricID, view.MetricDegree, view.MetricNCR}[rng.Intn(3)]
		base := view.BasePriorities(g, metric)
		visited := connectedVisitedSet(rng, g, rng.Intn(5))
		isVisited := make(map[int]bool, len(visited))
		for _, x := range visited {
			isVisited[x] = true
		}
		var set []int
		for v := 0; v < g.N(); v++ {
			lv := view.NewLocal(g, v, 0, base) // one shared global view
			for _, x := range visited {
				lv.MarkVisited(x)
			}
			if isVisited[v] || !core.Covered(lv) {
				set = append(set, v)
			}
		}
		return isCDS(g, set)
	}
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(41))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestTheorem1StrongCDSQuick checks the same property for the strong
// coverage condition (which implies the generic one, so the resulting
// forward set is a superset and must also be a CDS).
func TestTheorem1StrongCDSQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(t, rng, 4+rng.Intn(24), 0.2)
		if g.IsComplete() {
			return true
		}
		base := view.BasePriorities(g, view.MetricID)
		var set []int
		for v := 0; v < g.N(); v++ {
			lv := view.NewLocal(g, v, 0, base)
			if !core.StrongCovered(lv) {
				set = append(set, v)
			}
		}
		return isCDS(g, set)
	}
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(43))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestTheorem2LocalViewsCDSQuick property-checks Theorem 2: when every node
// evaluates the coverage condition under its own distinct local view (random
// per-node depth, random per-node subsets of the visited-set knowledge), the
// forward plus visited nodes still form a CDS.
func TestTheorem2LocalViewsCDSQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(t, rng, 4+rng.Intn(24), 0.2)
		if g.IsComplete() {
			return true
		}
		metric := []view.Metric{view.MetricID, view.MetricDegree, view.MetricNCR}[rng.Intn(3)]
		base := view.BasePriorities(g, metric)
		visited := connectedVisitedSet(rng, g, rng.Intn(5))
		isVisited := make(map[int]bool, len(visited))
		for _, x := range visited {
			isVisited[x] = true
		}
		var set []int
		for v := 0; v < g.N(); v++ {
			hops := 1 + rng.Intn(4) // distinct view depth per node
			lv := view.NewLocal(g, v, hops, base)
			for _, x := range visited {
				if rng.Intn(2) == 0 { // each node knows a random subset
					lv.MarkVisited(x)
				}
			}
			if isVisited[v] || !core.Covered(lv) {
				set = append(set, v)
			}
		}
		return isCDS(g, set)
	}
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(47))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestTheorem2SupersetProperty checks the corollary stated after Theorem 2:
// the forward set under local views is a superset of the forward set under
// the global view.
func TestTheorem2SupersetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 50; trial++ {
		g := randomConnectedGraph(t, rng, 6+rng.Intn(20), 0.2)
		base := view.BasePriorities(g, view.MetricID)
		for v := 0; v < g.N(); v++ {
			global := view.NewLocal(g, v, 0, base)
			local := view.NewLocal(g, v, 2, base)
			if core.Covered(local) && !core.Covered(global) {
				t.Fatalf("trial %d node %d: forward under global view but pruned under local view", trial, v)
			}
		}
	}
}

// TestWuLiRulesImplyStrong checks that each Wu-Li pruning rule exhibits a
// coverage set, i.e. implies the strong coverage condition.
func TestWuLiRulesImplyStrong(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 80; trial++ {
		g := randomConnectedGraph(t, rng, 5+rng.Intn(15), 0.3)
		base := view.BasePriorities(g, view.MetricID)
		for v := 0; v < g.N(); v++ {
			lv := view.NewLocal(g, v, 3, base)
			if core.WuLiRule1(lv) || core.WuLiRule2(lv) {
				if !core.StrongCovered(lv) {
					t.Fatalf("trial %d node %d: Wu-Li rule held but strong coverage failed", trial, v)
				}
			}
			// An unmarked node has a fully meshed neighborhood: it is
			// always covered.
			if !core.WuLiMarked(lv) && !core.Covered(lv) {
				t.Fatalf("trial %d node %d: unmarked but not covered", trial, v)
			}
		}
	}
}

// TestLENWBImpliesCoveredWithVisitedSender checks that LENWB's condition,
// evaluated after marking the first sender visited (which is exactly the
// state a first-receipt node has), implies the generic coverage condition.
func TestLENWBImpliesCoveredWithVisitedSender(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 80; trial++ {
		g := randomConnectedGraph(t, rng, 5+rng.Intn(15), 0.3)
		base := view.BasePriorities(g, view.MetricDegree)
		for v := 0; v < g.N(); v++ {
			nbrs := g.Neighbors(v)
			if len(nbrs) == 0 {
				continue
			}
			from := nbrs[rng.Intn(len(nbrs))]
			lv := view.NewLocal(g, v, 2, base)
			lv.MarkVisited(from)
			if core.LENWBCovered(lv, from) && !core.Covered(lv) {
				t.Fatalf("trial %d node %d from %d: LENWB covered but generic condition failed", trial, v, from)
			}
		}
	}
}
