package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adhocbcast/internal/core"
	"adhocbcast/internal/graph"
	"adhocbcast/internal/view"
)

func TestMaxMinPathDirectEdge(t *testing.T) {
	g := buildGraph(t, 3, [][2]int{{0, 1}, {0, 2}, {1, 2}})
	lv := localView(t, g, 0, 2, view.MetricID)
	path, ok := core.MaxMinPath(lv, 1, 2)
	if !ok {
		t.Fatal("direct edge: no path found")
	}
	if len(path) != 0 {
		t.Fatalf("direct edge: intermediates %v, want none", path)
	}
}

func TestMaxMinPathNoPath(t *testing.T) {
	// Node 5's neighbors 3 and 4 can only be joined through lower-priority
	// nodes: MAX_MIN must report failure.
	g := buildGraph(t, 6, [][2]int{{5, 3}, {5, 4}, {3, 1}, {1, 2}, {2, 4}})
	lv := localView(t, g, 5, 0, view.MetricID)
	if _, ok := core.MaxMinPath(lv, 3, 4); ok {
		t.Fatal("found a replacement path through lower-priority intermediates")
	}
	if core.ReplacementPathExists(lv, 3, 4) {
		t.Fatal("ReplacementPathExists disagrees")
	}
}

func TestMaxMinPathPrefersHighBottleneck(t *testing.T) {
	// Owner 0, endpoints u=1 and w=2. Two candidate replacement paths:
	// through node 3 (bottleneck 3) or through nodes 4-5 (bottleneck 4).
	// The max-min path must use 4-5 even though it is longer.
	g := buildGraph(t, 6, [][2]int{
		{0, 1}, {0, 2},
		{1, 3}, {3, 2},
		{1, 4}, {4, 5}, {5, 2},
	})
	lv := localView(t, g, 0, 0, view.MetricID)
	path, ok := core.MaxMinPath(lv, 1, 2)
	if !ok {
		t.Fatal("no path found")
	}
	if len(path) != 2 || path[0] != 4 || path[1] != 5 {
		t.Fatalf("path = %v, want [4 5]", path)
	}
}

// validatePath checks the structural properties Lemma 1 promises: the
// intermediates are distinct, each has priority above the owner's, and
// consecutive hops (including the endpoints) are adjacent in the view.
func validatePath(lv *view.Local, u, w int, path []int) bool {
	prv := lv.Pr(lv.Owner)
	seen := map[int]bool{u: true, w: true}
	prev := u
	for _, x := range path {
		if seen[x] {
			return false
		}
		seen[x] = true
		if !lv.Pr(x).Greater(prv) {
			return false
		}
		if !lv.HasEdge(prev, x) {
			return false
		}
		prev = x
	}
	return lv.HasEdge(prev, w)
}

// bruteBottleneck returns the best achievable bottleneck priority (the
// maximal over paths of the minimal intermediate priority) by threshold
// search: for each candidate threshold node x, test whether u and w connect
// using only intermediates with priority >= Pr(x).
func bruteBottleneck(lv *view.Local, u, w int) (view.Priority, bool) {
	if lv.HasEdge(u, w) {
		return view.Priority{}, false // no intermediate needed
	}
	prv := lv.Pr(lv.Owner)
	n := lv.N()
	var best view.Priority
	found := false
	for x := 0; x < n; x++ {
		if x == lv.Owner || !lv.IsVisible(x) || !lv.Pr(x).Greater(prv) {
			continue
		}
		threshold := lv.Pr(x)
		// BFS from u through intermediates with priority >= threshold.
		ok := func() bool {
			allowed := func(y int) bool {
				return y != lv.Owner && lv.IsVisible(y) && !lv.Pr(y).Less(threshold)
			}
			// u and w are not adjacent (checked above), so any u-w
			// connection found here goes through >= 1 intermediate.
			seen := make([]bool, n)
			queue := []int{u}
			for len(queue) > 0 {
				cur := queue[0]
				queue = queue[1:]
				reached := false
				lv.ForEachNeighbor(cur, func(y int) {
					if y == w {
						reached = true
					}
					if !seen[y] && allowed(y) {
						seen[y] = true
						queue = append(queue, y)
					}
				})
				if reached && cur != u {
					return true
				}
			}
			return false
		}()
		if ok && (!found || threshold.Greater(best)) {
			best = threshold
			found = true
		}
	}
	return best, found
}

// TestMaxMinLemma1Quick property-checks Lemma 1 on random views: whenever a
// replacement path exists, MAX_MIN terminates with a structurally valid path
// whose bottleneck priority equals the brute-force optimum.
func TestMaxMinLemma1Quick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(t, rng, 4+rng.Intn(14), 0.3)
		metric := []view.Metric{view.MetricID, view.MetricDegree}[rng.Intn(2)]
		base := view.BasePriorities(g, metric)
		for v := 0; v < g.N(); v++ {
			lv := view.NewLocal(g, v, 3, base)
			nbrs := lv.Neighbors()
			for i := 0; i < len(nbrs); i++ {
				for j := i + 1; j < len(nbrs); j++ {
					u, w := nbrs[i], nbrs[j]
					path, ok := core.MaxMinPath(lv, u, w)
					if ok != core.ReplacementPathExists(lv, u, w) {
						return false
					}
					if !ok {
						continue
					}
					if !validatePath(lv, u, w, path) {
						return false
					}
					if len(path) == 0 {
						if !lv.HasEdge(u, w) {
							return false
						}
						continue
					}
					// The minimum priority on the returned path must match
					// the brute-force optimal bottleneck.
					minPr := lv.Pr(path[0])
					for _, x := range path[1:] {
						if lv.Pr(x).Less(minPr) {
							minPr = lv.Pr(x)
						}
					}
					want, found := bruteBottleneck(lv, u, w)
					if !found || want != minPr {
						return false
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(67))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestMaxMinFigure2 reproduces the Figure 2 scenario: a visited node y at
// the far end has the highest priority, and the maximal replacement path
// walks through progressively lower-priority intermediates (u, y, 6, 4, w).
func TestMaxMinFigure2(t *testing.T) {
	// Ids: v=2, u=0, w=1, y=8 (visited), and intermediates 4, 5, 6, 7 as in
	// the figure. Topology (consistent with the figure's description):
	//   u adjacent to y and 7 and 5; y-6, 7-6, 6-4, 5-3?; 4-w, 3-w.
	// We keep the essential structure: the max-min chain picks 4 for
	// (u,w), then 6 for (u,4), then y for (u,6).
	g := graph.New(9)
	edges := [][2]int{
		{0, 8}, {0, 7}, {0, 3}, // u's links: y, 7, and low node 3
		{8, 6}, {7, 6}, // y and 7 reach 6
		{6, 4},         // 6 reaches 4
		{4, 1}, {3, 1}, // 4 and 3 reach w
		{2, 0}, {2, 1}, // v adjacent to u and w
	}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	base := view.BasePriorities(g, view.MetricID)
	lv := view.NewLocal(g, 2, 0, base)
	lv.MarkVisited(8) // y is a visited node

	path, ok := core.MaxMinPath(lv, 0, 1)
	if !ok {
		t.Fatal("no maximal replacement path found")
	}
	want := []int{8, 6, 4}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}
