package core_test

import (
	"math/rand"
	"testing"

	"adhocbcast/internal/core"
	"adhocbcast/internal/view"
)

// TestEvaluatorMatchesStateless drives one reused Evaluator across many
// owners, graphs, view depths and broadcast states and checks every verdict
// against the stateless functions. Any scratch state leaking between
// evaluations would surface as a disagreement.
func TestEvaluatorMatchesStateless(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ev := core.NewEvaluator(8) // deliberately undersized: ensure() must grow it
	for trial := 0; trial < 25; trial++ {
		n := 8 + rng.Intn(25)
		g := randomConnectedGraph(t, rng, n, 0.15+rng.Float64()*0.2)
		base := view.BasePriorities(g, view.MetricID)
		for owner := 0; owner < n; owner++ {
			hops := 2 + rng.Intn(2)
			lv := view.NewLocal(g, owner, hops, base)
			// Random broadcast state: some visited, some designated nodes.
			for k := 0; k < rng.Intn(5); k++ {
				lv.MarkVisited(rng.Intn(n))
			}
			for k := 0; k < rng.Intn(3); k++ {
				lv.MarkDesignated(rng.Intn(n))
			}
			if got, want := ev.Covered(lv), core.Covered(lv); got != want {
				t.Fatalf("trial %d owner %d: Covered = %v, stateless %v", trial, owner, got, want)
			}
			if got, want := ev.CoveredWithoutVisitedUnion(lv), core.CoveredWithoutVisitedUnion(lv); got != want {
				t.Fatalf("trial %d owner %d: CoveredWithoutVisitedUnion = %v, stateless %v",
					trial, owner, got, want)
			}
			if got, want := ev.StrongCovered(lv), core.StrongCovered(lv); got != want {
				t.Fatalf("trial %d owner %d: StrongCovered = %v, stateless %v", trial, owner, got, want)
			}
			for _, maxDist := range []int{1, 2} {
				got := ev.StrongCoveredRestricted(lv, maxDist)
				want := core.StrongCoveredRestricted(lv, maxDist)
				if got != want {
					t.Fatalf("trial %d owner %d maxDist %d: restricted = %v, stateless %v",
						trial, owner, maxDist, got, want)
				}
			}
		}
	}
}

// TestEvaluatorRepeatedCallIdempotent re-evaluates the same view twice on the
// same evaluator; the second call must see fully neutral scratch.
func TestEvaluatorRepeatedCallIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randomConnectedGraph(t, rng, 20, 0.2)
	ev := core.NewEvaluator(g.N())
	base := view.BasePriorities(g, view.MetricDegree)
	for owner := 0; owner < g.N(); owner++ {
		lv := view.NewLocal(g, owner, 2, base)
		if ev.Covered(lv) != ev.Covered(lv) {
			t.Fatalf("owner %d: Covered not idempotent", owner)
		}
		if ev.StrongCovered(lv) != ev.StrongCovered(lv) {
			t.Fatalf("owner %d: StrongCovered not idempotent", owner)
		}
		if ev.StrongCoveredRestricted(lv, 1) != ev.StrongCoveredRestricted(lv, 1) {
			t.Fatalf("owner %d: StrongCoveredRestricted not idempotent", owner)
		}
	}
}
