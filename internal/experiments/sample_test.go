package experiments

import (
	"strings"
	"testing"
)

func TestNewSample(t *testing.T) {
	s, err := NewSample(100, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.Runs); got != 6 {
		t.Fatalf("runs = %d, want 6 (3 timings x 2 view depths)", got)
	}
	labels := map[string]bool{}
	for _, r := range s.Runs {
		labels[r.Label] = true
		if r.Hops != 2 && r.Hops != 3 {
			t.Fatalf("unexpected hops %d", r.Hops)
		}
		if len(r.Forward) == 0 || len(r.Forward) > 100 {
			t.Fatalf("run %s/%d: %d forward nodes", r.Label, r.Hops, len(r.Forward))
		}
	}
	for _, want := range []string{"static", "FR", "FRB"} {
		if !labels[want] {
			t.Fatalf("missing run %q", want)
		}
	}
}

// TestSampleOrderingMatchesFigure9 checks the caption's qualitative claim:
// for each view depth, static >= FR >= FRB forward counts (allowing small
// statistical slack on a single network via a couple of seeds).
func TestSampleOrderingMatchesFigure9(t *testing.T) {
	okSeeds := 0
	for seed := int64(1); seed <= 5; seed++ {
		s, err := NewSample(100, 6, seed)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[string]int{}
		for _, r := range s.Runs {
			if r.Hops == 2 {
				counts[r.Label] = len(r.Forward)
			}
		}
		if counts["static"] >= counts["FR"] && counts["FR"] >= counts["FRB"] {
			okSeeds++
		}
	}
	// On single networks the ordering can invert by a node or two; it must
	// hold for the majority of seeds.
	if okSeeds < 3 {
		t.Fatalf("static >= FR >= FRB held on only %d of 5 seeds", okSeeds)
	}
}

func TestSampleDeterministic(t *testing.T) {
	a, err := NewSample(60, 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSample(60, 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.Source != b.Source {
		t.Fatal("sources differ")
	}
	for i := range a.Runs {
		if len(a.Runs[i].Forward) != len(b.Runs[i].Forward) {
			t.Fatalf("run %d forward counts differ", i)
		}
	}
}

func TestSampleRender(t *testing.T) {
	s, err := NewSample(60, 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	out := s.Render(s.Runs[0], 40, 20)
	if !strings.Contains(out, "static, 2-hop") {
		t.Fatalf("render header missing:\n%s", out)
	}
	if !strings.Contains(out, "S") {
		t.Fatal("source marker missing")
	}
	if !strings.Contains(out, "#") {
		t.Fatal("forward markers missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 21 { // header + 20 rows
		t.Fatalf("rendered %d lines, want 21", len(lines))
	}
	for _, line := range lines[1:] {
		if len(line) != 40 {
			t.Fatalf("row width %d, want 40", len(line))
		}
	}
}

func TestSampleRenderClampsTinyDimensions(t *testing.T) {
	s, err := NewSample(30, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := s.Render(s.Runs[0], 1, 1)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 11 { // header + clamped 10 rows
		t.Fatalf("rendered %d lines, want 11", len(lines))
	}
}
