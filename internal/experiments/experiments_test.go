package experiments

import (
	"reflect"
	"strings"
	"testing"

	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
	"adhocbcast/internal/stats"
	"adhocbcast/internal/view"
)

// tinyConfig keeps figure reproduction fast in tests.
func tinyConfig() RunConfig {
	return RunConfig{
		Sizes:     []int{20, 30},
		Degrees:   []int{6},
		Replicate: stats.ReplicateOptions{MinRuns: 5, MaxRuns: 8, RelTol: 0.5},
		Seed:      7,
	}
}

func TestRunConfigDefaults(t *testing.T) {
	rc := RunConfig{}.withDefaults()
	if len(rc.Sizes) != 9 || rc.Sizes[0] != 20 || rc.Sizes[8] != 100 {
		t.Fatalf("default sizes = %v", rc.Sizes)
	}
	if len(rc.Degrees) != 2 || rc.Degrees[0] != 6 || rc.Degrees[1] != 18 {
		t.Fatalf("default degrees = %v", rc.Degrees)
	}
	if rc.Seed == 0 {
		t.Fatal("default seed missing")
	}
}

func TestWorkloadSeedProperties(t *testing.T) {
	a := workloadSeed(1, 20, 6, 0)
	if a != workloadSeed(1, 20, 6, 0) {
		t.Fatal("workloadSeed not deterministic")
	}
	if a < 0 {
		t.Fatal("workloadSeed negative")
	}
	distinct := map[int64]bool{}
	for rep := 0; rep < 50; rep++ {
		distinct[workloadSeed(1, 20, 6, rep)] = true
	}
	if len(distinct) != 50 {
		t.Fatalf("replication seeds collide: %d distinct of 50", len(distinct))
	}
	if workloadSeed(1, 20, 6, 0) == workloadSeed(1, 30, 6, 0) {
		t.Fatal("different sizes share a seed")
	}
}

func TestMeasureCommonRandomNumbers(t *testing.T) {
	// Two variants with the same protocol must produce identical summaries:
	// the workloads are shared across variants by construction.
	rc := tinyConfig()
	rc = rc.withDefaults()
	mk := func() sim.Protocol { return protocol.Generic(protocol.TimingFirstReceipt) }
	v1 := variant{label: "a", cfg: sim.Config{Hops: 2}, make: mk}
	v2 := variant{label: "b", cfg: sim.Config{Hops: 2}, make: mk}
	s1, err := measure(rc, "test", 20, 6, v1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := measure(rc, "test", 20, 6, v2)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Mean != s2.Mean || s1.N != s2.N {
		t.Fatalf("same protocol, different stats: %+v vs %+v", s1, s2)
	}
}

// TestParallelFigureBitIdentical is the contract of ReplicateParallelism:
// a figure reproduced with parallel replication is bit-identical — every
// mean, CI half-width and run count — to the serial reproduction.
func TestParallelFigureBitIdentical(t *testing.T) {
	serial := tinyConfig()
	serial.Parallelism = 1
	want, err := Figure10(serial)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		par := tinyConfig()
		par.Parallelism = 2
		par.ReplicateParallelism = workers
		got, err := Figure10(par)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("ReplicateParallelism=%d diverged from serial:\n got %+v\nwant %+v",
				workers, got, want)
		}
	}
}

func TestFigureByIDUnknown(t *testing.T) {
	if _, err := FigureByID("9", RunConfig{}); err == nil {
		t.Fatal("figure 9 is the sample scenario, not a sweep; must error")
	}
	if _, err := FigureByID("x", RunConfig{}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestAllFigureIDs(t *testing.T) {
	ids := AllFigureIDs()
	if len(ids) != 7 || ids[0] != "10" || ids[6] != "16" {
		t.Fatalf("AllFigureIDs = %v", ids)
	}
}

func TestFigureStructures(t *testing.T) {
	rc := tinyConfig()
	tests := []struct {
		id         string
		wantPanels int
		wantSeries []string
	}{
		{id: "10", wantPanels: 1, wantSeries: []string{"Static", "FR", "FRB", "FRBD"}},
		{id: "11", wantPanels: 1, wantSeries: []string{"SP", "ND", "MaxDeg", "MinPri"}},
		{id: "12", wantPanels: 1, wantSeries: []string{"2-hop", "3-hop", "4-hop", "5-hop", "global"}},
		{id: "13", wantPanels: 1, wantSeries: []string{"ID", "Degree", "NCR"}},
		{id: "14", wantPanels: 2, wantSeries: []string{"MPR", "Span", "Rule k", "Generic"}},
		{id: "15", wantPanels: 2, wantSeries: []string{"DP", "PDP", "LENWB", "Generic"}},
		{id: "16", wantPanels: 2, wantSeries: []string{"SBA", "Generic"}},
	}
	for _, tt := range tests {
		t.Run("figure"+tt.id, func(t *testing.T) {
			t.Parallel()
			fig, err := FigureByID(tt.id, rc)
			if err != nil {
				t.Fatal(err)
			}
			if fig.ID != tt.id {
				t.Fatalf("ID = %q", fig.ID)
			}
			if len(fig.Panels) != tt.wantPanels {
				t.Fatalf("panels = %d, want %d", len(fig.Panels), tt.wantPanels)
			}
			for _, panel := range fig.Panels {
				if len(panel.Series) != len(tt.wantSeries) {
					t.Fatalf("panel %q series = %d, want %d",
						panel.Title, len(panel.Series), len(tt.wantSeries))
				}
				for i, s := range panel.Series {
					if s.Label != tt.wantSeries[i] {
						t.Fatalf("series %d label = %q, want %q", i, s.Label, tt.wantSeries[i])
					}
					if len(s.Points) != len(rc.Sizes) {
						t.Fatalf("series %q has %d points, want %d",
							s.Label, len(s.Points), len(rc.Sizes))
					}
					for j, pt := range s.Points {
						if pt.X != rc.Sizes[j] {
							t.Fatalf("point %d X = %d, want %d", j, pt.X, rc.Sizes[j])
						}
						if pt.Mean < 1 || pt.Mean > float64(pt.X) {
							t.Fatalf("series %q point %d mean %v out of range", s.Label, j, pt.Mean)
						}
						if pt.Runs < rc.Replicate.MinRuns {
							t.Fatalf("point used %d runs, want >= %d", pt.Runs, rc.Replicate.MinRuns)
						}
					}
				}
			}
		})
	}
}

func TestFormat(t *testing.T) {
	fig := Figure{
		ID:    "10",
		Title: "test",
		Panels: []Panel{{
			Title: "d=6",
			Series: []Series{
				{Label: "A", Points: []Point{{X: 20, Mean: 7.5, CI: 0.3}}},
				{Label: "B", Points: []Point{{X: 20, Mean: 9.1, CI: 0.4}}},
			},
		}},
	}
	out := Format(fig)
	for _, want := range []string{"Figure 10", "[d=6]", "A", "B", "7.50", "9.10", "20"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted output missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Content(t *testing.T) {
	out := Table1()
	for _, want := range []string{
		"Rule k, Span", "MPR", "LENWB", "DP, PDP", "SBA",
		"Static", "First-receipt", "First-receipt-with-backoff",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 missing %q:\n%s", want, out)
		}
	}
	// The FRB row has no neighbor-designating entry.
	lines := strings.Split(out, "\n")
	found := false
	for _, line := range lines {
		if strings.Contains(line, "First-receipt-with-backoff") {
			found = true
			if !strings.Contains(line, "-") {
				t.Fatalf("FRB row should have an empty ND cell: %q", line)
			}
		}
	}
	if !found {
		t.Fatal("FRB row missing")
	}
}

func TestPaperAndQuickPresets(t *testing.T) {
	p := Paper()
	if p.RelTol != 0.01 || p.MinRuns != 30 {
		t.Fatalf("Paper() = %+v", p)
	}
	q := Quick()
	if q.MaxRuns >= p.MaxRuns {
		t.Fatalf("Quick() not quicker than Paper(): %+v", q)
	}
}

// TestFigure10ShapeTiny checks the headline qualitative result on a reduced
// sweep: static produces more forward nodes than FR on average.
func TestFigure10ShapeTiny(t *testing.T) {
	rc := RunConfig{
		Sizes:     []int{60},
		Degrees:   []int{6},
		Replicate: stats.ReplicateOptions{MinRuns: 25, MaxRuns: 30, RelTol: 0.2},
		Seed:      11,
	}
	fig, err := Figure10(rc)
	if err != nil {
		t.Fatal(err)
	}
	series := fig.Panels[0].Series
	static := series[0].Points[0].Mean
	fr := series[1].Points[0].Mean
	if static <= fr {
		t.Fatalf("Static (%v) should exceed FR (%v)", static, fr)
	}
}

func TestVariantMetricsRespected(t *testing.T) {
	// Figure 13's variants carry different metrics; ensure they propagate
	// into distinct results.
	rc := RunConfig{
		Sizes:     []int{60},
		Degrees:   []int{6},
		Replicate: stats.ReplicateOptions{MinRuns: 20, MaxRuns: 25, RelTol: 0.2},
		Seed:      13,
	}
	fig, err := Figure13(rc)
	if err != nil {
		t.Fatal(err)
	}
	id := fig.Panels[0].Series[0].Points[0].Mean
	deg := fig.Panels[0].Series[1].Points[0].Mean
	if id == deg {
		t.Fatal("ID and Degree metrics produced identical means; metric likely not applied")
	}
	_ = view.MetricNCR // silence unused-import lint if tests shrink
}
