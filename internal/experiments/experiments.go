// Package experiments reproduces the paper's evaluation (Section 7): one
// driver per figure, each sweeping network size and density, replicating
// every data point until its confidence interval is tight, and emitting the
// same series the paper plots. Common random numbers are used across the
// algorithms of a figure: replication i of every series sees the same
// network and source.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"adhocbcast/internal/sim"
	"adhocbcast/internal/stats"
)

// RunConfig controls a figure reproduction.
type RunConfig struct {
	// Sizes lists the network sizes n (default 20..100 step 10).
	Sizes []int
	// Degrees lists the average degrees d (default 6 and 18).
	Degrees []int
	// Replicate controls the per-point replication loop. The zero value
	// uses a quick preset (30..200 runs, 3% CI); see Paper for the paper's
	// full ±1% criterion.
	Replicate stats.ReplicateOptions
	// Seed is the base seed; all workload randomness derives from it.
	Seed int64
	// Parallelism bounds the number of data points measured concurrently
	// (default GOMAXPROCS). Results are deterministic regardless: every
	// point's workloads derive from (Seed, n, d, replication) alone.
	Parallelism int
	// ReplicateParallelism bounds the number of replicates evaluated
	// concurrently within one data point (default 1 = serial). This is the
	// knob that splits the concurrency budget between points and
	// replicates: a figure sweep runs up to Parallelism points at once,
	// each running up to ReplicateParallelism replicates at once. Results
	// are bit-identical to the serial path for any setting (see
	// stats.RunUntilCIParallel); raise it when a run is replication-bound —
	// few points, the paper's ±1% criterion — rather than point-bound.
	ReplicateParallelism int
	// CrashFractions lists the crash-fraction sweep values of the
	// degradation experiments (default 0, 0.05, 0.1, 0.2, 0.3).
	CrashFractions []float64
	// LossRates lists the loss-rate sweep values of the degradation
	// experiments (default 0, 0.05, 0.1, 0.2, 0.3).
	LossRates []float64
	// HelloLossRates lists the hello-loss sweep values of the imperfect-view
	// experiments (default 0, 0.05, 0.1, 0.2, 0.3). These degrade view
	// formation, not the broadcast channel; see internal/hello.
	HelloLossRates []float64
	// RestartRates lists the restart-fraction sweep values of the
	// crash-recovery experiments (default 0, 0.1, 0.2, 0.3, 0.4): the
	// fraction of nodes that go down for one outage window mid-broadcast
	// and come back. See restart.go and docs/recovery.md.
	RestartRates []float64
	// TraceDir, when non-empty, exports every replicate of every data point
	// as JSONL (one file per point, see internal/obsv): a versioned run
	// record with counters, latency histogram, and forward-set distribution,
	// followed by the replicate's full event trace. Tracing attaches an
	// Observer and Metrics record to each run, so instrumented results can
	// differ from uninstrumented ones only in cost, never in values.
	TraceDir string
	// Progress, when non-nil, receives a replication-progress update for
	// every completed replicate of every data point, keyed by the point
	// label. Points are measured concurrently, so the callback must be safe
	// for concurrent use. It never affects measured results.
	Progress func(point string, u stats.ProgressUpdate)
	// Runner, when non-nil, intercepts every data point's replication loop:
	// it receives the point label and a compute closure that runs the loop,
	// and returns the point's summary — either by calling compute or by
	// substituting a previously computed result. This is the hook
	// internal/grid uses to cache points content-addressed by their
	// configuration: a cache hit skips compute entirely, a miss runs it and
	// stores the summary. Points are measured concurrently, so the hook must
	// be safe for concurrent calls. A hook that always calls compute is
	// behavior-identical to no hook.
	Runner func(point string, compute func() (stats.Summary, error)) (stats.Summary, error)
}

func (c RunConfig) withDefaults() RunConfig {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{20, 30, 40, 50, 60, 70, 80, 90, 100}
	}
	if len(c.Degrees) == 0 {
		c.Degrees = []int{6, 18}
	}
	if c.Replicate.MinRuns == 0 {
		c.Replicate.MinRuns = 30
	}
	if c.Replicate.MaxRuns == 0 {
		c.Replicate.MaxRuns = 200
	}
	if c.Replicate.RelTol == 0 {
		c.Replicate.RelTol = 0.03
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.ReplicateParallelism <= 0 {
		c.ReplicateParallelism = 1
	}
	if len(c.CrashFractions) == 0 {
		c.CrashFractions = []float64{0, 0.05, 0.1, 0.2, 0.3}
	}
	if len(c.LossRates) == 0 {
		c.LossRates = []float64{0, 0.05, 0.1, 0.2, 0.3}
	}
	if len(c.HelloLossRates) == 0 {
		c.HelloLossRates = []float64{0, 0.05, 0.1, 0.2, 0.3}
	}
	if len(c.RestartRates) == 0 {
		c.RestartRates = []float64{0, 0.1, 0.2, 0.3, 0.4}
	}
	return c
}

// replicate runs one data point's replication loop through the serial or
// parallel engine according to ReplicateParallelism. Both paths produce
// bit-identical summaries (and progress sequences) for the same sample
// function. point names the data point in progress updates and trace files.
func (c RunConfig) replicate(point string, sample func(i int) (float64, error)) (stats.Summary, error) {
	compute := func() (stats.Summary, error) {
		opts := c.Replicate
		if c.Progress != nil {
			opts.Progress = func(u stats.ProgressUpdate) { c.Progress(point, u) }
		}
		if c.ReplicateParallelism > 1 {
			return stats.RunUntilCIParallel(opts, c.ReplicateParallelism, sample)
		}
		return stats.RunUntilCI(opts, sample)
	}
	if c.Runner != nil {
		return c.Runner(point, compute)
	}
	return compute()
}

// Paper returns the paper's replication criterion: repeat until the 90%
// confidence interval is within ±1% of the mean.
func Paper() stats.ReplicateOptions {
	return stats.ReplicateOptions{MinRuns: 30, MaxRuns: 2000, RelTol: 0.01}
}

// Quick returns a reduced replication preset for tests and benchmarks.
func Quick() stats.ReplicateOptions {
	return stats.ReplicateOptions{MinRuns: 10, MaxRuns: 20, RelTol: 0.2}
}

// Point is one averaged data point of a series.
type Point struct {
	// X is the network size n.
	X int
	// Mean is the average number of forward nodes.
	Mean float64
	// CI is the 90% confidence half-width of Mean.
	CI float64
	// Runs is the number of replications used.
	Runs int
}

// Series is one curve of a figure panel.
type Series struct {
	// Label matches the legend label in the paper.
	Label string
	// Points holds one point per network size, in Sizes order.
	Points []Point
}

// Panel is one subplot (a fixed density and view depth).
type Panel struct {
	// Title identifies the subplot, e.g. "d=6, 2-hop".
	Title string
	// Series holds the panel's curves.
	Series []Series
}

// Figure is one reproduced evaluation figure.
type Figure struct {
	// ID is the paper's figure number, e.g. "10".
	ID string
	// Title describes the experiment.
	Title string
	// Unit names the measured quantity (default "mean forward nodes").
	Unit string
	// Panels holds the subplots in the paper's order.
	Panels []Panel
}

// variant binds a legend label to a protocol factory and simulator
// configuration.
type variant struct {
	label string
	cfg   sim.Config
	make  func() sim.Protocol
}

// measure averages the forward-node count of one variant at one (n, d)
// point. Replication i uses the same workload for every variant: the
// connected network and random source come from the shared workload cache,
// so a panel's variants generate each workload once between them. prefix
// disambiguates the data point across figures and panels for progress and
// trace output.
func measure(rc RunConfig, prefix string, n, d int, v variant) (stats.Summary, error) {
	point := fmt.Sprintf("%s/%s/n=%d/d=%d", prefix, v.label, n, d)
	sink, err := rc.newTraceSink(point)
	if err != nil {
		return stats.Summary{}, err
	}
	sum, err := rc.replicate(point, func(i int) (float64, error) {
		seed := workloadSeed(rc.Seed, n, d, i)
		w, err := workloads.get(workloadKey{seed: seed, n: n, d: d})
		if err != nil {
			return 0, err
		}
		cfg := v.cfg
		cfg.Seed = seed + 1
		flush := sink.instrument(&cfg, i)
		res, err := sim.Run(w.net.G, w.source, v.make(), cfg)
		if err != nil {
			return 0, err
		}
		if err := flush(); err != nil {
			return 0, err
		}
		if !res.FullDelivery() {
			return 0, fmt.Errorf("experiments: %s delivered %d/%d (n=%d d=%d rep=%d)",
				v.label, res.Delivered, res.N, n, d, i)
		}
		return float64(res.ForwardCount()), nil
	})
	return sum, sink.finish(err)
}

// workloadSeed derives a deterministic seed from the experiment inputs.
// The variant label is deliberately excluded so all series share workloads.
func workloadSeed(base int64, n, d, rep int) int64 {
	return deriveSeed("", base, n, d, rep)
}

// sweep builds one panel from the given variants, measuring the (variant,
// size) points on a bounded worker pool. Each point is fully determined by
// its inputs, so the parallel schedule never changes the results. prefix
// names the figure (or experiment) the panel belongs to, for progress and
// trace point labels.
func sweep(rc RunConfig, prefix, title string, d int, variants []variant) (Panel, error) {
	type job struct {
		vi, ni int
	}
	jobs := make(chan job)
	points := make([][]Point, len(variants))
	errs := make([][]error, len(variants))
	for vi := range variants {
		points[vi] = make([]Point, len(rc.Sizes))
		errs[vi] = make([]error, len(rc.Sizes))
	}

	var wg sync.WaitGroup
	workers := rc.Parallelism
	if total := len(variants) * len(rc.Sizes); workers > total {
		workers = total
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				v, n := variants[j.vi], rc.Sizes[j.ni]
				sum, err := measure(rc, prefix+"/"+title, n, d, v)
				if err != nil {
					// Each job owns its error slot; the pool keeps
					// draining so it always terminates.
					errs[j.vi][j.ni] = fmt.Errorf("%s n=%d d=%d: %w", v.label, n, d, err)
					continue
				}
				points[j.vi][j.ni] = Point{
					X:    n,
					Mean: sum.Mean,
					CI:   sum.HalfWidth90,
					Runs: sum.N,
				}
			}
		}()
	}
	for vi := range variants {
		for ni := range rc.Sizes {
			jobs <- job{vi: vi, ni: ni}
		}
	}
	close(jobs)
	wg.Wait()

	panel := Panel{Title: title}
	for vi, v := range variants {
		for ni := range rc.Sizes {
			if err := errs[vi][ni]; err != nil {
				return Panel{}, err
			}
		}
		panel.Series = append(panel.Series, Series{Label: v.label, Points: points[vi]})
	}
	return panel, nil
}
