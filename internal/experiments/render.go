package experiments

import (
	"fmt"
	"strings"

	"adhocbcast/internal/protocol"
)

// Format renders a figure as aligned text tables, one per panel: rows are
// network sizes, columns are the series, matching the axes of the paper's
// plots.
func Format(fig Figure) string {
	unit := fig.Unit
	if unit == "" {
		unit = "mean forward nodes"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s: %s\n", fig.ID, fig.Title)
	for _, panel := range fig.Panels {
		fmt.Fprintf(&b, "\n  [%s]  (%s, 90%% CI half-width)\n", panel.Title, unit)
		fmt.Fprintf(&b, "  %6s", "n")
		for _, s := range panel.Series {
			fmt.Fprintf(&b, "  %18s", s.Label)
		}
		b.WriteByte('\n')
		if len(panel.Series) == 0 {
			continue
		}
		for i, pt := range panel.Series[0].Points {
			fmt.Fprintf(&b, "  %6d", pt.X)
			for _, s := range panel.Series {
				p := s.Points[i]
				cell := fmt.Sprintf("%.2f ±%.2f", p.Mean, p.CI)
				fmt.Fprintf(&b, "  %18s", cell)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Table1 renders the paper's Table 1: the classification of the simulated
// existing distributed broadcast algorithms.
func Table1() string {
	// The paper's Table 1 covers the seven algorithms of the special-case
	// comparison (Wu-Li and TDP are discussed but not tabulated).
	protos := []protocol.Describer{
		mustDescriber(protocol.RuleK()),
		mustDescriber(protocol.Span()),
		mustDescriber(protocol.MPR()),
		mustDescriber(protocol.LENWB()),
		mustDescriber(protocol.DP()),
		mustDescriber(protocol.PDP()),
		mustDescriber(protocol.SBA()),
	}
	type key struct {
		timing    protocol.Timing
		selection protocol.Selection
	}
	cells := make(map[key][]string)
	for _, p := range protos {
		info := p.Describe()
		k := key{timing: info.Timing, selection: info.Selection}
		cells[k] = append(cells[k], info.Name)
	}
	row := func(t protocol.Timing) (string, string) {
		sp := strings.Join(cells[key{t, protocol.SelfPruning}], ", ")
		nd := strings.Join(cells[key{t, protocol.NeighborDesignating}], ", ")
		if sp == "" {
			sp = "-"
		}
		if nd == "" {
			nd = "-"
		}
		return sp, nd
	}
	var b strings.Builder
	b.WriteString("Table 1: Existing distributed broadcast algorithms compared in the simulation.\n\n")
	fmt.Fprintf(&b, "  %-28s  %-24s  %-24s\n", "Category", "Self-pruning", "Neighbor-designating")
	for _, t := range []protocol.Timing{
		protocol.TimingStatic,
		protocol.TimingFirstReceipt,
		protocol.TimingBackoffRandom,
	} {
		name := map[protocol.Timing]string{
			protocol.TimingStatic:        "Static",
			protocol.TimingFirstReceipt:  "First-receipt",
			protocol.TimingBackoffRandom: "First-receipt-with-backoff",
		}[t]
		sp, nd := row(t)
		fmt.Fprintf(&b, "  %-28s  %-24s  %-24s\n", name, sp, nd)
	}
	return b.String()
}

func mustDescriber(p any) protocol.Describer {
	d, ok := p.(protocol.Describer)
	if !ok {
		panic(fmt.Sprintf("experiments: protocol %T does not describe itself", p))
	}
	return d
}
