package experiments

import (
	"fmt"
	"math"

	"adhocbcast/internal/hello"
	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
)

// The hello-loss experiments measure the imperfect-knowledge pipeline end to
// end: views are assembled by a lossy hello exchange (every node holds a
// different, possibly incomplete graph), the simulator runs each node's
// pruning decision on its own view, and the conservative fallback — nodes
// that can prove their view incomplete refuse non-forward status — is
// measured as an overlay. This quantifies the paper's Section 4.3 caveat that
// the coverage condition is only safe when the k-hop views are right: with
// k = Hops = 2 rounds of lossless hellos the sweep's zero point reproduces
// the paper's setup exactly, and every further point degrades only the
// knowledge, never the channel the broadcast itself uses.

// helloRounds is the number of hello exchange rounds, matching the 2-hop
// views every other experiment uses.
const helloRounds = 2

// helloVariant is one curve of a hello-loss figure: a protocol plus the
// conservative-fallback setting layered on it.
type helloVariant struct {
	label    string
	make     func() sim.Protocol
	fallback bool
}

func helloVariants() []helloVariant {
	return []helloVariant{
		// Flooding ignores views entirely: the flat control line separating
		// knowledge-induced losses from channel effects (there are none).
		{label: "Flooding", make: protocol.Flooding},
		{label: "Generic-FR", make: func() sim.Protocol { return protocol.Generic(protocol.TimingFirstReceipt) }},
		{label: "Generic-FR+CF", make: func() sim.Protocol { return protocol.Generic(protocol.TimingFirstReceipt) }, fallback: true},
		{label: "Generic-FRB", make: func() sim.Protocol { return protocol.Generic(protocol.TimingBackoffRandom) }},
		{label: "Generic-FRB+CF", make: func() sim.Protocol { return protocol.Generic(protocol.TimingBackoffRandom) }, fallback: true},
	}
}

// helloSeed derives the hello-exchange seed for one (replication, sweep
// value) cell. The variant is deliberately excluded: every curve sees the
// same networks, sources, and hello loss patterns (common random numbers),
// so with and without fallback differ only in the decisions.
func helloSeed(base int64, n, d, rep, permille int) int64 {
	return deriveSeed("helloloss", base, n, d, rep, permille)
}

// HelloLossDelivery sweeps the hello loss rate: X is the per-receiver
// probability (in percent) that one hello broadcast is lost during view
// formation, and the series report the delivery ratio. Pruning on incomplete
// views strands nodes; the conservative fallback recovers most of the lost
// delivery by refusing non-forward status at provably incomplete nodes.
func HelloLossDelivery(rc RunConfig) (Figure, error) {
	return helloSweep(rc, "H1",
		"Imperfect views: delivery vs hello loss rate (n=100, 2 rounds)",
		"delivery %",
		func(res sim.Result, _ *sim.Recorder) float64 { return 100 * res.DeliveryRatio() })
}

// HelloLossForwardRatio is the companion cost curve of HelloLossDelivery: the
// fraction of delivered nodes that forwarded. The fallback's recovered
// delivery is paid for here — every node that knows its view is incomplete
// forwards, so the forward ratio climbs toward flooding as hello loss rises.
func HelloLossForwardRatio(rc RunConfig) (Figure, error) {
	return helloSweep(rc, "H2",
		"Imperfect views: forward ratio vs hello loss rate (n=100, 2 rounds)",
		"forward % of delivered",
		func(res sim.Result, _ *sim.Recorder) float64 {
			if res.Delivered == 0 {
				return 0
			}
			return 100 * float64(res.ForwardCount()) / float64(res.Delivered)
		})
}

// HelloLossLatency completes the trade-off picture: mean first-delivery
// latency (in transmission slots, over the nodes actually reached) vs hello
// loss rate. Wrong views can shorten apparent latency by stranding the far
// nodes; the fallback's extra transmissions restore reach without a backoff
// cost at FR timing.
func HelloLossLatency(rc RunConfig) (Figure, error) {
	return helloSweep(rc, "H3",
		"Imperfect views: mean delivery latency vs hello loss rate (n=100, 2 rounds)",
		"mean latency (slots)",
		func(_ sim.Result, rec *sim.Recorder) float64 { return rec.MeanDeliveryLatency() })
}

// helloSweep runs one hello-loss figure. Every replicate regenerates the
// exchange from its own seed, so results are a pure function of (Seed, n, d,
// rep, rate) — bit-identical across -parallel settings and repeated runs.
func helloSweep(rc RunConfig, id, title, unit string, metric func(sim.Result, *sim.Recorder) float64) (Figure, error) {
	rc = rc.withDefaults()
	fig := Figure{ID: id, Title: title, Unit: unit}
	for _, d := range rc.Degrees {
		panel := Panel{Title: fmt.Sprintf("d=%d, n=100, 2-hop", d)}
		for _, v := range helloVariants() {
			s := Series{Label: v.label}
			for _, rate := range rc.HelloLossRates {
				rate, v := rate, v
				pct := int(math.Round(100 * rate))
				point := fmt.Sprintf("%s/%s/helloloss=%d/d=%d", id, v.label, pct, d)
				sink, err := rc.newTraceSink(point)
				if err != nil {
					return Figure{}, err
				}
				sum, err := rc.replicate(point, func(i int) (float64, error) {
					seed := workloadSeed(rc.Seed, 100, d, i)
					w, err := workloads.get(workloadKey{seed: seed, n: 100, d: d})
					if err != nil {
						return 0, err
					}
					views, err := hello.Exchange(w.net.G, hello.Config{
						Rounds:   helloRounds,
						LossRate: rate,
						Seed:     helloSeed(rc.Seed, 100, d, i, pct*10),
					})
					if err != nil {
						return 0, err
					}
					rec := &sim.Recorder{}
					cfg := sim.Config{
						Hops:                 2,
						Seed:                 seed + 1,
						Observer:             rec,
						NodeViews:            views.Graph,
						ViewIncomplete:       views.Incomplete,
						ConservativeFallback: v.fallback,
					}
					flush := sink.instrument(&cfg, i)
					res, err := sim.Run(w.net.G, w.source, v.make(), cfg)
					if err != nil {
						return 0, err
					}
					if cfg.Metrics != nil {
						// Tracing is on: export the view-divergence counters
						// alongside the run record. Only the driver can fill
						// these — the simulator never sees the ground truth.
						div, err := views.Divergence(w.net.G)
						if err != nil {
							return 0, err
						}
						cfg.Metrics.ViewMissingLinks = div.MissingLinks
						cfg.Metrics.ViewPhantomLinks = div.PhantomLinks
					}
					if err := flush(); err != nil {
						return 0, err
					}
					return metric(res, rec), nil
				})
				if err = sink.finish(err); err != nil {
					return Figure{}, fmt.Errorf("%s %s helloloss %d%%: %w", id, v.label, pct, err)
				}
				s.Points = append(s.Points, Point{X: pct, Mean: sum.Mean, CI: sum.HalfWidth90, Runs: sum.N})
			}
			panel.Series = append(panel.Series, s)
		}
		fig.Panels = append(fig.Panels, panel)
	}
	return fig, nil
}
