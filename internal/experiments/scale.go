package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"

	"adhocbcast/internal/geo"
	"adhocbcast/internal/obsv"
	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
	"adhocbcast/internal/stats"
)

// The scale sweep is the beyond-the-paper workload: the paper evaluates
// n <= 100, while the grid-indexed topology engine makes tens of thousands
// of nodes generatable in milliseconds, so the broadcast protocols themselves
// become the measured quantity. Unlike the figure sweeps — which hold every
// (variant, size) point concurrently and replicate until a CI criterion —
// the scale sweep streams: one network is alive per worker at a time,
// per-variant metrics fold into constant-size Welford accumulators, and each
// completed point is emitted before the next begins, so a 25,000-node sweep
// holds megabytes, not gigabytes.

// ScaleConfig controls a large-n scale sweep.
type ScaleConfig struct {
	// Sizes lists the network sizes, swept in order (default 1000, 5000,
	// 10000, 25000, 100000, 1000000).
	Sizes []int
	// Degree is the target average degree (default 18). Random unit disk
	// graphs need average degree on the order of log n to be connected, so
	// the paper's sparse d=6 setting stops being generatable between n=1,000
	// and n=10,000 — the generator's rejection sampling will exhaust its
	// attempts and report the largest component it saw.
	Degree int
	// Replicates is the fixed per-point replication count (default 5; the
	// per-run variance of ratio metrics shrinks with n, so scale points need
	// far fewer replicates than the paper's n<=100 points). Points with
	// n >= 100,000 cap the count at 2: at that scale the ratio metrics are
	// essentially deterministic and each replicate costs minutes.
	Replicates int
	// Seed is the base workload seed (default 42).
	Seed int64
	// Parallelism bounds the replicates evaluated concurrently within a
	// point (default GOMAXPROCS). Results are deterministic for any value:
	// every replicate derives from (Seed, n, d, rep) alone and metrics fold
	// in replicate order.
	Parallelism int
	// Hops is the local-view depth (default 2).
	Hops int
	// Emit, when non-nil, receives each completed row as soon as its point
	// finishes, in (size, variant) order — the streaming hook the CLI uses
	// to print results while later, larger points are still running. Emit
	// fires for cached rows too when a Runner substitutes stored results.
	Emit func(ScaleRow)
	// Runner, when non-nil, intercepts each size point's computation: it
	// receives the point label and a compute closure that measures the
	// point's variant rows, and returns those rows — either by calling
	// compute or by substituting previously computed ones. This is the hook
	// internal/grid uses to cache scale points; see RunConfig.Runner.
	Runner func(point string, compute func() ([]ScaleRow, error)) ([]ScaleRow, error)
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{1000, 5000, 10000, 25000, 100000, 1000000}
	}
	if c.Degree == 0 {
		c.Degree = 18
	}
	if c.Replicates <= 0 {
		c.Replicates = 5
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.Hops <= 0 {
		c.Hops = 2
	}
	return c
}

// repsFor returns the replicate count for one size point: the configured
// count, capped at 2 for the 100k+ points (see ScaleConfig.Replicates).
func (c ScaleConfig) repsFor(n int) int {
	if n >= 100000 && c.Replicates > 2 {
		return 2
	}
	return c.Replicates
}

// ScaleRow is one (size, variant) result of a scale sweep. Delivery and
// Forward are percentages of n; Latency is the mean first-delivery time in
// transmission slots across delivered nodes. The CI fields are 90%
// confidence half-widths over the replicates.
type ScaleRow struct {
	N          int
	Variant    string
	Replicates int
	Delivery   float64
	DeliveryCI float64
	Forward    float64
	ForwardCI  float64
	Latency    float64
	LatencyCI  float64
}

// scaleVariants are the design-space corners the sweep carries to scale:
// blind flooding as the baseline, then the generic framework's static,
// first-receipt, and first-receipt-with-backoff timing policies.
func scaleVariants() []struct {
	label string
	make  func() sim.Protocol
} {
	return []struct {
		label string
		make  func() sim.Protocol
	}{
		{label: "Flooding", make: protocol.Flooding},
		{label: "Generic-Static", make: func() sim.Protocol { return protocol.Generic(protocol.TimingStatic) }},
		{label: "Generic-FR", make: func() sim.Protocol { return protocol.Generic(protocol.TimingFirstReceipt) }},
		{label: "Generic-FRB", make: func() sim.Protocol { return protocol.Generic(protocol.TimingBackoffRandom) }},
	}
}

// scaleSeed derives the deterministic workload seed of one (n, rep) cell.
// Variants are excluded: every variant of a replicate sees the same network
// and source (common random numbers), exactly like the figure sweeps.
func scaleSeed(base int64, n, d, rep int) int64 {
	return deriveSeed("scale", base, n, d, rep)
}

// scaleSample is the per-(replicate, variant) measurement tuple.
type scaleSample struct {
	delivery float64
	forward  float64
	latency  float64
}

// Scale runs the large-n sweep and returns one row per (size, variant), in
// sweep order. Points run strictly in size order; within a point, replicates
// run on up to Parallelism workers, each holding one generated network at a
// time.
func Scale(cfg ScaleConfig) ([]ScaleRow, error) {
	cfg = cfg.withDefaults()
	var rows []ScaleRow
	for _, n := range cfg.Sizes {
		nreps := cfg.repsFor(n)
		point := fmt.Sprintf("scale/n=%d/d=%d/reps=%d", n, cfg.Degree, nreps)
		compute := func() ([]ScaleRow, error) { return scalePoint(cfg, n, nreps) }
		var pointRows []ScaleRow
		var err error
		if cfg.Runner != nil {
			pointRows, err = cfg.Runner(point, compute)
		} else {
			pointRows, err = compute()
		}
		if err != nil {
			return nil, err
		}
		// Emit outside compute, so streaming consumers see cached rows too.
		for _, row := range pointRows {
			rows = append(rows, row)
			if cfg.Emit != nil {
				cfg.Emit(row)
			}
		}
	}
	return rows, nil
}

// scalePoint measures one size point: nreps replicates on up to Parallelism
// workers, folded into one row per variant.
func scalePoint(cfg ScaleConfig, n, nreps int) ([]ScaleRow, error) {
	variants := scaleVariants()
	samples := make([][]scaleSample, nreps)
	errs := make([]error, nreps)
	workers := cfg.Parallelism
	if workers > nreps {
		workers = nreps
	}
	reps := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One metrics record and one simulator arena per worker:
			// the hot state (event calendar, flat node states, views,
			// scratch) is allocated once and reused by every run the
			// worker executes.
			record := obsv.NewRunRecord()
			arena := sim.NewArena()
			for rep := range reps {
				samples[rep], errs[rep] = scaleReplicate(cfg, n, rep, record, arena)
			}
		}()
	}
	for rep := 0; rep < nreps; rep++ {
		reps <- rep
	}
	close(reps)
	wg.Wait()

	for rep, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("scale n=%d rep=%d: %w", n, rep, err)
		}
	}
	// Fold in replicate order so the summary is bit-identical for any
	// worker count.
	rows := make([]ScaleRow, 0, len(variants))
	for vi, v := range variants {
		var del, fwd, lat stats.Accumulator
		for rep := 0; rep < nreps; rep++ {
			s := samples[rep][vi]
			del.Add(s.delivery)
			fwd.Add(s.forward)
			lat.Add(s.latency)
		}
		ds, fs, ls := del.Summary(), fwd.Summary(), lat.Summary()
		rows = append(rows, ScaleRow{
			N:          n,
			Variant:    v.label,
			Replicates: nreps,
			Delivery:   ds.Mean, DeliveryCI: ds.HalfWidth90,
			Forward: fs.Mean, ForwardCI: fs.HalfWidth90,
			Latency: ls.Mean, LatencyCI: ls.HalfWidth90,
		})
	}
	return rows, nil
}

// scaleReplicate generates one workload and runs every variant on it,
// reusing one metrics record and one simulator arena across the runs.
func scaleReplicate(cfg ScaleConfig, n, rep int, record *obsv.RunRecord, arena *sim.Arena) ([]scaleSample, error) {
	seed := scaleSeed(cfg.Seed, n, cfg.Degree, rep)
	rng := rand.New(rand.NewSource(seed))
	net, err := geo.Generate(geo.Config{N: n, AvgDegree: float64(cfg.Degree), Seed: seed}, rng)
	if err != nil {
		return nil, err
	}
	source := rng.Intn(n)
	variants := scaleVariants()
	out := make([]scaleSample, len(variants))
	for vi, v := range variants {
		res, err := sim.RunWith(arena, net.G, source, v.make(), sim.Config{
			Hops:    cfg.Hops,
			Seed:    seed + 1,
			Metrics: record,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.label, err)
		}
		out[vi] = scaleSample{
			delivery: 100 * res.DeliveryRatio(),
			forward:  100 * float64(res.ForwardCount()) / float64(res.N),
			latency:  record.Latency.Mean(),
		}
	}
	return out, nil
}

// FormatScale renders scale rows as one aligned text table per network size.
func FormatScale(rows []ScaleRow) string {
	var b strings.Builder
	lastN := -1
	for _, r := range rows {
		if r.N != lastN {
			if lastN != -1 {
				b.WriteString("\n")
			}
			fmt.Fprintf(&b, "n=%d (%d replicates)\n", r.N, r.Replicates)
			fmt.Fprintf(&b, "  %-16s %16s %16s %18s\n",
				"variant", "delivery %", "forward %", "latency (slots)")
			lastN = r.N
		}
		b.WriteString("  " + FormatScaleRow(r) + "\n")
	}
	return b.String()
}

// FormatScaleRow renders one row as an aligned line (no leading indent).
func FormatScaleRow(r ScaleRow) string {
	return fmt.Sprintf("%-16s %10.2f ±%.2f %10.2f ±%.2f %12.2f ±%.2f",
		r.Variant, r.Delivery, r.DeliveryCI, r.Forward, r.ForwardCI,
		r.Latency, r.LatencyCI)
}
