package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// testScaleConfig keeps scale tests fast: small sizes, sparse-but-connectable
// degree, two replicates.
func testScaleConfig() ScaleConfig {
	return ScaleConfig{
		Sizes:      []int{50, 80},
		Degree:     8,
		Replicates: 2,
		Seed:       7,
	}
}

func TestScaleShape(t *testing.T) {
	rows, err := Scale(testScaleConfig())
	if err != nil {
		t.Fatal(err)
	}
	variants := scaleVariants()
	if want := 2 * len(variants); len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	i := 0
	for _, n := range []int{50, 80} {
		for _, v := range variants {
			r := rows[i]
			i++
			if r.N != n || r.Variant != v.label {
				t.Fatalf("row %d is (%d, %s), want (%d, %s)", i-1, r.N, r.Variant, n, v.label)
			}
			if r.Replicates != 2 {
				t.Fatalf("row %d replicates = %d", i-1, r.Replicates)
			}
			// Collision-free static MAC: every variant delivers everywhere.
			if r.Delivery != 100 {
				t.Fatalf("%s n=%d delivery %v%%, want 100", r.Variant, r.N, r.Delivery)
			}
			if r.Forward <= 0 || r.Forward > 100 {
				t.Fatalf("%s n=%d forward %v%% out of range", r.Variant, r.N, r.Forward)
			}
			if r.Latency <= 0 {
				t.Fatalf("%s n=%d latency %v, want positive", r.Variant, r.N, r.Latency)
			}
		}
	}
	// The pruning variants must actually prune: generic FR forwards a small
	// fraction of what flooding does.
	if rows[0].Variant != "Flooding" || rows[0].Forward != 100 {
		t.Fatalf("flooding row = %+v, want 100%% forwards", rows[0])
	}
	for _, r := range rows {
		if r.Variant == "Generic-FR" && r.Forward >= 80 {
			t.Fatalf("Generic-FR forwards %v%%, expected substantial pruning", r.Forward)
		}
	}
}

// TestScaleDeterministicAcrossParallelism pins the schedule independence:
// any worker count folds the same per-replicate samples in the same order.
func TestScaleDeterministicAcrossParallelism(t *testing.T) {
	serial := testScaleConfig()
	serial.Parallelism = 1
	a, err := Scale(serial)
	if err != nil {
		t.Fatal(err)
	}
	parallel := testScaleConfig()
	parallel.Parallelism = 4
	b, err := Scale(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("parallel rows differ from serial:\n%v\nvs\n%v", a, b)
	}
}

// TestScaleEmitStreams asserts the Emit hook sees every row, in order, as
// the sweep runs.
func TestScaleEmitStreams(t *testing.T) {
	cfg := testScaleConfig()
	var emitted []ScaleRow
	cfg.Emit = func(r ScaleRow) { emitted = append(emitted, r) }
	rows, err := Scale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, emitted) {
		t.Fatalf("emitted rows differ from returned rows")
	}
}

// TestScaleInfeasibleDegree checks a degree too sparse to connect surfaces
// the generator's diagnostic error instead of hanging.
func TestScaleInfeasibleDegree(t *testing.T) {
	cfg := testScaleConfig()
	cfg.Sizes = []int{60}
	cfg.Degree = 2
	_, err := Scale(cfg)
	if err == nil {
		t.Skip("sparse network happened to connect; nothing to assert")
	}
	if !strings.Contains(err.Error(), "largest") {
		t.Fatalf("error %q lacks component diagnostics", err)
	}
}

func TestFormatScale(t *testing.T) {
	rows, err := Scale(testScaleConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := FormatScale(rows)
	for _, want := range []string{"n=50", "n=80", "Flooding", "Generic-FRB", "delivery %"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatScale output missing %q:\n%s", want, out)
		}
	}
}
