package experiments

import (
	"fmt"

	"adhocbcast/internal/cds"
	"adhocbcast/internal/cluster"
	"adhocbcast/internal/core"
	"adhocbcast/internal/graph"
	"adhocbcast/internal/mobility"
	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
	"adhocbcast/internal/view"
)

// The experiments in this file go beyond the paper's figures: they quantify
// the claims its discussion sections make without plots (mobility tolerance,
// collision relief via jitter) and ablate the design choices called out in
// DESIGN.md (piggyback depth, backoff window, the visited-union assumption).
// Their X axes are parameter values rather than network sizes.

// Mobility reproduces the Section 1 mobility claim: nodes move between the
// hello exchange and the broadcast, so protocols decide on stale views while
// packets propagate over the actual topology. The series report the average
// delivery ratio (in percent) of algorithms with increasing redundancy as a
// function of the maximum per-node movement (in area units). Flooding is the
// upper bound; more aggressive pruning degrades faster.
func Mobility(rc RunConfig) (Figure, error) {
	rc = rc.withDefaults()
	steps := []int{0, 1, 2, 3, 5, 8}
	variants := []struct {
		label string
		make  func() sim.Protocol
	}{
		{label: "Flooding", make: protocol.Flooding},
		{label: "SBA", make: protocol.SBA},
		{label: "Generic-FRB", make: func() sim.Protocol { return protocol.Generic(protocol.TimingBackoffRandom) }},
		{label: "Generic-FR", make: func() sim.Protocol { return protocol.Generic(protocol.TimingFirstReceipt) }},
	}
	fig := Figure{ID: "M1", Title: "Delivery ratio under stale views vs node movement", Unit: "delivery %"}
	for _, d := range rc.Degrees {
		panel := Panel{Title: fmt.Sprintf("d=%d, n=100, 2-hop", d)}
		for _, v := range variants {
			s := Series{Label: v.label}
			for _, step := range steps {
				point := fmt.Sprintf("M1/%s/step=%d/d=%d", v.label, step, d)
				sum, err := rc.replicate(point, func(i int) (float64, error) {
					// Perturbation draws live on their own seed-derived
					// stream (see mobility.Perturbed), so the stale network
					// and source come from the shared workload cache: every
					// movement step of every variant perturbs the same
					// replication-i network.
					seed := workloadSeed(rc.Seed, 100, d, i)
					w, err := workloads.get(workloadKey{seed: seed, n: 100, d: d})
					if err != nil {
						return 0, err
					}
					actual := mobility.Perturbed(w.net, 100, float64(step), mobilitySeed(rc.Seed, d, i, step))
					res, err := sim.Run(actual.G, w.source, v.make(), sim.Config{
						Hops:         2,
						ViewTopology: w.net.G,
						Seed:         seed + 1,
					})
					if err != nil {
						return 0, err
					}
					return 100 * res.DeliveryRatio(), nil
				})
				if err != nil {
					return Figure{}, fmt.Errorf("mobility %s step %d: %w", v.label, step, err)
				}
				s.Points = append(s.Points, Point{X: step, Mean: sum.Mean, CI: sum.HalfWidth90, Runs: sum.N})
			}
			panel.Series = append(panel.Series, s)
		}
		fig.Panels = append(fig.Panels, panel)
	}
	return fig, nil
}

// Reliability quantifies the broadcast storm discussion: under a collision
// MAC, synchronized retransmissions destroy each other; a small forwarding
// jitter restores delivery, and pruning protocols suffer far less than
// flooding to begin with. Series report delivery ratio (%) vs jitter window.
func Reliability(rc RunConfig) (Figure, error) {
	rc = rc.withDefaults()
	jitters := []int{0, 1, 2, 4}
	variants := []struct {
		label string
		make  func() sim.Protocol
	}{
		{label: "Flooding", make: protocol.Flooding},
		{label: "Generic-FR", make: func() sim.Protocol { return protocol.Generic(protocol.TimingFirstReceipt) }},
	}
	fig := Figure{ID: "R1", Title: "Delivery ratio under a collision MAC vs forwarding jitter", Unit: "delivery %"}
	for _, d := range rc.Degrees {
		panel := Panel{Title: fmt.Sprintf("d=%d, n=100, 2-hop", d)}
		for _, v := range variants {
			s := Series{Label: v.label}
			for _, j := range jitters {
				point := fmt.Sprintf("R1/%s/jitter=%d/d=%d", v.label, j, d)
				sum, err := rc.replicate(point, func(i int) (float64, error) {
					seed := workloadSeed(rc.Seed, 100, d, i) ^ int64(j<<40)
					w, err := workloads.get(workloadKey{seed: seed, n: 100, d: d})
					if err != nil {
						return 0, err
					}
					res, err := sim.Run(w.net.G, w.source, v.make(), sim.Config{
						Hops:       2,
						Collisions: true,
						TxJitter:   float64(j),
						Seed:       seed + 1,
					})
					if err != nil {
						return 0, err
					}
					return 100 * res.DeliveryRatio(), nil
				})
				if err != nil {
					return Figure{}, fmt.Errorf("reliability %s jitter %d: %w", v.label, j, err)
				}
				s.Points = append(s.Points, Point{X: j, Mean: sum.Mean, CI: sum.HalfWidth90, Runs: sum.N})
			}
			panel.Series = append(panel.Series, s)
		}
		fig.Panels = append(fig.Panels, panel)
	}
	return fig, nil
}

// PiggybackAblation sweeps the broadcast-state depth h (Section 4.3): the
// number of recently visited nodes carried in the packet. The paper observes
// that extra piggybacked history has little impact; this ablation measures
// it. X is h; -1 disables piggybacking entirely (snooping only).
func PiggybackAblation(rc RunConfig) (Figure, error) {
	rc = rc.withDefaults()
	fig := Figure{ID: "A1", Title: "Ablation: forward nodes vs piggyback depth h (Generic-FR)"}
	for _, d := range rc.Degrees {
		panel := Panel{Title: fmt.Sprintf("d=%d, n=100, 2-hop", d)}
		s := Series{Label: "Generic-FR"}
		for _, h := range []int{-1, 1, 2, 4, 8} {
			v := variant{
				label: fmt.Sprintf("h=%d", h),
				cfg:   sim.Config{Hops: 2, PiggybackDepth: h},
				make:  func() sim.Protocol { return protocol.Generic(protocol.TimingFirstReceipt) },
			}
			sum, err := measure(rc, "A1", 100, d, v)
			if err != nil {
				return Figure{}, err
			}
			x := h
			if h < 0 {
				x = 0
			}
			s.Points = append(s.Points, Point{X: x, Mean: sum.Mean, CI: sum.HalfWidth90, Runs: sum.N})
		}
		panel.Series = append(panel.Series, s)
		fig.Panels = append(fig.Panels, panel)
	}
	return fig, nil
}

// BackoffAblation sweeps the FRB/FRBD backoff window (in transmission
// slots), documenting the calibration of DESIGN.md: the benefit of waiting
// only materializes once the window spans several transmission delays.
func BackoffAblation(rc RunConfig) (Figure, error) {
	rc = rc.withDefaults()
	fig := Figure{ID: "A2", Title: "Ablation: forward nodes vs backoff window (n=100)"}
	for _, d := range rc.Degrees {
		panel := Panel{Title: fmt.Sprintf("d=%d, n=100, 2-hop", d)}
		for _, timing := range []protocol.Timing{protocol.TimingBackoffRandom, protocol.TimingBackoffDegree} {
			timing := timing
			s := Series{Label: timing.String()}
			for _, w := range []int{1, 2, 4, 8, 16} {
				v := variant{
					label: fmt.Sprintf("w=%d", w),
					cfg:   sim.Config{Hops: 2, BackoffWindow: float64(w)},
					make:  func() sim.Protocol { return protocol.Generic(timing) },
				}
				sum, err := measure(rc, "A2/"+timing.String(), 100, d, v)
				if err != nil {
					return Figure{}, err
				}
				s.Points = append(s.Points, Point{X: w, Mean: sum.Mean, CI: sum.HalfWidth90, Runs: sum.N})
			}
			panel.Series = append(panel.Series, s)
		}
		fig.Panels = append(fig.Panels, panel)
	}
	return fig, nil
}

// VisitedUnionAblation contrasts the generic coverage condition with and
// without the visited-nodes-are-connected assumption (the Figure 6(b)
// mechanism), measuring how much pruning the assumption is worth. X is the
// network size.
func VisitedUnionAblation(rc RunConfig) (Figure, error) {
	rc = rc.withDefaults()
	withUnion := func() sim.Protocol { return protocol.Generic(protocol.TimingFirstReceipt) }
	withoutUnion := func() sim.Protocol {
		return protocol.New(protocol.Options{
			Name:      "Generic-NoUnion",
			Timing:    protocol.TimingFirstReceipt,
			Selection: protocol.SelfPruning,
			Covered: func(rt sim.Runtime, st *sim.NodeState) bool {
				return rt.Evaluator().CoveredWithoutVisitedUnion(st.View)
			},
			SelfPrune: true,
		})
	}
	variants := []variant{
		{label: "with union", cfg: sim.Config{Hops: 2}, make: withUnion},
		{label: "without union", cfg: sim.Config{Hops: 2}, make: withoutUnion},
	}
	fig := Figure{ID: "A3", Title: "Ablation: the visited-union assumption (Generic-FR, 2-hop)"}
	for _, d := range rc.Degrees {
		panel, err := sweep(rc, "A3", fmt.Sprintf("d=%d", d), d, variants)
		if err != nil {
			return Figure{}, err
		}
		fig.Panels = append(fig.Panels, panel)
	}
	return fig, nil
}

// Clustering compares backbone sizes in dense networks (the Section 2 /
// Section 6 density discussion): the raw lowest-id cluster backbone (heads
// plus gateways), the same backbone after coverage-condition reduction, and
// the distributed generic static backbone, across densities. X is the
// average degree d at n=100.
func Clustering(rc RunConfig) (Figure, error) {
	rc = rc.withDefaults()
	degrees := []int{6, 12, 18, 24, 30}
	type method struct {
		label string
		size  func(g *graph.Graph) (int, error)
	}
	methods := []method{
		{label: "Cluster backbone", size: func(g *graph.Graph) (int, error) {
			return len(cluster.LowestID(g).Backbone(g)), nil
		}},
		{label: "Cluster+reduce", size: func(g *graph.Graph) (int, error) {
			return len(cds.Reduce(g, cluster.LowestID(g).Backbone(g))), nil
		}},
		{label: "Generic static", size: func(g *graph.Graph) (int, error) {
			base := view.BasePriorities(g, view.MetricID)
			ev := core.NewEvaluator(g.N())
			count := 0
			for v := 0; v < g.N(); v++ {
				lv := view.NewLocal(g, v, 2, base)
				if !ev.Covered(lv) {
					count++
				}
			}
			return count, nil
		}},
		{label: "Guha-Khuller", size: func(g *graph.Graph) (int, error) {
			set, err := cds.GuhaKhuller(g)
			return len(set), err
		}},
	}
	fig := Figure{
		ID:    "C1",
		Title: "Backbone sizes vs density (n=100)",
		Unit:  "mean backbone size",
	}
	panel := Panel{Title: "n=100"}
	for _, m := range methods {
		s := Series{Label: m.label}
		for _, d := range degrees {
			point := fmt.Sprintf("C1/%s/d=%d", m.label, d)
			sum, err := rc.replicate(point, func(i int) (float64, error) {
				seed := workloadSeed(rc.Seed, 100, d, i)
				w, err := workloads.get(workloadKey{seed: seed, n: 100, d: d})
				if err != nil {
					return 0, err
				}
				size, err := m.size(w.net.G)
				return float64(size), err
			})
			if err != nil {
				return Figure{}, fmt.Errorf("clustering %s d=%d: %w", m.label, d, err)
			}
			s.Points = append(s.Points, Point{X: d, Mean: sum.Mean, CI: sum.HalfWidth90, Runs: sum.N})
		}
		panel.Series = append(panel.Series, s)
	}
	fig.Panels = append(fig.Panels, panel)
	return fig, nil
}

// Latency quantifies the timing-policy delay discussion of Section 4.1:
// static and FR decisions add no end-to-end delay while the backoff
// policies trade completion time for fewer forward nodes. The series report
// the mean first-delivery latency across nodes (in transmission slots) per
// timing policy; X is the network size.
func Latency(rc RunConfig) (Figure, error) {
	rc = rc.withDefaults()
	fig := Figure{
		ID:    "L1",
		Title: "Mean first-delivery latency vs timing policy",
		Unit:  "mean latency (slots)",
	}
	timings := []protocol.Timing{
		protocol.TimingStatic,
		protocol.TimingFirstReceipt,
		protocol.TimingBackoffRandom,
		protocol.TimingBackoffDegree,
	}
	for _, d := range rc.Degrees {
		panel := Panel{Title: fmt.Sprintf("d=%d, 2-hop", d)}
		for _, timing := range timings {
			timing := timing
			s := Series{Label: timing.String()}
			for _, n := range rc.Sizes {
				n := n
				point := fmt.Sprintf("L1/%s/n=%d/d=%d", timing, n, d)
				sink, err := rc.newTraceSink(point)
				if err != nil {
					return Figure{}, err
				}
				sum, err := rc.replicate(point, func(i int) (float64, error) {
					seed := workloadSeed(rc.Seed, n, d, i)
					w, err := workloads.get(workloadKey{seed: seed, n: n, d: d})
					if err != nil {
						return 0, err
					}
					rec := &sim.Recorder{}
					cfg := sim.Config{
						Hops:     2,
						Seed:     seed + 1,
						Observer: rec,
					}
					flush := sink.instrument(&cfg, i)
					res, err := sim.Run(w.net.G, w.source, protocol.Generic(timing), cfg)
					if err != nil {
						return 0, err
					}
					if err := flush(); err != nil {
						return 0, err
					}
					if !res.FullDelivery() {
						return 0, fmt.Errorf("latency: delivered %d/%d", res.Delivered, res.N)
					}
					return rec.MeanDeliveryLatency(), nil
				})
				if err = sink.finish(err); err != nil {
					return Figure{}, fmt.Errorf("latency %s n=%d: %w", timing, n, err)
				}
				s.Points = append(s.Points, Point{X: n, Mean: sum.Mean, CI: sum.HalfWidth90, Runs: sum.N})
			}
			panel.Series = append(panel.Series, s)
		}
		fig.Panels = append(fig.Panels, panel)
	}
	return fig, nil
}

// ExtensionByID dispatches the extension experiments by name.
func ExtensionByID(id string, rc RunConfig) (Figure, error) {
	switch id {
	case "cluster":
		return Clustering(rc)
	case "latency":
		return Latency(rc)
	case "mobility":
		return Mobility(rc)
	case "reliability":
		return Reliability(rc)
	case "piggyback":
		return PiggybackAblation(rc)
	case "backoff":
		return BackoffAblation(rc)
	case "visitedunion":
		return VisitedUnionAblation(rc)
	case "crash":
		return CrashDegradation(rc)
	case "crashforward":
		return CrashForwardRatio(rc)
	case "loss":
		return LossDegradation(rc)
	case "helloloss":
		return HelloLossDelivery(rc)
	case "hellolossforward":
		return HelloLossForwardRatio(rc)
	case "hellolosslatency":
		return HelloLossLatency(rc)
	case "restart":
		return RestartDelivery(rc)
	case "restartlatency":
		return RestartLatency(rc)
	default:
		return Figure{}, fmt.Errorf("experiments: unknown extension %q (valid: %v)", id, AllExtensionIDs())
	}
}

// AllExtensionIDs lists the extension experiments.
func AllExtensionIDs() []string {
	return []string{"mobility", "reliability", "piggyback", "backoff", "visitedunion", "cluster", "latency", "crash", "crashforward", "loss", "helloloss", "hellolossforward", "hellolosslatency", "restart", "restartlatency"}
}

// mobilitySeed derives the perturbation seed for one mobility replication.
// The variant label is deliberately excluded (every series sees the same
// movements) while the step is included, so different sweep points move the
// shared workload network differently.
func mobilitySeed(base int64, d, rep, step int) int64 {
	return deriveSeed("mobility", base, d, rep, step)
}
