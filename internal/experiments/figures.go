package experiments

import (
	"fmt"

	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
	"adhocbcast/internal/view"
)

// Figure10 reproduces the timing-options experiment: Static vs FR vs FRB vs
// FRBD generic self-pruning with 2-hop views and ID priority.
func Figure10(rc RunConfig) (Figure, error) {
	rc = rc.withDefaults()
	cfg := sim.Config{Hops: 2, Metric: view.MetricID}
	mk := func(t protocol.Timing, label string) variant {
		return variant{label: label, cfg: cfg, make: func() sim.Protocol { return protocol.Generic(t) }}
	}
	variants := []variant{
		mk(protocol.TimingStatic, "Static"),
		mk(protocol.TimingFirstReceipt, "FR"),
		mk(protocol.TimingBackoffRandom, "FRB"),
		mk(protocol.TimingBackoffDegree, "FRBD"),
	}
	return buildFigure(rc, "10", "Broadcast algorithms with different timing options",
		[]int{2}, variants, nil)
}

// Figure11 reproduces the selection-options experiment: self-pruning (SP),
// neighbor-designating (ND), and the MaxDeg / MinPri hybrids, first-receipt,
// 2-hop views, ID priority.
func Figure11(rc RunConfig) (Figure, error) {
	rc = rc.withDefaults()
	cfg := sim.Config{Hops: 2, Metric: view.MetricID}
	variants := []variant{
		{label: "SP", cfg: cfg, make: protocol.SelfPruningFR},
		{label: "ND", cfg: cfg, make: protocol.NeighborDesignatingFR},
		{label: "MaxDeg", cfg: cfg, make: protocol.HybridMaxDeg},
		{label: "MinPri", cfg: cfg, make: protocol.HybridMinPri},
	}
	return buildFigure(rc, "11", "Dynamic (first-receipt) algorithms with different selection options",
		[]int{2}, variants, nil)
}

// Figure12 reproduces the space experiment: generic first-receipt
// self-pruning under 2-, 3-, 4-, 5-hop and global views, ID priority.
func Figure12(rc RunConfig) (Figure, error) {
	rc = rc.withDefaults()
	var variants []variant
	for _, k := range []int{2, 3, 4, 5} {
		variants = append(variants, variant{
			label: fmt.Sprintf("%d-hop", k),
			cfg:   sim.Config{Hops: k, Metric: view.MetricID},
			make:  func() sim.Protocol { return protocol.Generic(protocol.TimingFirstReceipt) },
		})
	}
	variants = append(variants, variant{
		label: "global",
		cfg:   sim.Config{Hops: 0, Metric: view.MetricID},
		make:  func() sim.Protocol { return protocol.Generic(protocol.TimingFirstReceipt) },
	})
	return buildFigure(rc, "12", "Dynamic self-pruning algorithms based on different local views",
		nil, variants, nil)
}

// Figure13 reproduces the priority experiment: generic first-receipt
// self-pruning under ID, Degree and NCR priorities, 2-hop views.
func Figure13(rc RunConfig) (Figure, error) {
	rc = rc.withDefaults()
	var variants []variant
	for _, m := range []view.Metric{view.MetricID, view.MetricDegree, view.MetricNCR} {
		variants = append(variants, variant{
			label: m.String(),
			cfg:   sim.Config{Hops: 2, Metric: m},
			make:  func() sim.Protocol { return protocol.Generic(protocol.TimingFirstReceipt) },
		})
	}
	return buildFigure(rc, "13", "Dynamic self-pruning algorithms using different priority values",
		nil, variants, nil)
}

// Figure14 reproduces the static special-cases comparison: MPR, enhanced
// Span, Rule k and the generic static algorithm, with 2- and 3-hop views.
// All algorithms except MPR use NCR priority (Span's original
// configuration); MPR's relaxed forwarding rule stands in for its
// designating-time priority.
func Figure14(rc RunConfig) (Figure, error) {
	rc = rc.withDefaults()
	mkv := func(label string, mk func() sim.Protocol) variant {
		return variant{label: label, cfg: sim.Config{Metric: view.MetricNCR}, make: mk}
	}
	variants := []variant{
		mkv("MPR", protocol.MPR),
		mkv("Span", protocol.Span),
		mkv("Rule k", protocol.RuleK),
		mkv("Generic", func() sim.Protocol { return protocol.Generic(protocol.TimingStatic) }),
	}
	return buildFigure(rc, "14", "Static broadcast algorithms", []int{2, 3}, variants, nil)
}

// Figure15 reproduces the first-receipt special-cases comparison: DP, PDP,
// LENWB and the generic FR algorithm, degree priority, 2- and 3-hop views.
func Figure15(rc RunConfig) (Figure, error) {
	rc = rc.withDefaults()
	mkv := func(label string, mk func() sim.Protocol) variant {
		return variant{label: label, cfg: sim.Config{Metric: view.MetricDegree}, make: mk}
	}
	variants := []variant{
		mkv("DP", protocol.DP),
		mkv("PDP", protocol.PDP),
		mkv("LENWB", protocol.LENWB),
		mkv("Generic", func() sim.Protocol { return protocol.Generic(protocol.TimingFirstReceipt) }),
	}
	return buildFigure(rc, "15", "First-receipt broadcast algorithms", []int{2, 3}, variants, nil)
}

// Figure16 reproduces the first-receipt-with-backoff comparison: SBA vs the
// generic FRB algorithm, ID priority, 2- and 3-hop views.
func Figure16(rc RunConfig) (Figure, error) {
	rc = rc.withDefaults()
	mkv := func(label string, mk func() sim.Protocol) variant {
		return variant{label: label, cfg: sim.Config{Metric: view.MetricID}, make: mk}
	}
	variants := []variant{
		mkv("SBA", protocol.SBA),
		mkv("Generic", func() sim.Protocol { return protocol.Generic(protocol.TimingBackoffRandom) }),
	}
	return buildFigure(rc, "16", "First-receipt-with-backoff broadcast algorithms", []int{2, 3}, variants, nil)
}

// buildFigure assembles one figure: a panel per (degree, hop) pair. When
// hops is nil the variants carry their own view depths and panels are per
// degree only.
func buildFigure(rc RunConfig, id, title string, hops []int, variants []variant,
	filter func(v variant) bool) (Figure, error) {
	fig := Figure{ID: id, Title: title}
	for _, d := range rc.Degrees {
		if len(hops) == 0 {
			panel, err := sweep(rc, "fig"+id, fmt.Sprintf("d=%d", d), d, variants)
			if err != nil {
				return Figure{}, err
			}
			fig.Panels = append(fig.Panels, panel)
			continue
		}
		for _, k := range hops {
			vs := make([]variant, 0, len(variants))
			for _, v := range variants {
				if filter != nil && !filter(v) {
					continue
				}
				v.cfg.Hops = k
				vs = append(vs, v)
			}
			panel, err := sweep(rc, "fig"+id, fmt.Sprintf("d=%d, %d-hop", d, k), d, vs)
			if err != nil {
				return Figure{}, err
			}
			fig.Panels = append(fig.Panels, panel)
		}
	}
	return fig, nil
}

// FigureByID dispatches to the figure drivers; valid ids are "10".."16".
func FigureByID(id string, rc RunConfig) (Figure, error) {
	switch id {
	case "10":
		return Figure10(rc)
	case "11":
		return Figure11(rc)
	case "12":
		return Figure12(rc)
	case "13":
		return Figure13(rc)
	case "14":
		return Figure14(rc)
	case "15":
		return Figure15(rc)
	case "16":
		return Figure16(rc)
	default:
		return Figure{}, fmt.Errorf("experiments: unknown figure %q (valid: 10..16)", id)
	}
}

// AllFigureIDs lists the reproducible figures in paper order.
func AllFigureIDs() []string {
	return []string{"10", "11", "12", "13", "14", "15", "16"}
}
