package experiments

import (
	"fmt"
	"hash/fnv"
)

// deriveSeed is the single seed-derivation choke point of the package: every
// deterministic seed — workload, scale, mobility perturbation, fault plan,
// hello exchange, and the grid runner's points, which reach it through the
// experiment drivers — is FNV-64a over "domain|base|part|part|..." (the
// leading "domain|" is omitted for the workload domain, whose format
// predates the others), masked to 62 bits so it is non-negative and survives
// the simulator's seed+1 offsets without overflow.
//
// The mask discards 2 bits, so distinct inputs can in principle collide;
// TestDeriveSeedCollisionFree enumerates every seed the full default
// experiment grid can request and asserts they are pairwise distinct, which
// pins the derivation: any change to the format strings or the mask that
// introduces a collision in the shipped grid fails the build.
func deriveSeed(domain string, base int64, parts ...int) int64 {
	h := fnv.New64a()
	if domain != "" {
		fmt.Fprintf(h, "%s|", domain)
	}
	fmt.Fprintf(h, "%d", base)
	for _, p := range parts {
		fmt.Fprintf(h, "|%d", p)
	}
	return int64(h.Sum64() & (1<<62 - 1))
}
