package experiments

import (
	"math/rand"
	"sort"
	"sync"

	"adhocbcast/internal/geo"
)

// workloadSeed deliberately excludes the variant label so that every series
// of a figure sees the same replication workloads (common random numbers).
// Before the cache, that meant every variant of a panel regenerated the same
// (n, d, rep) network — rejection sampling and exact-link-count radius
// search included — once per variant, 4-6x per figure. The cache generates
// each workload once and shares it read-only across variants and across
// concurrently measured points.
//
// Workload generation is a pure function of the key, so cache hits, misses
// and evictions can never change experiment results — only how often a
// network is rebuilt.

// workload is one cached replication input: the generated network and the
// broadcast source drawn immediately after it from the same seeded stream
// (the exact sequence the uncached path used).
type workload struct {
	net    *geo.Network
	source int
}

// workloadKey identifies one replication workload. The seed alone determines
// the generator stream; n and d are part of the key defensively so that a
// seed collision between different configurations cannot alias entries.
type workloadKey struct {
	seed int64
	n, d int
}

// workloadCache is a bounded, concurrency-safe memo of generated workloads.
// Entries are generated at most once (concurrent requesters for the same key
// block on the entry's once and share the result), and an approximate-LRU
// batch eviction keeps the map bounded.
type workloadCache struct {
	mu      sync.Mutex
	cap     int
	tick    int64
	entries map[workloadKey]*workloadEntry
}

type workloadEntry struct {
	once sync.Once
	seen int64 // last-access stamp, guarded by the cache mutex
	w    workload
	err  error
}

func newWorkloadCache(capacity int) *workloadCache {
	if capacity < 1 {
		capacity = 1
	}
	return &workloadCache{
		cap:     capacity,
		entries: make(map[workloadKey]*workloadEntry, capacity),
	}
}

// workloadCacheSize bounds the shared cache. A full paper-criterion panel
// keeps up to MaxRuns workloads per in-flight data point live; at ~10 KB per
// n=100 network this cap costs a few tens of MB in the worst case.
const workloadCacheSize = 4096

// workloads is the process-wide cache shared by the figure and extension
// drivers.
var workloads = newWorkloadCache(workloadCacheSize)

// get returns the workload for key, generating it at most once. The returned
// network is shared and must be treated as read-only.
func (c *workloadCache) get(key workloadKey) (workload, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		if len(c.entries) >= c.cap {
			c.evictLocked()
		}
		e = &workloadEntry{}
		c.entries[key] = e
	}
	c.tick++
	e.seen = c.tick
	c.mu.Unlock()

	e.once.Do(func() {
		rng := rand.New(rand.NewSource(key.seed))
		// Seed here is a diagnostic label: a generation failure names the
		// exact workload stream that produced it.
		net, err := geo.Generate(geo.Config{N: key.n, AvgDegree: float64(key.d), Seed: key.seed}, rng)
		if err != nil {
			e.err = err
			return
		}
		e.w = workload{net: net, source: rng.Intn(key.n)}
	})
	return e.w, e.err
}

// evictLocked drops the least recently used quarter of the entries, so the
// O(cap) scan amortizes to O(1) per insertion. In-flight holders of evicted
// entries keep their pointers; eviction only forces future regeneration.
func (c *workloadCache) evictLocked() {
	stamps := make([]int64, 0, len(c.entries))
	for _, e := range c.entries {
		stamps = append(stamps, e.seen)
	}
	sort.Slice(stamps, func(i, j int) bool { return stamps[i] < stamps[j] })
	cutoff := stamps[len(stamps)/4]
	for k, e := range c.entries {
		if e.seen <= cutoff {
			delete(c.entries, k)
		}
	}
}

// len reports the current entry count (for tests).
func (c *workloadCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
