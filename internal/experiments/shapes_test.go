package experiments

import (
	"testing"

	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
	"adhocbcast/internal/stats"
	"adhocbcast/internal/view"
)

// TestPaperShapes is the qualitative regression suite: it asserts every
// ordering the paper's evaluation reports, with enough replications that the
// comparisons are stable (common random numbers across variants make the
// paired comparisons low-variance). A failure here means a change broke one
// of the reproduced results.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical shape suite")
	}
	rc := RunConfig{
		Replicate: stats.ReplicateOptions{MinRuns: 40, MaxRuns: 60, RelTol: 0.1},
		Seed:      42,
	}
	rc = rc.withDefaults()

	mean := func(t *testing.T, n, d int, cfg sim.Config, mk func() sim.Protocol) float64 {
		t.Helper()
		sum, err := measure(rc, "shape", n, d, variant{label: "shape", cfg: cfg, make: mk})
		if err != nil {
			t.Fatal(err)
		}
		return sum.Mean
	}
	assertLess := func(t *testing.T, what string, a, b float64) {
		t.Helper()
		if a >= b {
			t.Errorf("%s: want %.2f < %.2f", what, a, b)
		}
	}

	cfg2 := sim.Config{Hops: 2, Metric: view.MetricID}
	gen := func(tm protocol.Timing) func() sim.Protocol {
		return func() sim.Protocol { return protocol.Generic(tm) }
	}

	t.Run("Figure10_Timing", func(t *testing.T) {
		t.Parallel()
		static := mean(t, 100, 6, cfg2, gen(protocol.TimingStatic))
		fr := mean(t, 100, 6, cfg2, gen(protocol.TimingFirstReceipt))
		frb := mean(t, 100, 6, cfg2, gen(protocol.TimingBackoffRandom))
		frbd := mean(t, 100, 6, cfg2, gen(protocol.TimingBackoffDegree))
		assertLess(t, "FR < Static", fr, static)
		assertLess(t, "FRB < FR", frb, fr)
		assertLess(t, "FRBD < FR", frbd, fr)
	})

	t.Run("Figure11_Selection_Sparse", func(t *testing.T) {
		t.Parallel()
		sp := mean(t, 100, 6, cfg2, protocol.SelfPruningFR)
		nd := mean(t, 100, 6, cfg2, protocol.NeighborDesignatingFR)
		maxDeg := mean(t, 100, 6, cfg2, protocol.HybridMaxDeg)
		minPri := mean(t, 100, 6, cfg2, protocol.HybridMinPri)
		// Paper: worst to best is MinPri, ND, SP, MaxDeg.
		assertLess(t, "ND < MinPri", nd, minPri)
		assertLess(t, "SP < ND", sp, nd)
		assertLess(t, "MaxDeg < SP", maxDeg, sp)
	})

	t.Run("Figure11_Selection_Dense", func(t *testing.T) {
		t.Parallel()
		sp := mean(t, 100, 18, cfg2, protocol.SelfPruningFR)
		nd := mean(t, 100, 18, cfg2, protocol.NeighborDesignatingFR)
		minPri := mean(t, 100, 18, cfg2, protocol.HybridMinPri)
		// Paper: at n=100 dense, ND is worse than MinPri, which is worse
		// than SP.
		assertLess(t, "MinPri < ND", minPri, nd)
		assertLess(t, "SP < MinPri", sp, minPri)
	})

	t.Run("Figure12_Space", func(t *testing.T) {
		t.Parallel()
		h2 := mean(t, 100, 6, sim.Config{Hops: 2}, gen(protocol.TimingFirstReceipt))
		h3 := mean(t, 100, 6, sim.Config{Hops: 3}, gen(protocol.TimingFirstReceipt))
		global := mean(t, 100, 6, sim.Config{Hops: 0}, gen(protocol.TimingFirstReceipt))
		assertLess(t, "3-hop < 2-hop", h3, h2)
		if global > h3 {
			t.Errorf("global (%.2f) worse than 3-hop (%.2f)", global, h3)
		}
		// "Not significantly worse": 2-hop within 10% of global.
		if h2 > global*1.10 {
			t.Errorf("2-hop (%.2f) more than 10%% above global (%.2f)", h2, global)
		}
	})

	t.Run("Figure13_Priority", func(t *testing.T) {
		t.Parallel()
		id := mean(t, 100, 6, sim.Config{Hops: 2, Metric: view.MetricID}, gen(protocol.TimingFirstReceipt))
		deg := mean(t, 100, 6, sim.Config{Hops: 2, Metric: view.MetricDegree}, gen(protocol.TimingFirstReceipt))
		ncr := mean(t, 100, 6, sim.Config{Hops: 2, Metric: view.MetricNCR}, gen(protocol.TimingFirstReceipt))
		assertLess(t, "Degree < ID", deg, id)
		if ncr > deg {
			t.Errorf("NCR (%.2f) worse than Degree (%.2f)", ncr, deg)
		}
	})

	t.Run("Figure14_Static", func(t *testing.T) {
		t.Parallel()
		cfg := sim.Config{Hops: 2, Metric: view.MetricNCR}
		mpr := mean(t, 100, 18, cfg, protocol.MPR)
		span := mean(t, 100, 18, cfg, protocol.Span)
		rulek := mean(t, 100, 18, cfg, protocol.RuleK)
		generic := mean(t, 100, 18, cfg, gen(protocol.TimingStatic))
		assertLess(t, "Span < MPR", span, mpr)
		assertLess(t, "Rule k < Span", rulek, span)
		assertLess(t, "Generic < Rule k", generic, rulek)
	})

	t.Run("Figure15_FirstReceipt", func(t *testing.T) {
		t.Parallel()
		cfg := sim.Config{Hops: 2, Metric: view.MetricDegree}
		dp := mean(t, 100, 18, cfg, protocol.DP)
		pdp := mean(t, 100, 18, cfg, protocol.PDP)
		tdp := mean(t, 100, 18, cfg, protocol.TDP)
		lenwb := mean(t, 100, 18, cfg, protocol.LENWB)
		generic := mean(t, 100, 18, cfg, gen(protocol.TimingFirstReceipt))
		assertLess(t, "PDP < DP", pdp, dp)
		assertLess(t, "TDP <= PDP", tdp, pdp*1.001)
		assertLess(t, "LENWB < PDP", lenwb, pdp)
		assertLess(t, "Generic <= LENWB", generic, lenwb*1.01)
	})

	t.Run("Figure16_Backoff", func(t *testing.T) {
		t.Parallel()
		sba := mean(t, 100, 18, cfg2, protocol.SBA)
		generic := mean(t, 100, 18, cfg2, gen(protocol.TimingBackoffRandom))
		// "Significantly outperforms": at least 25% fewer forward nodes in
		// dense networks.
		if generic > 0.75*sba {
			t.Errorf("Generic (%.2f) not significantly below SBA (%.2f)", generic, sba)
		}
	})

	t.Run("FloodingUpperBound", func(t *testing.T) {
		t.Parallel()
		flood := mean(t, 60, 6, cfg2, protocol.Flooding)
		if flood != 60 {
			t.Errorf("flooding mean %.2f != n", flood)
		}
	})
}
