package experiments

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"adhocbcast/internal/geo"
)

// TestCacheMatchesDirectGeneration pins the cache to the exact sequence the
// uncached path used: seed the generator, generate, then draw the source from
// the same stream. Any divergence would silently change every figure.
func TestCacheMatchesDirectGeneration(t *testing.T) {
	c := newWorkloadCache(16)
	for _, key := range []workloadKey{
		{seed: 101, n: 20, d: 6},
		{seed: 202, n: 30, d: 18},
		{seed: 303, n: 50, d: 6},
	} {
		w, err := c.get(key)
		if err != nil {
			t.Fatalf("get(%+v): %v", key, err)
		}
		rng := rand.New(rand.NewSource(key.seed))
		net, err := geo.Generate(geo.Config{N: key.n, AvgDegree: float64(key.d)}, rng)
		if err != nil {
			t.Fatalf("direct generate(%+v): %v", key, err)
		}
		source := rng.Intn(key.n)
		if w.source != source {
			t.Fatalf("key %+v: cached source %d, direct %d", key, w.source, source)
		}
		if w.net.G.N() != net.G.N() {
			t.Fatalf("key %+v: node counts differ", key)
		}
		for v := 0; v < net.G.N(); v++ {
			if !reflect.DeepEqual(w.net.G.Neighbors(v), net.G.Neighbors(v)) {
				t.Fatalf("key %+v: adjacency of %d differs", key, v)
			}
		}
		if !reflect.DeepEqual(w.net.Pos, net.Pos) || w.net.Range != net.Range {
			t.Fatalf("key %+v: geometry differs", key)
		}
	}
}

// TestCacheHitReturnsSamePointer verifies a second get is a genuine cache hit
// (the shared, read-only network) rather than a regeneration.
func TestCacheHitReturnsSamePointer(t *testing.T) {
	c := newWorkloadCache(16)
	key := workloadKey{seed: 7, n: 20, d: 6}
	a, err := c.get(key)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.get(key)
	if err != nil {
		t.Fatal(err)
	}
	if a.net != b.net {
		t.Fatal("second get regenerated the network")
	}
}

// TestCacheEvictionBounds fills a small cache well past capacity and checks
// the entry count stays bounded while results stay correct.
func TestCacheEvictionBounds(t *testing.T) {
	c := newWorkloadCache(8)
	for i := 0; i < 40; i++ {
		key := workloadKey{seed: int64(1000 + i), n: 20, d: 6}
		w, err := c.get(key)
		if err != nil {
			t.Fatal(err)
		}
		if w.net == nil || w.source < 0 || w.source >= 20 {
			t.Fatalf("bad workload after eviction churn: %+v", w)
		}
		if got := c.len(); got > 8 {
			t.Fatalf("cache grew past capacity: %d entries", got)
		}
	}
	// Evicted keys regenerate to the identical workload.
	key := workloadKey{seed: 1000, n: 20, d: 6}
	w, err := c.get(key)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(key.seed))
	net, err := geo.Generate(geo.Config{N: key.n, AvgDegree: 6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if w.source != rng.Intn(key.n) || !reflect.DeepEqual(w.net.Pos, net.Pos) {
		t.Fatal("regenerated workload differs from original")
	}
}

// TestCacheConcurrentAccess hammers one small cache from many goroutines over
// overlapping keys; every goroutine must observe the deterministic workload.
// Run under -race this also exercises the locking discipline.
func TestCacheConcurrentAccess(t *testing.T) {
	c := newWorkloadCache(8)
	want := map[workloadKey]int{}
	for i := 0; i < 12; i++ {
		key := workloadKey{seed: int64(i), n: 20, d: 6}
		rng := rand.New(rand.NewSource(key.seed))
		if _, err := geo.Generate(geo.Config{N: key.n, AvgDegree: 6}, rng); err != nil {
			t.Fatal(err)
		}
		want[key] = rng.Intn(key.n)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 24; i++ {
				key := workloadKey{seed: int64((g + i) % 12), n: 20, d: 6}
				w, err := c.get(key)
				if err != nil {
					errs <- err
					return
				}
				if w.source != want[key] {
					t.Errorf("key %+v: source %d, want %d", key, w.source, want[key])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCacheGenerationError checks that an impossible configuration surfaces
// its error to every requester instead of caching a zero workload silently.
func TestCacheGenerationError(t *testing.T) {
	c := newWorkloadCache(4)
	key := workloadKey{seed: 1, n: 2, d: 30} // degree unreachable with 2 nodes
	if _, err := c.get(key); err == nil {
		t.Fatal("expected generation error")
	}
	if _, err := c.get(key); err == nil {
		t.Fatal("cached entry lost the error")
	}
}
