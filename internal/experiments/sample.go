package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"adhocbcast/internal/geo"
	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
	"adhocbcast/internal/view"
)

// SampleRun is one broadcast on the Figure 9 sample network.
type SampleRun struct {
	// Label identifies the algorithm ("static", "FR", "FRB").
	Label string
	// Hops is the view depth used.
	Hops int
	// Forward lists the forward nodes in transmission order.
	Forward []int
}

// Sample reproduces Figure 9: a single random 100-node network on which the
// static, first-receipt, and first-receipt-with-backoff generic algorithms
// are run with 2- and 3-hop views, yielding the forward sets to render.
type Sample struct {
	// Net is the generated network.
	Net *geo.Network
	// Source is the broadcast source.
	Source int
	// Runs holds one entry per (algorithm, hops) combination.
	Runs []SampleRun
}

// NewSample generates the Figure 9 sample scenario from the given seed.
func NewSample(n int, d float64, seed int64) (*Sample, error) {
	rng := rand.New(rand.NewSource(seed))
	net, err := geo.Generate(geo.Config{N: n, AvgDegree: d}, rng)
	if err != nil {
		return nil, err
	}
	s := &Sample{Net: net, Source: rng.Intn(n)}
	timings := []struct {
		label  string
		timing protocol.Timing
	}{
		{label: "static", timing: protocol.TimingStatic},
		{label: "FR", timing: protocol.TimingFirstReceipt},
		{label: "FRB", timing: protocol.TimingBackoffRandom},
	}
	for _, hops := range []int{2, 3} {
		for _, t := range timings {
			res, err := sim.Run(net.G, s.Source, protocol.Generic(t.timing), sim.Config{
				Hops:   hops,
				Metric: view.MetricID,
				Seed:   seed + 1,
			})
			if err != nil {
				return nil, err
			}
			if !res.FullDelivery() {
				return nil, fmt.Errorf("experiments: sample %s/%d-hop delivered %d/%d",
					t.label, hops, res.Delivered, res.N)
			}
			s.Runs = append(s.Runs, SampleRun{
				Label:   t.label,
				Hops:    hops,
				Forward: res.Forward,
			})
		}
	}
	return s, nil
}

// Render draws the sample network as an ASCII grid of the given width and
// height: forward nodes of the selected run are '#', the source 'S', other
// nodes '.', empty space ' '.
func (s *Sample) Render(run SampleRun, width, height int) string {
	if width < 10 {
		width = 10
	}
	if height < 10 {
		height = 10
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	forward := make(map[int]bool, len(run.Forward))
	for _, v := range run.Forward {
		forward[v] = true
	}
	side := 100.0
	for v, p := range s.Net.Pos {
		x := int(p.X / side * float64(width-1))
		y := int(p.Y / side * float64(height-1))
		ch := byte('.')
		if forward[v] {
			ch = '#'
		}
		if v == s.Source {
			ch = 'S'
		}
		grid[height-1-y][x] = ch
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s, %d-hop: %d forward nodes\n", run.Label, run.Hops, len(run.Forward))
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}
