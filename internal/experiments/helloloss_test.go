package experiments

import (
	"reflect"
	"testing"

	"adhocbcast/internal/stats"
)

// helloTestConfig trims the hello-loss sweep so the shape tests stay fast
// while keeping enough replication to separate the curves.
func helloTestConfig(seed int64) RunConfig {
	return RunConfig{
		Degrees:        []int{6},
		Replicate:      stats.ReplicateOptions{MinRuns: 15, MaxRuns: 20, RelTol: 0.3},
		Seed:           seed,
		HelloLossRates: []float64{0, 0.3},
	}
}

func TestHelloLossDeliveryShape(t *testing.T) {
	fig, err := HelloLossDelivery(helloTestConfig(31))
	if err != nil {
		t.Fatal(err)
	}
	byLabel := seriesByLabel(t, fig.Panels[0])
	// With lossless hellos the per-node views equal the paper's k-hop views,
	// so every variant delivers fully — the sweep's zero point is the paper.
	for _, s := range fig.Panels[0].Series {
		if s.Points[0].Mean != 100 {
			t.Fatalf("%s delivered %.2f%% with lossless hellos", s.Label, s.Points[0].Mean)
		}
	}
	last := func(label string) float64 {
		s := byLabel[label]
		return s.Points[len(s.Points)-1].Mean
	}
	// Flooding ignores views: hello loss cannot touch it.
	if last("Flooding") != 100 {
		t.Fatalf("flooding delivered %.2f%% under hello loss", last("Flooding"))
	}
	// The generic pruners must measurably degrade on imperfect views, and the
	// conservative fallback must buy delivery back for the same pruner.
	for _, label := range []string{"Generic-FR", "Generic-FRB"} {
		if last(label) >= 100 {
			t.Fatalf("%s did not degrade under 30%% hello loss: %.2f%%", label, last(label))
		}
		if last(label+"+CF") <= last(label) {
			t.Fatalf("conservative fallback did not improve %s: %.2f%% vs %.2f%%",
				label, last(label+"+CF"), last(label))
		}
	}
}

func TestHelloLossForwardRatioShape(t *testing.T) {
	fig, err := HelloLossForwardRatio(helloTestConfig(33))
	if err != nil {
		t.Fatal(err)
	}
	byLabel := seriesByLabel(t, fig.Panels[0])
	last := func(label string) float64 {
		s := byLabel[label]
		return s.Points[len(s.Points)-1].Mean
	}
	// The fallback's recovered delivery is paid in forward nodes: under hello
	// loss the +CF curve must sit above its plain counterpart and below (or
	// at) flooding's all-forward ceiling.
	for _, label := range []string{"Generic-FR", "Generic-FRB"} {
		if last(label+"+CF") <= last(label) {
			t.Fatalf("fallback did not raise %s forward ratio: %.2f%% vs %.2f%%",
				label, last(label+"+CF"), last(label))
		}
		if last(label+"+CF") > last("Flooding") {
			t.Fatalf("%s+CF forward ratio (%.2f%%) above flooding (%.2f%%)",
				label, last(label+"+CF"), last("Flooding"))
		}
	}
}

func TestHelloLossDeterministicAcrossParallelism(t *testing.T) {
	base := RunConfig{
		Degrees:        []int{8},
		Replicate:      stats.ReplicateOptions{MinRuns: 8, MaxRuns: 12, RelTol: 0.5},
		Seed:           9,
		HelloLossRates: []float64{0.2},
	}
	for _, id := range []string{"helloloss", "hellolossforward", "hellolosslatency"} {
		id := id
		t.Run(id, func(t *testing.T) {
			serial := base
			serial.ReplicateParallelism = 1
			parallel := base
			parallel.ReplicateParallelism = 4
			a, err := ExtensionByID(id, serial)
			if err != nil {
				t.Fatal(err)
			}
			b, err := ExtensionByID(id, parallel)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("figure differs across ReplicateParallelism:\nserial:   %+v\nparallel: %+v", a, b)
			}
		})
	}
}
