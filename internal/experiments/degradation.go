package experiments

import (
	"fmt"
	"math"

	"adhocbcast/internal/fault"
	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
)

// The degradation experiments quantify how gracefully each point of the
// generic framework's design space survives hostile conditions — the
// Section 1 motivation the paper's collision-free static evaluation leaves
// unmeasured. Crashed nodes partition the network, so delivery is scored
// against the nodes still reachable from the source (a partition is a
// workload property, not a protocol failure); the NACK recovery layer is
// measured as an overlay on the most aggressive pruner.

// crashAmbientLoss is the background per-receipt loss rate of the crash
// sweeps. Crashes alone drop copies silently — nothing is overheard, so
// recovery has nothing to react to; a lossy channel underneath is both the
// realistic companion condition and what lets the NACK layer show its value
// alongside the crash-induced degradation.
const crashAmbientLoss = 0.1

// degradeVariant is one curve of a degradation figure: a protocol plus the
// recovery setting layered on it.
type degradeVariant struct {
	label string
	make  func() sim.Protocol
	nack  bool
}

func degradeVariants() []degradeVariant {
	return []degradeVariant{
		{label: "Flooding", make: protocol.Flooding},
		{label: "Generic-FR", make: func() sim.Protocol { return protocol.Generic(protocol.TimingFirstReceipt) }},
		{label: "Generic-FRB", make: func() sim.Protocol { return protocol.Generic(protocol.TimingBackoffRandom) }},
		{label: "Generic-FRB+NACK", make: func() sim.Protocol { return protocol.Generic(protocol.TimingBackoffRandom) }, nack: true},
	}
}

// degradeSeed derives the fault-plan seed for one (replication, sweep value)
// cell. The variant is deliberately excluded: every curve of a figure sees
// the same networks, sources, and fault plans (common random numbers).
func degradeSeed(base int64, n, d, rep, permille int) int64 {
	return deriveSeed("degrade", base, n, d, rep, permille)
}

// CrashDegradation sweeps the crash fraction: X is the percentage of nodes
// that fail-stop mid-broadcast (uniform crash times over the first 10
// slots, source protected) on top of a 10% lossy channel, and the series
// report the reachability-aware delivery ratio. Flooding's redundancy keeps
// it near-perfect; the pruning protocols' sparse forward sets lose whole
// subtrees when a forwarder dies; the NACK layer claws back the
// loss-induced part of the gap.
func CrashDegradation(rc RunConfig) (Figure, error) {
	return crashSweep(rc, "D1",
		"Degradation: reachable delivery vs crash fraction (n=100, 10% loss)",
		"reachable delivery %",
		func(res sim.Result) float64 { return 100 * res.ReachableDeliveryRatio() })
}

// CrashForwardRatio is the companion cost curve of CrashDegradation: the
// fraction of delivered nodes that forwarded. It shows what the delivery
// gap buys — flooding pays with (nearly) every node that hears the packet
// retransmitting, while the pruners keep their forward sets small even as
// crashes shrink the network under them. Delivered (not reachable) is the
// denominator because only nodes holding the packet can forward; nodes cut
// off mid-broadcast may have received and forwarded before the cut.
func CrashForwardRatio(rc RunConfig) (Figure, error) {
	return crashSweep(rc, "D2",
		"Degradation: forward ratio vs crash fraction (n=100, 10% loss)",
		"forward % of delivered",
		func(res sim.Result) float64 {
			if res.Delivered == 0 {
				return 0
			}
			return 100 * float64(res.ForwardCount()) / float64(res.Delivered)
		})
}

func crashSweep(rc RunConfig, id, title, unit string, metric func(sim.Result) float64) (Figure, error) {
	rc = rc.withDefaults()
	fig := Figure{ID: id, Title: title, Unit: unit}
	for _, d := range rc.Degrees {
		panel := Panel{Title: fmt.Sprintf("d=%d, n=100, 2-hop", d)}
		for _, v := range degradeVariants() {
			s := Series{Label: v.label}
			for _, frac := range rc.CrashFractions {
				frac, v := frac, v
				pct := int(math.Round(100 * frac))
				point := fmt.Sprintf("%s/%s/crash=%d/d=%d", id, v.label, pct, d)
				sink, err := rc.newTraceSink(point)
				if err != nil {
					return Figure{}, err
				}
				sum, err := rc.replicate(point, func(i int) (float64, error) {
					seed := workloadSeed(rc.Seed, 100, d, i)
					w, err := workloads.get(workloadKey{seed: seed, n: 100, d: d})
					if err != nil {
						return 0, err
					}
					plan, err := fault.NewPlan(w.net.G, fault.Params{
						CrashFraction: frac,
						Protect:       []int{w.source},
					}, degradeSeed(rc.Seed, 100, d, i, pct*10))
					if err != nil {
						return 0, err
					}
					cfg := sim.Config{
						Hops:         2,
						Seed:         seed + 1,
						LossRate:     crashAmbientLoss,
						Faults:       plan,
						NACKRecovery: v.nack,
					}
					flush := sink.instrument(&cfg, i)
					res, err := sim.Run(w.net.G, w.source, v.make(), cfg)
					if err != nil {
						return 0, err
					}
					if err := flush(); err != nil {
						return 0, err
					}
					return metric(res), nil
				})
				if err = sink.finish(err); err != nil {
					return Figure{}, fmt.Errorf("%s %s crash %d%%: %w", id, v.label, pct, err)
				}
				s.Points = append(s.Points, Point{X: pct, Mean: sum.Mean, CI: sum.HalfWidth90, Runs: sum.N})
			}
			panel.Series = append(panel.Series, s)
		}
		fig.Panels = append(fig.Panels, panel)
	}
	return fig, nil
}

// LossDegradation sweeps the per-receipt loss rate with no faults: X is the
// loss percentage, series report the delivery ratio. This is the cleanest
// view of the recovery layer: with every drop overheard, the NACK variant
// buys back most of what pruning loses to the channel.
func LossDegradation(rc RunConfig) (Figure, error) {
	rc = rc.withDefaults()
	fig := Figure{
		ID:    "D3",
		Title: "Degradation: delivery vs loss rate (n=100)",
		Unit:  "delivery %",
	}
	for _, d := range rc.Degrees {
		panel := Panel{Title: fmt.Sprintf("d=%d, n=100, 2-hop", d)}
		for _, v := range degradeVariants() {
			s := Series{Label: v.label}
			for _, rate := range rc.LossRates {
				rate, v := rate, v
				pct := int(math.Round(100 * rate))
				point := fmt.Sprintf("D3/%s/loss=%d/d=%d", v.label, pct, d)
				sink, err := rc.newTraceSink(point)
				if err != nil {
					return Figure{}, err
				}
				sum, err := rc.replicate(point, func(i int) (float64, error) {
					seed := workloadSeed(rc.Seed, 100, d, i)
					w, err := workloads.get(workloadKey{seed: seed, n: 100, d: d})
					if err != nil {
						return 0, err
					}
					cfg := sim.Config{
						Hops:         2,
						Seed:         seed + 1,
						LossRate:     rate,
						NACKRecovery: v.nack,
					}
					flush := sink.instrument(&cfg, i)
					res, err := sim.Run(w.net.G, w.source, v.make(), cfg)
					if err != nil {
						return 0, err
					}
					if err := flush(); err != nil {
						return 0, err
					}
					return 100 * res.DeliveryRatio(), nil
				})
				if err = sink.finish(err); err != nil {
					return Figure{}, fmt.Errorf("D3 %s loss %d%%: %w", v.label, pct, err)
				}
				s.Points = append(s.Points, Point{X: pct, Mean: sum.Mean, CI: sum.HalfWidth90, Runs: sum.N})
			}
			panel.Series = append(panel.Series, s)
		}
		fig.Panels = append(fig.Panels, panel)
	}
	return fig, nil
}
