package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"sync"

	"adhocbcast/internal/geo"
	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
	"adhocbcast/internal/stats"
	"adhocbcast/internal/traffic"
)

// The load sweep is the heavy-traffic workload: instead of one broadcast per
// run, a deterministic Poisson process injects concurrent broadcast sessions
// against the contention-aware MAC (carrier sense, per-node transmit queues,
// overlap collisions), and the swept axis is the offered load. The measured
// curves — throughput, delivery ratio, p50/p99 latency, queue drops — show
// the saturation knee: throughput tracks offered load until the channel
// saturates, then plateaus while latency and drops climb. See
// docs/traffic-model.md for the model and EXPERIMENTS.md for reading the
// committed table.

// LoadConfig controls a saturation (offered-load) sweep.
type LoadConfig struct {
	// N is the network size (default 100) and Degree the target average
	// degree (default 6, the paper's sparse setting).
	N      int
	Degree int
	// Rates lists the swept offered loads in broadcast sessions per slot
	// across the whole network (default 0.02, 0.05, 0.1, 0.2, 0.4).
	Rates []float64
	// Sources is the number of distinct traffic sources (default 8).
	Sources int
	// Horizon is the injection window in slots (default 400); the run itself
	// continues until the event queue drains.
	Horizon float64
	// QueueCap is the per-node transmit queue capacity (default 8,
	// tail-drop).
	QueueCap int
	// Replicates is the fixed per-point replication count (default 5).
	Replicates int
	// Seed is the base workload seed (default 42).
	Seed int64
	// Parallelism bounds the replicates evaluated concurrently within a
	// point (default GOMAXPROCS). Results are deterministic for any value:
	// every replicate derives from (Seed, n, d, rate, rep) alone and metrics
	// fold in replicate order.
	Parallelism int
	// Hops is the local-view depth (default 2).
	Hops int
	// Engine selects the simulation engine (default EngineFast); the sweep
	// is engine-independent, which TestLoadSweepDeterminism pins.
	Engine sim.EngineKind
	// Emit, when non-nil, receives each completed row as soon as its point
	// finishes, in (rate, variant) order (cached rows included).
	Emit func(LoadRow)
	// Runner, when non-nil, intercepts each rate point's computation — the
	// caching hook internal/grid uses, exactly like ScaleConfig.Runner.
	Runner func(point string, compute func() ([]LoadRow, error)) ([]LoadRow, error)
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.N == 0 {
		c.N = 100
	}
	if c.Degree == 0 {
		c.Degree = 6
	}
	if len(c.Rates) == 0 {
		c.Rates = []float64{0.02, 0.05, 0.1, 0.2, 0.4}
	}
	if c.Sources == 0 {
		c.Sources = 8
	}
	if c.Horizon == 0 {
		c.Horizon = 400
	}
	if c.QueueCap == 0 {
		c.QueueCap = 8
	}
	if c.Replicates <= 0 {
		c.Replicates = 5
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.Hops <= 0 {
		c.Hops = 2
	}
	return c
}

// LoadRow is one (rate, variant) result of a saturation sweep. Throughput is
// in delivered session-equivalents per slot (see sim.TrafficResult.
// Throughput), Delivery in percent of (session, node) pairs, latencies in
// slots relative to each session's injection, QueueDrops in drops per
// injected session. CI fields are 90% half-widths over the replicates.
type LoadRow struct {
	Rate         float64
	Variant      string
	Replicates   int
	Throughput   float64
	ThroughputCI float64
	Delivery     float64
	DeliveryCI   float64
	LatencyP50   float64
	LatencyP50CI float64
	LatencyP99   float64
	LatencyP99CI float64
	QueueDrops   float64
	QueueDropsCI float64
}

// loadVariants are the protocols the sweep saturates: blind flooding as the
// channel-load worst case, the generic framework's first-receipt and
// backoff policies, and the backoff policy with NACK recovery — so the
// recovery layer is exercised under real contention, not just random loss.
func loadVariants() []struct {
	label string
	make  func() sim.Protocol
	nack  bool
} {
	return []struct {
		label string
		make  func() sim.Protocol
		nack  bool
	}{
		{label: "Flooding", make: protocol.Flooding},
		{label: "Generic-FR", make: func() sim.Protocol { return protocol.Generic(protocol.TimingFirstReceipt) }},
		{label: "Generic-FRB", make: func() sim.Protocol { return protocol.Generic(protocol.TimingBackoffRandom) }},
		{label: "Generic-FRB+NACK", make: func() sim.Protocol { return protocol.Generic(protocol.TimingBackoffRandom) }, nack: true},
	}
}

// ratePermille converts an offered load to the integer sessions-per-1000-
// slots encoding used in seeds and point labels (floats never enter either).
func ratePermille(rate float64) int {
	return int(math.Round(rate * 1000))
}

// loadSeed derives the deterministic workload seed of one (rate, rep) cell.
// Variants are excluded: every variant of a replicate sees the same network,
// the same traffic plan, and the same seeds (common random numbers).
func loadSeed(base int64, n, d, permille, rep int) int64 {
	return deriveSeed("load", base, n, d, permille, rep)
}

// loadSample is the per-(replicate, variant) measurement tuple.
type loadSample struct {
	throughput float64
	delivery   float64
	p50        float64
	p99        float64
	qdrops     float64
}

// Load runs the saturation sweep and returns one row per (rate, variant), in
// sweep order. Points run strictly in rate order; within a point, replicates
// run on up to Parallelism workers.
func Load(cfg LoadConfig) ([]LoadRow, error) {
	cfg = cfg.withDefaults()
	var rows []LoadRow
	for _, rate := range cfg.Rates {
		point := fmt.Sprintf("load/rpm=%d/n=%d/d=%d/reps=%d",
			ratePermille(rate), cfg.N, cfg.Degree, cfg.Replicates)
		rate := rate
		compute := func() ([]LoadRow, error) { return loadPoint(cfg, rate) }
		var pointRows []LoadRow
		var err error
		if cfg.Runner != nil {
			pointRows, err = cfg.Runner(point, compute)
		} else {
			pointRows, err = compute()
		}
		if err != nil {
			return nil, err
		}
		for _, row := range pointRows {
			rows = append(rows, row)
			if cfg.Emit != nil {
				cfg.Emit(row)
			}
		}
	}
	return rows, nil
}

// loadPoint measures one rate point: Replicates replicates on up to
// Parallelism workers, folded into one row per variant in replicate order so
// the summary is bit-identical for any worker count.
func loadPoint(cfg LoadConfig, rate float64) ([]LoadRow, error) {
	variants := loadVariants()
	nreps := cfg.Replicates
	samples := make([][]loadSample, nreps)
	errs := make([]error, nreps)
	workers := cfg.Parallelism
	if workers > nreps {
		workers = nreps
	}
	reps := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			arena := sim.NewArena()
			for rep := range reps {
				samples[rep], errs[rep] = loadReplicate(cfg, rate, rep, arena)
			}
		}()
	}
	for rep := 0; rep < nreps; rep++ {
		reps <- rep
	}
	close(reps)
	wg.Wait()

	for rep, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("load rate=%g rep=%d: %w", rate, rep, err)
		}
	}
	rows := make([]LoadRow, 0, len(variants))
	for vi, v := range variants {
		var thr, del, p50, p99, qd stats.Accumulator
		for rep := 0; rep < nreps; rep++ {
			s := samples[rep][vi]
			thr.Add(s.throughput)
			del.Add(s.delivery)
			p50.Add(s.p50)
			p99.Add(s.p99)
			qd.Add(s.qdrops)
		}
		ts, ds, p50s, p99s, qs := thr.Summary(), del.Summary(), p50.Summary(), p99.Summary(), qd.Summary()
		rows = append(rows, LoadRow{
			Rate:       rate,
			Variant:    v.label,
			Replicates: nreps,
			Throughput: ts.Mean, ThroughputCI: ts.HalfWidth90,
			Delivery: ds.Mean, DeliveryCI: ds.HalfWidth90,
			LatencyP50: p50s.Mean, LatencyP50CI: p50s.HalfWidth90,
			LatencyP99: p99s.Mean, LatencyP99CI: p99s.HalfWidth90,
			QueueDrops: qs.Mean, QueueDropsCI: qs.HalfWidth90,
		})
	}
	return rows, nil
}

// loadReplicate generates one workload (network + traffic plan) and runs
// every variant on it through the contention MAC, reusing one arena.
func loadReplicate(cfg LoadConfig, rate float64, rep int, arena *sim.Arena) ([]loadSample, error) {
	seed := loadSeed(cfg.Seed, cfg.N, cfg.Degree, ratePermille(rate), rep)
	rng := rand.New(rand.NewSource(seed))
	net, err := geo.Generate(geo.Config{N: cfg.N, AvgDegree: float64(cfg.Degree), Seed: seed}, rng)
	if err != nil {
		return nil, err
	}
	// traffic.Config.Rate is per source; the sweep axis is network-wide
	// offered load, the same unit as TrafficResult.Throughput.
	plan, err := traffic.Poisson(traffic.Config{
		N:       cfg.N,
		Sources: cfg.Sources,
		Rate:    rate / float64(cfg.Sources),
		Horizon: cfg.Horizon,
		Seed:    seed + 2,
	})
	if err != nil {
		return nil, err
	}
	sessions := make([]sim.SessionSpec, len(plan.Messages))
	for i, m := range plan.Messages {
		sessions[i] = sim.SessionSpec{Source: m.Source, At: m.At}
	}
	variants := loadVariants()
	out := make([]loadSample, len(variants))
	for vi, v := range variants {
		res, err := sim.RunTrafficWith(arena, net.G, sessions, v.make, sim.Config{
			Hops:         cfg.Hops,
			Seed:         seed + 1,
			Engine:       cfg.Engine,
			CarrierSense: true,
			TxQueueCap:   cfg.QueueCap,
			NACKRecovery: v.nack,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.label, err)
		}
		out[vi] = loadSample{
			throughput: res.Throughput(),
			delivery:   100 * res.DeliveryRatio(),
			p50:        res.LatencyP50,
			p99:        res.LatencyP99,
			qdrops:     float64(res.QueueDrops) / float64(res.Sessions),
		}
	}
	return out, nil
}

// FormatLoad renders load rows as one aligned text table per offered load.
func FormatLoad(rows []LoadRow) string {
	var b strings.Builder
	lastRate := -1.0
	for _, r := range rows {
		if r.Rate != lastRate {
			if lastRate != -1 {
				b.WriteString("\n")
			}
			fmt.Fprintf(&b, "offered load %.3f sessions/slot (%d replicates)\n", r.Rate, r.Replicates)
			fmt.Fprintf(&b, "  %-18s %16s %15s %14s %14s %14s\n",
				"variant", "throughput", "delivery %", "p50 (slots)", "p99 (slots)", "qdrops/sess")
			lastRate = r.Rate
		}
		b.WriteString("  " + FormatLoadRow(r) + "\n")
	}
	return b.String()
}

// FormatLoadRow renders one row as an aligned line (no leading indent).
func FormatLoadRow(r LoadRow) string {
	return fmt.Sprintf("%-18s %9.4f ±%.4f %9.2f ±%.2f %8.1f ±%.1f %8.1f ±%.1f %8.2f ±%.2f",
		r.Variant, r.Throughput, r.ThroughputCI, r.Delivery, r.DeliveryCI,
		r.LatencyP50, r.LatencyP50CI, r.LatencyP99, r.LatencyP99CI,
		r.QueueDrops, r.QueueDropsCI)
}
