package experiments

import (
	"testing"

	"adhocbcast/internal/stats"
)

// extTinyConfig keeps extension sweeps fast in tests.
func extTinyConfig() RunConfig {
	return RunConfig{
		Sizes:     []int{30},
		Degrees:   []int{8},
		Replicate: stats.ReplicateOptions{MinRuns: 8, MaxRuns: 12, RelTol: 0.5},
		Seed:      5,
	}
}

func TestExtensionByIDUnknown(t *testing.T) {
	if _, err := ExtensionByID("nope", RunConfig{}); err == nil {
		t.Fatal("unknown extension accepted")
	}
}

func TestAllExtensionIDsDispatch(t *testing.T) {
	rc := extTinyConfig()
	for _, id := range AllExtensionIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			fig, err := ExtensionByID(id, rc)
			if err != nil {
				t.Fatal(err)
			}
			if len(fig.Panels) == 0 || len(fig.Panels[0].Series) == 0 {
				t.Fatalf("empty figure: %+v", fig)
			}
			for _, panel := range fig.Panels {
				for _, s := range panel.Series {
					if len(s.Points) == 0 {
						t.Fatalf("series %q has no points", s.Label)
					}
				}
			}
		})
	}
}

func TestMobilityShape(t *testing.T) {
	// At zero movement everything delivers 100%; at large movement the
	// aggressive pruner must deliver less than flooding.
	rc := RunConfig{
		Sizes:     []int{100},
		Degrees:   []int{6},
		Replicate: stats.ReplicateOptions{MinRuns: 15, MaxRuns: 20, RelTol: 0.3},
		Seed:      9,
	}
	fig, err := Mobility(rc)
	if err != nil {
		t.Fatal(err)
	}
	panel := fig.Panels[0]
	byLabel := map[string]Series{}
	for _, s := range panel.Series {
		byLabel[s.Label] = s
	}
	for _, s := range panel.Series {
		if s.Points[0].Mean != 100 {
			t.Fatalf("%s delivered %.2f%% at zero movement", s.Label, s.Points[0].Mean)
		}
	}
	last := len(byLabel["Flooding"].Points) - 1
	flood := byLabel["Flooding"].Points[last].Mean
	generic := byLabel["Generic-FR"].Points[last].Mean
	if generic >= flood {
		t.Fatalf("generic (%.2f%%) not worse than flooding (%.2f%%) under heavy movement", generic, flood)
	}
}

func TestReliabilityShape(t *testing.T) {
	// Jitter must restore delivery; no-jitter flooding must be worst.
	rc := RunConfig{
		Sizes:     []int{100},
		Degrees:   []int{6},
		Replicate: stats.ReplicateOptions{MinRuns: 15, MaxRuns: 20, RelTol: 0.3},
		Seed:      11,
	}
	fig, err := Reliability(rc)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Panels[0].Series {
		noJitter := s.Points[0].Mean
		withJitter := s.Points[len(s.Points)-1].Mean
		if withJitter < noJitter {
			t.Fatalf("%s: jitter reduced delivery (%.2f -> %.2f)", s.Label, noJitter, withJitter)
		}
		if withJitter < 99 {
			t.Fatalf("%s: delivery %.2f%% with ample jitter", s.Label, withJitter)
		}
	}
}

func TestVisitedUnionAblationDirection(t *testing.T) {
	// Removing the visited-union assumption can only make the condition
	// more conservative: at least as many forward nodes.
	rc := RunConfig{
		Sizes:     []int{60},
		Degrees:   []int{6},
		Replicate: stats.ReplicateOptions{MinRuns: 20, MaxRuns: 25, RelTol: 0.3},
		Seed:      13,
	}
	fig, err := VisitedUnionAblation(rc)
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Panels[0].Series
	with, without := s[0].Points[0].Mean, s[1].Points[0].Mean
	if without < with {
		t.Fatalf("without union (%.2f) pruned more than with union (%.2f)", without, with)
	}
}

func TestBackoffAblationMonotoneTrend(t *testing.T) {
	// A larger window should not substantially increase the forward count:
	// the first and last points must not regress by more than the noise.
	rc := RunConfig{
		Sizes:     []int{100},
		Degrees:   []int{6},
		Replicate: stats.ReplicateOptions{MinRuns: 15, MaxRuns: 20, RelTol: 0.3},
		Seed:      15,
	}
	fig, err := BackoffAblation(rc)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Panels[0].Series {
		first := s.Points[0].Mean
		last := s.Points[len(s.Points)-1].Mean
		if last > first+1 {
			t.Fatalf("%s: forward count grew with window: %.2f -> %.2f", s.Label, first, last)
		}
	}
}
