package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adhocbcast/internal/obsv"
	"adhocbcast/internal/stats"
)

// globTraces returns the final (committed) trace files and the pending temp
// files under dir.
func globTraces(t *testing.T, dir string) (finals, temps []string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		switch {
		case strings.HasPrefix(e.Name(), ".tmp-"):
			temps = append(temps, e.Name())
		case strings.HasSuffix(e.Name(), ".jsonl"):
			finals = append(finals, e.Name())
		}
	}
	return finals, temps
}

// TestTraceExportAtomicMidPoint pins the atomicity contract of the trace
// export: while a point is mid-measurement its lines live only in a hidden
// temp file (so a kill at any moment leaves no partial final file), a point
// that errors publishes nothing and cleans its temp up, and a point that
// completes publishes a sealed file that passes chain verification.
func TestTraceExportAtomicMidPoint(t *testing.T) {
	rc := tinyConfig()
	rc.Sizes = []int{20}
	rc.Parallelism = 1 // one point in flight: mid-point assertions are exact
	rc.TraceDir = t.TempDir()
	var midFinals int
	points := 0
	rc.Runner = func(point string, compute func() (stats.Summary, error)) (stats.Summary, error) {
		sum, err := compute()
		// All of the point's replicates have flushed, but finish has not
		// run: the final file must not exist yet, only its temp.
		finals, temps := globTraces(t, rc.TraceDir)
		midFinals += len(finals) - points
		if len(temps) == 0 {
			t.Errorf("%s: no pending temp file mid-point", point)
		}
		points++
		return sum, err
	}
	if _, err := Figure10(rc); err != nil {
		t.Fatal(err)
	}
	if midFinals != 0 {
		t.Fatalf("%d trace file(s) were visible before their point finished", midFinals)
	}
	finals, temps := globTraces(t, rc.TraceDir)
	if len(finals) != points {
		t.Fatalf("%d final files for %d points", len(finals), points)
	}
	if len(temps) != 0 {
		t.Fatalf("stray temp files after a clean run: %v", temps)
	}
	// Every published file is sealed and chain-verifies.
	for _, name := range finals {
		f, err := os.Open(filepath.Join(rc.TraceDir, name))
		if err != nil {
			t.Fatal(err)
		}
		links, err := obsv.VerifyChain(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if links == 0 {
			t.Fatalf("%s: published trace has no chain links", name)
		}
	}
}

// TestTraceExportErrorPublishesNothing: a point whose measurement fails must
// leave neither a final trace file nor a temp file behind.
func TestTraceExportErrorPublishesNothing(t *testing.T) {
	rc := tinyConfig()
	rc.Sizes = []int{20}
	rc.Parallelism = 1
	rc.TraceDir = t.TempDir()
	rc.Runner = func(point string, compute func() (stats.Summary, error)) (stats.Summary, error) {
		if _, err := compute(); err != nil {
			return stats.Summary{}, err
		}
		return stats.Summary{}, fmt.Errorf("injected failure at %s", point)
	}
	if _, err := Figure10(rc); err == nil {
		t.Fatal("figure succeeded despite injected point failure")
	}
	finals, temps := globTraces(t, rc.TraceDir)
	if len(finals) != 0 {
		t.Fatalf("failed point published trace files: %v", finals)
	}
	if len(temps) != 0 {
		t.Fatalf("failed point left temp files: %v", temps)
	}
}

// TestRunnerHookSubstitutesResults pins the caching contract internal/grid
// relies on: a Runner that skips compute entirely substitutes the point's
// summary without running a single simulation, and a pass-through Runner is
// behavior-identical to no Runner.
func TestRunnerHookSubstitutesResults(t *testing.T) {
	rc := tinyConfig()
	plain, err := Figure10(rc)
	if err != nil {
		t.Fatal(err)
	}

	// Pass-through Runner: identical figure.
	rc2 := tinyConfig()
	rc2.Runner = func(point string, compute func() (stats.Summary, error)) (stats.Summary, error) {
		return compute()
	}
	through, err := Figure10(rc2)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", through) != fmt.Sprintf("%+v", plain) {
		t.Fatal("pass-through Runner changed the figure")
	}

	// Substituting Runner: compute never runs, canned summaries flow out.
	rc3 := tinyConfig()
	rc3.Runner = func(point string, compute func() (stats.Summary, error)) (stats.Summary, error) {
		return stats.Summary{N: 3, Mean: 1.5}, nil
	}
	canned, err := Figure10(rc3)
	if err != nil {
		t.Fatal(err)
	}
	for _, panel := range canned.Panels {
		for _, s := range panel.Series {
			for _, p := range s.Points {
				if p.Mean != 1.5 || p.Runs != 3 {
					t.Fatalf("substituted point not used: %+v", p)
				}
			}
		}
	}
}

// TestScaleRunnerHook mirrors TestRunnerHookSubstitutesResults for the scale
// sweep: substituted rows flow through Emit exactly like computed ones.
func TestScaleRunnerHook(t *testing.T) {
	cfg := ScaleConfig{Sizes: []int{40}, Degree: 8, Replicates: 2, Seed: 7}
	plain, err := Scale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) == 0 {
		t.Fatal("no rows")
	}

	var emitted []ScaleRow
	cached := cfg
	cached.Emit = func(r ScaleRow) { emitted = append(emitted, r) }
	cached.Runner = func(point string, compute func() ([]ScaleRow, error)) ([]ScaleRow, error) {
		want := fmt.Sprintf("scale/n=%d/d=%d/reps=%d", 40, 8, 2)
		if point != want {
			t.Fatalf("scale point label %q, want %q", point, want)
		}
		return plain, nil // substitute without computing
	}
	rows, err := Scale(cached)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", rows) != fmt.Sprintf("%+v", plain) {
		t.Fatal("substituted rows differ")
	}
	if fmt.Sprintf("%+v", emitted) != fmt.Sprintf("%+v", plain) {
		t.Fatal("Emit did not fire for substituted rows")
	}
}
