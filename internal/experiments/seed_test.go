package experiments

import (
	"fmt"
	"testing"
)

// TestDeriveSeedFormatsPinned pins the derivation against its pre-refactor
// per-function format strings: the unified deriveSeed must stay byte-for-byte
// compatible or every committed results table silently changes.
func TestDeriveSeedFormatsPinned(t *testing.T) {
	cases := []struct {
		got, want int64
	}{
		{workloadSeed(42, 60, 6, 7), deriveSeed("", 42, 60, 6, 7)},
		{scaleSeed(42, 1000, 18, 3), deriveSeed("scale", 42, 1000, 18, 3)},
		{mobilitySeed(42, 6, 7, 5), deriveSeed("mobility", 42, 6, 7, 5)},
		{degradeSeed(42, 100, 6, 7, 300), deriveSeed("degrade", 42, 100, 6, 7, 300)},
		{helloSeed(42, 100, 6, 7, 300), deriveSeed("helloloss", 42, 100, 6, 7, 300)},
	}
	for i, c := range cases {
		if c.got != c.want {
			t.Fatalf("case %d: named derivation %d != deriveSeed %d", i, c.got, c.want)
		}
	}
	// Golden values, computed with the pre-refactor fnv-based functions.
	if got := workloadSeed(42, 20, 6, 0); got != 2893612282383257089 {
		t.Fatalf("workloadSeed(42,20,6,0) = %d, drifted from pre-refactor value", got)
	}
	if got := scaleSeed(42, 1000, 18, 0); got != 880875563328068171 {
		t.Fatalf("scaleSeed(42,1000,18,0) = %d, drifted from pre-refactor value", got)
	}
}

// TestDeriveSeedCollisionFree enumerates every seed the full default
// experiment grid can request — workload cells up to the paper's 2000-run
// cap, the scale sweep, and the domain-prefixed mobility, degradation,
// hello-loss, and reliability-jitter derivations — and asserts they are
// pairwise distinct. The 62-bit mask discards bits, so this is a real
// property of the chosen format strings, not a tautology; a derivation
// change that introduces a collision anywhere in the shipped grid fails
// here.
func TestDeriveSeedCollisionFree(t *testing.T) {
	const base = 42
	const maxReps = 2000 // Paper().MaxRuns, the widest replication cap
	seen := make(map[int64]string, 200000)
	add := func(seed int64, format string, args ...any) {
		cell := fmt.Sprintf(format, args...)
		if prev, ok := seen[seed]; ok {
			t.Fatalf("seed collision: %s and %s both derive %d", prev, cell, seed)
		}
		seen[seed] = cell
	}

	degrees := []int{6, 18}
	permilles := []int{0, 50, 100, 200, 300}
	for _, d := range degrees {
		for rep := 0; rep < maxReps; rep++ {
			// Workload cells: figure sizes 20..100 plus the fixed n=100 the
			// extension sweeps use (the same cell, registered once).
			for n := 20; n <= 100; n += 10 {
				add(workloadSeed(base, n, d, rep), "workload n=%d d=%d rep=%d", n, d, rep)
			}
			// Reliability jitter variants perturb the workload seed.
			for _, j := range []int{1, 2, 4} {
				seed := workloadSeed(base, 100, d, rep) ^ int64(j<<40)
				add(seed, "reliability jitter=%d d=%d rep=%d", j, d, rep)
			}
			for _, step := range []int{0, 1, 2, 3, 5, 8} {
				add(mobilitySeed(base, d, rep, step), "mobility d=%d rep=%d step=%d", d, rep, step)
			}
			for _, pm := range permilles {
				add(degradeSeed(base, 100, d, rep, pm), "degrade d=%d rep=%d permille=%d", d, rep, pm)
				add(helloSeed(base, 100, d, rep, pm), "helloloss d=%d rep=%d permille=%d", d, rep, pm)
			}
		}
	}
	for _, n := range []int{1000, 5000, 10000, 25000, 100000, 1000000} {
		for rep := 0; rep < 5; rep++ {
			add(scaleSeed(base, n, 18, rep), "scale n=%d rep=%d", n, rep)
		}
	}
	for _, pm := range []int{20, 50, 100, 200, 400} {
		for rep := 0; rep < 5; rep++ {
			add(loadSeed(base, 100, 6, pm, rep), "load permille=%d rep=%d", pm, rep)
		}
	}
	if len(seen) < 100000 {
		t.Fatalf("enumerated only %d cells; the grid enumeration shrank", len(seen))
	}
}
