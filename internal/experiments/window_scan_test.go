package experiments

import (
	"testing"

	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
	"adhocbcast/internal/view"
)

// TestScanBackoffWindow is a calibration aid, not a regression test: run
// with -run ScanBackoffWindow -v to see how the FRB/FRBD forward counts
// respond to the backoff window size.
func TestScanBackoffWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration scan")
	}
	rc := RunConfig{Sizes: []int{100}, Degrees: []int{6}}
	rc = rc.withDefaults()
	for _, w := range []float64{2, 4, 8, 16, 32} {
		for _, timing := range []protocol.Timing{protocol.TimingBackoffRandom, protocol.TimingBackoffDegree} {
			v := variant{
				label: timing.String(),
				cfg:   sim.Config{Hops: 2, Metric: view.MetricID, BackoffWindow: w},
				make:  func() sim.Protocol { return protocol.Generic(timing) },
			}
			sum, err := measure(rc, "windowscan", 100, 6, v)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("window=%4.0f  %-4s  mean=%.2f ±%.2f (runs=%d)", w, v.label, sum.Mean, sum.HalfWidth90, sum.N)
		}
	}
}
