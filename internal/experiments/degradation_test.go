package experiments

import (
	"reflect"
	"testing"

	"adhocbcast/internal/stats"
)

// degradeTestConfig trims the sweeps so the qualitative shape tests stay
// fast while keeping enough replication to separate the curves.
func degradeTestConfig(seed int64) RunConfig {
	return RunConfig{
		Degrees:        []int{6},
		Replicate:      stats.ReplicateOptions{MinRuns: 15, MaxRuns: 20, RelTol: 0.3},
		Seed:           seed,
		CrashFractions: []float64{0, 0.3},
		LossRates:      []float64{0, 0.3},
	}
}

func seriesByLabel(t *testing.T, panel Panel) map[string]Series {
	t.Helper()
	byLabel := map[string]Series{}
	for _, s := range panel.Series {
		byLabel[s.Label] = s
	}
	return byLabel
}

func TestCrashDegradationShape(t *testing.T) {
	fig, err := CrashDegradation(degradeTestConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	byLabel := seriesByLabel(t, fig.Panels[0])
	last := func(label string) float64 {
		s := byLabel[label]
		return s.Points[len(s.Points)-1].Mean
	}
	// Flooding's redundancy keeps reachable delivery highest under crashes.
	flood := last("Flooding")
	for _, label := range []string{"Generic-FR", "Generic-FRB"} {
		if last(label) > flood {
			t.Fatalf("%s (%.2f%%) above flooding (%.2f%%) at max crash fraction", label, last(label), flood)
		}
	}
	// The pruner must actually degrade as the crash fraction rises.
	frb := byLabel["Generic-FRB"]
	if frb.Points[len(frb.Points)-1].Mean >= frb.Points[0].Mean {
		t.Fatalf("Generic-FRB did not degrade with crash fraction: %.2f%% -> %.2f%%",
			frb.Points[0].Mean, frb.Points[len(frb.Points)-1].Mean)
	}
	// The NACK layer must measurably close the gap for the same pruner.
	if last("Generic-FRB+NACK") <= last("Generic-FRB") {
		t.Fatalf("NACK recovery did not improve FRB under crashes: %.2f%% vs %.2f%%",
			last("Generic-FRB+NACK"), last("Generic-FRB"))
	}
}

func TestCrashForwardRatioShape(t *testing.T) {
	fig, err := CrashForwardRatio(degradeTestConfig(23))
	if err != nil {
		t.Fatal(err)
	}
	byLabel := seriesByLabel(t, fig.Panels[0])
	// Flooding forwards from (nearly) every delivered node; the pruners must
	// stay well below it at every sweep point.
	for i := range byLabel["Flooding"].Points {
		flood := byLabel["Flooding"].Points[i].Mean
		frb := byLabel["Generic-FRB"].Points[i].Mean
		if frb >= flood {
			t.Fatalf("point %d: FRB forward ratio (%.2f%%) not below flooding (%.2f%%)", i, frb, flood)
		}
	}
}

func TestLossDegradationShape(t *testing.T) {
	fig, err := LossDegradation(degradeTestConfig(25))
	if err != nil {
		t.Fatal(err)
	}
	byLabel := seriesByLabel(t, fig.Panels[0])
	// With a perfect channel every variant delivers fully.
	for _, s := range fig.Panels[0].Series {
		if s.Points[0].Mean != 100 {
			t.Fatalf("%s delivered %.2f%% with no loss", s.Label, s.Points[0].Mean)
		}
	}
	last := func(label string) float64 {
		s := byLabel[label]
		return s.Points[len(s.Points)-1].Mean
	}
	if last("Generic-FRB+NACK") <= last("Generic-FRB") {
		t.Fatalf("NACK recovery did not improve FRB at 30%% loss: %.2f%% vs %.2f%%",
			last("Generic-FRB+NACK"), last("Generic-FRB"))
	}
}

func TestDegradationDeterministicAcrossParallelism(t *testing.T) {
	// Same seed and plan parameters must give byte-identical figures
	// regardless of how the replication loop is scheduled.
	base := RunConfig{
		Degrees:        []int{8},
		Replicate:      stats.ReplicateOptions{MinRuns: 8, MaxRuns: 12, RelTol: 0.5},
		Seed:           7,
		CrashFractions: []float64{0.2},
		LossRates:      []float64{0.2},
	}
	for _, id := range []string{"crash", "loss"} {
		id := id
		t.Run(id, func(t *testing.T) {
			serial := base
			serial.ReplicateParallelism = 1
			parallel := base
			parallel.ReplicateParallelism = 4
			a, err := ExtensionByID(id, serial)
			if err != nil {
				t.Fatal(err)
			}
			b, err := ExtensionByID(id, parallel)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("figure differs across ReplicateParallelism:\nserial:   %+v\nparallel: %+v", a, b)
			}
		})
	}
}
