package experiments

import (
	"reflect"
	"strings"
	"testing"

	"adhocbcast/internal/sim"
)

// smallLoad is a sweep small enough for the test suite but still heavy
// enough to exercise contention, queues, and the NACK variant.
func smallLoad() LoadConfig {
	return LoadConfig{
		N:          40,
		Degree:     6,
		Rates:      []float64{0.05, 0.2},
		Sources:    4,
		Horizon:    60,
		QueueCap:   4,
		Replicates: 2,
		Seed:       42,
	}
}

// TestLoadSweepDeterminism pins the sweep-level determinism contract: the
// whole saturation sweep — workload generation, contention MAC, NACK
// recovery, statistics folding — must produce bit-identical rows for any
// replicate parallelism and for both simulation engines. This is the
// sweep-scale companion of the per-run engine differential test.
func TestLoadSweepDeterminism(t *testing.T) {
	base := smallLoad()
	base.Parallelism = 1
	want, err := Load(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(base.Rates)*len(loadVariants()) {
		t.Fatalf("got %d rows, want %d", len(want), len(base.Rates)*len(loadVariants()))
	}
	for _, par := range []int{2, 8} {
		cfg := smallLoad()
		cfg.Parallelism = par
		got, err := Load(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("parallelism %d diverged from serial sweep", par)
		}
	}
	oracle := smallLoad()
	oracle.Parallelism = 4
	oracle.Engine = sim.EngineOracle
	got, err := Load(oracle)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("oracle engine diverged from fast engine at sweep level")
	}
}

// TestLoadEmitAndRunner checks the streaming and caching hooks: Emit sees
// every row in order, and a Runner intercepting all points with canned rows
// bypasses computation entirely.
func TestLoadEmitAndRunner(t *testing.T) {
	cfg := smallLoad()
	cfg.Parallelism = 4
	var emitted []LoadRow
	cfg.Emit = func(r LoadRow) { emitted = append(emitted, r) }
	rows, err := Load(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(emitted, rows) {
		t.Errorf("Emit saw %d rows, want the %d returned rows in order", len(emitted), len(rows))
	}

	var points []string
	canned := LoadConfig{Rates: []float64{0.1}, Runner: func(point string, _ func() ([]LoadRow, error)) ([]LoadRow, error) {
		points = append(points, point)
		return []LoadRow{{Rate: 0.1, Variant: "stub", Replicates: 1}}, nil
	}}
	rows, err = Load(canned)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Variant != "stub" {
		t.Errorf("Runner rows not returned verbatim: %+v", rows)
	}
	if len(points) != 1 || points[0] != "load/rpm=100/n=100/d=6/reps=5" {
		t.Errorf("point labels = %v, want the canonical resolved label", points)
	}
}

// TestFormatLoad smoke-checks the table renderer groups rows by rate.
func TestFormatLoad(t *testing.T) {
	rows := []LoadRow{
		{Rate: 0.05, Variant: "A", Replicates: 2},
		{Rate: 0.05, Variant: "B", Replicates: 2},
		{Rate: 0.2, Variant: "A", Replicates: 2},
	}
	out := FormatLoad(rows)
	if strings.Count(out, "offered load") != 2 {
		t.Errorf("want 2 rate headers, got:\n%s", out)
	}
	if strings.Count(out, "variant") != 2 {
		t.Errorf("want a column header per rate group, got:\n%s", out)
	}
}
