package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"adhocbcast/internal/obsv"
	"adhocbcast/internal/sim"
)

// traceSink writes the JSONL observability export of one data point: for
// every replicate, one obsv run record followed by the replicate's trace
// events. Replicates may run concurrently (RunUntilCIParallel), so each
// replicate's lines are buffered and appended in one locked write — lines of
// different replicates may interleave in the file, but every line carries its
// (point, rep) key and a single replicate's lines stay contiguous and
// ordered. A nil *traceSink is a no-op, which is how the drivers stay
// zero-cost when no trace directory is configured.
//
// The sink writes through an obsv.AtomicFile: lines accumulate in a hidden
// temp file and the final <point>.jsonl appears only when the point's last
// replicate has flushed and the stream is sealed with a hash-chain record. A
// sweep killed mid-point therefore leaves at worst a ".tmp-*" file behind —
// never a truncated export that a later obsv.Read would choke on — and every
// published file passes obsv.VerifyChain.
type traceSink struct {
	point string
	mu    sync.Mutex
	f     *obsv.AtomicFile
	w     *obsv.Writer
	err   error // first write error; reported once at finish
}

// newTraceSink opens the sink for one data point under c.TraceDir, or
// returns nil when tracing is off. The file name is derived from the point
// label, one file per data point.
func (c RunConfig) newTraceSink(point string) (*traceSink, error) {
	if c.TraceDir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(c.TraceDir, 0o755); err != nil {
		return nil, err
	}
	name := filepath.Join(c.TraceDir, sanitizePoint(point)+".jsonl")
	f, err := obsv.CreateAtomic(name)
	if err != nil {
		return nil, err
	}
	return &traceSink{point: point, f: f, w: obsv.NewWriter(f)}, nil
}

// sanitizePoint keeps point labels filesystem-safe.
func sanitizePoint(point string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.', r == '=':
			return r
		default:
			return '_'
		}
	}, point)
}

// instrument prepares one replicate for tracing: it attaches a metrics
// record and (unless the driver already installed its own Recorder) a trace
// recorder to cfg, and returns a flush function that writes the replicate's
// records after the run. With a nil sink both cfg and the returned flush are
// no-ops.
func (s *traceSink) instrument(cfg *sim.Config, rep int) func() error {
	if s == nil {
		return func() error { return nil }
	}
	rec, ok := cfg.Observer.(*sim.Recorder)
	if !ok {
		rec = &sim.Recorder{}
		cfg.Observer = rec
	}
	rr := obsv.NewRunRecord()
	cfg.Metrics = rr
	return func() error { return s.write(rep, rr, rec.Records()) }
}

// write appends one replicate's run record and trace events atomically.
func (s *traceSink) write(rep int, rr *obsv.RunRecord, events []obsv.TraceEvent) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if err := s.w.Write(obsv.Record{Kind: obsv.KindRun, Point: s.point, Rep: rep, Run: rr}); err != nil {
		s.err = err
		return err
	}
	for i := range events {
		if err := s.w.Write(obsv.Record{Kind: obsv.KindTrace, Point: s.point, Rep: rep, Event: &events[i]}); err != nil {
			s.err = err
			return err
		}
	}
	return nil
}

// finish completes the sink given the point's measurement error: on failure
// (the measurement's or the sink's own deferred write error) the pending
// temp file is discarded so no partial export is published; on success the
// stream is sealed and atomically renamed into place. It returns the first
// error among the measurement, deferred writes, and publication. Safe on a
// nil sink.
func (s *traceSink) finish(err error) error {
	if s == nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err == nil && s.err != nil {
		err = fmt.Errorf("experiments: trace %s: %w", s.point, s.err)
	}
	if err != nil {
		s.f.Abort()
		return err
	}
	if serr := s.w.Seal(); serr != nil {
		s.f.Abort()
		return fmt.Errorf("experiments: trace %s: %w", s.point, serr)
	}
	if cerr := s.f.Commit(); cerr != nil {
		return fmt.Errorf("experiments: trace %s: %w", s.point, cerr)
	}
	return nil
}
