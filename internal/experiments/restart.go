package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"adhocbcast/internal/fault"
	"adhocbcast/internal/graph"
	"adhocbcast/internal/hello"
	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
)

// The restart experiments measure crash-recovery degradation: a fraction of
// the nodes is SIGKILLed mid-broadcast and comes back after a fixed outage
// window (a down interval in the fault plan, not a permanent crash), on top
// of the same 10% lossy channel the crash sweeps use. Unlike the crash
// sweeps, every node is reachable again by the end of the run, so delivery is
// scored against the whole network: what the curves show is how much of a
// wave a restarting node permanently misses, and how much of that the NACK
// recovery layer and the dynamic-hello conservative hold claw back. This is
// the simulation face of the process-kill chaos harness
// (internal/runtime/chaos); docs/recovery.md connects the two.

// restartOutage is the length of one down window in transmission slots: long
// enough that an un-recovered pruning wave has passed when the node returns,
// short enough that the NACK layer's retries are still in flight.
const restartOutage = 5.0

// restartVariant is one curve of a restart figure: a protocol plus the
// recovery machinery layered on it.
type restartVariant struct {
	label string
	make  func() sim.Protocol
	nack  bool
	hold  bool
}

func restartVariants() []restartVariant {
	return []restartVariant{
		{label: "Flooding", make: protocol.Flooding},
		{label: "Generic-FR", make: func() sim.Protocol { return protocol.Generic(protocol.TimingFirstReceipt) }},
		{label: "Generic-FRB+NACK", make: func() sim.Protocol { return protocol.Generic(protocol.TimingBackoffRandom) }, nack: true},
		{label: "Generic-FRB+NACK+Hold", make: func() sim.Protocol { return protocol.Generic(protocol.TimingBackoffRandom) }, nack: true, hold: true},
	}
}

// restartSeed derives the kill-schedule seed for one (replication, sweep
// value) cell. The variant is deliberately excluded: every curve sees the
// same networks, sources, and restart schedules (common random numbers).
func restartSeed(base int64, n, d, rep, permille int) int64 {
	return deriveSeed("restart", base, n, d, rep, permille)
}

// restartPlan builds one replicate's kill schedule: a rng-chosen fraction of
// the nodes (source protected) each goes down once, at a uniform time in the
// first 10 slots, for restartOutage slots.
func restartPlan(g *graph.Graph, source int, frac float64, seed int64) (*fault.Plan, error) {
	n := g.N()
	rng := rand.New(rand.NewSource(seed))
	plan := fault.NewEmptyPlan(n)
	k := int(math.Round(frac * float64(n)))
	placed := 0
	for _, v := range rng.Perm(n) {
		if placed == k {
			break
		}
		if v == source {
			continue
		}
		from := rng.Float64() * 10
		plan.AddNodeDown(v, fault.Interval{From: from, To: from + restartOutage})
		placed++
	}
	if err := plan.Validate(n); err != nil {
		return nil, err
	}
	return plan, nil
}

// RestartDelivery sweeps the restart fraction: X is the percentage of nodes
// that go down for one outage window mid-broadcast, and the series report the
// delivery ratio over all nodes (everyone is back up by the end). Flooding's
// redundancy and long lossy-channel tail reach most returning nodes; the
// pruned waves are gone by the time a node returns, and the NACK layer plus
// the conservative hold recover part of the gap.
func RestartDelivery(rc RunConfig) (Figure, error) {
	return restartSweep(rc, "RS1",
		"Crash-recovery: delivery vs restart fraction (n=100, 10% loss)",
		"delivery %",
		func(res sim.Result, rec *sim.Recorder) float64 { return 100 * res.DeliveryRatio() })
}

// RestartLatency is the companion cost curve of RestartDelivery: the mean
// first-delivery latency across the nodes that did deliver. Restart survivors
// that catch the wave only through recovery retransmissions deliver late, so
// the curve rises with the restart fraction — the price of the delivery the
// recovery machinery buys back.
func RestartLatency(rc RunConfig) (Figure, error) {
	return restartSweep(rc, "RS2",
		"Crash-recovery: mean delivery latency vs restart fraction (n=100, 10% loss)",
		"mean latency (slots)",
		func(res sim.Result, rec *sim.Recorder) float64 { return rec.MeanDeliveryLatency() })
}

func restartSweep(rc RunConfig, id, title, unit string, metric func(sim.Result, *sim.Recorder) float64) (Figure, error) {
	rc = rc.withDefaults()
	fig := Figure{ID: id, Title: title, Unit: unit}
	for _, d := range rc.Degrees {
		panel := Panel{Title: fmt.Sprintf("d=%d, n=100, 2-hop", d)}
		for _, v := range restartVariants() {
			s := Series{Label: v.label}
			for _, frac := range rc.RestartRates {
				frac, v := frac, v
				pct := int(math.Round(100 * frac))
				point := fmt.Sprintf("%s/%s/restart=%d/d=%d", id, v.label, pct, d)
				sink, err := rc.newTraceSink(point)
				if err != nil {
					return Figure{}, err
				}
				sum, err := rc.replicate(point, func(i int) (float64, error) {
					seed := workloadSeed(rc.Seed, 100, d, i)
					w, err := workloads.get(workloadKey{seed: seed, n: 100, d: d})
					if err != nil {
						return 0, err
					}
					plan, err := restartPlan(w.net.G, w.source, frac, restartSeed(rc.Seed, 100, d, i, pct*10))
					if err != nil {
						return 0, err
					}
					rec := &sim.Recorder{}
					cfg := sim.Config{
						Hops:         2,
						Seed:         seed + 1,
						LossRate:     crashAmbientLoss,
						Faults:       plan,
						NACKRecovery: v.nack,
						Observer:     rec,
					}
					if v.hold {
						// The dynamic-hello staleness schedule is a pure
						// function of its own seed (see internal/hello), so
						// every replicate sees a different beacon-loss
						// pattern but reruns are bit-identical.
						cfg.DynamicHello = &hello.Dynamic{Interval: 2, Expiry: 2.5, LossRate: 0.2, Seed: seed}
						cfg.ConservativeFallback = true
					}
					flush := sink.instrument(&cfg, i)
					res, err := sim.Run(w.net.G, w.source, v.make(), cfg)
					if err != nil {
						return 0, err
					}
					if err := flush(); err != nil {
						return 0, err
					}
					return metric(res, rec), nil
				})
				if err = sink.finish(err); err != nil {
					return Figure{}, fmt.Errorf("%s %s restart %d%%: %w", id, v.label, pct, err)
				}
				s.Points = append(s.Points, Point{X: pct, Mean: sum.Mean, CI: sum.HalfWidth90, Runs: sum.N})
			}
			panel.Series = append(panel.Series, s)
		}
		fig.Panels = append(fig.Panels, panel)
	}
	return fig, nil
}
