package experiments

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"

	"adhocbcast/internal/obsv"
	"adhocbcast/internal/stats"
)

// readTraceFiles parses every JSONL file under dir, grouped by file name.
func readTraceFiles(t *testing.T, dir string) map[string][]obsv.Record {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]obsv.Record{}
	for _, name := range names {
		f, err := os.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := obsv.Read(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[filepath.Base(name)] = recs
	}
	return out
}

// TestTraceDirExportsFigurePoints runs a tiny figure sweep with tracing
// enabled and validates the export end to end: one file per data point,
// every line round-trips through the versioned reader, each replicate has
// one run record whose counters close the conservation identity, and the
// figure's numbers are identical to an untraced run.
func TestTraceDirExportsFigurePoints(t *testing.T) {
	rc := tinyConfig()
	plain, err := Figure10(rc)
	if err != nil {
		t.Fatal(err)
	}

	rc.TraceDir = t.TempDir()
	rc.ReplicateParallelism = 3 // concurrent replicates must not corrupt files
	traced, err := Figure10(rc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, traced) {
		t.Fatal("tracing changed the figure's numbers")
	}

	files := readTraceFiles(t, rc.TraceDir)
	// 4 variants x 2 sizes x 1 degree.
	if len(files) != 8 {
		names := make([]string, 0, len(files))
		for n := range files {
			names = append(names, n)
		}
		sort.Strings(names)
		t.Fatalf("trace files = %d (%v), want 8", len(files), names)
	}
	for name, recs := range files {
		runs := map[int]*obsv.RunRecord{}
		events := 0
		for _, rec := range recs {
			switch rec.Kind {
			case obsv.KindRun:
				if runs[rec.Rep] != nil {
					t.Fatalf("%s: duplicate run record for rep %d", name, rec.Rep)
				}
				runs[rec.Rep] = rec.Run
			case obsv.KindTrace:
				events++
			}
		}
		if len(runs) < rc.Replicate.MinRuns {
			t.Fatalf("%s: %d run records, want at least MinRuns=%d",
				name, len(runs), rc.Replicate.MinRuns)
		}
		if events == 0 {
			t.Fatalf("%s: no trace events exported", name)
		}
		for rep, rr := range runs {
			if !rr.Conserved() {
				t.Fatalf("%s rep %d: conservation identity broken: %+v", name, rep, rr)
			}
			if rr.Delivered != rr.N {
				t.Fatalf("%s rep %d: partial delivery %d/%d in a fault-free figure run",
					name, rep, rr.Delivered, rr.N)
			}
			if rr.Latency.Count != uint64(rr.Delivered) {
				t.Fatalf("%s rep %d: %d latency observations for %d delivered nodes",
					name, rep, rr.Latency.Count, rr.Delivered)
			}
			if rr.ForwardSet.Count != uint64(rr.Forward) {
				t.Fatalf("%s rep %d: %d forward-set observations for %d forwards",
					name, rep, rr.ForwardSet.Count, rr.Forward)
			}
		}
	}
}

// TestTraceDirFaultyRunConservation is the acceptance golden for metrics on
// a faulty run: a crash-degradation sweep with tracing must export run
// records whose per-cause drop counters (node down, loss) close the
// conservation identity, with actual fault drops present.
func TestTraceDirFaultyRunConservation(t *testing.T) {
	rc := degradeTestConfig(21)
	rc.TraceDir = t.TempDir()
	if _, err := CrashDegradation(rc); err != nil {
		t.Fatal(err)
	}
	files := readTraceFiles(t, rc.TraceDir)
	if len(files) == 0 {
		t.Fatal("no trace files exported")
	}
	runs, faultDrops, lost := 0, 0, 0
	for name, recs := range files {
		for _, rec := range recs {
			if rec.Kind != obsv.KindRun {
				continue
			}
			runs++
			if !rec.Run.Conserved() {
				t.Fatalf("%s rep %d: receipts %d + lost %d + collided %d + faultDrops %d != copies %d",
					name, rec.Rep, rec.Run.Receipts, rec.Run.Lost, rec.Run.Collided,
					rec.Run.FaultDrops(), rec.Run.Copies)
			}
			faultDrops += rec.Run.FaultDrops()
			lost += rec.Run.Lost
		}
	}
	if runs == 0 {
		t.Fatal("no run records exported")
	}
	if faultDrops == 0 {
		t.Fatal("crash sweep exported no fault drops; the faulty-run check is vacuous")
	}
	if lost == 0 {
		t.Fatal("lossy sweep exported no lost copies; the faulty-run check is vacuous")
	}
}

// TestProgressCallbackPerPoint checks the RunConfig progress plumbing: every
// data point reports once per replicate under its own label, and the final
// update per point is terminal (converged or exhausted).
func TestProgressCallbackPerPoint(t *testing.T) {
	rc := tinyConfig()
	var mu sync.Mutex
	perPoint := map[string][]stats.ProgressUpdate{}
	rc.Progress = func(point string, u stats.ProgressUpdate) {
		mu.Lock()
		defer mu.Unlock()
		perPoint[point] = append(perPoint[point], u)
	}
	fig, err := Figure10(rc)
	if err != nil {
		t.Fatal(err)
	}
	if len(perPoint) != 8 { // 4 variants x 2 sizes
		t.Fatalf("progress for %d points, want 8: %v", len(perPoint), pointNames(perPoint))
	}
	totalRuns := 0
	for _, s := range fig.Panels[0].Series {
		for _, p := range s.Points {
			totalRuns += p.Runs
		}
	}
	reported := 0
	for point, updates := range perPoint {
		last := updates[len(updates)-1]
		if !last.Converged && !last.Exhausted {
			t.Fatalf("%s: final update %+v is not terminal", point, last)
		}
		for i, u := range updates {
			if u.Exhausted {
				continue // the extra exhaustion update repeats the last Done
			}
			if u.Done != i+1 {
				t.Fatalf("%s: update %d has Done=%d", point, i, u.Done)
			}
			reported++
		}
	}
	if reported != totalRuns {
		t.Fatalf("progress reported %d replicates, figure used %d", reported, totalRuns)
	}
}

func pointNames(m map[string][]stats.ProgressUpdate) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
