package sim_test

import (
	"math/rand"
	"reflect"
	"testing"

	"adhocbcast/internal/fault"
	"adhocbcast/internal/geo"
	"adhocbcast/internal/obsv"
	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
)

// metricsWorkload is a mid-sized random network shared by the metrics tests.
func metricsWorkload(t *testing.T) *geo.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	net, err := geo.Generate(geo.Config{N: 60, AvgDegree: 8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestRunRecordMatchesResult checks that an attached RunRecord mirrors the
// run's Result counters exactly and that its histograms observe one first
// delivery per delivered node (the source at t=0) and one forward-set size
// per transmission.
func TestRunRecordMatchesResult(t *testing.T) {
	net := metricsWorkload(t)
	rr := obsv.NewRunRecord()
	res, err := sim.Run(net.G, 0, protocol.Generic(protocol.TimingFirstReceipt), sim.Config{
		Hops:     2,
		Seed:     3,
		LossRate: 0.1,
		Metrics:  rr,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := &obsv.RunRecord{
		N:                  res.N,
		Delivered:          res.Delivered,
		Forward:            len(res.Forward),
		Copies:             res.Copies,
		Receipts:           res.Receipts,
		Lost:               res.Lost,
		Collided:           res.Collided,
		DroppedNodeDown:    res.DroppedNodeDown,
		DroppedLinkDown:    res.DroppedLinkDown,
		TimersCancelled:    res.TimersCancelled,
		NACKs:              res.NACKs,
		Retransmits:        res.Retransmits,
		Reachable:          res.Reachable,
		DeliveredReachable: res.DeliveredReachable,
		Finish:             res.Finish,
		Latency:            rr.Latency,
		ForwardSet:         rr.ForwardSet,
	}
	if !reflect.DeepEqual(rr, want) {
		t.Fatalf("RunRecord counters diverge from Result:\n got %+v\nwant %+v", rr, want)
	}
	if rr.Latency.Count != uint64(res.Delivered) {
		t.Fatalf("latency observations = %d, want one per delivered node (%d)",
			rr.Latency.Count, res.Delivered)
	}
	if rr.Latency.Min != 0 {
		t.Fatalf("latency min = %v, want 0 (the source holds the packet at t=0)", rr.Latency.Min)
	}
	if rr.ForwardSet.Count != uint64(len(res.Forward)) {
		t.Fatalf("forward-set observations = %d, want one per transmission (%d)",
			rr.ForwardSet.Count, len(res.Forward))
	}
	if !rr.Conserved() {
		t.Fatalf("conservation identity broken: %+v", rr)
	}
}

// TestMetricsNilIdentical checks the nil-by-default contract: attaching a
// RunRecord never perturbs the simulation, so instrumented and plain runs of
// the same seeds produce identical Results.
func TestMetricsNilIdentical(t *testing.T) {
	net := metricsWorkload(t)
	cfg := sim.Config{Hops: 2, Seed: 5, LossRate: 0.15, Collisions: true, TxJitter: 0.5}
	plain, err := sim.Run(net.G, 0, protocol.Generic(protocol.TimingBackoffRandom), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Metrics = obsv.NewRunRecord()
	instrumented, err := sim.Run(net.G, 0, protocol.Generic(protocol.TimingBackoffRandom), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, instrumented) {
		t.Fatalf("metrics instrumentation changed the run:\nplain        %+v\ninstrumented %+v",
			plain, instrumented)
	}
}

// TestRunRecordReusedAcrossRuns checks that sim.Run resets a reused record,
// so one allocation serves a whole sweep without counters accumulating.
func TestRunRecordReusedAcrossRuns(t *testing.T) {
	net := metricsWorkload(t)
	rr := obsv.NewRunRecord()
	cfg := sim.Config{Hops: 2, Seed: 3, Metrics: rr}
	if _, err := sim.Run(net.G, 0, protocol.Flooding(), cfg); err != nil {
		t.Fatal(err)
	}
	first := *rr
	res, err := sim.Run(net.G, 0, protocol.Flooding(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Copies != res.Copies || rr.Latency.Count != first.Latency.Count {
		t.Fatalf("reused record accumulated across runs: first copies %d, second %d (result %d)",
			first.Copies, rr.Copies, res.Copies)
	}
	// A zero-value record works too once Run has reset it.
	var zero obsv.RunRecord
	cfg.Metrics = &zero
	if _, err := sim.Run(net.G, 0, protocol.Flooding(), cfg); err != nil {
		t.Fatal(err)
	}
	if zero.Latency.Count == 0 || !zero.Conserved() {
		t.Fatalf("zero-value record not populated: %+v", zero)
	}
}

// TestObserverSilentAfterCrash checks the observer/metrics contract under a
// fault plan: a crashed node emits no deliver or transmit event at or after
// its crash time, and the RunRecord's per-cause drop counters close the
// conservation identity (receipts + lost + collided + fault drops == copies).
func TestObserverSilentAfterCrash(t *testing.T) {
	net := metricsWorkload(t)
	plan, err := fault.NewPlan(net.G, fault.Params{CrashFraction: 0.3, Protect: []int{0}}, 99)
	if err != nil {
		t.Fatal(err)
	}
	if plan.CrashedCount() == 0 {
		t.Fatal("fault plan crashed no nodes; the test needs crashes")
	}
	rec := &sim.Recorder{}
	rr := obsv.NewRunRecord()
	res, err := sim.Run(net.G, 0, protocol.Flooding(), sim.Config{
		Hops:     2,
		Seed:     3,
		LossRate: 0.1,
		Faults:   plan,
		Observer: rec,
		Metrics:  rr,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range rec.Events() {
		if e.Kind != sim.TraceDeliver && e.Kind != sim.TraceTransmit {
			continue
		}
		if tc, crashed := plan.CrashTime(e.Node); crashed && e.At >= tc {
			t.Errorf("node %d crashed at %v but emitted %s at %v", e.Node, tc, e.Kind, e.At)
		}
	}
	if rr.DroppedNodeDown == 0 {
		t.Fatal("no node-down drops recorded despite crashes mid-broadcast")
	}
	if !rr.Conserved() {
		t.Fatalf("conservation identity broken on faulty run: receipts %d + lost %d + collided %d + faultDrops %d != copies %d",
			rr.Receipts, rr.Lost, rr.Collided, rr.FaultDrops(), rr.Copies)
	}
	assertConserved(t, res)
}
