package sim

// calQueue is a bucketed calendar queue over value-typed events, the fast
// engine's replacement for the global binary heap of *event (event.go, kept
// as the sequential oracle). Events are bucketed by "day" — the integer
// quotient of their timestamp and the bucket width, which the simulator sets
// to the unit transmission delay — and each day holds a small min-heap
// ordered by (at, seq). Because simulation time never goes backwards, days
// are consumed strictly left to right; emptied bucket slices are recycled
// through a freelist, so steady-state operation allocates nothing.
//
// Ordering argument: int(at/width) is monotone in at, so day order refines
// time order across buckets, and the per-day heap restores exact (at, seq)
// order within a bucket. An event pushed with a timestamp whose day already
// passed (possible only for timestamps below the current bucket's lower
// boundary but >= now, e.g. zero-delay timers near a boundary) is clamped
// into the current day: its timestamp is <= every other queued event's, and
// the in-bucket heap orders it correctly, so the global pop order is still
// exactly the (at, seq) order a single heap would produce. The property/fuzz
// tests in calqueue_test.go pin this equivalence against the binary heap.
type calQueue struct {
	width float64   // bucket width (the unit transmission delay)
	days  [][]event // days[d] = min-heap of events in [d*width, (d+1)*width)
	cur   int       // first possibly non-empty day
	size  int       // total queued events
	free  [][]event // recycled empty bucket slices
}

// reset prepares the queue for a new run, recycling every bucket slice.
func (q *calQueue) reset(width float64) {
	for d := q.cur; d < len(q.days); d++ {
		if b := q.days[d]; b != nil {
			for i := range b {
				b[i] = event{}
			}
			q.free = append(q.free, b[:0])
			q.days[d] = nil
		}
	}
	q.days = q.days[:0]
	q.width = width
	q.cur = 0
	q.size = 0
}

func (q *calQueue) takeBucket() []event {
	if n := len(q.free); n > 0 {
		b := q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		return b
	}
	return nil
}

// push inserts e. The event's timestamp must be >= the timestamp of the last
// popped event (simulation time is monotone).
func (q *calQueue) push(e event) {
	d := int(e.at / q.width)
	if d < q.cur {
		// Below the current bucket's boundary but still the earliest
		// pending timestamp; see the ordering argument above.
		d = q.cur
	}
	for d >= len(q.days) {
		q.days = append(q.days, q.takeBucket())
	}
	h := append(q.days[d], e)
	// Sift up by (at, seq).
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if h[i].at < h[p].at || (h[i].at == h[p].at && h[i].seq < h[p].seq) {
			h[i], h[p] = h[p], h[i]
			i = p
		} else {
			break
		}
	}
	q.days[d] = h
	q.size++
}

// advance moves cur to the first non-empty day, recycling emptied buckets.
// Callers must ensure size > 0.
func (q *calQueue) advance() {
	for len(q.days[q.cur]) == 0 {
		if b := q.days[q.cur]; b != nil {
			q.free = append(q.free, b)
			q.days[q.cur] = nil
		}
		q.cur++
	}
}

// peekTime returns the timestamp of the earliest event. Requires size > 0.
func (q *calQueue) peekTime() float64 {
	q.advance()
	return q.days[q.cur][0].at
}

// pop removes and returns the earliest event by (at, seq). Requires size > 0.
func (q *calQueue) pop() event {
	q.advance()
	h := q.days[q.cur]
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = event{} // release packet references
	h = h[:last]
	// Sift down by (at, seq).
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && (h[l].at < h[m].at || (h[l].at == h[m].at && h[l].seq < h[m].seq)) {
			m = l
		}
		if r < last && (h[r].at < h[m].at || (h[r].at == h[m].at && h[r].seq < h[m].seq)) {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	q.days[q.cur] = h
	q.size--
	return top
}
