package sim_test

import (
	"testing"

	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
)

// TestStaleViewTopologyUsedForDecisions pins the ViewTopology semantics: the
// coverage condition runs on the stale snapshot while packets propagate over
// the actual graph.
func TestStaleViewTopologyUsedForDecisions(t *testing.T) {
	// Actual topology: path 0-1-2-3. Stale view: the same path plus a
	// phantom link {1,3}. Node 2 sees its neighbors 1 and 3 directly
	// connected and prunes itself; in reality nothing else reaches node 3.
	actual := pathGraph(t, 4)
	stale := pathGraph(t, 4)
	if err := stale.AddEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(actual, 0, protocol.Generic(protocol.TimingFirstReceipt), sim.Config{
		Hops:         2,
		ViewTopology: stale,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 3 {
		t.Fatalf("delivered = %d, want 3 (node 3 stranded by the phantom link)", res.Delivered)
	}
	for _, v := range res.Forward {
		if v == 2 {
			t.Fatal("node 2 forwarded despite the stale view showing it covered")
		}
	}

	// Control: with truthful views the same broadcast reaches everyone.
	res, err = sim.Run(actual, 0, protocol.Generic(protocol.TimingFirstReceipt), sim.Config{Hops: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FullDelivery() {
		t.Fatalf("control run delivered %d/%d", res.Delivered, res.N)
	}
}

// TestStaleViewMissingLink checks the opposite direction: a link that exists
// in reality but not in the view is never used for pruning, so delivery
// still succeeds (extra links can only add redundancy).
func TestStaleViewMissingLink(t *testing.T) {
	actual := pathGraph(t, 4)
	if err := actual.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	stale := pathGraph(t, 4) // the {0,2} link is unknown
	res, err := sim.Run(actual, 0, protocol.Generic(protocol.TimingFirstReceipt), sim.Config{
		Hops:         2,
		ViewTopology: stale,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FullDelivery() {
		t.Fatalf("delivered %d/%d with a conservative stale view", res.Delivered, res.N)
	}
}
