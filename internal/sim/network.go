package sim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"adhocbcast/internal/core"
	"adhocbcast/internal/graph"
	"adhocbcast/internal/view"
)

// Protocol is a broadcast protocol plugged into the simulator. One Protocol
// value serves a single run; stateful protocols keep per-run state in the
// node states' Data slots or in themselves.
type Protocol interface {
	// Name returns the protocol's display name.
	Name() string
	// Init runs once per simulation after local views are built; static
	// protocols compute their forward sets here.
	Init(net *Network)
	// Start handles the broadcast source at time 0. The source always
	// forwards; protocols that designate forward neighbors select them here.
	Start(net *Network, source int)
	// OnReceive handles delivery of one packet copy to node v. The network
	// has already recorded the receipt and merged the packet's broadcast
	// state into v's local view.
	OnReceive(net *Network, v int, r Receipt)
	// OnTimer fires a timer previously set with Network.SetTimer.
	OnTimer(net *Network, v int)
}

// NodeState is the simulator-side state of one node.
type NodeState struct {
	// ID is the node id.
	ID int
	// View is the node's local view (topology plus learned broadcast
	// state).
	View *view.Local
	// Received reports whether at least one packet copy arrived.
	Received bool
	// FirstFrom is the sender of the first copy (-1 at the source).
	FirstFrom int
	// FirstPacket is the first delivered packet copy.
	FirstPacket Packet
	// LastPacket is the most recently delivered copy; its trail seeds the
	// trail of this node's own transmission.
	LastPacket Packet
	// Sent reports whether the node has transmitted.
	Sent bool
	// NonForward reports a finalized non-forward decision.
	NonForward bool
	// DesignatedBy lists the nodes that designated this node as a forward
	// node, in learning order.
	DesignatedBy []int
	// Receipts records every delivered copy in order.
	Receipts []Receipt
	// Data is protocol-private per-node state.
	Data any
}

// Designated reports whether any node designated this node.
func (st *NodeState) Designated() bool { return len(st.DesignatedBy) > 0 }

// DesignatedByNode reports whether node u designated this node.
func (st *NodeState) DesignatedByNode(u int) bool {
	for _, x := range st.DesignatedBy {
		if x == u {
			return true
		}
	}
	return false
}

// Result summarizes one simulated broadcast.
type Result struct {
	// Forward lists the transmitting nodes (including the source) in
	// transmission order.
	Forward []int
	// Delivered is the number of nodes that received the packet.
	Delivered int
	// N is the network size.
	N int
	// Finish is the time of the last event.
	Finish float64
	// Receipts is the total number of packet copies delivered (a measure
	// of channel load and redundancy).
	Receipts int
	// Lost counts copies dropped by the random-loss model.
	Lost int
	// Collided counts copies dropped by the collision model.
	Collided int
}

// DeliveryRatio returns the fraction of nodes that received the packet.
func (r Result) DeliveryRatio() float64 {
	if r.N == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.N)
}

// ForwardCount returns the number of forward (transmitting) nodes.
func (r Result) ForwardCount() int { return len(r.Forward) }

// FullDelivery reports whether every node received the packet.
func (r Result) FullDelivery() bool { return r.Delivered == r.N }

// Network is one simulation instance.
type Network struct {
	// G is the true connectivity graph.
	G *graph.Graph
	// Cfg is the run configuration (defaults applied).
	Cfg Config
	// Source is the broadcast originator.
	Source int

	protocol Protocol
	eval     *core.Evaluator
	rng      *rand.Rand
	now      float64
	seq      int
	queue    eventQueue
	nodes    []*NodeState
	forward  []int
	base     []view.Priority
	viewG    *graph.Graph // topology the views were built from
	receipts int
	lost     int
	collided int
}

// Run simulates one broadcast of protocol p from source over g and returns
// the outcome. It returns an error only for invalid inputs; protocol
// behavior (including failed delivery) is reported in the Result.
func Run(g *graph.Graph, source int, p Protocol, cfg Config) (Result, error) {
	if source < 0 || source >= g.N() {
		return Result{}, fmt.Errorf("sim: source %d out of range [0,%d)", source, g.N())
	}
	net := &Network{
		G:        g,
		Cfg:      cfg.withDefaults(),
		Source:   source,
		protocol: p,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
	net.build()
	p.Init(net)
	net.deliverToSource()
	p.Start(net, source)
	net.loop()
	return net.result(), nil
}

func (net *Network) build() {
	n := net.G.N()
	// Views (and the priority metrics inside them) come from the view
	// topology, which may be a stale snapshot of the actual graph.
	vg := net.G
	if net.Cfg.ViewTopology != nil {
		vg = net.Cfg.ViewTopology
	}
	net.viewG = vg
	net.base = view.BasePriorities(vg, net.Cfg.Metric)
	net.nodes = make([]*NodeState, n)
	for v := 0; v < n; v++ {
		net.nodes[v] = &NodeState{
			ID:        v,
			View:      view.NewLocal(vg, v, net.Cfg.Hops, net.base),
			FirstFrom: -1,
		}
	}
}

// deliverToSource marks the source as having the packet so that protocols
// can treat it uniformly.
func (net *Network) deliverToSource() {
	st := net.nodes[net.Source]
	st.Received = true
	st.FirstPacket = Packet{Source: net.Source}
	st.LastPacket = st.FirstPacket
}

func (net *Network) loop() {
	if !net.Cfg.Collisions {
		for net.queue.Len() > 0 {
			e := heap.Pop(&net.queue).(*event)
			net.now = e.at
			net.dispatch(e)
		}
		return
	}
	// Collision mode: drain all events sharing one instant as a batch; two
	// or more copies arriving at the same receiver at the same instant
	// destroy each other.
	var batch []*event
	for net.queue.Len() > 0 {
		batch = batch[:0]
		at := net.queue[0].at
		for net.queue.Len() > 0 && net.queue[0].at == at {
			batch = append(batch, heap.Pop(&net.queue).(*event))
		}
		net.now = at
		arrivals := make(map[int]int)
		for _, e := range batch {
			if e.kind == eventReceive {
				arrivals[e.node]++
			}
		}
		for _, e := range batch {
			if e.kind == eventReceive && arrivals[e.node] > 1 {
				net.collided++
				continue
			}
			net.dispatch(e)
		}
	}
}

func (net *Network) dispatch(e *event) {
	switch e.kind {
	case eventReceive:
		net.handleReceive(e.node, e.receipt)
	case eventTimer:
		net.protocol.OnTimer(net, e.node)
	}
}

func (net *Network) handleReceive(v int, r Receipt) {
	if net.Cfg.LossRate > 0 && net.rng.Float64() < net.Cfg.LossRate {
		net.lost++
		return
	}
	net.receipts++
	if net.Cfg.Observer != nil {
		net.Cfg.Observer.OnDeliver(v, r.From, net.now)
	}
	st := net.nodes[v]
	first := !st.Received
	st.Received = true
	if first {
		st.FirstFrom = r.From
		st.FirstPacket = r.Packet
	}
	st.LastPacket = r.Packet
	st.Receipts = append(st.Receipts, r)

	// Merge broadcast state into the local view: the sender is visited
	// (snooped); the trail carries piggybacked visited nodes and their
	// designated forward sets.
	st.View.MarkVisited(r.From)
	for _, entry := range r.Packet.Trail {
		st.View.MarkVisited(entry.Node)
		for _, d := range entry.Designated {
			if d == v {
				if !st.DesignatedByNode(entry.Node) {
					st.DesignatedBy = append(st.DesignatedBy, entry.Node)
				}
			}
			// A designated node (including this one) is promoted to the
			// intermediate 1.5 status of Section 4.2 under this view.
			st.View.MarkDesignated(d)
		}
	}
	net.protocol.OnReceive(net, v, r)
}

func (net *Network) result() Result {
	delivered := 0
	for _, st := range net.nodes {
		if st.Received {
			delivered++
		}
	}
	return Result{
		Forward:   append([]int(nil), net.forward...),
		Delivered: delivered,
		N:         net.G.N(),
		Finish:    net.now,
		Receipts:  net.receipts,
		Lost:      net.lost,
		Collided:  net.collided,
	}
}

// Now returns the current simulation time.
func (net *Network) Now() float64 { return net.now }

// Evaluator returns this run's shared coverage-condition evaluator. The
// simulator is single-threaded per run, so every node decision of the run
// reuses one set of scratch buffers instead of allocating per evaluation.
func (net *Network) Evaluator() *core.Evaluator {
	if net.eval == nil {
		net.eval = core.NewEvaluator(net.G.N())
	}
	return net.eval
}

// State returns the simulator state of node v.
func (net *Network) State(v int) *NodeState { return net.nodes[v] }

// RandomBackoff draws a uniform backoff delay from [0, BackoffWindow).
func (net *Network) RandomBackoff() float64 {
	return net.rng.Float64() * net.Cfg.BackoffWindow
}

// DegreeBackoff returns the backoff of the FRBD policy, proportional to the
// inverse of the node degree so that higher-degree nodes decide earlier:
// BackoffWindow * avgDegree / deg(v). The average-degree scaling keeps the
// spread between degree classes larger than the transmission delay, so
// low-degree nodes actually hear their high-degree neighbors forward before
// deciding.
func (net *Network) DegreeBackoff(v int) float64 {
	// Degrees come from the node's (possibly stale) knowledge, i.e. the
	// view topology.
	d := net.viewG.Degree(v)
	if d == 0 {
		return net.Cfg.BackoffWindow
	}
	return net.Cfg.BackoffWindow * net.viewG.AverageDegree() / float64(d)
}

// SetTimer schedules an OnTimer callback for node v after delay (>= 0).
func (net *Network) SetTimer(v int, delay float64) {
	if delay < 0 {
		delay = 0
	}
	net.seq++
	heap.Push(&net.queue, &event{
		at:   net.now + delay,
		seq:  net.seq,
		kind: eventTimer,
		node: v,
	})
}

// MarkNonForward finalizes a non-forward decision for v.
func (net *Network) MarkNonForward(v int) {
	if !net.nodes[v].NonForward && net.Cfg.Observer != nil {
		net.Cfg.Observer.OnNonForward(v, net.now)
	}
	net.nodes[v].NonForward = true
}

// Transmit makes node v forward the broadcast packet now, carrying the given
// designated forward set. All neighbors receive a copy after TransmitDelay.
// Repeated transmissions by the same node are ignored (a node forwards at
// most once).
func (net *Network) Transmit(v int, designated []int) {
	net.TransmitExtra(v, designated, nil)
}

// TransmitExtra is Transmit with a protocol-specific extra payload attached
// to the packet.
func (net *Network) TransmitExtra(v int, designated, extra []int) {
	st := net.nodes[v]
	if st.Sent {
		return
	}
	st.Sent = true
	st.View.MarkVisited(v)
	net.forward = append(net.forward, v)
	if net.Cfg.Observer != nil {
		net.Cfg.Observer.OnTransmit(v, net.now, designated)
	}

	trail := st.LastPacket.Trail
	entry := TrailEntry{Node: v, Designated: append([]int(nil), designated...)}
	newTrail := make([]TrailEntry, 0, len(trail)+1)
	newTrail = append(newTrail, trail...)
	newTrail = append(newTrail, entry)
	if h := net.Cfg.PiggybackDepth; len(newTrail) > h {
		newTrail = newTrail[len(newTrail)-h:]
	}
	pkt := Packet{
		Source: st.LastPacket.Source,
		Trail:  newTrail,
		Extra:  extra,
	}
	arrive := net.now + net.Cfg.TransmitDelay
	if net.Cfg.TxJitter > 0 {
		// One jitter draw per transmission: all neighbors hear the same
		// (delayed) transmission at the same instant.
		arrive += net.rng.Float64() * net.Cfg.TxJitter
	}
	net.G.ForEachNeighbor(v, func(u int) {
		net.seq++
		heap.Push(&net.queue, &event{
			at:   arrive,
			seq:  net.seq,
			kind: eventReceive,
			node: u,
			receipt: Receipt{
				From:   v,
				At:     arrive,
				Packet: pkt,
			},
		})
	})
}
