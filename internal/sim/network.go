package sim

import (
	"container/heap"
	"fmt"
	"math"

	"adhocbcast/internal/core"
	"adhocbcast/internal/fault"
	"adhocbcast/internal/graph"
	"adhocbcast/internal/view"
)

// Protocol is a broadcast protocol plugged into an executor. One Protocol
// value serves a single run on a single Runtime; stateful protocols keep
// per-run state in the node states' Data slots or in themselves. The
// simulator drives one instance for the whole network; the live executor
// (internal/runtime) drives one instance per node, which the Runtime
// contract's locality property makes equivalent.
type Protocol interface {
	// Name returns the protocol's display name.
	Name() string
	// Init runs once per run after local views are built; static protocols
	// compute their forward statuses here, iterating the runtime's local
	// nodes (Runtime.ForEachLocalNode).
	Init(rt Runtime)
	// Start handles the broadcast source at time 0. The source always
	// forwards; protocols that designate forward neighbors select them here.
	Start(rt Runtime, source int)
	// OnReceive handles delivery of one packet copy to node v. The executor
	// has already recorded the receipt and merged the packet's broadcast
	// state into v's local view.
	OnReceive(rt Runtime, v int, r Receipt)
	// OnTimer fires a timer previously set with Runtime.SetTimer.
	OnTimer(rt Runtime, v int)
}

// NodeState is the simulator-side state of one node.
type NodeState struct {
	// ID is the node id.
	ID int
	// View is the node's local view (topology plus learned broadcast
	// state).
	View *view.Local
	// Received reports whether at least one packet copy arrived.
	Received bool
	// FirstFrom is the sender of the first copy (-1 at the source).
	FirstFrom int
	// FirstPacket is the first delivered packet copy.
	FirstPacket Packet
	// LastPacket is the most recently delivered copy; its trail seeds the
	// trail of this node's own transmission.
	LastPacket Packet
	// Sent reports whether the node has transmitted.
	Sent bool
	// NonForward reports a finalized non-forward decision.
	NonForward bool
	// DesignatedBy lists the nodes that designated this node as a forward
	// node, in learning order.
	DesignatedBy []int
	// Receipts records every delivered copy in order.
	Receipts []Receipt
	// Data is protocol-private per-node state.
	Data any

	// sentPkt is the packet this node transmitted, kept for recovery-layer
	// retransmissions.
	sentPkt Packet
}

// Designated reports whether any node designated this node.
func (st *NodeState) Designated() bool { return len(st.DesignatedBy) > 0 }

// DesignatedByNode reports whether node u designated this node.
func (st *NodeState) DesignatedByNode(u int) bool {
	for _, x := range st.DesignatedBy {
		if x == u {
			return true
		}
	}
	return false
}

// Result summarizes one simulated broadcast.
type Result struct {
	// Forward lists the transmitting nodes (including the source) in
	// transmission order.
	Forward []int
	// Delivered is the number of nodes that received the packet.
	Delivered int
	// N is the network size.
	N int
	// Finish is the time of the last event.
	Finish float64
	// Receipts is the total number of packet copies delivered (a measure
	// of channel load and redundancy).
	Receipts int
	// Copies is the total number of packet copies transmitted, including
	// recovery retransmissions. Every copy is eventually delivered or
	// dropped: Receipts + Lost + Collided + FaultDrops() == Copies.
	Copies int
	// Lost counts copies dropped by the random-loss model.
	Lost int
	// Collided counts copies dropped by the collision model.
	Collided int
	// DroppedNodeDown counts copies dropped because the receiver was
	// crashed or churned down at arrival time.
	DroppedNodeDown int
	// DroppedLinkDown counts copies dropped because the link was down at
	// arrival time.
	DroppedLinkDown int
	// TimersCancelled counts protocol timers cancelled because their owner
	// was down when they fired.
	TimersCancelled int
	// NACKs counts recovery requests sent by receivers.
	NACKs int
	// Retransmits counts recovery retransmissions sent (a subset of
	// Copies).
	Retransmits int
	// QueueDrops counts packets dropped from contention-MAC transmit
	// queues (capacity overflow, or a queue wiped when its node went
	// down). Queued packets never became transmitted copies, so queue
	// drops are outside the Copies conservation identity. Zero without
	// CarrierSense.
	QueueDrops int
	// MACDeferrals counts transmit attempts deferred because carrier sense
	// found the channel busy. Zero without CarrierSense.
	MACDeferrals int
	// Reachable is the number of nodes reachable from the source once the
	// fault plan's crashed nodes are removed (N when no plan is set).
	Reachable int
	// DeliveredReachable is the number of reachable nodes that received
	// the packet.
	DeliveredReachable int
}

// DeliveryRatio returns the fraction of nodes that received the packet.
func (r Result) DeliveryRatio() float64 {
	if r.N == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.N)
}

// ReachableDeliveryRatio returns the fraction of *reachable* nodes that
// received the packet: delivered over the nodes still connected to the source
// after removing crashed nodes. Under a partitioning fault plan this scores
// the protocol only on the nodes it could possibly have served, so a
// partitioned network is not counted as a protocol failure. Without a fault
// plan it equals DeliveryRatio.
func (r Result) ReachableDeliveryRatio() float64 {
	if r.Reachable == 0 {
		return 0
	}
	return float64(r.DeliveredReachable) / float64(r.Reachable)
}

// FaultDrops returns the total copies dropped by the fault plan, by any
// cause.
func (r Result) FaultDrops() int { return r.DroppedNodeDown + r.DroppedLinkDown }

// ForwardCount returns the number of forward (transmitting) nodes.
func (r Result) ForwardCount() int { return len(r.Forward) }

// FullDelivery reports whether every node received the packet.
func (r Result) FullDelivery() bool { return r.Delivered == r.N }

// Network is one simulation instance.
type Network struct {
	// G is the true connectivity graph.
	G *graph.Graph
	// Cfg is the run configuration (defaults applied).
	Cfg Config
	// Source is the broadcast originator.
	Source int

	protocol Protocol
	arena    *Arena
	rngs     streams
	plan     *fault.Plan
	now      float64
	seq      int
	fast     bool       // calendar-queue engine (EngineFast)
	workers  int        // precompute workers (fast engine; >= 1)
	queue    eventQueue // oracle engine's binary heap (EngineOracle)
	nodes    []NodeState
	prepared []int8 // precomputed timer verdicts (nil unless workers > 1)
	forward  []int
	base     []view.Priority
	viewG    *graph.Graph   // topology the views were built from (global-view modes)
	nodeView []*graph.Graph // per-node view topologies (NodeViews mode, else nil)

	// Multi-session traffic state (RunTraffic; nil/zero for single runs).
	newProto   func() Protocol // per-session protocol factory
	multi      []*sessionState // session states indexed by session id
	tmplViews  []*view.Local   // built views sessions clone their own from
	delivered  int             // first deliveries across sessions
	latSamples []float64       // per-session-relative first-delivery latencies

	// Contention-MAC state (CarrierSense; nil/zero otherwise). All slices
	// are arena scratch, reset per run.
	busyUntil   []float64 // per transmitter: end of its transmission on the air
	airEnd      []float64 // per receiver: latest in-flight arrival time
	garbleUntil []float64 // per receiver: arrivals at or before this are garbled
	txPending   []bool    // per node: a tx-attempt event is in flight
	txq         []txRing  // per-node FIFO transmit queues

	receipts        int
	copies          int
	lost            int
	collided        int
	droppedNodeDown int
	droppedLinkDown int
	timersCancelled int
	nacks           int
	retransmits     int
	queueDrops      int
	macDeferrals    int
}

// stateOf returns the bookkeeping state of node v within session sid; single
// runs (no session table) route to the network-wide node array.
func (net *Network) stateOf(sid int32, v int) *NodeState {
	if net.multi == nil {
		return &net.nodes[v]
	}
	return &net.multi[sid].nodes[v]
}

// protocolOf returns the protocol instance handling session sid.
func (net *Network) protocolOf(sid int32) Protocol {
	if net.multi == nil {
		return net.protocol
	}
	return net.multi[sid].proto
}

// runtimeOf returns the Runtime protocol callbacks of session sid run
// against: the network itself for single runs, the session's scoped runtime
// in traffic runs.
func (net *Network) runtimeOf(sid int32) Runtime {
	if net.multi == nil {
		return net
	}
	return &net.multi[sid].rt
}

// Run simulates one broadcast of protocol p from source over g and returns
// the outcome. It returns an error only for invalid inputs (out-of-range
// source, malformed Config or fault plan); protocol behavior (including
// failed delivery) is reported in the Result.
func Run(g *graph.Graph, source int, p Protocol, cfg Config) (Result, error) {
	return RunWith(nil, g, source, p, cfg)
}

// RunWith is Run with an explicit Arena: consecutive runs through the same
// Arena reuse node state, event-queue buckets, evaluator scratch, and (when
// topology, hops, and metric repeat) the built local views, making sweep
// iterations allocation-free in steady state. A nil Arena allocates a private
// one. An Arena serves one run at a time; concurrent runs need one each.
// Because built views are cached by topology pointer, callers must not mutate
// a graph in place between runs that share an Arena.
func RunWith(a *Arena, g *graph.Graph, source int, p Protocol, cfg Config) (Result, error) {
	if source < 0 || source >= g.N() {
		return Result{}, fmt.Errorf("sim: source %d out of range [0,%d)", source, g.N())
	}
	if err := cfg.validate(g.N()); err != nil {
		return Result{}, err
	}
	if a == nil {
		a = NewArena()
	}
	net := &Network{
		G:        g,
		Cfg:      cfg.withDefaults(),
		Source:   source,
		protocol: p,
		arena:    a,
		rngs:     newStreams(cfg.Seed),
		plan:     cfg.Faults,
	}
	net.fast = net.Cfg.Engine == EngineFast
	net.workers = 1
	if net.fast {
		if net.Cfg.Workers > 1 {
			net.workers = net.Cfg.Workers
		}
		a.cal.reset(net.Cfg.TransmitDelay)
	}
	a.ensureLoopScratch(g.N(), net.workers > 1)
	if net.workers > 1 {
		net.prepared = a.prepared
	}
	if net.Cfg.CarrierSense {
		net.resetMAC(g.N())
	}
	if m := net.Cfg.Metrics; m != nil {
		m.Reset()
	}
	if err := net.build(); err != nil {
		return Result{}, err
	}
	p.Init(net)
	net.deliverToSource()
	p.Start(net, source)
	net.loop()
	return net.result(), nil
}

func (net *Network) build() error {
	n := net.G.N()
	a := net.arena
	net.nodes = a.stateNodes(n)
	if net.Cfg.NodeViews != nil {
		// Per-node views: every node's local view AND its priority metrics
		// come from its own (possibly wrong) graph. Nodes therefore disagree
		// not only about links but also about degree-derived priorities —
		// exactly the divergence a lossy hello exchange produces. Divergent
		// views can never share the arena's view cache, so they are built
		// fresh every run.
		net.nodeView = make([]*graph.Graph, n)
		for v := 0; v < n; v++ {
			gv := net.Cfg.NodeViews(v)
			if gv == nil {
				return fmt.Errorf("sim: NodeViews returned nil for node %d", v)
			}
			if gv.N() != n {
				return fmt.Errorf("sim: node %d view has %d nodes, network has %d", v, gv.N(), n)
			}
			net.nodeView[v] = gv
			base := view.BasePriorities(gv, net.Cfg.Metric)
			net.nodes[v].View = a.builder.Build(gv, v, net.Cfg.Hops, base)
		}
		return nil
	}
	// Views (and the priority metrics inside them) come from the view
	// topology, which may be a stale snapshot of the actual graph.
	vg := net.G
	if net.Cfg.ViewTopology != nil {
		vg = net.Cfg.ViewTopology
	}
	net.viewG = vg
	views, base := a.viewsFor(vg, net.Cfg.Hops, net.Cfg.Metric)
	net.base = base
	for v := 0; v < n; v++ {
		net.nodes[v].View = views[v]
	}
	return nil
}

// deliverToSource marks the source as having the packet so that protocols
// can treat it uniformly. The source's first delivery is reported at t=0
// with sender -1 — it holds the packet from the start, so latency statistics
// must not wait for a neighbor's retransmission to echo back.
func (net *Network) deliverToSource() {
	st := &net.nodes[net.Source]
	st.Received = true
	st.FirstPacket = Packet{Source: net.Source}
	st.LastPacket = st.FirstPacket
	net.obsDeliver(0, net.Source, -1)
	if net.Cfg.Metrics != nil {
		net.Cfg.Metrics.Latency.Observe(0)
	}
}

// down reports whether node v is down (crashed or churned) at the current
// simulation time.
func (net *Network) down(v int) bool {
	return net.plan != nil && net.plan.NodeDownAt(v, net.now)
}

func (net *Network) loop() {
	if net.fast {
		net.loopFast()
		return
	}
	if !net.Cfg.Collisions {
		for net.queue.Len() > 0 {
			e := heap.Pop(&net.queue).(*event)
			if debugChecks && e.at < net.now {
				panic(fmt.Sprintf("sim: event time %v before now %v", e.at, net.now))
			}
			net.now = e.at
			net.dispatch(e)
		}
		return
	}
	// Collision mode: drain all events sharing one instant as a batch; two
	// or more copies arriving at the same receiver at the same instant
	// destroy each other. Copies already dropped by the fault plan do not
	// count as arrivals — a down node's radio is off, not jamming.
	batch := net.arena.obatch[:0]
	for net.queue.Len() > 0 {
		batch = batch[:0]
		at := net.queue[0].at
		for net.queue.Len() > 0 && net.queue[0].at == at {
			batch = append(batch, heap.Pop(&net.queue).(*event))
		}
		if debugChecks && at < net.now {
			panic(fmt.Sprintf("sim: event time %v before now %v", at, net.now))
		}
		net.now = at
		live := batch[:0]
		for _, e := range batch {
			if e.kind == eventReceive && net.dropByFault(e) {
				continue
			}
			live = append(live, e)
		}
		arr, touched := net.countArrivals(eventsOf(live))
		for _, e := range live {
			if e.kind == eventReceive && arr[e.node] > 1 {
				net.collided++
				net.maybeNACK(e.session, e.node, e.receipt.From, e.attempt)
				continue
			}
			net.dispatch(e)
		}
		net.clearArrivals(arr, touched)
	}
	net.arena.obatch = batch[:0]
}

// countArrivals tallies same-instant receive arrivals per receiver into the
// arena's flat count array, returning it with the list of touched nodes. The
// caller must hand both back to clearArrivals once done — the array relies on
// that discipline to stay all-zero between batches instead of being cleared
// per batch (the batch is tiny compared to n).
func (net *Network) countArrivals(events func(yield func(*event))) ([]int32, []int) {
	arr := net.arena.arrCnt
	touched := net.arena.arrTouched[:0]
	events(func(e *event) {
		if e.kind != eventReceive {
			return
		}
		if arr[e.node] == 0 {
			touched = append(touched, e.node)
		}
		arr[e.node]++
	})
	return arr, touched
}

func (net *Network) clearArrivals(arr []int32, touched []int) {
	for _, v := range touched {
		arr[v] = 0
	}
	net.arena.arrTouched = touched[:0]
}

// eventsOf adapts a pointer-event batch to the iterator countArrivals takes.
func eventsOf(batch []*event) func(yield func(*event)) {
	return func(yield func(*event)) {
		for _, e := range batch {
			yield(e)
		}
	}
}

func (net *Network) dispatch(e *event) {
	switch e.kind {
	case eventReceive:
		if net.dropByFault(e) {
			return
		}
		if net.Cfg.CarrierSense && net.garbledArrival(e.node) {
			net.collided++
			net.maybeNACK(e.session, e.node, e.receipt.From, e.attempt)
			return
		}
		net.handleReceive(e.session, e.node, e.receipt, e.attempt, false)
	case eventTimer:
		if net.down(e.node) {
			// A down node loses its pending decision timers: a crashed
			// node forever, a churned node because the reboot wiped its
			// soft state.
			net.timersCancelled++
			return
		}
		net.protocolOf(e.session).OnTimer(net.runtimeOf(e.session), e.node)
	case eventNACK:
		net.handleNACK(e)
	case eventRetransmit:
		net.handleRetransmit(e)
	case eventSessionStart:
		net.startSession(e.session, e.node)
	case eventTxAttempt:
		net.txAttempt(e.node)
	}
}

// dropByFault drops a receive event whose receiver or link is down at
// arrival time, accounting the drop by cause. It is idempotent for events
// that are not dropped, so the collision path may pre-filter a batch and
// dispatch the survivors through the normal path.
func (net *Network) dropByFault(e *event) bool {
	if net.plan == nil {
		return false
	}
	if net.plan.NodeDownAt(e.node, net.now) {
		net.droppedNodeDown++
		return true
	}
	if net.plan.LinkDownAt(e.receipt.From, e.node, net.now) {
		net.droppedLinkDown++
		return true
	}
	return false
}

// handleReceive delivers one packet copy to node v. merged marks a copy whose
// view merge already happened in the fast engine's parallel pre-merge phase
// (see precompute); everything order-sensitive — RNG draws, counters,
// observers, receipt bookkeeping, the protocol callback — still runs here, in
// event order.
func (net *Network) handleReceive(sid int32, v int, r Receipt, attempt int, merged bool) {
	if debugChecks && net.down(v) {
		panic(fmt.Sprintf("sim: delivery dispatched to down node %d at %v", v, net.now))
	}
	if net.Cfg.LossRate > 0 && net.rngs.loss.Float64() < net.Cfg.LossRate {
		net.lost++
		// The receiver detected a garbled transmission it could not
		// decode: with recovery enabled it asks the sender to retry.
		net.maybeNACK(sid, v, r.From, attempt)
		return
	}
	net.receipts++
	net.obsDeliver(sid, v, r.From)
	st := net.stateOf(sid, v)
	first := st.RecordReceipt(r)
	if first {
		if net.multi != nil {
			// Multi-session latency is relative to the session's injection
			// time; exact samples feed the traffic quantiles.
			s := net.multi[sid]
			s.delivered++
			net.delivered++
			lat := net.now - s.start
			net.latSamples = append(net.latSamples, lat)
			if net.Cfg.Metrics != nil {
				net.Cfg.Metrics.Latency.Observe(lat)
			}
		} else if net.Cfg.Metrics != nil {
			net.Cfg.Metrics.Latency.Observe(net.now)
		}
	}

	if !merged {
		net.mergeReceipt(st, v, r)
	}
	net.protocolOf(sid).OnReceive(net.runtimeOf(sid), v, r)
}

// mergeReceipt merges a copy's broadcast state into v's local view (see the
// exported MergeReceipt, shared with the live executor). The merge is monotone
// and touches nothing but v's own state, which is what lets the fast engine
// apply a node's same-instant merges from a worker goroutine.
func (net *Network) mergeReceipt(st *NodeState, v int, r Receipt) {
	MergeReceipt(st, v, r)
}

// maybeNACK schedules a recovery request from receiver v to sender `from`
// after a copy was dropped by loss or collision (the drops a radio can
// detect; a down node or link leaves nothing to overhear). attempt is the
// retry number of the dropped copy; the request asks for attempt+1, bounded
// by the retry budget. Receivers that already hold the packet do not bother.
func (net *Network) maybeNACK(sid int32, v, from, attempt int) {
	if !net.Cfg.NACKRecovery || net.stateOf(sid, v).Received {
		return
	}
	next := attempt + 1
	if next > net.Cfg.RetryBudget {
		return
	}
	net.nacks++
	net.seq++
	net.pushEvent(event{
		at:      net.now + net.Cfg.NACKDelay,
		seq:     net.seq,
		kind:    eventNACK,
		node:    from,
		peer:    v,
		attempt: next,
		session: sid,
	})
}

// maxRetryExponent caps the exponential retry backoff at RetryBackoff * 2^12
// (4096 slots — far beyond any broadcast horizon). Without the cap a large
// RetryBudget lets Ldexp overflow the delay to +Inf, which would wedge the
// calendar queue; a recovery attempt thousands of slots out is equivalent to
// a dead chain anyway, so capping changes nothing observable for sane budgets.
const maxRetryExponent = 12

// retryBackoffDelay returns the bounded exponential backoff before recovery
// retransmission k (1-based): base * 2^(k-1), capped at base * 2^maxRetryExponent.
func retryBackoffDelay(base float64, attempt int) float64 {
	exp := attempt - 1
	if exp > maxRetryExponent {
		exp = maxRetryExponent
	}
	return math.Ldexp(base, exp)
}

// handleNACK processes a recovery request arriving at the original sender:
// the retransmission is scheduled after an exponential backoff, unless the
// sender itself is down by now (then the recovery chain dies — there is
// nobody left to retry).
func (net *Network) handleNACK(e *event) {
	u := e.node
	if net.down(u) {
		return
	}
	delay := retryBackoffDelay(net.Cfg.RetryBackoff, e.attempt)
	if net.Cfg.CarrierSense {
		// Hidden terminals cannot sense each other, so symmetric recovery
		// chains with identical deterministic backoffs would retry in
		// lockstep and re-collide forever. Classic binary exponential
		// backoff: spread the retry by a random whole-slot count within a
		// window that doubles per attempt.
		exp := e.attempt
		if exp > maxRetryExponent {
			exp = maxRetryExponent
		}
		delay += float64(net.rngs.mac.Intn(1<<uint(exp))) * net.Cfg.TransmitDelay
	}
	net.seq++
	net.pushEvent(event{
		at:      net.now + delay,
		seq:     net.seq,
		kind:    eventRetransmit,
		node:    u,
		peer:    e.peer,
		attempt: e.attempt,
		session: e.session,
	})
}

// handleRetransmit emits one unicast recovery copy from sender e.node to
// receiver e.peer, subject to the same loss, collision, and fault filters as
// any other copy.
func (net *Network) handleRetransmit(e *event) {
	u := e.node
	st := net.stateOf(e.session, u)
	if net.down(u) || !st.Sent {
		return
	}
	if net.Cfg.CarrierSense {
		// Under the contention MAC the recovery copy shares the radio:
		// it queues behind the node's pending broadcasts, waits for a
		// clear channel, and can itself collide — so recovery is
		// exercised under the same contention that caused the drop.
		net.enqueueTx(u, txItem{
			session: e.session,
			pkt:     st.sentPkt,
			to:      e.peer,
			attempt: e.attempt,
		})
		return
	}
	arrive := net.now + net.Cfg.TransmitDelay
	if net.Cfg.TxJitter > 0 {
		// Recovery retransmissions jitter from the fault stream so they
		// never perturb the jitter draws of regular transmissions.
		arrive += net.rngs.fault.Float64() * net.Cfg.TxJitter
	}
	net.retransmits++
	net.copies++
	net.seq++
	net.pushEvent(event{
		at:   arrive,
		seq:  net.seq,
		kind: eventReceive,
		node: e.peer,
		receipt: Receipt{
			From:   u,
			At:     arrive,
			Packet: st.sentPkt,
		},
		attempt: e.attempt,
		session: e.session,
	})
}

func (net *Network) result() Result {
	delivered := 0
	for v := range net.nodes {
		if net.nodes[v].Received {
			delivered++
		}
	}
	res := Result{
		Forward:         append([]int(nil), net.forward...),
		Delivered:       delivered,
		N:               net.G.N(),
		Finish:          net.now,
		Receipts:        net.receipts,
		Copies:          net.copies,
		Lost:            net.lost,
		Collided:        net.collided,
		DroppedNodeDown: net.droppedNodeDown,
		DroppedLinkDown: net.droppedLinkDown,
		TimersCancelled: net.timersCancelled,
		NACKs:           net.nacks,
		Retransmits:     net.retransmits,
		QueueDrops:      net.queueDrops,
		MACDeferrals:    net.macDeferrals,
	}
	if net.plan == nil {
		// No faults: every node is reachable (or at least scored; a
		// disconnected input graph is a workload property, not a fault).
		res.Reachable = res.N
		res.DeliveredReachable = delivered
	} else {
		reach := net.plan.ReachableFrom(net.G, net.Source)
		for v, ok := range reach {
			if !ok {
				continue
			}
			res.Reachable++
			if net.nodes[v].Received {
				res.DeliveredReachable++
			}
		}
	}
	if debugChecks {
		if got := res.Receipts + res.Lost + res.Collided + res.FaultDrops(); got != res.Copies {
			panic(fmt.Sprintf("sim: drop accounting broken: receipts %d + lost %d + collided %d + faultDrops %d != copies %d",
				res.Receipts, res.Lost, res.Collided, res.FaultDrops(), res.Copies))
		}
	}
	if m := net.Cfg.Metrics; m != nil {
		m.N = res.N
		m.Delivered = res.Delivered
		m.Forward = len(res.Forward)
		m.Copies = res.Copies
		m.Receipts = res.Receipts
		m.Lost = res.Lost
		m.Collided = res.Collided
		m.DroppedNodeDown = res.DroppedNodeDown
		m.DroppedLinkDown = res.DroppedLinkDown
		m.TimersCancelled = res.TimersCancelled
		m.NACKs = res.NACKs
		m.Retransmits = res.Retransmits
		m.QueueDrops = res.QueueDrops
		m.MACDeferrals = res.MACDeferrals
		m.Reachable = res.Reachable
		m.DeliveredReachable = res.DeliveredReachable
		m.Finish = res.Finish
		if net.Cfg.ViewIncomplete != nil {
			for v := 0; v < res.N; v++ {
				if net.Cfg.ViewIncomplete(v) {
					m.ViewIncompleteNodes++
				}
			}
		}
		if d := net.Cfg.DynamicHello; d != nil {
			// A node counts as a stale-view hold when some view-neighbor's
			// beacons went stale at any point up to the run's finish. Being a
			// pure function of (views, seed, finish time), the count is
			// engine- and schedule-independent, and a seed-matched live run
			// computes the identical value.
			for v := 0; v < res.N; v++ {
				stale := false
				net.viewGraphOf(v).ForEachNeighbor(v, func(u int) {
					if !stale && d.EverStale(v, u, res.Finish) {
						stale = true
					}
				})
				if stale {
					m.StaleViewHolds++
				}
			}
		}
	}
	return res
}

// Now returns the current simulation time.
func (net *Network) Now() float64 { return net.now }

// Evaluator returns this run's shared coverage-condition evaluator. Protocol
// callbacks run sequentially, so every node decision of the run reuses one
// set of scratch buffers instead of allocating per evaluation. The parallel
// precompute phase never touches this instance — its workers get private
// evaluators.
func (net *Network) Evaluator() *core.Evaluator {
	return net.arena.evaluator(net.G.N())
}

// State returns the simulator state of node v. The returned pointer stays
// valid for the whole run (node states live in one flat array that is never
// reallocated after setup).
func (net *Network) State(v int) *NodeState { return &net.nodes[v] }

// TakePreparedCovered returns and consumes the precomputed coverage verdict
// for node v's pending timer, if the fast engine's parallel phase produced
// one for the current instant. Protocols consult it at the top of their timer
// coverage evaluation (see the protocol engine); for sequential runs it
// always reports ok=false.
func (net *Network) TakePreparedCovered(v int) (covered, ok bool) {
	if net.prepared == nil || net.prepared[v] < 0 {
		return false, false
	}
	covered = net.prepared[v] == 1
	net.prepared[v] = -1
	return covered, true
}

// RandomBackoff draws a uniform backoff delay from [0, BackoffWindow).
func (net *Network) RandomBackoff() float64 {
	return net.rngs.backoff.Float64() * net.Cfg.BackoffWindow
}

// DegreeBackoff returns the backoff of the FRBD policy, proportional to the
// inverse of the node degree so that higher-degree nodes decide earlier:
// BackoffWindow * avgDegree / deg(v). The average-degree scaling keeps the
// spread between degree classes larger than the transmission delay, so
// low-degree nodes actually hear their high-degree neighbors forward before
// deciding.
func (net *Network) DegreeBackoff(v int) float64 {
	// Degrees come from the node's (possibly stale or private) knowledge:
	// its own view graph under NodeViews, else the shared view topology.
	vg := net.viewGraphOf(v)
	d := vg.Degree(v)
	if d == 0 {
		return net.Cfg.BackoffWindow
	}
	return net.Cfg.BackoffWindow * vg.AverageDegree() / float64(d)
}

// viewGraphOf returns the topology node v's knowledge is built from.
func (net *Network) viewGraphOf(v int) *graph.Graph {
	if net.nodeView != nil {
		return net.nodeView[v]
	}
	return net.viewG
}

// ConservativeHold reports whether node v must refuse non-forward status: the
// conservative fallback is enabled and v knows its own view may be missing
// links (ViewIncomplete) or provably stale (DynamicHello expiry), so any "I
// am covered" conclusion it draws is untrustworthy. Protocols consult this
// wherever a coverage condition would justify non-forward status (see the
// protocol engine). The check is a pure function of (v, net.now) — the fast
// engine's precompute workers call it concurrently.
func (net *Network) ConservativeHold(v int) bool {
	if !net.Cfg.ConservativeFallback {
		return false
	}
	if net.Cfg.ViewIncomplete != nil && net.Cfg.ViewIncomplete(v) {
		return true
	}
	return net.viewStale(v, net.now)
}

// viewStale reports whether node v's dynamic-hello view is stale at time t:
// some view-neighbor has not been heard from for longer than the expiry.
// Pure (no state mutated), so it is safe from the precompute workers and
// yields the same verdicts in seed-matched live runs.
func (net *Network) viewStale(v int, t float64) bool {
	d := net.Cfg.DynamicHello
	if d == nil {
		return false
	}
	stale := false
	net.viewGraphOf(v).ForEachNeighbor(v, func(u int) {
		if !stale && d.LinkStale(v, u, t) {
			stale = true
		}
	})
	return stale
}

// SetTimer schedules an OnTimer callback for node v after delay (>= 0).
func (net *Network) SetTimer(v int, delay float64) {
	if delay < 0 {
		delay = 0
	}
	net.seq++
	net.pushEvent(event{
		at:   net.now + delay,
		seq:  net.seq,
		kind: eventTimer,
		node: v,
	})
}

// MarkNonForward finalizes a non-forward decision for v.
func (net *Network) MarkNonForward(v int) {
	if debugChecks && net.ConservativeHold(v) {
		panic(fmt.Sprintf("sim: conservative-fallback node %d took non-forward status", v))
	}
	st := &net.nodes[v]
	if !st.NonForward {
		net.obsNonForward(0, v)
	}
	st.NonForward = true
}

// Transmit makes node v forward the broadcast packet now, carrying the given
// designated forward set. All neighbors receive a copy after TransmitDelay.
// Repeated transmissions by the same node are ignored (a node forwards at
// most once). A node that is down at transmission time stays silent.
func (net *Network) Transmit(v int, designated []int) {
	net.TransmitExtra(v, designated, nil)
}

// TransmitExtra is Transmit with a protocol-specific extra payload attached
// to the packet.
func (net *Network) TransmitExtra(v int, designated, extra []int) {
	net.transmitExtra(0, v, designated, extra)
}

// transmitExtra is the session-aware transmit path shared by the network's
// own Runtime surface (session 0) and the per-session runtimes of traffic
// runs. Under the contention MAC the packet is handed to the node's transmit
// queue instead of going on the air immediately.
func (net *Network) transmitExtra(sid int32, v int, designated, extra []int) {
	st := net.stateOf(sid, v)
	if st.Sent || net.down(v) {
		return
	}
	st.Sent = true
	st.View.MarkVisited(v)
	if net.Cfg.CarrierSense {
		// The forward decision is final (Sent above), but the packet is
		// built now and transmitted by the MAC when the channel allows:
		// forward-order bookkeeping, observers, and metrics fire at actual
		// transmission time (see emitTx).
		pkt := st.BuildForwardPacket(designated, extra, net.Cfg.PiggybackDepth)
		net.enqueueTx(v, txItem{
			session:    sid,
			pkt:        pkt,
			designated: append([]int(nil), designated...),
			to:         -1,
		})
		return
	}
	net.forward = append(net.forward, v)
	net.obsTransmit(sid, v, designated)
	if net.Cfg.Metrics != nil {
		net.Cfg.Metrics.ForwardSet.Observe(float64(len(designated)))
	}

	pkt := st.BuildForwardPacket(designated, extra, net.Cfg.PiggybackDepth)
	arrive := net.now + net.Cfg.TransmitDelay
	if net.Cfg.TxJitter > 0 {
		// One jitter draw per transmission: all neighbors hear the same
		// (delayed) transmission at the same instant.
		arrive += net.rngs.jitter.Float64() * net.Cfg.TxJitter
	}
	net.G.ForEachNeighbor(v, func(u int) {
		net.copies++
		net.seq++
		net.pushEvent(event{
			at:   arrive,
			seq:  net.seq,
			kind: eventReceive,
			node: u,
			receipt: Receipt{
				From:   v,
				At:     arrive,
				Packet: pkt,
			},
			session: sid,
		})
	})
}

// pushEvent enqueues e on whichever event queue the selected engine uses. The
// fast engine's calendar queue stores events by value in reusable buckets;
// the oracle allocates per push, exactly as the original simulator did.
func (net *Network) pushEvent(e event) {
	if net.fast {
		net.arena.cal.push(e)
		return
	}
	ec := e
	heap.Push(&net.queue, &ec)
}
