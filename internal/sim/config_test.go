package sim

import (
	"math"
	"strings"
	"testing"

	"adhocbcast/internal/graph"
)

// TestConfigValidate is the table-driven gate over every rejection path of
// Config.validate: each bad configuration must fail with an error naming the
// offending knob, and representative good configurations must pass.
func TestConfigValidate(t *testing.T) {
	g4 := graph.New(4)
	g2 := graph.New(2)
	provider := func(int) *graph.Graph { return g4 }
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error; "" means valid
	}{
		{name: "zero value", cfg: Config{}},
		{name: "loss rate high", cfg: Config{LossRate: 1}, want: "LossRate"},
		{name: "loss rate negative", cfg: Config{LossRate: -0.01}, want: "LossRate"},
		{name: "loss rate NaN", cfg: Config{LossRate: math.NaN()}, want: "LossRate"},
		{name: "negative jitter", cfg: Config{TxJitter: -1}, want: "TxJitter"},
		{name: "negative retry budget", cfg: Config{RetryBudget: -1}, want: "RetryBudget"},
		{name: "negative NACK delay", cfg: Config{NACKDelay: -0.5}, want: "NACKDelay"},
		{name: "NaN NACK delay", cfg: Config{NACKDelay: math.NaN()}, want: "NACKDelay"},
		{name: "negative retry backoff", cfg: Config{RetryBackoff: -1}, want: "RetryBackoff"},
		{name: "view topology size mismatch", cfg: Config{ViewTopology: g2}, want: "view topology"},
		{name: "view topology ok", cfg: Config{ViewTopology: g4}},
		{name: "node views ok", cfg: Config{NodeViews: provider}},
		{
			name: "view topology and node views",
			cfg:  Config{ViewTopology: g4, NodeViews: provider},
			want: "mutually exclusive",
		},
		{
			name: "fallback without incompleteness source",
			cfg:  Config{NodeViews: provider, ConservativeFallback: true},
			want: "ViewIncomplete",
		},
		{
			name: "fallback with incompleteness source",
			cfg: Config{
				NodeViews:            provider,
				ViewIncomplete:       func(int) bool { return false },
				ConservativeFallback: true,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.validate(g4.N())
			if tc.want == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate() accepted, want error mentioning %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("validate() = %v, want mention of %q", err, tc.want)
			}
		})
	}
}
