package sim_test

import (
	"math/rand"
	"testing"

	"adhocbcast/internal/geo"
	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
	"adhocbcast/internal/view"
)

// TestLargeNetworkBroadcast checks the stack well beyond the paper's n=100
// evaluation sizes: generation, view construction, and a full broadcast on a
// 400-node network must stay correct (and fast enough to live in the unit
// test suite).
func TestLargeNetworkBroadcast(t *testing.T) {
	if testing.Short() {
		t.Skip("large-network scalability check")
	}
	rng := rand.New(rand.NewSource(404))
	net, err := geo.Generate(geo.Config{N: 400, AvgDegree: 8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, mk := range []func() sim.Protocol{
		func() sim.Protocol { return protocol.Generic(protocol.TimingFirstReceipt) },
		protocol.PDP,
		protocol.SBA,
	} {
		p := mk()
		res, err := sim.Run(net.G, 0, p, sim.Config{
			Hops:   2,
			Metric: view.MetricDegree,
			Seed:   1,
		})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if !res.FullDelivery() {
			t.Fatalf("%s: delivered %d/%d", p.Name(), res.Delivered, res.N)
		}
		if res.ForwardCount() >= 400 {
			t.Fatalf("%s: no pruning at scale (%d forwards)", p.Name(), res.ForwardCount())
		}
		t.Logf("%s: %d of 400 forwarded", p.Name(), res.ForwardCount())
	}
}
