package sim

import "container/heap"

type eventKind int

const (
	eventReceive eventKind = iota + 1
	eventTimer
	// eventNACK is a recovery request arriving at the original sender
	// (node); peer is the requesting receiver, attempt the retry number.
	eventNACK
	// eventRetransmit fires at the sender (node) when its recovery backoff
	// expires; it emits one unicast copy toward peer.
	eventRetransmit
	// eventSessionStart injects a new broadcast session (multi-session
	// traffic runs): node is the source, session the session id.
	eventSessionStart
	// eventTxAttempt fires when node may try to transmit its queue head
	// under the contention MAC (CarrierSense): it carrier-senses the
	// channel and either transmits or defers with a slotted backoff.
	eventTxAttempt
)

// event is a scheduled simulator action. Events are ordered by time with the
// insertion sequence number as a deterministic tie-breaker.
type event struct {
	at      float64
	seq     int
	kind    eventKind
	node    int
	receipt Receipt // valid for eventReceive
	peer    int     // recovery counterpart (eventNACK / eventRetransmit)
	attempt int     // recovery attempt: 0 for original copies, k for retry k
	session int32   // broadcast session id (0 outside multi-session runs)
}

// eventQueue is a binary min-heap of events.
type eventQueue []*event

var _ heap.Interface = (*eventQueue)(nil)

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}
