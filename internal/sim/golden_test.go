package sim_test

import (
	"math/rand"
	"testing"

	"adhocbcast/internal/geo"
	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
	"adhocbcast/internal/view"
)

// TestZeroTrafficGolden pins the single-broadcast, default-MAC simulation
// byte-for-byte: with every heavy-traffic feature off (no CarrierSense, no
// queues, no sessions), a canonical run must keep producing exactly the
// numbers it produced before the contention MAC and multi-session machinery
// existed. Any drift here means the committed paper-figure tables are no
// longer reproducible from source.
func TestZeroTrafficGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net, err := geo.Generate(geo.Config{N: 60, AvgDegree: 6}, rng)
	if err != nil {
		t.Fatalf("generate network: %v", err)
	}
	cases := []struct {
		mk       func() sim.Protocol
		forward  int
		receipts int
		finish   float64
	}{
		{protocol.Flooding, 60, 360, 9},
		{func() sim.Protocol { return protocol.Generic(protocol.TimingFirstReceipt) }, 23, 165, 9},
		{func() sim.Protocol { return protocol.Generic(protocol.TimingBackoffRandom) }, 23, 164, 39.55937709797369},
		{protocol.AHBP, 37, 253, 9},
	}
	for _, c := range cases {
		p := c.mk()
		res, err := sim.Run(net.G, 0, p, sim.Config{Hops: 2, Metric: view.MetricDegree, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		t.Logf("%s: forward=%d delivered=%d copies=%d receipts=%d finish=%v",
			p.Name(), len(res.Forward), res.Delivered, res.Copies, res.Receipts, res.Finish)
		if res.Delivered != 60 || res.Copies != res.Receipts {
			t.Errorf("%s: lossless run must deliver all and conserve copies: %+v", p.Name(), res)
		}
		if len(res.Forward) != c.forward || res.Receipts != c.receipts || res.Finish != c.finish {
			t.Errorf("%s: drifted from golden (forward=%d receipts=%d finish=%v), got %+v",
				p.Name(), c.forward, c.receipts, c.finish, res)
		}
	}
}
