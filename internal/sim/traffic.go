package sim

import (
	"fmt"
	"math"
	"sort"

	"adhocbcast/internal/core"
	"adhocbcast/internal/graph"
)

// Multi-session traffic runs (RunTraffic): many concurrent broadcast sessions
// share one simulated network and — under Config.CarrierSense — one radio
// channel per node. Each session gets its own protocol instance, node states,
// and local views (cloned from the run's built views, so per-session view
// state costs one meta-array copy per node instead of a BFS), while the MAC
// queues, the channel, the fault plan, and every RNG stream are shared.
// docs/traffic-model.md is the normative spec.

// SessionSpec describes one injected broadcast session: Source starts a
// broadcast at time At. internal/traffic generates deterministic arrival
// processes of these; the simulator only requires sources in range and
// non-decreasing injection times.
type SessionSpec struct {
	// Source is the broadcast originator.
	Source int
	// At is the injection time in simulation slots (>= 0).
	At float64
}

// TrafficResult summarizes one multi-session traffic run. Delivery is counted
// over (session, node) pairs: a run of S sessions over N nodes has S*N
// deliverable pairs.
type TrafficResult struct {
	// Sessions is the number of injected broadcast sessions.
	Sessions int
	// N is the network size.
	N int
	// Finish is the time of the last event.
	Finish float64
	// Delivered counts first deliveries across all sessions (the source's
	// own possession counts, as in single runs).
	Delivered int
	// Forward counts transmissions across all sessions (the Result.Forward
	// order is not kept per session; the trace has it when needed).
	Forward int
	// Copies through Retransmits aggregate the channel accounting over all
	// sessions, with the same conservation identity as Result: Receipts +
	// Lost + Collided + DroppedNodeDown + DroppedLinkDown == Copies.
	Copies          int
	Receipts        int
	Lost            int
	Collided        int
	DroppedNodeDown int
	DroppedLinkDown int
	TimersCancelled int
	NACKs           int
	Retransmits     int
	// QueueDrops and MACDeferrals count contention-MAC activity (zero
	// without Config.CarrierSense); queue drops are outside the Copies
	// conservation identity, since queued packets never went on the air.
	QueueDrops   int
	MACDeferrals int
	// LatencyMean, LatencyP50, and LatencyP99 summarize first-delivery
	// latency relative to each session's injection time, over all delivered
	// (session, node) pairs. Quantiles are exact (nearest-rank over every
	// sample), not histogram estimates.
	LatencyMean float64
	LatencyP50  float64
	LatencyP99  float64
}

// DeliveryRatio returns delivered (session, node) pairs over deliverable
// ones.
func (r TrafficResult) DeliveryRatio() float64 {
	if r.Sessions == 0 || r.N == 0 {
		return 0
	}
	return float64(r.Delivered) / (float64(r.Sessions) * float64(r.N))
}

// Throughput returns goodput in session-equivalents per slot: total first
// deliveries normalized by network size, over the run duration. A value of x
// means the network completed the delivery work of x full broadcasts per
// slot; under saturation it plateaus while offered load keeps growing.
func (r TrafficResult) Throughput() float64 {
	if r.N == 0 || r.Finish <= 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.N) / r.Finish
}

// FaultDrops returns the total copies dropped by the fault plan.
func (r TrafficResult) FaultDrops() int { return r.DroppedNodeDown + r.DroppedLinkDown }

// sessionState is the per-session half of a traffic run: its own protocol
// instance and node bookkeeping over shared topology and channel.
type sessionState struct {
	id        int32
	source    int
	start     float64 // injection time (session-relative latency origin)
	proto     Protocol
	nodes     []NodeState
	rt        sessionRuntime
	delivered int
}

// sessionRuntime is the Runtime protocol callbacks of one session run
// against: state reads and status writes route to the session's own nodes,
// transmissions and timers route to the shared network (and, under
// CarrierSense, the shared MAC queues) tagged with the session id.
type sessionRuntime struct {
	net *Network
	s   *sessionState
}

var _ Runtime = (*sessionRuntime)(nil)

func (rt *sessionRuntime) N() int { return rt.net.G.N() }

func (rt *sessionRuntime) ForEachLocalNode(yield func(v int)) {
	for v := 0; v < rt.net.G.N(); v++ {
		yield(v)
	}
}

func (rt *sessionRuntime) State(v int) *NodeState { return &rt.s.nodes[v] }

func (rt *sessionRuntime) SetTimer(v int, delay float64) {
	net := rt.net
	if delay < 0 {
		delay = 0
	}
	net.seq++
	net.pushEvent(event{
		at:      net.now + delay,
		seq:     net.seq,
		kind:    eventTimer,
		node:    v,
		session: rt.s.id,
	})
}

func (rt *sessionRuntime) MarkNonForward(v int) {
	net := rt.net
	if debugChecks && net.ConservativeHold(v) {
		panic(fmt.Sprintf("sim: conservative-fallback node %d took non-forward status", v))
	}
	st := &rt.s.nodes[v]
	if !st.NonForward {
		net.obsNonForward(rt.s.id, v)
	}
	st.NonForward = true
}

func (rt *sessionRuntime) Transmit(v int, designated []int) {
	rt.net.transmitExtra(rt.s.id, v, designated, nil)
}

func (rt *sessionRuntime) TransmitExtra(v int, designated, extra []int) {
	rt.net.transmitExtra(rt.s.id, v, designated, extra)
}

func (rt *sessionRuntime) RandomBackoff() float64 { return rt.net.RandomBackoff() }

func (rt *sessionRuntime) DegreeBackoff(v int) float64 { return rt.net.DegreeBackoff(v) }

func (rt *sessionRuntime) ConservativeHold(v int) bool { return rt.net.ConservativeHold(v) }

// TakePreparedCovered always reports ok=false: the fast engine's timer
// precompute phase is disabled in traffic runs (verdict slots are per node,
// not per (session, node)).
func (rt *sessionRuntime) TakePreparedCovered(v int) (covered, ok bool) { return false, false }

func (rt *sessionRuntime) Evaluator() *core.Evaluator { return rt.net.Evaluator() }

func (rt *sessionRuntime) Now() float64 { return rt.net.now }

// RunTraffic simulates the given broadcast sessions over g, one protocol
// instance per session built by newProto, and returns the aggregate outcome.
// Sessions must be ordered by non-decreasing injection time; use
// internal/traffic to generate deterministic arrival plans.
func RunTraffic(g *graph.Graph, sessions []SessionSpec, newProto func() Protocol, cfg Config) (TrafficResult, error) {
	return RunTrafficWith(nil, g, sessions, newProto, cfg)
}

// RunTrafficWith is RunTraffic with an explicit Arena, with the same reuse
// contract as RunWith. Per-session node states and views are allocated per
// run (they are what a session is), but the event queue, built views, MAC
// scratch, and evaluator are all arena-reused.
func RunTrafficWith(a *Arena, g *graph.Graph, sessions []SessionSpec, newProto func() Protocol, cfg Config) (TrafficResult, error) {
	if len(sessions) == 0 {
		return TrafficResult{}, fmt.Errorf("sim: traffic run needs at least one session")
	}
	if newProto == nil {
		return TrafficResult{}, fmt.Errorf("sim: traffic run needs a protocol factory")
	}
	if cfg.NodeViews != nil {
		return TrafficResult{}, fmt.Errorf("sim: per-node views are not supported in traffic runs")
	}
	prev := 0.0
	for i, sp := range sessions {
		if sp.Source < 0 || sp.Source >= g.N() {
			return TrafficResult{}, fmt.Errorf("sim: session %d source %d out of range [0,%d)", i, sp.Source, g.N())
		}
		if math.IsNaN(sp.At) || math.IsInf(sp.At, 0) || sp.At < prev {
			return TrafficResult{}, fmt.Errorf("sim: session %d injection time %v not finite and non-decreasing", i, sp.At)
		}
		prev = sp.At
	}
	if err := cfg.validate(g.N()); err != nil {
		return TrafficResult{}, err
	}
	if a == nil {
		a = NewArena()
	}
	net := &Network{
		G:        g,
		Cfg:      cfg.withDefaults(),
		Source:   sessions[0].Source,
		newProto: newProto,
		arena:    a,
		rngs:     newStreams(cfg.Seed),
		plan:     cfg.Faults,
	}
	net.fast = net.Cfg.Engine == EngineFast
	net.workers = 1
	if net.fast {
		if net.Cfg.Workers > 1 {
			net.workers = net.Cfg.Workers
		}
		a.cal.reset(net.Cfg.TransmitDelay)
	}
	a.ensureLoopScratch(g.N(), net.workers > 1)
	if net.workers > 1 {
		net.prepared = a.prepared
	}
	if net.Cfg.CarrierSense {
		net.resetMAC(g.N())
	}
	if m := net.Cfg.Metrics; m != nil {
		m.Reset()
	}
	vg := net.G
	if net.Cfg.ViewTopology != nil {
		vg = net.Cfg.ViewTopology
	}
	net.viewG = vg
	views, base := a.viewsFor(vg, net.Cfg.Hops, net.Cfg.Metric)
	net.base = base
	net.tmplViews = views
	net.multi = make([]*sessionState, len(sessions))
	for i, sp := range sessions {
		net.multi[i] = &sessionState{id: int32(i), source: sp.Source}
	}
	for i, sp := range sessions {
		net.seq++
		net.pushEvent(event{
			at:      sp.At,
			seq:     net.seq,
			kind:    eventSessionStart,
			node:    sp.Source,
			session: int32(i),
		})
	}
	net.loop()
	return net.trafficResult(), nil
}

// startSession brings session sid to life at its injection instant: fresh
// per-session node states and views, a fresh protocol instance, then the
// usual Init / source-delivery / Start sequence of a single run.
func (net *Network) startSession(sid int32, source int) {
	s := net.multi[sid]
	s.start = net.now
	n := net.G.N()
	s.nodes = make([]NodeState, n)
	for v := range s.nodes {
		s.nodes[v] = NodeState{
			ID:        v,
			FirstFrom: -1,
			View:      net.tmplViews[v].CloneFresh(),
		}
	}
	s.proto = net.newProto()
	s.rt = sessionRuntime{net: net, s: s}
	net.obsSessionStart(sid, source)
	s.proto.Init(&s.rt)
	net.deliverSessionSource(s)
	s.proto.Start(&s.rt, source)
}

// deliverSessionSource marks the session's source as holding the packet at
// injection time, mirroring deliverToSource: a zero-latency first delivery.
func (net *Network) deliverSessionSource(s *sessionState) {
	st := &s.nodes[s.source]
	st.Received = true
	st.FirstPacket = Packet{Source: s.source, Session: int(s.id)}
	st.LastPacket = st.FirstPacket
	s.delivered++
	net.delivered++
	net.latSamples = append(net.latSamples, 0)
	net.obsDeliver(s.id, s.source, -1)
	if net.Cfg.Metrics != nil {
		net.Cfg.Metrics.Latency.Observe(0)
	}
}

func (net *Network) trafficResult() TrafficResult {
	res := TrafficResult{
		Sessions:        len(net.multi),
		N:               net.G.N(),
		Finish:          net.now,
		Delivered:       net.delivered,
		Forward:         len(net.forward),
		Copies:          net.copies,
		Receipts:        net.receipts,
		Lost:            net.lost,
		Collided:        net.collided,
		DroppedNodeDown: net.droppedNodeDown,
		DroppedLinkDown: net.droppedLinkDown,
		TimersCancelled: net.timersCancelled,
		NACKs:           net.nacks,
		Retransmits:     net.retransmits,
		QueueDrops:      net.queueDrops,
		MACDeferrals:    net.macDeferrals,
	}
	if debugChecks {
		if got := res.Receipts + res.Lost + res.Collided + res.FaultDrops(); got != res.Copies {
			panic(fmt.Sprintf("sim: traffic drop accounting broken: receipts %d + lost %d + collided %d + faultDrops %d != copies %d",
				res.Receipts, res.Lost, res.Collided, res.FaultDrops(), res.Copies))
		}
	}
	if len(net.latSamples) > 0 {
		sorted := append([]float64(nil), net.latSamples...)
		sort.Float64s(sorted)
		sum := 0.0
		for _, x := range sorted {
			sum += x
		}
		res.LatencyMean = sum / float64(len(sorted))
		res.LatencyP50 = quantileNearestRank(sorted, 0.50)
		res.LatencyP99 = quantileNearestRank(sorted, 0.99)
	}
	if m := net.Cfg.Metrics; m != nil {
		m.N = res.N
		m.Sessions = res.Sessions
		m.Delivered = res.Delivered
		m.Forward = res.Forward
		m.Copies = res.Copies
		m.Receipts = res.Receipts
		m.Lost = res.Lost
		m.Collided = res.Collided
		m.DroppedNodeDown = res.DroppedNodeDown
		m.DroppedLinkDown = res.DroppedLinkDown
		m.TimersCancelled = res.TimersCancelled
		m.NACKs = res.NACKs
		m.Retransmits = res.Retransmits
		m.QueueDrops = res.QueueDrops
		m.MACDeferrals = res.MACDeferrals
		// Deliverability in traffic runs is over (session, node) pairs; the
		// fault plan's reachability analysis is per injection instant, so the
		// record scores against the full pair count.
		m.Reachable = res.Sessions * res.N
		m.DeliveredReachable = res.Delivered
		m.Finish = res.Finish
	}
	return res
}

// quantileNearestRank returns the nearest-rank q-quantile of an ascending
// sample slice (q in (0, 1]).
func quantileNearestRank(sorted []float64, q float64) float64 {
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
