package sim_test

import (
	"math/rand"
	"testing"

	"adhocbcast/internal/geo"
	"adhocbcast/internal/graph"
	"adhocbcast/internal/hello"
	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
)

// TestNodeViewsPerNodeDecisions pins the NodeViews semantics: each node's
// pruning decision runs on its OWN graph while packets propagate over the
// actual topology — one node's wrong view must not leak into its neighbors'
// decisions.
func TestNodeViewsPerNodeDecisions(t *testing.T) {
	// Actual topology: path 0-1-2-3. Node 2's private view adds a phantom
	// link {1,3}, so 2 believes its neighbors are directly connected and
	// prunes itself; every other node sees the truth. Node 3 is stranded.
	actual := pathGraph(t, 4)
	wrong := pathGraph(t, 4)
	if err := wrong.AddEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	views := func(v int) *graph.Graph {
		if v == 2 {
			return wrong
		}
		return actual
	}
	res, err := sim.Run(actual, 0, protocol.Generic(protocol.TimingFirstReceipt), sim.Config{
		Hops:      2,
		NodeViews: views,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 3 {
		t.Fatalf("delivered = %d, want 3 (node 3 stranded by node 2's phantom link)", res.Delivered)
	}
	for _, v := range res.Forward {
		if v == 2 {
			t.Fatal("node 2 forwarded despite its view showing it covered")
		}
	}

	// Control: truthful per-node views reach everyone, same as no views.
	res, err = sim.Run(actual, 0, protocol.Generic(protocol.TimingFirstReceipt), sim.Config{
		Hops:      2,
		NodeViews: func(int) *graph.Graph { return actual },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FullDelivery() {
		t.Fatalf("truthful per-node views delivered %d/%d", res.Delivered, res.N)
	}
}

// TestNodeViewsLosslessHelloMatchesDefault is the end-to-end identity at the
// heart of the pipeline: views from a LOSSLESS k-round hello exchange plugged
// in as NodeViews reproduce the default run (k-hop views of the true
// topology) result-for-result, for every timing policy. Hello loss — and
// nothing else — is what makes per-node views diverge.
func TestNodeViewsLosslessHelloMatchesDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	net, err := geo.Generate(geo.Config{N: 60, AvgDegree: 8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	views, err := hello.Exchange(net.G, hello.Config{Rounds: 2, LossRate: 0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, timing := range []protocol.Timing{
		protocol.TimingStatic,
		protocol.TimingFirstReceipt,
		protocol.TimingBackoffRandom,
	} {
		want, err := sim.Run(net.G, 0, protocol.Generic(timing), sim.Config{Hops: 2, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		got, err := sim.Run(net.G, 0, protocol.Generic(timing), sim.Config{
			Hops:      2,
			Seed:      9,
			NodeViews: views.Graph,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got.Delivered != want.Delivered || got.Finish != want.Finish ||
			got.Receipts != want.Receipts || len(got.Forward) != len(want.Forward) {
			t.Fatalf("%v: lossless hello views diverged from default: got %+v want %+v",
				timing, got, want)
		}
		for i := range got.Forward {
			if got.Forward[i] != want.Forward[i] {
				t.Fatalf("%v: forward sets diverge at %d: %v vs %v",
					timing, i, got.Forward, want.Forward)
			}
		}
	}
}

// TestConservativeFallbackRefusesNonForward pins the fallback mechanism on a
// hand-built scenario: a node whose view lost the link to a downstream
// neighbor wrongly prunes itself and strands that neighbor; flagged as
// provably incomplete under the fallback, it forwards instead and delivery
// is restored.
func TestConservativeFallbackRefusesNonForward(t *testing.T) {
	// Actual topology: path 0-1-2-3. Node 2's private view is missing the
	// link {2,3} (say node 3's hellos were lost): node 2 sees its only
	// neighbor 1 already visited, concludes it is covered, and prunes.
	actual := pathGraph(t, 4)
	truncated := pathGraph(t, 3) // nodes 0-1-2 only
	blind := graph.New(4)
	for _, e := range truncated.Edges() {
		if err := blind.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	views := func(v int) *graph.Graph {
		if v == 2 {
			return blind
		}
		return actual
	}
	incomplete := func(v int) bool { return v == 2 }

	res, err := sim.Run(actual, 0, protocol.Generic(protocol.TimingFirstReceipt), sim.Config{
		Hops:      2,
		NodeViews: views,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 3 {
		t.Fatalf("without fallback delivered = %d, want 3", res.Delivered)
	}

	rec := &sim.Recorder{}
	res, err = sim.Run(actual, 0, protocol.Generic(protocol.TimingFirstReceipt), sim.Config{
		Hops:                 2,
		NodeViews:            views,
		ViewIncomplete:       incomplete,
		ConservativeFallback: true,
		Observer:             rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FullDelivery() {
		t.Fatalf("with fallback delivered %d/%d", res.Delivered, res.N)
	}
	forwarded := false
	for _, v := range res.Forward {
		if v == 2 {
			forwarded = true
		}
	}
	if !forwarded {
		t.Fatal("flagged node 2 did not forward under the fallback")
	}
	for _, e := range rec.Events() {
		if e.Kind == sim.TraceNonForward && e.Node == 2 {
			t.Fatal("flagged node 2 took non-forward status under the fallback")
		}
	}
}

// TestConservativeFallbackEndToEnd drives the full pipeline on a lossy
// exchange: hello loss costs delivery, and the conservative fallback buys a
// large part of it back at the price of more forward nodes.
func TestConservativeFallbackEndToEnd(t *testing.T) {
	var lostDelivery, recovered, extraForward float64
	runs := 0
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(400 + seed))
		net, err := geo.Generate(geo.Config{N: 80, AvgDegree: 6}, rng)
		if err != nil {
			continue
		}
		views, err := hello.Exchange(net.G, hello.Config{Rounds: 2, LossRate: 0.3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		base := sim.Config{Hops: 2, Seed: seed, NodeViews: views.Graph}
		plain, err := sim.Run(net.G, 0, protocol.Generic(protocol.TimingFirstReceipt), base)
		if err != nil {
			t.Fatal(err)
		}
		withFB := base
		withFB.ViewIncomplete = views.Incomplete
		withFB.ConservativeFallback = true
		fb, err := sim.Run(net.G, 0, protocol.Generic(protocol.TimingFirstReceipt), withFB)
		if err != nil {
			t.Fatal(err)
		}
		lostDelivery += float64(fb.N - plain.Delivered)
		recovered += float64(fb.Delivered - plain.Delivered)
		extraForward += float64(fb.ForwardCount() - plain.ForwardCount())
		runs++
	}
	if runs < 10 {
		t.Fatalf("only %d usable runs", runs)
	}
	if lostDelivery == 0 {
		t.Skip("30% hello loss caused no delivery loss on these seeds")
	}
	if recovered < lostDelivery/2 {
		t.Fatalf("fallback recovered %.0f of %.0f lost deliveries, want at least half",
			recovered, lostDelivery)
	}
	if extraForward <= 0 {
		t.Fatal("fallback recovered delivery for free — forward counts should rise")
	}
}

// TestNodeViewsValidation covers the failure modes of the per-node view
// configuration: the mutually exclusive knobs, a fallback with no
// incompleteness source, and malformed providers.
func TestNodeViewsValidation(t *testing.T) {
	g := pathGraph(t, 4)
	provider := func(int) *graph.Graph { return g }
	proto := protocol.Generic(protocol.TimingFirstReceipt)

	if _, err := sim.Run(g, 0, proto, sim.Config{ViewTopology: g, NodeViews: provider}); err == nil {
		t.Fatal("ViewTopology+NodeViews accepted")
	}
	if _, err := sim.Run(g, 0, proto, sim.Config{ConservativeFallback: true}); err == nil {
		t.Fatal("ConservativeFallback without ViewIncomplete accepted")
	}
	if _, err := sim.Run(g, 0, proto, sim.Config{NodeViews: func(int) *graph.Graph { return nil }}); err == nil {
		t.Fatal("nil per-node view accepted")
	}
	small := graph.New(2)
	if _, err := sim.Run(g, 0, proto, sim.Config{NodeViews: func(int) *graph.Graph { return small }}); err == nil {
		t.Fatal("size-mismatched per-node view accepted")
	}
}
