package sim

import (
	"container/heap"
	"math/rand"
	"testing"
	"testing/quick"

	"adhocbcast/internal/view"
)

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Metric != view.MetricID {
		t.Fatalf("default metric = %v", c.Metric)
	}
	if c.PiggybackDepth != 2 {
		t.Fatalf("default piggyback depth = %d", c.PiggybackDepth)
	}
	if c.BackoffWindow != 8 {
		t.Fatalf("default backoff window = %v", c.BackoffWindow)
	}
	if c.TransmitDelay != 1 {
		t.Fatalf("default transmit delay = %v", c.TransmitDelay)
	}
}

func TestConfigNegativePiggybackDisables(t *testing.T) {
	c := Config{PiggybackDepth: -1}.withDefaults()
	if c.PiggybackDepth != 0 {
		t.Fatalf("piggyback depth = %d, want 0", c.PiggybackDepth)
	}
}

func TestEventQueueOrdering(t *testing.T) {
	var q eventQueue
	heap.Push(&q, &event{at: 2.0, seq: 1, node: 0})
	heap.Push(&q, &event{at: 1.0, seq: 2, node: 1})
	heap.Push(&q, &event{at: 1.0, seq: 3, node: 2})
	heap.Push(&q, &event{at: 0.5, seq: 4, node: 3})

	var order []int
	for q.Len() > 0 {
		order = append(order, heap.Pop(&q).(*event).node)
	}
	want := []int{3, 1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("pop order = %v, want %v", order, want)
		}
	}
}

// TestEventQueueQuick checks the heap never pops out of (time, seq) order.
func TestEventQueueQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var q eventQueue
		for i := 0; i < 200; i++ {
			heap.Push(&q, &event{at: float64(rng.Intn(20)), seq: i, node: i})
		}
		var prev *event
		for q.Len() > 0 {
			e := heap.Pop(&q).(*event)
			if prev != nil {
				if e.at < prev.at || (e.at == prev.at && e.seq < prev.seq) {
					return false
				}
			}
			prev = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func TestPacketSender(t *testing.T) {
	p := Packet{Source: 7}
	if p.Sender() != 7 {
		t.Fatalf("empty-trail sender = %d, want source 7", p.Sender())
	}
	if p.SenderDesignated() != nil {
		t.Fatal("empty-trail designated set not nil")
	}
	p.Trail = []TrailEntry{
		{Node: 3, Designated: []int{9}},
		{Node: 5, Designated: []int{1, 2}},
	}
	if p.Sender() != 5 {
		t.Fatalf("sender = %d, want 5", p.Sender())
	}
	d := p.SenderDesignated()
	if len(d) != 2 || d[0] != 1 || d[1] != 2 {
		t.Fatalf("designated = %v", d)
	}
}
