package sim

// The contention-aware MAC (Config.CarrierSense): per-node FIFO transmit
// queues, carrier sensing with a slotted random backoff, and an overlap
// collision model that garbles every copy whose air time intersects another
// in-range transmission — including the hidden-terminal overlaps carrier
// sensing cannot prevent. docs/traffic-model.md is the normative spec; the
// invariants relied on below:
//
//   - Transmissions all last exactly TransmitDelay, and tx starts are
//     processed in event order, so a transmission starting at s has the
//     latest arrival time s+delay seen so far at each of its receivers.
//     Per receiver it therefore suffices to track airEnd (latest in-flight
//     arrival) and garbleUntil (arrivals at or before this are garbled).
//   - Carrier sense sees only transmissions that started strictly before
//     now (a radio cannot sense a transmission starting at this instant),
//     which is exactly why simultaneous in-range starts still collide.
//   - txPending[v] is true iff a tx-attempt event for v is in flight;
//     enqueueTx arms it for an empty queue and every attempt either
//     transmits, defers, re-arms for the next head, or clears it.

// txItem is one queued transmission: a broadcast forward (to == -1) or a
// unicast recovery retransmission toward to.
type txItem struct {
	session    int32
	pkt        Packet
	designated []int // forward set of broadcast items (observer/metrics)
	to         int   // -1 for broadcast, else the recovery receiver
	attempt    int   // recovery attempt of unicast items
}

// txRing is a FIFO transmit queue with an amortized-O(1) pop (items are
// released for GC as they leave; storage compacts when the queue empties).
type txRing struct {
	items []txItem
	head  int
}

func (q *txRing) len() int { return len(q.items) - q.head }

func (q *txRing) push(it txItem) { q.items = append(q.items, it) }

func (q *txRing) pop() txItem {
	it := q.items[q.head]
	q.items[q.head] = txItem{}
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return it
}

func (q *txRing) reset() {
	for i := range q.items {
		q.items[i] = txItem{}
	}
	q.items = q.items[:0]
	q.head = 0
}

// enqueueTx admits one packet to node v's transmit queue, applying the
// capacity/drop policy, and arms a tx-attempt event if none is in flight.
func (net *Network) enqueueTx(v int, it txItem) {
	q := &net.txq[v]
	if cap := net.Cfg.TxQueueCap; cap > 0 && q.len() >= cap {
		net.queueDrops++
		if net.Cfg.DropOldest {
			old := q.pop()
			net.obsQueueDrop(old.session, v, QueueDropHead)
			q.push(it)
			net.obsEnqueue(it.session, v)
		} else {
			net.obsQueueDrop(it.session, v, QueueDropTail)
		}
		// The queue stays non-empty, so an attempt is already pending.
		return
	}
	q.push(it)
	net.obsEnqueue(it.session, v)
	if !net.txPending[v] {
		net.txPending[v] = true
		net.seq++
		net.pushEvent(event{
			at:   net.now,
			seq:  net.seq,
			kind: eventTxAttempt,
			node: v,
		})
	}
}

// txAttempt processes one transmit opportunity at node v: wipe the queue if
// the node is down, transmit the head if the channel is clear, otherwise
// defer by a slotted random backoff.
func (net *Network) txAttempt(v int) {
	if net.down(v) {
		// A down node's MAC is off; its queued soft state dies with it
		// (the transmit-queue analog of cancelled timers).
		q := &net.txq[v]
		for q.len() > 0 {
			it := q.pop()
			net.queueDrops++
			net.obsQueueDrop(it.session, v, QueueDropDown)
		}
		net.txPending[v] = false
		return
	}
	q := &net.txq[v]
	if q.len() == 0 {
		net.txPending[v] = false
		return
	}
	if net.channelBusy(v) {
		net.macDeferrals++
		slots := 1 + net.rngs.mac.Intn(net.Cfg.CSBackoffSlots)
		net.seq++
		net.pushEvent(event{
			at:   net.now + float64(slots)*net.Cfg.TransmitDelay,
			seq:  net.seq,
			kind: eventTxAttempt,
			node: v,
		})
		return
	}
	net.emitTx(v, q.pop())
	// The next head (if any) gets its chance when this transmission ends.
	if q.len() > 0 {
		net.seq++
		net.pushEvent(event{
			at:   net.busyUntil[v],
			seq:  net.seq,
			kind: eventTxAttempt,
			node: v,
		})
		return
	}
	net.txPending[v] = false
}

// channelBusy reports whether node v senses the channel busy now: its own
// radio is still transmitting (half-duplex), or some in-range transmission
// started strictly before now is still on the air. A transmission starting
// at exactly now is invisible — that is what makes simultaneous in-range
// starts collide instead of serializing.
func (net *Network) channelBusy(v int) bool {
	now := net.now
	if net.busyUntil[v] > now {
		return true
	}
	d := net.Cfg.TransmitDelay
	busy := false
	net.G.ForEachNeighbor(v, func(u int) {
		if busy {
			return
		}
		bu := net.busyUntil[u]
		// Started strictly before now (bu - d < now) and still on the air.
		if bu > now && bu-d < now {
			busy = true
		}
	})
	return busy
}

// emitTx puts one queued transmission on the air at the current instant:
// occupancy and per-receiver overlap tracking, copy scheduling, and — for
// broadcast forwards — the forward-order bookkeeping, observer callback, and
// forward-set metric that the immediate (collision-free) path performs at
// Transmit time.
func (net *Network) emitTx(v int, it txItem) {
	arrive := net.now + net.Cfg.TransmitDelay
	net.busyUntil[v] = arrive
	if it.to >= 0 {
		// Unicast recovery retransmission: one copy toward the receiver.
		net.retransmits++
		net.airCopy(it.session, v, it.to, arrive, it.pkt, it.attempt)
		return
	}
	net.forward = append(net.forward, v)
	net.obsTransmit(it.session, v, it.designated)
	if net.Cfg.Metrics != nil {
		net.Cfg.Metrics.ForwardSet.Observe(float64(len(it.designated)))
	}
	net.G.ForEachNeighbor(v, func(u int) {
		net.airCopy(it.session, v, u, arrive, it.pkt, 0)
	})
}

// airCopy schedules one copy from v to u arriving at arrive, maintaining
// receiver-side overlap state: if this transmission started before the
// latest in-flight copy toward u lands, both copies are garbled (the
// overlap window extends garbleUntil to cover them).
func (net *Network) airCopy(sid int32, v, u int, arrive float64, pkt Packet, attempt int) {
	if net.now < net.airEnd[u] && net.garbleUntil[u] < arrive {
		net.garbleUntil[u] = arrive
	}
	if net.airEnd[u] < arrive {
		net.airEnd[u] = arrive
	}
	net.copies++
	net.seq++
	net.pushEvent(event{
		at:   arrive,
		seq:  net.seq,
		kind: eventReceive,
		node: u,
		receipt: Receipt{
			From:   v,
			At:     arrive,
			Packet: pkt,
		},
		attempt: attempt,
		session: sid,
	})
}

// garbledArrival reports whether the copy arriving at node v now was garbled
// in the air: it fell inside a marked overlap window, or v's own (half-
// duplex) transmission overlapped the copy's air time.
func (net *Network) garbledArrival(v int) bool {
	at := net.now
	if at <= net.garbleUntil[v] {
		return true
	}
	bu := net.busyUntil[v]
	d := net.Cfg.TransmitDelay
	// v transmitted over (bu-d, bu); the copy was on the air over
	// (at-d, at). Open-interval overlap: back-to-back is clean.
	return bu > at-d && bu-d < at
}

// resetMAC prepares the contention-MAC state for a run over n nodes.
func (net *Network) resetMAC(n int) {
	a := net.arena
	a.ensureMACScratch(n)
	net.busyUntil = a.busyUntil
	net.airEnd = a.airEnd
	net.garbleUntil = a.garbleUntil
	net.txPending = a.txPending
	net.txq = a.txq
	for v := 0; v < n; v++ {
		net.busyUntil[v] = 0
		net.airEnd[v] = 0
		net.garbleUntil[v] = 0
		net.txPending[v] = false
		net.txq[v].reset()
	}
}
