//go:build simdebug

package sim

// debugChecks enables the event-loop invariant assertions (see invariants.go)
// in builds tagged `simdebug`. CI runs the sim tests once with the tag so the
// invariants are exercised on every change without taxing production runs.
const debugChecks = true
