package sim_test

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"adhocbcast/internal/fault"
	"adhocbcast/internal/geo"
	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
)

// assertConserved checks the drop-accounting identity that the simdebug
// build enforces with a panic: every transmitted copy is delivered or
// dropped by exactly one cause.
func assertConserved(t *testing.T, res sim.Result) {
	t.Helper()
	if got := res.Receipts + res.Lost + res.Collided + res.FaultDrops(); got != res.Copies {
		t.Fatalf("accounting broken: receipts %d + lost %d + collided %d + faultDrops %d = %d != copies %d",
			res.Receipts, res.Lost, res.Collided, res.FaultDrops(), got, res.Copies)
	}
}

func TestCrashPartitionsScoredAgainstReachable(t *testing.T) {
	// 0-1-2-3-4: node 2 crashes before the wave reaches it, cutting off 3
	// and 4. Raw delivery is 2/5, but both stranded nodes are unreachable,
	// so the reachability-aware ratio still scores the protocol perfect.
	g := pathGraph(t, 5)
	plan := fault.NewEmptyPlan(5)
	plan.AddNodeDown(2, fault.Interval{From: 1.5, To: fault.Forever})
	res, err := sim.Run(g, 0, protocol.Flooding(), sim.Config{Seed: 1, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 2 {
		t.Fatalf("delivered = %d, want 2", res.Delivered)
	}
	if res.Reachable != 2 {
		t.Fatalf("reachable = %d, want 2", res.Reachable)
	}
	if res.ReachableDeliveryRatio() != 1 {
		t.Fatalf("reachable delivery ratio = %v, want 1", res.ReachableDeliveryRatio())
	}
	if res.DeliveryRatio() >= 1 {
		t.Fatalf("raw delivery ratio = %v, want < 1", res.DeliveryRatio())
	}
	if res.DroppedNodeDown == 0 {
		t.Fatal("no node-down drops recorded for the crashed node")
	}
	assertConserved(t, res)
}

func TestChurnedNodeDropsThenHearsLaterWave(t *testing.T) {
	// Diamond 0-{1,2}-3 under flooding: node 1 is down exactly when the
	// source's copy arrives, so it misses the first wave but catches node
	// 3's retransmission after coming back up.
	g := mkG(t, 4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	plan := fault.NewEmptyPlan(4)
	plan.AddNodeDown(1, fault.Interval{From: 0.5, To: 1.5})
	res, err := sim.Run(g, 0, protocol.Flooding(), sim.Config{Seed: 1, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FullDelivery() {
		t.Fatalf("delivered %d/%d", res.Delivered, res.N)
	}
	if res.DroppedNodeDown != 1 {
		t.Fatalf("node-down drops = %d, want 1", res.DroppedNodeDown)
	}
	// All four nodes are reachable: churn is transient, not a crash.
	if res.Reachable != 4 {
		t.Fatalf("reachable = %d, want 4", res.Reachable)
	}
	assertConserved(t, res)
}

func TestLinkOutageDropsByCause(t *testing.T) {
	// Diamond: the 0-1 link is down at t=1, so node 1 only gets the packet
	// via node 3's retransmission.
	g := mkG(t, 4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	plan := fault.NewEmptyPlan(4)
	plan.AddLinkDown(0, 1, fault.Interval{From: 0.5, To: 1.5})
	res, err := sim.Run(g, 0, protocol.Flooding(), sim.Config{Seed: 1, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FullDelivery() {
		t.Fatalf("delivered %d/%d", res.Delivered, res.N)
	}
	if res.DroppedLinkDown != 1 {
		t.Fatalf("link-down drops = %d, want 1", res.DroppedLinkDown)
	}
	if res.DroppedNodeDown != 0 {
		t.Fatalf("node-down drops = %d, want 0", res.DroppedNodeDown)
	}
	assertConserved(t, res)
}

func TestCrashCancelsBackoffTimer(t *testing.T) {
	// FRB on a triangle: node 1 receives at t=1 and arms a backoff timer,
	// then crashes before it can fire. The timer must be cancelled, not
	// dispatched to a dead node.
	g := mkG(t, 3, [][2]int{{0, 1}, {0, 2}, {1, 2}})
	plan := fault.NewEmptyPlan(3)
	plan.AddNodeDown(1, fault.Interval{From: 1.25, To: fault.Forever})
	res, err := sim.Run(g, 0, protocol.Generic(protocol.TimingBackoffRandom),
		sim.Config{Hops: 2, Seed: 3, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Forward {
		if v == 1 {
			t.Fatal("crashed node transmitted")
		}
	}
	if res.TimersCancelled == 0 {
		t.Fatal("no timer cancellation recorded")
	}
	assertConserved(t, res)
}

func TestDownSourceStaysSilent(t *testing.T) {
	g := pathGraph(t, 3)
	plan := fault.NewEmptyPlan(3)
	plan.AddNodeDown(0, fault.Interval{From: 0, To: fault.Forever})
	res, err := sim.Run(g, 0, protocol.Flooding(), sim.Config{Seed: 1, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if res.ForwardCount() != 0 {
		t.Fatalf("forward count = %d, want 0 (source down at start)", res.ForwardCount())
	}
	if res.Copies != 0 {
		t.Fatalf("copies = %d, want 0", res.Copies)
	}
	assertConserved(t, res)
}

func TestChurnBreaksCollisionSymmetry(t *testing.T) {
	// The diamond collision scenario (see TestCollisionsOnSynchronizedWave):
	// without faults nodes 1 and 2 retransmit simultaneously and their
	// copies destroy each other at node 3. With node 1 down during the
	// first wave, node 2 retransmits alone and node 3 is served — and the
	// fault-dropped copy must not be counted as a colliding arrival.
	g := mkG(t, 4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	plan := fault.NewEmptyPlan(4)
	plan.AddNodeDown(1, fault.Interval{From: 0.5, To: 1.5})
	res, err := sim.Run(g, 0, protocol.Flooding(), sim.Config{Collisions: true, Seed: 1, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FullDelivery() {
		t.Fatalf("delivered %d/%d", res.Delivered, res.N)
	}
	if res.DroppedNodeDown != 1 {
		t.Fatalf("node-down drops = %d, want 1", res.DroppedNodeDown)
	}
	assertConserved(t, res)
}

func TestEmptyPlanMatchesNilPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	net, err := geo.Generate(geo.Config{N: 60, AvgDegree: 8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() sim.Protocol { return protocol.Generic(protocol.TimingBackoffRandom) }
	a, err := sim.Run(net.G, 0, mk(), sim.Config{Hops: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(net.G, 0, mk(), sim.Config{Hops: 2, Seed: 9, Faults: fault.NewEmptyPlan(60)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("empty plan diverged from nil plan:\n%+v\n%+v", a, b)
	}
}

func TestFaultRunsByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	net, err := geo.Generate(geo.Config{N: 80, AvgDegree: 8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.NewPlan(net.G, fault.Params{
		CrashFraction: 0.15,
		ChurnFraction: 0.1,
		LinkFraction:  0.1,
		Protect:       []int{2},
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{
		Hops:         2,
		Seed:         11,
		LossRate:     0.2,
		Collisions:   true,
		TxJitter:     0.5,
		Faults:       plan,
		NACKRecovery: true,
	}
	mk := func() sim.Protocol { return protocol.Generic(protocol.TimingBackoffRandom) }
	a, err := sim.Run(net.G, 2, mk(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(net.G, 2, mk(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fault runs not byte-identical:\n%+v\n%+v", a, b)
	}
	assertConserved(t, a)
}

// TestConservationCombined is the drop-accounting stress test required by
// the robustness issue: under loss + collisions + faults + recovery, every
// copy sent is delivered or dropped by exactly one accounted cause.
func TestConservationCombined(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		net, err := geo.Generate(geo.Config{N: 70, AvgDegree: 8}, rng)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := fault.NewPlan(net.G, fault.Params{
			CrashFraction: 0.1,
			ChurnFraction: 0.15,
			LinkFraction:  0.1,
			Protect:       []int{0},
		}, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		for _, nack := range []bool{false, true} {
			res, err := sim.Run(net.G, 0, protocol.Flooding(), sim.Config{
				Seed:         int64(trial + 1),
				LossRate:     0.25,
				Collisions:   true,
				TxJitter:     0.5,
				Faults:       plan,
				NACKRecovery: nack,
			})
			if err != nil {
				t.Fatal(err)
			}
			assertConserved(t, res)
			if nack && res.Retransmits == 0 {
				t.Fatal("recovery enabled but no retransmissions under heavy loss")
			}
			if !nack && (res.NACKs != 0 || res.Retransmits != 0) {
				t.Fatalf("recovery disabled but NACKs=%d retransmits=%d", res.NACKs, res.Retransmits)
			}
		}
	}
}

// TestBackoffStreamDecoupledFromLoss pins the per-purpose RNG split: a loss
// model that draws (but never drops — the rate is infinitesimal) must leave
// the backoff schedule, and hence the whole run, untouched. Before the
// split, loss draws shifted the shared stream and perturbed every backoff.
func TestBackoffStreamDecoupledFromLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	net, err := geo.Generate(geo.Config{N: 80, AvgDegree: 6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() sim.Protocol { return protocol.Generic(protocol.TimingBackoffRandom) }
	clean, err := sim.Run(net.G, 0, mk(), sim.Config{Hops: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := sim.Run(net.G, 0, mk(), sim.Config{Hops: 2, Seed: 7, LossRate: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if lossy.Lost != 0 {
		t.Fatalf("infinitesimal loss rate dropped %d copies", lossy.Lost)
	}
	if !reflect.DeepEqual(clean.Forward, lossy.Forward) || clean.Finish != lossy.Finish {
		t.Fatalf("enabling the loss model perturbed the backoff schedule:\n%v finish %v\n%v finish %v",
			clean.Forward, clean.Finish, lossy.Forward, lossy.Finish)
	}
}

// TestJitterStreamDecoupledFromLoss: same property for the jitter stream.
func TestJitterStreamDecoupledFromLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	net, err := geo.Generate(geo.Config{N: 60, AvgDegree: 8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	base := sim.Config{Hops: 2, Seed: 13, Collisions: true, TxJitter: 0.5}
	a, err := sim.Run(net.G, 0, protocol.Flooding(), base)
	if err != nil {
		t.Fatal(err)
	}
	lossy := base
	lossy.LossRate = 1e-12
	b, err := sim.Run(net.G, 0, protocol.Flooding(), lossy)
	if err != nil {
		t.Fatal(err)
	}
	if b.Lost != 0 {
		t.Fatalf("infinitesimal loss rate dropped %d copies", b.Lost)
	}
	if !reflect.DeepEqual(a.Forward, b.Forward) || a.Finish != b.Finish || a.Collided != b.Collided {
		t.Fatal("enabling the loss model perturbed the jitter schedule")
	}
}

func TestNACKRecoveryExhaustsBudget(t *testing.T) {
	// One link, everything lost: the receiver NACKs after every garbled
	// copy until the budget runs out. Exact accounting: 1 original copy +
	// RetryBudget retransmissions, all lost.
	g := pathGraph(t, 2)
	res, err := sim.Run(g, 0, protocol.Flooding(), sim.Config{
		Seed:         1,
		LossRate:     0.999999,
		NACKRecovery: true,
		RetryBudget:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 1 {
		t.Fatalf("delivered = %d, want 1", res.Delivered)
	}
	if res.NACKs != 3 || res.Retransmits != 3 {
		t.Fatalf("NACKs = %d, retransmits = %d, want 3 and 3", res.NACKs, res.Retransmits)
	}
	if res.Copies != 4 || res.Lost != 4 {
		t.Fatalf("copies = %d, lost = %d, want 4 and 4", res.Copies, res.Lost)
	}
	assertConserved(t, res)
}

// TestCrashMidNACKRetryCancelsRetransmit: the receiver's NACK reaches the
// sender, the retransmission backoff is pending — and then the sender
// crashes. The scheduled retransmission must be cancelled at dispatch, not
// sent by a dead node. The second case crashes the sender before the NACK
// even arrives, exercising the down check on the request itself.
func TestCrashMidNACKRetryCancelsRetransmit(t *testing.T) {
	g := pathGraph(t, 2)
	// Timeline with LossRate ~1: copy 0->1 lost at t=1, NACK arrives at the
	// sender at t=1.5, retransmission fires at t=1.5+RetryBackoff=5.5.
	for _, tc := range []struct {
		name    string
		crashAt float64
	}{
		{"mid retry window", 3},      // after the NACK, before the retransmit
		{"before NACK arrives", 1.2}, // the request itself finds a dead sender
	} {
		t.Run(tc.name, func(t *testing.T) {
			plan := fault.NewEmptyPlan(2)
			plan.AddNodeDown(0, fault.Interval{From: tc.crashAt, To: fault.Forever})
			res, err := sim.Run(g, 0, protocol.Flooding(), sim.Config{
				Seed:         1,
				LossRate:     0.999999,
				NACKRecovery: true,
				RetryBudget:  3,
				RetryBackoff: 4,
				Faults:       plan,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.NACKs != 1 {
				t.Fatalf("NACKs = %d, want 1 (the original loss was detected)", res.NACKs)
			}
			if res.Retransmits != 0 {
				t.Fatalf("retransmits = %d, want 0: crashed sender retransmitted", res.Retransmits)
			}
			if res.Copies != 1 || res.Lost != 1 {
				t.Fatalf("copies = %d, lost = %d, want 1 and 1", res.Copies, res.Lost)
			}
			assertConserved(t, res)
		})
	}
}

// TestRetryBackoffBounded pins the exponential-backoff cap: a huge retry
// budget must neither overflow the per-attempt delay to +Inf (which would
// wedge the event queue at an infinite timestamp) nor stall the run.
func TestRetryBackoffBounded(t *testing.T) {
	// The exported helper (shared with the live executor) saturates at
	// base * 2^12 for any larger attempt.
	cap12 := sim.RetryBackoffDelay(0.5, 13)
	if want := 0.5 * 4096; cap12 != want {
		t.Fatalf("RetryBackoffDelay(0.5, 13) = %v, want %v", cap12, want)
	}
	for _, attempt := range []int{14, 1000, 1 << 30} {
		d := sim.RetryBackoffDelay(0.5, attempt)
		if math.IsInf(d, 1) || math.IsNaN(d) || d != cap12 {
			t.Fatalf("RetryBackoffDelay(0.5, %d) = %v, want capped %v", attempt, d, cap12)
		}
	}
	// End to end: a budget past the overflow point (Ldexp(base, ~1080)
	// would be +Inf) exhausts cleanly with a finite schedule. The small
	// base keeps the capped virtual finish time — and hence the event
	// queue walk — short.
	g := pathGraph(t, 2)
	res, err := sim.Run(g, 0, protocol.Flooding(), sim.Config{
		Seed:         1,
		LossRate:     0.999999,
		NACKRecovery: true,
		RetryBudget:  1200,
		RetryBackoff: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.Finish, 1) || math.IsNaN(res.Finish) {
		t.Fatalf("finish time %v not finite", res.Finish)
	}
	if res.Retransmits != 1200 {
		t.Fatalf("retransmits = %d, want the whole 1200 budget", res.Retransmits)
	}
	assertConserved(t, res)
}

func TestNACKRecoveryImprovesLossyDelivery(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	net, err := geo.Generate(geo.Config{N: 80, AvgDegree: 6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() sim.Protocol { return protocol.Generic(protocol.TimingFirstReceipt) }
	var plain, recovered float64
	const runs = 30
	for i := 0; i < runs; i++ {
		cfg := sim.Config{Hops: 2, Seed: int64(i + 1), LossRate: 0.35}
		a, err := sim.Run(net.G, i%80, mk(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.NACKRecovery = true
		b, err := sim.Run(net.G, i%80, mk(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		plain += a.DeliveryRatio()
		recovered += b.DeliveryRatio()
		assertConserved(t, a)
		assertConserved(t, b)
	}
	if recovered <= plain {
		t.Fatalf("recovery did not improve delivery: %.3f vs %.3f", recovered/runs, plain/runs)
	}
}

func TestConfigValidation(t *testing.T) {
	g := pathGraph(t, 4)
	badPlan := fault.NewEmptyPlan(4)
	badPlan.AddNodeDown(1, fault.Interval{From: 3, To: 2})
	wrongSize := fault.NewEmptyPlan(5)
	cases := []struct {
		name string
		cfg  sim.Config
		want string
	}{
		{"loss negative", sim.Config{LossRate: -0.1}, "LossRate"},
		{"loss one", sim.Config{LossRate: 1}, "LossRate"},
		{"loss above one", sim.Config{LossRate: 1.5}, "LossRate"},
		{"negative jitter", sim.Config{TxJitter: -1}, "TxJitter"},
		{"negative budget", sim.Config{RetryBudget: -2}, "RetryBudget"},
		{"negative nack delay", sim.Config{NACKDelay: -0.5}, "NACKDelay"},
		{"negative retry backoff", sim.Config{RetryBackoff: -1}, "RetryBackoff"},
		{"malformed plan", sim.Config{Faults: badPlan}, "fault"},
		{"plan size mismatch", sim.Config{Faults: wrongSize}, "nodes"},
	}
	for _, c := range cases {
		_, err := sim.Run(g, 0, protocol.Flooding(), c.cfg)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
	// The zero config stays valid.
	if _, err := sim.Run(g, 0, protocol.Flooding(), sim.Config{}); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
}
