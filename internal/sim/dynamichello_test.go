package sim_test

import (
	"math/rand"
	"reflect"
	"testing"

	"adhocbcast/internal/geo"
	"adhocbcast/internal/hello"
	"adhocbcast/internal/obsv"
	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
)

// TestDynamicHelloValidation pins the config contract: a DynamicHello
// satisfies ConservativeFallback's requirement, and invalid beacon parameters
// are rejected up front.
func TestDynamicHelloValidation(t *testing.T) {
	g := pathGraph(t, 3)
	proto := protocol.Generic(protocol.TimingFirstReceipt)
	if _, err := sim.Run(g, 0, proto, sim.Config{
		ConservativeFallback: true,
		DynamicHello:         &hello.Dynamic{Interval: 1},
	}); err != nil {
		t.Fatalf("DynamicHello did not satisfy ConservativeFallback: %v", err)
	}
	if _, err := sim.Run(g, 0, proto, sim.Config{
		ConservativeFallback: true,
		DynamicHello:         &hello.Dynamic{Interval: 1, LossRate: 1.5},
	}); err == nil {
		t.Fatal("invalid DynamicHello accepted")
	}
}

// TestDynamicHelloHoldForwards: with beacon loss making views provably stale
// at decision time, the conservative fallback converts prunes into forwards —
// the forward set can only grow, delivery never drops, and the run's
// StaleViewHolds counter records the held nodes. The beacon schedule is a
// pure hash, so the whole comparison is deterministic; the seed loop hunts
// for a schedule whose staleness overlaps decision times.
func TestDynamicHelloHoldForwards(t *testing.T) {
	net, err := geo.Generate(geo.Config{N: 40, AvgDegree: 8, Seed: 5},
		rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	g := net.G
	proto := func() sim.Protocol { return protocol.Generic(protocol.TimingFirstReceipt) }
	base, err := sim.Run(g, 0, proto(), sim.Config{Hops: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 64; seed++ {
		dyn := &hello.Dynamic{Interval: 0.5, Expiry: 0.7, LossRate: 0.5, Seed: seed}
		var rec obsv.RunRecord
		held, err := sim.Run(g, 0, proto(), sim.Config{
			Hops:                 2,
			Seed:                 5,
			DynamicHello:         dyn,
			ConservativeFallback: true,
			Metrics:              &rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(held.Forward) < len(base.Forward) {
			t.Fatalf("seed %d: conservative hold shrank the forward set: %d -> %d",
				seed, len(base.Forward), len(held.Forward))
		}
		if held.Delivered < base.Delivered {
			t.Fatalf("seed %d: conservative hold lost delivery: %d -> %d",
				seed, base.Delivered, held.Delivered)
		}
		if len(held.Forward) == len(base.Forward) {
			continue // this schedule's staleness missed every decision; try the next
		}
		if rec.StaleViewHolds == 0 {
			t.Fatalf("seed %d: forwards grew %d -> %d but StaleViewHolds is 0",
				seed, len(base.Forward), len(held.Forward))
		}
		// Determinism: the identical config reproduces the identical result.
		again, err := sim.Run(g, 0, proto(), sim.Config{
			Hops:                 2,
			Seed:                 5,
			DynamicHello:         dyn,
			ConservativeFallback: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(held.Forward, again.Forward) || held.Delivered != again.Delivered {
			t.Fatalf("seed %d: rerun diverged: %v vs %v", seed, held.Forward, again.Forward)
		}
		return
	}
	t.Fatal("no beacon seed in 1..64 made a stale view overlap a pruning decision")
}
