package sim_test

import (
	"math/rand"
	"testing"

	"adhocbcast/internal/geo"
	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
	"adhocbcast/internal/view"
)

// TestSmokeAllProtocolsDeliver runs every protocol once on a random network
// and checks full delivery — the end-to-end sanity check for the whole
// stack. Detailed coverage properties live in the protocol test suite.
func TestSmokeAllProtocolsDeliver(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net, err := geo.Generate(geo.Config{N: 60, AvgDegree: 6}, rng)
	if err != nil {
		t.Fatalf("generate network: %v", err)
	}
	protos := []sim.Protocol{
		protocol.Flooding(),
		protocol.Generic(protocol.TimingStatic),
		protocol.Generic(protocol.TimingFirstReceipt),
		protocol.Generic(protocol.TimingBackoffRandom),
		protocol.Generic(protocol.TimingBackoffDegree),
		protocol.GenericStrong(protocol.TimingFirstReceipt),
		protocol.SelfPruningFR(),
		protocol.NeighborDesignatingFR(),
		protocol.HybridMaxDeg(),
		protocol.HybridMinPri(),
		protocol.WuLi(),
		protocol.RuleK(),
		protocol.Span(),
		protocol.MPR(),
		protocol.SBA(),
		protocol.LENWB(),
		protocol.DP(),
		protocol.PDP(),
		protocol.TDP(),
	}
	for _, p := range protos {
		t.Run(p.Name(), func(t *testing.T) {
			res, err := sim.Run(net.G, 0, p, sim.Config{
				Hops:   2,
				Metric: view.MetricDegree,
				Seed:   1,
			})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !res.FullDelivery() {
				t.Fatalf("delivered %d of %d nodes; forward set %v",
					res.Delivered, res.N, res.Forward)
			}
			if res.ForwardCount() < 1 || res.ForwardCount() > res.N {
				t.Fatalf("implausible forward count %d", res.ForwardCount())
			}
			t.Logf("forward nodes: %d / %d", res.ForwardCount(), res.N)
		})
	}
}
