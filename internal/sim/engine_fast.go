package sim

import (
	"fmt"
	"sync"

	"adhocbcast/internal/core"
)

// TimerPrecomputer is implemented by protocols whose pending-timer coverage
// decision is a pure function of the timer owner's current state: given node
// v with a timer firing now, PrecomputeTimer returns the verdict the
// protocol's OnTimer coverage evaluation would reach, or ok=false when no
// verdict applies (the timer then dispatches normally). Implementations must
// not mutate the network, draw randomness, or read any mutable state outside
// node v's own; ev is a private evaluator for this call. The fast engine
// calls it from worker goroutines for timers that are their owner's earliest
// event of the instant, and hands the verdict back through
// Network.TakePreparedCovered during the sequential dispatch pass.
type TimerPrecomputer interface {
	PrecomputeTimer(net *Network, v int, ev *core.Evaluator) (covered, ok bool)
}

// NonDesignating is implemented by protocols for which receive handling never
// observes designation state or the receiver's own view marks: no designated
// sets ride the packet trails, and OnReceive for a node whose only events
// this instant are receives reads nothing a view merge changes. For such
// protocols the fast engine may apply a node's same-instant view merges from
// a worker goroutine before the sequential dispatch pass; the merge is
// monotone and per-node, so the final state is identical.
type NonDesignating interface {
	NonDesignating() bool
}

// evtKind bits classifying a node's events within one same-instant batch.
const (
	kindReceive   uint8 = 1 << iota // node has >= 1 receive event
	kindOther                       // node has a timer/NACK/retransmit event
	kindPremerged                   // node's view merges were applied by a worker
)

// loopFast is the calendar-queue event loop: it drains all events sharing the
// earliest instant as one batch (events pushed while the batch runs carry
// higher sequence numbers and later-or-equal times, so they land in a later
// batch, preserving the oracle's exact (at, seq) dispatch order) and hands
// the batch to runBatch.
func (net *Network) loopFast() {
	q := &net.arena.cal
	for q.size > 0 {
		at := q.peekTime()
		if debugChecks && at < net.now {
			panic(fmt.Sprintf("sim: event time %v before now %v", at, net.now))
		}
		net.now = at
		batch := net.arena.batch[:0]
		for q.size > 0 && q.peekTime() == at {
			batch = append(batch, q.pop())
		}
		net.arena.batch = batch
		net.runBatch(batch)
	}
}

// runBatch processes one same-instant batch: an optional sequential collision
// pass (fault pre-filter plus arrival counting, as in the oracle), an
// optional parallel precompute pass, and the sequential dispatch pass that
// replays the events in sequence order with byte-identical side effects.
func (net *Network) runBatch(batch []event) {
	coll := net.Cfg.Collisions
	var arr []int32
	var arrTouched []int
	if coll {
		// Copies already dropped by the fault plan do not count as arrivals —
		// a down node's radio is off, not jamming. The filter and the counter
		// run in batch order so fault-drop accounting matches the oracle.
		live := batch[:0]
		for i := range batch {
			if batch[i].kind == eventReceive && net.dropByFault(&batch[i]) {
				continue
			}
			live = append(live, batch[i])
		}
		batch = live
		arr, arrTouched = net.countArrivals(func(yield func(*event)) {
			for i := range batch {
				yield(&batch[i])
			}
		})
	}
	var kinds []uint8
	if net.workers > 1 && len(batch) > 1 {
		kinds = net.precompute(batch)
	}
	for i := range batch {
		e := &batch[i]
		if coll && e.kind == eventReceive && arr[e.node] > 1 {
			net.collided++
			net.maybeNACK(e.session, e.node, e.receipt.From, e.attempt)
			continue
		}
		switch {
		case kinds != nil && e.kind == eventReceive && kinds[e.node]&kindPremerged != 0:
			net.handleReceive(e.session, e.node, e.receipt, e.attempt, true)
		case e.kind == eventTimer:
			net.dispatch(e)
			if net.prepared != nil {
				// Drop any verdict the dispatch did not consume (node down,
				// already sent, strict designation, ...).
				net.prepared[e.node] = -1
			}
		default:
			net.dispatch(e)
		}
	}
	if coll {
		net.clearArrivals(arr, arrTouched)
	}
	if kinds != nil {
		for _, v := range net.arena.evtTouched {
			kinds[v] = 0
		}
		net.arena.evtTouched = net.arena.evtTouched[:0]
	}
}

// precompute is the parallel phase: it classifies the batch's events per node
// sequentially, then shards two kinds of pure per-node work across worker
// goroutines — coverage verdicts for timers that are their owner's earliest
// event of the instant (any protocol implementing TimerPrecomputer), and view
// merges for nodes whose only events this instant are receives (protocols
// declaring NonDesignating, under a clean collision-free MAC). Workers write
// only to disjoint per-node slots, so the merged outcome is deterministic and
// independent of scheduling; everything order-sensitive stays in the
// sequential dispatch pass.
func (net *Network) precompute(batch []event) []uint8 {
	a := net.arena
	kinds := a.evtKind
	touched := a.evtTouched[:0]
	timers := a.timerIdx[:0]
	tp, _ := net.protocol.(TimerPrecomputer)
	for i := range batch {
		e := &batch[i]
		bit := kindOther
		if e.kind == eventReceive {
			bit = kindReceive
		}
		if kinds[e.node] == 0 {
			touched = append(touched, e.node)
			if e.kind == eventTimer && tp != nil && !net.down(e.node) {
				timers = append(timers, i)
			}
		}
		kinds[e.node] |= bit
	}
	a.evtTouched = touched
	a.timerIdx = timers
	premerge := false
	// Pre-merge is off under the contention MAC (a copy may still be garbled
	// at dispatch time) and in multi-session runs (net.nodes is not the
	// session's state), in addition to the loss/collision/fault gates.
	if nd, ok := net.protocol.(NonDesignating); ok && nd.NonDesignating() &&
		net.Cfg.LossRate == 0 && !net.Cfg.Collisions && !net.Cfg.CarrierSense &&
		net.plan == nil && net.multi == nil {
		for _, v := range touched {
			if kinds[v] == kindReceive {
				kinds[v] |= kindPremerged
				premerge = true
			}
		}
	}
	if len(timers) == 0 && !premerge {
		return kinds
	}
	w := net.workers
	evals := a.workerEvals(w, net.G.N())
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for k := wi; k < len(timers); k += w {
				e := &batch[timers[k]]
				if cov, ok := tp.PrecomputeTimer(net, e.node, evals[wi]); ok {
					verdict := int8(0)
					if cov {
						verdict = 1
					}
					net.prepared[e.node] = verdict
				}
			}
			if !premerge {
				return
			}
			// Shard merges by receiver so each node's merges apply in batch
			// order within one worker (they are monotone and commutative, but
			// the discipline costs nothing).
			for i := range batch {
				e := &batch[i]
				if e.kind == eventReceive && e.node%w == wi &&
					kinds[e.node]&kindPremerged != 0 {
					net.mergeReceipt(&net.nodes[e.node], e.node, e.receipt)
				}
			}
		}(wi)
	}
	wg.Wait()
	return kinds
}
