package sim_test

import (
	"math/rand"
	"reflect"
	"testing"

	"adhocbcast/internal/geo"
	"adhocbcast/internal/graph"
	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
	"adhocbcast/internal/view"
)

// pathGraph builds 0-1-...-(n-1).
func pathGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestRunBadSource(t *testing.T) {
	g := pathGraph(t, 3)
	if _, err := sim.Run(g, -1, protocol.Flooding(), sim.Config{}); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, err := sim.Run(g, 3, protocol.Flooding(), sim.Config{}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestFloodingOnPath(t *testing.T) {
	// On a path every interior node is a cut vertex: even the generic
	// condition cannot prune anything except the far endpoint, and
	// flooding forwards everywhere. Finish time equals the path length.
	g := pathGraph(t, 5)
	res, err := sim.Run(g, 0, protocol.Flooding(), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FullDelivery() {
		t.Fatalf("delivered %d/%d", res.Delivered, res.N)
	}
	if res.ForwardCount() != 5 {
		t.Fatalf("flooding forward count = %d, want 5", res.ForwardCount())
	}
	// The far leaf receives at t=4 and (under flooding) retransmits; its
	// redundant copy lands back at node 3 at t=5, the final event.
	if res.Finish != 5 {
		t.Fatalf("finish = %v, want 5", res.Finish)
	}
	// Transmission order on a path is the node order.
	if !reflect.DeepEqual(res.Forward, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("forward order = %v", res.Forward)
	}
}

func TestGenericOnPathPrunesOnlyLastNode(t *testing.T) {
	g := pathGraph(t, 6)
	res, err := sim.Run(g, 0, protocol.Generic(protocol.TimingFirstReceipt), sim.Config{Hops: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FullDelivery() {
		t.Fatalf("delivered %d/%d", res.Delivered, res.N)
	}
	// Nodes 1..4 are cut vertices and must forward; node 5 is a leaf and
	// prunes itself.
	if res.ForwardCount() != 5 {
		t.Fatalf("forward count = %d, want 5 (all but the far leaf)", res.ForwardCount())
	}
	for _, v := range res.Forward {
		if v == 5 {
			t.Fatal("leaf node forwarded")
		}
	}
}

func TestForwardAtMostOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	net, err := geo.Generate(geo.Config{N: 50, AvgDegree: 8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, mk := range []func() sim.Protocol{
		protocol.Flooding,
		protocol.DP,
		protocol.HybridMaxDeg,
		func() sim.Protocol { return protocol.Generic(protocol.TimingBackoffRandom) },
	} {
		res, err := sim.Run(net.G, 0, mk(), sim.Config{Hops: 2, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int]bool)
		for _, v := range res.Forward {
			if seen[v] {
				t.Fatalf("%T: node %d forwarded twice", mk(), v)
			}
			seen[v] = true
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	net, err := geo.Generate(geo.Config{N: 60, AvgDegree: 6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{Hops: 2, Metric: view.MetricDegree, Seed: 77}
	a, err := sim.Run(net.G, 4, protocol.Generic(protocol.TimingBackoffRandom), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(net.G, 4, protocol.Generic(protocol.TimingBackoffRandom), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different results:\n%v\n%v", a, b)
	}
	// A different seed should (almost surely) change backoff draws; we
	// only require that the run still completes correctly.
	cfg.Seed = 78
	c, err := sim.Run(net.G, 4, protocol.Generic(protocol.TimingBackoffRandom), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !c.FullDelivery() {
		t.Fatal("reseeded run failed delivery")
	}
}

func TestSourceAlwaysForwards(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	net, err := geo.Generate(geo.Config{N: 30, AvgDegree: 6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < 30; src += 7 {
		res, err := sim.Run(net.G, src, protocol.Generic(protocol.TimingFirstReceipt), sim.Config{Hops: 2})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Forward) == 0 || res.Forward[0] != src {
			t.Fatalf("source %d did not transmit first: %v", src, res.Forward)
		}
	}
}

// snoopProbe records what one node's view looks like at decision time; it
// exercises the snooped/piggybacked state plumbing end to end.
type snoopProbe struct {
	inner   sim.Protocol
	probe   int
	visited map[int]bool
}

func (p *snoopProbe) Name() string        { return "probe" }
func (p *snoopProbe) Init(rt sim.Runtime) { p.inner.Init(rt) }
func (p *snoopProbe) Start(rt sim.Runtime, source int) {
	p.inner.Start(rt, source)
}

func (p *snoopProbe) OnReceive(rt sim.Runtime, v int, r sim.Receipt) {
	if v == p.probe {
		p.visited = make(map[int]bool)
		st := rt.State(v)
		for x := 0; x < rt.N(); x++ {
			if st.View.IsVisited(x) {
				p.visited[x] = true
			}
		}
	}
	p.inner.OnReceive(rt, v, r)
}

func (p *snoopProbe) OnTimer(rt sim.Runtime, v int) { p.inner.OnTimer(rt, v) }

func TestPiggybackTrailReachesViews(t *testing.T) {
	// Path 0-1-2-3: when node 3 receives the packet from 2, the trail (h=2)
	// carries entries for 1 and 2, so 3's view knows both are visited, plus
	// the sender via snooping.
	g := pathGraph(t, 4)
	probe := &snoopProbe{inner: protocol.Flooding(), probe: 3}
	if _, err := sim.Run(g, 0, probe, sim.Config{Hops: 0, PiggybackDepth: 2}); err != nil {
		t.Fatal(err)
	}
	if probe.visited == nil {
		t.Fatal("probe node never received")
	}
	for _, want := range []int{1, 2} {
		if !probe.visited[want] {
			t.Fatalf("node 3's view misses visited node %d (knows %v)", want, probe.visited)
		}
	}
	if probe.visited[0] {
		t.Fatal("trail depth 2 should have dropped the source entry")
	}
}

func TestPiggybackDisabled(t *testing.T) {
	// With piggybacking disabled only the direct sender is known visited.
	g := pathGraph(t, 4)
	probe := &snoopProbe{inner: protocol.Flooding(), probe: 3}
	if _, err := sim.Run(g, 0, probe, sim.Config{Hops: 0, PiggybackDepth: -1}); err != nil {
		t.Fatal(err)
	}
	if !probe.visited[2] {
		t.Fatal("sender must always be known visited (snooped)")
	}
	if probe.visited[1] || probe.visited[0] {
		t.Fatalf("piggyback disabled but upstream nodes known: %v", probe.visited)
	}
}

func TestResultAccessors(t *testing.T) {
	r := sim.Result{Forward: []int{1, 2}, Delivered: 5, N: 5}
	if r.ForwardCount() != 2 {
		t.Fatalf("ForwardCount = %d", r.ForwardCount())
	}
	if !r.FullDelivery() {
		t.Fatal("FullDelivery = false")
	}
	r.Delivered = 4
	if r.FullDelivery() {
		t.Fatal("FullDelivery = true with missing node")
	}
}

func TestDesignatedByNode(t *testing.T) {
	st := &sim.NodeState{}
	if st.Designated() || st.DesignatedByNode(3) {
		t.Fatal("fresh state reports designation")
	}
	st.DesignatedBy = []int{3, 8}
	if !st.Designated() || !st.DesignatedByNode(8) || st.DesignatedByNode(5) {
		t.Fatal("designation lookups wrong")
	}
}
