package sim

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand"
)

// streams holds the per-purpose random streams of one run, all derived from
// Config.Seed. Splitting the single historical rng means enabling one
// stochastic model (say loss) no longer shifts the draws of another (say
// backoff): each consumer owns its sequence. The backoff stream is seeded
// with Seed directly — in runs without jitter or loss it was the only
// consumer of the old shared rng, so those runs (every paper figure) stay
// bit-identical across the split.
type streams struct {
	backoff *rand.Rand // backoff-timing delays (FRB)
	jitter  *rand.Rand // per-transmission forwarding jitter
	loss    *rand.Rand // per-receipt loss draws
	fault   *rand.Rand // fault/recovery-layer draws (retry jitter)
	mac     *rand.Rand // contention-MAC slotted-backoff draws (CarrierSense)
}

func newStreams(seed int64) streams {
	return streams{
		backoff: rand.New(rand.NewSource(seed)),
		jitter:  rand.New(rand.NewSource(subSeed(seed, "jitter"))),
		loss:    rand.New(rand.NewSource(subSeed(seed, "loss"))),
		fault:   rand.New(rand.NewSource(subSeed(seed, "fault"))),
		mac:     rand.New(rand.NewSource(subSeed(seed, "mac"))),
	}
}

// subSeed maps (seed, purpose) to an independent stream seed.
func subSeed(seed int64, purpose string) int64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(seed))
	h.Write(buf[:])
	h.Write([]byte(purpose))
	return int64(h.Sum64() & (1<<62 - 1))
}
