package sim_test

import (
	"math/rand"
	"reflect"
	"testing"

	"adhocbcast/internal/fault"
	"adhocbcast/internal/geo"
	"adhocbcast/internal/graph"
	"adhocbcast/internal/hello"
	"adhocbcast/internal/obsv"
	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
	"adhocbcast/internal/view"
)

// TestEngineFastMatchesOracle is the differential correctness proof for the
// fast engine: for every protocol, under every simulator feature (loss,
// collisions+jitter, faults, NACK recovery, stale shared views, lossy
// per-node views with the conservative fallback, global views, metrics,
// tracing), the calendar-queue engine at worker counts 1, 2, and 8 must
// reproduce the oracle binary-heap engine bit-for-bit: identical Result,
// identical event trace, identical run metrics. Fast runs share one Arena
// across all protocols, scenarios, and worker counts, so hot-state reuse is
// exercised in the same breath.
func TestEngineFastMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net, err := geo.Generate(geo.Config{N: 60, AvgDegree: 6}, rng)
	if err != nil {
		t.Fatalf("generate network: %v", err)
	}
	// A stale snapshot: the same nodes after they moved.
	staleRng := rand.New(rand.NewSource(8))
	stale, err := geo.Generate(geo.Config{N: 60, AvgDegree: 6}, staleRng)
	if err != nil {
		t.Fatalf("generate stale topology: %v", err)
	}
	plan, err := fault.NewPlan(net.G, fault.Params{
		CrashFraction: 0.15,
		ChurnFraction: 0.10,
		LinkFraction:  0.10,
		Protect:       []int{0},
	}, 11)
	if err != nil {
		t.Fatalf("fault plan: %v", err)
	}
	vs, err := hello.Exchange(net.G, hello.Config{Rounds: 2, LossRate: 0.3, Seed: 17})
	if err != nil {
		t.Fatalf("hello exchange: %v", err)
	}

	scenarios := []struct {
		name string
		cfg  sim.Config
	}{
		{"clean", sim.Config{Hops: 2, Metric: view.MetricDegree, Seed: 1}},
		{"global-view", sim.Config{Hops: 0, Seed: 1}},
		{"loss", sim.Config{Hops: 2, LossRate: 0.3, Seed: 5}},
		{"collisions-jitter", sim.Config{Hops: 2, Collisions: true, TxJitter: 0.4, Seed: 9}},
		{"nack-loss", sim.Config{Hops: 2, LossRate: 0.3, NACKRecovery: true, Seed: 3}},
		{"faults", sim.Config{Hops: 2, Faults: plan, Seed: 2}},
		{"stale-view", sim.Config{Hops: 2, ViewTopology: stale.G, Seed: 4}},
		{"node-views-conservative", sim.Config{
			Hops:                 2,
			NodeViews:            vs.Graph,
			ViewIncomplete:       vs.Incomplete,
			ConservativeFallback: true,
			Seed:                 6,
		}},
	}
	protos := []func() sim.Protocol{
		protocol.Flooding,
		func() sim.Protocol { return protocol.Generic(protocol.TimingStatic) },
		func() sim.Protocol { return protocol.Generic(protocol.TimingFirstReceipt) },
		func() sim.Protocol { return protocol.Generic(protocol.TimingBackoffRandom) },
		func() sim.Protocol { return protocol.Generic(protocol.TimingBackoffDegree) },
		func() sim.Protocol { return protocol.GenericStrong(protocol.TimingBackoffRandom) },
		protocol.SelfPruningFR,
		protocol.NeighborDesignatingFR,
		protocol.HybridMaxDeg,
		protocol.HybridMinPri,
		protocol.WuLi,
		protocol.RuleK,
		protocol.Span,
		protocol.MPR,
		protocol.SBA,
		protocol.Stojmenovic,
		protocol.LimKimSelfPruning,
		protocol.LENWB,
		protocol.AHBP,
		protocol.DP,
		protocol.PDP,
		protocol.TDP,
	}

	arena := sim.NewArena()
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			for _, mk := range protos {
				p := mk()
				want, wantTrace, wantRec := runOnce(t, nil, net.G, p, sc.cfg, sim.EngineOracle, 0)
				for _, workers := range []int{1, 2, 8} {
					got, gotTrace, gotRec := runOnce(t, arena, net.G, mk(), sc.cfg, sim.EngineFast, workers)
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%s workers=%d: Result diverged\n fast:   %+v\n oracle: %+v",
							p.Name(), workers, got, want)
					}
					if !reflect.DeepEqual(gotTrace, wantTrace) {
						i := firstTraceDiff(gotTrace, wantTrace)
						t.Errorf("%s workers=%d: trace diverged at event %d (fast %d / oracle %d events)",
							p.Name(), workers, i, len(gotTrace), len(wantTrace))
					}
					if !reflect.DeepEqual(gotRec, wantRec) {
						t.Errorf("%s workers=%d: run metrics diverged", p.Name(), workers)
					}
				}
			}
		})
	}
}

func runOnce(t *testing.T, a *sim.Arena, g *graph.Graph, p sim.Protocol, cfg sim.Config,
	engine sim.EngineKind, workers int) (sim.Result, []sim.TraceEvent, *obsv.RunRecord) {
	t.Helper()
	rec := &sim.Recorder{}
	metrics := obsv.NewRunRecord()
	cfg.Engine = engine
	cfg.Workers = workers
	cfg.Observer = rec
	cfg.Metrics = metrics
	res, err := sim.RunWith(a, g, 0, p, cfg)
	if err != nil {
		t.Fatalf("%s (engine=%d workers=%d): %v", p.Name(), engine, workers, err)
	}
	return res, rec.Events(), metrics
}

func firstTraceDiff(a, b []sim.TraceEvent) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if !reflect.DeepEqual(a[i], b[i]) {
			return i
		}
	}
	return n
}
