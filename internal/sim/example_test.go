package sim_test

import (
	"fmt"

	"adhocbcast/internal/graph"
	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
)

// A complete broadcast in a few lines: on a five-node path the generic
// first-receipt algorithm forwards everywhere except the far leaf, which
// prunes itself.
func ExampleRun() {
	g := graph.New(5)
	for i := 0; i < 4; i++ {
		if err := g.AddEdge(i, i+1); err != nil {
			panic(err)
		}
	}
	res, err := sim.Run(g, 0, protocol.Generic(protocol.TimingFirstReceipt), sim.Config{Hops: 2})
	if err != nil {
		panic(err)
	}
	fmt.Printf("forwarded: %v\n", res.Forward)
	fmt.Printf("delivered: %d/%d\n", res.Delivered, res.N)
	// Output:
	// forwarded: [0 1 2 3]
	// delivered: 5/5
}
