package sim

import "adhocbcast/internal/core"

// Runtime is the narrow executor surface a broadcast protocol drives: deliver
// and transmit packets, set decision timers, finalize statuses, and read the
// per-node state the common bookkeeping maintains. Two executors implement it:
//
//   - *Network, the discrete-event simulator (this package), where one Runtime
//     value hosts every node and event ordering is fully deterministic; and
//   - the live executor (internal/runtime), where each node is a goroutine
//     with its own per-node Runtime, real timers, and a channel radio.
//
// A protocol written against Runtime therefore runs unchanged in both worlds.
// The contract mirrors the paper's locality property: every method a protocol
// calls while handling node v touches only v's own state (State(v), timers for
// v, v's transmission); a Runtime hosting a single node supports exactly that
// usage. Only Init-time iteration differs between executors, which is what
// ForEachLocalNode abstracts.
type Runtime interface {
	// N returns the network size (the global vertex-id space).
	N() int
	// ForEachLocalNode calls yield for every node this runtime hosts: all
	// nodes in the simulator, only the local node in a live per-node
	// runtime. Protocols with proactive (Init-time) per-node work iterate
	// with it instead of assuming every node is local.
	ForEachLocalNode(yield func(v int))
	// State returns the bookkeeping state of node v. Executors hosting a
	// single node serve only their own id.
	State(v int) *NodeState
	// SetTimer schedules an OnTimer callback for node v after delay (>= 0)
	// in simulation-time units.
	SetTimer(v int, delay float64)
	// MarkNonForward finalizes a non-forward decision for v.
	MarkNonForward(v int)
	// Transmit makes node v forward the broadcast packet now, carrying the
	// given designated forward set. A node transmits at most once.
	Transmit(v int, designated []int)
	// TransmitExtra is Transmit with a protocol-specific extra payload.
	TransmitExtra(v int, designated, extra []int)
	// RandomBackoff draws a uniform backoff delay from [0, BackoffWindow).
	RandomBackoff() float64
	// DegreeBackoff returns the FRBD backoff of node v, inversely
	// proportional to v's (view) degree.
	DegreeBackoff(v int) float64
	// ConservativeHold reports whether node v must refuse non-forward
	// status because its view is provably incomplete (the conservative
	// fallback of the imperfect-views pipeline).
	ConservativeHold(v int) bool
	// TakePreparedCovered returns and consumes a precomputed coverage
	// verdict for node v's pending timer, when the executor produced one
	// (the simulator's parallel precompute phase; live executors always
	// report ok=false).
	TakePreparedCovered(v int) (covered, ok bool)
	// Evaluator returns the runtime's scratch coverage-condition evaluator.
	// Protocol callbacks on one runtime value run sequentially, so the
	// shared instance is safe and allocation-free.
	Evaluator() *core.Evaluator
	// Now returns the current time in simulation units (wall-clock scaled
	// by the configured time scale on live executors).
	Now() float64
}

var _ Runtime = (*Network)(nil)

// N returns the network size.
func (net *Network) N() int { return net.G.N() }

// ForEachLocalNode implements Runtime: the simulator hosts every node.
func (net *Network) ForEachLocalNode(yield func(v int)) {
	for v := 0; v < net.G.N(); v++ {
		yield(v)
	}
}

// RecordReceipt records the delivery of one packet copy in the node's
// bookkeeping state: first-copy fields, last-packet tracking, and the receipt
// log. It reports whether this was the node's first copy. Both executors call
// it on every non-dropped delivery, before the protocol's OnReceive runs.
func (st *NodeState) RecordReceipt(r Receipt) (first bool) {
	first = !st.Received
	st.Received = true
	if first {
		st.FirstFrom = r.From
		st.FirstPacket = r.Packet
	}
	st.LastPacket = r.Packet
	st.Receipts = append(st.Receipts, r)
	return first
}

// SentPacket returns the packet this node transmitted (zero Packet before the
// node forwards). Recovery layers retransmit it on request.
func (st *NodeState) SentPacket() Packet { return st.sentPkt }

// RestoreSentPacket reinstates the transmitted packet from durable state
// (journal replay after a crash) so recovery retransmissions can serve it
// without the node forwarding again.
func (st *NodeState) RestoreSentPacket(pkt Packet) { st.sentPkt = pkt }

// BuildForwardPacket assembles the packet node st transmits when forwarding:
// the last delivered copy's trail extended with this node's own entry (its id
// and designated forward set), capped to the piggyback depth, plus the
// optional extra payload. The built packet is retained for recovery
// retransmissions (SentPacket). Both executors share this logic so a live
// node's packets are bit-identical to the simulator's.
func (st *NodeState) BuildForwardPacket(designated, extra []int, depth int) Packet {
	trail := st.LastPacket.Trail
	entry := TrailEntry{Node: st.ID, Designated: append([]int(nil), designated...)}
	newTrail := make([]TrailEntry, 0, len(trail)+1)
	newTrail = append(newTrail, trail...)
	newTrail = append(newTrail, entry)
	if len(newTrail) > depth {
		newTrail = newTrail[len(newTrail)-depth:]
	}
	pkt := Packet{
		Source:  st.LastPacket.Source,
		Session: st.LastPacket.Session,
		Trail:   newTrail,
		Extra:   extra,
	}
	st.sentPkt = pkt
	return pkt
}

// RetryBackoffDelay returns the bounded exponential backoff before recovery
// retransmission attempt (1-based): RetryBackoff * 2^(attempt-1), capped so a
// large retry budget cannot overflow the delay (see maxRetryExponent). Both
// executors use it so live recovery timing matches the simulator's.
func RetryBackoffDelay(base float64, attempt int) float64 {
	return retryBackoffDelay(base, attempt)
}

// MergeReceipt merges a delivered copy's broadcast state into node v's local
// view: the sender is marked visited (MAC-level snooping); the packet trail
// carries piggybacked visited nodes and their designated forward sets, which
// are merged with designation tracking. Merging is monotone (status only ever
// increases) and touches nothing but v's own state. The simulator calls it
// from its delivery path (including the fast engine's parallel pre-merge);
// the live executor calls it on each node's own goroutine.
func MergeReceipt(st *NodeState, v int, r Receipt) {
	st.View.MarkVisited(r.From)
	for _, entry := range r.Packet.Trail {
		st.View.MarkVisited(entry.Node)
		for _, d := range entry.Designated {
			if d == v {
				if !st.DesignatedByNode(entry.Node) {
					st.DesignatedBy = append(st.DesignatedBy, entry.Node)
				}
			}
			// A designated node (including this one) is promoted to the
			// intermediate 1.5 status of Section 4.2 under this view.
			st.View.MarkDesignated(d)
		}
	}
}
