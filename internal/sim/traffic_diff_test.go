package sim_test

import (
	"math/rand"
	"reflect"
	"testing"

	"adhocbcast/internal/fault"
	"adhocbcast/internal/geo"
	"adhocbcast/internal/obsv"
	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
	"adhocbcast/internal/traffic"
	"adhocbcast/internal/view"
)

// sessionSpecs converts a generated traffic plan to the simulator's session
// list.
func sessionSpecs(t *testing.T, plan *traffic.Plan, n int) []sim.SessionSpec {
	t.Helper()
	if err := plan.Validate(n); err != nil {
		t.Fatalf("traffic plan: %v", err)
	}
	specs := make([]sim.SessionSpec, len(plan.Messages))
	for i, m := range plan.Messages {
		specs[i] = sim.SessionSpec{Source: m.Source, At: m.At}
	}
	return specs
}

// TestTrafficFastMatchesOracle extends the engine differential proof to
// multi-session traffic runs: for every scenario — clean concurrency, the
// contention MAC (with and without queue caps, both drop policies, NACK
// recovery under contention), the legacy collision model, loss, and faults —
// the fast engine at worker counts 1, 2, and 8 must reproduce the oracle
// bit-for-bit: identical TrafficResult, identical event trace (sessions, MAC
// queue events, and all), identical run metrics.
func TestTrafficFastMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net, err := geo.Generate(geo.Config{N: 60, AvgDegree: 6}, rng)
	if err != nil {
		t.Fatalf("generate network: %v", err)
	}
	plan, err := fault.NewPlan(net.G, fault.Params{
		CrashFraction: 0.10,
		ChurnFraction: 0.10,
		LinkFraction:  0.10,
		Protect:       []int{0},
	}, 11)
	if err != nil {
		t.Fatalf("fault plan: %v", err)
	}
	poisson, err := traffic.Poisson(traffic.Config{N: 60, Sources: 6, Rate: 0.25, Horizon: 80, Seed: 42})
	if err != nil {
		t.Fatalf("poisson plan: %v", err)
	}
	bursts, err := traffic.Bursts(traffic.Config{N: 60, Sources: 4, Rate: 0.25, Horizon: 80, Seed: 43})
	if err != nil {
		t.Fatalf("burst plan: %v", err)
	}
	steady := sessionSpecs(t, poisson, 60)
	bursty := sessionSpecs(t, bursts, 60)

	scenarios := []struct {
		name     string
		sessions []sim.SessionSpec
		cfg      sim.Config
	}{
		{"clean", steady, sim.Config{Hops: 2, Metric: view.MetricDegree, Seed: 1}},
		{"carrier-sense", steady, sim.Config{Hops: 2, CarrierSense: true, Seed: 5}},
		{"cs-bursts", bursty, sim.Config{Hops: 2, CarrierSense: true, Seed: 9}},
		{"cs-queue-tail", bursty, sim.Config{Hops: 2, CarrierSense: true, TxQueueCap: 2, Seed: 2}},
		{"cs-queue-head", bursty, sim.Config{Hops: 2, CarrierSense: true, TxQueueCap: 2, DropOldest: true, Seed: 2}},
		{"cs-nack", steady, sim.Config{Hops: 2, CarrierSense: true, NACKRecovery: true, Seed: 3}},
		{"legacy-collisions", steady, sim.Config{Hops: 2, Collisions: true, TxJitter: 0.4, Seed: 4}},
		{"loss", steady, sim.Config{Hops: 2, LossRate: 0.3, Seed: 6}},
		{"cs-faults", steady, sim.Config{Hops: 2, CarrierSense: true, Faults: plan, Seed: 8}},
	}
	protos := []func() sim.Protocol{
		protocol.Flooding,
		func() sim.Protocol { return protocol.Generic(protocol.TimingFirstReceipt) },
		func() sim.Protocol { return protocol.Generic(protocol.TimingBackoffRandom) },
		func() sim.Protocol { return protocol.Generic(protocol.TimingBackoffDegree) },
		protocol.NeighborDesignatingFR,
		protocol.AHBP,
	}

	arena := sim.NewArena()
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			for _, mk := range protos {
				name := mk().Name()
				want, wantTrace, wantRec := runTrafficOnce(t, nil, net, sc.sessions, mk, sc.cfg, sim.EngineOracle, 0)
				for _, workers := range []int{1, 2, 8} {
					got, gotTrace, gotRec := runTrafficOnce(t, arena, net, sc.sessions, mk, sc.cfg, sim.EngineFast, workers)
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%s workers=%d: TrafficResult diverged\n fast:   %+v\n oracle: %+v",
							name, workers, got, want)
					}
					if !reflect.DeepEqual(gotTrace, wantTrace) {
						i := firstTraceDiff(gotTrace, wantTrace)
						t.Errorf("%s workers=%d: trace diverged at event %d (fast %d / oracle %d events)",
							name, workers, i, len(gotTrace), len(wantTrace))
					}
					if !reflect.DeepEqual(gotRec, wantRec) {
						t.Errorf("%s workers=%d: run metrics diverged", name, workers)
					}
				}
			}
		})
	}
}

func runTrafficOnce(t *testing.T, a *sim.Arena, net *geo.Network, sessions []sim.SessionSpec,
	mk func() sim.Protocol, cfg sim.Config, engine sim.EngineKind, workers int) (sim.TrafficResult, []sim.TraceEvent, *obsv.RunRecord) {
	t.Helper()
	rec := &sim.Recorder{}
	metrics := obsv.NewRunRecord()
	cfg.Engine = engine
	cfg.Workers = workers
	cfg.Observer = rec
	cfg.Metrics = metrics
	res, err := sim.RunTrafficWith(a, net.G, sessions, mk, cfg)
	if err != nil {
		t.Fatalf("traffic run (engine=%d workers=%d): %v", engine, workers, err)
	}
	return res, rec.Events(), metrics
}
