//go:build !simdebug

package sim

// debugChecks disables the event-loop invariant assertions in regular builds;
// build with -tags simdebug to enable them.
const debugChecks = false
