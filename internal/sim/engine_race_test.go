package sim_test

import (
	"math/rand"
	"reflect"
	"testing"

	"adhocbcast/internal/geo"
	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
)

// TestParallelEngineStress drives the multi-worker fast engine hard enough
// that `go test -race ./internal/sim/...` is meaningful: a network large
// enough for big same-instant batches, protocols that exercise both parallel
// paths (timer-verdict precompute via backoff timers, receive-side view
// premerge via first-receipt and static timing), several replicates through
// one shared Arena, and a determinism check that every worker count agrees.
func TestParallelEngineStress(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	net, err := geo.Generate(geo.Config{N: 400, AvgDegree: 10}, rng)
	if err != nil {
		t.Fatalf("generate network: %v", err)
	}
	protos := []func() sim.Protocol{
		// Synchronized first-receipt waves: the premerge path, with the
		// whole frontier arriving in one batch.
		func() sim.Protocol { return protocol.Generic(protocol.TimingFirstReceipt) },
		// Backoff timers: the timer-verdict precompute path.
		func() sim.Protocol { return protocol.Generic(protocol.TimingBackoffRandom) },
		func() sim.Protocol { return protocol.GenericStrong(protocol.TimingBackoffDegree) },
		// Static timing with premerged receives.
		func() sim.Protocol { return protocol.Generic(protocol.TimingStatic) },
	}
	arena := sim.NewArena()
	for _, mk := range protos {
		p := mk()
		t.Run(p.Name(), func(t *testing.T) {
			for rep := 0; rep < 3; rep++ {
				cfg := sim.Config{Hops: 2, Seed: int64(100 + rep)}
				var want sim.Result
				for i, workers := range []int{1, 4, 8} {
					cfg.Workers = workers
					res, err := sim.RunWith(arena, net.G, rep, mk(), cfg)
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					if i == 0 {
						want = res
						if !res.FullDelivery() {
							t.Fatalf("delivered %d of %d", res.Delivered, res.N)
						}
					} else if !reflect.DeepEqual(res, want) {
						t.Fatalf("workers=%d diverged from workers=1: %+v vs %+v",
							workers, res, want)
					}
				}
			}
		})
	}
}
