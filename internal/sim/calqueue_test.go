package sim

import (
	"container/heap"
	"math/rand"
	"testing"
	"testing/quick"
)

// calQueueMatchesHeap drives one calendar queue and one binary heap through
// an identical random interleaving of pushes and pops shaped like a
// simulation workload — same-instant batches, zero-delay timers, unit
// transmit delays, backoff multiples, and fractional jitter — and reports
// whether every pop agreed on (at, seq). Pushes respect the simulator's
// monotone-time invariant (an event is never scheduled before the last
// popped instant), which is the only contract the calendar queue requires.
func calQueueMatchesHeap(t *testing.T, seed int64) bool {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	width := []float64{1, 0.5, 2.5}[rng.Intn(3)]
	var cal calQueue
	var bin eventQueue
	// Two rounds through the same calendar queue exercise reset and the
	// bucket freelist, not just a pristine instance.
	for round := 0; round < 2; round++ {
		cal.reset(width)
		bin = bin[:0]
		now := 0.0
		seq := 0
		for step := 0; step < 400; step++ {
			if cal.size > 0 && rng.Intn(3) == 0 {
				a := cal.pop()
				b := heap.Pop(&bin).(*event)
				if a.at != b.at || a.seq != b.seq || a.at < now {
					return false
				}
				now = a.at
				continue
			}
			var at float64
			switch rng.Intn(4) {
			case 0:
				at = now // zero-delay timer
			case 1:
				at = now + width // unit transmit delay
			case 2:
				at = now + float64(rng.Intn(8))*width // backoff multiple
			default:
				at = now + rng.Float64()*width*3 // jittered arrival
			}
			// Same-instant batches of 1-3 events, like one transmission
			// fanning out to several neighbors.
			for k := 1 + rng.Intn(3); k > 0; k-- {
				seq++
				e := event{at: at, seq: seq, node: seq % 7}
				cal.push(e)
				ec := e
				heap.Push(&bin, &ec)
			}
		}
		for cal.size > 0 {
			a := cal.pop()
			b := heap.Pop(&bin).(*event)
			if a.at != b.at || a.seq != b.seq {
				return false
			}
		}
		if bin.Len() != 0 {
			return false
		}
	}
	return true
}

// TestCalQueueMatchesHeapQuick property-checks the calendar queue against
// the oracle binary heap: identical (at, seq) pop order over random
// push/pop interleavings.
func TestCalQueueMatchesHeapQuick(t *testing.T) {
	f := func(seed int64) bool { return calQueueMatchesHeap(t, seed) }
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(41))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// FuzzCalQueueMatchesHeap is the fuzz form of the same equivalence for
// deeper exploration with `go test -fuzz=CalQueue ./internal/sim/`.
func FuzzCalQueueMatchesHeap(f *testing.F) {
	for _, s := range []int64{0, 1, 42, -7, 1 << 40} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if !calQueueMatchesHeap(t, seed) {
			t.Fatalf("calendar queue diverged from binary heap (seed %d)", seed)
		}
	})
}

// TestCalQueueBoundaryClamp pins the defensive clamp directly: a push whose
// day quotient lands below the current bucket (unreachable through the
// public workflow, guarded against float-division surprises) files into the
// current bucket and still pops in exact (at, seq) order, because its
// timestamp is below everything the later buckets hold.
func TestCalQueueBoundaryClamp(t *testing.T) {
	var q calQueue
	q.reset(1.0)
	q.cur = 3 // as if time had advanced into day 3
	q.push(event{at: 3.5, seq: 1})
	q.push(event{at: 2.9, seq: 2}) // day 2 < cur: clamped into bucket 3
	q.push(event{at: 4.5, seq: 3})
	q.push(event{at: 2.9, seq: 4})
	q.push(event{at: 3.5, seq: 5})
	want := []int{2, 4, 1, 5, 3}
	for i, w := range want {
		if e := q.pop(); e.seq != w {
			t.Fatalf("pop %d: seq = %d, want %d", i, e.seq, w)
		}
	}
	if q.size != 0 {
		t.Fatalf("size = %d after draining", q.size)
	}
}
