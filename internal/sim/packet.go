package sim

// TrailEntry records one recently visited node carried in a broadcast
// packet, together with the designated forward set that node selected (see
// Figure 5 of the paper).
type TrailEntry struct {
	// Node is the visited node's id.
	Node int
	// Designated lists the forward neighbors Node selected, if any.
	Designated []int
}

// Packet is one copy of the broadcast packet as delivered to a neighbor.
type Packet struct {
	// Source is the broadcast originator.
	Source int
	// Session is the broadcast session id the packet belongs to (0 outside
	// multi-session traffic runs). BuildForwardPacket propagates it from
	// the delivered copy, so forwards and recovery retransmissions stay
	// tagged end to end.
	Session int
	// Trail lists the h most recently visited nodes, oldest first; the last
	// entry is the transmitting node itself.
	Trail []TrailEntry
	// Extra is an optional protocol-specific payload (e.g. TDP piggybacks
	// the sender's 2-hop neighbor set).
	Extra []int
}

// Sender returns the transmitting node of this packet copy.
func (p Packet) Sender() int {
	if len(p.Trail) == 0 {
		return p.Source
	}
	return p.Trail[len(p.Trail)-1].Node
}

// SenderDesignated returns the designated forward set selected by the
// transmitting node.
func (p Packet) SenderDesignated() []int {
	if len(p.Trail) == 0 {
		return nil
	}
	return p.Trail[len(p.Trail)-1].Designated
}

// Receipt is the delivery of one packet copy to a node.
type Receipt struct {
	// From is the transmitting neighbor.
	From int
	// At is the delivery time.
	At float64
	// Packet is the delivered packet.
	Packet Packet
}
