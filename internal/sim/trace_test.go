package sim_test

import (
	"strings"
	"testing"

	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
)

func TestRecorderOnPath(t *testing.T) {
	g := pathGraph(t, 4)
	rec := &sim.Recorder{}
	res, err := sim.Run(g, 0, protocol.Generic(protocol.TimingFirstReceipt),
		sim.Config{Hops: 2, Observer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FullDelivery() {
		t.Fatalf("delivered %d/%d", res.Delivered, res.N)
	}

	tx := rec.Transmissions()
	if len(tx) != res.ForwardCount() {
		t.Fatalf("recorded %d transmissions, result says %d", len(tx), res.ForwardCount())
	}
	for i, e := range tx {
		if e.Node != res.Forward[i] {
			t.Fatalf("transmission order mismatch: trace %v vs result %v", tx, res.Forward)
		}
	}

	// On a path 0-1-2-3, first deliveries happen at t = hop count.
	times := rec.DeliveryTimes()
	for v := 1; v <= 3; v++ {
		if times[v] != float64(v) {
			t.Fatalf("node %d first delivery at %v, want %d", v, times[v], v)
		}
	}
	// The source holds the packet from the start: t=0, not the t=2 echo of
	// node 1's retransmission.
	if times[0] != 0 {
		t.Fatalf("source first delivery at %v, want 0", times[0])
	}
	want := (0.0 + 1.0 + 2.0 + 3.0) / 4.0
	if got := rec.MeanDeliveryLatency(); got != want {
		t.Fatalf("mean latency = %v, want %v", got, want)
	}

	// The leaf (node 3) prunes itself: exactly one non-forward decision.
	nonForward := 0
	for _, e := range rec.Events() {
		if e.Kind == sim.TraceNonForward {
			nonForward++
			if e.Node != 3 {
				t.Fatalf("unexpected non-forward decision at node %d", e.Node)
			}
		}
	}
	if nonForward != 1 {
		t.Fatalf("non-forward decisions = %d, want 1", nonForward)
	}
}

func TestRecorderFormat(t *testing.T) {
	g := pathGraph(t, 3)
	rec := &sim.Recorder{}
	if _, err := sim.Run(g, 0, protocol.DP(), sim.Config{Hops: 2, Observer: rec}); err != nil {
		t.Fatal(err)
	}
	out := rec.Format()
	for _, want := range []string{"transmits", "receives from", "designating"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestRecorderEmpty(t *testing.T) {
	var rec sim.Recorder
	if rec.MeanDeliveryLatency() != 0 {
		t.Fatal("empty recorder latency not 0")
	}
	if len(rec.Events()) != 0 || len(rec.Transmissions()) != 0 {
		t.Fatal("empty recorder has events")
	}
}

func TestTraceEventKindString(t *testing.T) {
	if sim.TraceTransmit.String() != "transmit" ||
		sim.TraceDeliver.String() != "deliver" ||
		sim.TraceNonForward.String() != "non-forward" ||
		sim.TraceEventKind(0).String() != "unknown" {
		t.Fatal("kind names wrong")
	}
}

func TestObserverSeesLossFiltering(t *testing.T) {
	// With total loss, the observer sees the source transmission and no
	// deliveries.
	g := pathGraph(t, 3)
	rec := &sim.Recorder{}
	if _, err := sim.Run(g, 0, protocol.Flooding(), sim.Config{
		LossRate: 0.999999,
		Seed:     1,
		Observer: rec,
	}); err != nil {
		t.Fatal(err)
	}
	if len(rec.Transmissions()) != 1 {
		t.Fatalf("transmissions = %d, want 1", len(rec.Transmissions()))
	}
	// Only the source's own t=0 possession is recorded: no transmitted copy
	// survives the channel.
	times := rec.DeliveryTimes()
	if len(times) != 1 || times[0] != 0 {
		t.Fatalf("deliveries recorded despite total loss: %v", times)
	}
}

// TestSourceDeliveryAtZero pins the trace-latency bugfix on a 3-node path:
// the source's first delivery is reported at t=0 with sender -1, not at t=2
// when node 1's retransmission echoes back, and the echo does not displace
// it. Before the fix the source entry was the echo time, skewing
// MeanDeliveryLatency upward.
func TestSourceDeliveryAtZero(t *testing.T) {
	g := pathGraph(t, 3)
	rec := &sim.Recorder{}
	res, err := sim.Run(g, 0, protocol.Flooding(), sim.Config{Hops: 2, Observer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FullDelivery() {
		t.Fatalf("delivered %d/%d", res.Delivered, res.N)
	}
	times := rec.DeliveryTimes()
	if times[0] != 0 {
		t.Fatalf("source first delivery at %v, want 0", times[0])
	}
	events := rec.Events()
	if e := events[0]; e.Kind != sim.TraceDeliver || e.Node != 0 || e.At != 0 || e.From != -1 {
		t.Fatalf("first event is %+v, want source delivery at t=0 from -1", e)
	}
	// Flooding on a path: node 1 retransmits, its copy echoes to the source
	// at t=2; the first-delivery map must keep t=0.
	echo := false
	for _, e := range events[1:] {
		if e.Kind == sim.TraceDeliver && e.Node == 0 && e.At == 2 {
			echo = true
		}
	}
	if !echo {
		t.Fatal("expected the t=2 echo delivery at the source to still be traced")
	}
	if want := (0.0 + 1.0 + 2.0) / 3.0; rec.MeanDeliveryLatency() != want {
		t.Fatalf("mean latency = %v, want %v", rec.MeanDeliveryLatency(), want)
	}
}

// TestEventsDeepCopy pins the Recorder aliasing bugfix: mutating the
// Designated slice of a returned event must not corrupt the recorder's
// internal state or other returned copies.
func TestEventsDeepCopy(t *testing.T) {
	g := pathGraph(t, 4)
	rec := &sim.Recorder{}
	if _, err := sim.Run(g, 0, protocol.DP(), sim.Config{Hops: 2, Observer: rec}); err != nil {
		t.Fatal(err)
	}
	find := func(events []sim.TraceEvent) *sim.TraceEvent {
		for i := range events {
			if events[i].Kind == sim.TraceTransmit && len(events[i].Designated) > 0 {
				return &events[i]
			}
		}
		return nil
	}
	first := find(rec.Events())
	if first == nil {
		t.Fatal("no transmit event with a designated set")
	}
	want := append([]int(nil), first.Designated...)
	first.Designated[0] = -99
	if got := find(rec.Events()); got.Designated[0] != want[0] {
		t.Fatalf("mutating Events() result leaked into the recorder: got %v, want %v",
			got.Designated, want)
	}
	tx := find(rec.Transmissions())
	tx.Designated[0] = -77
	if got := find(rec.Transmissions()); got.Designated[0] != want[0] {
		t.Fatalf("mutating Transmissions() result leaked into the recorder: got %v, want %v",
			got.Designated, want)
	}
}
