package sim_test

import (
	"strings"
	"testing"

	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
)

func TestRecorderOnPath(t *testing.T) {
	g := pathGraph(t, 4)
	rec := &sim.Recorder{}
	res, err := sim.Run(g, 0, protocol.Generic(protocol.TimingFirstReceipt),
		sim.Config{Hops: 2, Observer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FullDelivery() {
		t.Fatalf("delivered %d/%d", res.Delivered, res.N)
	}

	tx := rec.Transmissions()
	if len(tx) != res.ForwardCount() {
		t.Fatalf("recorded %d transmissions, result says %d", len(tx), res.ForwardCount())
	}
	for i, e := range tx {
		if e.Node != res.Forward[i] {
			t.Fatalf("transmission order mismatch: trace %v vs result %v", tx, res.Forward)
		}
	}

	// On a path 0-1-2-3, first deliveries happen at t = hop count.
	times := rec.DeliveryTimes()
	for v := 1; v <= 3; v++ {
		if times[v] != float64(v) {
			t.Fatalf("node %d first delivery at %v, want %d", v, times[v], v)
		}
	}
	// The source hears node 1's retransmission echo at t=2.
	if times[0] != 2 {
		t.Fatalf("source echo delivery at %v, want 2", times[0])
	}
	want := (2.0 + 1.0 + 2.0 + 3.0) / 4.0
	if got := rec.MeanDeliveryLatency(); got != want {
		t.Fatalf("mean latency = %v, want %v", got, want)
	}

	// The leaf (node 3) prunes itself: exactly one non-forward decision.
	nonForward := 0
	for _, e := range rec.Events() {
		if e.Kind == sim.TraceNonForward {
			nonForward++
			if e.Node != 3 {
				t.Fatalf("unexpected non-forward decision at node %d", e.Node)
			}
		}
	}
	if nonForward != 1 {
		t.Fatalf("non-forward decisions = %d, want 1", nonForward)
	}
}

func TestRecorderFormat(t *testing.T) {
	g := pathGraph(t, 3)
	rec := &sim.Recorder{}
	if _, err := sim.Run(g, 0, protocol.DP(), sim.Config{Hops: 2, Observer: rec}); err != nil {
		t.Fatal(err)
	}
	out := rec.Format()
	for _, want := range []string{"transmits", "receives from", "designating"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestRecorderEmpty(t *testing.T) {
	var rec sim.Recorder
	if rec.MeanDeliveryLatency() != 0 {
		t.Fatal("empty recorder latency not 0")
	}
	if len(rec.Events()) != 0 || len(rec.Transmissions()) != 0 {
		t.Fatal("empty recorder has events")
	}
}

func TestTraceEventKindString(t *testing.T) {
	if sim.TraceTransmit.String() != "transmit" ||
		sim.TraceDeliver.String() != "deliver" ||
		sim.TraceNonForward.String() != "non-forward" ||
		sim.TraceEventKind(0).String() != "unknown" {
		t.Fatal("kind names wrong")
	}
}

func TestObserverSeesLossFiltering(t *testing.T) {
	// With total loss, the observer sees the source transmission and no
	// deliveries.
	g := pathGraph(t, 3)
	rec := &sim.Recorder{}
	if _, err := sim.Run(g, 0, protocol.Flooding(), sim.Config{
		LossRate: 0.999999,
		Seed:     1,
		Observer: rec,
	}); err != nil {
		t.Fatal(err)
	}
	if len(rec.Transmissions()) != 1 {
		t.Fatalf("transmissions = %d, want 1", len(rec.Transmissions()))
	}
	if len(rec.DeliveryTimes()) != 0 {
		t.Fatalf("deliveries recorded despite total loss: %v", rec.DeliveryTimes())
	}
}
