package sim_test

import (
	"strings"
	"testing"

	"adhocbcast/internal/graph"
	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
)

func mustGraph(t *testing.T, n int, edges [][2]int) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatalf("graph: %v", err)
	}
	return g
}

func runMAC(t *testing.T, g *graph.Graph, sessions []sim.SessionSpec, cfg sim.Config) (sim.TrafficResult, *sim.Recorder) {
	t.Helper()
	rec := &sim.Recorder{}
	cfg.CarrierSense = true
	cfg.Observer = rec
	res, err := sim.RunTraffic(g, sessions, protocol.Flooding, cfg)
	if err != nil {
		t.Fatalf("traffic run: %v", err)
	}
	return res, rec
}

// Hidden terminal: on the path 0-1-2 the endpoints cannot hear each other, so
// carrier sense lets both transmit at once and their copies collide at node 1.
// Without recovery, node 1 never gets either broadcast.
func TestMACHiddenTerminalCollides(t *testing.T) {
	g := mustGraph(t, 3, [][2]int{{0, 1}, {1, 2}})
	sessions := []sim.SessionSpec{{Source: 0, At: 0}, {Source: 2, At: 0}}
	res, _ := runMAC(t, g, sessions, sim.Config{Seed: 1})
	if res.Collided != 2 {
		t.Errorf("Collided = %d, want 2 (both copies garbled at node 1)", res.Collided)
	}
	// Each session delivered only at its own source: 2 of 6 pairs.
	if res.Delivered != 2 {
		t.Errorf("Delivered = %d, want 2", res.Delivered)
	}
	if res.Receipts+res.Lost+res.Collided+res.FaultDrops() != res.Copies {
		t.Errorf("conservation broken: %+v", res)
	}
}

// Simultaneous in-range starts collide too: on a triangle both sources sense
// an idle channel at t=0 (a transmission starting this instant is invisible)
// and garble each other at the third node — and at each other, half-duplex.
func TestMACSimultaneousInRangeStartsCollide(t *testing.T) {
	g := mustGraph(t, 3, [][2]int{{0, 1}, {0, 2}, {1, 2}})
	sessions := []sim.SessionSpec{{Source: 0, At: 0}, {Source: 1, At: 0}}
	res, _ := runMAC(t, g, sessions, sim.Config{Seed: 1})
	if res.Collided == 0 {
		t.Errorf("Collided = 0, want > 0: simultaneous starts must not serialize")
	}
	if res.MACDeferrals != 0 {
		t.Errorf("MACDeferrals = %d, want 0: neither source could sense the other's same-instant start", res.MACDeferrals)
	}
}

// A transmission already on the air defers an in-range transmit attempt.
func TestMACCarrierSenseDefers(t *testing.T) {
	g := mustGraph(t, 3, [][2]int{{0, 1}, {0, 2}, {1, 2}})
	// Session 2 is injected mid-flight of session 1's source transmission.
	sessions := []sim.SessionSpec{{Source: 0, At: 0}, {Source: 1, At: 0.5}}
	res, _ := runMAC(t, g, sessions, sim.Config{Seed: 1})
	if res.MACDeferrals == 0 {
		t.Errorf("MACDeferrals = 0, want > 0: node 1 must sense node 0's transmission")
	}
	if res.Delivered != 6 {
		t.Errorf("Delivered = %d, want 6: deferral avoids the collision entirely", res.Delivered)
	}
}

// Tail drop: a full queue drops arriving packets and records the cause.
func TestMACQueueTailDrop(t *testing.T) {
	g := mustGraph(t, 2, [][2]int{{0, 1}})
	sessions := make([]sim.SessionSpec, 4)
	for i := range sessions {
		sessions[i] = sim.SessionSpec{Source: 0, At: 0}
	}
	res, rec := runMAC(t, g, sessions, sim.Config{Seed: 1, TxQueueCap: 1})
	if res.QueueDrops == 0 {
		t.Fatalf("QueueDrops = 0, want > 0 with TxQueueCap=1 and 4 same-instant sessions")
	}
	found := false
	for _, e := range rec.Events() {
		if e.Kind == sim.TraceQueueDrop {
			if e.Cause != sim.QueueDropTail {
				t.Errorf("queue-drop cause = %v, want tail", e.Cause)
			}
			found = true
		}
	}
	if !found {
		t.Errorf("no queue-drop trace event recorded")
	}
	if !strings.Contains(rec.Format(), "drops a queued transmission (tail)") {
		t.Errorf("Format() missing queue-drop line:\n%s", rec.Format())
	}
}

// DropOldest evicts the head instead: the cause flips and the newest packets
// survive (the last session injected still gets delivered to node 1).
func TestMACQueueHeadDrop(t *testing.T) {
	g := mustGraph(t, 2, [][2]int{{0, 1}})
	sessions := make([]sim.SessionSpec, 4)
	for i := range sessions {
		sessions[i] = sim.SessionSpec{Source: 0, At: 0}
	}
	res, rec := runMAC(t, g, sessions, sim.Config{Seed: 1, TxQueueCap: 1, DropOldest: true})
	if res.QueueDrops == 0 {
		t.Fatalf("QueueDrops = 0, want > 0")
	}
	for _, e := range rec.Events() {
		if e.Kind == sim.TraceQueueDrop && e.Cause != sim.QueueDropHead {
			t.Errorf("queue-drop cause = %v, want head", e.Cause)
		}
	}
	// The last-injected session's packet survived the evictions.
	lastDelivered := false
	for _, e := range rec.Events() {
		if e.Kind == sim.TraceDeliver && e.Session == 3 && e.Node == 1 {
			lastDelivered = true
		}
	}
	if !lastDelivered {
		t.Errorf("newest session not delivered under DropOldest")
	}
}

// NACK recovery under contention: hidden-terminal collisions are repaired by
// retransmissions that themselves go through the MAC queue.
func TestMACNACKRecoversCollisions(t *testing.T) {
	g := mustGraph(t, 3, [][2]int{{0, 1}, {1, 2}})
	sessions := []sim.SessionSpec{{Source: 0, At: 0}, {Source: 2, At: 0}}
	res, _ := runMAC(t, g, sessions, sim.Config{Seed: 1, NACKRecovery: true, RetryBudget: 4})
	if res.NACKs == 0 || res.Retransmits == 0 {
		t.Fatalf("recovery idle: NACKs=%d Retransmits=%d", res.NACKs, res.Retransmits)
	}
	if res.Delivered != 2*3 {
		t.Errorf("Delivered = %d, want 6: recovery should repair the hidden-terminal collision (res %+v)", res.Delivered, res)
	}
}

// Session ids ride packets end to end: every delivery of session 1 is tagged.
func TestTrafficSessionTagging(t *testing.T) {
	g := mustGraph(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	sessions := []sim.SessionSpec{{Source: 0, At: 0}, {Source: 0, At: 10}}
	rec := &sim.Recorder{}
	res, err := sim.RunTraffic(g, sessions, protocol.Flooding, sim.Config{Seed: 1, Observer: rec})
	if err != nil {
		t.Fatalf("traffic run: %v", err)
	}
	if res.Delivered != 8 {
		t.Fatalf("Delivered = %d, want 8", res.Delivered)
	}
	// OnDeliver fires per delivered copy; count distinct reached nodes per
	// session.
	starts := 0
	reached := map[int]map[int]bool{}
	for _, e := range rec.Events() {
		switch e.Kind {
		case sim.TraceSessionStart:
			starts++
		case sim.TraceDeliver:
			if reached[e.Session] == nil {
				reached[e.Session] = map[int]bool{}
			}
			reached[e.Session][e.Node] = true
		}
	}
	if starts != 2 {
		t.Errorf("session-start events = %d, want 2", starts)
	}
	if len(reached) != 2 || len(reached[0]) != 4 || len(reached[1]) != 4 {
		t.Errorf("per-session reached nodes = %v, want all 4 nodes in both sessions", reached)
	}
}

// Config validation: the contention MAC is explicit opt-in and mutually
// exclusive with the legacy models it replaces.
func TestMACConfigValidation(t *testing.T) {
	g := mustGraph(t, 2, [][2]int{{0, 1}})
	bad := []sim.Config{
		{CarrierSense: true, Collisions: true},
		{CarrierSense: true, TxJitter: 0.5},
		{CarrierSense: true, TxQueueCap: -1},
		{CarrierSense: true, CSBackoffSlots: -2},
		{TxQueueCap: 3},
		{DropOldest: true},
		{CSBackoffSlots: 2},
	}
	for i, cfg := range bad {
		if _, err := sim.Run(g, 0, protocol.Flooding(), cfg); err == nil {
			t.Errorf("config %d accepted, want error: %+v", i, cfg)
		}
	}
	if _, err := sim.Run(g, 0, protocol.Flooding(), sim.Config{CarrierSense: true}); err != nil {
		t.Errorf("bare CarrierSense rejected: %v", err)
	}
}

// Traffic-run input validation.
func TestRunTrafficValidation(t *testing.T) {
	g := mustGraph(t, 2, [][2]int{{0, 1}})
	mk := protocol.Flooding
	if _, err := sim.RunTraffic(g, nil, mk, sim.Config{}); err == nil {
		t.Errorf("empty session list accepted")
	}
	if _, err := sim.RunTraffic(g, []sim.SessionSpec{{Source: 0}}, nil, sim.Config{}); err == nil {
		t.Errorf("nil protocol factory accepted")
	}
	if _, err := sim.RunTraffic(g, []sim.SessionSpec{{Source: 5}}, mk, sim.Config{}); err == nil {
		t.Errorf("out-of-range source accepted")
	}
	if _, err := sim.RunTraffic(g, []sim.SessionSpec{{Source: 0, At: 3}, {Source: 0, At: 1}}, mk, sim.Config{}); err == nil {
		t.Errorf("decreasing injection times accepted")
	}
	if _, err := sim.RunTraffic(g, []sim.SessionSpec{{Source: 0}}, mk, sim.Config{
		NodeViews: func(v int) *graph.Graph { return g },
	}); err == nil {
		t.Errorf("per-node views accepted in traffic run")
	}
}
