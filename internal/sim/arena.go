package sim

import (
	"adhocbcast/internal/core"
	"adhocbcast/internal/graph"
	"adhocbcast/internal/view"
)

// Arena owns the fast engine's reusable hot state: the flat per-node state
// array, the calendar event queue, batch and collision scratch, coverage
// evaluators, and a cache of built local views. One Arena serves one run at a
// time; passing the same Arena to consecutive RunWith calls reuses every
// allocation, which is what makes large replication sweeps allocation-free in
// steady state.
//
// The view cache is keyed by (topology pointer, hops, metric): a run over the
// same key reuses the built views after clearing their learned status marks.
// Callers that mutate a graph in place between runs must therefore pass a new
// *graph.Graph (or a nil Arena) so the cache cannot serve stale views.
type Arena struct {
	nodes   []NodeState
	cal     calQueue
	builder *view.Builder

	// View cache (shared-topology modes; NodeViews runs bypass it).
	viewG      *graph.Graph
	viewHops   int
	viewMetric view.Metric
	views      []*view.Local
	base       []view.Priority

	// Coverage evaluators: one shared sequential instance plus one private
	// instance per precompute worker. Evaluators grow on demand, so one set
	// serves runs of any size.
	eval    *core.Evaluator
	wrkEval []*core.Evaluator

	// Event-loop scratch.
	batch      []event  // fast engine same-instant batch
	obatch     []*event // oracle engine collision batch
	arrCnt     []int32  // per-node same-instant arrival counts
	arrTouched []int    // nodes with non-zero arrCnt entries
	prepared   []int8   // precomputed timer verdicts: -1 none, 0/1 verdict
	evtKind    []uint8  // per-node batch event classification bits
	evtTouched []int    // nodes with non-zero evtKind entries
	timerIdx   []int    // batch indices of precomputable timer events

	// Contention-MAC scratch (CarrierSense runs; see Network.resetMAC).
	busyUntil   []float64
	airEnd      []float64
	garbleUntil []float64
	txPending   []bool
	txq         []txRing
}

// NewArena returns an empty Arena ready for RunWith.
func NewArena() *Arena {
	return &Arena{builder: view.NewBuilder()}
}

// stateNodes returns the flat node-state array resized and reset for an
// n-node run. Receipt and designation slices keep their capacity across runs.
func (a *Arena) stateNodes(n int) []NodeState {
	if cap(a.nodes) < n {
		a.nodes = make([]NodeState, n)
	}
	nodes := a.nodes[:n]
	for v := range nodes {
		st := &nodes[v]
		*st = NodeState{
			ID:           v,
			FirstFrom:    -1,
			Receipts:     st.Receipts[:0],
			DesignatedBy: st.DesignatedBy[:0],
		}
	}
	a.nodes = nodes
	return nodes
}

// viewsFor returns one local view per node built from vg, serving them from
// the cache (with learned marks cleared) when the key matches the previous
// run.
func (a *Arena) viewsFor(vg *graph.Graph, hops int, metric view.Metric) ([]*view.Local, []view.Priority) {
	n := vg.N()
	if a.viewG == vg && a.viewHops == hops && a.viewMetric == metric && len(a.views) == n {
		for _, lv := range a.views {
			lv.ResetStatus()
		}
		return a.views, a.base
	}
	a.viewG, a.viewHops, a.viewMetric = vg, hops, metric
	a.base = view.BasePriorities(vg, metric)
	views := a.views[:0]
	for v := 0; v < n; v++ {
		views = append(views, a.builder.Build(vg, v, hops, a.base))
	}
	a.views = views
	return views, a.base
}

// evaluator returns the run's shared sequential coverage evaluator.
func (a *Arena) evaluator(n int) *core.Evaluator {
	if a.eval == nil {
		a.eval = core.NewEvaluator(n)
	}
	return a.eval
}

// workerEvals returns w private evaluators for the parallel precompute phase.
func (a *Arena) workerEvals(w, n int) []*core.Evaluator {
	for len(a.wrkEval) < w {
		a.wrkEval = append(a.wrkEval, core.NewEvaluator(n))
	}
	return a.wrkEval[:w]
}

// ensureMACScratch sizes the contention-MAC scratch for an n-node run. The
// five arrays are always (re)allocated together, so one capacity check
// suffices; Network.resetMAC clears the entries it will use.
func (a *Arena) ensureMACScratch(n int) {
	if cap(a.busyUntil) < n {
		a.busyUntil = make([]float64, n)
		a.airEnd = make([]float64, n)
		a.garbleUntil = make([]float64, n)
		a.txPending = make([]bool, n)
		a.txq = make([]txRing, n)
	}
	a.busyUntil = a.busyUntil[:n]
	a.airEnd = a.airEnd[:n]
	a.garbleUntil = a.garbleUntil[:n]
	a.txPending = a.txPending[:n]
	a.txq = a.txq[:n]
}

// ensureLoopScratch sizes the batch-processing scratch for an n-node run.
// The count and classification arrays rely on their users to zero touched
// entries after every batch, so reuse needs no clearing pass here.
func (a *Arena) ensureLoopScratch(n int, workers bool) {
	if cap(a.arrCnt) < n {
		a.arrCnt = make([]int32, n)
	}
	a.arrCnt = a.arrCnt[:n]
	if !workers {
		return
	}
	if cap(a.evtKind) < n {
		a.evtKind = make([]uint8, n)
	}
	a.evtKind = a.evtKind[:n]
	if cap(a.prepared) < n {
		a.prepared = make([]int8, n)
		for i := range a.prepared {
			a.prepared[i] = -1
		}
	}
	a.prepared = a.prepared[:n]
}
