// Package sim is the discrete-event broadcast simulator: every transmission
// is heard by all neighbors after a unit delay, per-node local views carry
// snooped and piggybacked broadcast state, timers implement the backoff
// policies, and event ordering is fully deterministic. The MAC is
// collision-free by default (the paper's evaluation setup); optional loss,
// collision, and jitter models support the reliability experiments, an
// optional stale view topology supports the mobility experiments, an optional
// fault plan injects node crashes, churn, and link outages, and an optional
// NACK-based recovery layer retransmits dropped copies. Protocols plug in
// through the Protocol interface; the simulator owns all common bookkeeping
// (view construction, visited/designated marking, delivery accounting).
package sim

import (
	"fmt"
	"math"

	"adhocbcast/internal/fault"
	"adhocbcast/internal/graph"
	"adhocbcast/internal/hello"
	"adhocbcast/internal/obsv"
	"adhocbcast/internal/view"
)

// EngineKind selects the event-loop implementation a run uses.
type EngineKind int

const (
	// EngineFast is the default engine: a bucketed calendar queue of
	// value-typed events, flat per-node hot state reused across runs, and
	// optional worker-sharded same-instant precomputation (Workers). Its
	// results are bit-identical to EngineOracle for every configuration
	// and worker count.
	EngineFast EngineKind = iota
	// EngineOracle is the original single binary-heap engine, kept as the
	// sequential oracle for differential testing.
	EngineOracle
)

// ViewProvider supplies node v's private view topology: the graph node v
// believes the network to be, on the global vertex numbering. Providers are
// called once per node at run setup and must be pure (same v, same graph) for
// runs to be reproducible; hello.Views.Graph satisfies the signature.
type ViewProvider func(v int) *graph.Graph

// Config holds the physical and view-formation parameters of a run.
type Config struct {
	// Observer, when non-nil, receives transmit/deliver/non-forward events
	// as they happen (see Recorder for a ready-made implementation).
	Observer Observer
	// Metrics, when non-nil, is populated with the run's counters, the
	// first-delivery latency histogram, and the forward-set size
	// distribution (see obsv.RunRecord). The record is Reset at the start
	// of the run so one allocation can serve a whole sweep. Nil (the
	// default) skips all metric work and keeps runs byte-identical to the
	// uninstrumented simulator.
	Metrics *obsv.RunRecord
	// ViewTopology, when non-nil, is the (possibly stale) topology the
	// local views are built from, while transmissions propagate over the
	// actual graph passed to Run. It models views assembled from hello
	// messages exchanged before the nodes moved. Nil means views match the
	// actual topology (the paper's static evaluation assumption).
	ViewTopology *graph.Graph
	// NodeViews, when non-nil, gives every node its own private (divergent,
	// possibly wrong) view topology, modeling views assembled from a *lossy*
	// hello exchange: local views and priority metrics are built per node
	// from its own graph. Mutually exclusive with ViewTopology, which models
	// one shared stale snapshot. Nil means no per-node views.
	NodeViews ViewProvider
	// ViewIncomplete, when non-nil, reports whether node v knows its own
	// view may be missing links (e.g. it counted fewer hello receipts than
	// exchange rounds; see hello.Views.Incomplete). It is consulted by the
	// conservative fallback and the metrics layer only — a nil func means no
	// node can prove anything about its view.
	ViewIncomplete func(v int) bool
	// ConservativeFallback enables the robustness mechanism mirroring the
	// paper's default-forward safety property: a node whose view is provably
	// incomplete (ViewIncomplete) refuses non-forward status and forwards
	// when its turn comes, trading redundancy for the delivery that wrong
	// pruning decisions would lose. Requires ViewIncomplete or DynamicHello.
	// Default off, which keeps every paper figure byte-identical.
	ConservativeFallback bool
	// DynamicHello, when non-nil, models periodic hello maintenance after
	// the initial exchange: every node beacons each hello.Dynamic.Interval,
	// beacons are lost per receiver by the pure (Seed, recv, from, round)
	// hash of hello.Dynamic.Received, and a node that has not heard a
	// view-neighbor for longer than the expiry considers its view provably
	// stale. With ConservativeFallback set, stale-view nodes hold their
	// forwarding (refuse non-forward status) until the view is fresh again —
	// the same view-repair semantics the live runtime implements with real
	// timers, so seed-matched sim and live runs agree on every stale hold.
	// Nil (the default) keeps every paper figure byte-identical.
	DynamicHello *hello.Dynamic
	// Hops is the k of the k-hop local views; 0 or negative selects the
	// global view.
	Hops int
	// Metric selects the priority metric (default view.MetricID).
	Metric view.Metric
	// PiggybackDepth is h, the number of most recently visited nodes (with
	// their designated sets) carried in the broadcast packet. Default 2.
	// Negative disables piggybacking entirely (only MAC-level snooping of
	// the sender remains).
	PiggybackDepth int
	// BackoffWindow is the maximum backoff delay, in transmission slots,
	// used by backoff-based timing policies. Default 8: large enough that a
	// backing-off node usually hears some same-wave neighbors forward
	// before deciding, which is the entire point of FRB/FRBD.
	BackoffWindow float64
	// TransmitDelay is the time for a transmission to reach all neighbors.
	// Default 1.
	TransmitDelay float64
	// Engine selects the event-loop implementation. The default EngineFast
	// and the EngineOracle reference produce bit-identical results; the
	// oracle exists for differential testing and as the readable spec.
	Engine EngineKind
	// Workers is the number of goroutines the fast engine may use to
	// precompute same-instant work (pending-timer coverage verdicts and
	// receive-side view merges) before the sequential dispatch pass. 0 and
	// 1 both mean fully sequential. Results are bit-identical for any
	// worker count; EngineOracle ignores the field. With Workers > 1,
	// ViewIncomplete (if set) must be safe for concurrent calls.
	Workers int
	// Seed drives the run's private RNG streams. Each stochastic model
	// (backoff, jitter, loss, recovery) draws from its own stream derived
	// from Seed, so enabling one model never perturbs the draws of the
	// others. The backoff stream is seeded with Seed itself, keeping runs
	// without jitter or loss bit-identical to the historical single-stream
	// simulator.
	Seed int64

	// The fields below model an unreliable MAC layer for reliability
	// experiments (the paper's Section 1 discussion and its companion
	// work). All default to off, which reproduces the paper's collision-
	// free evaluation setup.

	// LossRate is an independent per-receipt loss probability in [0, 1).
	LossRate float64
	// Collisions, when true, drops every copy that arrives at a receiver
	// simultaneously with another copy (a CSMA-less broadcast collision).
	// It is the legacy all-or-nothing channel model, kept as a
	// compatibility mode; CarrierSense is the contention-aware
	// generalization, and the two are mutually exclusive.
	Collisions bool
	// TxJitter adds a uniform random delay in [0, TxJitter) to each
	// transmission, de-synchronizing retransmission waves (the "small
	// forwarding jitter delay" that relieves collisions).
	TxJitter float64

	// The fields below enable the contention-aware MAC of the heavy-traffic
	// experiments (see docs/traffic-model.md): per-node FIFO transmit
	// queues and a carrier-sense + slotted-backoff channel where
	// overlapping in-range transmissions garble each other. All default to
	// off, which keeps every paper figure and golden byte-identical.

	// CarrierSense enables the contention-aware MAC: Transmit hands the
	// packet to the node's FIFO transmit queue, the head transmits only
	// when no in-range transmission started strictly earlier is still on
	// the air (a radio cannot sense a transmission that starts at the same
	// instant, so simultaneous starts collide), a busy channel defers the
	// attempt by a slotted random backoff, and copies whose air time
	// overlaps another in-range transmission are dropped as collided —
	// including hidden-terminal overlaps carrier sensing cannot prevent.
	// Mutually exclusive with Collisions and TxJitter (the contention MAC
	// is slotted; jitter would move arrivals off the slot grid).
	CarrierSense bool
	// TxQueueCap caps each node's transmit queue (only meaningful with
	// CarrierSense). 0 means unbounded; with a positive cap, an enqueue to
	// a full queue drops a packet according to DropOldest and is counted
	// in Result.QueueDrops.
	TxQueueCap int
	// DropOldest selects the overflow policy of a full transmit queue:
	// false (default) drops the arriving packet (tail drop), true evicts
	// the queue head to admit the arrival (head drop, favoring fresh
	// traffic under overload).
	DropOldest bool
	// CSBackoffSlots is the slotted backoff window W of the contention
	// MAC: a node that senses the channel busy retries after a uniform
	// 1..W whole transmission slots (default 4). Draws come from a
	// dedicated "mac" RNG stream, so enabling contention never perturbs
	// the backoff, jitter, loss, or fault streams.
	CSBackoffSlots int

	// Faults, when non-nil, is a deterministic fault plan (node crashes,
	// churn, link outages) the run honors: copies arriving at a down node
	// or over a down link are dropped and accounted by cause, timers of
	// down nodes are cancelled, and down nodes never transmit. The plan is
	// read-only and may be shared across runs. Nil reproduces the fault-
	// free behavior exactly.
	Faults *fault.Plan

	// NACKRecovery enables the NACK-based recovery layer: a receiver that
	// detects a garbled copy (loss or collision — it overheard a forward
	// it never got) requests a retransmission from the sender over a
	// reliable control channel; the sender retries unicast with exponential
	// backoff until the copy lands or the per-link retry budget runs out.
	// Default off, which keeps every paper figure bit-identical.
	NACKRecovery bool
	// RetryBudget caps recovery retransmissions per (sender, receiver)
	// link. Default 3 (only meaningful with NACKRecovery).
	RetryBudget int
	// NACKDelay is the time from a detected drop to the request reaching
	// the sender (detection plus control transit). Default 0.5 slots.
	NACKDelay float64
	// RetryBackoff is the base retry delay: retransmission k is sent
	// RetryBackoff * 2^(k-1) after its request arrives. Default 1 slot.
	RetryBackoff float64
}

// validate rejects configurations that would silently misbehave: out-of-range
// loss rates, negative delay windows, and malformed fault plans. n is the
// network size the fault plan must match.
func (c Config) validate(n int) error {
	if c.LossRate < 0 || c.LossRate >= 1 || math.IsNaN(c.LossRate) {
		return fmt.Errorf("sim: LossRate %v outside [0,1)", c.LossRate)
	}
	if c.TxJitter < 0 || math.IsNaN(c.TxJitter) {
		return fmt.Errorf("sim: negative TxJitter %v", c.TxJitter)
	}
	if c.RetryBudget < 0 {
		return fmt.Errorf("sim: negative RetryBudget %d", c.RetryBudget)
	}
	if c.NACKDelay < 0 || math.IsNaN(c.NACKDelay) {
		return fmt.Errorf("sim: negative NACKDelay %v", c.NACKDelay)
	}
	if c.RetryBackoff < 0 || math.IsNaN(c.RetryBackoff) {
		return fmt.Errorf("sim: negative RetryBackoff %v", c.RetryBackoff)
	}
	if c.Engine != EngineFast && c.Engine != EngineOracle {
		return fmt.Errorf("sim: unknown Engine %d", c.Engine)
	}
	if c.CarrierSense && c.Collisions {
		return fmt.Errorf("sim: CarrierSense and Collisions are mutually exclusive: " +
			"one channel model per run (Collisions is the legacy compatibility mode)")
	}
	if c.CarrierSense && c.TxJitter > 0 {
		return fmt.Errorf("sim: TxJitter is incompatible with CarrierSense " +
			"(the contention MAC is slotted; jitter would move arrivals off the slot grid)")
	}
	if c.TxQueueCap < 0 {
		return fmt.Errorf("sim: negative TxQueueCap %d", c.TxQueueCap)
	}
	if c.CSBackoffSlots < 0 {
		return fmt.Errorf("sim: negative CSBackoffSlots %d", c.CSBackoffSlots)
	}
	if !c.CarrierSense && (c.TxQueueCap != 0 || c.DropOldest || c.CSBackoffSlots != 0) {
		return fmt.Errorf("sim: TxQueueCap/DropOldest/CSBackoffSlots require CarrierSense")
	}
	if c.Workers < 0 {
		return fmt.Errorf("sim: negative Workers %d", c.Workers)
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(n); err != nil {
			return fmt.Errorf("sim: invalid fault plan: %w", err)
		}
	}
	if c.ViewTopology != nil && c.ViewTopology.N() != n {
		return fmt.Errorf("sim: view topology has %d nodes, network has %d",
			c.ViewTopology.N(), n)
	}
	if c.ViewTopology != nil && c.NodeViews != nil {
		return fmt.Errorf("sim: ViewTopology and NodeViews are mutually exclusive: " +
			"one global stale snapshot or per-node views, not both")
	}
	if c.ConservativeFallback && c.ViewIncomplete == nil && c.DynamicHello == nil {
		return fmt.Errorf("sim: ConservativeFallback requires ViewIncomplete or DynamicHello " +
			"(no node can prove its view incomplete or stale, so the fallback would silently never fire)")
	}
	if c.DynamicHello != nil {
		if err := c.DynamicHello.WithDefaults().Validate(); err != nil {
			return fmt.Errorf("sim: invalid DynamicHello: %w", err)
		}
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.Metric == 0 {
		c.Metric = view.MetricID
	}
	if c.PiggybackDepth == 0 {
		c.PiggybackDepth = 2
	}
	if c.PiggybackDepth < 0 {
		c.PiggybackDepth = 0
	}
	if c.BackoffWindow <= 0 {
		c.BackoffWindow = 8
	}
	if c.TransmitDelay <= 0 {
		c.TransmitDelay = 1
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 3
	}
	if c.NACKDelay == 0 {
		c.NACKDelay = 0.5
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 1
	}
	if c.CSBackoffSlots == 0 {
		c.CSBackoffSlots = 4
	}
	if c.DynamicHello != nil {
		d := c.DynamicHello.WithDefaults()
		c.DynamicHello = &d
	}
	return c
}
