// Package sim is the discrete-event broadcast simulator: every transmission
// is heard by all neighbors after a unit delay, per-node local views carry
// snooped and piggybacked broadcast state, timers implement the backoff
// policies, and event ordering is fully deterministic. The MAC is
// collision-free by default (the paper's evaluation setup); optional loss,
// collision, and jitter models support the reliability experiments, and an
// optional stale view topology supports the mobility experiments. Protocols
// plug in through the Protocol interface; the simulator owns all common
// bookkeeping (view construction, visited/designated marking, delivery
// accounting).
package sim

import (
	"adhocbcast/internal/graph"
	"adhocbcast/internal/view"
)

// Config holds the physical and view-formation parameters of a run.
type Config struct {
	// Observer, when non-nil, receives transmit/deliver/non-forward events
	// as they happen (see Recorder for a ready-made implementation).
	Observer Observer
	// ViewTopology, when non-nil, is the (possibly stale) topology the
	// local views are built from, while transmissions propagate over the
	// actual graph passed to Run. It models views assembled from hello
	// messages exchanged before the nodes moved. Nil means views match the
	// actual topology (the paper's static evaluation assumption).
	ViewTopology *graph.Graph
	// Hops is the k of the k-hop local views; 0 or negative selects the
	// global view.
	Hops int
	// Metric selects the priority metric (default view.MetricID).
	Metric view.Metric
	// PiggybackDepth is h, the number of most recently visited nodes (with
	// their designated sets) carried in the broadcast packet. Default 2.
	// Negative disables piggybacking entirely (only MAC-level snooping of
	// the sender remains).
	PiggybackDepth int
	// BackoffWindow is the maximum backoff delay, in transmission slots,
	// used by backoff-based timing policies. Default 8: large enough that a
	// backing-off node usually hears some same-wave neighbors forward
	// before deciding, which is the entire point of FRB/FRBD.
	BackoffWindow float64
	// TransmitDelay is the time for a transmission to reach all neighbors.
	// Default 1.
	TransmitDelay float64
	// Seed drives the run's private RNG (backoff jitter, loss draws).
	Seed int64

	// The fields below model an unreliable MAC layer for reliability
	// experiments (the paper's Section 1 discussion and its companion
	// work). All default to off, which reproduces the paper's collision-
	// free evaluation setup.

	// LossRate is an independent per-receipt loss probability in [0, 1).
	LossRate float64
	// Collisions, when true, drops every copy that arrives at a receiver
	// simultaneously with another copy (a CSMA-less broadcast collision).
	Collisions bool
	// TxJitter adds a uniform random delay in [0, TxJitter) to each
	// transmission, de-synchronizing retransmission waves (the "small
	// forwarding jitter delay" that relieves collisions).
	TxJitter float64
}

func (c Config) withDefaults() Config {
	if c.Metric == 0 {
		c.Metric = view.MetricID
	}
	if c.PiggybackDepth == 0 {
		c.PiggybackDepth = 2
	}
	if c.PiggybackDepth < 0 {
		c.PiggybackDepth = 0
	}
	if c.BackoffWindow <= 0 {
		c.BackoffWindow = 8
	}
	if c.TransmitDelay <= 0 {
		c.TransmitDelay = 1
	}
	return c
}
