package sim_test

import (
	"math/rand"
	"testing"

	"adhocbcast/internal/geo"
	"adhocbcast/internal/graph"
	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
)

func TestDeliveryRatio(t *testing.T) {
	r := sim.Result{Delivered: 3, N: 4}
	if got := r.DeliveryRatio(); got != 0.75 {
		t.Fatalf("DeliveryRatio = %v", got)
	}
	if (sim.Result{}).DeliveryRatio() != 0 {
		t.Fatal("empty result ratio not 0")
	}
}

func TestLossModelDropsReceipts(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	net, err := geo.Generate(geo.Config{N: 50, AvgDegree: 8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := sim.Run(net.G, 0, protocol.Flooding(), sim.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Lost != 0 || clean.Collided != 0 {
		t.Fatalf("clean run reported losses: %+v", clean)
	}
	if clean.Receipts == 0 {
		t.Fatal("clean run recorded no receipts")
	}
	lossy, err := sim.Run(net.G, 0, protocol.Flooding(), sim.Config{Seed: 1, LossRate: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if lossy.Lost == 0 {
		t.Fatal("lossy run dropped nothing")
	}
	if lossy.Receipts >= clean.Receipts {
		t.Fatalf("lossy receipts %d >= clean receipts %d", lossy.Receipts, clean.Receipts)
	}
}

func TestLossRateOneOnlySourceTransmits(t *testing.T) {
	g := pathGraph(t, 4)
	res, err := sim.Run(g, 0, protocol.Flooding(), sim.Config{Seed: 1, LossRate: 0.999999})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 1 {
		t.Fatalf("delivered = %d, want only the source", res.Delivered)
	}
	if res.ForwardCount() != 1 {
		t.Fatalf("forward count = %d", res.ForwardCount())
	}
}

func TestCollisionsOnSynchronizedWave(t *testing.T) {
	// Diamond: 0-{1,2}-3. Under flooding without jitter, nodes 1 and 2
	// both retransmit at t=1 and their copies collide at node 3 at t=2.
	g := mkG(t, 4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	res, err := sim.Run(g, 0, protocol.Flooding(), sim.Config{Collisions: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 3 {
		t.Fatalf("delivered = %d, want 3 (node 3's copies collide)", res.Delivered)
	}
	// Four collided copies: the pair at node 3 and the harmless echo pair
	// back at the source.
	if res.Collided != 4 {
		t.Fatalf("collided = %d, want 4", res.Collided)
	}
}

func TestJitterRelievesCollisions(t *testing.T) {
	// The ref [7] claim: a small forwarding jitter desynchronizes the
	// retransmission wave and restores delivery.
	g := mkG(t, 4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	res, err := sim.Run(g, 0, protocol.Flooding(), sim.Config{
		Collisions: true,
		TxJitter:   0.5,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FullDelivery() {
		t.Fatalf("delivered %d/%d with jitter", res.Delivered, res.N)
	}
	if res.Collided != 0 {
		t.Fatalf("collided = %d with jitter on a diamond", res.Collided)
	}
}

func TestCollisionsStatistical(t *testing.T) {
	// On a random network, collision-mode flooding without jitter must
	// deliver to strictly fewer nodes than with jitter (averaged over
	// seeds), and pruning protocols — having fewer simultaneous
	// transmitters — must collide less than flooding.
	rng := rand.New(rand.NewSource(71))
	net, err := geo.Generate(geo.Config{N: 80, AvgDegree: 8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var floodNoJitter, floodJitter, genericNoJitter float64
	var floodCollisions, genericCollisions int
	const runs = 20
	for i := 0; i < runs; i++ {
		seed := int64(i + 1)
		a, err := sim.Run(net.G, i%80, protocol.Flooding(), sim.Config{Collisions: true, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		b, err := sim.Run(net.G, i%80, protocol.Flooding(), sim.Config{Collisions: true, TxJitter: 1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		c, err := sim.Run(net.G, i%80, protocol.Generic(protocol.TimingFirstReceipt),
			sim.Config{Hops: 2, Collisions: true, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		floodNoJitter += a.DeliveryRatio()
		floodJitter += b.DeliveryRatio()
		genericNoJitter += c.DeliveryRatio()
		floodCollisions += a.Collided
		genericCollisions += c.Collided
	}
	if floodJitter <= floodNoJitter {
		t.Fatalf("jitter did not improve flooding delivery: %.3f vs %.3f",
			floodJitter/runs, floodNoJitter/runs)
	}
	if genericCollisions >= floodCollisions {
		t.Fatalf("pruning collided as much as flooding: %d vs %d",
			genericCollisions, floodCollisions)
	}
}

func TestUnreliableModesDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	net, err := geo.Generate(geo.Config{N: 40, AvgDegree: 6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{Hops: 2, LossRate: 0.2, Collisions: true, TxJitter: 0.5, Seed: 5}
	a, err := sim.Run(net.G, 1, protocol.SBA(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(net.G, 1, protocol.SBA(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Delivered != b.Delivered || a.Lost != b.Lost || a.Collided != b.Collided {
		t.Fatalf("unreliable runs not reproducible: %+v vs %+v", a, b)
	}
}

func mkG(t *testing.T, n int, edges [][2]int) *graph.Graph {
	t.Helper()
	g := graph.New(n)
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}
