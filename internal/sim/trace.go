package sim

import (
	"fmt"
	"sort"
	"strings"

	"adhocbcast/internal/obsv"
)

// Observer receives simulation events as they happen; attach one through
// Config.Observer to trace or visualize a broadcast. Callbacks run
// synchronously inside the event loop and must not mutate the simulation.
type Observer interface {
	// OnTransmit fires when node v forwards the packet.
	OnTransmit(v int, at float64, designated []int)
	// OnDeliver fires when a packet copy from `from` reaches node v (after
	// loss and collision filtering). The source's initial possession of the
	// packet is reported as a delivery at t=0 with from == -1.
	OnDeliver(v, from int, at float64)
	// OnNonForward fires when node v finalizes a non-forward decision.
	OnNonForward(v int, at float64)
}

// TraceEventKind labels recorded trace events.
type TraceEventKind int

// Trace event kinds.
const (
	TraceTransmit TraceEventKind = iota + 1
	TraceDeliver
	TraceNonForward
)

// String returns a short event-kind name.
func (k TraceEventKind) String() string {
	switch k {
	case TraceTransmit:
		return "transmit"
	case TraceDeliver:
		return "deliver"
	case TraceNonForward:
		return "non-forward"
	default:
		return "unknown"
	}
}

// TraceEvent is one recorded simulation event.
type TraceEvent struct {
	// Kind is the event type.
	Kind TraceEventKind
	// At is the simulation time.
	At float64
	// Node is the acting node (transmitter, receiver, or decider).
	Node int
	// From is the sender for deliver events (-1 otherwise).
	From int
	// Designated carries the designated forward set for transmit events.
	Designated []int
}

// Recorder is an Observer that collects every event in order.
type Recorder struct {
	events []TraceEvent
}

var _ Observer = (*Recorder)(nil)

// OnTransmit implements Observer.
func (r *Recorder) OnTransmit(v int, at float64, designated []int) {
	r.events = append(r.events, TraceEvent{
		Kind:       TraceTransmit,
		At:         at,
		Node:       v,
		From:       -1,
		Designated: append([]int(nil), designated...),
	})
}

// OnDeliver implements Observer.
func (r *Recorder) OnDeliver(v, from int, at float64) {
	r.events = append(r.events, TraceEvent{Kind: TraceDeliver, At: at, Node: v, From: from})
}

// OnNonForward implements Observer.
func (r *Recorder) OnNonForward(v int, at float64) {
	r.events = append(r.events, TraceEvent{Kind: TraceNonForward, At: at, Node: v, From: -1})
}

// Events returns the recorded events in occurrence order. The events are
// fully cloned — mutating a returned event's Designated slice never aliases
// the recorder's internal state or earlier returns.
func (r *Recorder) Events() []TraceEvent {
	out := make([]TraceEvent, len(r.events))
	for i, e := range r.events {
		out[i] = cloneEvent(e)
	}
	return out
}

// Transmissions returns the transmit events only, fully cloned like Events.
func (r *Recorder) Transmissions() []TraceEvent {
	var out []TraceEvent
	for _, e := range r.events {
		if e.Kind == TraceTransmit {
			out = append(out, cloneEvent(e))
		}
	}
	return out
}

// cloneEvent deep-copies one trace event.
func cloneEvent(e TraceEvent) TraceEvent {
	if e.Designated != nil {
		e.Designated = append([]int(nil), e.Designated...)
	}
	return e
}

// Records converts the recorded events to their obsv export form, in
// occurrence order, for JSONL trace export.
func (r *Recorder) Records() []obsv.TraceEvent {
	out := make([]obsv.TraceEvent, len(r.events))
	for i, e := range r.events {
		out[i] = obsv.TraceEvent{
			Kind:       e.Kind.String(),
			At:         e.At,
			Node:       e.Node,
			From:       e.From,
			Designated: append([]int(nil), e.Designated...),
		}
	}
	return out
}

// DeliveryTimes returns the first delivery time per node id. The source is
// reported at t=0: it holds the packet from the start, so its entry never
// depends on a neighbor's retransmission echoing back.
func (r *Recorder) DeliveryTimes() map[int]float64 {
	out := make(map[int]float64)
	for _, e := range r.events {
		if e.Kind != TraceDeliver {
			continue
		}
		if _, ok := out[e.Node]; !ok {
			out[e.Node] = e.At
		}
	}
	return out
}

// Format renders the trace as one line per event, for logs and debugging.
func (r *Recorder) Format() string {
	var b strings.Builder
	for _, e := range r.events {
		switch e.Kind {
		case TraceTransmit:
			if len(e.Designated) > 0 {
				fmt.Fprintf(&b, "t=%6.2f  node %3d transmits, designating %v\n", e.At, e.Node, e.Designated)
			} else {
				fmt.Fprintf(&b, "t=%6.2f  node %3d transmits\n", e.At, e.Node)
			}
		case TraceDeliver:
			if e.From < 0 {
				fmt.Fprintf(&b, "t=%6.2f  node %3d holds the packet (source)\n", e.At, e.Node)
			} else {
				fmt.Fprintf(&b, "t=%6.2f  node %3d receives from %d\n", e.At, e.Node, e.From)
			}
		case TraceNonForward:
			fmt.Fprintf(&b, "t=%6.2f  node %3d takes non-forward status\n", e.At, e.Node)
		}
	}
	return b.String()
}

// MeanDeliveryLatency returns the average first-delivery time across the
// nodes that received the packet.
func (r *Recorder) MeanDeliveryLatency() float64 {
	times := r.DeliveryTimes()
	if len(times) == 0 {
		return 0
	}
	ids := make([]int, 0, len(times))
	for id := range times {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	total := 0.0
	for _, id := range ids {
		total += times[id]
	}
	return total / float64(len(times))
}
