package sim

import (
	"fmt"
	"sort"
	"strings"

	"adhocbcast/internal/obsv"
)

// Observer receives simulation events as they happen; attach one through
// Config.Observer to trace or visualize a broadcast. Callbacks run
// synchronously inside the event loop and must not mutate the simulation.
type Observer interface {
	// OnTransmit fires when node v forwards the packet.
	OnTransmit(v int, at float64, designated []int)
	// OnDeliver fires when a packet copy from `from` reaches node v (after
	// loss and collision filtering). The source's initial possession of the
	// packet is reported as a delivery at t=0 with from == -1.
	OnDeliver(v, from int, at float64)
	// OnNonForward fires when node v finalizes a non-forward decision.
	OnNonForward(v int, at float64)
}

// SessionObserver is the optional extension of Observer for multi-session
// traffic runs and the contention MAC. An Observer that also implements it
// receives the broadcast session id on every callback plus the MAC queue
// events; a plain Observer attached to such a run still works and simply
// sees the session-blind callbacks. In single runs every event carries
// session 0, so a SessionObserver records traces byte-identical to before.
type SessionObserver interface {
	Observer
	// OnSessionStart fires when a broadcast session is injected at its
	// source.
	OnSessionStart(session, source int, at float64)
	// OnSessionTransmit is OnTransmit with the session id.
	OnSessionTransmit(session, v int, at float64, designated []int)
	// OnSessionDeliver is OnDeliver with the session id.
	OnSessionDeliver(session, v, from int, at float64)
	// OnSessionNonForward is OnNonForward with the session id.
	OnSessionNonForward(session, v int, at float64)
	// OnEnqueue fires when the contention MAC admits a packet to node v's
	// transmit queue.
	OnEnqueue(session, v int, at float64)
	// OnQueueDrop fires when the contention MAC drops a queued packet at
	// node v.
	OnQueueDrop(session, v int, at float64, cause QueueDropCause)
}

// QueueDropCause labels why the contention MAC dropped a queued packet.
type QueueDropCause int

// Queue-drop causes.
const (
	// QueueDropTail: the arriving packet was dropped because the queue was
	// full (the default tail-drop policy).
	QueueDropTail QueueDropCause = iota + 1
	// QueueDropHead: the oldest queued packet was evicted to admit a new
	// arrival (Config.DropOldest).
	QueueDropHead
	// QueueDropDown: the queue was wiped because its node went down.
	QueueDropDown
)

// String returns the cause name used in exported traces.
func (c QueueDropCause) String() string {
	switch c {
	case QueueDropTail:
		return "tail"
	case QueueDropHead:
		return "head"
	case QueueDropDown:
		return "down"
	default:
		return "unknown"
	}
}

// obsDeliver, obsTransmit, obsNonForward, obsSessionStart, obsEnqueue, and
// obsQueueDrop route simulation events to the configured observer, using the
// session-aware callbacks when the observer supports them and degrading to
// the session-blind Observer surface (dropping MAC-only events) otherwise.

func (net *Network) obsDeliver(sid int32, v, from int) {
	o := net.Cfg.Observer
	if o == nil {
		return
	}
	if so, ok := o.(SessionObserver); ok {
		so.OnSessionDeliver(int(sid), v, from, net.now)
		return
	}
	o.OnDeliver(v, from, net.now)
}

func (net *Network) obsTransmit(sid int32, v int, designated []int) {
	o := net.Cfg.Observer
	if o == nil {
		return
	}
	if so, ok := o.(SessionObserver); ok {
		so.OnSessionTransmit(int(sid), v, net.now, designated)
		return
	}
	o.OnTransmit(v, net.now, designated)
}

func (net *Network) obsNonForward(sid int32, v int) {
	o := net.Cfg.Observer
	if o == nil {
		return
	}
	if so, ok := o.(SessionObserver); ok {
		so.OnSessionNonForward(int(sid), v, net.now)
		return
	}
	o.OnNonForward(v, net.now)
}

func (net *Network) obsSessionStart(sid int32, source int) {
	if so, ok := net.Cfg.Observer.(SessionObserver); ok {
		so.OnSessionStart(int(sid), source, net.now)
	}
}

func (net *Network) obsEnqueue(sid int32, v int) {
	if so, ok := net.Cfg.Observer.(SessionObserver); ok {
		so.OnEnqueue(int(sid), v, net.now)
	}
}

func (net *Network) obsQueueDrop(sid int32, v int, cause QueueDropCause) {
	if so, ok := net.Cfg.Observer.(SessionObserver); ok {
		so.OnQueueDrop(int(sid), v, net.now, cause)
	}
}

// TraceEventKind labels recorded trace events.
type TraceEventKind int

// Trace event kinds.
const (
	TraceTransmit TraceEventKind = iota + 1
	TraceDeliver
	TraceNonForward
	TraceSessionStart
	TraceEnqueue
	TraceQueueDrop
)

// String returns a short event-kind name.
func (k TraceEventKind) String() string {
	switch k {
	case TraceTransmit:
		return "transmit"
	case TraceDeliver:
		return "deliver"
	case TraceNonForward:
		return "non-forward"
	case TraceSessionStart:
		return "session-start"
	case TraceEnqueue:
		return "enqueue"
	case TraceQueueDrop:
		return "queue-drop"
	default:
		return "unknown"
	}
}

// TraceEvent is one recorded simulation event.
type TraceEvent struct {
	// Kind is the event type.
	Kind TraceEventKind
	// At is the simulation time.
	At float64
	// Node is the acting node (transmitter, receiver, or decider).
	Node int
	// From is the sender for deliver events (-1 otherwise).
	From int
	// Session is the broadcast session id (0 outside multi-session runs).
	Session int
	// Cause labels queue-drop events (zero QueueDropCause otherwise).
	Cause QueueDropCause
	// Designated carries the designated forward set for transmit events.
	Designated []int
}

// Recorder is an Observer that collects every event in order. It also
// implements SessionObserver, so multi-session traffic runs and contention-MAC
// runs record session ids and queue events; in single runs every recorded
// event carries session 0 and the trace is identical to the session-blind one.
type Recorder struct {
	events []TraceEvent
}

var _ SessionObserver = (*Recorder)(nil)

// OnTransmit implements Observer.
func (r *Recorder) OnTransmit(v int, at float64, designated []int) {
	r.OnSessionTransmit(0, v, at, designated)
}

// OnDeliver implements Observer.
func (r *Recorder) OnDeliver(v, from int, at float64) {
	r.OnSessionDeliver(0, v, from, at)
}

// OnNonForward implements Observer.
func (r *Recorder) OnNonForward(v int, at float64) {
	r.OnSessionNonForward(0, v, at)
}

// OnSessionStart implements SessionObserver.
func (r *Recorder) OnSessionStart(session, source int, at float64) {
	r.events = append(r.events, TraceEvent{
		Kind: TraceSessionStart, At: at, Node: source, From: -1, Session: session,
	})
}

// OnSessionTransmit implements SessionObserver.
func (r *Recorder) OnSessionTransmit(session, v int, at float64, designated []int) {
	r.events = append(r.events, TraceEvent{
		Kind:       TraceTransmit,
		At:         at,
		Node:       v,
		From:       -1,
		Session:    session,
		Designated: append([]int(nil), designated...),
	})
}

// OnSessionDeliver implements SessionObserver.
func (r *Recorder) OnSessionDeliver(session, v, from int, at float64) {
	r.events = append(r.events, TraceEvent{
		Kind: TraceDeliver, At: at, Node: v, From: from, Session: session,
	})
}

// OnSessionNonForward implements SessionObserver.
func (r *Recorder) OnSessionNonForward(session, v int, at float64) {
	r.events = append(r.events, TraceEvent{
		Kind: TraceNonForward, At: at, Node: v, From: -1, Session: session,
	})
}

// OnEnqueue implements SessionObserver.
func (r *Recorder) OnEnqueue(session, v int, at float64) {
	r.events = append(r.events, TraceEvent{
		Kind: TraceEnqueue, At: at, Node: v, From: -1, Session: session,
	})
}

// OnQueueDrop implements SessionObserver.
func (r *Recorder) OnQueueDrop(session, v int, at float64, cause QueueDropCause) {
	r.events = append(r.events, TraceEvent{
		Kind: TraceQueueDrop, At: at, Node: v, From: -1, Session: session, Cause: cause,
	})
}

// Events returns the recorded events in occurrence order. The events are
// fully cloned — mutating a returned event's Designated slice never aliases
// the recorder's internal state or earlier returns.
func (r *Recorder) Events() []TraceEvent {
	out := make([]TraceEvent, len(r.events))
	for i, e := range r.events {
		out[i] = cloneEvent(e)
	}
	return out
}

// Transmissions returns the transmit events only, fully cloned like Events.
func (r *Recorder) Transmissions() []TraceEvent {
	var out []TraceEvent
	for _, e := range r.events {
		if e.Kind == TraceTransmit {
			out = append(out, cloneEvent(e))
		}
	}
	return out
}

// cloneEvent deep-copies one trace event.
func cloneEvent(e TraceEvent) TraceEvent {
	if e.Designated != nil {
		e.Designated = append([]int(nil), e.Designated...)
	}
	return e
}

// Records converts the recorded events to their obsv export form, in
// occurrence order, for JSONL trace export.
func (r *Recorder) Records() []obsv.TraceEvent {
	out := make([]obsv.TraceEvent, len(r.events))
	for i, e := range r.events {
		rec := obsv.TraceEvent{
			Kind:       e.Kind.String(),
			At:         e.At,
			Node:       e.Node,
			From:       e.From,
			Session:    e.Session,
			Designated: append([]int(nil), e.Designated...),
		}
		if e.Cause != 0 {
			rec.Cause = e.Cause.String()
		}
		out[i] = rec
	}
	return out
}

// DeliveryTimes returns the first delivery time per node id. The source is
// reported at t=0: it holds the packet from the start, so its entry never
// depends on a neighbor's retransmission echoing back.
func (r *Recorder) DeliveryTimes() map[int]float64 {
	out := make(map[int]float64)
	for _, e := range r.events {
		if e.Kind != TraceDeliver {
			continue
		}
		if _, ok := out[e.Node]; !ok {
			out[e.Node] = e.At
		}
	}
	return out
}

// Format renders the trace as one line per event, for logs and debugging.
// Events of session 0 render exactly as single-run traces always did; higher
// sessions carry an [s=N] tag.
func (r *Recorder) Format() string {
	var b strings.Builder
	for _, e := range r.events {
		tag := ""
		if e.Session > 0 {
			tag = fmt.Sprintf(" [s=%d]", e.Session)
		}
		switch e.Kind {
		case TraceTransmit:
			if len(e.Designated) > 0 {
				fmt.Fprintf(&b, "t=%6.2f  node %3d transmits, designating %v%s\n", e.At, e.Node, e.Designated, tag)
			} else {
				fmt.Fprintf(&b, "t=%6.2f  node %3d transmits%s\n", e.At, e.Node, tag)
			}
		case TraceDeliver:
			if e.From < 0 {
				fmt.Fprintf(&b, "t=%6.2f  node %3d holds the packet (source)%s\n", e.At, e.Node, tag)
			} else {
				fmt.Fprintf(&b, "t=%6.2f  node %3d receives from %d%s\n", e.At, e.Node, e.From, tag)
			}
		case TraceNonForward:
			fmt.Fprintf(&b, "t=%6.2f  node %3d takes non-forward status%s\n", e.At, e.Node, tag)
		case TraceSessionStart:
			fmt.Fprintf(&b, "t=%6.2f  node %3d starts broadcast session %d\n", e.At, e.Node, e.Session)
		case TraceEnqueue:
			fmt.Fprintf(&b, "t=%6.2f  node %3d enqueues a transmission%s\n", e.At, e.Node, tag)
		case TraceQueueDrop:
			fmt.Fprintf(&b, "t=%6.2f  node %3d drops a queued transmission (%s)%s\n", e.At, e.Node, e.Cause, tag)
		}
	}
	return b.String()
}

// MeanDeliveryLatency returns the average first-delivery time across the
// nodes that received the packet.
func (r *Recorder) MeanDeliveryLatency() float64 {
	times := r.DeliveryTimes()
	if len(times) == 0 {
		return 0
	}
	ids := make([]int, 0, len(times))
	for id := range times {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	total := 0.0
	for _, id := range ids {
		total += times[id]
	}
	return total / float64(len(times))
}
