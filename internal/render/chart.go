package render

import (
	"fmt"
	"io"
	"math"
	"strings"

	"adhocbcast/internal/experiments"
)

// chart geometry constants (pixels).
const (
	panelWidth   = 340
	panelHeight  = 260
	marginLeft   = 46
	marginRight  = 14
	marginTop    = 34
	marginBottom = 40
	legendHeight = 18
)

// seriesPalette holds the line colors, cycled across series.
var seriesPalette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b",
}

// Chart writes an SVG line chart of a reproduced figure to w: one panel per
// figure panel, laid out two per row, with shared styling — the plotted
// counterpart of the paper's evaluation figures. Error bars show the 90%
// confidence half-widths.
func Chart(w io.Writer, fig experiments.Figure) error {
	cols := 2
	if len(fig.Panels) < 2 {
		cols = 1
	}
	rows := (len(fig.Panels) + cols - 1) / cols
	width := cols * panelWidth
	height := rows*panelHeight + 24 // room for the figure title

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="16" font-family="sans-serif" font-size="14" font-weight="bold">Figure %s: %s</text>`+"\n",
		8, escapeXML(fig.ID), escapeXML(fig.Title))

	for i, panel := range fig.Panels {
		ox := (i % cols) * panelWidth
		oy := 24 + (i/cols)*panelHeight
		drawPanel(&b, panel, fig.Unit, ox, oy)
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// drawPanel renders one subplot at the given origin.
func drawPanel(b *strings.Builder, panel experiments.Panel, unit string, ox, oy int) {
	if unit == "" {
		unit = "forward nodes"
	}
	// Data ranges.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymax := 0.0
	for _, s := range panel.Series {
		for _, p := range s.Points {
			xmin = math.Min(xmin, float64(p.X))
			xmax = math.Max(xmax, float64(p.X))
			ymax = math.Max(ymax, p.Mean+p.CI)
		}
	}
	if math.IsInf(xmin, 1) {
		return // empty panel
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == 0 {
		ymax = 1
	}
	ymax *= 1.05

	plotW := float64(panelWidth - marginLeft - marginRight)
	plotH := float64(panelHeight - marginTop - marginBottom - legendHeight)
	px := func(x float64) float64 {
		return float64(ox+marginLeft) + (x-xmin)/(xmax-xmin)*plotW
	}
	py := func(y float64) float64 {
		return float64(oy+marginTop+legendHeight) + (1-y/ymax)*plotH
	}

	// Panel title and frame.
	fmt.Fprintf(b, `<text x="%.0f" y="%d" font-family="sans-serif" font-size="12">%s</text>`+"\n",
		px(xmin), oy+14, escapeXML(panel.Title))
	fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#333333"/>`+"\n",
		px(xmin), py(ymax), plotW, plotH)

	// Y ticks at 5 even divisions; X ticks at each distinct data x.
	for i := 0; i <= 5; i++ {
		y := ymax * float64(i) / 5
		fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#dddddd"/>`+"\n",
			px(xmin), py(y), px(xmax), py(y))
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="9" text-anchor="end">%.0f</text>`+"\n",
			px(xmin)-4, py(y)+3, y)
	}
	seenX := map[int]bool{}
	for _, s := range panel.Series {
		for _, p := range s.Points {
			if !seenX[p.X] {
				seenX[p.X] = true
				fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="9" text-anchor="middle">%d</text>`+"\n",
					px(float64(p.X)), py(0)+12, p.X)
			}
		}
	}
	// Axis label.
	fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="9" text-anchor="middle">%s</text>`+"\n",
		px((xmin+xmax)/2), py(0)+26, escapeXML(unit))

	// Series lines with error bars and legend.
	for si, s := range panel.Series {
		color := seriesPalette[si%len(seriesPalette)]
		var pts []string
		for _, p := range s.Points {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(float64(p.X)), py(p.Mean)))
			if p.CI > 0 {
				fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n",
					px(float64(p.X)), py(p.Mean-p.CI), px(float64(p.X)), py(math.Min(p.Mean+p.CI, ymax)), color)
			}
		}
		fmt.Fprintf(b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.6"/>`+"\n",
			strings.Join(pts, " "), color)
		for _, p := range s.Points {
			fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="2.2" fill="%s"/>`+"\n",
				px(float64(p.X)), py(p.Mean), color)
		}
		// Legend entry.
		lx := float64(ox+marginLeft) + float64(si%3)*(plotW/3)
		ly := float64(oy + marginTop + 10*(si/3))
		fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2"/>`+"\n",
			lx, ly, lx+14, ly, color)
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="9">%s</text>`+"\n",
			lx+18, ly+3, escapeXML(s.Label))
	}
}
