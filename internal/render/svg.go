// Package render draws generated networks and broadcast outcomes as SVG
// documents — the publication-style counterpart of the paper's Figure 9.
// Links are thin gray lines, non-forward nodes hollow circles, forward
// nodes filled, and the source a filled square.
package render

import (
	"fmt"
	"io"
	"strings"

	"adhocbcast/internal/geo"
)

// SVGOptions controls the rendering.
type SVGOptions struct {
	// Width is the document width in pixels (default 480). Height scales
	// with the deployment area aspect ratio (which is square, so height
	// equals width).
	Width int
	// Side is the deployment area side length (default 100).
	Side float64
	// Title is an optional caption drawn above the plot.
	Title string
}

func (o SVGOptions) withDefaults() SVGOptions {
	if o.Width <= 0 {
		o.Width = 480
	}
	if o.Side <= 0 {
		o.Side = 100
	}
	return o
}

// SVG writes an SVG rendering of the network to w: every link, with the
// forward nodes (in transmission order, first element treated as the
// source) highlighted. A nil or empty forward set renders the bare
// topology.
func SVG(w io.Writer, net *geo.Network, forward []int, opts SVGOptions) error {
	opts = opts.withDefaults()
	const margin = 12.0
	scale := (float64(opts.Width) - 2*margin) / opts.Side
	titlePad := 0.0
	if opts.Title != "" {
		titlePad = 22
	}
	height := float64(opts.Width) + titlePad

	x := func(p geo.Point) float64 { return margin + p.X*scale }
	y := func(p geo.Point) float64 { return titlePad + margin + (opts.Side-p.Y)*scale }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%.0f" viewBox="0 0 %d %.0f">`+"\n",
		opts.Width, height, opts.Width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	if opts.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="16" font-family="sans-serif" font-size="13">%s</text>`+"\n",
			int(margin), escapeXML(opts.Title))
	}

	b.WriteString(`<g stroke="#bbbbbb" stroke-width="0.7">` + "\n")
	for _, e := range net.G.Edges() {
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f"/>`+"\n",
			x(net.Pos[e[0]]), y(net.Pos[e[0]]), x(net.Pos[e[1]]), y(net.Pos[e[1]]))
	}
	b.WriteString("</g>\n")

	isForward := make(map[int]bool, len(forward))
	for _, v := range forward {
		isForward[v] = true
	}
	source := -1
	if len(forward) > 0 {
		source = forward[0]
	}
	for v, p := range net.Pos {
		switch {
		case v == source:
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="8" height="8" fill="#d62728"/>`+"\n",
				x(p)-4, y(p)-4)
		case isForward[v]:
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="4" fill="#1f77b4"/>`+"\n", x(p), y(p))
		default:
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="white" stroke="#444444"/>`+"\n",
				x(p), y(p))
		}
	}
	b.WriteString("</svg>\n")

	_, err := io.WriteString(w, b.String())
	return err
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
