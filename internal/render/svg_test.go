package render

import (
	"math/rand"
	"strings"
	"testing"

	"adhocbcast/internal/geo"
)

func genNet(t *testing.T) *geo.Network {
	t.Helper()
	net, err := geo.Generate(geo.Config{N: 30, AvgDegree: 6}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestSVGStructure(t *testing.T) {
	net := genNet(t)
	var b strings.Builder
	forward := []int{5, 2, 9}
	if err := SVG(&b, net, forward, SVGOptions{Title: `forward <set> "demo"`}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "<svg ") || !strings.HasSuffix(out, "</svg>\n") {
		t.Fatal("not a well-formed SVG envelope")
	}
	if got := strings.Count(out, "<line "); got != net.G.M() {
		t.Fatalf("%d lines drawn, want %d links", got, net.G.M())
	}
	// One square source, two filled forwards, the rest hollow.
	if got := strings.Count(out, "<rect x="); got != 1 {
		t.Fatalf("%d source markers, want 1", got)
	}
	if got := strings.Count(out, `fill="#1f77b4"`); got != 2 {
		t.Fatalf("%d forward markers, want 2", got)
	}
	if got := strings.Count(out, `fill="white" stroke=`); got != net.G.N()-3 {
		t.Fatalf("%d hollow markers, want %d", got, net.G.N()-3)
	}
	// The title must be XML-escaped.
	if !strings.Contains(out, "forward &lt;set&gt; &quot;demo&quot;") {
		t.Fatal("title not escaped")
	}
	if strings.Contains(out, `forward <set>`) {
		t.Fatal("raw title leaked into the document")
	}
}

func TestSVGBareTopology(t *testing.T) {
	net := genNet(t)
	var b strings.Builder
	if err := SVG(&b, net, nil, SVGOptions{}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "<rect x=") != 0 {
		t.Fatal("source marker drawn without a forward set")
	}
	if got := strings.Count(out, "<circle "); got != net.G.N() {
		t.Fatalf("%d node markers, want %d", got, net.G.N())
	}
	if strings.Contains(out, "<text") {
		t.Fatal("title drawn without one configured")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) {
	return 0, errWrite
}

var errWrite = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "sink failed" }

func TestSVGWriteError(t *testing.T) {
	net := genNet(t)
	if err := SVG(failWriter{}, net, nil, SVGOptions{}); err == nil {
		t.Fatal("write error swallowed")
	}
}
