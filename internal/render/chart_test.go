package render

import (
	"strings"
	"testing"

	"adhocbcast/internal/experiments"
)

func sampleFigure() experiments.Figure {
	return experiments.Figure{
		ID:    "10",
		Title: "timing options",
		Panels: []experiments.Panel{
			{
				Title: "d=6",
				Series: []experiments.Series{
					{Label: "Static", Points: []experiments.Point{
						{X: 20, Mean: 8, CI: 0.3}, {X: 100, Mean: 50, CI: 1.2},
					}},
					{Label: "FR", Points: []experiments.Point{
						{X: 20, Mean: 7, CI: 0.2}, {X: 100, Mean: 45, CI: 0.9},
					}},
				},
			},
			{
				Title: "d=18",
				Series: []experiments.Series{
					{Label: "Static", Points: []experiments.Point{
						{X: 20, Mean: 2.4, CI: 0.1}, {X: 100, Mean: 22, CI: 0.7},
					}},
				},
			},
		},
	}
}

func TestChartStructure(t *testing.T) {
	var b strings.Builder
	if err := Chart(&b, sampleFigure()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "<svg ") || !strings.HasSuffix(out, "</svg>\n") {
		t.Fatal("not a well-formed SVG envelope")
	}
	for _, want := range []string{
		"Figure 10: timing options",
		"d=6", "d=18",
		"Static", "FR",
		"forward nodes",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q", want)
		}
	}
	// Three series across both panels: three polylines.
	if got := strings.Count(out, "<polyline "); got != 3 {
		t.Fatalf("%d polylines, want 3", got)
	}
	// Every point gets a marker: 2+2+2 circles.
	if got := strings.Count(out, "<circle "); got != 6 {
		t.Fatalf("%d markers, want 6", got)
	}
}

func TestChartCustomUnit(t *testing.T) {
	fig := sampleFigure()
	fig.Unit = "delivery %"
	var b strings.Builder
	if err := Chart(&b, fig); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "delivery %") {
		t.Fatal("custom unit missing")
	}
}

func TestChartEmptyPanel(t *testing.T) {
	fig := experiments.Figure{
		ID:     "x",
		Title:  "empty",
		Panels: []experiments.Panel{{Title: "none"}},
	}
	var b strings.Builder
	if err := Chart(&b, fig); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "<svg ") {
		t.Fatal("no SVG produced for empty figure")
	}
}

func TestChartWriteError(t *testing.T) {
	if err := Chart(failWriter{}, sampleFigure()); err == nil {
		t.Fatal("write error swallowed")
	}
}

func TestChartSinglePointSeries(t *testing.T) {
	// A single x value must not divide by zero.
	fig := experiments.Figure{
		ID:    "1",
		Title: "point",
		Panels: []experiments.Panel{{
			Title: "p",
			Series: []experiments.Series{
				{Label: "only", Points: []experiments.Point{{X: 50, Mean: 10, CI: 1}}},
			},
		}},
	}
	var b strings.Builder
	if err := Chart(&b, fig); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "NaN") {
		t.Fatal("NaN coordinates in chart")
	}
}
