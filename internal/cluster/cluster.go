// Package cluster implements the lowest-id clustering of Lin and Gerla that
// the paper leans on for dense networks (Section 2 assumption 5 and the
// density discussion of Section 6: "high density can be avoided by
// techniques such as adjustable transmitter range or clustering"): cluster
// heads plus border gateways form a sparse connected dominating backbone on
// which the coverage condition can operate cheaply.
package cluster

import "adhocbcast/internal/graph"

// Clustering is the result of a cluster formation pass.
type Clustering struct {
	// Head[v] is the cluster head of node v (heads point at themselves).
	Head []int
	// Heads lists the cluster heads in ascending id order.
	Heads []int
}

// IsHead reports whether v is a cluster head.
func (c *Clustering) IsHead(v int) bool { return c.Head[v] == v }

// Clusters returns the number of clusters.
func (c *Clustering) Clusters() int { return len(c.Heads) }

// LowestID forms clusters with the classic lowest-id heuristic: scanning
// ids in ascending order, every unassigned node becomes a head and absorbs
// its unassigned neighbors as members. Every member is a direct neighbor of
// its head, so heads dominate the graph.
func LowestID(g *graph.Graph) *Clustering {
	n := g.N()
	c := &Clustering{Head: make([]int, n)}
	for v := range c.Head {
		c.Head[v] = -1
	}
	for v := 0; v < n; v++ {
		if c.Head[v] >= 0 {
			continue
		}
		c.Head[v] = v
		c.Heads = append(c.Heads, v)
		g.ForEachNeighbor(v, func(u int) {
			if c.Head[u] < 0 {
				c.Head[u] = v
			}
		})
	}
	return c
}

// Borders returns the gateway nodes: nodes with at least one neighbor in a
// different cluster.
func (c *Clustering) Borders(g *graph.Graph) []int {
	var out []int
	for v := 0; v < g.N(); v++ {
		isBorder := false
		g.ForEachNeighbor(v, func(u int) {
			if c.Head[u] != c.Head[v] {
				isBorder = true
			}
		})
		if isBorder {
			out = append(out, v)
		}
	}
	return out
}

// Backbone returns the cluster backbone: heads plus border gateways. On a
// connected graph this is a connected dominating set — heads dominate
// (every member is adjacent to its head), each cluster's backbone members
// are adjacent to their head, and every inter-cluster link has both
// endpoints in the set.
func (c *Clustering) Backbone(g *graph.Graph) []int {
	inSet := make([]bool, g.N())
	for _, h := range c.Heads {
		inSet[h] = true
	}
	for _, b := range c.Borders(g) {
		inSet[b] = true
	}
	var out []int
	for v, ok := range inSet {
		if ok {
			out = append(out, v)
		}
	}
	return out
}
