package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adhocbcast/internal/cds"
	"adhocbcast/internal/geo"
	"adhocbcast/internal/graph"
)

func build(t *testing.T, n int, edges [][2]int) *graph.Graph {
	t.Helper()
	g := graph.New(n)
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestLowestIDPath(t *testing.T) {
	// Path 0-1-2-3-4: 0 absorbs 1; 2 becomes the next head absorbing 3;
	// 4 is left alone as its own head.
	g := build(t, 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	c := LowestID(g)
	wantHead := []int{0, 0, 2, 2, 4}
	for v, h := range c.Head {
		if h != wantHead[v] {
			t.Fatalf("Head = %v, want %v", c.Head, wantHead)
		}
	}
	if c.Clusters() != 3 {
		t.Fatalf("clusters = %d, want 3", c.Clusters())
	}
	if !c.IsHead(0) || c.IsHead(1) {
		t.Fatal("IsHead wrong")
	}
}

func TestLowestIDStar(t *testing.T) {
	g := build(t, 4, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	c := LowestID(g)
	if c.Clusters() != 1 || c.Heads[0] != 0 {
		t.Fatalf("star clustering: %+v", c)
	}
}

// TestLowestIDPropertiesQuick checks the clustering invariants on random
// networks: every node has a head, members are adjacent to their heads, and
// heads are never members of other clusters.
func TestLowestIDPropertiesQuick(t *testing.T) {
	f := func(seed int64) bool {
		net, err := geo.Generate(geo.Config{N: 50, AvgDegree: 10},
			rand.New(rand.NewSource(seed)))
		if err != nil {
			return true
		}
		c := LowestID(net.G)
		for v := 0; v < 50; v++ {
			h := c.Head[v]
			if h < 0 {
				return false
			}
			if h != v && !net.G.HasEdge(v, h) {
				return false
			}
			if h != v && c.Head[h] != h {
				return false
			}
			// A head must have the lowest id in its own cluster.
			if h == v {
				for u := 0; u < v; u++ {
					if c.Head[u] == v {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func TestBorders(t *testing.T) {
	// Two triangles joined by one edge: with lowest-id clustering nodes 0-2
	// form one cluster (0 head) and 3-5 another (3 head); the bridge
	// endpoints 2 and 3 are the borders.
	g := build(t, 6, [][2]int{
		{0, 1}, {0, 2}, {1, 2},
		{3, 4}, {3, 5}, {4, 5},
		{2, 3},
	})
	c := LowestID(g)
	borders := c.Borders(g)
	if len(borders) != 2 || borders[0] != 2 || borders[1] != 3 {
		t.Fatalf("borders = %v, want [2 3]", borders)
	}
}

// TestBackboneIsCDSQuick verifies the backbone's CDS property on random
// connected networks of varying density.
func TestBackboneIsCDSQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := []float64{6, 12, 24}[rng.Intn(3)]
		net, err := geo.Generate(geo.Config{N: 60, AvgDegree: d}, rng)
		if err != nil {
			return true
		}
		c := LowestID(net.G)
		return cds.IsCDS(net.G, c.Backbone(net.G))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}

func TestBackboneReducible(t *testing.T) {
	// The Section 1 post-processing applies to cluster backbones too: the
	// coverage condition must shrink them while preserving the CDS
	// property (dense networks have fat borders).
	rng := rand.New(rand.NewSource(5))
	net, err := geo.Generate(geo.Config{N: 80, AvgDegree: 20}, rng)
	if err != nil {
		t.Fatal(err)
	}
	c := LowestID(net.G)
	backbone := c.Backbone(net.G)
	reduced := cds.Reduce(net.G, backbone)
	if len(reduced) >= len(backbone) {
		t.Fatalf("reduction had no effect: %d -> %d", len(backbone), len(reduced))
	}
	if !cds.IsCDS(net.G, reduced) {
		t.Fatal("reduced backbone invalid")
	}
}

func TestSingleNodeAndEmpty(t *testing.T) {
	c := LowestID(graph.New(1))
	if c.Clusters() != 1 || !c.IsHead(0) {
		t.Fatalf("single node: %+v", c)
	}
	if got := LowestID(graph.New(0)).Clusters(); got != 0 {
		t.Fatalf("empty graph clusters = %d", got)
	}
}
