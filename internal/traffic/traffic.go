// Package traffic generates the heavy-traffic broadcast workloads of the
// saturation experiments: seed-deterministic per-source arrival processes
// (independent Poisson streams, optionally clustered into bursts) that expand
// into a Plan — a time-ordered list of broadcast sessions, each a (source,
// injection time) pair tagged with a dense session id. The simulator replays
// a Plan with sim.RunTraffic; the live runtime replays one with a per-node
// generator behind the bcastnode -rate flag. The package depends only on the
// standard library, so both executors (and tests) can share one workload
// definition.
//
// Determinism contract: every message of a plan is a pure function of
// (Config, Seed). Each source draws from its own RNG stream derived from
// (Seed, source index), so changing the number of sources never shifts the
// arrival times of the sources that remain, and the final (time, source)
// sort breaks ties deterministically.
package traffic

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
)

// Message is one broadcast session of a workload: node Source originates a
// fresh broadcast at time At (in transmission slots).
type Message struct {
	// Session is the dense 0-based session id, assigned in (At, Source)
	// order across the whole plan.
	Session int
	// Source is the originating node.
	Source int
	// At is the injection time in transmission slots.
	At float64
}

// Plan is a deterministic multi-session workload: the messages of all
// sources merged into (At, Source) order with dense session ids.
type Plan struct {
	// Messages lists every broadcast session in injection order.
	Messages []Message
	// Horizon is the generation horizon in slots: arrivals were drawn over
	// [0, Horizon). Offered-load accounting divides by it.
	Horizon float64
}

// Sessions returns the number of broadcast sessions in the plan.
func (p *Plan) Sessions() int { return len(p.Messages) }

// OfferedLoad returns the plan's total offered load in messages per slot.
func (p *Plan) OfferedLoad() float64 {
	if p.Horizon <= 0 {
		return 0
	}
	return float64(len(p.Messages)) / p.Horizon
}

// Validate checks the plan against an n-node network: sources in range,
// finite non-decreasing injection times, and dense in-order session ids.
func (p *Plan) Validate(n int) error {
	if len(p.Messages) == 0 {
		return fmt.Errorf("traffic: empty plan")
	}
	if p.Horizon <= 0 || math.IsNaN(p.Horizon) || math.IsInf(p.Horizon, 0) {
		return fmt.Errorf("traffic: non-positive horizon %v", p.Horizon)
	}
	prev := 0.0
	for i, m := range p.Messages {
		if m.Session != i {
			return fmt.Errorf("traffic: message %d has session id %d, want dense ids in order", i, m.Session)
		}
		if m.Source < 0 || m.Source >= n {
			return fmt.Errorf("traffic: message %d source %d out of range [0,%d)", i, m.Source, n)
		}
		if m.At < 0 || math.IsNaN(m.At) || math.IsInf(m.At, 0) {
			return fmt.Errorf("traffic: message %d has invalid time %v", i, m.At)
		}
		if m.At < prev {
			return fmt.Errorf("traffic: message %d at %v before predecessor at %v", i, m.At, prev)
		}
		prev = m.At
	}
	return nil
}

// Config parameterizes the workload generators.
type Config struct {
	// N is the network size; sources are drawn from [0, N).
	N int
	// Sources is the number of distinct traffic sources (default min(8, N)).
	// The sources are a seed-deterministic sample of the vertex set.
	Sources int
	// Rate is the mean arrival rate per source in messages per slot. The
	// total offered load is Sources * Rate in expectation.
	Rate float64
	// Horizon is the generation horizon in slots: arrivals are drawn over
	// [0, Horizon) (default 400).
	Horizon float64
	// Burst is the number of back-to-back messages per arrival epoch.
	// Poisson forces 1; Bursts defaults to 4. The epoch rate is divided by
	// Burst, so the per-source average stays Rate messages per slot.
	Burst int
	// Seed drives source selection and every per-source arrival stream.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Sources == 0 {
		c.Sources = 8
		if c.N < 8 {
			c.Sources = c.N
		}
	}
	if c.Horizon == 0 {
		c.Horizon = 400
	}
	return c
}

func (c Config) validate() error {
	if c.N <= 0 {
		return fmt.Errorf("traffic: non-positive N %d", c.N)
	}
	if c.Sources <= 0 || c.Sources > c.N {
		return fmt.Errorf("traffic: Sources %d outside [1,%d]", c.Sources, c.N)
	}
	if c.Rate <= 0 || math.IsNaN(c.Rate) || math.IsInf(c.Rate, 0) {
		return fmt.Errorf("traffic: non-positive Rate %v", c.Rate)
	}
	if c.Horizon <= 0 || math.IsNaN(c.Horizon) || math.IsInf(c.Horizon, 0) {
		return fmt.Errorf("traffic: non-positive Horizon %v", c.Horizon)
	}
	if c.Burst < 1 {
		return fmt.Errorf("traffic: Burst %d < 1", c.Burst)
	}
	return nil
}

// Poisson generates independent per-source Poisson arrival processes: each
// of cfg.Sources sources emits messages with exponential inter-arrival times
// of mean 1/Rate over [0, Horizon). cfg.Burst is ignored (forced to 1).
func Poisson(cfg Config) (*Plan, error) {
	cfg.Burst = 1
	return generate(cfg)
}

// Bursts generates a bursty arrival process: arrival epochs form a Poisson
// process of rate Rate/Burst per source, and each epoch injects Burst
// back-to-back messages (identical injection times; the MAC queue
// serializes them). The per-source average rate stays Rate. cfg.Burst
// defaults to 4 when unset or below 2.
func Bursts(cfg Config) (*Plan, error) {
	if cfg.Burst < 2 {
		cfg.Burst = 4
	}
	return generate(cfg)
}

func generate(cfg Config) (*Plan, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sources := pickSources(cfg)
	epochRate := cfg.Rate / float64(cfg.Burst)
	var msgs []Message
	for _, s := range sources {
		rng := rand.New(rand.NewSource(streamSeed(cfg.Seed, s)))
		t := 0.0
		for {
			t += rng.ExpFloat64() / epochRate
			if t >= cfg.Horizon {
				break
			}
			for b := 0; b < cfg.Burst; b++ {
				msgs = append(msgs, Message{Source: s, At: t})
			}
		}
	}
	// Merge all sources into (At, Source) order. Burst members of one
	// source share a time and keep their generation order (stable sort).
	sort.SliceStable(msgs, func(i, j int) bool {
		if msgs[i].At != msgs[j].At {
			return msgs[i].At < msgs[j].At
		}
		return msgs[i].Source < msgs[j].Source
	})
	for i := range msgs {
		msgs[i].Session = i
	}
	return &Plan{Messages: msgs, Horizon: cfg.Horizon}, nil
}

// pickSources returns cfg.Sources distinct node ids, a seed-deterministic
// uniform sample of [0, N).
func pickSources(cfg Config) []int {
	rng := rand.New(rand.NewSource(streamSeed(cfg.Seed, -1)))
	perm := rng.Perm(cfg.N)[:cfg.Sources]
	sort.Ints(perm)
	return perm
}

// streamSeed maps (seed, source) to an independent per-source stream seed
// (source -1 keys the source-selection stream).
func streamSeed(seed int64, source int) int64 {
	h := fnv.New64a()
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(seed))
	binary.LittleEndian.PutUint64(buf[8:], uint64(int64(source)))
	h.Write(buf[:])
	return int64(h.Sum64() & (1<<62 - 1))
}
