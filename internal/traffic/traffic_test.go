package traffic

import (
	"math"
	"reflect"
	"testing"
)

func TestPoissonDeterministic(t *testing.T) {
	cfg := Config{N: 50, Rate: 0.05, Horizon: 200, Seed: 7}
	a, err := Poisson(cfg)
	if err != nil {
		t.Fatalf("poisson: %v", err)
	}
	b, err := Poisson(cfg)
	if err != nil {
		t.Fatalf("poisson: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config produced different plans")
	}
	if err := a.Validate(50); err != nil {
		t.Fatalf("generated plan invalid: %v", err)
	}
	if a.Sessions() == 0 {
		t.Fatalf("plan has no sessions (rate %v over horizon %v)", cfg.Rate, cfg.Horizon)
	}
}

func TestPoissonRateSanity(t *testing.T) {
	// 8 sources at 0.1 msg/slot over 2000 slots: expect ~1600 messages.
	cfg := Config{N: 100, Sources: 8, Rate: 0.1, Horizon: 2000, Seed: 3}
	p, err := Poisson(cfg)
	if err != nil {
		t.Fatalf("poisson: %v", err)
	}
	got := float64(p.Sessions())
	want := 8 * 0.1 * 2000
	if got < 0.8*want || got > 1.2*want {
		t.Fatalf("got %v messages, want within 20%% of %v", got, want)
	}
	if load := p.OfferedLoad(); math.Abs(load-got/2000) > 1e-12 {
		t.Fatalf("offered load %v, want %v", load, got/2000)
	}
}

func TestSourceStreamsIndependent(t *testing.T) {
	// Adding sources must not shift the arrivals of existing sources.
	narrow, err := Poisson(Config{N: 20, Sources: 20, Rate: 0.02, Horizon: 500, Seed: 9})
	if err != nil {
		t.Fatalf("poisson: %v", err)
	}
	perSource := map[int][]float64{}
	for _, m := range narrow.Messages {
		perSource[m.Source] = append(perSource[m.Source], m.At)
	}
	// Regenerate with the same seed; every source must reproduce its times.
	again, err := Poisson(Config{N: 20, Sources: 20, Rate: 0.02, Horizon: 500, Seed: 9})
	if err != nil {
		t.Fatalf("poisson: %v", err)
	}
	perSource2 := map[int][]float64{}
	for _, m := range again.Messages {
		perSource2[m.Source] = append(perSource2[m.Source], m.At)
	}
	if !reflect.DeepEqual(perSource, perSource2) {
		t.Fatalf("per-source arrival streams not reproducible")
	}
}

func TestBurstsStructure(t *testing.T) {
	cfg := Config{N: 30, Sources: 2, Rate: 0.1, Horizon: 1000, Seed: 5, Burst: 3}
	p, err := Bursts(cfg)
	if err != nil {
		t.Fatalf("bursts: %v", err)
	}
	if err := p.Validate(30); err != nil {
		t.Fatalf("burst plan invalid: %v", err)
	}
	if p.Sessions()%3 != 0 {
		t.Fatalf("burst plan has %d messages, want a multiple of burst size 3", p.Sessions())
	}
	// Messages of one epoch share a time: count run lengths of equal
	// (source, time) pairs.
	runs := map[int]int{}
	i := 0
	for i < len(p.Messages) {
		j := i
		for j < len(p.Messages) && p.Messages[j].Source == p.Messages[i].Source && p.Messages[j].At == p.Messages[i].At {
			j++
		}
		runs[j-i]++
		i = j
	}
	if len(runs) != 1 || runs[3] == 0 {
		t.Fatalf("epoch run lengths %v, want all runs of length 3", runs)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{N: 0, Rate: 0.1, Horizon: 10},
		{N: 10, Sources: 11, Rate: 0.1, Horizon: 10},
		{N: 10, Rate: 0, Horizon: 10},
		{N: 10, Rate: math.NaN(), Horizon: 10},
		{N: 10, Rate: 0.1, Horizon: -1},
	}
	for i, cfg := range cases {
		if _, err := Poisson(cfg); err == nil {
			t.Errorf("case %d: config %+v accepted, want error", i, cfg)
		}
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{Messages: nil, Horizon: 10},
		{Messages: []Message{{Session: 1, Source: 0, At: 0}}, Horizon: 10},
		{Messages: []Message{{Session: 0, Source: 9, At: 0}}, Horizon: 10},
		{Messages: []Message{{Session: 0, Source: 0, At: 5}, {Session: 1, Source: 0, At: 1}}, Horizon: 10},
		{Messages: []Message{{Session: 0, Source: 0, At: 0}}, Horizon: 0},
	}
	for i, p := range bad {
		if err := p.Validate(5); err == nil {
			t.Errorf("case %d: plan accepted, want error", i)
		}
	}
	good := Plan{Messages: []Message{{Session: 0, Source: 1, At: 0}, {Session: 1, Source: 0, At: 2.5}}, Horizon: 10}
	if err := good.Validate(5); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}
