package protocol_test

import (
	"math/rand"
	"testing"

	"adhocbcast/internal/geo"
	"adhocbcast/internal/graph"
	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
	"adhocbcast/internal/view"
)

// factories lists every protocol constructor under its display name.
func factories() map[string]func() sim.Protocol {
	return map[string]func() sim.Protocol{
		"Flooding":       protocol.Flooding,
		"Generic-Static": func() sim.Protocol { return protocol.Generic(protocol.TimingStatic) },
		"Generic-FR":     func() sim.Protocol { return protocol.Generic(protocol.TimingFirstReceipt) },
		"Generic-FRB":    func() sim.Protocol { return protocol.Generic(protocol.TimingBackoffRandom) },
		"Generic-FRBD":   func() sim.Protocol { return protocol.Generic(protocol.TimingBackoffDegree) },
		"GenericStrong":  func() sim.Protocol { return protocol.GenericStrong(protocol.TimingFirstReceipt) },
		"SP":             protocol.SelfPruningFR,
		"ND":             protocol.NeighborDesignatingFR,
		"MaxDeg":         protocol.HybridMaxDeg,
		"MinPri":         protocol.HybridMinPri,
		"WuLi":           protocol.WuLi,
		"RuleK":          protocol.RuleK,
		"Span":           protocol.Span,
		"MPR":            protocol.MPR,
		"SBA":            protocol.SBA,
		"Stojmenovic":    protocol.Stojmenovic,
		"LimKim-SP":      protocol.LimKimSelfPruning,
		"AHBP":           protocol.AHBP,
		"LENWB":          protocol.LENWB,
		"DP":             protocol.DP,
		"PDP":            protocol.PDP,
		"TDP":            protocol.TDP,
	}
}

// TestFullDeliveryProperty is the central correctness property: every
// protocol must reach every node on every connected workload, across view
// depths, priority metrics, densities and sources.
func TestFullDeliveryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	type workload struct {
		net    *geo.Network
		source int
	}
	var workloads []workload
	for _, cfg := range []geo.Config{
		{N: 20, AvgDegree: 4},
		{N: 40, AvgDegree: 6},
		{N: 40, AvgDegree: 12},
		{N: 80, AvgDegree: 6},
	} {
		for i := 0; i < 3; i++ {
			net, err := geo.Generate(cfg, rng)
			if err != nil {
				t.Fatalf("generate %+v: %v", cfg, err)
			}
			workloads = append(workloads, workload{net: net, source: rng.Intn(cfg.N)})
		}
	}
	for name, mk := range factories() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for wi, w := range workloads {
				for _, hops := range []int{2, 3} {
					for _, metric := range []view.Metric{view.MetricID, view.MetricDegree, view.MetricNCR} {
						res, err := sim.Run(w.net.G, w.source, mk(), sim.Config{
							Hops:   hops,
							Metric: metric,
							Seed:   int64(wi + 1),
						})
						if err != nil {
							t.Fatalf("workload %d hops %d metric %v: %v", wi, hops, metric, err)
						}
						if !res.FullDelivery() {
							t.Fatalf("workload %d hops %d metric %v: delivered %d/%d (forward %v)",
								wi, hops, metric, res.Delivered, res.N, res.Forward)
						}
					}
				}
			}
		})
	}
}

// TestFullDeliveryGlobalViews repeats the delivery property under global
// views, where the coverage conditions prune most aggressively.
func TestFullDeliveryGlobalViews(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	net, err := geo.Generate(geo.Config{N: 60, AvgDegree: 6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for name, mk := range factories() {
		res, err := sim.Run(net.G, 3, mk(), sim.Config{Hops: 0, Seed: 9})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.FullDelivery() {
			t.Fatalf("%s: delivered %d/%d under global view", name, res.Delivered, res.N)
		}
	}
}

// TestFullDeliveryExtremeTopologies runs every protocol on adversarial
// deterministic graphs: path, cycle, star, complete graph, and a barbell.
func TestFullDeliveryExtremeTopologies(t *testing.T) {
	topologies := map[string]*graph.Graph{
		"path":     lineGraph(t, 12),
		"cycle":    cycleGraph(t, 12),
		"star":     starGraph(t, 12),
		"complete": completeGraph(t, 8),
		"barbell":  barbellGraph(t, 5),
	}
	for topoName, g := range topologies {
		for protoName, mk := range factories() {
			res, err := sim.Run(g, 0, mk(), sim.Config{Hops: 2, Seed: 2})
			if err != nil {
				t.Fatalf("%s on %s: %v", protoName, topoName, err)
			}
			if !res.FullDelivery() {
				t.Fatalf("%s on %s: delivered %d/%d (forward %v)",
					protoName, topoName, res.Delivered, res.N, res.Forward)
			}
		}
	}
}

// TestStaticForwardSetSourceIndependent checks the defining property of
// static protocols: the same forward node set (modulo the source itself)
// serves every broadcast.
func TestStaticForwardSetSourceIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	net, err := geo.Generate(geo.Config{N: 50, AvgDegree: 6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	statics := map[string]func() sim.Protocol{
		"Generic-Static": func() sim.Protocol { return protocol.Generic(protocol.TimingStatic) },
		"WuLi":           protocol.WuLi,
		"RuleK":          protocol.RuleK,
		"Span":           protocol.Span,
	}
	sources := []int{0, 17, 42}
	isSource := map[int]bool{0: true, 17: true, 42: true}
	for name, mk := range statics {
		sets := make([]map[int]bool, 0, len(sources))
		for _, src := range sources {
			res, err := sim.Run(net.G, src, mk(), sim.Config{Hops: 2})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			// Sources forward regardless of status, so compare the sets
			// with every source node removed.
			set := make(map[int]bool, len(res.Forward))
			for _, v := range res.Forward {
				if !isSource[v] {
					set[v] = true
				}
			}
			sets = append(sets, set)
		}
		for i := 1; i < len(sets); i++ {
			if len(sets[i]) != len(sets[0]) {
				t.Fatalf("%s: forward sets differ across sources: %v vs %v", name, sets[0], sets[i])
			}
			for v := range sets[0] {
				if !sets[i][v] {
					t.Fatalf("%s: node %d forwards for one source but not another", name, v)
				}
			}
		}
	}
}

// TestFloodingForwardsEveryone pins the baseline.
func TestFloodingForwardsEveryone(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	net, err := geo.Generate(geo.Config{N: 35, AvgDegree: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(net.G, 0, protocol.Flooding(), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ForwardCount() != 35 {
		t.Fatalf("flooding forwarded %d of 35", res.ForwardCount())
	}
}

// TestPruningNeverExceedsFlooding checks every protocol forwards at most as
// many nodes as flooding, and at least one (the source).
func TestPruningNeverExceedsFlooding(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	net, err := geo.Generate(geo.Config{N: 60, AvgDegree: 8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for name, mk := range factories() {
		res, err := sim.Run(net.G, 7, mk(), sim.Config{Hops: 2, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.ForwardCount() < 1 || res.ForwardCount() > 60 {
			t.Fatalf("%s: forward count %d out of range", name, res.ForwardCount())
		}
	}
}

func TestTimingString(t *testing.T) {
	tests := []struct {
		timing protocol.Timing
		want   string
	}{
		{protocol.TimingStatic, "Static"},
		{protocol.TimingFirstReceipt, "FR"},
		{protocol.TimingBackoffRandom, "FRB"},
		{protocol.TimingBackoffDegree, "FRBD"},
		{protocol.Timing(0), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.timing.String(); got != tt.want {
			t.Fatalf("Timing.String() = %q, want %q", got, tt.want)
		}
	}
}

func TestSelectionString(t *testing.T) {
	if protocol.SelfPruning.String() != "self-pruning" ||
		protocol.NeighborDesignating.String() != "neighbor-designating" ||
		protocol.Hybrid.String() != "hybrid" ||
		protocol.Selection(0).String() != "unknown" {
		t.Fatal("selection names wrong")
	}
}

// TestDescribeTable1 pins the Table 1 classification of the special cases.
func TestDescribeTable1(t *testing.T) {
	tests := []struct {
		mk        func() sim.Protocol
		timing    protocol.Timing
		selection protocol.Selection
	}{
		{mk: protocol.RuleK, timing: protocol.TimingStatic, selection: protocol.SelfPruning},
		{mk: protocol.Span, timing: protocol.TimingStatic, selection: protocol.SelfPruning},
		{mk: protocol.MPR, timing: protocol.TimingStatic, selection: protocol.NeighborDesignating},
		{mk: protocol.LENWB, timing: protocol.TimingFirstReceipt, selection: protocol.SelfPruning},
		{mk: protocol.DP, timing: protocol.TimingFirstReceipt, selection: protocol.NeighborDesignating},
		{mk: protocol.PDP, timing: protocol.TimingFirstReceipt, selection: protocol.NeighborDesignating},
		{mk: protocol.SBA, timing: protocol.TimingBackoffRandom, selection: protocol.SelfPruning},
	}
	for _, tt := range tests {
		p := tt.mk()
		d, ok := p.(protocol.Describer)
		if !ok {
			t.Fatalf("%s does not implement Describer", p.Name())
		}
		info := d.Describe()
		if info.Timing != tt.timing || info.Selection != tt.selection {
			t.Fatalf("%s classified as (%v, %v), want (%v, %v)",
				p.Name(), info.Timing, info.Selection, tt.timing, tt.selection)
		}
		if info.Name != p.Name() {
			t.Fatalf("Describe name %q != Name() %q", info.Name, p.Name())
		}
	}
}

// --- topology helpers ---

func lineGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		addEdge(t, g, i, i+1)
	}
	return g
}

func cycleGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g := lineGraph(t, n)
	addEdge(t, g, n-1, 0)
	return g
}

func starGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g := graph.New(n)
	for v := 1; v < n; v++ {
		addEdge(t, g, 0, v)
	}
	return g
}

func completeGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			addEdge(t, g, u, v)
		}
	}
	return g
}

// barbellGraph joins two k-cliques by a single bridge edge.
func barbellGraph(t *testing.T, k int) *graph.Graph {
	t.Helper()
	g := graph.New(2 * k)
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			addEdge(t, g, u, v)
			addEdge(t, g, k+u, k+v)
		}
	}
	addEdge(t, g, k-1, k)
	return g
}

func addEdge(t *testing.T, g *graph.Graph, u, v int) {
	t.Helper()
	if err := g.AddEdge(u, v); err != nil {
		t.Fatal(err)
	}
}

// TestProtocolNamesUnique guards the registry used by CLIs and experiment
// legends: every constructor must yield a distinct display name.
func TestProtocolNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for key, mk := range factories() {
		name := mk().Name()
		if name == "" {
			t.Fatalf("%s has an empty name", key)
		}
		if seen[name] {
			t.Fatalf("duplicate protocol name %q", name)
		}
		seen[name] = true
	}
}

// TestProtocolsAreFreshPerRun checks that two sequential runs of the same
// constructor do not leak state: static forward sets must be recomputed per
// network.
func TestProtocolsAreFreshPerRun(t *testing.T) {
	rngA := rand.New(rand.NewSource(301))
	netA, err := geo.Generate(geo.Config{N: 40, AvgDegree: 6}, rngA)
	if err != nil {
		t.Fatal(err)
	}
	netB, err := geo.Generate(geo.Config{N: 40, AvgDegree: 6}, rngA)
	if err != nil {
		t.Fatal(err)
	}
	for name, mk := range factories() {
		// Run the SAME protocol value on two different networks: the second
		// run must still achieve full delivery, i.e. Init must rebuild all
		// per-run state.
		p := mk()
		if _, err := sim.Run(netA.G, 0, p, sim.Config{Hops: 2, Seed: 1}); err != nil {
			t.Fatalf("%s on A: %v", name, err)
		}
		res, err := sim.Run(netB.G, 0, p, sim.Config{Hops: 2, Seed: 1})
		if err != nil {
			t.Fatalf("%s on B: %v", name, err)
		}
		if !res.FullDelivery() {
			t.Fatalf("%s: stale per-run state broke the second run (%d/%d)",
				name, res.Delivered, res.N)
		}
	}
}
