package protocol

import (
	"adhocbcast/internal/sim"
	"adhocbcast/internal/view"
)

// GreedyCover selects forward neighbors from candidates xs to cover the
// target set ys, using the greedy set-cover heuristic shared by DP, PDP, TDP
// and MPR: repeatedly pick the candidate with the maximum effective degree
// (number of still-uncovered targets adjacent to it), breaking ties by the
// lowest id, until the targets are covered or no candidate helps.
func GreedyCover(lv *view.Local, xs, ys []int) []int {
	n := lv.N()
	remaining := make([]bool, n)
	left := 0
	for _, y := range ys {
		if !remaining[y] {
			remaining[y] = true
			left++
		}
	}
	cands := append([]int(nil), xs...)
	var selected []int
	for left > 0 {
		best, bestCount := -1, 0
		for i, w := range cands {
			if w < 0 {
				continue
			}
			count := 0
			lv.ForEachNeighbor(w, func(y int) {
				if remaining[y] {
					count++
				}
			})
			if count > bestCount || (count == bestCount && count > 0 && w < cands[best]) {
				best, bestCount = i, count
			}
		}
		if best < 0 {
			break // leftover targets are another forwarder's responsibility
		}
		w := cands[best]
		cands[best] = -1
		selected = append(selected, w)
		lv.ForEachNeighbor(w, func(y int) {
			if remaining[y] {
				remaining[y] = false
				left--
			}
		})
	}
	return selected
}

// dpVariant distinguishes the three dominant-pruning target reductions.
type dpVariant int

const (
	variantDP dpVariant = iota + 1
	variantPDP
	variantTDP
)

// dpDesignate builds the DP/PDP/TDP designated forward set for the node in
// st (Section 6.3): candidates X = N(v) - N(u) and targets
// Y = N2(v) - N(u) - N(v), where u is the node v received its first copy
// from; PDP further removes the neighborhoods of the common neighbors of u
// and v, and TDP removes the piggybacked 2-hop neighborhood of u.
func dpDesignate(variant dpVariant) DesignateFunc {
	return func(rt sim.Runtime, st *sim.NodeState) []int {
		lv := st.View
		v := st.ID
		u := st.FirstFrom

		n := lv.N()
		excluded := make([]bool, n)
		excluded[v] = true
		if u >= 0 {
			excluded[u] = true
			lv.ForEachNeighbor(u, func(x int) {
				excluded[x] = true
			})
		}
		if variant == variantPDP && u >= 0 {
			// Remove neighbors of the common neighbors of u and v.
			lv.ForEachNeighbor(u, func(w int) {
				if !lv.HasEdge(v, w) {
					return
				}
				lv.ForEachNeighbor(w, func(x int) {
					excluded[x] = true
				})
			})
		}
		if variant == variantTDP {
			// Remove the piggybacked N2(u).
			for _, x := range st.FirstPacket.Extra {
				if x >= 0 && x < n {
					excluded[x] = true
				}
			}
		}

		var xs []int
		lv.ForEachNeighbor(v, func(w int) {
			if u < 0 || (w != u && !lv.HasEdge(u, w)) {
				xs = append(xs, w)
			}
		})
		var ys []int
		for _, y := range lv.TwoHopTargets() {
			if !excluded[y] {
				ys = append(ys, y)
			}
		}
		return GreedyCover(lv, xs, ys)
	}
}

// NDDesignate builds the designated forward set of the generic
// neighbor-designating scheme ("ND" in Figure 11): a greedy cover of the
// 2-hop neighbors not already covered by any node known to be visited or
// designated, selected from the neighbors that are not known visited. Unlike
// plain DP it exploits the full broadcast state of the local view, which is
// what the generic framework's Step 5 prescribes.
func NDDesignate(rt sim.Runtime, st *sim.NodeState) []int {
	lv := st.View
	v := st.ID
	n := lv.N()
	covered := make([]bool, n)
	lv.ForEachMember(func(x int) {
		if x != v && lv.Status(x) >= view.Designated {
			covered[x] = true
			lv.ForEachNeighbor(x, func(y int) {
				covered[y] = true
			})
		}
	})
	var ys []int
	for _, y := range lv.TwoHopTargets() {
		if !covered[y] {
			ys = append(ys, y)
		}
	}
	var xs []int
	lv.ForEachNeighbor(v, func(w int) {
		if !lv.IsVisited(w) {
			xs = append(xs, w)
		}
	})
	return GreedyCover(lv, xs, ys)
}

// twoHopExtra piggybacks the forwarding node's 2-hop neighborhood N2(v)
// (TDP's payload).
func twoHopExtra(_ sim.Runtime, st *sim.NodeState) []int {
	lv := st.View
	out := []int{st.ID}
	out = append(out, lv.Neighbors()...)
	out = append(out, lv.TwoHopTargets()...)
	return out
}

// HybridDesignate selects at most one designated forward neighbor for the
// hybrid schemes of Section 6.4: a neighbor outside {u} ∪ D(u) that covers
// at least one still-uncovered 2-hop neighbor, picked by maximum effective
// degree (MaxDeg, ties by lowest id) or by lowest id (MinPri).
func HybridDesignate(maxDeg bool) DesignateFunc {
	return func(rt sim.Runtime, st *sim.NodeState) []int {
		lv := st.View
		v := st.ID
		u := st.FirstFrom
		fromD := st.FirstPacket.SenderDesignated()

		n := lv.N()
		covered := make([]bool, n)
		markCovered := func(x int) {
			covered[x] = true
			lv.ForEachNeighbor(x, func(y int) {
				covered[y] = true
			})
		}
		if u >= 0 {
			markCovered(u)
		}
		for _, d := range fromD {
			if d >= 0 && d < n {
				markCovered(d)
			}
		}
		// Nodes already known to be visited or designated cover their own
		// neighborhoods; without this the designate-one chain never damps
		// out and the strict rule forces nearly every node to forward.
		lv.ForEachMember(func(x int) {
			if lv.Status(x) >= view.Designated {
				markCovered(x)
			}
		})

		var uncovered []int
		for _, y := range lv.TwoHopTargets() {
			if !covered[y] {
				uncovered = append(uncovered, y)
			}
		}
		if len(uncovered) == 0 {
			return nil
		}
		inUncovered := make([]bool, n)
		for _, y := range uncovered {
			inUncovered[y] = true
		}

		skip := make(map[int]bool, len(fromD)+1)
		if u >= 0 {
			skip[u] = true
		}
		for _, d := range fromD {
			skip[d] = true
		}

		best, bestCount := -1, 0
		lv.ForEachNeighbor(v, func(w int) {
			if skip[w] || lv.IsVisited(w) {
				return
			}
			count := 0
			lv.ForEachNeighbor(w, func(y int) {
				if inUncovered[y] {
					count++
				}
			})
			if count == 0 {
				return
			}
			if best < 0 {
				best, bestCount = w, count
				return
			}
			if maxDeg && count > bestCount {
				best, bestCount = w, count
			}
			// MinPri: neighbors are iterated in ascending id order, so the
			// first eligible candidate already has the lowest id.
		})
		if best < 0 {
			return nil
		}
		return []int{best}
	}
}
