package protocol

import (
	"math/rand"
	"reflect"
	"testing"

	"adhocbcast/internal/geo"
	"adhocbcast/internal/graph"
	"adhocbcast/internal/sim"
	"adhocbcast/internal/view"
)

func mkGraph(t *testing.T, n int, edges [][2]int) *graph.Graph {
	t.Helper()
	g := graph.New(n)
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func mkView(t *testing.T, g *graph.Graph, owner, k int) *view.Local {
	t.Helper()
	return view.NewLocal(g, owner, k, view.BasePriorities(g, view.MetricID))
}

func TestGreedyCoverEmptyTargets(t *testing.T) {
	g := mkGraph(t, 3, [][2]int{{0, 1}, {1, 2}})
	lv := mkView(t, g, 0, 2)
	if got := GreedyCover(lv, []int{1}, nil); got != nil {
		t.Fatalf("GreedyCover with no targets = %v, want nil", got)
	}
}

func TestGreedyCoverPicksMaxEffectiveDegree(t *testing.T) {
	// Owner 0 with candidates 1, 2: candidate 2 covers targets {4,5},
	// candidate 1 covers {3}. Greedy must pick 2 first, then 1.
	g := mkGraph(t, 6, [][2]int{
		{0, 1}, {0, 2},
		{1, 3},
		{2, 4}, {2, 5},
	})
	lv := mkView(t, g, 0, 2)
	got := GreedyCover(lv, []int{1, 2}, []int{3, 4, 5})
	if !reflect.DeepEqual(got, []int{2, 1}) {
		t.Fatalf("GreedyCover = %v, want [2 1]", got)
	}
}

func TestGreedyCoverTieBreakLowestID(t *testing.T) {
	// Candidates 1 and 2 both cover exactly one target; 1 must be chosen
	// first.
	g := mkGraph(t, 5, [][2]int{
		{0, 1}, {0, 2},
		{1, 3}, {2, 4},
	})
	lv := mkView(t, g, 0, 2)
	got := GreedyCover(lv, []int{2, 1}, []int{3, 4})
	if !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("GreedyCover = %v, want [1 2] (lowest id first on ties)", got)
	}
}

func TestGreedyCoverStopsWhenStuck(t *testing.T) {
	// Target 4 is adjacent to no candidate: greedy must terminate with a
	// partial cover instead of spinning.
	g := mkGraph(t, 5, [][2]int{{0, 1}, {1, 3}, {2, 4}})
	lv := mkView(t, g, 0, 0)
	got := GreedyCover(lv, []int{1}, []int{3, 4})
	if !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("GreedyCover = %v, want [1]", got)
	}
}

func TestGreedyCoverDeduplicatesTargets(t *testing.T) {
	g := mkGraph(t, 3, [][2]int{{0, 1}, {1, 2}})
	lv := mkView(t, g, 0, 2)
	got := GreedyCover(lv, []int{1}, []int{2, 2, 2})
	if !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("GreedyCover = %v, want [1]", got)
	}
}

// TestGreedyCoverCoversAllCoverableQuick property-checks that every target
// adjacent to at least one candidate ends up covered by the selection.
func TestGreedyCoverCoversAllCoverableQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		net, err := geo.Generate(geo.Config{N: 30, AvgDegree: 6}, rng)
		if err != nil {
			t.Fatal(err)
		}
		owner := rng.Intn(30)
		lv := view.NewLocal(net.G, owner, 2, view.BasePriorities(net.G, view.MetricID))
		xs := lv.Neighbors()
		ys := lv.TwoHopTargets()
		selected := GreedyCover(lv, xs, ys)
		covered := make(map[int]bool)
		for _, w := range selected {
			lv.ForEachNeighbor(w, func(y int) { covered[y] = true })
		}
		for _, y := range ys {
			// Every 2-hop target is adjacent to some neighbor by
			// definition, so all must be covered.
			if !covered[y] {
				t.Fatalf("trial %d: target %d uncovered by %v", trial, y, selected)
			}
		}
		// The selection must come from the candidate set without repeats.
		seen := map[int]bool{}
		inXs := map[int]bool{}
		for _, x := range xs {
			inXs[x] = true
		}
		for _, w := range selected {
			if seen[w] || !inXs[w] {
				t.Fatalf("trial %d: invalid selection %v", trial, selected)
			}
			seen[w] = true
		}
	}
}

// fakeState builds a NodeState for designator unit tests without running a
// simulation.
func fakeState(lv *view.Local, from int, pkt sim.Packet) *sim.NodeState {
	return &sim.NodeState{
		ID:          lv.Owner,
		View:        lv,
		Received:    true,
		FirstFrom:   from,
		FirstPacket: pkt,
		LastPacket:  pkt,
	}
}

// dpTestGraph: owner 2 received from 0. N(2) = {0, 1, 3}; N(0) = {1, 2};
// 2-hop targets of 2 are {4, 5} via 3, {6} via 1.
func dpTestGraph(t *testing.T) *graph.Graph {
	return mkGraph(t, 7, [][2]int{
		{0, 1}, {0, 2},
		{2, 1}, {2, 3},
		{3, 4}, {3, 5},
		{1, 6},
	})
}

func TestDPDesignate(t *testing.T) {
	g := dpTestGraph(t)
	lv := mkView(t, g, 2, 2)
	st := fakeState(lv, 0, sim.Packet{Source: 0})
	got := dpDesignate(variantDP)(nil, st)
	// X = N(2) - N(0) - {0} = {3}; 1 is excluded (neighbor of sender 0).
	// Y = {4,5,6} - N(0) = {4,5,6}; 6 is only coverable by 1, which is not
	// a candidate, so greedy selects 3 and stops.
	if !reflect.DeepEqual(got, []int{3}) {
		t.Fatalf("DP designate = %v, want [3]", got)
	}
}

func TestDPDesignateAtSource(t *testing.T) {
	g := dpTestGraph(t)
	lv := mkView(t, g, 2, 2)
	st := fakeState(lv, -1, sim.Packet{Source: 2})
	got := dpDesignate(variantDP)(nil, st)
	// At the source every neighbor is a candidate; targets {4,5,6} need
	// 3 (covers 4,5) and 1 (covers 6). 0 covers nothing new.
	if !reflect.DeepEqual(got, []int{3, 1}) {
		t.Fatalf("source designate = %v, want [3 1]", got)
	}
}

func TestPDPDesignateRemovesCommonNeighborCoverage(t *testing.T) {
	// Owner 2 received from 0; node 1 is a common neighbor of 0 and 2, so
	// PDP removes N(1) ∋ 6 from the targets while DP keeps it.
	g := dpTestGraph(t)
	lvDP := mkView(t, g, 2, 2)
	stDP := fakeState(lvDP, 0, sim.Packet{Source: 0})
	dp := dpDesignate(variantDP)(nil, stDP)

	lvPDP := mkView(t, g, 2, 2)
	stPDP := fakeState(lvPDP, 0, sim.Packet{Source: 0})
	pdp := dpDesignate(variantPDP)(nil, stPDP)

	// Both select {3}: the observable difference is the target set, which
	// here changes nothing because 6 was uncoverable anyway. Use a richer
	// graph where DP must select an extra forwarder.
	if !reflect.DeepEqual(dp, pdp) {
		t.Fatalf("unexpected divergence: dp=%v pdp=%v", dp, pdp)
	}

	// Add node 7 adjacent to 2 and 6: now DP designates {3, 7} (7 covers
	// 6) while PDP knows 6 ∈ N(1) with 1 ∈ N(0) ∩ N(2) and skips it.
	g2 := mkGraph(t, 8, [][2]int{
		{0, 1}, {0, 2},
		{2, 1}, {2, 3},
		{3, 4}, {3, 5},
		{1, 6},
		{2, 7}, {7, 6},
	})
	lv := mkView(t, g2, 2, 2)
	st := fakeState(lv, 0, sim.Packet{Source: 0})
	dp = dpDesignate(variantDP)(nil, st)
	if !reflect.DeepEqual(dp, []int{3, 7}) {
		t.Fatalf("DP designate = %v, want [3 7]", dp)
	}
	lv = mkView(t, g2, 2, 2)
	st = fakeState(lv, 0, sim.Packet{Source: 0})
	pdp = dpDesignate(variantPDP)(nil, st)
	if !reflect.DeepEqual(pdp, []int{3}) {
		t.Fatalf("PDP designate = %v, want [3]", pdp)
	}
}

func TestTDPDesignateUsesPiggybackedTwoHop(t *testing.T) {
	g := dpTestGraph(t)
	lv := mkView(t, g, 2, 2)
	// The sender piggybacked N2(0) ∋ 6: TDP removes it from the targets.
	pkt := sim.Packet{Source: 0, Extra: []int{0, 1, 2, 6}}
	st := fakeState(lv, 0, pkt)
	got := dpDesignate(variantTDP)(nil, st)
	if !reflect.DeepEqual(got, []int{3}) {
		t.Fatalf("TDP designate = %v, want [3]", got)
	}
}

func TestTwoHopExtra(t *testing.T) {
	g := dpTestGraph(t)
	lv := mkView(t, g, 2, 2)
	st := fakeState(lv, 0, sim.Packet{Source: 0})
	got := twoHopExtra(nil, st)
	want := []int{2, 0, 1, 3, 4, 5, 6} // self, neighbors, 2-hop targets
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("twoHopExtra = %v, want %v", got, want)
	}
}

func TestHybridDesignateAtMostOne(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 40; trial++ {
		net, err := geo.Generate(geo.Config{N: 40, AvgDegree: 8}, rng)
		if err != nil {
			t.Fatal(err)
		}
		owner := rng.Intn(40)
		lv := view.NewLocal(net.G, owner, 2, view.BasePriorities(net.G, view.MetricID))
		nbrs := lv.Neighbors()
		from := -1
		if len(nbrs) > 0 {
			from = nbrs[rng.Intn(len(nbrs))]
		}
		st := fakeState(lv, from, sim.Packet{Source: from})
		for _, maxDeg := range []bool{true, false} {
			got := HybridDesignate(maxDeg)(nil, st)
			if len(got) > 1 {
				t.Fatalf("hybrid designated %v (more than one)", got)
			}
			if len(got) == 1 && got[0] == from {
				t.Fatal("hybrid designated the sender")
			}
		}
	}
}

func TestHybridDesignateSkipsSenderAndItsDesignees(t *testing.T) {
	// Owner 0 with neighbors 1 (sender), 2, 3. Sender designated 2. Both 2
	// and 3 cover 2-hop targets, but only 3 is eligible.
	g := mkGraph(t, 6, [][2]int{
		{0, 1}, {0, 2}, {0, 3},
		{2, 4}, {3, 5},
	})
	lv := mkView(t, g, 0, 2)
	pkt := sim.Packet{Source: 1, Trail: []sim.TrailEntry{{Node: 1, Designated: []int{2}}}}
	st := fakeState(lv, 1, pkt)
	got := HybridDesignate(true)(nil, st)
	if !reflect.DeepEqual(got, []int{3}) {
		t.Fatalf("hybrid designate = %v, want [3]", got)
	}
}

func TestHybridDesignateNothingUncovered(t *testing.T) {
	// Every 2-hop target of owner 0 sits in N(2), and the sender 1
	// designated 2: nothing is left uncovered, so no designation happens.
	g := mkGraph(t, 5, [][2]int{
		{0, 1}, {0, 2},
		{2, 3}, {2, 4},
	})
	lv := mkView(t, g, 0, 2)
	pkt := sim.Packet{Source: 1, Trail: []sim.TrailEntry{{Node: 1, Designated: []int{2}}}}
	st := fakeState(lv, 1, pkt)
	if got := HybridDesignate(true)(nil, st); got != nil {
		t.Fatalf("hybrid designate = %v, want nil", got)
	}
}

func TestNDDesignateSkipsVisitedCandidatesAndCoveredTargets(t *testing.T) {
	// Owner 0 with neighbors 1, 2: 1 is known visited, so it is not a
	// candidate, and its neighborhood {3} is already covered; only target 4
	// remains, covered by candidate 2.
	g := mkGraph(t, 5, [][2]int{
		{0, 1}, {0, 2},
		{1, 3}, {2, 4},
	})
	lv := mkView(t, g, 0, 2)
	lv.MarkVisited(1)
	st := fakeState(lv, 1, sim.Packet{Source: 1})
	got := NDDesignate(nil, st)
	if !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("ND designate = %v, want [2]", got)
	}
}

func TestMPRSetsCoverTwoHopNeighborhood(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	net, err := geo.Generate(geo.Config{N: 40, AvgDegree: 8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	base := view.BasePriorities(net.G, view.MetricID)
	for v := 0; v < 40; v++ {
		lv := view.NewLocal(net.G, v, 2, base)
		mprs := GreedyCover(lv, lv.Neighbors(), lv.TwoHopTargets())
		covered := make(map[int]bool)
		for _, w := range mprs {
			net.G.ForEachNeighbor(w, func(y int) { covered[y] = true })
		}
		for _, y := range lv.TwoHopTargets() {
			if !covered[y] {
				t.Fatalf("node %d: 2-hop neighbor %d uncovered by MPR set %v", v, y, mprs)
			}
		}
	}
}
