package protocol

import (
	"sort"
	"strings"

	"adhocbcast/internal/sim"
)

// registry maps canonical CLI names to protocol factories, shared by every
// command that selects a protocol by name (cmd/bcastsim, cmd/bcastnode).
var registry = map[string]func() sim.Protocol{
	"flooding":       Flooding,
	"generic-static": func() sim.Protocol { return Generic(TimingStatic) },
	"generic-fr":     func() sim.Protocol { return Generic(TimingFirstReceipt) },
	"generic-frb":    func() sim.Protocol { return Generic(TimingBackoffRandom) },
	"generic-frbd":   func() sim.Protocol { return Generic(TimingBackoffDegree) },
	"sp":             SelfPruningFR,
	"nd":             NeighborDesignatingFR,
	"maxdeg":         HybridMaxDeg,
	"minpri":         HybridMinPri,
	"wuli":           WuLi,
	"rulek":          RuleK,
	"span":           Span,
	"mpr":            MPR,
	"sba":            SBA,
	"stojmenovic":    Stojmenovic,
	"limkim-sp":      LimKimSelfPruning,
	"ahbp":           AHBP,
	"lenwb":          LENWB,
	"dp":             DP,
	"pdp":            PDP,
	"tdp":            TDP,
}

// ByName returns the factory registered under name (case-insensitive). The
// second result reports whether the name is known.
func ByName(name string) (func() sim.Protocol, bool) {
	mk, ok := registry[strings.ToLower(name)]
	return mk, ok
}

// Names returns the sorted list of registered protocol names.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
