package protocol

import "adhocbcast/internal/sim"

// Options configures one instance of the generic protocol engine.
type Options struct {
	// Name is the display name.
	Name string
	// Timing selects the decision timing policy.
	Timing Timing
	// Selection classifies the protocol for reporting.
	Selection Selection
	// Covered is the coverage condition; nil means never covered (pure
	// flooding behavior for self-pruning protocols).
	Covered CondFunc
	// SelfPrune enables self decisions. When false the node forwards only
	// if designated.
	SelfPrune bool
	// Designate selects designated forward neighbors at forwarding time.
	Designate DesignateFunc
	// StrictDesignation forces every designated node to forward regardless
	// of its own coverage condition (the strict rule used in Figure 11).
	StrictDesignation bool
	// Extra builds an optional packet payload at forwarding time.
	Extra ExtraFunc
}

// engine implements Algorithm 1 parameterized by Options.
type engine struct {
	opts   Options
	status []bool // static forward status (TimingStatic only)
}

var (
	_ sim.Protocol = (*engine)(nil)
	_ Describer    = (*engine)(nil)
)

// New builds a protocol from explicit engine options. Most callers should
// prefer the named constructors (Generic, DP, SBA, ...).
func New(opts Options) sim.Protocol {
	return &engine{opts: opts}
}

func (e *engine) Name() string { return e.opts.Name }

func (e *engine) Describe() Info {
	return Info{
		Name:      e.opts.Name,
		Timing:    e.opts.Timing,
		Selection: e.opts.Selection,
	}
}

func (e *engine) Init(net *sim.Network) {
	if e.opts.Timing != TimingStatic {
		return
	}
	// Static protocols decide every status proactively on the pristine
	// views (topology only, no broadcast state).
	n := net.G.N()
	e.status = make([]bool, n)
	for v := 0; v < n; v++ {
		e.status[v] = !e.covered(net, net.State(v))
	}
}

func (e *engine) Start(net *sim.Network, source int) {
	// The source node always forwards the packet.
	e.forward(net, source)
}

func (e *engine) OnReceive(net *sim.Network, v int, r Receipt) {
	st := net.State(v)
	if st.Sent {
		return
	}
	first := len(st.Receipts) == 1

	if e.opts.Timing == TimingStatic {
		if first && e.status[v] {
			e.forward(net, v)
		} else if first {
			net.MarkNonForward(v)
		}
		return
	}

	// The strict rule: a designated node forwards no matter what, even if
	// it had already taken non-forward status but has not yet transmitted.
	if e.opts.StrictDesignation && st.Designated() {
		e.forward(net, v)
		return
	}

	if !e.opts.SelfPrune {
		// Pure neighbor-designating without the strict rule: a designated
		// node may still decline if its coverage condition holds.
		if st.Designated() {
			if e.covered(net, st) {
				net.MarkNonForward(v)
				return
			}
			e.forward(net, v)
		}
		return
	}

	if first {
		net.SetTimer(v, e.delay(net, v))
		return
	}
	// Relaxed designation with self-pruning: a designation can arrive after
	// the node already took non-forward status at its un-designated
	// priority. Neighbors now rely on it at the raised 1.5 priority, so it
	// must re-evaluate there and forward unless still covered.
	if e.opts.Designate != nil && st.NonForward && st.Designated() {
		if !e.covered(net, st) {
			e.forward(net, v)
		}
	}
}

func (e *engine) OnTimer(net *sim.Network, v int) {
	st := net.State(v)
	if st.Sent || st.NonForward {
		return
	}
	if e.opts.StrictDesignation && st.Designated() {
		e.forward(net, v)
		return
	}
	if e.covered(net, st) {
		net.MarkNonForward(v)
		return
	}
	e.forward(net, v)
}

// covered evaluates the engine's coverage condition for the node owning st,
// folding in the simulator's conservative fallback: a node that knows its
// view may be incomplete never trusts a "covered" conclusion drawn from that
// view, so it reports uncovered and keeps forward status (the paper's
// default-forward safety property under imperfect knowledge). A nil Covered
// option reports uncovered, preserving flooding behavior.
func (e *engine) covered(net *sim.Network, st *sim.NodeState) bool {
	if e.opts.Covered == nil {
		return false
	}
	if net != nil && net.ConservativeHold(st.ID) {
		return false
	}
	return e.opts.Covered(net, st)
}

func (e *engine) delay(net *sim.Network, v int) float64 {
	switch e.opts.Timing {
	case TimingBackoffRandom:
		return net.RandomBackoff()
	case TimingBackoffDegree:
		return net.DegreeBackoff(v)
	default:
		return 0
	}
}

func (e *engine) forward(net *sim.Network, v int) {
	st := net.State(v)
	if st.Sent {
		return
	}
	var designated, extra []int
	if e.opts.Designate != nil {
		designated = e.opts.Designate(net, st)
	}
	if e.opts.Extra != nil {
		extra = e.opts.Extra(net, st)
	}
	net.TransmitExtra(v, designated, extra)
}

// Receipt aliases the simulator receipt type for protocol callbacks.
type Receipt = sim.Receipt
