package protocol

import (
	"adhocbcast/internal/core"
	"adhocbcast/internal/sim"
)

// Options configures one instance of the generic protocol engine.
type Options struct {
	// Name is the display name.
	Name string
	// Timing selects the decision timing policy.
	Timing Timing
	// Selection classifies the protocol for reporting.
	Selection Selection
	// Covered is the coverage condition; nil means never covered (pure
	// flooding behavior for self-pruning protocols).
	Covered CondFunc
	// CoveredEval, when non-nil, computes the same predicate as Covered
	// against the supplied evaluator instead of the network's shared one.
	// It must be pure: no network mutation, no randomness, no reads of
	// mutable state outside st. Setting it lets the fast engine precompute
	// pending-timer verdicts on worker goroutines (sim.TimerPrecomputer);
	// correctness never depends on it. Constructors set it alongside
	// Covered whenever the condition qualifies.
	CoveredEval func(st *sim.NodeState, ev *core.Evaluator) bool
	// SelfPrune enables self decisions. When false the node forwards only
	// if designated.
	SelfPrune bool
	// Designate selects designated forward neighbors at forwarding time.
	Designate DesignateFunc
	// StrictDesignation forces every designated node to forward regardless
	// of its own coverage condition (the strict rule used in Figure 11).
	StrictDesignation bool
	// Extra builds an optional packet payload at forwarding time.
	Extra ExtraFunc
}

// engine implements Algorithm 1 parameterized by Options.
type engine struct {
	opts   Options
	status []bool // static forward status (TimingStatic only)
}

var (
	_ sim.Protocol         = (*engine)(nil)
	_ Describer            = (*engine)(nil)
	_ sim.TimerPrecomputer = (*engine)(nil)
	_ sim.NonDesignating   = (*engine)(nil)
)

// New builds a protocol from explicit engine options. Most callers should
// prefer the named constructors (Generic, DP, SBA, ...).
func New(opts Options) sim.Protocol {
	return &engine{opts: opts}
}

func (e *engine) Name() string { return e.opts.Name }

func (e *engine) Describe() Info {
	return Info{
		Name:      e.opts.Name,
		Timing:    e.opts.Timing,
		Selection: e.opts.Selection,
	}
}

func (e *engine) Init(rt sim.Runtime) {
	if e.opts.Timing != TimingStatic {
		return
	}
	// Static protocols decide every status proactively on the pristine
	// views (topology only, no broadcast state). Only the runtime's local
	// nodes are decided here: all of them in the simulator, just the owning
	// node on a live per-node runtime.
	e.status = make([]bool, rt.N())
	rt.ForEachLocalNode(func(v int) {
		e.status[v] = !e.covered(rt, rt.State(v))
	})
}

func (e *engine) Start(rt sim.Runtime, source int) {
	// The source node always forwards the packet.
	e.forward(rt, source)
}

func (e *engine) OnReceive(rt sim.Runtime, v int, r Receipt) {
	st := rt.State(v)
	if st.Sent {
		return
	}
	first := len(st.Receipts) == 1

	if e.opts.Timing == TimingStatic {
		if first && e.status[v] {
			e.forward(rt, v)
		} else if first {
			rt.MarkNonForward(v)
		}
		return
	}

	// The strict rule: a designated node forwards no matter what, even if
	// it had already taken non-forward status but has not yet transmitted.
	if e.opts.StrictDesignation && st.Designated() {
		e.forward(rt, v)
		return
	}

	if !e.opts.SelfPrune {
		// Pure neighbor-designating without the strict rule: a designated
		// node may still decline if its coverage condition holds.
		if st.Designated() {
			if e.covered(rt, st) {
				rt.MarkNonForward(v)
				return
			}
			e.forward(rt, v)
		}
		return
	}

	if first {
		rt.SetTimer(v, e.delay(rt, v))
		return
	}
	// Relaxed designation with self-pruning: a designation can arrive after
	// the node already took non-forward status at its un-designated
	// priority. Neighbors now rely on it at the raised 1.5 priority, so it
	// must re-evaluate there and forward unless still covered.
	if e.opts.Designate != nil && st.NonForward && st.Designated() {
		if !e.covered(rt, st) {
			e.forward(rt, v)
		}
	}
}

func (e *engine) OnTimer(rt sim.Runtime, v int) {
	st := rt.State(v)
	if st.Sent || st.NonForward {
		return
	}
	if e.opts.StrictDesignation && st.Designated() {
		e.forward(rt, v)
		return
	}
	if e.covered(rt, st) {
		rt.MarkNonForward(v)
		return
	}
	e.forward(rt, v)
}

// covered evaluates the engine's coverage condition for the node owning st,
// folding in the simulator's conservative fallback: a node that knows its
// view may be incomplete never trusts a "covered" conclusion drawn from that
// view, so it reports uncovered and keeps forward status (the paper's
// default-forward safety property under imperfect knowledge). A nil Covered
// option reports uncovered, preserving flooding behavior.
func (e *engine) covered(rt sim.Runtime, st *sim.NodeState) bool {
	if e.opts.Covered == nil {
		return false
	}
	if rt != nil {
		if c, ok := rt.TakePreparedCovered(st.ID); ok {
			// The fast engine precomputed this node's pending-timer verdict
			// (PrecomputeTimer below) — including the conservative-fallback
			// override — on a worker goroutine.
			return c
		}
		if rt.ConservativeHold(st.ID) {
			return false
		}
	}
	return e.opts.Covered(rt, st)
}

// PrecomputeTimer implements sim.TimerPrecomputer: it returns the verdict
// covered() will reach when node v's timer dispatches at the current instant,
// provided the constructor declared a pure CoveredEval form of the condition
// and no engine rule preempts the coverage evaluation (already sent, already
// non-forward, strict designation). The simulator guarantees the timer is v's
// earliest event of the instant, so the state read here is the state the
// sequential dispatch would see.
func (e *engine) PrecomputeTimer(net *sim.Network, v int, ev *core.Evaluator) (bool, bool) {
	if e.opts.Covered == nil || e.opts.CoveredEval == nil {
		return false, false
	}
	st := net.State(v)
	if st.Sent || st.NonForward {
		return false, false
	}
	if e.opts.StrictDesignation && st.Designated() {
		return false, false
	}
	if net.ConservativeHold(v) {
		return false, true
	}
	return e.opts.CoveredEval(st, ev), true
}

// NonDesignating implements sim.NonDesignating: with no designation mechanism
// configured, packets never carry designated sets and the engine's receive
// path for a node with only receive events pending reads nothing a view merge
// changes (the self-pruning path just sets a timer on first receipt; the
// static path consults only the precomputed status). Coverage conditions read
// view marks, but they run from timers, never from OnReceive, on these
// configurations.
func (e *engine) NonDesignating() bool {
	return e.opts.Designate == nil && e.opts.Extra == nil && !e.opts.StrictDesignation &&
		(e.opts.SelfPrune || e.opts.Timing == TimingStatic)
}

func (e *engine) delay(rt sim.Runtime, v int) float64 {
	switch e.opts.Timing {
	case TimingBackoffRandom:
		return rt.RandomBackoff()
	case TimingBackoffDegree:
		return rt.DegreeBackoff(v)
	default:
		return 0
	}
}

func (e *engine) forward(rt sim.Runtime, v int) {
	st := rt.State(v)
	if st.Sent {
		return
	}
	var designated, extra []int
	if e.opts.Designate != nil {
		designated = e.opts.Designate(rt, st)
	}
	if e.opts.Extra != nil {
		extra = e.opts.Extra(rt, st)
	}
	rt.TransmitExtra(v, designated, extra)
}

// Receipt aliases the simulator receipt type for protocol callbacks.
type Receipt = sim.Receipt
