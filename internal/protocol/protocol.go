// Package protocol implements Algorithm 1 of the paper — the generic
// distributed broadcast protocol — as a configurable engine over the four
// implementation axes (timing, selection, space, priority), together with
// the nine published special cases the paper analyzes (Wu-Li, Dai-Wu Rule-k,
// enhanced Span, MPR, SBA, LENWB, DP, PDP, TDP), the new hybrid algorithms
// (MaxDeg, MinPri), and a blind-flooding baseline.
//
// Space (k-hop views) and priority (ID / Degree / NCR) are configured on the
// simulator (sim.Config); timing and selection are properties of the
// protocol values constructed here.
package protocol

import "adhocbcast/internal/sim"

// Timing is the timing axis of Section 4.1: when a node's forward status is
// determined.
type Timing int

// Timing policies.
const (
	// TimingStatic decides every status proactively from topology alone.
	TimingStatic Timing = iota + 1
	// TimingFirstReceipt decides immediately after the first packet copy.
	TimingFirstReceipt
	// TimingBackoffRandom decides after a uniform random backoff (FRB).
	TimingBackoffRandom
	// TimingBackoffDegree decides after a backoff inversely proportional to
	// the node degree (FRBD).
	TimingBackoffDegree
)

// String returns the abbreviation used in the paper's figures.
func (t Timing) String() string {
	switch t {
	case TimingStatic:
		return "Static"
	case TimingFirstReceipt:
		return "FR"
	case TimingBackoffRandom:
		return "FRB"
	case TimingBackoffDegree:
		return "FRBD"
	default:
		return "unknown"
	}
}

// Selection is the selection axis of Section 4.2: who determines a node's
// status.
type Selection int

// Selection policies.
const (
	// SelfPruning lets each node decide its own status.
	SelfPruning Selection = iota + 1
	// NeighborDesignating lets neighbors decide: a node forwards iff
	// designated.
	NeighborDesignating
	// Hybrid combines both: self-pruning plus designation of one neighbor.
	Hybrid
)

// String returns a short selection-policy name.
func (s Selection) String() string {
	switch s {
	case SelfPruning:
		return "self-pruning"
	case NeighborDesignating:
		return "neighbor-designating"
	case Hybrid:
		return "hybrid"
	default:
		return "unknown"
	}
}

// CondFunc evaluates a coverage condition for the node owning st; true means
// the node is covered and may take non-forward status.
type CondFunc func(rt sim.Runtime, st *sim.NodeState) bool

// DesignateFunc selects the designated forward set a forwarding node
// attaches to its transmission.
type DesignateFunc func(rt sim.Runtime, st *sim.NodeState) []int

// ExtraFunc builds a protocol-specific packet payload for a forwarding node
// (e.g. TDP piggybacks the sender's 2-hop neighborhood).
type ExtraFunc func(rt sim.Runtime, st *sim.NodeState) []int

// Info describes a protocol for reporting (Table 1 of the paper).
type Info struct {
	Name      string
	Timing    Timing
	Selection Selection
}

// Describer is implemented by protocols that can report their Table 1
// classification.
type Describer interface {
	Describe() Info
}
