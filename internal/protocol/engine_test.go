package protocol

import (
	"testing"

	"adhocbcast/internal/graph"
	"adhocbcast/internal/sim"
)

func lineGraph6(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(6)
	for i := 0; i < 5; i++ {
		if err := g.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestEngineDescribe(t *testing.T) {
	p := New(Options{Name: "X", Timing: TimingBackoffRandom, Selection: Hybrid})
	d, ok := p.(Describer)
	if !ok {
		t.Fatal("engine does not describe itself")
	}
	info := d.Describe()
	if info.Name != "X" || info.Timing != TimingBackoffRandom || info.Selection != Hybrid {
		t.Fatalf("Describe() = %+v", info)
	}
	if p.Name() != "X" {
		t.Fatalf("Name() = %q", p.Name())
	}
}

func TestEngineNilCoveredFloods(t *testing.T) {
	// With no coverage condition, a self-pruning engine degenerates to
	// flooding: every node forwards.
	g := lineGraph6(t)
	p := New(Options{Name: "nil-cond", Timing: TimingFirstReceipt, SelfPrune: true})
	res, err := sim.Run(g, 0, p, sim.Config{Hops: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.ForwardCount() != 6 {
		t.Fatalf("forward count = %d, want 6", res.ForwardCount())
	}
}

func TestEngineStaticStatusPrecomputed(t *testing.T) {
	// A static engine whose condition covers everyone forwards only at the
	// source: delivery then fails beyond its neighbors — precisely because
	// the statuses were precomputed and the broadcast state is ignored.
	// (Such a condition violates the coverage requirements; the engine must
	// still execute it faithfully.)
	g := lineGraph6(t)
	always := func(sim.Runtime, *sim.NodeState) bool { return true }
	p := New(Options{Name: "static-all-covered", Timing: TimingStatic, SelfPrune: true, Covered: always})
	res, err := sim.Run(g, 0, p, sim.Config{Hops: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.ForwardCount() != 1 {
		t.Fatalf("forward count = %d, want 1 (source only)", res.ForwardCount())
	}
	if res.Delivered != 2 {
		t.Fatalf("delivered = %d, want 2 (source + one neighbor)", res.Delivered)
	}
}

func TestEngineStrictDesignationForcesForward(t *testing.T) {
	// A strict neighbor-designating engine where the source designates its
	// highest-id neighbor: that node must forward even though the coverage
	// condition would allow pruning.
	g := lineGraph6(t)
	p := New(Options{
		Name:   "strict",
		Timing: TimingFirstReceipt,
		Covered: func(sim.Runtime, *sim.NodeState) bool {
			return true // everyone covered: only designations force forwards
		},
		SelfPrune:         true,
		StrictDesignation: true,
		Designate: func(rt sim.Runtime, st *sim.NodeState) []int {
			// Designate the largest neighbor id.
			nbrs := st.View.Neighbors()
			if len(nbrs) == 0 {
				return nil
			}
			return []int{nbrs[len(nbrs)-1]}
		},
	})
	res, err := sim.Run(g, 0, p, sim.Config{Hops: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 0 transmits designating 1; 1 forced, designates 2; and so on down
	// the line: everyone forwards.
	if res.ForwardCount() != 6 {
		t.Fatalf("forward count = %d, want 6 (designation chain)", res.ForwardCount())
	}
	if !res.FullDelivery() {
		t.Fatalf("delivered %d/%d", res.Delivered, res.N)
	}
}

func TestEngineRelaxedNDDeclinesWhenCovered(t *testing.T) {
	// Relaxed ND on a triangle plus tail: source 0 designates 1 and 2; node
	// 1's neighbors {0,2} are directly connected, and with node 2 also
	// designated (higher id, status 1.5), node 1 may decline.
	g := graph.New(4)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	p := New(Options{
		Name:      "relaxed-nd",
		Timing:    TimingFirstReceipt,
		Selection: NeighborDesignating,
		Covered:   CoveredGeneric,
		Designate: func(rt sim.Runtime, st *sim.NodeState) []int {
			if st.ID == 0 {
				return []int{1, 2}
			}
			return nil
		},
	})
	res, err := sim.Run(g, 0, p, sim.Config{Hops: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FullDelivery() {
		t.Fatalf("delivered %d/%d", res.Delivered, res.N)
	}
	for _, v := range res.Forward {
		if v == 1 {
			t.Fatal("node 1 forwarded despite being covered at its designated priority")
		}
	}
	// Node 2 must forward: its neighbor 3 is reachable no other way.
	found := false
	for _, v := range res.Forward {
		if v == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("node 2 did not forward")
	}
}

func TestEngineUndesignatedNDNodeStaysSilent(t *testing.T) {
	// Pure ND with a designator that never designates: only the source
	// transmits, nobody else may.
	g := lineGraph6(t)
	p := New(Options{
		Name:      "nd-silent",
		Timing:    TimingFirstReceipt,
		Selection: NeighborDesignating,
		Designate: func(sim.Runtime, *sim.NodeState) []int { return nil },
	})
	res, err := sim.Run(g, 0, p, sim.Config{Hops: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.ForwardCount() != 1 {
		t.Fatalf("forward count = %d, want 1", res.ForwardCount())
	}
}

func TestEngineBackoffDelaysDecisions(t *testing.T) {
	// FRB completion time must exceed FR completion time on the same
	// workload (backoff trades delay for fewer forwards).
	g := lineGraph6(t)
	fr, err := sim.Run(g, 0, Generic(TimingFirstReceipt), sim.Config{Hops: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	frb, err := sim.Run(g, 0, Generic(TimingBackoffRandom), sim.Config{Hops: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if frb.Finish <= fr.Finish {
		t.Fatalf("FRB finish %v not after FR finish %v", frb.Finish, fr.Finish)
	}
}

func TestEngineTimerAfterSentIsNoop(t *testing.T) {
	// A node designated (strict) forwards on receive; its pending timer
	// must then do nothing. Exercised via a hybrid where designation and
	// self-decision race: full delivery plus forward-once are the
	// observable invariants.
	g := lineGraph6(t)
	res, err := sim.Run(g, 0, HybridMaxDeg(), sim.Config{Hops: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, v := range res.Forward {
		if seen[v] {
			t.Fatalf("node %d forwarded twice", v)
		}
		seen[v] = true
	}
	if !res.FullDelivery() {
		t.Fatalf("delivered %d/%d", res.Delivered, res.N)
	}
}

func TestMPRRequiresPiggyback(t *testing.T) {
	// MPR designations travel in the packet trail; with piggybacking
	// disabled nobody learns their designation and the broadcast stalls
	// after the source. This documents the documented h >= 1 requirement.
	g := lineGraph6(t)
	res, err := sim.Run(g, 0, MPR(), sim.Config{Hops: 2, PiggybackDepth: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.FullDelivery() {
		t.Fatal("MPR should stall without piggybacked designations")
	}
	res, err = sim.Run(g, 0, MPR(), sim.Config{Hops: 2, PiggybackDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FullDelivery() {
		t.Fatalf("MPR with h=1 delivered %d/%d", res.Delivered, res.N)
	}
}

func TestMPRRelaxedRuleSkipsNonFirstDesignator(t *testing.T) {
	// Diamond 0-{1,2}-3 with 1-2 connected: node 3 receives first from the
	// earlier transmitter; if that sender did not designate it, node 3
	// stays silent even if the later copy designates it.
	g := graph.New(5)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {3, 4}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sim.Run(g, 0, MPR(), sim.Config{Hops: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FullDelivery() {
		t.Fatalf("delivered %d/%d (forward %v)", res.Delivered, res.N, res.Forward)
	}
	// Sanity: MPR(0) on this graph is a single relay (1 covers 3; ties to
	// lowest id), so node 2 must not forward.
	for _, v := range res.Forward {
		if v == 2 {
			t.Fatalf("node 2 forwarded; forward set %v", res.Forward)
		}
	}
}

func TestGenericStrongName(t *testing.T) {
	p := GenericStrong(TimingFirstReceipt)
	if p.Name() != "GenericStrong-FR" {
		t.Fatalf("Name = %q", p.Name())
	}
	if Generic(TimingStatic).Name() != "Generic-Static" {
		t.Fatal("generic static name wrong")
	}
}
