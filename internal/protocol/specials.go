package protocol

import (
	"adhocbcast/internal/core"
	"adhocbcast/internal/sim"
)

// WuLi returns Wu and Li's marking process with pruning Rules 1 and 2
// (Section 6.1): a node is a gateway iff it is marked (two unconnected
// neighbors) and neither pruning rule applies.
func WuLi() sim.Protocol {
	return New(Options{
		Name:      "WuLi",
		Timing:    TimingStatic,
		Selection: SelfPruning,
		Covered: func(_ sim.Runtime, st *sim.NodeState) bool {
			return wuLiCovered(st)
		},
		CoveredEval: func(st *sim.NodeState, _ *core.Evaluator) bool {
			return wuLiCovered(st)
		},
		SelfPrune: true,
	})
}

// RuleK returns Dai and Wu's Rule-k algorithm (Section 6.1) in its
// restricted implementation: a node prunes itself when a single
// self-connected set of higher-priority coverage nodes dominates its
// neighborhood, with coverage nodes drawn from the neighbors (2-hop
// information) or the 2-hop neighborhood (3-hop information).
func RuleK() sim.Protocol {
	return New(Options{
		Name:      "Rule k",
		Timing:    TimingStatic,
		Selection: SelfPruning,
		Covered: func(rt sim.Runtime, st *sim.NodeState) bool {
			return rt.Evaluator().StrongCoveredRestricted(st.View, ruleKDist(st))
		},
		CoveredEval: func(st *sim.NodeState, ev *core.Evaluator) bool {
			return ev.StrongCoveredRestricted(st.View, ruleKDist(st))
		},
		SelfPrune: true,
	})
}

// Span returns the enhanced Span of Section 6.1: a node withdraws as a
// coordinator iff every pair of neighbors is connected directly or through
// at most two higher-priority intermediates (the coverage condition with
// replacement paths capped at three hops).
func Span() sim.Protocol {
	return New(Options{
		Name:      "Span",
		Timing:    TimingStatic,
		Selection: SelfPruning,
		Covered: func(_ sim.Runtime, st *sim.NodeState) bool {
			return core.SpanCovered(st.View)
		},
		CoveredEval: func(st *sim.NodeState, _ *core.Evaluator) bool {
			return core.SpanCovered(st.View)
		},
		SelfPrune: true,
	})
}

// SBA returns Peng and Lu's Scalable Broadcast Algorithm (Section 6.2):
// first-receipt-with-backoff self-pruning where a node stays silent iff its
// whole neighborhood is covered by the visited neighbors it overheard.
func SBA() sim.Protocol {
	return New(Options{
		Name:      "SBA",
		Timing:    TimingBackoffRandom,
		Selection: SelfPruning,
		Covered: func(_ sim.Runtime, st *sim.NodeState) bool {
			return core.SBACovered(st.View)
		},
		CoveredEval: func(st *sim.NodeState, _ *core.Evaluator) bool {
			return core.SBACovered(st.View)
		},
		SelfPrune: true,
	})
}

// Stojmenovic returns Stojmenovic, Seddigh and Zunic's algorithm
// (Section 6.2): Wu-Li's marking process and pruning rules (originally
// driven by geographic positions standing in for 2-hop information) further
// reduced by an SBA-style neighbor-elimination pass during a backoff window.
// A node stays silent if it is statically covered (unmarked, or pruned by
// Rule 1/2) or if all its neighbors were eliminated by overheard forwards.
func Stojmenovic() sim.Protocol {
	return New(Options{
		Name:      "Stojmenovic",
		Timing:    TimingBackoffRandom,
		Selection: SelfPruning,
		Covered: func(_ sim.Runtime, st *sim.NodeState) bool {
			return stojmenovicCovered(st)
		},
		CoveredEval: func(st *sim.NodeState, _ *core.Evaluator) bool {
			return stojmenovicCovered(st)
		},
		SelfPrune: true,
	})
}

// LimKimSelfPruning returns Lim and Kim's simple self-pruning scheme
// (Section 6.3): the first-receipt version of SBA — upon its first packet
// copy a node stays silent iff its whole neighborhood is covered by the
// visited neighbors it already knows about.
func LimKimSelfPruning() sim.Protocol {
	return New(Options{
		Name:      "LimKim-SP",
		Timing:    TimingFirstReceipt,
		Selection: SelfPruning,
		Covered: func(_ sim.Runtime, st *sim.NodeState) bool {
			return core.SBACovered(st.View)
		},
		CoveredEval: func(st *sim.NodeState, _ *core.Evaluator) bool {
			return core.SBACovered(st.View)
		},
		SelfPrune: true,
	})
}

// LENWB returns Sucec and Marsic's Lightweight and Efficient Network-Wide
// Broadcast (Section 6.2): on first receipt from u, a node stays silent iff
// all its neighbors are connected to u via higher-priority nodes.
func LENWB() sim.Protocol {
	return New(Options{
		Name:      "LENWB",
		Timing:    TimingFirstReceipt,
		Selection: SelfPruning,
		Covered: func(_ sim.Runtime, st *sim.NodeState) bool {
			return core.LENWBCovered(st.View, st.FirstFrom)
		},
		CoveredEval: func(st *sim.NodeState, _ *core.Evaluator) bool {
			return core.LENWBCovered(st.View, st.FirstFrom)
		},
		SelfPrune: true,
	})
}

// AHBP returns Peng and Lu's Ad Hoc Broadcast Protocol (cited among the
// neighbor-designating methods in the paper's introduction): every
// forwarder selects broadcast relay gateways among its neighbors to cover
// the 2-hop nodes not already covered under the current broadcast state,
// and the selected gateways must forward (the strict rule).
func AHBP() sim.Protocol {
	return New(Options{
		Name:              "AHBP",
		Timing:            TimingFirstReceipt,
		Selection:         NeighborDesignating,
		Designate:         NDDesignate,
		StrictDesignation: true,
	})
}

// DP returns Lim and Kim's dominant pruning (Section 6.3): designated nodes
// forward and greedily designate neighbors in X = N(v)-N(u) to cover
// Y = N2(v)-N(u)-N(v).
func DP() sim.Protocol {
	return New(Options{
		Name:              "DP",
		Timing:            TimingFirstReceipt,
		Selection:         NeighborDesignating,
		Designate:         dpDesignate(variantDP),
		StrictDesignation: true,
	})
}

// PDP returns Lou and Wu's partial dominant pruning (Section 6.3): DP with
// the neighbors of the common neighbors of u and v removed from the target
// set.
func PDP() sim.Protocol {
	return New(Options{
		Name:              "PDP",
		Timing:            TimingFirstReceipt,
		Selection:         NeighborDesignating,
		Designate:         dpDesignate(variantPDP),
		StrictDesignation: true,
	})
}

// TDP returns Lou and Wu's total dominant pruning (Section 6.3): DP where
// the forwarder piggybacks its 2-hop neighborhood N2(u) and the next
// forwarder removes all of it from the target set.
func TDP() sim.Protocol {
	return New(Options{
		Name:              "TDP",
		Timing:            TimingFirstReceipt,
		Selection:         NeighborDesignating,
		Designate:         dpDesignate(variantTDP),
		StrictDesignation: true,
		Extra:             twoHopExtra,
	})
}

// wuLiCovered is the Wu-Li non-gateway predicate shared by the CondFunc and
// CoveredEval forms: unmarked, or unmarked by pruning Rule 1 or 2.
func wuLiCovered(st *sim.NodeState) bool {
	if !core.WuLiMarked(st.View) {
		return true
	}
	return core.WuLiRule1(st.View) || core.WuLiRule2(st.View)
}

// ruleKDist is Rule k's coverage-node distance bound for the view in use.
func ruleKDist(st *sim.NodeState) int {
	maxDist := st.View.Hops - 1
	if st.View.Hops <= 0 {
		maxDist = 2 // global view: the paper's 3-hop-style restriction
	}
	if maxDist < 1 {
		maxDist = 1
	}
	return maxDist
}

// stojmenovicCovered is Stojmenovic's silence predicate shared by the
// CondFunc and CoveredEval forms: statically covered by the Wu-Li rules, or
// dynamically covered by SBA-style neighbor elimination.
func stojmenovicCovered(st *sim.NodeState) bool {
	lv := st.View
	if !core.WuLiMarked(lv) || core.WuLiRule1(lv) || core.WuLiRule2(lv) {
		return true
	}
	return core.SBACovered(lv)
}
