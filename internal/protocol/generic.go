package protocol

import (
	"adhocbcast/internal/core"
	"adhocbcast/internal/sim"
)

// CoveredGeneric adapts the generic coverage condition of Section 3 as a
// CondFunc, evaluated on the run's shared scratch evaluator.
func CoveredGeneric(rt sim.Runtime, st *sim.NodeState) bool {
	if rt == nil {
		return core.Covered(st.View)
	}
	return rt.Evaluator().Covered(st.View)
}

// CoveredStrong adapts the strong coverage condition of Section 6 as a
// CondFunc, evaluated on the run's shared scratch evaluator.
func CoveredStrong(rt sim.Runtime, st *sim.NodeState) bool {
	if rt == nil {
		return core.StrongCovered(st.View)
	}
	return rt.Evaluator().StrongCovered(st.View)
}

// evalGeneric and evalStrong are the CoveredEval forms of the two conditions:
// the same predicates against a caller-supplied evaluator, letting the fast
// engine precompute timer verdicts in parallel.
func evalGeneric(st *sim.NodeState, ev *core.Evaluator) bool { return ev.Covered(st.View) }
func evalStrong(st *sim.NodeState, ev *core.Evaluator) bool  { return ev.StrongCovered(st.View) }

// Flooding returns the blind-flooding baseline: every node forwards the
// packet exactly once upon first receipt.
func Flooding() sim.Protocol {
	return New(Options{
		Name:      "Flooding",
		Timing:    TimingFirstReceipt,
		Selection: SelfPruning,
		SelfPrune: true,
	})
}

// Generic returns the new self-pruning algorithm derived from the generic
// framework, using the full coverage condition under the given timing policy
// (the "Generic" series of Figures 10, 12, 13, 14, 15, 16).
func Generic(t Timing) sim.Protocol {
	return New(Options{
		Name:        "Generic-" + t.String(),
		Timing:      t,
		Selection:   SelfPruning,
		Covered:     CoveredGeneric,
		CoveredEval: evalGeneric,
		SelfPrune:   true,
	})
}

// GenericStrong returns the self-pruning algorithm using the cheaper strong
// coverage condition under the given timing policy.
func GenericStrong(t Timing) sim.Protocol {
	return New(Options{
		Name:        "GenericStrong-" + t.String(),
		Timing:      t,
		Selection:   SelfPruning,
		Covered:     CoveredStrong,
		CoveredEval: evalStrong,
		SelfPrune:   true,
	})
}

// SelfPruningFR returns the pure self-pruning first-receipt scheme ("SP" in
// Figure 11); it equals Generic(TimingFirstReceipt) under another name.
func SelfPruningFR() sim.Protocol {
	return New(Options{
		Name:        "SP",
		Timing:      TimingFirstReceipt,
		Selection:   SelfPruning,
		Covered:     CoveredGeneric,
		CoveredEval: evalGeneric,
		SelfPrune:   true,
	})
}

// NeighborDesignatingFR returns the pure neighbor-designating first-receipt
// scheme ("ND" in Figure 11): only designated nodes may forward, and
// forwarders greedily designate neighbors to cover the 2-hop nodes not
// already covered under the current view's broadcast state. The relaxed rule
// of Section 4.2 applies: a designated node is promoted to status 1.5 but
// declines to forward when the coverage condition holds at that priority.
func NeighborDesignatingFR() sim.Protocol {
	return New(Options{
		Name:      "ND",
		Timing:    TimingFirstReceipt,
		Selection: NeighborDesignating,
		Covered:   CoveredGeneric,
		Designate: NDDesignate,
	})
}

// HybridMaxDeg returns the hybrid scheme of Section 6.4 that designates the
// neighbor with the maximum effective degree ("MaxDeg" in Figure 11). It is
// one of the new algorithms derived from the generic framework and uses the
// relaxed designation rule of Section 4.2: a designated node is promoted to
// status 1.5 but may still prune itself when the coverage condition holds at
// that raised priority. This is the variant that outperforms both pure
// self-pruning and pure neighbor-designating.
func HybridMaxDeg() sim.Protocol {
	return New(Options{
		Name:        "MaxDeg",
		Timing:      TimingFirstReceipt,
		Selection:   Hybrid,
		Covered:     CoveredGeneric,
		CoveredEval: evalGeneric,
		SelfPrune:   true,
		Designate:   HybridDesignate(true),
	})
}

// HybridMinPri returns the hybrid scheme that designates the neighbor with
// the lowest id ("MinPri" in Figure 11), under the same relaxed designation
// rule as HybridMaxDeg.
func HybridMinPri() sim.Protocol {
	return New(Options{
		Name:        "MinPri",
		Timing:      TimingFirstReceipt,
		Selection:   Hybrid,
		Covered:     CoveredGeneric,
		CoveredEval: evalGeneric,
		SelfPrune:   true,
		Designate:   HybridDesignate(false),
	})
}
