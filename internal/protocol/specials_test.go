package protocol_test

import (
	"math/rand"
	"testing"

	"adhocbcast/internal/geo"
	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
	"adhocbcast/internal/view"
)

// meanForward averages the forward count of a protocol over several
// broadcasts on shared workloads.
func meanForward(t *testing.T, mk func() sim.Protocol, cfg sim.Config, runs int) float64 {
	t.Helper()
	total := 0
	for i := 0; i < runs; i++ {
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		net, err := geo.Generate(geo.Config{N: 80, AvgDegree: 8}, rng)
		if err != nil {
			t.Fatal(err)
		}
		cfg := cfg
		cfg.Seed = int64(i + 1)
		res, err := sim.Run(net.G, rng.Intn(80), mk(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.FullDelivery() {
			t.Fatalf("run %d: delivered %d/%d", i, res.Delivered, res.N)
		}
		total += res.ForwardCount()
	}
	return float64(total) / float64(runs)
}

// TestLimKimWorseThanSBA: the first-receipt version of SBA decides with
// less information than SBA's backoff version, so it must forward more.
func TestLimKimWorseThanSBA(t *testing.T) {
	cfg := sim.Config{Hops: 2, Metric: view.MetricID}
	limKim := meanForward(t, protocol.LimKimSelfPruning, cfg, 30)
	sba := meanForward(t, protocol.SBA, cfg, 30)
	if limKim <= sba {
		t.Fatalf("LimKim-SP (%.2f) not worse than SBA (%.2f)", limKim, sba)
	}
}

// TestStojmenovicImprovesOnWuLi: the neighbor-elimination pass on top of the
// static Wu-Li statuses must reduce the forward count.
func TestStojmenovicImprovesOnWuLi(t *testing.T) {
	cfg := sim.Config{Hops: 2, Metric: view.MetricDegree}
	stoj := meanForward(t, protocol.Stojmenovic, cfg, 30)
	wuli := meanForward(t, protocol.WuLi, cfg, 30)
	if stoj >= wuli {
		t.Fatalf("Stojmenovic (%.2f) not better than Wu-Li (%.2f)", stoj, wuli)
	}
}

// TestStojmenovicBeatsSBA: Stojmenovic's static pruning plus neighbor
// elimination should outperform neighbor elimination alone.
func TestStojmenovicBeatsSBA(t *testing.T) {
	cfg := sim.Config{Hops: 2, Metric: view.MetricDegree}
	stoj := meanForward(t, protocol.Stojmenovic, cfg, 30)
	sba := meanForward(t, protocol.SBA, cfg, 30)
	if stoj >= sba {
		t.Fatalf("Stojmenovic (%.2f) not better than SBA (%.2f)", stoj, sba)
	}
}

// TestTDPNotWorseThanPDP: TDP removes a superset (the full N2(u)) of what
// PDP removes from the cover targets, so on shared workloads it should not
// designate more.
func TestTDPNotWorseThanPDP(t *testing.T) {
	cfg := sim.Config{Hops: 2, Metric: view.MetricID}
	tdp := meanForward(t, protocol.TDP, cfg, 40)
	pdp := meanForward(t, protocol.PDP, cfg, 40)
	if tdp > pdp*1.02 {
		t.Fatalf("TDP (%.2f) clearly worse than PDP (%.2f)", tdp, pdp)
	}
}

func TestNewSpecialsDescribe(t *testing.T) {
	stoj, ok := protocol.Stojmenovic().(protocol.Describer)
	if !ok {
		t.Fatal("Stojmenovic does not describe itself")
	}
	if info := stoj.Describe(); info.Timing != protocol.TimingBackoffRandom ||
		info.Selection != protocol.SelfPruning {
		t.Fatalf("Stojmenovic classified as %+v", info)
	}
	lk, ok := protocol.LimKimSelfPruning().(protocol.Describer)
	if !ok {
		t.Fatal("LimKim does not describe itself")
	}
	if info := lk.Describe(); info.Timing != protocol.TimingFirstReceipt ||
		info.Selection != protocol.SelfPruning {
		t.Fatalf("LimKim classified as %+v", info)
	}
}
