package protocol

import "adhocbcast/internal/sim"

// MPR returns the multipoint-relay protocol of Qayyum et al. (Section 6.3):
// every node proactively selects a minimal relay set among its neighbors
// covering its 2-hop neighborhood; a node forwards iff it is a relay of the
// neighbor it received its first packet copy from (the relaxed
// designating-time rule). MPR requires a piggyback depth of at least 1 so
// that designations travel with the packet.
func MPR() sim.Protocol {
	return &mpr{}
}

type mpr struct {
	sets [][]int // sets[v] = MPR(v), computed proactively from topology
}

var (
	_ sim.Protocol = (*mpr)(nil)
	_ Describer    = (*mpr)(nil)
)

func (m *mpr) Name() string { return "MPR" }

func (m *mpr) Describe() Info {
	return Info{
		Name:      "MPR",
		Timing:    TimingStatic,
		Selection: NeighborDesignating,
	}
}

func (m *mpr) Init(rt sim.Runtime) {
	m.sets = make([][]int, rt.N())
	rt.ForEachLocalNode(func(v int) {
		lv := rt.State(v).View
		// Visited nodes are never considered: the whole 2-hop neighborhood
		// must be covered by relays (static selection).
		m.sets[v] = GreedyCover(lv, lv.Neighbors(), lv.TwoHopTargets())
	})
}

func (m *mpr) Start(rt sim.Runtime, source int) {
	rt.Transmit(source, m.sets[source])
}

func (m *mpr) OnReceive(rt sim.Runtime, v int, r sim.Receipt) {
	st := rt.State(v)
	if st.Sent || len(st.Receipts) != 1 {
		return
	}
	// Relaxed neighbor-designating rule: forward iff this node is a relay
	// of the sender of its first copy. Relays of other designators need not
	// forward — their neighbors are covered by the first sender's relays,
	// whose designating times are earlier. A node whose view is provably
	// incomplete (conservative fallback) cannot trust that reasoning — its
	// missing links may hide exactly the designation it never saw — so it
	// forwards instead of pruning (the default-forward safety property).
	if st.DesignatedByNode(r.From) || rt.ConservativeHold(v) {
		rt.Transmit(v, m.sets[v])
		return
	}
	rt.MarkNonForward(v)
}

func (m *mpr) OnTimer(sim.Runtime, int) {}
