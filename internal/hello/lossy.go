package hello

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"adhocbcast/internal/graph"
)

// This file is the imperfect-knowledge side of the hello layer: a lossy,
// seed-deterministic exchange whose per-node results diverge from each other
// and from the truth. The paper's coverage condition is only safe when each
// node's k-hop view (Definition 2) matches reality; running the exchange over
// an unreliable channel produces exactly the per-node, partially wrong views
// the simulator's NodeViews knob consumes, plus the bookkeeping (receipt
// counts, divergence report) the robustness experiments measure.

// Config parameterizes one lossy hello exchange.
type Config struct {
	// Rounds is the number of synchronous exchange rounds k; a lossless
	// exchange of k rounds yields exactly the k-hop views of Definition 2.
	Rounds int
	// LossRate is the independent probability in [0, 1) that one node's
	// hello broadcast is lost on its way to one particular receiver. Zero
	// reproduces the lossless Protocol exactly.
	LossRate float64
	// Seed drives the exchange's private loss stream. The stream is derived
	// from Seed with a purpose tag (the per-purpose RNG discipline of the
	// simulator), so sharing a base seed with other models never couples
	// their draws, and the same Seed always reproduces the same views.
	Seed int64
}

// validate rejects configurations that would silently misbehave.
func (c Config) validate() error {
	if c.Rounds < 0 {
		return fmt.Errorf("hello: negative Rounds %d", c.Rounds)
	}
	if c.LossRate < 0 || c.LossRate >= 1 || math.IsNaN(c.LossRate) {
		return fmt.Errorf("hello: LossRate %v outside [0,1)", c.LossRate)
	}
	return nil
}

// Views holds the outcome of one (possibly lossy) hello exchange: every
// node's learned topology, which nodes it has heard of, how many hellos it
// actually received from each view-neighbor, and which nodes can prove their
// own view incomplete.
type Views struct {
	rounds int
	graphs []*graph.Graph
	known  [][]bool
	// recv[v][u] counts the hellos v successfully received from u.
	recv [][]int
	// incomplete[v] reports that v can prove its view may be missing links:
	// some node v believes to be a neighbor delivered fewer than Rounds
	// hellos, so v knows it missed (at least) what those hellos carried.
	incomplete []bool
}

// Exchange runs cfg.Rounds synchronous hello rounds over the true topology g,
// dropping each hello independently per receiver with probability
// cfg.LossRate. The result is one view per node; with loss the views are
// divergent and possibly incomplete. The exchange is a pure function of
// (g, cfg): the same inputs always produce the same views.
func Exchange(g *graph.Graph, cfg Config) (*Views, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := g.N()
	p := New(g)
	recv := make([][]int, n)
	for v := range recv {
		recv[v] = make([]int, n)
	}
	var drop func(v, u int) bool
	if cfg.LossRate > 0 {
		rng := rand.New(rand.NewSource(helloSubSeed(cfg.Seed, "hello/loss")))
		drop = func(v, u int) bool {
			if rng.Float64() < cfg.LossRate {
				return true
			}
			recv[v][u]++
			return false
		}
	} else {
		drop = func(v, u int) bool {
			recv[v][u]++
			return false
		}
	}
	for i := 0; i < cfg.Rounds; i++ {
		p.roundWith(drop)
	}

	vs := &Views{
		rounds:     cfg.Rounds,
		graphs:     make([]*graph.Graph, n),
		known:      make([][]bool, n),
		recv:       recv,
		incomplete: make([]bool, n),
	}
	for v := 0; v < n; v++ {
		vs.graphs[v], vs.known[v] = p.ViewGraph(v)
		// A node audits its own receipts: hello protocols carry round
		// numbers, so v knows when a view-neighbor's hello went missing —
		// and with it, potentially, links v has never heard of.
		vs.graphs[v].ForEachNeighbor(v, func(u int) {
			if recv[v][u] < cfg.Rounds {
				vs.incomplete[v] = true
			}
		})
	}
	return vs, nil
}

// N returns the network size the views cover.
func (vs *Views) N() int { return len(vs.graphs) }

// Rounds returns the number of exchange rounds the views were built from.
func (vs *Views) Rounds() int { return vs.rounds }

// Graph returns node v's learned topology on the global vertex numbering.
// The signature matches the simulator's per-node view provider, so a Views
// value plugs into sim.Config.NodeViews directly. The returned graph is
// shared: treat it as read-only.
func (vs *Views) Graph(v int) *graph.Graph { return vs.graphs[v] }

// Known reports whether node v has heard of node u (itself included).
func (vs *Views) Known(v, u int) bool { return vs.known[v][u] }

// Receipts returns the number of hellos v successfully received from u.
func (vs *Views) Receipts(v, u int) int { return vs.recv[v][u] }

// Incomplete reports whether node v can prove its own view may be missing
// links: it received fewer than Rounds hellos from some node it believes to
// be a neighbor. This is exactly the local, self-detectable signal the
// conservative fallback keys on — a node missing a whole neighbor it never
// heard of (directly or indirectly) has no way to know.
func (vs *Views) Incomplete(v int) bool { return vs.incomplete[v] }

// IncompleteCount returns the number of nodes whose views are provably
// incomplete.
func (vs *Views) IncompleteCount() int {
	count := 0
	for _, inc := range vs.incomplete {
		if inc {
			count++
		}
	}
	return count
}

// NodeDivergence quantifies how far one node's view is from the truth.
type NodeDivergence struct {
	// Missing counts links of the true k-hop view absent from the node's
	// learned view (knowledge lost to the channel).
	Missing int
	// Phantom counts links the node believes in that the true k-hop view
	// does not contain (stale knowledge after the topology changed; always
	// zero over a static graph).
	Phantom int
	// Incomplete mirrors Views.Incomplete for this node.
	Incomplete bool
}

// Divergence aggregates per-node view error against a reference topology.
type Divergence struct {
	// Rounds is the k the views (and the reference k-hop views) use.
	Rounds int
	// Nodes holds the per-node reports, indexed by node id.
	Nodes []NodeDivergence
	// MissingLinks and PhantomLinks are the per-node counts summed over all
	// nodes (a link missing from two views counts twice: view error is a
	// per-node condition).
	MissingLinks int
	PhantomLinks int
	// DivergentNodes counts nodes with at least one missing or phantom link.
	DivergentNodes int
	// IncompleteNodes counts nodes whose views are provably incomplete.
	// IncompleteNodes <= DivergentNodes does NOT hold in general: a node may
	// know it missed a hello that carried only links it already knew.
	IncompleteNodes int
}

// Divergence compares every node's learned view against the k-hop view it
// would hold after a lossless exchange over truth (k = Rounds). Passing the
// exchange's own topology measures pure hello loss; passing a later snapshot
// additionally measures staleness (phantom links).
func (vs *Views) Divergence(truth *graph.Graph) (Divergence, error) {
	if truth.N() != vs.N() {
		return Divergence{}, fmt.Errorf("hello: truth has %d nodes, views cover %d", truth.N(), vs.N())
	}
	div := Divergence{
		Rounds: vs.rounds,
		Nodes:  make([]NodeDivergence, vs.N()),
	}
	for v := range div.Nodes {
		want, _ := truth.LocalView(v, vs.rounds)
		got := vs.graphs[v]
		missing := 0
		for _, e := range want.Edges() {
			if !got.HasEdge(e[0], e[1]) {
				missing++
			}
		}
		// Every learned link is either shared with the reference view or
		// phantom, so the phantom count follows from the edge totals.
		phantom := got.M() - (want.M() - missing)
		nd := NodeDivergence{
			Missing:    missing,
			Phantom:    phantom,
			Incomplete: vs.incomplete[v],
		}
		div.Nodes[v] = nd
		div.MissingLinks += missing
		div.PhantomLinks += phantom
		if missing > 0 || phantom > 0 {
			div.DivergentNodes++
		}
		if nd.Incomplete {
			div.IncompleteNodes++
		}
	}
	return div, nil
}

// helloSubSeed maps (seed, purpose) to an independent stream seed, mirroring
// the simulator's per-purpose stream derivation.
func helloSubSeed(seed int64, purpose string) int64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(seed))
	h.Write(buf[:])
	h.Write([]byte(purpose))
	return int64(h.Sum64() & (1<<62 - 1))
}
