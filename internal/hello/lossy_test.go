package hello

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adhocbcast/internal/geo"
	"adhocbcast/internal/graph"
)

// TestExchangeLosslessEqualsDefinition2 is the package's key property on the
// Config-based API: over random connected geometric graphs, a lossless
// exchange of k rounds gives every node exactly the analytic k-hop view
// Gk(v)/Nk(v) of Definition 2, with no node able to claim incompleteness and
// zero divergence against the truth.
func TestExchangeLosslessEqualsDefinition2(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%4) + 1
		rng := rand.New(rand.NewSource(seed))
		net, err := geo.Generate(geo.Config{N: 30, AvgDegree: 6}, rng)
		if err != nil {
			return true // no connected placement; skip
		}
		g := net.G
		vs, err := Exchange(g, Config{Rounds: k, Seed: seed})
		if err != nil {
			return false
		}
		for v := 0; v < g.N(); v++ {
			wantG, wantVis := g.LocalView(v, k)
			gotG := vs.Graph(v)
			for u := 0; u < g.N(); u++ {
				if vs.Known(v, u) != wantVis[u] {
					return false
				}
			}
			if gotG.M() != wantG.M() {
				return false
			}
			for _, e := range wantG.Edges() {
				if !gotG.HasEdge(e[0], e[1]) {
					return false
				}
			}
			if vs.Incomplete(v) {
				return false
			}
		}
		div, err := vs.Divergence(g)
		if err != nil {
			return false
		}
		return div.MissingLinks == 0 && div.PhantomLinks == 0 &&
			div.DivergentNodes == 0 && div.IncompleteNodes == 0
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestExchangeDeterministic pins the seed contract: the same (graph, Config)
// always produces identical views, and distinct seeds produce distinct loss
// patterns (with overwhelming probability on a dense-enough exchange).
func TestExchangeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net, err := geo.Generate(geo.Config{N: 40, AvgDegree: 8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Rounds: 3, LossRate: 0.3, Seed: 99}
	a, err := Exchange(net.G, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Exchange(net.G, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < net.G.N(); v++ {
		if a.Incomplete(v) != b.Incomplete(v) {
			t.Fatalf("node %d: incomplete flag differs across identical exchanges", v)
		}
		ga, gb := a.Graph(v), b.Graph(v)
		if ga.M() != gb.M() {
			t.Fatalf("node %d: %d vs %d learned links across identical exchanges", v, ga.M(), gb.M())
		}
		for _, e := range ga.Edges() {
			if !gb.HasEdge(e[0], e[1]) {
				t.Fatalf("node %d: link %v differs across identical exchanges", v, e)
			}
		}
		for u := 0; u < net.G.N(); u++ {
			if a.Receipts(v, u) != b.Receipts(v, u) {
				t.Fatalf("receipts(%d,%d) differ across identical exchanges", v, u)
			}
		}
	}

	c, err := Exchange(net.G, Config{Rounds: 3, LossRate: 0.3, Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for v := 0; same && v < net.G.N(); v++ {
		for u := 0; u < net.G.N(); u++ {
			if a.Receipts(v, u) != c.Receipts(v, u) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 99 and 100 produced identical loss patterns")
	}
}

// TestExchangeLossyDetection checks the incompleteness signal on a concrete
// loss pattern: a node that misses one of its neighbor's hellos knows its
// view may be incomplete, and the divergence report accounts for the links
// the lost hello carried.
func TestExchangeLossyDetection(t *testing.T) {
	// Path 0-1-2-3. Drop every hello 2 sends to 1 (but nothing else). Only
	// node 2's hellos could reveal link {1,2} to node 1 (the endpoints share
	// no common neighbor), so node 1 learns {0,1} from 0 but never hears of
	// node 2 at all.
	g := graph.New(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	p := New(g)
	drop := func(v, u int) bool { return v == 1 && u == 2 }
	p.roundWith(drop)
	p.roundWith(drop)
	vg, known := p.ViewGraph(1)
	if vg.HasEdge(1, 2) || known[2] {
		t.Fatal("node 1 learned about node 2 despite the dropped hellos")
	}
	// Node 3, on the intact side, hears node 2 relay {1,2} in round 2 as
	// usual: the loss stays local to the (2 -> 1) channel.
	vg3, _ := p.ViewGraph(3)
	if !vg3.HasEdge(1, 2) {
		t.Fatal("node 3 lost knowledge it should have")
	}

	// The same pattern through Exchange at a high loss rate: every flagged
	// node is one with a missed receipt from a view-neighbor, and aggregate
	// divergence is consistent with the per-node reports.
	rng := rand.New(rand.NewSource(11))
	net, err := geo.Generate(geo.Config{N: 50, AvgDegree: 8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := Exchange(net.G, Config{Rounds: 2, LossRate: 0.4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	div, err := vs.Divergence(net.G)
	if err != nil {
		t.Fatal(err)
	}
	if div.MissingLinks == 0 || div.IncompleteNodes == 0 {
		t.Fatalf("40%% hello loss produced no measurable divergence: %+v", div)
	}
	if div.PhantomLinks != 0 {
		t.Fatalf("static topology produced %d phantom links", div.PhantomLinks)
	}
	missing, incomplete, divergent := 0, 0, 0
	for v, nd := range div.Nodes {
		missing += nd.Missing
		if nd.Missing > 0 || nd.Phantom > 0 {
			divergent++
		}
		if nd.Incomplete {
			incomplete++
			if vs.Incomplete(v) != nd.Incomplete {
				t.Fatalf("node %d: divergence and views disagree on incompleteness", v)
			}
		}
		if nd.Incomplete {
			// The flag must be justified by an actual missed receipt.
			justified := false
			vs.Graph(v).ForEachNeighbor(v, func(u int) {
				if vs.Receipts(v, u) < vs.Rounds() {
					justified = true
				}
			})
			if !justified {
				t.Fatalf("node %d flagged incomplete with full receipts", v)
			}
		}
	}
	if missing != div.MissingLinks || incomplete != div.IncompleteNodes || divergent != div.DivergentNodes {
		t.Fatalf("aggregates inconsistent with per-node reports: %+v", div)
	}
}

// TestExchangeRejectsBadConfig pins the validation errors.
func TestExchangeRejectsBadConfig(t *testing.T) {
	g := graph.New(2)
	if _, err := Exchange(g, Config{Rounds: -1}); err == nil {
		t.Fatal("negative Rounds accepted")
	}
	if _, err := Exchange(g, Config{Rounds: 1, LossRate: 1}); err == nil {
		t.Fatal("LossRate 1 accepted")
	}
	if _, err := Exchange(g, Config{Rounds: 1, LossRate: -0.1}); err == nil {
		t.Fatal("negative LossRate accepted")
	}
}
