package hello

import (
	"math"
	"testing"
)

// TestDynamicDefaultsAndValidate pins the documented defaults and the
// rejection of out-of-range parameters.
func TestDynamicDefaultsAndValidate(t *testing.T) {
	d := Dynamic{}.WithDefaults()
	if d.Interval != 5 || d.Expiry != 15 {
		t.Errorf("defaults: interval=%v expiry=%v, want 5/15", d.Interval, d.Expiry)
	}
	d = Dynamic{Interval: 2}.WithDefaults()
	if d.Expiry != 6 {
		t.Errorf("expiry default = %v, want 3x interval", d.Expiry)
	}
	for _, bad := range []Dynamic{
		{Interval: -1},
		{Interval: 5, Expiry: -1},
		{Interval: 5, LossRate: 1},
		{Interval: 5, LossRate: -0.1},
		{Interval: math.NaN()},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", bad)
		}
	}
	if err := (Dynamic{Interval: 5, Expiry: 15, LossRate: 0.3}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestDynamicReceivedPure: the beacon outcome is a pure function — identical
// across calls, sensitive to every argument, round 0 always received, and
// loss-free when LossRate is 0.
func TestDynamicReceivedPure(t *testing.T) {
	d := Dynamic{Interval: 5, Expiry: 15, LossRate: 0.5, Seed: 42}
	for recv := 0; recv < 4; recv++ {
		for from := 0; from < 4; from++ {
			if !d.Received(recv, from, 0) {
				t.Fatalf("round 0 (%d<-%d) lost: the initial exchange is always received", recv, from)
			}
			for round := 1; round <= 8; round++ {
				a, b := d.Received(recv, from, round), d.Received(recv, from, round)
				if a != b {
					t.Fatalf("Received(%d,%d,%d) is not deterministic", recv, from, round)
				}
			}
		}
	}
	lossless := Dynamic{Interval: 5, Expiry: 15, Seed: 42}
	for round := 1; round <= 100; round++ {
		if !lossless.Received(0, 1, round) {
			t.Fatalf("LossRate 0 lost beacon round %d", round)
		}
	}
	// The empirical loss frequency must track LossRate (pure hash, 53-bit
	// uniform draw): over 4000 draws a 0.5 rate stays well within [0.4, 0.6].
	lost := 0
	for round := 1; round <= 4000; round++ {
		if !d.Received(1, 2, round) {
			lost++
		}
	}
	if frac := float64(lost) / 4000; frac < 0.4 || frac > 0.6 {
		t.Errorf("empirical loss %.3f far from configured 0.5", frac)
	}
}

// TestDynamicClocks exercises Rounds/LastHeard/LinkStale against a hand-built
// loss pattern: with LossRate 0 every beacon lands, so the clocks are exact.
func TestDynamicClocks(t *testing.T) {
	d := Dynamic{Interval: 5, Expiry: 15, Seed: 1}
	if got := d.Rounds(12); got != 2 {
		t.Errorf("Rounds(12) = %d, want 2", got)
	}
	if got := d.Rounds(-1); got != 0 {
		t.Errorf("Rounds(-1) = %d, want 0", got)
	}
	if got := d.LastHeard(0, 1, 12); got != 10 {
		t.Errorf("LastHeard at t=12 = %v, want 10", got)
	}
	if got := d.LastHeard(0, 1, 3); got != 0 {
		t.Errorf("LastHeard before round 1 = %v, want 0 (initial exchange)", got)
	}
	if d.LinkStale(0, 1, 14) {
		t.Error("link stale at t=14 with a beacon at t=10")
	}
	// With every beacon received, staleness never triggers (gap is always
	// Interval <= Expiry).
	for _, tm := range []float64{0, 4.9, 15, 50, 123.4} {
		if d.LinkStale(0, 1, tm) {
			t.Errorf("lossless link stale at t=%v", tm)
		}
		if d.EverStale(0, 1, tm) {
			t.Errorf("lossless link ever-stale by t=%v", tm)
		}
	}
}

// TestDynamicEverStale: a loss streak longer than the expiry must register as
// a historical stale interval even if the link is fresh again at the end.
func TestDynamicEverStale(t *testing.T) {
	// Find a (seed, receiver) pair whose loss schedule contains a >3-round
	// gap in the first 40 rounds — with LossRate 0.5 this is essentially
	// certain for some small seed — then verify EverStale sees it.
	d := Dynamic{Interval: 5, Expiry: 15, LossRate: 0.5}
	for seed := int64(1); seed <= 32; seed++ {
		d.Seed = seed
		last, gap := 0, 0
		for r := 1; r <= 40; r++ {
			if d.Received(0, 1, r) {
				if r-last > gap {
					gap = r - last
				}
				last = r
			}
		}
		if gap <= 3 || !d.Received(0, 1, 40) && !d.Received(0, 1, 39) {
			continue
		}
		end := 40 * d.Interval
		if !d.EverStale(0, 1, end) {
			t.Fatalf("seed %d: a %d-round beacon gap did not register as ever-stale", seed, gap)
		}
		if d.LinkStale(0, 1, end) {
			t.Fatalf("seed %d: link still stale at t=%v despite a recent beacon", seed, end)
		}
		return
	}
	t.Fatal("no seed in 1..32 produced a suitable loss pattern")
}
