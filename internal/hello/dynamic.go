package hello

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// This file is the view-maintenance side of the hello layer: after the
// initial exchange builds the k-hop views, nodes keep beaconing periodically
// and each node runs a per-neighbor staleness clock — if a view-neighbor's
// beacon has not been heard for longer than the expiry, the node's view is
// provably stale and the engine's conservative fallback holds its forwarding
// until the view is fresh again. The beacon outcome is a pure function of
// (Seed, receiver, sender, round), so the simulator, the in-process live
// cluster, and a fleet of real bcastnode processes all agree on exactly which
// beacons a seed-matched run loses, and their stale-hold decisions match.

// Dynamic parameterizes periodic hello maintenance: beacon cadence, the
// per-neighbor expiry that defines staleness, and the loss model applied to
// each beacon independently per receiver.
type Dynamic struct {
	// Interval is the beacon period in protocol time units (default 5).
	Interval float64
	// Expiry is the staleness threshold in time units: a view-neighbor not
	// heard from for longer than Expiry makes the node's view stale (default
	// 3×Interval, so two consecutive losses are tolerated).
	Expiry float64
	// LossRate is the independent probability in [0, 1) that one beacon is
	// lost on its way to one particular receiver.
	LossRate float64
	// Seed drives the beacon loss decisions (pure hash; see Received).
	Seed int64
}

// WithDefaults fills zero fields with the documented defaults.
func (d Dynamic) WithDefaults() Dynamic {
	if d.Interval <= 0 {
		d.Interval = 5
	}
	if d.Expiry <= 0 {
		d.Expiry = 3 * d.Interval
	}
	return d
}

// Validate rejects parameters that would silently misbehave.
func (d Dynamic) Validate() error {
	if d.Interval < 0 || math.IsNaN(d.Interval) {
		return fmt.Errorf("hello: negative beacon Interval %v", d.Interval)
	}
	if d.Expiry < 0 || math.IsNaN(d.Expiry) {
		return fmt.Errorf("hello: negative beacon Expiry %v", d.Expiry)
	}
	if d.LossRate < 0 || d.LossRate >= 1 || math.IsNaN(d.LossRate) {
		return fmt.Errorf("hello: beacon LossRate %v outside [0,1)", d.LossRate)
	}
	return nil
}

// Received reports whether receiver recv hears sender from's beacon of the
// given round. Round 0 is the initial exchange and is always received (the
// startup views are built by Exchange, whose loss is modeled separately);
// later rounds are lost independently with probability LossRate, decided by
// a pure hash of (Seed, recv, from, round). Being a pure function — no RNG
// state, no ordering dependence — it is safe to consult concurrently and
// yields identical loss patterns in the simulator and in live processes.
func (d Dynamic) Received(recv, from, round int) bool {
	if round <= 0 || d.LossRate <= 0 {
		return true
	}
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(d.Seed))
	h.Write(buf[:])
	h.Write([]byte("hello/beacon"))
	for _, x := range []int{recv, from, round} {
		binary.LittleEndian.PutUint64(buf[:], uint64(x))
		h.Write(buf[:])
	}
	// 53 bits of hash to a uniform float in [0, 1).
	u := float64(h.Sum64()>>11) / (1 << 53)
	return u >= d.LossRate
}

// Rounds returns the number of completed beacon rounds at time t: round r is
// broadcast at r×Interval, so rounds 1..floor(t/Interval) have fired (round 0
// is the initial exchange at t=0).
func (d Dynamic) Rounds(t float64) int {
	if d.Interval <= 0 || t < 0 {
		return 0
	}
	return int(t / d.Interval)
}

// LastHeard returns the time of the latest beacon from sender from that
// receiver recv has received by time t (0 when only the initial exchange
// got through).
func (d Dynamic) LastHeard(recv, from int, t float64) float64 {
	for r := d.Rounds(t); r > 0; r-- {
		if d.Received(recv, from, r) {
			return float64(r) * d.Interval
		}
	}
	return 0
}

// LinkStale reports whether, at time t, receiver recv has gone longer than
// Expiry without hearing from sender from.
func (d Dynamic) LinkStale(recv, from int, t float64) bool {
	return t-d.LastHeard(recv, from, t) > d.Expiry
}

// EverStale reports whether the link from→recv was stale at any time in
// [0, t]: some gap between consecutive received beacons (or between the last
// received beacon and t) exceeded Expiry. This is the run-level counter shape
// — staleness during the run, not just at its end.
func (d Dynamic) EverStale(recv, from int, t float64) bool {
	if t < 0 {
		return false
	}
	last := 0.0
	for r := 1; r <= d.Rounds(t); r++ {
		at := float64(r) * d.Interval
		if !d.Received(recv, from, r) {
			continue
		}
		if at-last > d.Expiry {
			return true
		}
		last = at
	}
	return t-last > d.Expiry
}
