package hello_test

import (
	"fmt"

	"adhocbcast/internal/graph"
	"adhocbcast/internal/hello"
)

// Two hello rounds give a node exactly the 2-hop information of
// Definition 2: its own links plus its neighbors' links.
func ExampleProtocol() {
	g := graph.New(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			panic(err)
		}
	}
	p := hello.New(g)
	p.RunRounds(2)
	fmt.Println(p.KnownLinks(0))
	// Output:
	// [[0 1] [1 2]]
}
