// Package hello implements the neighborhood-discovery layer the framework's
// local views rest on (Section 4.3): nodes periodically exchange "hello"
// messages carrying everything they currently know about the topology, and
// after k rounds every node holds exactly the k-hop information of
// Definition 2. The package runs the exchange as an actual message-passing
// protocol, so the "it takes at least k rounds of neighborhood information
// exchanges" claim is executable and testable rather than assumed.
package hello

import (
	"sort"

	"adhocbcast/internal/graph"
)

// message is one hello broadcast: the sender's id plus the link set it has
// learned so far.
type message struct {
	from  int
	links [][2]int
}

// nodeState is the per-node knowledge base.
type nodeState struct {
	id int
	// links holds learned links keyed by canonical (min,max) pairs.
	links map[[2]int]bool
	// rounds counts completed exchange rounds.
	rounds int
}

// Protocol simulates synchronous hello rounds over a (true) connectivity
// graph g. After construction each node knows only its own id (0-hop
// information); each Round makes every node broadcast its knowledge to its
// neighbors and merge what it hears.
type Protocol struct {
	g     *graph.Graph
	nodes []*nodeState
}

// New prepares a hello exchange over g.
func New(g *graph.Graph) *Protocol {
	p := &Protocol{
		g:     g,
		nodes: make([]*nodeState, g.N()),
	}
	for v := 0; v < g.N(); v++ {
		p.nodes[v] = &nodeState{
			id:    v,
			links: make(map[[2]int]bool),
		}
	}
	return p
}

// Rounds returns the number of completed exchange rounds.
func (p *Protocol) Rounds() int {
	if len(p.nodes) == 0 {
		return 0
	}
	return p.nodes[0].rounds
}

// Round runs one synchronous exchange: every node broadcasts a hello with
// its current knowledge; every node merges the hellos of its neighbors.
// Receiving a hello also reveals the link to its sender.
func (p *Protocol) Round() {
	p.roundWith(nil)
}

// roundWith is Round with an optional per-delivery drop hook: drop(v, u)
// decides whether the hello from u is lost on its way to v. The hook is
// consulted exactly once per (receiver, sender) pair, receivers in ascending
// id order and senders in ascending neighbor order, so a seeded stochastic
// hook yields a deterministic exchange. nil means lossless.
func (p *Protocol) roundWith(drop func(recv, from int) bool) {
	msgs := make([]message, len(p.nodes))
	for v, st := range p.nodes {
		links := make([][2]int, 0, len(st.links))
		for l := range st.links {
			links = append(links, l)
		}
		msgs[v] = message{from: v, links: links}
	}
	for v, st := range p.nodes {
		p.g.ForEachNeighbor(v, func(u int) {
			if drop != nil && drop(v, u) {
				return
			}
			m := msgs[u]
			st.links[canonical(v, m.from)] = true
			for _, l := range m.links {
				st.links[l] = true
			}
		})
		st.rounds++
	}
}

// RunRounds runs k exchange rounds.
func (p *Protocol) RunRounds(k int) {
	for i := 0; i < k; i++ {
		p.Round()
	}
}

// KnownLinks returns the links node v has learned, sorted lexicographically.
func (p *Protocol) KnownLinks(v int) [][2]int {
	st := p.nodes[v]
	out := make([][2]int, 0, len(st.links))
	for l := range st.links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// ViewGraph assembles node v's learned topology as a graph on the original
// vertex numbering, together with the set of nodes v has heard of (itself
// included).
func (p *Protocol) ViewGraph(v int) (g *graph.Graph, known []bool) {
	known = make([]bool, p.g.N())
	known[v] = true
	g = graph.New(p.g.N())
	for l := range p.nodes[v].links {
		known[l[0]] = true
		known[l[1]] = true
		// Link endpoints are valid vertices of the true graph.
		_ = g.AddEdge(l[0], l[1])
	}
	return g, known
}

func canonical(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}
