package hello

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adhocbcast/internal/geo"
	"adhocbcast/internal/graph"
)

func pathGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestZeroRoundsKnowsNothing(t *testing.T) {
	g := pathGraph(t, 4)
	p := New(g)
	if p.Rounds() != 0 {
		t.Fatalf("rounds = %d", p.Rounds())
	}
	if links := p.KnownLinks(1); len(links) != 0 {
		t.Fatalf("fresh node knows links %v", links)
	}
	_, known := p.ViewGraph(1)
	for v, k := range known {
		if k != (v == 1) {
			t.Fatalf("known[%d] = %v before any round", v, k)
		}
	}
}

func TestOneRoundLearnsStar(t *testing.T) {
	// After one round a node knows exactly its incident links — the G1(v)
	// of Definition 2 (neighbor-to-neighbor links stay invisible).
	g := graph.New(3)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	p := New(g)
	p.Round()
	links := p.KnownLinks(0)
	want := [][2]int{{0, 1}, {0, 2}}
	if len(links) != len(want) {
		t.Fatalf("links = %v, want %v", links, want)
	}
	for i := range want {
		if links[i] != want[i] {
			t.Fatalf("links = %v, want %v", links, want)
		}
	}
}

func TestTwoRoundsLearnNeighborLinks(t *testing.T) {
	g := graph.New(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	p := New(g)
	p.RunRounds(2)
	vg, known := p.ViewGraph(0)
	if !vg.HasEdge(1, 2) {
		t.Fatal("round 2 should reveal the neighbor's link {1,2}")
	}
	if vg.HasEdge(2, 3) {
		t.Fatal("link {2,3} is 2 hops out and needs a third round")
	}
	if !known[2] || known[3] {
		t.Fatalf("known = %v", known)
	}
}

// TestKRoundsEqualDefinition2Quick is the key property: after k rounds the
// protocol's assembled view equals the analytic Gk(v) of Definition 2
// (graph.LocalView) at every node — same visible set, same edge set.
func TestKRoundsEqualDefinition2Quick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net, err := geo.Generate(geo.Config{N: 25, AvgDegree: 5}, rng)
		if err != nil {
			return true // no connected placement; skip
		}
		g := net.G
		p := New(g)
		for k := 1; k <= 4; k++ {
			p.Round()
			for v := 0; v < g.N(); v++ {
				wantG, wantVis := g.LocalView(v, k)
				gotG, gotKnown := p.ViewGraph(v)
				for u := 0; u < g.N(); u++ {
					if gotKnown[u] != wantVis[u] {
						return false
					}
				}
				if gotG.M() != wantG.M() {
					return false
				}
				for _, e := range wantG.Edges() {
					if !gotG.HasEdge(e[0], e[1]) {
						return false
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestConvergence(t *testing.T) {
	// On a diameter-D graph, D+1 rounds reach the full topology at every
	// node, and further rounds change nothing.
	g := pathGraph(t, 6) // diameter 5
	p := New(g)
	p.RunRounds(6)
	for v := 0; v < 6; v++ {
		vg, _ := p.ViewGraph(v)
		if vg.M() != g.M() {
			t.Fatalf("node %d knows %d links, want %d", v, vg.M(), g.M())
		}
	}
	before := len(p.KnownLinks(0))
	p.Round()
	if len(p.KnownLinks(0)) != before {
		t.Fatal("converged knowledge kept growing")
	}
	if p.Rounds() != 7 {
		t.Fatalf("rounds = %d", p.Rounds())
	}
}

func TestEmptyGraph(t *testing.T) {
	p := New(graph.New(0))
	p.Round() // must not panic
	if p.Rounds() != 0 {
		t.Fatalf("rounds on empty graph = %d", p.Rounds())
	}
}

func TestIsolatedNodeLearnsNothing(t *testing.T) {
	g := graph.New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	p := New(g)
	p.RunRounds(5)
	if links := p.KnownLinks(2); len(links) != 0 {
		t.Fatalf("isolated node learned %v", links)
	}
}
