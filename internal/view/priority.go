// Package view implements the paper's view model (Section 2): snapshots of
// network topology plus broadcast state, node priorities with the
// visited/designated/un-visited/invisible status hierarchy, the ID / Degree /
// NCR priority metrics (Section 4.4), and per-node k-hop local views.
package view

import "adhocbcast/internal/graph"

// Status is the broadcast-state component of a node priority. Higher status
// always dominates the metric keys under the lexicographic order.
type Status int

// Status levels, ordered by priority. An invisible node (outside the local
// view) has the lowest priority; a visited node (one that has forwarded the
// packet, or is known to be about to) has the highest. Designated is the
// intermediate 1.5 level of Section 4.2 for nodes selected as forward nodes
// by a neighbor but not yet heard from.
const (
	Invisible  Status = 0
	Unvisited  Status = 10
	Designated Status = 15
	Visited    Status = 20
)

// String returns a short human-readable status name.
func (s Status) String() string {
	switch s {
	case Invisible:
		return "invisible"
	case Unvisited:
		return "unvisited"
	case Designated:
		return "designated"
	case Visited:
		return "visited"
	default:
		return "unknown"
	}
}

// Priority is the total-order priority tuple Pr(v) = (S(v), key..., id(v)).
// Comparison is lexicographic: status first, then the metric keys, then the
// node id as the final tie-breaker, so distinct nodes never compare equal.
type Priority struct {
	Status Status
	// Key1 and Key2 carry the metric values: Degree uses Key1=deg; NCR uses
	// Key1=ncr, Key2=deg; ID leaves both zero.
	Key1 float64
	Key2 float64
	// ID is the unique node identifier.
	ID int
}

// Less reports whether p is strictly lower priority than q.
func (p Priority) Less(q Priority) bool {
	switch {
	case p.Status != q.Status:
		return p.Status < q.Status
	case p.Key1 != q.Key1:
		return p.Key1 < q.Key1
	case p.Key2 != q.Key2:
		return p.Key2 < q.Key2
	default:
		return p.ID < q.ID
	}
}

// Greater reports whether p is strictly higher priority than q.
func (p Priority) Greater(q Priority) bool { return q.Less(p) }

// Metric selects the node property used as the priority key (Section 4.4).
type Metric int

// Priority metrics in increasing order of collection cost.
const (
	// MetricID uses the node id only (0-hop priority).
	MetricID Metric = iota + 1
	// MetricDegree uses the node degree, ties broken by id (1-hop priority).
	MetricDegree
	// MetricNCR uses the neighborhood connectivity ratio, ties broken by
	// degree then id (2-hop priority).
	MetricNCR
)

// String returns the metric name used in the paper's figures.
func (m Metric) String() string {
	switch m {
	case MetricID:
		return "ID"
	case MetricDegree:
		return "Degree"
	case MetricNCR:
		return "NCR"
	default:
		return "unknown"
	}
}

// BasePriorities computes the un-visited priority of every node of g under
// metric m. The same base vector is shared by all local views of a broadcast
// round; views overlay status changes on top of it.
func BasePriorities(g *graph.Graph, m Metric) []Priority {
	n := g.N()
	pr := make([]Priority, n)
	for v := 0; v < n; v++ {
		pr[v] = Priority{Status: Unvisited, ID: v}
		switch m {
		case MetricDegree:
			pr[v].Key1 = float64(g.Degree(v))
		case MetricNCR:
			pr[v].Key1 = NCR(g, v)
			pr[v].Key2 = float64(g.Degree(v))
		}
	}
	return pr
}

// NCR returns the neighborhood connectivity ratio of v: the fraction of
// ordered pairs of v's neighbors that are not directly connected,
//
//	ncr(v) = 1 - sum_{u in N(v)} |N(u) ∩ N(v)| / (deg(v)(deg(v)-1)).
//
// Nodes with fewer than two neighbors have no neighbor pairs; their NCR is
// defined as 0.
func NCR(g *graph.Graph, v int) float64 {
	deg := g.Degree(v)
	if deg < 2 {
		return 0
	}
	connected := 0
	g.ForEachNeighbor(v, func(u int) {
		g.ForEachNeighbor(u, func(w int) {
			if w != v && g.HasEdge(v, w) {
				connected++
			}
		})
	})
	return 1 - float64(connected)/float64(deg*(deg-1))
}
