package view

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"adhocbcast/internal/graph"
)

func TestStatusOrdering(t *testing.T) {
	order := []Status{Invisible, Unvisited, Designated, Visited}
	for i := 1; i < len(order); i++ {
		if order[i-1] >= order[i] {
			t.Fatalf("status order broken: %v >= %v", order[i-1], order[i])
		}
	}
}

func TestStatusString(t *testing.T) {
	tests := []struct {
		s    Status
		want string
	}{
		{Invisible, "invisible"},
		{Unvisited, "unvisited"},
		{Designated, "designated"},
		{Visited, "visited"},
		{Status(99), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Fatalf("Status(%d).String() = %q, want %q", tt.s, got, tt.want)
		}
	}
}

func TestPriorityLexicographic(t *testing.T) {
	tests := []struct {
		name string
		p, q Priority
		less bool
	}{
		{
			name: "status dominates keys",
			p:    Priority{Status: Unvisited, Key1: 100, ID: 9},
			q:    Priority{Status: Visited, Key1: 0, ID: 1},
			less: true,
		},
		{
			name: "visited beats designated",
			p:    Priority{Status: Designated, ID: 5},
			q:    Priority{Status: Visited, ID: 1},
			less: true,
		},
		{
			name: "key1 dominates key2",
			p:    Priority{Status: Unvisited, Key1: 1, Key2: 50, ID: 0},
			q:    Priority{Status: Unvisited, Key1: 2, Key2: 0, ID: 0},
			less: true,
		},
		{
			name: "key2 dominates id",
			p:    Priority{Status: Unvisited, Key2: 1, ID: 9},
			q:    Priority{Status: Unvisited, Key2: 2, ID: 0},
			less: true,
		},
		{
			name: "id breaks ties",
			p:    Priority{Status: Unvisited, ID: 3},
			q:    Priority{Status: Unvisited, ID: 4},
			less: true,
		},
		{
			name: "equal tuples",
			p:    Priority{Status: Unvisited, ID: 3},
			q:    Priority{Status: Unvisited, ID: 3},
			less: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Less(tt.q); got != tt.less {
				t.Fatalf("Less = %v, want %v", got, tt.less)
			}
			if tt.less && !tt.q.Greater(tt.p) {
				t.Fatal("Greater not the inverse of Less")
			}
		})
	}
}

// TestPriorityTotalOrderQuick checks Less is a strict total order on
// priorities with distinct ids: exactly one of p<q, q<p holds.
func TestPriorityTotalOrderQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func(id int) Priority {
			statuses := []Status{Invisible, Unvisited, Designated, Visited}
			return Priority{
				Status: statuses[rng.Intn(4)],
				Key1:   float64(rng.Intn(3)),
				Key2:   float64(rng.Intn(3)),
				ID:     id,
			}
		}
		var ps []Priority
		for i := 0; i < 10; i++ {
			ps = append(ps, mk(i))
		}
		for i := range ps {
			for j := range ps {
				if i == j {
					continue
				}
				a, b := ps[i].Less(ps[j]), ps[j].Less(ps[i])
				if a == b { // both or neither: not a strict total order
					return false
				}
			}
		}
		// Transitivity via sort consistency.
		sorted := append([]Priority(nil), ps...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
		for i := 1; i < len(sorted); i++ {
			if sorted[i].Less(sorted[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}

func TestMetricString(t *testing.T) {
	if MetricID.String() != "ID" || MetricDegree.String() != "Degree" || MetricNCR.String() != "NCR" {
		t.Fatal("metric names wrong")
	}
	if Metric(0).String() != "unknown" {
		t.Fatal("unknown metric name wrong")
	}
}

// triangleWithTail builds 0-1-2 triangle plus edge 2-3.
func triangleWithTail(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(4)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestNCR(t *testing.T) {
	g := triangleWithTail(t)
	// Node 0: neighbors {1,2}, pair (1,2) connected: ncr = 0.
	if got := NCR(g, 0); got != 0 {
		t.Fatalf("NCR(0) = %v, want 0", got)
	}
	// Node 2: neighbors {0,1,3}; connected pairs: (0,1) only, so 1 of 3
	// unordered pairs connected: ncr = 1 - 2/(3*2) = 2/3.
	if got := NCR(g, 2); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("NCR(2) = %v, want 2/3", got)
	}
	// Node 3: single neighbor, ncr defined as 0.
	if got := NCR(g, 3); got != 0 {
		t.Fatalf("NCR(3) = %v, want 0", got)
	}
}

func TestNCRStarAndClique(t *testing.T) {
	star := graph.New(5)
	for v := 1; v < 5; v++ {
		if err := star.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	if got := NCR(star, 0); got != 1 {
		t.Fatalf("NCR(star center) = %v, want 1", got)
	}
	clique := graph.New(4)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			if err := clique.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	for v := 0; v < 4; v++ {
		if got := NCR(clique, v); got != 0 {
			t.Fatalf("NCR(clique %d) = %v, want 0", v, got)
		}
	}
}

func TestBasePriorities(t *testing.T) {
	g := triangleWithTail(t)
	tests := []struct {
		metric Metric
		check  func(pr []Priority) bool
	}{
		{metric: MetricID, check: func(pr []Priority) bool {
			return pr[0].Key1 == 0 && pr[3].Key1 == 0
		}},
		{metric: MetricDegree, check: func(pr []Priority) bool {
			return pr[2].Key1 == 3 && pr[3].Key1 == 1
		}},
		{metric: MetricNCR, check: func(pr []Priority) bool {
			return pr[2].Key2 == 3 && pr[0].Key1 == 0
		}},
	}
	for _, tt := range tests {
		pr := BasePriorities(g, tt.metric)
		for v, p := range pr {
			if p.Status != Unvisited {
				t.Fatalf("%v: node %d status %v, want unvisited", tt.metric, v, p.Status)
			}
			if p.ID != v {
				t.Fatalf("%v: node %d has ID %d", tt.metric, v, p.ID)
			}
		}
		if !tt.check(pr) {
			t.Fatalf("%v: wrong keys: %+v", tt.metric, pr)
		}
	}
}

// TestNCRRangeQuick checks 0 <= ncr <= 1 over random graphs.
func TestNCRRangeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		g := graph.New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.3 {
					if err := g.AddEdge(u, v); err != nil {
						return false
					}
				}
			}
		}
		for v := 0; v < n; v++ {
			ncr := NCR(g, v)
			if ncr < 0 || ncr > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Fatal(err)
	}
}
