package view

import "adhocbcast/internal/graph"

// Local is the local view of one node: the k-hop topology subgraph Gk(owner)
// of Definition 2 together with a priority vector overlaying the broadcast
// state the owner has learned (snooped or piggybacked). Nodes outside the
// view are invisible and carry the lowest priority, matching the paper's
// local-view model: Pr'(v) = Pr(v) for visible v, (0, id(v)) otherwise.
type Local struct {
	// Owner is the node whose view this is.
	Owner int
	// G holds the view's edges on the global vertex numbering.
	G *graph.Graph
	// Visible marks the members of Nk(owner).
	Visible []bool
	// Pr is the priority of every node under this view.
	Pr []Priority
	// Hops records the k used to build the view; 0 means global.
	Hops int
}

// NewLocal builds the k-hop local view of owner over g, starting from the
// given base (un-visited) priorities. k <= 0 yields the global view.
func NewLocal(g *graph.Graph, owner, k int, base []Priority) *Local {
	sub, visible := g.LocalView(owner, k)
	pr := make([]Priority, g.N())
	for v := range pr {
		if visible[v] {
			pr[v] = base[v]
		} else {
			pr[v] = Priority{Status: Invisible, ID: v}
		}
	}
	return &Local{
		Owner:   owner,
		G:       sub,
		Visible: visible,
		Pr:      pr,
		Hops:    k,
	}
}

// MarkVisited records that node v is known to have forwarded the broadcast
// packet. Invisible nodes are ignored: the owner knows no links for them, so
// they cannot participate in replacement paths anyway.
func (lv *Local) MarkVisited(v int) {
	if v < 0 || v >= len(lv.Pr) || !lv.Visible[v] {
		return
	}
	if lv.Pr[v].Status < Visited {
		lv.Pr[v].Status = Visited
	}
}

// MarkDesignated records that node v was designated as a forward node by
// some neighbor. A node already known as visited keeps its higher status.
func (lv *Local) MarkDesignated(v int) {
	if v < 0 || v >= len(lv.Pr) || !lv.Visible[v] {
		return
	}
	if lv.Pr[v].Status < Designated {
		lv.Pr[v].Status = Designated
	}
}

// IsVisited reports whether v is marked visited under this view.
func (lv *Local) IsVisited(v int) bool {
	return v >= 0 && v < len(lv.Pr) && lv.Pr[v].Status == Visited
}

// Neighbors returns the owner's neighbor list under the view (which equals
// its true neighbor list whenever the view has at least one hop).
func (lv *Local) Neighbors() []int {
	return lv.G.Neighbors(lv.Owner)
}

// TwoHopTargets returns N2(owner) \ (N(owner) ∪ {owner}): the 2-hop
// neighbors that neighbor-designating protocols must cover. The result is in
// ascending order.
func (lv *Local) TwoHopTargets() []int {
	n := lv.G.N()
	seen := make([]bool, n)
	seen[lv.Owner] = true
	lv.G.ForEachNeighbor(lv.Owner, func(u int) {
		seen[u] = true
	})
	var out []int
	lv.G.ForEachNeighbor(lv.Owner, func(u int) {
		lv.G.ForEachNeighbor(u, func(w int) {
			if !seen[w] {
				seen[w] = true
				out = append(out, w)
			}
		})
	})
	// The nested iteration appends in neighbor order, not globally sorted.
	sortInts(out)
	return out
}

func sortInts(a []int) {
	// Insertion sort: slices here are tiny (bounded by the 2-hop
	// neighborhood) and usually nearly sorted.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
