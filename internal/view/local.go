package view

import "adhocbcast/internal/graph"

// Local is the local view of one node: the k-hop topology subgraph Gk(owner)
// of Definition 2 together with a priority overlay recording the broadcast
// state the owner has learned (snooped or piggybacked). Nodes outside the
// view are invisible and carry the lowest priority, matching the paper's
// local-view model: Pr'(v) = Pr(v) for visible v, (0, id(v)) otherwise.
//
// The representation is compact: instead of n-sized visibility and priority
// vectors plus a materialized subgraph per view (O(n) memory per node, O(n²)
// per run), a view stores only the sorted member list Nk(owner) with one
// status byte per member, shares the immutable base-priority vector with
// every other view of the round, and answers adjacency queries by filtering
// the underlying topology on the fly. A million-node run with k=2 views
// therefore costs O(Σ|Nk(v)|) = O(n·deg^k) total, not O(n²).
type Local struct {
	// Owner is the node whose view this is.
	Owner int
	// Hops records the k used to build the view; 0 means global.
	Hops int

	topo *graph.Graph // underlying topology (not the view subgraph)
	base []Priority   // shared un-visited priorities, indexed by global id
	// members lists Nk(owner) in ascending global-id order. For a global
	// view it is the full vertex set.
	members []int32
	// meta is parallel to members: bits 0-1 hold the status override
	// (metaBase/metaDesignated/metaVisited) and bit 7 marks fringe members
	// (exactly k hops from the owner, whose mutual links are outside the
	// view by Definition 2).
	meta []uint8
	// global marks a k <= 0 view: every vertex is a member, no fringe, and
	// memberIndex is the identity.
	global bool
}

// Status-override values stored in the low bits of meta.
const (
	metaBase       uint8 = 0 // no override: the shared base priority applies
	metaDesignated uint8 = 1
	metaVisited    uint8 = 2
	metaStatusMask uint8 = 0x03
	metaFringe     uint8 = 0x80
)

// NewLocal builds the k-hop local view of owner over g, starting from the
// given base (un-visited) priorities. k <= 0 yields the global view. Callers
// constructing many views should reuse a Builder instead.
func NewLocal(g *graph.Graph, owner, k int, base []Priority) *Local {
	return NewBuilder().Build(g, owner, k, base)
}

// N returns the number of vertices of the underlying topology (views keep
// the global vertex numbering).
func (lv *Local) N() int { return lv.topo.N() }

// Topo returns the underlying topology graph. Its adjacency is NOT filtered
// by the view: callers iterating it must apply membership and fringe checks
// themselves (see ForEachNeighbor). Intended for performance-critical code
// such as the coverage evaluator.
func (lv *Local) Topo() *graph.Graph { return lv.topo }

// Members returns the view's member set Nk(owner) in ascending global-id
// order. The slice is owned by the view and must not be mutated.
func (lv *Local) Members() []int32 { return lv.members }

// memberIndex returns the position of global id x in members, or -1.
func (lv *Local) memberIndex(x int) int {
	if x < 0 || x >= lv.topo.N() {
		return -1
	}
	if lv.global {
		return x
	}
	lo, hi := 0, len(lv.members)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(lv.members[mid]) < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(lv.members) && int(lv.members[lo]) == x {
		return lo
	}
	return -1
}

// IsVisible reports whether x is a member of the view.
func (lv *Local) IsVisible(x int) bool { return lv.memberIndex(x) >= 0 }

// FringeAt reports whether the member at index i is a fringe member
// (exactly k hops from the owner). Fringe members are visible, but links
// between two fringe members are outside the view.
func (lv *Local) FringeAt(i int) bool { return lv.meta[i]&metaFringe != 0 }

// StatusAt returns the status of the member at index i.
func (lv *Local) StatusAt(i int) Status {
	switch lv.meta[i] & metaStatusMask {
	case metaVisited:
		return Visited
	case metaDesignated:
		return Designated
	default:
		return lv.base[lv.members[i]].Status
	}
}

// PrAt returns the priority of the member at index i: the shared base
// priority with the view's status override applied.
func (lv *Local) PrAt(i int) Priority {
	p := lv.base[lv.members[i]]
	switch lv.meta[i] & metaStatusMask {
	case metaVisited:
		if p.Status < Visited {
			p.Status = Visited
		}
	case metaDesignated:
		if p.Status < Designated {
			p.Status = Designated
		}
	}
	return p
}

// Pr returns the priority of global id x under this view. Non-members carry
// the invisible (lowest) priority.
func (lv *Local) Pr(x int) Priority {
	i := lv.memberIndex(x)
	if i < 0 {
		return Priority{Status: Invisible, ID: x}
	}
	return lv.PrAt(i)
}

// Status returns the status of global id x under this view (Invisible for
// non-members).
func (lv *Local) Status(x int) Status {
	i := lv.memberIndex(x)
	if i < 0 {
		return Invisible
	}
	return lv.StatusAt(i)
}

// MarkVisited records that node v is known to have forwarded the broadcast
// packet. Invisible nodes are ignored: the owner knows no links for them, so
// they cannot participate in replacement paths anyway.
func (lv *Local) MarkVisited(v int) {
	i := lv.memberIndex(v)
	if i < 0 {
		return
	}
	if lv.meta[i]&metaStatusMask < metaVisited {
		lv.meta[i] = lv.meta[i]&^metaStatusMask | metaVisited
	}
}

// MarkDesignated records that node v was designated as a forward node by
// some neighbor. A node already known as visited keeps its higher status.
func (lv *Local) MarkDesignated(v int) {
	i := lv.memberIndex(v)
	if i < 0 {
		return
	}
	if lv.meta[i]&metaStatusMask < metaDesignated {
		lv.meta[i] = lv.meta[i]&^metaStatusMask | metaDesignated
	}
}

// IsVisited reports whether v is marked visited under this view.
func (lv *Local) IsVisited(v int) bool {
	i := lv.memberIndex(v)
	return i >= 0 && lv.StatusAt(i) == Visited
}

// CloneFresh returns an independent copy of the view with every status
// override cleared, sharing the immutable topology, base priorities, and
// member list with the original. Cloning costs one meta-array copy instead
// of a bounded BFS, which is what makes per-session views affordable in
// multi-session traffic runs: each broadcast session clones the run's built
// views and marks its own visited/designated state without touching the
// originals.
func (lv *Local) CloneFresh() *Local {
	meta := make([]uint8, len(lv.meta))
	for i, m := range lv.meta {
		meta[i] = m &^ metaStatusMask
	}
	cp := *lv
	cp.meta = meta
	return &cp
}

// ResetStatus clears every status override, returning the view to its
// freshly built state (fringe information is topological and kept). Used to
// recycle views across runs that share a topology.
func (lv *Local) ResetStatus() {
	for i := range lv.meta {
		lv.meta[i] &^= metaStatusMask
	}
}

// ForEachMember calls fn for every member of the view in ascending
// global-id order.
func (lv *Local) ForEachMember(fn func(x int)) {
	for _, x := range lv.members {
		fn(int(x))
	}
}

// ForEachNeighbor calls fn for every view-neighbor of x in ascending order:
// topology neighbors that are members, excluding fringe-fringe links
// (Definition 2). Non-members have no view-neighbors.
func (lv *Local) ForEachNeighbor(x int, fn func(y int)) {
	i := lv.memberIndex(x)
	if i < 0 {
		return
	}
	if lv.global {
		lv.topo.ForEachNeighbor(x, fn)
		return
	}
	xf := lv.FringeAt(i)
	lv.topo.ForEachNeighbor(x, func(y int) {
		j := lv.memberIndex(y)
		if j < 0 || (xf && lv.FringeAt(j)) {
			return
		}
		fn(y)
	})
}

// HasEdge reports whether the link {u,w} is part of the view.
func (lv *Local) HasEdge(u, w int) bool {
	i := lv.memberIndex(u)
	if i < 0 {
		return false
	}
	j := lv.memberIndex(w)
	if j < 0 {
		return false
	}
	if !lv.global && lv.FringeAt(i) && lv.FringeAt(j) {
		return false
	}
	return lv.topo.HasEdge(u, w)
}

// Degree returns the number of view-neighbors of x.
func (lv *Local) Degree(x int) int {
	i := lv.memberIndex(x)
	if i < 0 {
		return 0
	}
	if lv.global || !lv.FringeAt(i) {
		// A non-fringe member is within k-1 hops, so all its topology
		// neighbors are members and every incident link is in the view.
		return lv.topo.Degree(x)
	}
	deg := 0
	lv.ForEachNeighbor(x, func(int) { deg++ })
	return deg
}

// Neighbors returns the owner's neighbor list under the view (which equals
// its true neighbor list whenever the view has at least one hop, since the
// owner is at distance 0 and never on the fringe).
func (lv *Local) Neighbors() []int {
	var out []int
	lv.ForEachNeighbor(lv.Owner, func(u int) { out = append(out, u) })
	return out
}

// TwoHopTargets returns N2(owner) \ (N(owner) ∪ {owner}): the 2-hop
// neighbors that neighbor-designating protocols must cover. The result is in
// ascending order.
func (lv *Local) TwoHopTargets() []int {
	seen := map[int]bool{lv.Owner: true}
	lv.ForEachNeighbor(lv.Owner, func(u int) { seen[u] = true })
	var out []int
	lv.ForEachNeighbor(lv.Owner, func(u int) {
		lv.ForEachNeighbor(u, func(w int) {
			if !seen[w] {
				seen[w] = true
				out = append(out, w)
			}
		})
	})
	// The nested iteration appends in neighbor order, not globally sorted.
	sortInts(out)
	return out
}

func sortInts(a []int) {
	// Insertion sort: slices here are tiny (bounded by the 2-hop
	// neighborhood) and usually nearly sorted.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
