package view

import (
	"testing"

	"adhocbcast/internal/graph"
)

// pathGraph builds 0-1-2-...-(n-1).
func pathGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestNewLocalInvisiblePriorities(t *testing.T) {
	g := pathGraph(t, 6)
	base := BasePriorities(g, MetricID)
	lv := NewLocal(g, 0, 2, base)
	for v := 0; v < 6; v++ {
		wantVisible := v <= 2
		if lv.Visible[v] != wantVisible {
			t.Fatalf("Visible[%d] = %v, want %v", v, lv.Visible[v], wantVisible)
		}
		if wantVisible && lv.Pr[v] != base[v] {
			t.Fatalf("visible node %d priority changed", v)
		}
		if !wantVisible && lv.Pr[v].Status != Invisible {
			t.Fatalf("invisible node %d has status %v", v, lv.Pr[v].Status)
		}
		if lv.Pr[v].ID != v {
			t.Fatalf("node %d id = %d", v, lv.Pr[v].ID)
		}
	}
	if lv.Owner != 0 || lv.Hops != 2 {
		t.Fatalf("Owner/Hops = %d/%d", lv.Owner, lv.Hops)
	}
}

// TestLocalPrioritiesNoMoreThanGlobal checks the local-view axiom of Section
// 2: Pr'(v) <= Pr(v) for every node.
func TestLocalPrioritiesNoMoreThanGlobal(t *testing.T) {
	g := pathGraph(t, 8)
	base := BasePriorities(g, MetricNCR)
	for owner := 0; owner < 8; owner++ {
		lv := NewLocal(g, owner, 2, base)
		for v := 0; v < 8; v++ {
			if lv.Pr[v].Greater(base[v]) {
				t.Fatalf("owner %d: local priority of %d exceeds global", owner, v)
			}
		}
	}
}

func TestMarkVisited(t *testing.T) {
	g := pathGraph(t, 6)
	base := BasePriorities(g, MetricID)
	lv := NewLocal(g, 2, 2, base)

	lv.MarkVisited(3)
	if !lv.IsVisited(3) {
		t.Fatal("MarkVisited(3) had no effect")
	}
	if lv.Pr[3].Status != Visited {
		t.Fatalf("status = %v", lv.Pr[3].Status)
	}

	// Invisible node (distance 3 > 2): mark must be ignored.
	lv.MarkVisited(5)
	if lv.IsVisited(5) {
		t.Fatal("invisible node marked visited")
	}

	// Out-of-range ids must be ignored without panicking.
	lv.MarkVisited(-1)
	lv.MarkVisited(100)
}

func TestMarkDesignated(t *testing.T) {
	g := pathGraph(t, 5)
	base := BasePriorities(g, MetricID)
	lv := NewLocal(g, 2, 2, base)

	lv.MarkDesignated(1)
	if lv.Pr[1].Status != Designated {
		t.Fatalf("status = %v, want designated", lv.Pr[1].Status)
	}

	// Designation must never demote a visited node.
	lv.MarkVisited(3)
	lv.MarkDesignated(3)
	if lv.Pr[3].Status != Visited {
		t.Fatalf("designation demoted a visited node to %v", lv.Pr[3].Status)
	}

	// Visiting a designated node promotes it.
	lv.MarkVisited(1)
	if lv.Pr[1].Status != Visited {
		t.Fatalf("visited mark did not promote designated node: %v", lv.Pr[1].Status)
	}

	lv.MarkDesignated(-2)
	lv.MarkDesignated(99)
}

func TestNeighbors(t *testing.T) {
	g := pathGraph(t, 5)
	base := BasePriorities(g, MetricID)
	lv := NewLocal(g, 2, 2, base)
	nbrs := lv.Neighbors()
	if len(nbrs) != 2 || nbrs[0] != 1 || nbrs[1] != 3 {
		t.Fatalf("Neighbors() = %v", nbrs)
	}
}

func TestTwoHopTargets(t *testing.T) {
	// Star of node 0 with arms 1-4, plus leaves: 1-5, 2-6, 2-7, and a
	// redundant link 5-0? no: keep 2-hop targets {5,6,7}.
	g := graph.New(8)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 5}, {2, 6}, {2, 7}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	base := BasePriorities(g, MetricID)
	lv := NewLocal(g, 0, 2, base)
	got := lv.TwoHopTargets()
	want := []int{5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("TwoHopTargets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TwoHopTargets = %v, want %v", got, want)
		}
	}
}

func TestTwoHopTargetsExcludesNeighborsAndSelf(t *testing.T) {
	// Triangle: everything is within one hop, no 2-hop targets.
	g := graph.New(3)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	lv := NewLocal(g, 0, 2, BasePriorities(g, MetricID))
	if got := lv.TwoHopTargets(); len(got) != 0 {
		t.Fatalf("TwoHopTargets = %v, want empty", got)
	}
}

func TestGlobalViewAllVisible(t *testing.T) {
	g := pathGraph(t, 7)
	lv := NewLocal(g, 3, 0, BasePriorities(g, MetricID))
	for v := 0; v < 7; v++ {
		if !lv.Visible[v] {
			t.Fatalf("node %d invisible in global view", v)
		}
	}
	if lv.G.M() != g.M() {
		t.Fatalf("global view lost edges: %d vs %d", lv.G.M(), g.M())
	}
}
