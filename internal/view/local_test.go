package view

import (
	"testing"

	"adhocbcast/internal/graph"
)

// pathGraph builds 0-1-2-...-(n-1).
func pathGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestNewLocalInvisiblePriorities(t *testing.T) {
	g := pathGraph(t, 6)
	base := BasePriorities(g, MetricID)
	lv := NewLocal(g, 0, 2, base)
	for v := 0; v < 6; v++ {
		wantVisible := v <= 2
		if lv.IsVisible(v) != wantVisible {
			t.Fatalf("IsVisible(%d) = %v, want %v", v, lv.IsVisible(v), wantVisible)
		}
		if wantVisible && lv.Pr(v) != base[v] {
			t.Fatalf("visible node %d priority changed", v)
		}
		if !wantVisible && lv.Pr(v).Status != Invisible {
			t.Fatalf("invisible node %d has status %v", v, lv.Pr(v).Status)
		}
		if lv.Pr(v).ID != v {
			t.Fatalf("node %d id = %d", v, lv.Pr(v).ID)
		}
	}
	if lv.Owner != 0 || lv.Hops != 2 {
		t.Fatalf("Owner/Hops = %d/%d", lv.Owner, lv.Hops)
	}
}

// TestLocalPrioritiesNoMoreThanGlobal checks the local-view axiom of Section
// 2: Pr'(v) <= Pr(v) for every node.
func TestLocalPrioritiesNoMoreThanGlobal(t *testing.T) {
	g := pathGraph(t, 8)
	base := BasePriorities(g, MetricNCR)
	for owner := 0; owner < 8; owner++ {
		lv := NewLocal(g, owner, 2, base)
		for v := 0; v < 8; v++ {
			if lv.Pr(v).Greater(base[v]) {
				t.Fatalf("owner %d: local priority of %d exceeds global", owner, v)
			}
		}
	}
}

func TestMarkVisited(t *testing.T) {
	g := pathGraph(t, 6)
	base := BasePriorities(g, MetricID)
	lv := NewLocal(g, 2, 2, base)

	lv.MarkVisited(3)
	if !lv.IsVisited(3) {
		t.Fatal("MarkVisited(3) had no effect")
	}
	if lv.Pr(3).Status != Visited {
		t.Fatalf("status = %v", lv.Pr(3).Status)
	}

	// Invisible node (distance 3 > 2): mark must be ignored.
	lv.MarkVisited(5)
	if lv.IsVisited(5) {
		t.Fatal("invisible node marked visited")
	}

	// Out-of-range ids must be ignored without panicking.
	lv.MarkVisited(-1)
	lv.MarkVisited(100)
}

func TestMarkDesignated(t *testing.T) {
	g := pathGraph(t, 5)
	base := BasePriorities(g, MetricID)
	lv := NewLocal(g, 2, 2, base)

	lv.MarkDesignated(1)
	if lv.Pr(1).Status != Designated {
		t.Fatalf("status = %v, want designated", lv.Pr(1).Status)
	}

	// Designation must never demote a visited node.
	lv.MarkVisited(3)
	lv.MarkDesignated(3)
	if lv.Pr(3).Status != Visited {
		t.Fatalf("designation demoted a visited node to %v", lv.Pr(3).Status)
	}

	// Visiting a designated node promotes it.
	lv.MarkVisited(1)
	if lv.Pr(1).Status != Visited {
		t.Fatalf("visited mark did not promote designated node: %v", lv.Pr(1).Status)
	}

	lv.MarkDesignated(-2)
	lv.MarkDesignated(99)
}

func TestResetStatus(t *testing.T) {
	g := pathGraph(t, 6)
	base := BasePriorities(g, MetricID)
	lv := NewLocal(g, 2, 2, base)
	lv.MarkVisited(1)
	lv.MarkDesignated(3)
	lv.ResetStatus()
	for v := 0; v < 6; v++ {
		if lv.Pr(v) != NewLocal(g, 2, 2, base).Pr(v) {
			t.Fatalf("node %d priority differs after reset", v)
		}
	}
	// Fringe information must survive the reset: 0 and 4 are both at
	// distance 2 from the owner, so the (nonexistent) link between them
	// stays excluded, while real edges remain.
	if !lv.HasEdge(1, 2) || !lv.HasEdge(2, 3) || !lv.HasEdge(3, 4) {
		t.Fatal("reset lost view edges")
	}
}

func TestNeighbors(t *testing.T) {
	g := pathGraph(t, 5)
	base := BasePriorities(g, MetricID)
	lv := NewLocal(g, 2, 2, base)
	nbrs := lv.Neighbors()
	if len(nbrs) != 2 || nbrs[0] != 1 || nbrs[1] != 3 {
		t.Fatalf("Neighbors() = %v", nbrs)
	}
}

// TestFringeEdgesExcluded checks the Definition 2 edge rule: links between
// two nodes both exactly k hops from the owner are outside the view.
func TestFringeEdgesExcluded(t *testing.T) {
	// Cycle 0-1-2-3-4-5-0: from owner 0 with k=2, nodes 2 and 4 are both at
	// distance 2. The view contains no 2-4 edge anyway; use a square with a
	// diagonal instead: 0-1, 0-3, 1-2, 3-2, plus 2 at distance 2 via both.
	g := graph.New(5)
	for _, e := range [][2]int{{0, 1}, {0, 3}, {1, 2}, {3, 2}, {2, 4}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	lv := NewLocal(g, 0, 1, BasePriorities(g, MetricID))
	// k=1: members {0,1,3}; 1 and 3 are fringe, so any 1-3 link would be
	// excluded. Here 1-3 does not exist; check 1-2 is invisible (2 is not a
	// member) and 0-1 is visible.
	if !lv.HasEdge(0, 1) || !lv.HasEdge(0, 3) {
		t.Fatal("owner links missing from 1-hop view")
	}
	if lv.HasEdge(1, 2) || lv.IsVisible(2) {
		t.Fatal("1-hop view leaks 2-hop information")
	}

	// Now with an explicit fringe-fringe link: triangle 0-1, 0-2, 1-2 plus
	// pendant 1-3. k=1 from 3: members {1, 3} only... use owner 0, k=1:
	// members {0,1,2}, fringe {1,2}, so the 1-2 link must be excluded.
	h := graph.New(4)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 2}, {1, 3}} {
		if err := h.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	hv := NewLocal(h, 0, 1, BasePriorities(h, MetricID))
	if hv.HasEdge(1, 2) {
		t.Fatal("fringe-fringe link visible in 1-hop view")
	}
	got := 0
	hv.ForEachNeighbor(1, func(int) { got++ })
	if got != 1 {
		t.Fatalf("fringe node 1 has %d view-neighbors, want 1 (just the owner)", got)
	}
}

func TestTwoHopTargets(t *testing.T) {
	// Star of node 0 with arms 1-4, plus leaves: 1-5, 2-6, 2-7, and a
	// redundant link 5-0? no: keep 2-hop targets {5,6,7}.
	g := graph.New(8)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 5}, {2, 6}, {2, 7}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	base := BasePriorities(g, MetricID)
	lv := NewLocal(g, 0, 2, base)
	got := lv.TwoHopTargets()
	want := []int{5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("TwoHopTargets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TwoHopTargets = %v, want %v", got, want)
		}
	}
}

func TestTwoHopTargetsExcludesNeighborsAndSelf(t *testing.T) {
	// Triangle: everything is within one hop, no 2-hop targets.
	g := graph.New(3)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	lv := NewLocal(g, 0, 2, BasePriorities(g, MetricID))
	if got := lv.TwoHopTargets(); len(got) != 0 {
		t.Fatalf("TwoHopTargets = %v, want empty", got)
	}
}

func TestGlobalViewAllVisible(t *testing.T) {
	g := pathGraph(t, 7)
	lv := NewLocal(g, 3, 0, BasePriorities(g, MetricID))
	for v := 0; v < 7; v++ {
		if !lv.IsVisible(v) {
			t.Fatalf("node %d invisible in global view", v)
		}
	}
	// Every topology edge must be in the global view.
	for v := 0; v < 7; v++ {
		g.ForEachNeighbor(v, func(u int) {
			if !lv.HasEdge(v, u) {
				t.Fatalf("global view lost edge %d-%d", v, u)
			}
		})
	}
}

// TestCompactMatchesLocalView cross-checks the compact representation
// against graph.LocalView (the original Definition 2 materialization) on
// random graphs: identical member sets and identical filtered edges.
func TestCompactMatchesLocalView(t *testing.T) {
	g := graph.New(12)
	edges := [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7},
		{7, 8}, {8, 9}, {9, 10}, {10, 11}, {0, 4}, {2, 7}, {5, 9}, {1, 10},
	}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	base := BasePriorities(g, MetricDegree)
	for _, k := range []int{0, 1, 2, 3} {
		for owner := 0; owner < g.N(); owner++ {
			lv := NewLocal(g, owner, k, base)
			sub, visible := g.LocalView(owner, k)
			for v := 0; v < g.N(); v++ {
				if lv.IsVisible(v) != visible[v] {
					t.Fatalf("k=%d owner=%d: visibility of %d differs", k, owner, v)
				}
				for u := 0; u < g.N(); u++ {
					if lv.HasEdge(v, u) != sub.HasEdge(v, u) {
						t.Fatalf("k=%d owner=%d: edge %d-%d differs", k, owner, v, u)
					}
				}
				var got []int
				lv.ForEachNeighbor(v, func(u int) { got = append(got, u) })
				var want []int
				if visible[v] {
					want = sub.Neighbors(v)
				}
				if len(got) != len(want) {
					t.Fatalf("k=%d owner=%d: neighbors of %d = %v, want %v", k, owner, v, got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("k=%d owner=%d: neighbors of %d = %v, want %v", k, owner, v, got, want)
					}
				}
			}
		}
	}
}
