package view

import (
	"slices"

	"adhocbcast/internal/graph"
)

// Builder constructs Local views with reusable bounded-BFS scratch, so that
// building all n views of a run costs O(Σ|Nk(v)|·deg) time and only the
// views' own member arrays in allocations. A Builder is not safe for
// concurrent use; create one per goroutine.
type Builder struct {
	dist  []int32 // per-vertex BFS distance, -1 when untouched
	queue []int32 // BFS frontier; doubles as the touched list for cleanup
}

// NewBuilder returns an empty Builder; scratch grows on first use.
func NewBuilder() *Builder { return &Builder{} }

func (b *Builder) ensure(n int) {
	if len(b.dist) >= n {
		return
	}
	old := len(b.dist)
	b.dist = append(b.dist, make([]int32, n-old)...)
	for i := old; i < n; i++ {
		b.dist[i] = -1
	}
}

// Build constructs the k-hop local view of owner over g with the given
// shared base priorities. k <= 0 yields the global view. The base slice is
// retained by the view (views overlay status changes on top of it).
func (b *Builder) Build(g *graph.Graph, owner, k int, base []Priority) *Local {
	n := g.N()
	if k <= 0 {
		members := make([]int32, n)
		for i := range members {
			members[i] = int32(i)
		}
		return &Local{
			Owner:   owner,
			Hops:    k,
			topo:    g,
			base:    base,
			members: members,
			meta:    make([]uint8, n),
			global:  true,
		}
	}
	b.ensure(n)
	b.queue = b.queue[:0]
	if owner >= 0 && owner < n {
		b.dist[owner] = 0
		b.queue = append(b.queue, int32(owner))
	}
	for head := 0; head < len(b.queue); head++ {
		x := int(b.queue[head])
		d := b.dist[x]
		if int(d) >= k {
			continue
		}
		g.ForEachNeighbor(x, func(y int) {
			if b.dist[y] < 0 {
				b.dist[y] = d + 1
				b.queue = append(b.queue, int32(y))
			}
		})
	}
	members := make([]int32, len(b.queue))
	copy(members, b.queue)
	slices.Sort(members)
	meta := make([]uint8, len(members))
	for i, x := range members {
		if int(b.dist[x]) == k {
			meta[i] = metaFringe
		}
	}
	for _, x := range b.queue {
		b.dist[x] = -1
	}
	return &Local{
		Owner:   owner,
		Hops:    k,
		topo:    g,
		base:    base,
		members: members,
		meta:    meta,
	}
}
