package chaos

import (
	"math"
	"math/rand"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"adhocbcast/internal/geo"
	"adhocbcast/internal/hello"
	"adhocbcast/internal/obsv"
	"adhocbcast/internal/protocol"
	rt "adhocbcast/internal/runtime"
	"adhocbcast/internal/sim"
)

// buildNodeBinary compiles cmd/bcastnode once into a test temp dir. The
// children run without the race detector (they are separate processes); the
// supervisor — the code under -race — is this test binary.
func buildNodeBinary(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	root := filepath.Dir(strings.TrimSpace(string(out)))
	bin := filepath.Join(t.TempDir(), "bcastnode")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/bcastnode")
	cmd.Dir = root
	if msg, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build cmd/bcastnode: %v\n%s", err, msg)
	}
	return bin
}

// TestKillPlanDeterministic: the kill schedule is a pure function of
// (seed, horizon) — two builds agree interval for interval — and a different
// seed produces a different schedule.
func TestKillPlanDeterministic(t *testing.T) {
	cfg := DefaultConfig(7, 10, 400)
	a, err := KillPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KillPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	kills := 0
	for v := range a.NodeDown {
		if len(a.NodeDown[v]) != len(b.NodeDown[v]) {
			t.Fatalf("node %d: %d vs %d intervals across rebuilds", v, len(a.NodeDown[v]), len(b.NodeDown[v]))
		}
		for i := range a.NodeDown[v] {
			if a.NodeDown[v][i] != b.NodeDown[v][i] {
				t.Fatalf("node %d interval %d: %+v vs %+v", v, i, a.NodeDown[v][i], b.NodeDown[v][i])
			}
		}
		if v < cfg.Backbone && len(a.NodeDown[v]) > 0 {
			t.Fatalf("backbone node %d has down intervals; only victims may be killed", v)
		}
		kills += len(a.NodeDown[v])
	}
	if kills == 0 {
		t.Fatal("kill plan is empty")
	}
	cfg2 := cfg
	cfg2.Seed = 8
	c, err := KillPlan(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for v := range a.NodeDown {
		if len(a.NodeDown[v]) != len(c.NodeDown[v]) {
			same = false
			break
		}
		for i := range a.NodeDown[v] {
			if a.NodeDown[v][i] != c.NodeDown[v][i] {
				same = false
			}
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical kill plans")
	}
}

// TestChaosSoak is the acceptance soak: real processes, seed-deterministic
// SIGKILL/restart chaos, and the three invariants from the package doc.
// Full size (no -short) is a 200-broadcast run with at least 30 kills.
func TestChaosSoak(t *testing.T) {
	broadcasts, horizon, minKills := 200, 500.0, 30
	if testing.Short() {
		broadcasts, horizon, minKills = 40, 120.0, 4
	}
	cfg := DefaultConfig(1, broadcasts, horizon)
	cfg.Bin = buildNodeBinary(t)
	cfg.Dir = t.TempDir()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	t.Logf("chaos: kills=%d restarts=%d boots=%d replays=%d rejoins=%d strict=%d/%d",
		rep.Kills, rep.Restarts, rep.Boots, rep.Replays, rep.Rejoins,
		rep.StrictDelivered, rep.StrictChecked)
	for _, v := range rep.Violations {
		t.Errorf("invariant violation: %s", v)
	}
	if rep.Kills < minKills {
		t.Errorf("only %d kills executed, want >= %d", rep.Kills, minKills)
	}
	if rep.Restarts != rep.Kills {
		t.Errorf("%d restarts for %d kills: every SIGKILL must be followed by a respawn", rep.Restarts, rep.Kills)
	}
	n := cfg.Backbone + cfg.Victims
	if rep.Boots != n+rep.Restarts {
		t.Errorf("boots=%d, want n+restarts=%d: journals must count every process start", rep.Boots, n+rep.Restarts)
	}
	if rep.Replays == 0 {
		t.Error("zero journal replays: the chaos never exercised recovery")
	}
	if rep.Rejoins == 0 {
		t.Error("zero completed rejoins: the chaos never exercised view repair")
	}
	if rep.Broadcasts != broadcasts {
		t.Errorf("injected %d broadcasts, want %d", rep.Broadcasts, broadcasts)
	}
	if rep.StrictChecked == 0 || rep.StrictDelivered != rep.StrictChecked {
		t.Errorf("strict delivery %d/%d, want 100%%", rep.StrictDelivered, rep.StrictChecked)
	}
	if rep.DuplicateForwards != 0 {
		t.Errorf("%d duplicated forward records across journals, want 0", rep.DuplicateForwards)
	}
}

// TestDynamicHelloAgreement: seed-matched sim and live runs with dynamic
// hello maintenance plus the conservative fallback must agree on mean
// delivery and forward ratios within 1% — the same aggregate-agreement
// contract the soak harness enforces for Generic-FR, now with stale-view
// holds in the decision path on both sides.
func TestDynamicHelloAgreement(t *testing.T) {
	const n = 36
	const seed = 11
	rounds := 24
	if testing.Short() {
		rounds = 6
	}
	net, err := geo.Generate(geo.Config{N: n, AvgDegree: 6, Seed: seed},
		rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	g := net.G
	// Beacons every 2 units with a 2.5-unit expiry: staleness fires well
	// inside the few-unit span of an FR wave, in both arms. The coarse
	// 40ms/unit TimeScale keeps live wall-clock slop far below a beacon
	// period, so a live decision almost never lands on the other side of a
	// staleness boundary than its seed-matched sim twin.
	dyn := &hello.Dynamic{Interval: 2, Expiry: 2.5, LossRate: 0.4, Seed: seed}
	var liveRec obsv.RunRecord
	cl, err := rt.New(g, rt.Config{
		Protocol:             func() sim.Protocol { return protocol.Generic(protocol.TimingFirstReceipt) },
		Seed:                 seed,
		TimeScale:            40 * time.Millisecond,
		DynamicHello:         dyn,
		ConservativeFallback: true,
		Metrics:              &liveRec,
	})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	var simDel, liveDel, simFwd, liveFwd float64
	simHolds, liveHolds := 0, 0
	for i := 0; i < rounds; i++ {
		source := (i * 7) % n
		var simRec obsv.RunRecord
		simRes, err := sim.Run(g, source, protocol.Generic(protocol.TimingFirstReceipt), sim.Config{
			Seed:                 seed,
			DynamicHello:         dyn,
			ConservativeFallback: true,
			Metrics:              &simRec,
		})
		if err != nil {
			t.Fatalf("sim round %d: %v", i, err)
		}
		liveRes, err := cl.Broadcast(source, nil)
		if err != nil {
			t.Fatalf("live round %d: %v", i, err)
		}
		simDel += simRes.DeliveryRatio()
		liveDel += liveRes.DeliveryRatio()
		simFwd += float64(len(simRes.Forward)) / n
		liveFwd += float64(len(liveRes.Forward)) / n
		simHolds += simRec.StaleViewHolds
		liveHolds += liveRec.StaleViewHolds
	}
	k := float64(rounds)
	if d := math.Abs(simDel/k - liveDel/k); d > 0.01 {
		t.Errorf("mean delivery disagrees by %.4f (> 0.01): sim %.4f, live %.4f", d, simDel/k, liveDel/k)
	}
	if d := math.Abs(simFwd/k - liveFwd/k); d > 0.01 {
		t.Errorf("mean forward ratio disagrees by %.4f (> 0.01): sim %.4f, live %.4f", d, simFwd/k, liveFwd/k)
	}
	if simHolds == 0 || liveHolds == 0 {
		t.Errorf("stale-view holds sim=%d live=%d: the mechanism under test never fired", simHolds, liveHolds)
	}
}
