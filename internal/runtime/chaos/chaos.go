// Package chaos is the process-level crash-recovery harness: it spawns a
// fleet of real bcastnode processes (cmd/bcastnode) over localhost UDP,
// SIGKILLs and respawns them on a seed-deterministic schedule built with the
// internal/fault plan machinery, and verifies the crash-recovery claims the
// journal + dynamic-hello design makes (see docs/recovery.md):
//
//   - Strict delivery — every broadcast reaches 100% of the strict-reachable
//     nodes (never killed, connected to the source through such nodes), the
//     same obligation the in-process soak harness scores.
//   - Zero duplicate forwards — a SIGKILLed and replayed node never re-sends
//     a forward it already journaled: each journal holds at most one forward
//     record per message.
//   - Real chaos — the run proves restarts, journal replays, and completed
//     rejoins all actually happened (nonzero counters), so a green run
//     cannot be a run where the adversary never bit.
//
// The topology is a fixed backbone-and-victims shape: protected nodes form a
// ring that stays up for the whole run (so strict reachability is the whole
// backbone), and each victim hangs off two adjacent backbone nodes and is
// killed repeatedly. Victims recover missed waves through the anti-entropy
// hello beacons after rejoining.
//
// Everything the supervisor does over the wire — spawn handshakes, kills,
// respawns, peer-map pushes, verification reads — retries with bounded
// exponential backoff plus jitter, because a UDP datagram to a node that is
// mid-restart is simply gone.
package chaos

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"adhocbcast/internal/fault"
	"adhocbcast/internal/graph"
	rt "adhocbcast/internal/runtime"
)

// Config parameterizes one chaos run. Bin must point at a built bcastnode
// binary; the test harness builds it once per run.
type Config struct {
	// Backbone is the number of protected ring nodes (never killed).
	Backbone int
	// Victims is the number of kill-target nodes hanging off the backbone.
	Victims int
	// Seed drives the kill schedule and every derived stream.
	Seed int64
	// Broadcasts is the number of waves injected at backbone sources.
	Broadcasts int
	// Horizon is the schedule length in protocol time units: kills and
	// broadcasts are placed inside it.
	Horizon float64
	// TimeScale is the wall-clock duration of one time unit, for both the
	// spawned nodes and the supervisor's schedule clock.
	TimeScale time.Duration
	// HelloInterval is the nodes' beacon period in time units (enables the
	// rejoin protocol and anti-entropy repair).
	HelloInterval float64
	// Bin is the path of the bcastnode binary to spawn.
	Bin string
	// Dir is the scratch directory holding the per-node journals.
	Dir string
}

// DefaultConfig returns the CI chaos shape: a 6-node backbone with 4 victims.
// With the default kill cadence a 500-unit horizon yields 30+ kill/restart
// events; a 120-unit smoke horizon still yields around a dozen.
func DefaultConfig(seed int64, broadcasts int, horizon float64) Config {
	return Config{
		Backbone:      6,
		Victims:       4,
		Seed:          seed,
		Broadcasts:    broadcasts,
		Horizon:       horizon,
		TimeScale:     10 * time.Millisecond,
		HelloInterval: 5,
	}
}

// Report is the outcome of one chaos run.
type Report struct {
	// Kills and Restarts count executed SIGKILLs and completed respawns.
	Kills    int
	Restarts int
	// Boots, Replays, and Rejoins aggregate the nodes' own status counters
	// (Boots counts every process start, so Boots == N + Restarts when every
	// respawn came back).
	Boots   int
	Replays int
	Rejoins int
	// Broadcasts is the number of waves injected; StrictChecked and
	// StrictDelivered accumulate the delivery invariant over (wave,
	// strict-node) obligations.
	Broadcasts      int
	StrictChecked   int
	StrictDelivered int
	// DuplicateForwards counts journal (node, message) pairs with more than
	// one forward record — the invariant demands zero.
	DuplicateForwards int
	// Violations describes every invariant violation (empty on success).
	Violations []string
}

// Topology returns the harness graph for cfg: backbone ring 0..Backbone-1,
// victim v (ids Backbone..) attached to backbone nodes v%B and (v+1)%B.
func Topology(cfg Config) (*graph.Graph, error) {
	b := cfg.Backbone
	g := graph.New(b + cfg.Victims)
	for i := 0; i < b; i++ {
		if err := g.AddEdge(i, (i+1)%b); err != nil {
			return nil, err
		}
	}
	for v := 0; v < cfg.Victims; v++ {
		id := b + v
		if err := g.AddEdge(id, v%b); err != nil {
			return nil, err
		}
		if err := g.AddEdge(id, (v+1)%b); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// KillPlan builds the seed-deterministic kill schedule as a fault plan: every
// victim cycles through down intervals of 10–20 units separated by 20–40
// units of uptime, between 5% and 85% of the horizon. The same (cfg.Seed,
// horizon) always yields the same plan.
func KillPlan(cfg Config) (*fault.Plan, error) {
	n := cfg.Backbone + cfg.Victims
	plan := fault.NewEmptyPlan(n)
	killEnd := 0.85 * cfg.Horizon
	for v := 0; v < cfg.Victims; v++ {
		id := cfg.Backbone + v
		rng := rand.New(rand.NewSource(rt.StreamSeed(cfg.Seed, "chaos.kill", id)))
		t := 0.05*cfg.Horizon + rng.Float64()*20
		for t < killEnd {
			down := 10 + rng.Float64()*10
			if t+down >= killEnd {
				break
			}
			plan.AddNodeDown(id, fault.Interval{From: t, To: t + down})
			t += down + 20 + rng.Float64()*20
		}
	}
	if err := plan.Validate(n); err != nil {
		return nil, fmt.Errorf("chaos: kill plan: %w", err)
	}
	return plan, nil
}

// event is one scheduled supervisor action.
type event struct {
	at     float64 // protocol time units from run start
	kind   int     // evKill, evRestart, evBroadcast
	victim int
	msg    int64
	source int
}

const (
	evKill = iota
	evRestart
	evBroadcast
)

// proc is one spawned bcastnode process.
type proc struct {
	cmd   *exec.Cmd
	addr  *net.UDPAddr
	alive bool
}

// supervisor owns the fleet and the single UDP client socket used for every
// handshake and verification RPC.
type supervisor struct {
	cfg   Config
	g     *graph.Graph
	names []string
	procs []*proc
	conn  *net.UDPConn
	rng   *rand.Rand // jitter for retry backoff
	msgID int
	adj   map[string][]string
}

// backoff returns the bounded exponential retry delay with jitter for
// attempt (0-based): 50ms·2^attempt capped at 800ms, plus up to 25% jitter.
func (s *supervisor) backoff(attempt int) time.Duration {
	d := 50 * time.Millisecond << uint(attempt)
	if d > 800*time.Millisecond {
		d = 800 * time.Millisecond
	}
	return d + time.Duration(s.rng.Int63n(int64(d)/4+1))
}

// body mirrors the bcastnode message schema (the fields the supervisor uses).
type body struct {
	Type      string              `json:"type"`
	MsgID     int                 `json:"msg_id,omitempty"`
	InReplyTo int                 `json:"in_reply_to,omitempty"`
	NodeID    string              `json:"node_id,omitempty"`
	NodeIDs   []string            `json:"node_ids,omitempty"`
	Topology  map[string][]string `json:"topology,omitempty"`
	Message   *int64              `json:"message,omitempty"`
	Messages  []int64             `json:"messages,omitempty"`
	Peers     map[string]string   `json:"peers,omitempty"`
	Boots     int                 `json:"boots,omitempty"`
	Replays   int                 `json:"replays,omitempty"`
	Rejoins   int                 `json:"rejoins,omitempty"`
	Code      int                 `json:"code,omitempty"`
	Text      string              `json:"text,omitempty"`
}

type envelope struct {
	Src  string `json:"src"`
	Dest string `json:"dest"`
	Body body   `json:"body"`
}

// rpc sends b to node i and waits for the matching reply, retrying with
// bounded exponential backoff + jitter (datagrams to a dead or restarting
// node are simply lost).
func (s *supervisor) rpc(i int, b body) (body, error) {
	for attempt := 0; attempt < 7; attempt++ {
		s.msgID++
		b.MsgID = s.msgID
		raw, err := json.Marshal(envelope{Src: "c0", Dest: s.names[i], Body: b})
		if err != nil {
			return body{}, err
		}
		if _, err := s.conn.WriteToUDP(raw, s.procs[i].addr); err != nil {
			return body{}, err
		}
		deadline := time.Now().Add(s.backoff(attempt))
		buf := make([]byte, 256<<10)
		for {
			s.conn.SetReadDeadline(deadline)
			sz, _, err := s.conn.ReadFromUDP(buf)
			if err != nil {
				break // timed out: resend with a longer deadline
			}
			var env envelope
			if err := json.Unmarshal(buf[:sz], &env); err != nil {
				continue // noise
			}
			if env.Body.InReplyTo == b.MsgID {
				if env.Body.Type == "error" {
					return env.Body, fmt.Errorf("chaos: %s rpc %s: error %d: %s",
						s.names[i], b.Type, env.Body.Code, env.Body.Text)
				}
				return env.Body, nil
			}
		}
	}
	return body{}, fmt.Errorf("chaos: %s rpc %s: no reply after retries", s.names[i], b.Type)
}

// spawn starts (or restarts) node i: exec the binary, read the bound UDP
// address off stdout, and run the init handshake.
func (s *supervisor) spawn(i int) error {
	args := []string{
		"-udp", "127.0.0.1:0",
		"-proto", "flooding",
		"-recovery",
		"-journal", s.cfg.Dir,
		"-hello-interval", fmt.Sprint(s.cfg.HelloInterval),
		"-seed", fmt.Sprint(s.cfg.Seed),
		"-timescale", s.cfg.TimeScale.String(),
	}
	cmd := exec.Command(s.cfg.Bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		cmd.Process.Kill()
		cmd.Wait()
		return fmt.Errorf("chaos: node %s printed no address line", s.names[i])
	}
	line := strings.TrimSpace(sc.Text())
	addrStr, ok := strings.CutPrefix(line, "udp ")
	if !ok {
		cmd.Process.Kill()
		cmd.Wait()
		return fmt.Errorf("chaos: node %s printed %q, want \"udp <addr>\"", s.names[i], line)
	}
	addr, err := net.ResolveUDPAddr("udp", addrStr)
	if err != nil {
		return err
	}
	go io.Copy(io.Discard, stdout) // nothing else arrives; keep the pipe drained
	s.procs[i] = &proc{cmd: cmd, addr: addr, alive: true}
	if _, err := s.rpc(i, body{Type: "init", NodeID: s.names[i], NodeIDs: s.names}); err != nil {
		return err
	}
	return nil
}

// kill SIGKILLs node i and reaps the process.
func (s *supervisor) kill(i int) error {
	p := s.procs[i]
	if p == nil || !p.alive {
		return nil
	}
	p.alive = false
	if err := p.cmd.Process.Kill(); err != nil {
		return err
	}
	p.cmd.Wait()
	return nil
}

// peerMap is the current full name -> address map of live nodes.
func (s *supervisor) peerMap() map[string]string {
	m := make(map[string]string, len(s.names))
	for i, name := range s.names {
		if s.procs[i] != nil {
			m[name] = s.procs[i].addr.String()
		}
	}
	return m
}

// pushPeers sends the current peer map to every live node.
func (s *supervisor) pushPeers() error {
	m := s.peerMap()
	for i := range s.names {
		if s.procs[i] == nil || !s.procs[i].alive {
			continue
		}
		if _, err := s.rpc(i, body{Type: "peers", Peers: m}); err != nil {
			return err
		}
	}
	return nil
}

// respawn restarts a killed victim with bounded-backoff retries and
// reintegrates it: fresh init, peer maps everywhere (the node came back on a
// new port), and a topology push that triggers journal replay and the rejoin
// protocol.
func (s *supervisor) respawn(i int) error {
	var err error
	for attempt := 0; attempt < 5; attempt++ {
		if err = s.spawn(i); err == nil {
			break
		}
		time.Sleep(s.backoff(attempt))
	}
	if err != nil {
		return fmt.Errorf("chaos: respawn %s: %w", s.names[i], err)
	}
	if err := s.pushPeers(); err != nil {
		return err
	}
	if _, err := s.rpc(i, body{Type: "topology", Topology: s.adj}); err != nil {
		return err
	}
	return nil
}

// Run executes one chaos run and returns its report. Setup failures and
// supervisor RPC failures return an error; invariant violations are collected
// in Report.Violations so a failing run shows all of them.
func Run(cfg Config) (Report, error) {
	var rep Report
	if cfg.Bin == "" || cfg.Dir == "" {
		return rep, fmt.Errorf("chaos: Config.Bin and Config.Dir are required")
	}
	g, err := Topology(cfg)
	if err != nil {
		return rep, err
	}
	plan, err := KillPlan(cfg)
	if err != nil {
		return rep, err
	}
	n := g.N()
	s := &supervisor{
		cfg: cfg, g: g,
		procs: make([]*proc, n),
		rng:   rand.New(rand.NewSource(rt.StreamSeed(cfg.Seed, "chaos.jitter"))),
	}
	for i := 0; i < n; i++ {
		s.names = append(s.names, fmt.Sprintf("n%d", i))
	}
	s.adj = make(map[string][]string, n)
	for v := 0; v < n; v++ {
		g.ForEachNeighbor(v, func(u int) {
			s.adj[s.names[v]] = append(s.adj[s.names[v]], s.names[u])
		})
	}
	s.conn, err = net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return rep, err
	}
	defer s.conn.Close()
	defer func() {
		for i := range s.procs {
			s.kill(i)
		}
	}()

	// Bring the whole fleet up: spawn + init everyone, then peers, then
	// topology (nodes only start beaconing once they have a topology).
	for i := 0; i < n; i++ {
		if err := s.spawn(i); err != nil {
			return rep, err
		}
	}
	if err := s.pushPeers(); err != nil {
		return rep, err
	}
	for i := 0; i < n; i++ {
		if _, err := s.rpc(i, body{Type: "topology", Topology: s.adj}); err != nil {
			return rep, err
		}
	}

	// Build the timeline: kill/restart events from the plan, broadcasts at
	// backbone sources spread over the first 70% of the horizon.
	var events []event
	for v := 0; v < n; v++ {
		for _, iv := range plan.NodeDown[v] {
			events = append(events, event{at: iv.From, kind: evKill, victim: v})
			events = append(events, event{at: iv.To, kind: evRestart, victim: v})
		}
	}
	spacing := 0.7 * cfg.Horizon / float64(cfg.Broadcasts)
	for m := 0; m < cfg.Broadcasts; m++ {
		events = append(events, event{
			at:     float64(m) * spacing,
			kind:   evBroadcast,
			msg:    int64(m + 1),
			source: m % cfg.Backbone,
		})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].at < events[j].at })

	start := time.Now()
	for _, ev := range events {
		due := start.Add(time.Duration(ev.at * float64(cfg.TimeScale)))
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		switch ev.kind {
		case evKill:
			if err := s.kill(ev.victim); err != nil {
				return rep, fmt.Errorf("chaos: kill %s: %w", s.names[ev.victim], err)
			}
			rep.Kills++
		case evRestart:
			if err := s.respawn(ev.victim); err != nil {
				return rep, err
			}
			rep.Restarts++
		case evBroadcast:
			m := ev.msg
			if _, err := s.rpc(ev.source, body{Type: "broadcast", Message: &m}); err != nil {
				return rep, err
			}
			rep.Broadcasts++
		}
	}

	// Settle: give in-flight waves, beacons, and anti-entropy repair a few
	// hello rounds, then verify.
	time.Sleep(time.Duration(4 * cfg.HelloInterval * float64(cfg.TimeScale)))

	// Invariant 1: every broadcast reached every strict-reachable node. The
	// backbone ring never goes down, so the strict set is the whole backbone
	// for every source. Poll each backbone node until it holds all messages
	// or the deadline expires.
	want := make(map[int64]bool, cfg.Broadcasts)
	for m := 1; m <= cfg.Broadcasts; m++ {
		want[int64(m)] = true
	}
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; i < cfg.Backbone; i++ {
		for {
			b, err := s.rpc(i, body{Type: "read"})
			if err != nil {
				return rep, err
			}
			missing := len(want)
			for _, m := range b.Messages {
				if want[m] {
					missing--
				}
			}
			if missing == 0 {
				break
			}
			if time.Now().After(deadline) {
				rep.Violations = append(rep.Violations, fmt.Sprintf(
					"strict node %s is missing %d of %d broadcasts", s.names[i], missing, cfg.Broadcasts))
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		b, err := s.rpc(i, body{Type: "read"})
		if err != nil {
			return rep, err
		}
		got := make(map[int64]bool, len(b.Messages))
		for _, m := range b.Messages {
			got[m] = true
		}
		for m := range want {
			rep.StrictChecked++
			if got[m] {
				rep.StrictDelivered++
			}
		}
	}

	// Node-side counters: prove the chaos actually happened.
	for i := 0; i < n; i++ {
		b, err := s.rpc(i, body{Type: "status"})
		if err != nil {
			return rep, err
		}
		rep.Boots += b.Boots
		rep.Replays += b.Replays
		rep.Rejoins += b.Rejoins
	}

	// Invariant 2: zero duplicate forwards after replay — no journal may
	// hold two forward records for one message.
	for i := 0; i < n; i++ {
		dups, err := duplicateForwards(filepath.Join(cfg.Dir, s.names[i]+".journal"))
		if err != nil {
			return rep, err
		}
		if dups > 0 {
			rep.DuplicateForwards += dups
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"%s journal holds %d duplicated forward records", s.names[i], dups))
		}
	}
	return rep, nil
}

// duplicateForwards counts messages with more than one forward record in a
// journal file (each extra record counts once).
func duplicateForwards(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	defer f.Close()
	seen := make(map[int64]int)
	dups := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var rec struct {
			Op  string `json:"op"`
			Msg int64  `json:"msg"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			break // torn final line
		}
		if rec.Op != "forward" {
			continue
		}
		seen[rec.Msg]++
		if seen[rec.Msg] > 1 {
			dups++
		}
	}
	return dups, nil
}
