package runtime

import (
	"testing"
	"time"

	"adhocbcast/internal/fault"
	"adhocbcast/internal/graph"
	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
)

// testTimeScale keeps live tests fast while leaving enough wall-clock slack
// per time unit for goroutine scheduling noise.
const testTimeScale = 500 * time.Microsecond

func pathGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		if err := g.AddEdge(v, v+1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func mustCluster(t *testing.T, g *graph.Graph, cfg Config) *Cluster {
	t.Helper()
	if cfg.TimeScale == 0 {
		cfg.TimeScale = testTimeScale
	}
	cl, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func mustBroadcast(t *testing.T, cl *Cluster, source int, plan *fault.Plan) sim.Result {
	t.Helper()
	res, err := cl.Broadcast(source, plan)
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, res)
	checkSingleTransmission(t, res)
	return res
}

// checkConservation asserts the live analog of the simulator's accounting
// identity: every transmitted copy is delivered or dropped by exactly one
// cause.
func checkConservation(t *testing.T, res sim.Result) {
	t.Helper()
	got := res.Receipts + res.Lost + res.DroppedNodeDown + res.DroppedLinkDown
	if got != res.Copies {
		t.Errorf("conservation broken: receipts %d + lost %d + nodeDown %d + linkDown %d = %d, copies %d",
			res.Receipts, res.Lost, res.DroppedNodeDown, res.DroppedLinkDown, got, res.Copies)
	}
}

// checkSingleTransmission asserts no node appears twice in the forward list
// (a node transmits at most once, whatever duplicates or races occur).
func checkSingleTransmission(t *testing.T, res sim.Result) {
	t.Helper()
	seen := make(map[int]bool, len(res.Forward))
	for _, v := range res.Forward {
		if seen[v] {
			t.Errorf("node %d transmitted twice: forward list %v", v, res.Forward)
		}
		seen[v] = true
	}
}

func TestLiveFloodingPath(t *testing.T) {
	g := pathGraph(t, 5)
	cl := mustCluster(t, g, Config{Protocol: protocol.Flooding})
	res := mustBroadcast(t, cl, 0, nil)
	if res.Delivered != 5 {
		t.Fatalf("delivered %d, want 5", res.Delivered)
	}
	if len(res.Forward) != 5 {
		t.Fatalf("forward %v, want all 5 nodes (flooding)", res.Forward)
	}
	if res.Reachable != 5 || res.DeliveredReachable != 5 {
		t.Fatalf("reachable %d/%d, want 5/5", res.DeliveredReachable, res.Reachable)
	}
}

// TestLiveClusterReuse runs several broadcasts (distinct sources) through one
// cluster: views are reset correctly between broadcasts.
func TestLiveClusterReuse(t *testing.T) {
	g := pathGraph(t, 6)
	cl := mustCluster(t, g, Config{Protocol: func() sim.Protocol {
		return protocol.Generic(protocol.TimingFirstReceipt)
	}})
	for _, src := range []int{0, 3, 5, 0} {
		res := mustBroadcast(t, cl, src, nil)
		if res.Delivered != 6 {
			t.Fatalf("source %d: delivered %d, want 6", src, res.Delivered)
		}
	}
}

// TestLivePartitionRecovered is the recovery headline: a mid-path link is
// down while the wave passes, the receiver senses the garbled copy, and the
// NACK chain's post-heal retransmission completes delivery.
func TestLivePartitionRecovered(t *testing.T) {
	g := pathGraph(t, 3)
	plan := fault.NewEmptyPlan(3)
	plan.AddLinkDown(1, 2, fault.Interval{From: 0, To: 6})
	cl := mustCluster(t, g, Config{
		Protocol:     protocol.Flooding,
		NACKRecovery: true,
		RetryBudget:  8,
		NACKDelay:    0.25,
		RetryBackoff: 0.5,
		Nemesis:      Nemesis{DetectablePartitions: true},
		// A generous time scale keeps the partition window (6 units) far
		// above timer scheduling noise, so the wave reliably hits it.
		TimeScale: 4 * time.Millisecond,
	})
	res := mustBroadcast(t, cl, 0, plan)
	if res.Delivered != 3 {
		t.Fatalf("delivered %d, want 3 (partition heals at t=6, budget covers it): %+v", res.Delivered, res)
	}
	if res.DroppedLinkDown == 0 {
		t.Fatalf("no link drops recorded, partition never bit: %+v", res)
	}
	if res.NACKs == 0 || res.Retransmits == 0 {
		t.Fatalf("recovery never ran: NACKs %d retransmits %d", res.NACKs, res.Retransmits)
	}
}

// TestLiveChurnSilentDrop: copies arriving at a down node vanish without a
// trace — no garble, no NACK — exactly as in the simulator.
func TestLiveChurnSilentDrop(t *testing.T) {
	g := pathGraph(t, 3)
	plan := fault.NewEmptyPlan(3)
	plan.AddNodeDown(1, fault.Interval{From: 0.5, To: 30})
	cl := mustCluster(t, g, Config{
		Protocol:     protocol.Flooding,
		NACKRecovery: true,
		Nemesis:      Nemesis{DetectablePartitions: true},
	})
	res := mustBroadcast(t, cl, 0, plan)
	if res.Delivered != 1 {
		t.Fatalf("delivered %d, want 1 (node 1 down at arrival, drop is silent)", res.Delivered)
	}
	if res.DroppedNodeDown == 0 {
		t.Fatalf("no node-down drop recorded: %+v", res)
	}
	if res.NACKs != 0 {
		t.Fatalf("node-down drops must be undetectable, got %d NACKs", res.NACKs)
	}
}

// TestLiveCrashReachability: a crashed relay partitions the path; the result
// scores delivery against the surviving component.
func TestLiveCrashReachability(t *testing.T) {
	g := pathGraph(t, 3)
	plan := fault.NewEmptyPlan(3)
	plan.AddNodeDown(1, fault.Interval{From: 0.5, To: fault.Forever})
	cl := mustCluster(t, g, Config{Protocol: protocol.Flooding})
	res := mustBroadcast(t, cl, 0, plan)
	if res.Reachable != 1 {
		t.Fatalf("reachable %d, want 1 (crash cuts the path)", res.Reachable)
	}
	if res.DeliveredReachable != 1 {
		t.Fatalf("delivered reachable %d, want 1 (the source)", res.DeliveredReachable)
	}
}

// TestLiveDropRecovery: random drops with recovery enabled still deliver
// everywhere (the budget far exceeds the expected consecutive-drop run).
func TestLiveDropRecovery(t *testing.T) {
	g := pathGraph(t, 6)
	cl := mustCluster(t, g, Config{
		Protocol: func() sim.Protocol {
			return protocol.Generic(protocol.TimingFirstReceipt)
		},
		NACKRecovery: true,
		RetryBudget:  8,
		NACKDelay:    0.25,
		RetryBackoff: 0.5,
		Seed:         11,
		Nemesis:      Nemesis{DropRate: 0.25},
	})
	res := mustBroadcast(t, cl, 0, nil)
	if res.Delivered != 6 {
		t.Fatalf("delivered %d, want 6 with recovery on: %+v", res.Delivered, res)
	}
	if res.Lost == 0 {
		t.Fatalf("drop nemesis never bit (lost=0); raise DropRate or fix the nemesis")
	}
}

// TestLiveDuplication: duplicated and jittered (reordered) copies never make
// a node transmit twice or deliver short.
func TestLiveDuplication(t *testing.T) {
	g := pathGraph(t, 6)
	cl := mustCluster(t, g, Config{
		Protocol: func() sim.Protocol {
			return protocol.Generic(protocol.TimingBackoffRandom)
		},
		Seed:    5,
		Nemesis: Nemesis{DupRate: 0.6, JitterFrac: 0.5},
	})
	res := mustBroadcast(t, cl, 2, nil)
	if res.Delivered != 6 {
		t.Fatalf("delivered %d, want 6", res.Delivered)
	}
	if res.Copies == res.Receipts && res.Copies == 0 {
		t.Fatalf("no traffic recorded: %+v", res)
	}
	if res.Copies <= len(res.Forward) {
		t.Fatalf("duplication nemesis never bit: %d copies for %d forwards", res.Copies, len(res.Forward))
	}
}

// TestLiveDeadline: a broadcast that cannot quiesce inside the deadline
// aborts with an error instead of hanging.
func TestLiveDeadline(t *testing.T) {
	g := pathGraph(t, 4)
	cl := mustCluster(t, g, Config{
		Protocol: protocol.Flooding,
		Deadline: 0.001,
	})
	if _, err := cl.Broadcast(0, nil); err == nil {
		t.Fatal("expected deadline error, got nil")
	}
}

func TestLiveConfigValidation(t *testing.T) {
	g := pathGraph(t, 2)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nil protocol", Config{}},
		{"bad drop rate", Config{Protocol: protocol.Flooding, Nemesis: Nemesis{DropRate: 1.5}}},
		{"bad dup rate", Config{Protocol: protocol.Flooding, Nemesis: Nemesis{DupRate: -0.1}}},
		{"negative jitter", Config{Protocol: protocol.Flooding, Nemesis: Nemesis{JitterFrac: -1}}},
		{"negative budget", Config{Protocol: protocol.Flooding, RetryBudget: -1}},
		{"fallback without incomplete", Config{Protocol: protocol.Flooding, ConservativeFallback: true}},
	}
	for _, tc := range cases {
		if _, err := New(g, tc.cfg); err == nil {
			t.Errorf("%s: expected config error, got nil", tc.name)
		}
	}
}
