// Package soak is the convergence soak harness for the live runtime: it
// hammers internal/runtime clusters with hundreds of broadcasts under a
// partition + churn + loss + duplication nemesis with the NACK recovery
// layer live, and checks two properties the reproduction claims:
//
//  1. Recovery invariant — with recovery on, every broadcast delivers to
//     100% of the nodes the protocol can legitimately promise. Which nodes
//     those are depends on the fault mix, so the invariant runs in two arms:
//
//     Churn arm (Flooding, churn + partitions + loss): delivery must reach
//     every *strictly reachable* node — up for the whole run and connected
//     to the source through such nodes. Flooding never prunes, so every
//     strict node that receives also forwards; along a strict path each
//     dropped copy is detectable (random losses and, with
//     Nemesis.DetectablePartitions, link-outage drops leave a garble) and
//     the receiver-driven NACK chain recovers it. Churned nodes themselves
//     can miss the packet silently (radio off) and are excluded, exactly as
//     the simulator's reachability-aware scoring excludes crashed
//     components.
//
//     Partition arm (Generic-FR and Generic-FRB, partitions + loss, no
//     churn): delivery must reach *every* node. The paper's generic
//     coverage condition credits all higher-priority view members — visited
//     or not — so a self-pruning node may rely on a relay it never heard;
//     under churn that relay can be down and silently miss the packet,
//     which is why no pruning protocol can promise strict-reachable
//     delivery under churn (the churn arm uses Flooding for exactly this
//     reason). With every node up throughout, however, every drop is
//     detectable and recovered, the network is eventually reliable, and the
//     paper's guarantee that the forward set is a connected dominating set
//     applies: the broadcast reaches the source's whole component.
//
//  2. Executor agreement — on the same fault-free topology the live
//     executor and the discrete-event simulator agree: bit-equal forward
//     sets for timing-independent protocols, and mean delivery and
//     forward-ratio within a small tolerance for receipt-order-sensitive
//     ones (live racing can tie-break differently than the simulator's
//     event order, but must not shift the aggregate).
package soak

import (
	"fmt"
	"math"
	"time"

	"adhocbcast/internal/fault"
	"adhocbcast/internal/geo"
	"adhocbcast/internal/graph"
	"adhocbcast/internal/protocol"
	rt "adhocbcast/internal/runtime"
	"adhocbcast/internal/sim"

	"math/rand"
)

// Config parameterizes a soak run. The zero value is not runnable; use
// DefaultConfig as a base.
type Config struct {
	// N and AvgDegree shape the random unit-disk topology.
	N         int
	AvgDegree float64
	// Seed drives topology generation, fault plans, and nemesis streams.
	Seed int64
	// Broadcasts is the number of invariant-arm broadcasts (under nemesis).
	Broadcasts int
	// CompareBroadcasts is the number of fault-free sim-vs-live comparison
	// broadcasts per compared protocol.
	CompareBroadcasts int
	// TimeScale is the live executor's wall clock per time unit.
	TimeScale time.Duration
	// Tolerance bounds the comparison arm's mean delivery and forward-ratio
	// disagreement (default 0.01 = 1%).
	Tolerance float64
}

// DefaultConfig returns the CI soak shape: a 36-node degree-6 network,
// partition + churn + loss + duplication nemesis, 0.5ms per time unit.
func DefaultConfig(seed int64, broadcasts int) Config {
	return Config{
		N:                 36,
		AvgDegree:         6,
		Seed:              seed,
		Broadcasts:        broadcasts,
		CompareBroadcasts: 40,
		TimeScale:         500 * time.Microsecond,
		Tolerance:         0.01,
	}
}

// Report is the outcome of one soak run.
type Report struct {
	// Broadcasts is the number of invariant-arm broadcasts completed.
	Broadcasts int
	// Violations describes every invariant violation (empty on success).
	Violations []string
	// StrictReachable and DeliveredStrict accumulate the invariant
	// denominator and numerator over all broadcasts.
	StrictReachable int
	DeliveredStrict int
	// Delivered and Reachable accumulate the plain (crash-aware) scoring,
	// for context: churned nodes legitimately miss broadcasts.
	Delivered int
	Reachable int
	// Nemesis activity accumulated over the run, to prove the adversary
	// actually bit: fault drops, random losses, recovery traffic.
	DroppedLinkDown int
	DroppedNodeDown int
	Lost            int
	NACKs           int
	Retransmits     int

	// Comparison-arm aggregates (fault-free, same topology).
	SimMeanDelivery   float64
	LiveMeanDelivery  float64
	SimMeanForward    float64
	LiveMeanForward   float64
	StaticSetMatches  int
	StaticSetCompared int
}

// DeliveryInvariantRatio returns delivered-strict over strict-reachable
// (1.0 means the recovery invariant held everywhere).
func (r Report) DeliveryInvariantRatio() float64 {
	if r.StrictReachable == 0 {
		return 0
	}
	return float64(r.DeliveredStrict) / float64(r.StrictReachable)
}

// strictReachable marks the nodes that have no down interval at all and are
// connected to source through nodes that have none: the set the recovery
// invariant promises 100% delivery to.
func strictReachable(g *graph.Graph, plan *fault.Plan, source int) []bool {
	n := g.N()
	up := make([]bool, n)
	for v := 0; v < n; v++ {
		up[v] = len(plan.NodeDown[v]) == 0
	}
	reach := make([]bool, n)
	if !up[source] {
		return reach
	}
	reach[source] = true
	queue := []int{source}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		g.ForEachNeighbor(x, func(y int) {
			if up[y] && !reach[y] {
				reach[y] = true
				queue = append(queue, y)
			}
		})
	}
	return reach
}

// Run executes the soak and returns its report. It returns an error only
// for setup failures (topology generation, invalid configs) and quiesce
// timeouts; invariant violations are reported in Report.Violations so the
// caller sees all of them at once.
func Run(cfg Config) (Report, error) {
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 0.01
	}
	var rep Report
	net, err := geo.Generate(geo.Config{N: cfg.N, AvgDegree: cfg.AvgDegree, Seed: cfg.Seed},
		rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return rep, fmt.Errorf("soak: topology: %w", err)
	}
	g := net.G

	// --- Invariant arms (see the package doc): the churn arm floods under
	// churn + partitions + loss and must cover every strict-reachable node;
	// the partition arm runs the pruning protocols with every node up and
	// must cover everything. Budget and backoff are sized so a recovery
	// chain comfortably outlives the longest outage window: attempts
	// continue past the window's end with several budget left, each failing
	// only with the 2% loss rate.
	newCluster := func(mk func() sim.Protocol, streamTag int64) (*rt.Cluster, error) {
		return rt.New(g, rt.Config{
			Protocol:     mk,
			Seed:         cfg.Seed + streamTag,
			TimeScale:    cfg.TimeScale,
			NACKRecovery: true,
			RetryBudget:  8,
			NACKDelay:    0.25,
			RetryBackoff: 0.5,
			Deadline:     600,
			Nemesis: rt.Nemesis{
				DropRate:             0.02,
				DupRate:              0.10,
				JitterFrac:           0.25,
				DetectablePartitions: true,
			},
		})
	}
	churnParams := func(source int) fault.Params {
		return fault.Params{
			ChurnFraction: 0.15,
			ChurnWindow:   8,
			ChurnDuration: 4,
			LinkFraction:  0.20,
			LinkWindow:    8,
			LinkDuration:  4,
			Protect:       []int{source},
		}
	}
	partitionParams := func(source int) fault.Params {
		return fault.Params{
			LinkFraction: 0.25,
			LinkWindow:   8,
			LinkDuration: 4,
			Protect:      []int{source},
		}
	}
	arms := []struct {
		name   string
		make   func() sim.Protocol
		params func(source int) fault.Params
	}{
		{"Flooding/churn", protocol.Flooding, churnParams},
		{"Generic-FR/partition", func() sim.Protocol { return protocol.Generic(protocol.TimingFirstReceipt) }, partitionParams},
		{"Generic-FRB/partition", func() sim.Protocol { return protocol.Generic(protocol.TimingBackoffRandom) }, partitionParams},
	}
	clusters := make([]*rt.Cluster, len(arms))
	for i, a := range arms {
		cl, err := newCluster(a.make, int64(i))
		if err != nil {
			return rep, fmt.Errorf("soak: cluster %s: %w", a.name, err)
		}
		clusters[i] = cl
	}
	for i := 0; i < cfg.Broadcasts; i++ {
		source := i % cfg.N
		// Alternate churn-arm and partition-arm broadcasts so both halves of
		// the invariant get half the budget whatever the total count.
		var ai int
		if i%2 == 0 {
			ai = 0
		} else {
			ai = 1 + (i/2)%2
		}
		arm := arms[ai]
		planSeed := cfg.Seed + int64(1000+i)
		plan, err := fault.NewPlan(g, arm.params(source), planSeed)
		if err != nil {
			return rep, fmt.Errorf("soak: plan %d: %w", i, err)
		}
		res, err := clusters[ai].Broadcast(source, plan)
		if err != nil {
			return rep, fmt.Errorf("soak: broadcast %d (%s, source %d): %w",
				i, arm.name, source, err)
		}
		rep.Broadcasts++
		rep.Delivered += res.Delivered
		rep.Reachable += res.Reachable
		rep.DroppedLinkDown += res.DroppedLinkDown
		rep.DroppedNodeDown += res.DroppedNodeDown
		rep.Lost += res.Lost
		rep.NACKs += res.NACKs
		rep.Retransmits += res.Retransmits

		// In the partition arm no node is ever down, so the strict set is
		// the whole component and this scores "every node".
		strict := strictReachable(g, plan, source)
		deliveredSet := clusters[ai].DeliveredNodes()
		for v := 0; v < cfg.N; v++ {
			if !strict[v] {
				continue
			}
			rep.StrictReachable++
			if deliveredSet[v] {
				rep.DeliveredStrict++
			} else {
				rep.Violations = append(rep.Violations, fmt.Sprintf(
					"broadcast %d (%s, source %d): strict-reachable node %d undelivered (plan seed %d)",
					i, arm.name, source, v, planSeed))
			}
		}
	}

	// --- Comparison arm: fault-free, nemesis off. Static forward sets must
	// match bit-for-bit; Generic-FR aggregates must agree within tolerance.
	if cfg.CompareBroadcasts > 0 {
		if err := compare(&rep, g, cfg); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

func compare(rep *Report, g *graph.Graph, cfg Config) error {
	staticCl, err := rt.New(g, rt.Config{
		Protocol:  func() sim.Protocol { return protocol.Generic(protocol.TimingStatic) },
		Seed:      cfg.Seed,
		TimeScale: cfg.TimeScale,
	})
	if err != nil {
		return fmt.Errorf("soak: compare cluster: %w", err)
	}
	frCl, err := rt.New(g, rt.Config{
		Protocol:  func() sim.Protocol { return protocol.Generic(protocol.TimingFirstReceipt) },
		Seed:      cfg.Seed,
		TimeScale: cfg.TimeScale,
	})
	if err != nil {
		return fmt.Errorf("soak: compare cluster: %w", err)
	}
	var simDel, liveDel, simFwd, liveFwd float64
	for i := 0; i < cfg.CompareBroadcasts; i++ {
		source := (i * 7) % cfg.N

		// Timing-independent protocol: exact forward-set equality.
		simStatic, err := sim.Run(g, source, protocol.Generic(protocol.TimingStatic), sim.Config{Seed: cfg.Seed})
		if err != nil {
			return fmt.Errorf("soak: sim static: %w", err)
		}
		liveStatic, err := staticCl.Broadcast(source, nil)
		if err != nil {
			return fmt.Errorf("soak: live static: %w", err)
		}
		rep.StaticSetCompared++
		if sameSet(simStatic.Forward, liveStatic.Forward) {
			rep.StaticSetMatches++
		} else {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"compare %d: static forward sets differ: sim %v, live %v",
				i, simStatic.Forward, liveStatic.Forward))
		}

		// Receipt-order-sensitive protocol: aggregate agreement.
		simFR, err := sim.Run(g, source, protocol.Generic(protocol.TimingFirstReceipt), sim.Config{Seed: cfg.Seed})
		if err != nil {
			return fmt.Errorf("soak: sim FR: %w", err)
		}
		liveFR, err := frCl.Broadcast(source, nil)
		if err != nil {
			return fmt.Errorf("soak: live FR: %w", err)
		}
		simDel += simFR.DeliveryRatio()
		liveDel += liveFR.DeliveryRatio()
		simFwd += float64(len(simFR.Forward)) / float64(cfg.N)
		liveFwd += float64(len(liveFR.Forward)) / float64(cfg.N)
	}
	k := float64(cfg.CompareBroadcasts)
	rep.SimMeanDelivery = simDel / k
	rep.LiveMeanDelivery = liveDel / k
	rep.SimMeanForward = simFwd / k
	rep.LiveMeanForward = liveFwd / k
	if d := math.Abs(rep.SimMeanDelivery - rep.LiveMeanDelivery); d > cfg.Tolerance {
		rep.Violations = append(rep.Violations, fmt.Sprintf(
			"mean delivery disagrees by %.4f (> %.4f): sim %.4f, live %.4f",
			d, cfg.Tolerance, rep.SimMeanDelivery, rep.LiveMeanDelivery))
	}
	if d := math.Abs(rep.SimMeanForward - rep.LiveMeanForward); d > cfg.Tolerance {
		rep.Violations = append(rep.Violations, fmt.Sprintf(
			"mean forward ratio disagrees by %.4f (> %.4f): sim %.4f, live %.4f",
			d, cfg.Tolerance, rep.SimMeanForward, rep.LiveMeanForward))
	}
	return nil
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	in := make(map[int]bool, len(a))
	for _, v := range a {
		in[v] = true
	}
	for _, v := range b {
		if !in[v] {
			return false
		}
	}
	return true
}
