package soak

import "testing"

// TestSoakPartitionChurn is the acceptance soak: hundreds of live broadcasts
// under a partition + churn + loss + duplication nemesis with NACK recovery
// on, asserting 100% delivery to strictly reachable nodes, plus the
// fault-free sim-vs-live agreement check on the same topology. `go test
// -short` runs a reduced broadcast count (the CI soak-smoke shape); the full
// run covers the acceptance target of at least 200.
func TestSoakPartitionChurn(t *testing.T) {
	broadcasts := 200
	cfg := DefaultConfig(42, broadcasts)
	if testing.Short() {
		cfg.Broadcasts = 40
		cfg.CompareBroadcasts = 12
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Error(v)
	}
	if rep.Broadcasts != cfg.Broadcasts {
		t.Errorf("completed %d broadcasts, want %d", rep.Broadcasts, cfg.Broadcasts)
	}
	if got := rep.DeliveryInvariantRatio(); got != 1.0 {
		t.Errorf("strict-reachable delivery %.4f (%d/%d), want 1.0",
			got, rep.DeliveredStrict, rep.StrictReachable)
	}
	// The adversary must actually have bitten, or the invariant is vacuous.
	if rep.DroppedLinkDown == 0 {
		t.Error("no link-down drops over the whole soak: partitions never hit traffic")
	}
	if rep.DroppedNodeDown == 0 {
		t.Error("no node-down drops over the whole soak: churn never hit traffic")
	}
	if rep.Lost == 0 {
		t.Error("no random losses over the whole soak")
	}
	if rep.NACKs == 0 || rep.Retransmits == 0 {
		t.Errorf("recovery never ran: %d NACKs, %d retransmits", rep.NACKs, rep.Retransmits)
	}
	// Churned nodes legitimately miss broadcasts: plain delivery should sit
	// below the strict invariant, proving the strict set is a real subset.
	if rep.Delivered == rep.Reachable && rep.DroppedNodeDown > 0 {
		t.Log("note: every reachable node delivered despite churn (unusually gentle run)")
	}
	if rep.StaticSetCompared != rep.StaticSetMatches {
		t.Errorf("static forward sets matched %d/%d", rep.StaticSetMatches, rep.StaticSetCompared)
	}
	t.Logf("soak: %d broadcasts, strict %d/%d, plain %d/%d, linkDrops %d, nodeDrops %d, lost %d, NACKs %d, retransmits %d",
		rep.Broadcasts, rep.DeliveredStrict, rep.StrictReachable,
		rep.Delivered, rep.Reachable,
		rep.DroppedLinkDown, rep.DroppedNodeDown, rep.Lost, rep.NACKs, rep.Retransmits)
	t.Logf("compare: delivery sim %.4f live %.4f, forward sim %.4f live %.4f, static sets %d/%d",
		rep.SimMeanDelivery, rep.LiveMeanDelivery,
		rep.SimMeanForward, rep.LiveMeanForward,
		rep.StaticSetMatches, rep.StaticSetCompared)
}
