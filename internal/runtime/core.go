package runtime

import (
	"fmt"
	"math/rand"

	"adhocbcast/internal/core"
	"adhocbcast/internal/graph"
	"adhocbcast/internal/sim"
	"adhocbcast/internal/view"
)

// Transport is everything a node Core needs from its executor: send packets
// and recovery traffic, schedule callbacks on the node's own execution
// context, and account protocol events. The in-process Cluster implements it
// with channel radios and real timers; cmd/bcastnode implements it over
// stdin/stdout or UDP. All methods are called from the node's own execution
// context (its goroutine / handler loop) only.
type Transport interface {
	// Broadcast radios pkt to all true neighbors and records the forward.
	Broadcast(pkt sim.Packet)
	// Unicast sends one recovery retransmission copy to a single neighbor.
	Unicast(to int, pkt sim.Packet, attempt int)
	// NACK sends a recovery request for retransmission `attempt` to a
	// neighbor over the (reliable, but down-node-dropping) control channel.
	NACK(to int, attempt int)
	// AfterTimer schedules fn as a protocol decision timer after d time
	// units on the node's execution context. A timer whose node is down
	// when it fires is cancelled (and counted), mirroring the simulator.
	AfterTimer(d float64, fn func())
	// AfterRecovery schedules fn as recovery-layer bookkeeping after d time
	// units on the node's execution context; it is silently skipped if the
	// node is down when it fires.
	AfterRecovery(d float64, fn func())
	// Down reports whether the local node is down right now under the
	// fault plan.
	Down() bool
	// Now returns the current time in time units.
	Now() float64
	// NoteDeliver accounts one delivered copy (first = first copy at this
	// node).
	NoteDeliver(first bool, at float64)
	// NoteSource accounts the source holding the packet from the start: a
	// latency-0 first delivery that is not a packet copy.
	NoteSource()
	// NoteNACK accounts one recovery request issued by this node.
	NoteNACK()
	// NoteNonForward accounts this node finalizing non-forward status.
	NoteNonForward()
}

// CoreConfig carries the per-node slice of Config a Core needs.
type CoreConfig struct {
	N                    int
	PiggybackDepth       int
	BackoffWindow        float64
	TransmitDelay        float64
	NACKRecovery         bool
	RetryBudget          int
	NACKDelay            float64
	RetryBackoff         float64
	JitterFrac           float64
	ConservativeFallback bool
	ViewIncomplete       func(v int) bool
	// StaleView, when non-nil, reports whether the node's dynamic-hello view
	// is stale at time now (some view-neighbor past its beacon expiry; see
	// hello.Dynamic). Consulted by ConservativeHold alongside ViewIncomplete.
	// Must be pure and safe for concurrent calls.
	StaleView func(v int, now float64) bool
}

// Core is one live node: it implements sim.Runtime scoped to a single node
// id, hosts that node's protocol instance and bookkeeping state, and drives
// all I/O through a Transport. Every method must be called from the node's
// own execution context; the Core itself is free of locks because the
// Transport serializes all entry points (packets, timers, recovery) onto
// that context.
type Core struct {
	id      int
	cfg     CoreConfig
	proto   sim.Protocol
	st      *sim.NodeState
	viewG   *graph.Graph
	out     Transport
	backoff *rand.Rand
	eval    *core.Evaluator
}

// NewCore builds the live runtime core of node id. lv is the node's local
// view (freshly built or status-reset), viewG the topology it was built
// from, and backoffSeed the seed of the node's private backoff stream.
func NewCore(id int, proto sim.Protocol, lv *view.Local, viewG *graph.Graph,
	cfg CoreConfig, out Transport, backoffSeed int64) *Core {
	return &Core{
		id:    id,
		cfg:   cfg,
		proto: proto,
		st: &sim.NodeState{
			ID:        id,
			View:      lv,
			FirstFrom: -1,
		},
		viewG:   viewG,
		out:     out,
		backoff: rand.New(rand.NewSource(backoffSeed)),
		eval:    core.NewEvaluator(cfg.N),
	}
}

// ID returns the node id this core hosts.
func (c *Core) ID() int { return c.id }

// Init runs the protocol's per-run initialization (static protocols compute
// their own forward status here). The executor calls it once before any
// traffic, from any goroutine, as long as no handler runs concurrently.
func (c *Core) Init() { c.proto.Init(c) }

// Delivered reports whether this node has received the packet.
func (c *Core) Delivered() bool { return c.st.Received }

// Forwarded reports whether this node has transmitted.
func (c *Core) Forwarded() bool { return c.st.Sent }

// Start makes this node the broadcast source: it holds the packet from the
// start (reported as a t=0 self-delivery, as in the simulator) and runs the
// protocol's source handling.
func (c *Core) Start() {
	c.st.Received = true
	c.st.FirstPacket = sim.Packet{Source: c.id}
	c.st.LastPacket = c.st.FirstPacket
	c.out.NoteSource()
	c.proto.Start(c, c.id)
}

// HandlePacket delivers one packet copy: shared bookkeeping (receipt record,
// view merge) followed by the protocol's OnReceive, in the simulator's
// order.
func (c *Core) HandlePacket(from int, pkt sim.Packet, at float64) {
	r := sim.Receipt{From: from, At: at, Packet: pkt}
	first := c.st.RecordReceipt(r)
	c.out.NoteDeliver(first, at)
	sim.MergeReceipt(c.st, c.id, r)
	c.proto.OnReceive(c, c.id, r)
}

// HandleGarble reacts to a detectable drop: the node overheard a copy
// (original transmission attempt 0, or recovery retransmission attempt k)
// it could not decode. With recovery enabled and the packet still missing it
// NACKs the sender for the next attempt, and — beyond the simulator —
// schedules a re-request for the case where the granted retransmission
// itself vanishes silently (sender down, copy dropped at a down link with
// silent drops): the recovery chain is receiver-driven, so it survives a
// sender that is down when the request arrives.
func (c *Core) HandleGarble(from int, attempt int) {
	if !c.cfg.NACKRecovery || c.st.Received {
		return
	}
	next := attempt + 1
	if next > c.cfg.RetryBudget {
		return
	}
	c.out.NoteNACK()
	c.out.AfterRecovery(c.cfg.NACKDelay, func() {
		if !c.st.Received {
			c.out.NACK(from, next)
		}
	})
	// Expected round trip of the granted retransmission: request transit,
	// sender backoff, copy transit with jitter, plus one transmit delay of
	// slack for scheduling noise.
	wait := c.cfg.NACKDelay + sim.RetryBackoffDelay(c.cfg.RetryBackoff, next) +
		c.cfg.TransmitDelay*(2+c.cfg.JitterFrac)
	c.out.AfterRecovery(wait, func() {
		if !c.st.Received {
			c.HandleGarble(from, next)
		}
	})
}

// HandleNACK processes a recovery request arriving at this node (the
// original sender): the retransmission is scheduled after the simulator's
// bounded exponential backoff. A node that never transmitted has nothing to
// retransmit.
func (c *Core) HandleNACK(peer int, attempt int) {
	if !c.st.Sent {
		return
	}
	delay := sim.RetryBackoffDelay(c.cfg.RetryBackoff, attempt)
	c.out.AfterRecovery(delay, func() {
		c.out.Unicast(peer, c.st.SentPacket(), attempt)
	})
}

// --- sim.Runtime ---

var _ sim.Runtime = (*Core)(nil)

// N returns the network size.
func (c *Core) N() int { return c.cfg.N }

// ForEachLocalNode implements sim.Runtime: a live runtime hosts exactly one
// node.
func (c *Core) ForEachLocalNode(yield func(v int)) { yield(c.id) }

// State returns this node's state. Asking a live runtime for another node's
// state is a protocol bug — it would violate the locality property the
// paper's distributed scheme is built on — and panics loudly.
func (c *Core) State(v int) *sim.NodeState {
	if v != c.id {
		panic(fmt.Sprintf("runtime: node %d asked for state of node %d (protocol violates locality)", c.id, v))
	}
	return c.st
}

// SetTimer schedules an OnTimer callback after delay time units.
func (c *Core) SetTimer(v int, delay float64) {
	c.out.AfterTimer(delay, func() { c.proto.OnTimer(c, c.id) })
}

// MarkNonForward finalizes a non-forward decision.
func (c *Core) MarkNonForward(v int) {
	if !c.st.NonForward {
		c.out.NoteNonForward()
	}
	c.st.NonForward = true
}

// Transmit forwards the broadcast packet with the given designated set.
func (c *Core) Transmit(v int, designated []int) {
	c.TransmitExtra(v, designated, nil)
}

// TransmitExtra is Transmit with an extra payload. As in the simulator a
// node transmits at most once and a down node stays silent.
func (c *Core) TransmitExtra(v int, designated, extra []int) {
	if c.st.Sent || c.out.Down() {
		return
	}
	c.st.Sent = true
	c.st.View.MarkVisited(c.id)
	pkt := c.st.BuildForwardPacket(designated, extra, c.cfg.PiggybackDepth)
	c.out.Broadcast(pkt)
}

// RandomBackoff draws from this node's private backoff stream.
func (c *Core) RandomBackoff() float64 {
	return c.backoff.Float64() * c.cfg.BackoffWindow
}

// DegreeBackoff returns the FRBD backoff, computed from the node's view
// topology exactly as the simulator does.
func (c *Core) DegreeBackoff(v int) float64 {
	d := c.viewG.Degree(c.id)
	if d == 0 {
		return c.cfg.BackoffWindow
	}
	return c.cfg.BackoffWindow * c.viewG.AverageDegree() / float64(d)
}

// ConservativeHold reports whether this node must refuse non-forward status:
// its view is provably incomplete (ViewIncomplete) or provably stale
// (StaleView under dynamic hello maintenance).
func (c *Core) ConservativeHold(v int) bool {
	if !c.cfg.ConservativeFallback {
		return false
	}
	if c.cfg.ViewIncomplete != nil && c.cfg.ViewIncomplete(c.id) {
		return true
	}
	return c.cfg.StaleView != nil && c.cfg.StaleView(c.id, c.out.Now())
}

// RestoreSent reinstates a previously transmitted forward from durable
// state: the node counts as having sent pkt (so replayed NACK obligations
// can retransmit it and a replayed wave never forwards twice) without
// putting a fresh copy on the air. Executors use it when replaying a
// write-ahead journal after a crash.
func (c *Core) RestoreSent(pkt sim.Packet) {
	c.st.Sent = true
	c.st.View.MarkVisited(c.id)
	c.st.RestoreSentPacket(pkt)
}

// TakePreparedCovered implements sim.Runtime: live runtimes never precompute
// coverage verdicts.
func (c *Core) TakePreparedCovered(v int) (covered, ok bool) { return false, false }

// Evaluator returns this node's private coverage evaluator.
func (c *Core) Evaluator() *core.Evaluator { return c.eval }

// Now returns the current time in time units.
func (c *Core) Now() float64 { return c.out.Now() }
