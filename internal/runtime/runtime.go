// Package runtime is the live executor: it runs the same protocol
// implementations the discrete-event simulator runs (internal/sim, via the
// sim.Runtime interface), but as a real concurrent system — every node is a
// goroutine with its own per-node runtime, packets travel over channel "radio"
// links after real wall-clock delays, and decision timers are real timers.
// Nothing is globally ordered: deliveries race, timers interleave, and the
// race detector watches every run.
//
// A seed-deterministic nemesis layer mirrors the simulator's unreliable-MAC
// and fault models: per-copy drop and duplication, per-copy delivery jitter
// (which reorders copies), and an internal/fault plan for link partitions and
// node churn/crash evaluated against the live clock. The NACK retry/backoff
// recovery layer runs live, extended with receiver-driven re-requests so a
// recovery chain survives a sender that is temporarily down — the property
// the soak harness (internal/runtime/soak) verifies under partition + churn.
//
// Time is measured in the simulator's units: Config.TimeScale fixes the
// wall-clock duration of one unit, and all Config delays (TransmitDelay,
// BackoffWindow, fault-plan intervals, ...) are in units, so one
// configuration describes both a simulated and a live run.
package runtime

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"adhocbcast/internal/hello"
	"adhocbcast/internal/obsv"
	"adhocbcast/internal/sim"
	"adhocbcast/internal/view"
)

// Nemesis configures the adversarial message layer of a live run. The zero
// value is a perfectly reliable network (modulo the fault plan passed to
// Broadcast).
type Nemesis struct {
	// DropRate is an independent per-copy drop probability in [0, 1),
	// mirroring sim.Config.LossRate. With NACK recovery enabled a dropped
	// copy leaves a detectable garble at the receiver (it overheard a frame
	// it could not decode), exactly as in the simulator.
	DropRate float64
	// DupRate is an independent per-copy duplication probability in [0, 1):
	// the receiver gets a second copy after an extra delay, exercising
	// duplicate suppression under reordering.
	DupRate float64
	// JitterFrac adds a uniform extra delivery delay in
	// [0, JitterFrac*TransmitDelay) per copy. Unlike the simulator's
	// TxJitter (one draw per transmission), live jitter is per copy, so
	// copies of one transmission arrive at different times and may reorder
	// against other traffic.
	JitterFrac float64
	// DetectablePartitions makes a copy dropped by a down *link* leave a
	// detectable garble at the receiver (carrier sensed, frame undecodable),
	// so the NACK recovery layer can repair partition-era losses once the
	// link heals. The simulator treats link drops as silent; the soak
	// harness's 100%-delivery invariant needs them detectable. Copies
	// dropped because the *receiver* is down are always silent (its radio
	// is off).
	DetectablePartitions bool
}

func (nm Nemesis) validate() error {
	if nm.DropRate < 0 || nm.DropRate >= 1 || math.IsNaN(nm.DropRate) {
		return fmt.Errorf("runtime: Nemesis.DropRate %v outside [0,1)", nm.DropRate)
	}
	if nm.DupRate < 0 || nm.DupRate >= 1 || math.IsNaN(nm.DupRate) {
		return fmt.Errorf("runtime: Nemesis.DupRate %v outside [0,1)", nm.DupRate)
	}
	if nm.JitterFrac < 0 || math.IsNaN(nm.JitterFrac) {
		return fmt.Errorf("runtime: negative Nemesis.JitterFrac %v", nm.JitterFrac)
	}
	return nil
}

// Config holds the parameters of a live cluster. The protocol and view
// parameters deliberately mirror sim.Config so one experiment description
// drives both executors.
type Config struct {
	// Protocol builds one protocol instance. The live executor calls it once
	// per node per broadcast — each node runs its own instance, which the
	// sim.Runtime locality contract makes equivalent to the simulator
	// driving a single instance for the whole network.
	Protocol func() sim.Protocol
	// Hops is the k of the k-hop local views; 0 or negative selects the
	// global view.
	Hops int
	// Metric selects the priority metric (default view.MetricID).
	Metric view.Metric
	// PiggybackDepth is h, the packet trail depth. Default 2; negative
	// disables piggybacking.
	PiggybackDepth int
	// BackoffWindow is the maximum backoff delay in time units (default 8).
	BackoffWindow float64
	// TransmitDelay is the nominal propagation delay of a copy in time
	// units (default 1).
	TransmitDelay float64
	// TimeScale is the wall-clock duration of one time unit (default 2ms).
	// Smaller scales run faster but leave less slack for goroutine
	// scheduling noise relative to protocol timing.
	TimeScale time.Duration
	// Seed drives every random stream of the cluster: per-directed-link
	// nemesis draws and per-node backoff draws, all derived per broadcast,
	// per purpose. The same seed and topology give the same nemesis
	// schedule (modulo goroutine interleaving of the deliveries it acts on).
	Seed int64
	// Nemesis is the adversarial message layer.
	Nemesis Nemesis

	// NACKRecovery enables the live recovery layer: receivers NACK
	// detectable drops, senders retransmit unicast with the simulator's
	// bounded exponential backoff, and — beyond the simulator — receivers
	// re-request when an expected retransmission never arrives, so a chain
	// survives a temporarily down sender. RetryBudget, NACKDelay and
	// RetryBackoff have the simulator's defaults (3, 0.5, 1).
	NACKRecovery bool
	// RetryBudget caps recovery retransmissions per (sender, receiver) link.
	RetryBudget int
	// NACKDelay is the detection-plus-control-transit delay of a request.
	NACKDelay float64
	// RetryBackoff is the base retry delay of the exponential backoff.
	RetryBackoff float64

	// NodeViews, when non-nil, gives every node a private view topology
	// (see sim.Config.NodeViews). Nil means views match the actual graph.
	NodeViews sim.ViewProvider
	// ViewIncomplete reports whether node v can prove its view incomplete
	// (see sim.Config.ViewIncomplete). Called from node goroutines: must be
	// safe for concurrent use.
	ViewIncomplete func(v int) bool
	// ConservativeFallback makes provably incomplete nodes refuse
	// non-forward status (requires ViewIncomplete or DynamicHello).
	ConservativeFallback bool
	// DynamicHello, when non-nil, enables periodic hello maintenance (see
	// sim.Config.DynamicHello): each node tracks per-view-neighbor staleness
	// clocks against the live run clock, beacon loss follows the pure
	// (Seed, recv, from, round) hash of hello.Dynamic.Received, and with
	// ConservativeFallback a stale-view node holds its forwarding until the
	// view is fresh again. The loss schedule being a pure function is what
	// makes a seed-matched simulator run agree on every stale hold.
	DynamicHello *hello.Dynamic

	// Deadline aborts a broadcast that has not quiesced after this many
	// time units (default 1000) — a live run has no event queue to drain,
	// so a lost wakeup would otherwise hang forever.
	Deadline float64
	// Metrics, when non-nil, is populated with each broadcast's counters and
	// histograms exactly like sim.Config.Metrics (Reset at broadcast start).
	Metrics *obsv.RunRecord
}

func (c Config) withDefaults() Config {
	if c.Metric == 0 {
		c.Metric = view.MetricID
	}
	if c.PiggybackDepth == 0 {
		c.PiggybackDepth = 2
	}
	if c.PiggybackDepth < 0 {
		c.PiggybackDepth = 0
	}
	if c.BackoffWindow <= 0 {
		c.BackoffWindow = 8
	}
	if c.TransmitDelay <= 0 {
		c.TransmitDelay = 1
	}
	if c.TimeScale <= 0 {
		c.TimeScale = 2 * time.Millisecond
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 3
	}
	if c.NACKDelay == 0 {
		c.NACKDelay = 0.5
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 1
	}
	if c.Deadline <= 0 {
		c.Deadline = 1000
	}
	if c.DynamicHello != nil {
		d := c.DynamicHello.WithDefaults()
		c.DynamicHello = &d
	}
	return c
}

func (c Config) validate() error {
	if c.Protocol == nil {
		return fmt.Errorf("runtime: Config.Protocol factory is nil")
	}
	if err := c.Nemesis.validate(); err != nil {
		return err
	}
	if c.RetryBudget < 0 {
		return fmt.Errorf("runtime: negative RetryBudget %d", c.RetryBudget)
	}
	if c.NACKDelay < 0 || math.IsNaN(c.NACKDelay) {
		return fmt.Errorf("runtime: negative NACKDelay %v", c.NACKDelay)
	}
	if c.RetryBackoff < 0 || math.IsNaN(c.RetryBackoff) {
		return fmt.Errorf("runtime: negative RetryBackoff %v", c.RetryBackoff)
	}
	if c.ConservativeFallback && c.ViewIncomplete == nil && c.DynamicHello == nil {
		return fmt.Errorf("runtime: ConservativeFallback requires ViewIncomplete or DynamicHello")
	}
	if c.DynamicHello != nil {
		if err := c.DynamicHello.WithDefaults().Validate(); err != nil {
			return fmt.Errorf("runtime: invalid DynamicHello: %w", err)
		}
	}
	return nil
}

// streamSeed derives an independent RNG stream seed from the cluster seed, a
// purpose label, and integer qualifiers (broadcast index, node ids). It is
// the live analog of the simulator's per-purpose stream derivation.
// StreamSeed is streamSeed for Transport implementations outside this
// package (cmd/bcastnode) that need the same per-purpose deterministic
// stream derivation for their nodes' private RNGs.
func StreamSeed(seed int64, purpose string, parts ...int) int64 {
	return streamSeed(seed, purpose, parts...)
}

func streamSeed(seed int64, purpose string, parts ...int) int64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(seed))
	h.Write(buf[:])
	h.Write([]byte(purpose))
	for _, p := range parts {
		binary.LittleEndian.PutUint64(buf[:], uint64(p))
		h.Write(buf[:])
	}
	return int64(h.Sum64() & (1<<62 - 1))
}
