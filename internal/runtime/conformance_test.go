package runtime

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"adhocbcast/internal/geo"
	"adhocbcast/internal/graph"
	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
)

// The conformance suite runs the same protocols through both executors —
// the discrete-event simulator and the live cluster — over a table of
// topologies, and checks the executor-independent properties of the
// sim.Runtime contract: delivery sets match, nodes transmit at most once
// (duplicate suppression), accounting is conserved, and for protocols whose
// forward decisions are timing-independent the exact forward sets match.
// Backoff-based and receipt-order-sensitive protocols can legitimately pick
// different (equally valid) forward sets under live racing, so for those
// only delivery is compared.

type confTopology struct {
	name   string
	g      *graph.Graph
	source int
	// component is the size of the source's connected component (what full
	// delivery means on this topology).
	component int
}

func confTopologies(t *testing.T) []confTopology {
	t.Helper()
	path := pathGraph(t, 6)

	star := graph.New(7)
	for v := 0; v < 7; v++ {
		if v != 3 {
			if err := star.AddEdge(3, v); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Two triangles joined by a bridge: pruning has real choices here.
	bridge := graph.New(6)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}, {3, 5}, {4, 5}} {
		if err := bridge.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}

	// Disconnected: delivery stops at the component boundary in both
	// executors.
	split := graph.New(5)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {3, 4}} {
		if err := split.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}

	udg, err := geo.Generate(geo.Config{N: 24, AvgDegree: 5}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}

	return []confTopology{
		{"path6", path, 0, 6},
		{"star7", star, 1, 7},
		{"bridge", bridge, 0, 6},
		{"split", split, 0, 3},
		{"udg24", udg.G, 0, 24},
	}
}

type confProtocol struct {
	name string
	make func() sim.Protocol
	// deterministic marks protocols whose forward set is independent of
	// receipt timing and backoff draws, so both executors must produce the
	// identical set.
	deterministic bool
}

func confProtocols() []confProtocol {
	return []confProtocol{
		{"Flooding", protocol.Flooding, true},
		{"Generic-Static", func() sim.Protocol { return protocol.Generic(protocol.TimingStatic) }, true},
		{"Generic-FR", func() sim.Protocol { return protocol.Generic(protocol.TimingFirstReceipt) }, false},
		{"Generic-FRB", func() sim.Protocol { return protocol.Generic(protocol.TimingBackoffRandom) }, false},
		{"Generic-FRBD", func() sim.Protocol { return protocol.Generic(protocol.TimingBackoffDegree) }, false},
		{"GenericStrong-Static", func() sim.Protocol { return protocol.GenericStrong(protocol.TimingStatic) }, true},
		{"MPR", protocol.MPR, false},
		{"SBA", protocol.SBA, false},
		{"AHBP", protocol.AHBP, false},
		{"TDP", protocol.TDP, false},
	}
}

func sortedCopy(a []int) []int {
	b := append([]int(nil), a...)
	sort.Ints(b)
	return b
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestConformanceSimVsLive(t *testing.T) {
	for _, topo := range confTopologies(t) {
		for _, p := range confProtocols() {
			topo, p := topo, p
			t.Run(topo.name+"/"+p.name, func(t *testing.T) {
				t.Parallel()
				simRes, err := sim.Run(topo.g, topo.source, p.make(), sim.Config{Seed: 1})
				if err != nil {
					t.Fatal(err)
				}
				cl, err := New(topo.g, Config{
					Protocol:  p.make,
					Seed:      1,
					TimeScale: testTimeScale,
				})
				if err != nil {
					t.Fatal(err)
				}
				liveRes, err := cl.Broadcast(topo.source, nil)
				if err != nil {
					t.Fatal(err)
				}
				checkConservation(t, liveRes)
				checkSingleTransmission(t, liveRes)
				checkSingleTransmission(t, simRes)

				if simRes.Delivered != topo.component {
					t.Errorf("sim delivered %d, want component %d", simRes.Delivered, topo.component)
				}
				if liveRes.Delivered != simRes.Delivered {
					t.Errorf("delivery mismatch: sim %d, live %d", simRes.Delivered, liveRes.Delivered)
				}
				if liveRes.N != simRes.N || liveRes.Reachable != simRes.Reachable {
					t.Errorf("scoring mismatch: sim N=%d reach=%d, live N=%d reach=%d",
						simRes.N, simRes.Reachable, liveRes.N, liveRes.Reachable)
				}
				if p.deterministic {
					sf, lf := sortedCopy(simRes.Forward), sortedCopy(liveRes.Forward)
					if !equalInts(sf, lf) {
						t.Errorf("forward set mismatch:\n sim  %v\n live %v", sf, lf)
					}
				} else if len(liveRes.Forward) == 0 {
					t.Errorf("live run never transmitted (sim forwarded %d nodes)", len(simRes.Forward))
				}
			})
		}
	}
}

// TestConformanceDuplicates drives both executors through their duplication
// mechanism (live nemesis DupRate; the simulator has no duplication model,
// so its side of this check is the recovery layer retransmitting to nodes
// that already hold the packet) and asserts duplicate suppression: delivery
// is full and nobody transmits twice.
func TestConformanceDuplicates(t *testing.T) {
	topo := pathGraph(t, 6)
	for _, p := range confProtocols() {
		p := p
		t.Run(p.name, func(t *testing.T) {
			t.Parallel()
			cl, err := New(topo, Config{
				Protocol:  p.make,
				Seed:      3,
				TimeScale: testTimeScale,
				Nemesis:   Nemesis{DupRate: 0.5, JitterFrac: 0.3},
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := cl.Broadcast(0, nil)
			if err != nil {
				t.Fatal(err)
			}
			checkConservation(t, res)
			checkSingleTransmission(t, res)
			if res.Delivered != 6 {
				t.Errorf("delivered %d under duplication, want 6", res.Delivered)
			}
		})
	}
}

// timerProbe is a minimal protocol that exercises Runtime.SetTimer ordering:
// the source schedules several timers with decreasing-then-increasing delays
// and records the order they fire in. Both executors must fire them in delay
// order.
type timerProbe struct {
	delays []float64
	mu     sync.Mutex
	fired  []int // Now() in milli-units at each firing, in firing order
}

func (p *timerProbe) Name() string                                   { return "timer-probe" }
func (p *timerProbe) Init(rt sim.Runtime)                            {}
func (p *timerProbe) OnReceive(rt sim.Runtime, v int, r sim.Receipt) {}

func (p *timerProbe) Start(rt sim.Runtime, source int) {
	for _, d := range p.delays {
		rt.SetTimer(source, d)
	}
}

func (p *timerProbe) OnTimer(rt sim.Runtime, v int) {
	p.mu.Lock()
	p.fired = append(p.fired, int(rt.Now()*1000))
	p.mu.Unlock()
}

// TestConformanceTimerOrdering: timers set with delays {5, 1, 3} must fire
// in delay order (1, 3, 5) on both executors.
func TestConformanceTimerOrdering(t *testing.T) {
	g := pathGraph(t, 2)
	delays := []float64{5, 1, 3}

	simProbe := &timerProbe{delays: delays}
	if _, err := sim.Run(g, 0, simProbe, sim.Config{}); err != nil {
		t.Fatal(err)
	}
	if len(simProbe.fired) != 3 {
		t.Fatalf("sim fired %d timers, want 3", len(simProbe.fired))
	}
	if !sort.IntsAreSorted(simProbe.fired) {
		t.Errorf("sim timers fired out of delay order: times %v", simProbe.fired)
	}

	liveProbe := &timerProbe{delays: delays}
	cl, err := New(g, Config{
		Protocol: func() sim.Protocol { return liveProbe },
		// 5ms per unit separates the three firings by whole milliseconds,
		// far above timer scheduling noise.
		TimeScale: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Broadcast(0, nil); err != nil {
		t.Fatal(err)
	}
	liveProbe.mu.Lock()
	defer liveProbe.mu.Unlock()
	if len(liveProbe.fired) != 3 {
		t.Fatalf("live fired %d timers, want 3", len(liveProbe.fired))
	}
	if !sort.IntsAreSorted(liveProbe.fired) {
		t.Errorf("live timers fired out of delay order: times (ms*): %v", liveProbe.fired)
	}
}
