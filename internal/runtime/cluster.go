package runtime

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"adhocbcast/internal/fault"
	"adhocbcast/internal/graph"
	"adhocbcast/internal/sim"
	"adhocbcast/internal/view"
)

// Cluster is an in-process live network: one goroutine per node, channel
// inboxes as radios, wall-clock timers scaled by Config.TimeScale. A Cluster
// is built once per topology and runs any number of broadcasts; local views
// are built once and status-reset between broadcasts. Broadcasts run one at
// a time per Cluster.
type Cluster struct {
	g     *graph.Graph
	cfg   Config
	views []*view.Local
	// viewGs[v] is the topology node v's view was built from (one shared
	// graph unless NodeViews is set).
	viewGs []*graph.Graph
	bcast  int // broadcasts started, keys per-broadcast RNG streams
	// lastDelivered records per-node delivery of the most recent broadcast
	// (sim.Result only carries counts; invariant checks need the set).
	lastDelivered []bool
}

// New builds a live cluster over g. View construction (the expensive part)
// happens here, once.
func New(g *graph.Graph, cfg Config) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	n := g.N()
	cl := &Cluster{
		g:      g,
		cfg:    cfg,
		views:  make([]*view.Local, n),
		viewGs: make([]*graph.Graph, n),
	}
	if cfg.NodeViews != nil {
		for v := 0; v < n; v++ {
			gv := cfg.NodeViews(v)
			if gv == nil {
				return nil, fmt.Errorf("runtime: NodeViews returned nil for node %d", v)
			}
			if gv.N() != n {
				return nil, fmt.Errorf("runtime: node %d view has %d nodes, network has %d", v, gv.N(), n)
			}
			base := view.BasePriorities(gv, cfg.Metric)
			cl.views[v] = view.NewLocal(gv, v, cfg.Hops, base)
			cl.viewGs[v] = gv
		}
		return cl, nil
	}
	base := view.BasePriorities(g, cfg.Metric)
	for v := 0; v < n; v++ {
		cl.views[v] = view.NewLocal(g, v, cfg.Hops, base)
		cl.viewGs[v] = g
	}
	return cl, nil
}

// N returns the network size.
func (cl *Cluster) N() int { return cl.g.N() }

// staleView is the CoreConfig.StaleView hook under dynamic hello maintenance
// (nil method value never installed when DynamicHello is off — the hook
// checks itself). A node's view is stale at time now when some view-neighbor
// is past its beacon expiry, with the beacon loss schedule evaluated as the
// pure hash the simulator uses, so seed-matched runs agree on every verdict.
func (cl *Cluster) staleView(v int, now float64) bool {
	d := cl.cfg.DynamicHello
	if d == nil {
		return false
	}
	stale := false
	cl.viewGs[v].ForEachNeighbor(v, func(u int) {
		if !stale && d.LinkStale(v, u, now) {
			stale = true
		}
	})
	return stale
}

// DeliveredNodes returns the per-node delivery outcome of the most recent
// broadcast (nil before the first). The slice is owned by the cluster and
// valid until the next Broadcast.
func (cl *Cluster) DeliveredNodes() []bool { return cl.lastDelivered }

// message kinds determine how a node's loop treats an inbox entry when the
// node is down at processing time.
type msgKind int

const (
	// msgEvent entries (packet deliveries, garbles, NACK arrivals, the
	// source kick) had their down checks at arrival time, in the scheduling
	// layer; the loop runs them unconditionally.
	msgEvent msgKind = iota
	// msgTimer entries are protocol decision timers: cancelled and counted
	// if the node is down when they fire, mirroring the simulator.
	msgTimer
	// msgRecovery entries are recovery-layer bookkeeping: silently skipped
	// if the node is down when they fire (a down node's recovery state is
	// soft state).
	msgRecovery
)

type msg struct {
	kind msgKind
	fn   func()
}

// lnode is one live node: its inbox loop, its protocol core, and its
// per-neighbor nemesis RNG streams. lnode implements Transport for its Core.
type lnode struct {
	r    *run
	core *Core
	// inbox serializes every entry point (deliveries, timers, recovery)
	// onto the node's goroutine; the Core is lock-free because of it.
	inbox   chan msg
	stopped chan struct{}
	// linkRngs[i] drives the nemesis draws of the directed link to the
	// i-th true neighbor (drawn only on this node's goroutine).
	linkRngs []*rand.Rand
	// dispatchDown is the node's down verdict for the message being handled,
	// evaluated once at dispatch exactly like the simulator evaluates
	// down-ness once per event: a copy that passed its up-at-arrival check
	// is processed fully (including the transmit it triggers) even if the
	// node's churn window opens microseconds into the handler. Only touched
	// on the node's loop goroutine.
	dispatchDown bool
}

// run is the state of one live broadcast.
type run struct {
	cl    *Cluster
	plan  *fault.Plan
	nodes []*lnode
	t0    time.Time
	// inflight tracks every scheduled-but-unprocessed action (pending
	// timer, copy in flight, queued inbox entry). The broadcast has
	// quiesced when it drains; handlers schedule follow-ups before
	// releasing their own slot, so the counter never touches zero early.
	inflight sync.WaitGroup

	mu              sync.Mutex
	forward         []forwardEvent
	finish          float64
	receipts        int
	copies          int
	lost            int
	droppedNodeDown int
	droppedLinkDown int
	timersCancelled int
	nacks           int
	retransmits     int
	nonForwards     int
}

type forwardEvent struct {
	node int
	at   float64
}

// now returns the run clock in time units.
func (r *run) now() float64 {
	return float64(time.Since(r.t0)) / float64(r.cl.cfg.TimeScale)
}

// wall converts d time units to a wall-clock duration.
func (r *run) wall(d float64) time.Duration {
	if d < 0 {
		d = 0
	}
	return time.Duration(d * float64(r.cl.cfg.TimeScale))
}

func (r *run) downNode(v int, t float64) bool {
	return r.plan != nil && r.plan.NodeDownAt(v, t)
}

func (r *run) downLink(u, v int, t float64) bool {
	return r.plan != nil && r.plan.LinkDownAt(u, v, t)
}

func (r *run) count(c *int) {
	r.mu.Lock()
	*c++
	r.mu.Unlock()
}

// note updates the finish clock under the run lock.
func (r *run) note(at float64) {
	if at > r.finish {
		r.finish = at
	}
}

// loop is the node's goroutine: it serializes all handler execution.
func (n *lnode) loop() {
	for {
		select {
		case m := <-n.inbox:
			n.handle(m)
		case <-n.stopped:
			return
		}
	}
}

func (n *lnode) handle(m msg) {
	defer n.r.inflight.Done()
	switch m.kind {
	case msgTimer:
		if n.r.downNode(n.core.ID(), n.r.now()) {
			n.r.count(&n.r.timersCancelled)
			return
		}
		n.dispatchDown = false
	case msgRecovery:
		if n.r.downNode(n.core.ID(), n.r.now()) {
			return
		}
		n.dispatchDown = false
	default:
		// Event messages (deliveries, garbles, NACK arrivals) had their
		// down check at arrival time in the scheduling layer; the verdict
		// holds for the whole dispatch.
		n.dispatchDown = false
	}
	m.fn()
}

// post enqueues an inbox entry, releasing its inflight slot if the run has
// already been torn down (deadline abort).
func (n *lnode) post(m msg) {
	select {
	case n.inbox <- m:
	case <-n.stopped:
		n.r.inflight.Done()
	}
}

// schedule runs fn on the node's loop after d time units.
func (n *lnode) schedule(kind msgKind, d float64, fn func()) {
	n.r.inflight.Add(1)
	time.AfterFunc(n.r.wall(d), func() { n.post(msg{kind: kind, fn: fn}) })
}

// --- Transport ---

var _ Transport = (*lnode)(nil)

func (n *lnode) Now() float64 { return n.r.now() }

// Down reports the down verdict of the current dispatch (see dispatchDown):
// a handler that is running was up when its trigger was checked, and keeps
// that status for its duration.
func (n *lnode) Down() bool { return n.dispatchDown }

func (n *lnode) AfterTimer(d float64, fn func()) { n.schedule(msgTimer, d, fn) }

func (n *lnode) AfterRecovery(d float64, fn func()) { n.schedule(msgRecovery, d, fn) }

// Broadcast radios one copy to every true neighbor through the nemesis.
func (n *lnode) Broadcast(pkt sim.Packet) {
	r := n.r
	v := n.core.ID()
	at := r.now()
	r.mu.Lock()
	r.forward = append(r.forward, forwardEvent{node: v, at: at})
	if m := r.cl.cfg.Metrics; m != nil {
		m.ForwardSet.Observe(float64(len(pkt.SenderDesignated())))
	}
	r.note(at)
	r.mu.Unlock()
	r.cl.g.ForEachNeighbor(v, func(u int) {
		n.sendCopy(u, pkt, 0)
	})
}

// Unicast sends one recovery retransmission copy, subject to the same
// nemesis as any other copy.
func (n *lnode) Unicast(to int, pkt sim.Packet, attempt int) {
	n.r.count(&n.r.retransmits)
	n.sendCopy(to, pkt, attempt)
}

// NACK delivers a recovery request to the original sender over the control
// channel: reliable and immediate (the detection-plus-transit delay was
// already spent on the receiver side), but dropped if the sender is down at
// arrival — then the receiver-driven re-request keeps the chain alive. The
// handoff goes through a timer goroutine so node loops never block on each
// other's inboxes.
func (n *lnode) NACK(to int, attempt int) {
	r := n.r
	from := n.core.ID()
	tgt := r.nodes[to]
	r.inflight.Add(1)
	time.AfterFunc(0, func() {
		if r.downNode(to, r.now()) {
			r.inflight.Done()
			return
		}
		tgt.post(msg{kind: msgRecovery, fn: func() {
			tgt.core.HandleNACK(from, attempt)
		}})
	})
}

func (n *lnode) NoteDeliver(first bool, at float64) {
	r := n.r
	r.mu.Lock()
	r.receipts++
	if first {
		if m := r.cl.cfg.Metrics; m != nil {
			m.Latency.Observe(at)
		}
	}
	r.note(at)
	r.mu.Unlock()
}

func (n *lnode) NoteSource() {
	r := n.r
	r.mu.Lock()
	if m := r.cl.cfg.Metrics; m != nil {
		m.Latency.Observe(0)
	}
	r.mu.Unlock()
}

func (n *lnode) NoteNACK() { n.r.count(&n.r.nacks) }

func (n *lnode) NoteNonForward() { n.r.count(&n.r.nonForwards) }

// linkRNG returns the nemesis stream of the directed link to neighbor `to`.
func (n *lnode) linkRNG(to int) *rand.Rand {
	nbrs := n.r.cl.g.Neighbors(n.core.ID())
	i := sort.SearchInts(nbrs, to)
	return n.linkRngs[i]
}

// sendCopy pushes one copy onto the directed link, applying the nemesis:
// jitter on the delivery delay, Bernoulli drop and duplication, and the
// fault plan's node/link outages at arrival time. Runs on the sender's
// goroutine, so the link's RNG draws are ordered by the sender's send order.
func (n *lnode) sendCopy(to int, pkt sim.Packet, attempt int) {
	r := n.r
	cfg := &r.cl.cfg
	lr := n.linkRNG(to)
	delay := cfg.TransmitDelay
	if cfg.Nemesis.JitterFrac > 0 {
		delay += lr.Float64() * cfg.Nemesis.JitterFrac * cfg.TransmitDelay
	}
	drop := cfg.Nemesis.DropRate > 0 && lr.Float64() < cfg.Nemesis.DropRate
	n.deliverCopy(to, pkt, attempt, delay, drop)
	if cfg.Nemesis.DupRate > 0 && lr.Float64() < cfg.Nemesis.DupRate {
		// The duplicate trails the original by up to one transmit delay,
		// so it usually arrives after other traffic has interleaved.
		n.deliverCopy(to, pkt, attempt, delay+lr.Float64()*cfg.TransmitDelay, false)
	}
}

// deliverCopy schedules one copy's arrival and resolves its fate at arrival
// time, exactly as the simulator's dispatch does: receiver down → silent
// drop; link down → drop, detectable if the nemesis says so; nemesis drop →
// garble (detectable when recovery is on); otherwise delivery.
func (n *lnode) deliverCopy(to int, pkt sim.Packet, attempt int, delay float64, drop bool) {
	r := n.r
	from := n.core.ID()
	r.count(&r.copies)
	r.inflight.Add(1)
	time.AfterFunc(r.wall(delay), func() {
		at := r.now()
		tgt := r.nodes[to]
		switch {
		case r.downNode(to, at):
			r.count(&r.droppedNodeDown)
			r.inflight.Done()
		case r.downLink(from, to, at):
			r.count(&r.droppedLinkDown)
			if r.cl.cfg.Nemesis.DetectablePartitions && r.cl.cfg.NACKRecovery {
				tgt.post(msg{kind: msgEvent, fn: func() {
					tgt.core.HandleGarble(from, attempt)
				}})
			} else {
				r.inflight.Done()
			}
		case drop:
			r.count(&r.lost)
			if r.cl.cfg.NACKRecovery {
				tgt.post(msg{kind: msgEvent, fn: func() {
					tgt.core.HandleGarble(from, attempt)
				}})
			} else {
				r.inflight.Done()
			}
		default:
			tgt.post(msg{kind: msgEvent, fn: func() {
				tgt.core.HandlePacket(from, pkt, at)
			}})
		}
	})
}

// Broadcast runs one live broadcast from source under the given fault plan
// (nil for none) and returns a result in the simulator's format. It blocks
// until the network has quiesced: no copy in flight, no timer pending, no
// recovery chain alive. A broadcast that has not quiesced within
// Config.Deadline time units returns an error.
func (cl *Cluster) Broadcast(source int, plan *fault.Plan) (sim.Result, error) {
	n := cl.g.N()
	if source < 0 || source >= n {
		return sim.Result{}, fmt.Errorf("runtime: source %d out of range [0,%d)", source, n)
	}
	if plan != nil {
		if err := plan.Validate(n); err != nil {
			return sim.Result{}, fmt.Errorf("runtime: invalid fault plan: %w", err)
		}
	}
	if m := cl.cfg.Metrics; m != nil {
		m.Reset()
	}
	bcast := cl.bcast
	cl.bcast++

	r := &run{cl: cl, plan: plan, nodes: make([]*lnode, n)}
	for v := 0; v < n; v++ {
		lv := cl.views[v]
		lv.ResetStatus()
		ln := &lnode{
			r:       r,
			inbox:   make(chan msg, 64),
			stopped: make(chan struct{}),
		}
		ln.core = NewCore(v, cl.cfg.Protocol(), lv, cl.viewGs[v], CoreConfig{
			N:                    n,
			PiggybackDepth:       cl.cfg.PiggybackDepth,
			BackoffWindow:        cl.cfg.BackoffWindow,
			TransmitDelay:        cl.cfg.TransmitDelay,
			NACKRecovery:         cl.cfg.NACKRecovery,
			RetryBudget:          cl.cfg.RetryBudget,
			NACKDelay:            cl.cfg.NACKDelay,
			RetryBackoff:         cl.cfg.RetryBackoff,
			JitterFrac:           cl.cfg.Nemesis.JitterFrac,
			ConservativeFallback: cl.cfg.ConservativeFallback,
			ViewIncomplete:       cl.cfg.ViewIncomplete,
			StaleView:            cl.staleView,
		}, ln, streamSeed(cl.cfg.Seed, "live.backoff", bcast, v))
		nbrs := cl.g.Neighbors(v)
		ln.linkRngs = make([]*rand.Rand, len(nbrs))
		for i, u := range nbrs {
			ln.linkRngs[i] = rand.New(rand.NewSource(
				streamSeed(cl.cfg.Seed, "live.link", bcast, v, u)))
		}
		r.nodes[v] = ln
	}
	// Init every core before any goroutine starts: single-threaded, so
	// static protocols can precompute without racing traffic.
	for _, ln := range r.nodes {
		ln.core.Init()
	}
	for _, ln := range r.nodes {
		go ln.loop()
	}

	// The clock starts now; the source kick is the first inbox entry.
	r.t0 = time.Now()
	src := r.nodes[source]
	r.inflight.Add(1)
	src.post(msg{kind: msgEvent, fn: src.core.Start})

	done := make(chan struct{})
	go func() {
		r.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(r.wall(cl.cfg.Deadline)):
		for _, ln := range r.nodes {
			close(ln.stopped)
		}
		return sim.Result{}, fmt.Errorf("runtime: broadcast from %d did not quiesce within %v time units",
			source, cl.cfg.Deadline)
	}
	for _, ln := range r.nodes {
		close(ln.stopped)
	}
	return r.result(source), nil
}

// result assembles the simulator-format outcome of a quiesced run. The
// inflight.Wait in Broadcast ordered every node-goroutine write before this
// read.
func (r *run) result(source int) sim.Result {
	cl := r.cl
	n := cl.g.N()
	// Forward order: live transmissions are only partially ordered, so sort
	// by timestamp (ties by node id) to get the simulator's deterministic
	// presentation.
	sort.Slice(r.forward, func(i, j int) bool {
		if r.forward[i].at != r.forward[j].at {
			return r.forward[i].at < r.forward[j].at
		}
		return r.forward[i].node < r.forward[j].node
	})
	res := sim.Result{
		N:               n,
		Finish:          r.finish,
		Receipts:        r.receipts,
		Copies:          r.copies,
		Lost:            r.lost,
		DroppedNodeDown: r.droppedNodeDown,
		DroppedLinkDown: r.droppedLinkDown,
		TimersCancelled: r.timersCancelled,
		NACKs:           r.nacks,
		Retransmits:     r.retransmits,
	}
	res.Forward = make([]int, len(r.forward))
	for i, f := range r.forward {
		res.Forward[i] = f.node
	}
	cl.lastDelivered = make([]bool, n)
	for v, ln := range r.nodes {
		if ln.core.Delivered() {
			res.Delivered++
			cl.lastDelivered[v] = true
		}
	}
	if r.plan == nil {
		res.Reachable = n
		res.DeliveredReachable = res.Delivered
	} else {
		reach := r.plan.ReachableFrom(cl.g, source)
		for v, ok := range reach {
			if !ok {
				continue
			}
			res.Reachable++
			if r.nodes[v].core.Delivered() {
				res.DeliveredReachable++
			}
		}
	}
	if m := cl.cfg.Metrics; m != nil {
		m.N = res.N
		m.Delivered = res.Delivered
		m.Forward = len(res.Forward)
		m.Copies = res.Copies
		m.Receipts = res.Receipts
		m.Lost = res.Lost
		m.DroppedNodeDown = res.DroppedNodeDown
		m.DroppedLinkDown = res.DroppedLinkDown
		m.TimersCancelled = res.TimersCancelled
		m.NACKs = res.NACKs
		m.Retransmits = res.Retransmits
		m.Reachable = res.Reachable
		m.DeliveredReachable = res.DeliveredReachable
		m.Finish = res.Finish
		if cl.cfg.ViewIncomplete != nil {
			for v := 0; v < res.N; v++ {
				if cl.cfg.ViewIncomplete(v) {
					m.ViewIncompleteNodes++
				}
			}
		}
		if d := cl.cfg.DynamicHello; d != nil {
			// Same pure computation as the simulator's result(): nodes whose
			// view went stale at any point up to the finish clock.
			for v := 0; v < res.N; v++ {
				stale := false
				cl.viewGs[v].ForEachNeighbor(v, func(u int) {
					if !stale && d.EverStale(v, u, res.Finish) {
						stale = true
					}
				})
				if stale {
					m.StaleViewHolds++
				}
			}
		}
	}
	return res
}
