package geo

import (
	"math"
	"sort"
)

// The grid-indexed candidate generator. The naive generator materializes and
// sorts all n(n-1)/2 point pairs to find the m = round(n*d/2) closest ones —
// an O(n^2 log n) wall that makes n >= 5,000 infeasible. The grid path gets
// the same m pairs from a guess-and-verify scheme:
//
//  1. Estimate the range r that yields m in-range pairs from the analytic
//     distance distribution of uniform points in a square (with the boundary
//     deficit term, so the estimate does not systematically undershoot near
//     the edges), padded by a safety factor.
//  2. Bucket the points into a uniform grid with cell size r. Any pair within
//     distance r then lies in the same or an 8-neighboring cell, so scanning
//     each node's 3x3 cell neighborhood enumerates exactly the pairs with
//     distance <= r in O(n + k) expected time, k being the candidate count.
//  3. If fewer than m pairs are in range, the estimate was low: grow r and
//     rescan (each rescan is a full rebuild, so a bad estimate costs extra
//     linear passes, never correctness).
//
// Once the scan yields k >= m candidates, the m globally closest pairs are
// all among them (at least m pairs have distance <= r, so the m smallest do).
// Sorting the k = O(m) candidates with the same (distance, u, v) comparator
// the naive path uses therefore selects bit-identical edges and range — the
// equivalence is pinned by TestPlaceGridMatchesNaive, a fuzz target, and the
// golden-hash test over the paper's n/d grid.

// rangeSafety pads the analytic range estimate so the first grid scan
// usually finds enough candidates; growFactor is the rescan growth.
const (
	rangeSafety = 1.2
	growFactor  = 1.4
	// maxCellsPerSide bounds grid memory for very sparse ranges: with at
	// most 4096^2 cells the cell directory stays tens of MB even when the
	// estimated range is a vanishing fraction of the side.
	maxCellsPerSide = 4096
)

// cellGrid is a uniform spatial index: node ids grouped by square cell, laid
// out CSR-style (one nodes array, one start offset per cell) so building it
// is two counting passes and no per-cell allocations.
type cellGrid struct {
	cell  float64
	cols  int
	rows  int
	ci    []int // cell index per node
	start []int // len cols*rows+1; nodes[start[c]:start[c+1]] live in cell c
	nodes []int // node ids grouped by cell
}

// newCellGrid buckets pos into cells of the given size covering a side x side
// area. Cell size is clamped below so the directory never exceeds
// maxCellsPerSide per axis; the scan radius is what guarantees coverage, the
// cell size only affects how many candidates each scan examines.
func newCellGrid(pos []Point, side, cell float64) *cellGrid {
	if min := side / maxCellsPerSide; cell < min {
		cell = min
	}
	cols := int(math.Ceil(side / cell))
	if cols < 1 {
		cols = 1
	}
	g := &cellGrid{
		cell:  cell,
		cols:  cols,
		rows:  cols,
		ci:    make([]int, len(pos)),
		start: make([]int, cols*cols+1),
		nodes: make([]int, len(pos)),
	}
	for i, p := range pos {
		g.ci[i] = g.cellIndex(p)
	}
	for _, c := range g.ci {
		g.start[c+1]++
	}
	for c := 0; c < len(g.start)-1; c++ {
		g.start[c+1] += g.start[c]
	}
	fill := append([]int(nil), g.start[:len(g.start)-1]...)
	for i, c := range g.ci {
		g.nodes[fill[c]] = i
		fill[c]++
	}
	return g
}

// cellIndex maps a point to its cell, clamping the boundary so points at
// (or beyond, through float rounding) the area edge land in the last cell.
func (g *cellGrid) cellIndex(p Point) int {
	cx := int(p.X / g.cell)
	cy := int(p.Y / g.cell)
	if cx < 0 {
		cx = 0
	} else if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.rows {
		cy = g.rows - 1
	}
	return cy*g.cols + cx
}

// pairsWithin appends to dst every pair {u, v}, u < v, with distance <= r,
// visiting each node's 3x3 cell neighborhood. reach is the cell radius the
// scan must cover: 1 when the cell size is >= r, more when the cell size was
// clamped below r.
func (g *cellGrid) pairsWithin(pos []Point, r float64, dst []pair) []pair {
	reach := 1
	if g.cell < r {
		reach = int(math.Ceil(r / g.cell))
	}
	for u, c := range g.ci {
		cx, cy := c%g.cols, c/g.cols
		pu := pos[u]
		for dy := -reach; dy <= reach; dy++ {
			y := cy + dy
			if y < 0 || y >= g.rows {
				continue
			}
			for dx := -reach; dx <= reach; dx++ {
				x := cx + dx
				if x < 0 || x >= g.cols {
					continue
				}
				cc := y*g.cols + x
				for _, v := range g.nodes[g.start[cc]:g.start[cc+1]] {
					if v <= u {
						continue
					}
					if d := pu.Distance(pos[v]); d <= r {
						dst = append(dst, pair{d: d, u: u, v: v})
					}
				}
			}
		}
	}
	return dst
}

// candidatePairs returns a superset of the m closest pairs: every pair with
// distance <= r for the smallest tried r that yields at least m pairs. The
// returned slice is unsorted.
func candidatePairs(pos []Point, side float64, m int) []pair {
	if m <= 0 {
		return nil
	}
	n := len(pos)
	rmax := side * math.Sqrt2
	r := estimateRange(n, side, m) * rangeSafety
	if r > rmax {
		r = rmax
	}
	var pairs []pair
	for {
		g := newCellGrid(pos, side, r)
		pairs = g.pairsWithin(pos, r, pairs[:0])
		if len(pairs) >= m || r >= rmax {
			return pairs
		}
		r *= growFactor
		if r > rmax {
			r = rmax
		}
	}
}

// estimateRange inverts the distance distribution of two uniform points in a
// side x side square: P(dist <= r) = pi r^2/s^2 - 8 r^3/(3 s^3) + r^4/(2 s^4)
// for r <= s (the cubic term is the boundary deficit). It bisects for the r
// whose expected in-range pair count C(n,2) * P(r) reaches m; when even r = s
// is not enough the caller's growth loop takes over from s.
func estimateRange(n int, side float64, m int) float64 {
	total := float64(n) * float64(n-1) / 2
	target := float64(m) / total
	cdf := func(r float64) float64 {
		t := r / side
		return math.Pi*t*t - 8*t*t*t/3 + t*t*t*t/2
	}
	if target >= cdf(side) {
		return side
	}
	lo, hi := 0.0, side
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if cdf(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// sortPairs orders candidate pairs by (distance, u, v) — the exact comparator
// the naive full sort uses, so the first m of any superset of the m closest
// pairs are identical across both paths.
func sortPairs(pairs []pair) {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].d != pairs[j].d {
			return pairs[i].d < pairs[j].d
		}
		if pairs[i].u != pairs[j].u {
			return pairs[i].u < pairs[j].u
		}
		return pairs[i].v < pairs[j].v
	})
}
