package geo

import (
	"hash/fnv"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// comparePlacements asserts that the grid-indexed and naive generators built
// bit-identical networks from the same placement.
func comparePlacements(t *testing.T, naive, grid *Network) {
	t.Helper()
	if naive.Range != grid.Range {
		t.Fatalf("range differs: naive %v, grid %v", naive.Range, grid.Range)
	}
	if naive.G.M() != grid.G.M() {
		t.Fatalf("link count differs: naive %d, grid %d", naive.G.M(), grid.G.M())
	}
	ne, ge := naive.G.Edges(), grid.G.Edges()
	for i := range ne {
		if ne[i] != ge[i] {
			t.Fatalf("edge %d differs: naive %v, grid %v", i, ne[i], ge[i])
		}
	}
	for i := range naive.Pos {
		if naive.Pos[i] != grid.Pos[i] {
			t.Fatalf("position %d differs: naive %v, grid %v", i, naive.Pos[i], grid.Pos[i])
		}
	}
}

// TestPlaceGridMatchesNaive checks the grid-indexed generator edge-for-edge
// against the reference full-sort path across a seed matrix. Infeasible
// (n, d) combinations (d impossible for n) are skipped. The comparison is at
// the placement level, so disconnected draws are compared too — equivalence
// must hold for every placement, not just the accepted ones.
func TestPlaceGridMatchesNaive(t *testing.T) {
	for _, n := range []int{20, 100, 500} {
		for _, d := range []float64{6, 18, 30} {
			cfg := Config{N: n, AvgDegree: d}
			if err := cfg.Validate(); err != nil {
				continue
			}
			cfg = cfg.withDefaults()
			for seed := int64(1); seed <= 3; seed++ {
				naiveCfg, gridCfg := cfg, cfg
				naiveCfg.Naive = true
				naive := place(naiveCfg, rand.New(rand.NewSource(seed)))
				grid := place(gridCfg, rand.New(rand.NewSource(seed)))
				comparePlacements(t, naive, grid)
			}
		}
	}
}

// TestGenerateGridMatchesNaive checks the full Generate pipeline (rejection
// sampling included) across both paths: identical placements are accepted or
// rejected identically, so Attempts must agree too.
func TestGenerateGridMatchesNaive(t *testing.T) {
	for _, tt := range []struct {
		n int
		d float64
	}{{30, 6}, {100, 6}, {100, 18}, {200, 10}} {
		naive, err := Generate(Config{N: tt.n, AvgDegree: tt.d, Naive: true},
			rand.New(rand.NewSource(11)))
		if err != nil {
			t.Fatalf("naive n=%d d=%g: %v", tt.n, tt.d, err)
		}
		grid, err := Generate(Config{N: tt.n, AvgDegree: tt.d},
			rand.New(rand.NewSource(11)))
		if err != nil {
			t.Fatalf("grid n=%d d=%g: %v", tt.n, tt.d, err)
		}
		if naive.Attempts != grid.Attempts {
			t.Fatalf("n=%d d=%g: attempts differ: naive %d, grid %d",
				tt.n, tt.d, naive.Attempts, grid.Attempts)
		}
		comparePlacements(t, naive, grid)
	}
}

// networkHash digests a generated network: every position bit pattern, the
// full edge list, the range bit pattern, and the attempt count.
func networkHash(net *Network) uint64 {
	h := fnv.New64a()
	var buf [16]byte
	put := func(x uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(x >> (8 * i))
		}
		h.Write(buf[:8])
	}
	for _, p := range net.Pos {
		put(math.Float64bits(p.X))
		put(math.Float64bits(p.Y))
	}
	for _, e := range net.G.Edges() {
		put(uint64(e[0])<<32 | uint64(e[1]))
	}
	put(math.Float64bits(net.Range))
	put(uint64(net.Attempts))
	return h.Sum64()
}

// TestGenerateGolden pins Generate's output for the paper's n/d evaluation
// grid against hashes recorded from the pre-grid full-sort generator. Any
// change to placement order, candidate selection, tie-breaking, or the
// rejection loop shows up here as a hash mismatch. Seeds are 1000*n + d.
//
// Note these hashes cover the *byte content* of the network (positions,
// edges, range, attempts) but not private representation details, so a
// storage refactor that preserves the generated networks keeps them green.
func TestGenerateGolden(t *testing.T) {
	golden := []struct {
		n, d int
		hash uint64
	}{
		{n: 20, d: 6, hash: 0x61b572967c5ca913},
		{n: 30, d: 6, hash: 0xf60de8b64a06038e},
		{n: 40, d: 6, hash: 0xd485ec7b520a28a1},
		{n: 50, d: 6, hash: 0xee15d3240ad5266c},
		{n: 60, d: 6, hash: 0xfb68bbeb8c31a46c},
		{n: 70, d: 6, hash: 0x8e4688a48b1a04e4},
		{n: 80, d: 6, hash: 0x08763b3e5641d793},
		{n: 90, d: 6, hash: 0x9e33f152cab3662b},
		{n: 100, d: 6, hash: 0x620a955030ea2c08},
		{n: 20, d: 18, hash: 0x09b2a73f46b9856f},
		{n: 30, d: 18, hash: 0x0585fa0c8860a310},
		{n: 40, d: 18, hash: 0x1ecb9e921650003a},
		{n: 50, d: 18, hash: 0x8dae7ea318bb0c91},
		{n: 60, d: 18, hash: 0x34188b62f0bdf7f7},
		{n: 70, d: 18, hash: 0x6bf927def3b98c30},
		{n: 80, d: 18, hash: 0x23af13112938f23e},
		{n: 90, d: 18, hash: 0x10a0bb53241c4fba},
		{n: 100, d: 18, hash: 0x5fb5d2bf65f7648f},
	}
	for _, g := range golden {
		net, err := Generate(Config{N: g.n, AvgDegree: float64(g.d)},
			rand.New(rand.NewSource(int64(1000*g.n+g.d))))
		if err != nil {
			t.Fatalf("n=%d d=%d: %v", g.n, g.d, err)
		}
		if got := networkHash(net); got != g.hash {
			t.Errorf("n=%d d=%d: hash 0x%016x, want 0x%016x (generator output changed)",
				g.n, g.d, got, g.hash)
		}
	}
}

// TestGenerateFailureDiagnostics checks the MaxAttempts-exhausted error names
// the seed and the largest connected component of the last attempt.
func TestGenerateFailureDiagnostics(t *testing.T) {
	// Average degree 2 on 60 nodes essentially never yields a connected
	// graph, so a tiny attempt budget must fail.
	cfg := Config{N: 60, AvgDegree: 2, MaxAttempts: 3, Seed: 99}
	_, err := Generate(cfg, rand.New(rand.NewSource(99)))
	if err == nil {
		t.Skip("every sparse placement happened to be connected; nothing to assert")
	}
	msg := err.Error()
	for _, want := range []string{"seed 99", "largest", "components", "after 3 attempts"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

// TestEstimateRange sanity-checks the analytic range estimate: inverting the
// CDF and re-evaluating it must land on the target probability, and the
// estimate must be monotone in the link target.
func TestEstimateRange(t *testing.T) {
	prev := 0.0
	for _, m := range []int{10, 100, 1000, 4000} {
		r := estimateRange(100, 100, m)
		if r <= prev {
			t.Fatalf("estimateRange not monotone: m=%d gave %v after %v", m, r, prev)
		}
		prev = r
	}
	// Saturated target: more links than the in-side CDF covers falls back to
	// the side length (the growth loop takes over from there).
	if r := estimateRange(10, 100, 45); r != 100 {
		t.Fatalf("saturated estimate = %v, want side 100", r)
	}
}

// FuzzPlaceGridMatchesNaive fuzzes the equivalence of the two generators over
// placement seed, size, and degree.
func FuzzPlaceGridMatchesNaive(f *testing.F) {
	f.Add(int64(1), uint16(25), uint16(6))
	f.Add(int64(42), uint16(100), uint16(18))
	f.Add(int64(7), uint16(60), uint16(30))
	f.Add(int64(-3), uint16(2), uint16(1))
	f.Fuzz(func(t *testing.T, seed int64, n, d uint16) {
		cfg := Config{N: int(n%300) + 2, AvgDegree: float64(d%40) + 0.5}
		if err := cfg.Validate(); err != nil {
			t.Skip()
		}
		cfg = cfg.withDefaults()
		naiveCfg := cfg
		naiveCfg.Naive = true
		naive := place(naiveCfg, rand.New(rand.NewSource(seed)))
		grid := place(cfg, rand.New(rand.NewSource(seed)))
		comparePlacements(t, naive, grid)
	})
}
