package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{name: "ok", cfg: Config{N: 20, AvgDegree: 6}},
		{name: "too few nodes", cfg: Config{N: 1, AvgDegree: 2}, wantErr: true},
		{name: "zero degree", cfg: Config{N: 10, AvgDegree: 0}, wantErr: true},
		{name: "negative degree", cfg: Config{N: 10, AvgDegree: -1}, wantErr: true},
		{name: "impossible degree", cfg: Config{N: 10, AvgDegree: 40}, wantErr: true},
		{name: "complete graph degree", cfg: Config{N: 10, AvgDegree: 9}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestGenerateExactLinkCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tt := range []struct {
		n int
		d float64
	}{
		{n: 20, d: 6}, {n: 50, d: 6}, {n: 100, d: 6}, {n: 50, d: 18}, {n: 100, d: 18},
	} {
		net, err := Generate(Config{N: tt.n, AvgDegree: tt.d}, rng)
		if err != nil {
			t.Fatalf("Generate(n=%d d=%g): %v", tt.n, tt.d, err)
		}
		want := int(math.Round(float64(tt.n) * tt.d / 2))
		if net.G.M() != want {
			t.Fatalf("n=%d d=%g: links = %d, want exactly %d", tt.n, tt.d, net.G.M(), want)
		}
		if !net.G.Connected() {
			t.Fatalf("n=%d d=%g: generated network not connected", tt.n, tt.d)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{N: 40, AvgDegree: 6}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{N: 40, AvgDegree: 6}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if a.G.M() != b.G.M() || a.Range != b.Range || a.Attempts != b.Attempts {
		t.Fatal("same seed produced different networks")
	}
	ae, be := a.G.Edges(), b.G.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ae[i], be[i])
		}
	}
	for i := range a.Pos {
		if a.Pos[i] != b.Pos[i] {
			t.Fatalf("position %d differs", i)
		}
	}
}

func TestGeneratePositionsInArea(t *testing.T) {
	net, err := Generate(Config{N: 30, AvgDegree: 5, Side: 50}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range net.Pos {
		if p.X < 0 || p.X >= 50 || p.Y < 0 || p.Y >= 50 {
			t.Fatalf("node %d at %v outside 50x50 area", i, p)
		}
	}
}

func TestGenerateInvalidConfig(t *testing.T) {
	if _, err := Generate(Config{N: 1, AvgDegree: 3}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("Generate accepted an invalid config")
	}
}

func TestGenerateGivesUp(t *testing.T) {
	// Average degree 2 on 50 nodes almost never yields a connected graph;
	// with one attempt allowed, Generate should report failure rather than
	// loop forever.
	cfg := Config{N: 50, AvgDegree: 2, MaxAttempts: 1}
	failed := false
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20 && !failed; trial++ {
		if _, err := Generate(cfg, rng); err != nil {
			failed = true
		}
	}
	if !failed {
		t.Skip("every sparse placement happened to be connected; nothing to assert")
	}
}

func TestDistance(t *testing.T) {
	p := Point{X: 1, Y: 2}
	q := Point{X: 4, Y: 6}
	if got := p.Distance(q); got != 5 {
		t.Fatalf("Distance = %v, want 5", got)
	}
	if got := p.Distance(p); got != 0 {
		t.Fatalf("Distance to self = %v", got)
	}
}

// TestGenerateEdgeGeometryQuick property-checks the unit disk semantics:
// every generated link spans at most Range, and every non-link pair is
// farther apart than Range (modulo exact ties, which have probability zero
// with float64 coordinates).
func TestGenerateEdgeGeometryQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net, err := Generate(Config{N: 25, AvgDegree: 6}, rng)
		if err != nil {
			return true // no connected placement found: nothing to check
		}
		for u := 0; u < 25; u++ {
			for v := u + 1; v < 25; v++ {
				d := net.Pos[u].Distance(net.Pos[v])
				if net.G.HasEdge(u, v) && d > net.Range+1e-9 {
					return false
				}
				if !net.G.HasEdge(u, v) && d < net.Range-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}

// TestLinksRounding checks the round(n*d/2) target for odd products.
func TestLinksRounding(t *testing.T) {
	tests := []struct {
		n    int
		d    float64
		want int
	}{
		{n: 10, d: 3, want: 15},
		{n: 5, d: 3, want: 8}, // 7.5 rounds to 8
		{n: 3, d: 1, want: 2}, // 1.5 rounds to 2
		{n: 20, d: 6, want: 60},
	}
	for _, tt := range tests {
		if got := links(tt.n, tt.d); got != tt.want {
			t.Fatalf("links(%d,%g) = %d, want %d", tt.n, tt.d, got, tt.want)
		}
	}
}
