// Package geo generates the random unit disk graph workloads used in the
// paper's evaluation: n nodes placed uniformly at random in a restricted
// 100x100 area, with the transmitter range adjusted so that the resulting
// unit disk graph has exactly n*d/2 links for a requested average degree d.
// Networks that are not connected are discarded and regenerated.
//
// Two interchangeable generators produce bit-identical networks: the
// reference path sorts all n(n-1)/2 candidate links, while the default
// grid-indexed path (see grid.go) only examines pairs within an estimated
// range, which is what makes n in the tens of thousands feasible.
package geo

import (
	"fmt"
	"math"
	"math/rand"

	"adhocbcast/internal/graph"
)

// Point is a node position in the deployment area.
type Point struct {
	X, Y float64
}

// Distance returns the Euclidean distance to q.
func (p Point) Distance(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Config describes a random network workload.
type Config struct {
	// N is the number of nodes.
	N int
	// AvgDegree is the target average node degree d; the unit disk radius is
	// chosen so the graph has exactly round(N*d/2) links.
	AvgDegree float64
	// Side is the side length of the square deployment area (default 100).
	Side float64
	// MaxAttempts bounds the connected-graph rejection sampling
	// (default 1000).
	MaxAttempts int
	// Naive selects the reference O(n^2 log n) generator that sorts every
	// candidate link instead of the grid-indexed one. Both produce
	// bit-identical networks; the reference path exists for equivalence
	// tests and benchmarks.
	Naive bool
	// Seed is a diagnostic label only: generation randomness comes from the
	// rng passed to Generate, but callers that seed that rng should record
	// the seed here so a failed generation names the placement stream that
	// produced it.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Side <= 0 {
		c.Side = 100
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 1000
	}
	return c
}

// Validate reports whether the configuration can produce a network at all.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.N < 2 {
		return fmt.Errorf("geo: need at least 2 nodes, got %d", c.N)
	}
	if c.AvgDegree <= 0 {
		return fmt.Errorf("geo: average degree must be positive, got %g", c.AvgDegree)
	}
	if links(c.N, c.AvgDegree) > c.N*(c.N-1)/2 {
		return fmt.Errorf("geo: average degree %g impossible for %d nodes", c.AvgDegree, c.N)
	}
	return nil
}

// Network is a generated unit disk graph together with its geometry.
type Network struct {
	// G is the connectivity graph.
	G *graph.Graph
	// Pos holds node positions.
	Pos []Point
	// Range is the transmitter range that produced exactly the target number
	// of links.
	Range float64
	// Attempts is the number of placements tried before a connected graph
	// was found.
	Attempts int
}

// Generate draws random placements from rng until the induced unit disk
// graph is connected, and returns the resulting network. A failure after
// MaxAttempts reports the configured seed and the largest connected-component
// size of the last attempt, so infeasible large-n configurations are
// diagnosable without rerunning.
func Generate(cfg Config, rng *rand.Rand) (*Network, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var last *Network
	for attempt := 1; attempt <= cfg.MaxAttempts; attempt++ {
		net := place(cfg, rng)
		if net.G.Connected() {
			net.Attempts = attempt
			return net, nil
		}
		last = net
	}
	labels, count := last.G.Components()
	sizes := make([]int, count)
	for _, c := range labels {
		sizes[c]++
	}
	largest := 0
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}
	return nil, fmt.Errorf("geo: no connected network with n=%d d=%g after %d attempts "+
		"(seed %d; last attempt: %d components, largest %d/%d nodes, range %.3g)",
		cfg.N, cfg.AvgDegree, cfg.MaxAttempts, cfg.Seed, count, largest, cfg.N, last.Range)
}

// pair is one candidate link: the endpoint pair (u < v) and its distance.
type pair struct {
	d    float64
	u, v int
}

// place builds one candidate network: uniform placement plus exact-link-count
// range adjustment. The m = links(n, d) closest pairs become the links and
// the m-th distance becomes the range; the naive path considers all pairs,
// the grid path only a superset of the m closest (see grid.go). Both feed
// the same comparator, so the resulting networks are bit-identical.
func place(cfg Config, rng *rand.Rand) *Network {
	n := cfg.N
	pos := make([]Point, n)
	for i := range pos {
		pos[i] = Point{X: rng.Float64() * cfg.Side, Y: rng.Float64() * cfg.Side}
	}

	m := links(n, cfg.AvgDegree)
	var pairs []pair
	if cfg.Naive {
		pairs = make([]pair, 0, n*(n-1)/2)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				pairs = append(pairs, pair{d: pos[u].Distance(pos[v]), u: u, v: v})
			}
		}
	} else {
		pairs = candidatePairs(pos, cfg.Side, m)
	}
	sortPairs(pairs)

	edges := make([][2]int, m)
	for i := 0; i < m; i++ {
		edges[i] = [2]int{pairs[i].u, pairs[i].v}
	}
	// Endpoints are valid and distinct by construction; FromEdges cannot fail.
	g, _ := graph.FromEdges(n, edges)
	r := 0.0
	if m > 0 {
		r = pairs[m-1].d
	}
	return &Network{G: g, Pos: pos, Range: r}
}

// links returns the target link count round(n*d/2).
func links(n int, d float64) int {
	return int(math.Round(float64(n) * d / 2))
}
