// Package geo generates the random unit disk graph workloads used in the
// paper's evaluation: n nodes placed uniformly at random in a restricted
// 100x100 area, with the transmitter range adjusted so that the resulting
// unit disk graph has exactly n*d/2 links for a requested average degree d.
// Networks that are not connected are discarded and regenerated.
package geo

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"adhocbcast/internal/graph"
)

// Point is a node position in the deployment area.
type Point struct {
	X, Y float64
}

// Distance returns the Euclidean distance to q.
func (p Point) Distance(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Config describes a random network workload.
type Config struct {
	// N is the number of nodes.
	N int
	// AvgDegree is the target average node degree d; the unit disk radius is
	// chosen so the graph has exactly round(N*d/2) links.
	AvgDegree float64
	// Side is the side length of the square deployment area (default 100).
	Side float64
	// MaxAttempts bounds the connected-graph rejection sampling
	// (default 1000).
	MaxAttempts int
}

func (c Config) withDefaults() Config {
	if c.Side <= 0 {
		c.Side = 100
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 1000
	}
	return c
}

// Validate reports whether the configuration can produce a network at all.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.N < 2 {
		return fmt.Errorf("geo: need at least 2 nodes, got %d", c.N)
	}
	if c.AvgDegree <= 0 {
		return fmt.Errorf("geo: average degree must be positive, got %g", c.AvgDegree)
	}
	if links(c.N, c.AvgDegree) > c.N*(c.N-1)/2 {
		return fmt.Errorf("geo: average degree %g impossible for %d nodes", c.AvgDegree, c.N)
	}
	return nil
}

// Network is a generated unit disk graph together with its geometry.
type Network struct {
	// G is the connectivity graph.
	G *graph.Graph
	// Pos holds node positions.
	Pos []Point
	// Range is the transmitter range that produced exactly the target number
	// of links.
	Range float64
	// Attempts is the number of placements tried before a connected graph
	// was found.
	Attempts int
}

// Generate draws random placements from rng until the induced unit disk
// graph is connected, and returns the resulting network.
func Generate(cfg Config, rng *rand.Rand) (*Network, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	for attempt := 1; attempt <= cfg.MaxAttempts; attempt++ {
		net := place(cfg, rng)
		if net.G.Connected() {
			net.Attempts = attempt
			return net, nil
		}
	}
	return nil, fmt.Errorf("geo: no connected network with n=%d d=%g after %d attempts",
		cfg.N, cfg.AvgDegree, cfg.MaxAttempts)
}

// place builds one candidate network: uniform placement plus exact-link-count
// range adjustment.
func place(cfg Config, rng *rand.Rand) *Network {
	n := cfg.N
	pos := make([]Point, n)
	for i := range pos {
		pos[i] = Point{X: rng.Float64() * cfg.Side, Y: rng.Float64() * cfg.Side}
	}

	type pair struct {
		d    float64
		u, v int
	}
	pairs := make([]pair, 0, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			pairs = append(pairs, pair{d: pos[u].Distance(pos[v]), u: u, v: v})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].d != pairs[j].d {
			return pairs[i].d < pairs[j].d
		}
		if pairs[i].u != pairs[j].u {
			return pairs[i].u < pairs[j].u
		}
		return pairs[i].v < pairs[j].v
	})

	m := links(n, cfg.AvgDegree)
	g := graph.New(n)
	for i := 0; i < m; i++ {
		// Endpoints are valid by construction; AddEdge cannot fail.
		_ = g.AddEdge(pairs[i].u, pairs[i].v)
	}
	r := 0.0
	if m > 0 {
		r = pairs[m-1].d
	}
	return &Network{G: g, Pos: pos, Range: r}
}

// links returns the target link count round(n*d/2).
func links(n int, d float64) int {
	return int(math.Round(float64(n) * d / 2))
}
