module adhocbcast

go 1.22
