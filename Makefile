# Development entry points. Everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-race check-docs bench bench-compare bench-full figures table1 sample fuzz fuzz-smoke soak-smoke chaos-smoke grid grid-smoke clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; fi
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/stats/ ./internal/experiments/ ./internal/sim/ ./internal/fault/ ./internal/runtime/ ./cmd/bcastnode/
	$(GO) test -tags simdebug ./internal/sim/
	$(GO) run ./cmd/checkdocs

# Documentation gate: package + exported doc comments, markdown link targets.
check-docs:
	$(GO) run ./cmd/checkdocs

test-race:
	$(GO) test -race ./...

# Headline benchmarks, committed as a machine-readable report. The previous
# report (if any) is embedded under "previous" for before/after comparison.
BENCHES = BenchmarkFigure10Timing|BenchmarkCoverageConditions|BenchmarkReplicationPoint|BenchmarkTopologyBuild|BenchmarkScalePoint|BenchmarkScaleEngine|BenchmarkLoadPoint
bench:
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) test -run='^$$' -bench='$(BENCHES)' -benchmem -timeout 30m . \
		| /tmp/benchjson -old BENCH_results.json -out BENCH_results.json

# CI regression gate: re-run the headline timing benchmarks — the paper-sized
# single-broadcast point and the heavy-traffic saturation point — and fail on
# a >25% ns/op regression against the committed report.
bench-compare:
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) test -run='^$$' -bench='BenchmarkFigure10Timing|BenchmarkLoadPoint' -benchmem . \
		| /tmp/benchjson -compare BENCH_results.json -match 'Figure10Timing|LoadPoint'

# Every benchmark in the repository, human-readable.
bench-full:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every committed results_*.txt table from the declarative grid
# (grid.json): cached points in .gridcache are served content-addressed, only
# missing ones compute, so an interrupted run resumes where it died. See
# EXPERIMENTS.md "Running the grid".
grid:
	$(GO) run ./cmd/grid

# Two-run grid smoke over a tiny spec: the cold run computes and caches, the
# warm rerun must be all cache hits (-require-cached proves it) with a
# byte-identical table, and the sealed store must pass -verify.
grid-smoke:
	$(GO) build -o /tmp/gridsmoke-bin ./cmd/grid
	rm -rf /tmp/gridsmoke && mkdir -p /tmp/gridsmoke/out1 /tmp/gridsmoke/out2
	/tmp/gridsmoke-bin -spec cmd/grid/testdata/smoke.json -cache /tmp/gridsmoke/cache -out /tmp/gridsmoke/out1
	/tmp/gridsmoke-bin -spec cmd/grid/testdata/smoke.json -cache /tmp/gridsmoke/cache -out /tmp/gridsmoke/out2 -require-cached
	cmp /tmp/gridsmoke/out1/smoke.txt /tmp/gridsmoke/out2/smoke.txt
	/tmp/gridsmoke-bin -spec cmd/grid/testdata/smoke.json -cache /tmp/gridsmoke/cache -out /tmp/gridsmoke/out2 -verify

# Regenerate every evaluation figure (moderate replication).
figures:
	$(GO) run ./cmd/experiments -all

# Regenerate every figure at the paper's ±1% CI criterion (slow).
figures-paper:
	$(GO) run ./cmd/experiments -all -paper

table1:
	$(GO) run ./cmd/experiments -table1

# Render the Figure 9 sample network.
sample:
	$(GO) run ./cmd/bcastsim -render

# Short fuzzing campaign over the coverage conditions.
fuzz:
	$(GO) test ./internal/core/ -fuzz FuzzCoverageConditions -fuzztime 30s
	$(GO) test ./internal/core/ -fuzz FuzzMaxMinPath -fuzztime 30s
	$(GO) test ./internal/core/ -fuzz FuzzEvaluatorMatchesReference -fuzztime 30s

# CI-sized fuzz smoke under the race detector: a few seconds per target keeps
# the differential oracles (grid placement vs naive, evaluator vs reference)
# exercised on every change without a full campaign.
fuzz-smoke:
	$(GO) test -race ./internal/geo/ -run '^$$' -fuzz FuzzPlaceGridMatchesNaive -fuzztime 5s
	$(GO) test -race ./internal/core/ -run '^$$' -fuzz FuzzEvaluatorMatchesReference -fuzztime 5s

# CI-sized convergence soak under the race detector: live protocol engines on
# real goroutines and timers, partitions and churn injected by the nemesis,
# delivery cross-checked against the simulator. -short trims the broadcast
# count; the full 200-broadcast soak runs without it.
soak-smoke:
	$(GO) test -race -short ./internal/runtime/soak/

# CI-sized process-kill chaos harness under the race detector: real bcastnode
# processes over UDP, SIGKILL/restart on a seed-deterministic schedule,
# journal replay and dynamic-hello rejoin asserted (see docs/recovery.md).
# -short trims the kill and broadcast counts; the full soak (200 broadcasts,
# 30+ kills) runs without it.
chaos-smoke:
	$(GO) test -race -short ./internal/runtime/chaos/

clean:
	$(GO) clean ./...
