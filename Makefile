# Development entry points. Everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-race bench figures table1 sample fuzz clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every evaluation figure (moderate replication).
figures:
	$(GO) run ./cmd/experiments -all

# Regenerate every figure at the paper's ±1% CI criterion (slow).
figures-paper:
	$(GO) run ./cmd/experiments -all -paper

table1:
	$(GO) run ./cmd/experiments -table1

# Render the Figure 9 sample network.
sample:
	$(GO) run ./cmd/bcastsim -render

# Short fuzzing campaign over the coverage conditions.
fuzz:
	$(GO) test ./internal/core/ -fuzz FuzzCoverageConditions -fuzztime 30s
	$(GO) test ./internal/core/ -fuzz FuzzMaxMinPath -fuzztime 30s

clean:
	$(GO) clean ./...
