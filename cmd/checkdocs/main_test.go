package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a map of relative path -> contents under dir.
func writeTree(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for rel, body := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCheckCleanTree(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"pkg/doc.go": "// Package pkg is documented.\npackage pkg\n\n" +
			"// Exported is documented.\nfunc Exported() {}\n\n" +
			"// T is documented.\ntype T struct{}\n\n" +
			"// Hidden methods on unexported types need no comment.\ntype hidden struct{}\n\n" +
			"func (hidden) Len() int { return 0 }\n",
		"README.md": "See [pkg](pkg/doc.go) and [site](https://example.com) " +
			"and [anchor](#here).\n```\n[not a link](missing.md)\n```\n",
	})
	problems, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("clean tree reported problems:\n%s", strings.Join(problems, "\n"))
	}
}

func TestCheckFindsProblems(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"a/a.go": "package a\n\nfunc Exported() {}\n\ntype T int\n\nvar V int\n\n" +
			"// S is documented.\ntype S struct{}\n\nfunc (S) M() {}\n",
		"a/a_test.go": "package a\n\nfunc TestLooksExported() {}\n", // exempt
		"README.md":   "Broken: [gone](docs/nope.md). Escape: [up](../outside.md).\n",
	})
	problems, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"package has no package doc comment",
		"exported function Exported has no doc comment",
		"exported type T has no doc comment",
		"exported var V has no doc comment",
		"exported method M has no doc comment",
		`broken relative link "docs/nope.md"`,
		`link "../outside.md" escapes the repository`,
	} {
		found := false
		for _, p := range problems {
			if strings.Contains(p, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing problem %q in:\n%s", want, strings.Join(problems, "\n"))
		}
	}
	if want := 7; len(problems) != want {
		t.Errorf("got %d problems, want %d:\n%s", len(problems), want, strings.Join(problems, "\n"))
	}
}

// TestRepositoryIsClean runs the gate over the real repository, so `go test`
// fails locally for the same reasons the CI docs gate would.
func TestRepositoryIsClean(t *testing.T) {
	problems, err := check("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("repository has documentation problems:\n%s", strings.Join(problems, "\n"))
	}
}
