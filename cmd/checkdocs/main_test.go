package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a map of relative path -> contents under dir.
func writeTree(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for rel, body := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCheckCleanTree(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"pkg/doc.go": "// Package pkg is documented.\npackage pkg\n\n" +
			"// Exported is documented.\nfunc Exported() {}\n\n" +
			"// T is documented.\ntype T struct{}\n\n" +
			"// Hidden methods on unexported types need no comment.\ntype hidden struct{}\n\n" +
			"func (hidden) Len() int { return 0 }\n",
		"README.md": "See [pkg](pkg/doc.go) and [site](https://example.com) " +
			"and [anchor](#here).\n```\n[not a link](missing.md)\n```\n",
	})
	problems, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("clean tree reported problems:\n%s", strings.Join(problems, "\n"))
	}
}

func TestCheckFindsProblems(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"a/a.go": "package a\n\nfunc Exported() {}\n\ntype T int\n\nvar V int\n\n" +
			"// S is documented.\ntype S struct{}\n\nfunc (S) M() {}\n",
		"a/a_test.go": "package a\n\nfunc TestLooksExported() {}\n", // exempt
		"README.md":   "Broken: [gone](docs/nope.md). Escape: [up](../outside.md).\n",
	})
	problems, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"package has no package doc comment",
		"exported function Exported has no doc comment",
		"exported type T has no doc comment",
		"exported var V has no doc comment",
		"exported method M has no doc comment",
		`broken relative link "docs/nope.md"`,
		`link "../outside.md" escapes the repository`,
	} {
		found := false
		for _, p := range problems {
			if strings.Contains(p, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing problem %q in:\n%s", want, strings.Join(problems, "\n"))
		}
	}
	if want := 7; len(problems) != want {
		t.Errorf("got %d problems, want %d:\n%s", len(problems), want, strings.Join(problems, "\n"))
	}
}

// TestConfigCoverage exercises invariant 3 on a fixture tree: a sim.Config
// field mentioned nowhere in markdown is a problem, one mentioned anywhere
// (prose or code fence) is covered, and unexported fields are ignored.
func TestConfigCoverage(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"internal/sim/config.go": "// Package sim is documented.\npackage sim\n\n" +
			"// Config is documented.\ntype Config struct {\n" +
			"\t// Hops is documented.\n\tHops int\n" +
			"\t// Orphan is documented in Go but not in markdown.\n\tOrphan int\n" +
			"\tinternal int\n}\n",
		"README.md": "The `Hops` knob sets the view depth.\n",
	})
	problems, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], "sim.Config field Orphan") {
		t.Fatalf("got %v, want exactly the Orphan coverage problem", problems)
	}
}

// TestRepositoryIsClean runs the gate over the real repository, so `go test`
// fails locally for the same reasons the CI docs gate would.
func TestRepositoryIsClean(t *testing.T) {
	problems, err := check("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("repository has documentation problems:\n%s", strings.Join(problems, "\n"))
	}
}
