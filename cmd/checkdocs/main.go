// Command checkdocs is the documentation gate run in CI. It enforces three
// invariants over the repository:
//
//  1. Go documentation: every package has a package doc comment and every
//     exported top-level declaration (funcs, types, and the first name of
//     each const/var group) carries a doc comment. Test files and testdata
//     are exempt.
//  2. Markdown links: every relative link or image target in the checked-in
//     *.md files resolves to an existing file or directory.
//  3. Configuration coverage: every exported field of sim.Config (parsed
//     from internal/sim/config.go) is mentioned by name in at least one
//     checked-in markdown file, so no simulation knob can ship undocumented.
//     Roots without that file (test fixtures) skip this check.
//
// Usage:
//
//	go run ./cmd/checkdocs        # check the repository rooted at .
//	go run ./cmd/checkdocs -root DIR
//
// The exit status is non-zero iff any problem is found; every problem is
// reported as "file:line: message" so editors can jump to it.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	root := flag.String("root", ".", "repository root to check")
	flag.Parse()
	problems, err := check(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "checkdocs:", err)
		os.Exit(2)
	}
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "checkdocs: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
}

// check walks root and returns all documentation problems, sorted by file.
func check(root string) ([]string, error) {
	var problems []string
	goFiles := map[string][]string{} // package dir -> non-test .go files
	var mdFiles []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		switch {
		case strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go"):
			dir := filepath.Dir(path)
			goFiles[dir] = append(goFiles[dir], path)
		case strings.HasSuffix(name, ".md"):
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	dirs := make([]string, 0, len(goFiles))
	for dir := range goFiles {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		ps, err := checkPackage(goFiles[dir])
		if err != nil {
			return nil, err
		}
		problems = append(problems, ps...)
	}
	sort.Strings(mdFiles)
	for _, path := range mdFiles {
		ps, err := checkMarkdown(root, path)
		if err != nil {
			return nil, err
		}
		problems = append(problems, ps...)
	}
	ps, err := checkConfigCoverage(root, mdFiles)
	if err != nil {
		return nil, err
	}
	problems = append(problems, ps...)
	return problems, nil
}

// configSource is the simulation configuration file whose exported Config
// fields the coverage check audits against the committed documentation.
const configSource = "internal/sim/config.go"

// checkConfigCoverage parses configSource under root and reports every
// exported field of the Config struct that no checked-in markdown file
// mentions by name (word-boundary match, code fences included — fenced
// examples are exactly where config fields are documented). Roots without
// the file skip the check.
func checkConfigCoverage(root string, mdFiles []string) ([]string, error) {
	path := filepath.Join(root, filepath.FromSlash(configSource))
	src, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, src, 0)
	if err != nil {
		return nil, err
	}
	docs := make([]string, 0, len(mdFiles))
	for _, md := range mdFiles {
		data, err := os.ReadFile(md)
		if err != nil {
			return nil, err
		}
		docs = append(docs, string(data))
	}
	var problems []string
	for _, field := range exportedStructFields(f, "Config") {
		re := regexp.MustCompile(`\b` + regexp.QuoteMeta(field.name) + `\b`)
		mentioned := false
		for _, doc := range docs {
			if re.MatchString(doc) {
				mentioned = true
				break
			}
		}
		if !mentioned {
			p := fset.Position(field.pos)
			problems = append(problems, fmt.Sprintf(
				"%s:%d: sim.Config field %s is not mentioned in any checked-in markdown file",
				path, p.Line, field.name))
		}
	}
	return problems, nil
}

// structField is one exported field found by exportedStructFields.
type structField struct {
	name string
	pos  token.Pos
}

// exportedStructFields returns the exported fields of the named top-level
// struct type, in declaration order (embedded fields are skipped).
func exportedStructFields(f *ast.File, typeName string) []structField {
	var out []structField
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok || ts.Name.Name != typeName {
				continue
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				continue
			}
			for _, fld := range st.Fields.List {
				for _, n := range fld.Names {
					if n.IsExported() {
						out = append(out, structField{name: n.Name, pos: n.Pos()})
					}
				}
			}
		}
	}
	return out
}

// checkPackage parses one package directory and reports missing package and
// exported-declaration doc comments.
func checkPackage(files []string) ([]string, error) {
	fset := token.NewFileSet()
	var problems []string
	hasPkgDoc := false
	sort.Strings(files)
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if f.Doc != nil {
			hasPkgDoc = true
		}
		for _, decl := range f.Decls {
			problems = append(problems, checkDecl(fset, decl)...)
		}
	}
	if !hasPkgDoc && len(files) > 0 {
		problems = append(problems,
			fmt.Sprintf("%s: package has no package doc comment", files[0]))
	}
	return problems, nil
}

// checkDecl reports exported top-level declarations without doc comments.
// For grouped const/var/type declarations the group comment counts for
// every member, matching godoc's rendering.
func checkDecl(fset *token.FileSet, decl ast.Decl) []string {
	var problems []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems,
			fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Name.IsExported() && d.Doc == nil {
			kind := "function"
			if d.Recv != nil {
				kind = "method"
				// Methods on unexported receiver types are invisible to
				// godoc; don't demand comments for them.
				if !exportedReceiver(d.Recv) {
					return nil
				}
			}
			report(d.Pos(), kind, d.Name.Name)
		}
	case *ast.GenDecl:
		if d.Doc != nil {
			return nil
		}
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
					report(s.Pos(), "type", s.Name.Name)
				}
			case *ast.ValueSpec:
				if s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, n := range s.Names {
					if n.IsExported() {
						report(n.Pos(), strings.ToLower(d.Tok.String()), n.Name)
					}
				}
			}
		}
	}
	return problems
}

// exportedReceiver reports whether a method's receiver names an exported
// type (dereferencing a pointer receiver and ignoring type parameters).
func exportedReceiver(recv *ast.FieldList) bool {
	if recv == nil || len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}

// mdLink matches inline markdown links and images: [text](target) and
// ![alt](target). Reference-style links are rare in this repository and are
// not checked.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)[^)]*\)`)

// checkMarkdown reports relative link targets in one markdown file that do
// not exist on disk. Absolute URLs, mailto, and pure in-page anchors are
// skipped; a fragment on a relative target is stripped before the check.
func checkMarkdown(root, path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var problems []string
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.Contains(target, "://") ||
				strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			if h := strings.IndexByte(target, '#'); h >= 0 {
				target = target[:h]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if rel, err := filepath.Rel(root, resolved); err != nil || strings.HasPrefix(rel, "..") {
				problems = append(problems,
					fmt.Sprintf("%s:%d: link %q escapes the repository", path, i+1, m[1]))
				continue
			}
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems,
					fmt.Sprintf("%s:%d: broken relative link %q", path, i+1, m[1]))
			}
		}
	}
	return problems, nil
}
