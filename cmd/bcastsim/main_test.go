package main

import (
	"strings"
	"testing"

	"adhocbcast/internal/protocol"
)

func TestRunDefault(t *testing.T) {
	if err := run([]string{"-n", "40", "-d", "6", "-seed", "3"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunEveryProtocolName(t *testing.T) {
	for _, name := range protocol.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			err := run([]string{"-n", "30", "-d", "6", "-proto", name, "-seed", "2"})
			if err != nil {
				t.Fatalf("run -proto %s: %v", name, err)
			}
		})
	}
}

func TestRunRender(t *testing.T) {
	if err := run([]string{"-render", "-n", "60", "-seed", "4"}); err != nil {
		t.Fatalf("run -render: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "unknown protocol", args: []string{"-proto", "bogus"}},
		{name: "unknown metric", args: []string{"-metric", "bogus"}},
		{name: "impossible degree", args: []string{"-n", "5", "-d", "30"}},
		{name: "bad flag", args: []string{"-definitely-not-a-flag"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Fatalf("run(%v) succeeded, want error", tt.args)
			}
		})
	}
}

func TestProtocolNamesSorted(t *testing.T) {
	names := protocol.Names()
	if len(names) < 15 {
		t.Fatalf("only %d protocols registered", len(names))
	}
	for i := 1; i < len(names); i++ {
		if strings.Compare(names[i-1], names[i]) >= 0 {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

func TestRunTrace(t *testing.T) {
	if err := run([]string{"-n", "20", "-d", "5", "-trace", "-seed", "6"}); err != nil {
		t.Fatalf("run -trace: %v", err)
	}
}
