// Command bcastsim runs a single broadcast simulation on a random unit disk
// graph and prints the outcome, optionally rendering the Figure 9 style
// sample network as ASCII art.
//
// Usage:
//
//	bcastsim -n 100 -d 6 -proto Generic-FR -hops 2 -metric degree
//	bcastsim -render                      # Figure 9 sample scenario
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"adhocbcast/internal/experiments"
	"adhocbcast/internal/geo"
	"adhocbcast/internal/protocol"
	svgrender "adhocbcast/internal/render"
	"adhocbcast/internal/sim"
	"adhocbcast/internal/view"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bcastsim:", err)
		os.Exit(1)
	}
}

var metrics = map[string]view.Metric{
	"id":     view.MetricID,
	"degree": view.MetricDegree,
	"ncr":    view.MetricNCR,
}

func run(args []string) error {
	fs := flag.NewFlagSet("bcastsim", flag.ContinueOnError)
	var (
		n      = fs.Int("n", 100, "number of nodes")
		d      = fs.Float64("d", 6, "average node degree")
		proto  = fs.String("proto", "generic-fr", "protocol: "+strings.Join(protocol.Names(), ", "))
		hops   = fs.Int("hops", 2, "k-hop view depth (0 = global)")
		metric = fs.String("metric", "id", "priority metric: id, degree, ncr")
		seed   = fs.Int64("seed", 1, "workload seed")
		source = fs.Int("source", -1, "broadcast source (-1 = random)")
		render = fs.Bool("render", false, "render the Figure 9 sample scenario")
		svg    = fs.String("svg", "", "write an SVG rendering of the broadcast to this file")
		trace  = fs.Bool("trace", false, "print the full event trace of the broadcast")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *render {
		s, err := experiments.NewSample(*n, *d, *seed)
		if err != nil {
			return err
		}
		for _, r := range s.Runs {
			fmt.Println(s.Render(r, 72, 30))
		}
		return nil
	}
	mk, ok := protocol.ByName(*proto)
	if !ok {
		return fmt.Errorf("unknown protocol %q (valid: %s)", *proto, strings.Join(protocol.Names(), ", "))
	}
	m, ok := metrics[strings.ToLower(*metric)]
	if !ok {
		return fmt.Errorf("unknown metric %q (valid: id, degree, ncr)", *metric)
	}
	rng := rand.New(rand.NewSource(*seed))
	net, err := geo.Generate(geo.Config{N: *n, AvgDegree: *d}, rng)
	if err != nil {
		return err
	}
	src := *source
	if src < 0 {
		src = rng.Intn(*n)
	}
	var rec *sim.Recorder
	cfg := sim.Config{Hops: *hops, Metric: m, Seed: *seed + 1}
	if *trace {
		rec = &sim.Recorder{}
		cfg.Observer = rec
	}
	res, err := sim.Run(net.G, src, mk(), cfg)
	if err != nil {
		return err
	}
	if rec != nil {
		fmt.Print(rec.Format())
	}
	fmt.Printf("network: n=%d, links=%d (avg degree %.2f), range=%.2f\n",
		net.G.N(), net.G.M(), net.G.AverageDegree(), net.Range)
	fmt.Printf("protocol: %s, %d-hop views, %s priority, source %d\n", *proto, *hops, *metric, src)
	fmt.Printf("forward nodes: %d of %d  (delivered: %d, finish time: %.2f)\n",
		res.ForwardCount(), res.N, res.Delivered, res.Finish)
	fmt.Printf("forward set: %v\n", res.Forward)
	if *svg != "" {
		f, err := os.Create(*svg)
		if err != nil {
			return err
		}
		title := fmt.Sprintf("%s: %d of %d forward nodes (n=%d, d=%.0f)",
			*proto, res.ForwardCount(), res.N, *n, *d)
		if err := svgrender.SVG(f, net, res.Forward, svgrender.SVGOptions{Title: title}); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *svg)
	}
	if !res.FullDelivery() {
		return fmt.Errorf("delivery incomplete: %d of %d nodes", res.Delivered, res.N)
	}
	return nil
}
